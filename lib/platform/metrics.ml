open! Flb_taskgraph

let makespan = Schedule.makespan

let sequential_time s = Taskgraph.total_comp (Schedule.graph s)

let speedup s =
  let m = makespan s in
  if m <= 0.0 then invalid_arg "Metrics.speedup: zero makespan";
  sequential_time s /. m

let efficiency s = speedup s /. float_of_int (Schedule.num_procs s)

let nsl s ~reference =
  if reference <= 0.0 then invalid_arg "Metrics.nsl: non-positive reference";
  makespan s /. reference

let busy_time s ~proc =
  List.fold_left
    (fun acc t -> acc +. Taskgraph.comp (Schedule.graph s) t)
    0.0
    (Schedule.tasks_on s proc)

let load_imbalance s =
  let p = Schedule.num_procs s in
  let busy = Array.init p (fun proc -> busy_time s ~proc) in
  let total = Array.fold_left ( +. ) 0.0 busy in
  if total <= 0.0 then invalid_arg "Metrics.load_imbalance: no work scheduled";
  let mean = total /. float_of_int p in
  Array.fold_left Float.max 0.0 busy /. mean

let idle_fraction s =
  let m = makespan s in
  let p = float_of_int (Schedule.num_procs s) in
  (* Clamp: a fully packed schedule (e.g. any single-processor schedule)
     has busy area = P * makespan, and rounding in the division must not
     surface as a negative idle fraction. *)
  if m <= 0.0 then 0.0 else Float.max 0.0 (1.0 -. (sequential_time s /. (p *. m)))

let cp_lower_bound s = Levels.cp_length (Schedule.graph s)
