open! Flb_taskgraph

(** The distributed-memory machine model.

    The paper assumes a set of [P] identical processors connected in a
    clique with contention-free communication: a message between two
    distinct processors always costs exactly the edge weight, and
    intra-processor messages are free. {!clique} is that model and the
    default throughout.

    {!mesh} is an extension beyond the paper: a 2-D mesh where a
    message's latency is the edge weight multiplied by the Manhattan
    hop distance between the processors. On such non-uniform networks
    the two-candidate lemma behind FCP and FLB no longer holds exactly
    (a task's effective message arrival time depends on {e which}
    processor it lands on, in a way a single "enabling processor" does
    not capture), so FLB degrades from provably-ETF-equivalent to a
    heuristic; the mesh experiment quantifies by how much. *)

type t

val clique : num_procs:int -> t
(** The paper's machine. @raise Invalid_argument if [num_procs < 1]. *)

val mesh : rows:int -> cols:int -> t
(** [rows * cols] processors; processor [i] sits at
    [(i / cols, i mod cols)]. Latency multiplies the cost by the hop
    count. @raise Invalid_argument unless both dimensions are
    positive. *)

val num_procs : t -> int

val procs : t -> int list
(** [0 .. num_procs-1]. *)

val is_uniform : t -> bool
(** True iff every inter-processor distance is one hop (cliques, and
    degenerate meshes with at most 2 processors in a line). Uniform
    machines are exactly those on which the FLB/FCP lemma is exact. *)

val hops : t -> src:int -> dst:int -> int
(** Hop distance between processors: 0 if [src = dst]; 1 on a clique;
    Manhattan distance on a mesh. No bounds checks and no allocation —
    the primitive behind {!comm_time}, exposed for fused hot loops that
    have already validated their processor ids. *)

val comm_time : t -> src:int -> dst:int -> cost:float -> float
(** Message latency between processors: 0 if [src = dst]; [cost] times
    the hop distance otherwise (hop distance is 1 on a clique).
    @raise Invalid_argument on processor ids outside the machine. *)

val pp : Format.formatter -> t -> unit
