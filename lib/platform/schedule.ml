open! Flb_taskgraph

module Vec = Flb_prelude.Vec

type task = Taskgraph.task

type t = {
  graph : Taskgraph.t;
  machine : Machine.t;
  proc : int array; (* -1 while unscheduled *)
  start : float array;
  finish : float array;
  prt : float array;
  on_proc : task Vec.t array; (* assignment order per processor *)
  unscheduled_preds : int array; (* readiness counter *)
  mutable num_scheduled : int;
  (* CSR adjacency of [graph], cached so the per-assignment edge sweeps
     and the timing quantities (LMT/EMT/EP) stream flat arrays without
     touching the tuple-array view. *)
  succ_off : int array;
  succ_id : int array;
  pred_off : int array;
  pred_id : int array;
  pred_w : float array;
  (* Float scratch for the fused EST sweep: a mutable float field in this
     mixed record would box on every write, a one-slot float array does
     not. *)
  scratch : float array;
  (* Fault-time rescheduling: masked (dead) processors never receive new
     work, frozen tasks carry measured rather than modelled finish
     times. Both arrays are all-false for ordinary compile-time runs. *)
  alive : bool array;
  frozen : bool array;
}

let create graph machine =
  let n = Taskgraph.num_tasks graph in
  let p = Machine.num_procs machine in
  {
    graph;
    machine;
    proc = Array.make n (-1);
    start = Array.make n 0.0;
    finish = Array.make n 0.0;
    prt = Array.make p 0.0;
    on_proc = Array.init p (fun _ -> Vec.create ());
    unscheduled_preds =
      (let off = Taskgraph.Csr.pred_offsets graph in
       Array.init n (fun t -> off.(t + 1) - off.(t)));
    num_scheduled = 0;
    succ_off = Taskgraph.Csr.succ_offsets graph;
    succ_id = Taskgraph.Csr.succ_targets graph;
    pred_off = Taskgraph.Csr.pred_offsets graph;
    pred_id = Taskgraph.Csr.pred_sources graph;
    pred_w = Taskgraph.Csr.pred_weights graph;
    scratch = Array.make 1 0.0;
    alive = Array.make p true;
    frozen = Array.make n false;
  }

let graph s = s.graph

let machine s = s.machine

let num_procs s = Machine.num_procs s.machine

let check_task s t op =
  if t < 0 || t >= Taskgraph.num_tasks s.graph then
    invalid_arg (Printf.sprintf "Schedule.%s: unknown task %d" op t)

let is_scheduled s t =
  check_task s t "is_scheduled";
  s.proc.(t) >= 0

let is_ready s t =
  check_task s t "is_ready";
  s.proc.(t) < 0 && s.unscheduled_preds.(t) = 0

let ready_tasks s =
  List.filter (is_ready s) (List.init (Taskgraph.num_tasks s.graph) Fun.id)

let num_scheduled s = s.num_scheduled

let is_complete s = s.num_scheduled = Taskgraph.num_tasks s.graph

let require_scheduled s t op =
  check_task s t op;
  if s.proc.(t) < 0 then
    invalid_arg (Printf.sprintf "Schedule.%s: task %d not scheduled" op t)

let proc s t =
  require_scheduled s t "proc";
  s.proc.(t)

let start_time s t =
  require_scheduled s t "start_time";
  s.start.(t)

let finish_time s t =
  require_scheduled s t "finish_time";
  s.finish.(t)

let check_proc s p op =
  if p < 0 || p >= num_procs s then
    invalid_arg (Printf.sprintf "Schedule.%s: unknown processor %d" op p)

let prt s p =
  check_proc s p "prt";
  s.prt.(p)

let mask_proc s p =
  check_proc s p "mask_proc";
  s.alive.(p) <- false

let proc_alive s p =
  check_proc s p "proc_alive";
  s.alive.(p)

let num_alive s =
  let acc = ref 0 in
  Array.iter (fun a -> if a then incr acc) s.alive;
  !acc

let advance_prt s p time =
  check_proc s p "advance_prt";
  if (not (Float.is_finite time)) || time < 0.0 then
    invalid_arg (Printf.sprintf "Schedule.advance_prt: bad time %g" time);
  if time > s.prt.(p) then s.prt.(p) <- time

let is_frozen s t =
  check_task s t "is_frozen";
  s.frozen.(t)

let tasks_on s p =
  check_proc s p "tasks_on";
  Vec.to_list s.on_proc.(p)

let place s t ~proc:p ~start ~finish =
  s.proc.(t) <- p;
  s.start.(t) <- start;
  s.finish.(t) <- finish;
  if finish > s.prt.(p) then s.prt.(p) <- finish;
  Vec.push s.on_proc.(p) t;
  s.num_scheduled <- s.num_scheduled + 1;
  for i = s.succ_off.(t) to s.succ_off.(t + 1) - 1 do
    let succ = s.succ_id.(i) in
    s.unscheduled_preds.(succ) <- s.unscheduled_preds.(succ) - 1
  done

let assign s t ~proc:p ~start =
  check_task s t "assign";
  check_proc s p "assign";
  if not s.alive.(p) then
    invalid_arg (Printf.sprintf "Schedule.assign: processor %d is masked out" p);
  if s.proc.(t) >= 0 then
    invalid_arg (Printf.sprintf "Schedule.assign: task %d already scheduled" t);
  if s.unscheduled_preds.(t) > 0 then
    invalid_arg (Printf.sprintf "Schedule.assign: task %d is not ready" t);
  if (not (Float.is_finite start)) || start < 0.0 then
    invalid_arg (Printf.sprintf "Schedule.assign: bad start time %g" start);
  place s t ~proc:p ~start ~finish:(start +. Taskgraph.comp s.graph t)

let assign_frozen s t ~proc:p ~start ~finish =
  check_task s t "assign_frozen";
  check_proc s p "assign_frozen";
  if s.proc.(t) >= 0 then
    invalid_arg (Printf.sprintf "Schedule.assign_frozen: task %d already scheduled" t);
  if s.unscheduled_preds.(t) > 0 then
    invalid_arg (Printf.sprintf "Schedule.assign_frozen: task %d is not ready" t);
  if (not (Float.is_finite start)) || start < 0.0 then
    invalid_arg (Printf.sprintf "Schedule.assign_frozen: bad start time %g" start);
  if (not (Float.is_finite finish)) || finish < start then
    invalid_arg (Printf.sprintf "Schedule.assign_frozen: bad finish time %g" finish);
  s.frozen.(t) <- true;
  place s t ~proc:p ~start ~finish

let require_preds_scheduled s t op =
  check_task s t op;
  if s.unscheduled_preds.(t) > 0 then
    invalid_arg (Printf.sprintf "Schedule.%s: task %d has unscheduled predecessors" op t)

let lmt s t =
  require_preds_scheduled s t "lmt";
  let acc = ref 0.0 in
  for i = s.pred_off.(t) to s.pred_off.(t + 1) - 1 do
    let arrival = s.finish.(s.pred_id.(i)) +. s.pred_w.(i) in
    if arrival > !acc then acc := arrival
  done;
  !acc

(* Enabling processor: processor of a predecessor realizing LMT. Ties go to
   the lowest processor id (deterministic, and the choice matching the
   paper's Table 1 trace). [-1] for entry tasks; the allocation-free
   primitive behind {!enabling_proc}. *)
let enabling_proc_id s t =
  require_preds_scheduled s t "enabling_proc_id";
  let best_proc = ref (-1) in
  let best_arrival = ref Float.neg_infinity in
  for i = s.pred_off.(t) to s.pred_off.(t + 1) - 1 do
    let arrival = s.finish.(s.pred_id.(i)) +. s.pred_w.(i) in
    let pp = s.proc.(s.pred_id.(i)) in
    if
      !best_proc < 0 || arrival > !best_arrival
      || (arrival = !best_arrival && pp < !best_proc)
    then begin
      best_proc := pp;
      best_arrival := arrival
    end
  done;
  !best_proc

let enabling_proc s t =
  match enabling_proc_id s t with -1 -> None | p -> Some p

let emt s t ~proc:p =
  require_preds_scheduled s t "emt";
  check_proc s p "emt";
  let acc = ref 0.0 in
  for i = s.pred_off.(t) to s.pred_off.(t + 1) - 1 do
    let pred = s.pred_id.(i) in
    let delay = Machine.comm_time s.machine ~src:s.proc.(pred) ~dst:p ~cost:s.pred_w.(i) in
    let arrival = s.finish.(pred) +. delay in
    if arrival > !acc then acc := arrival
  done;
  !acc

let est s t ~proc:p = Float.max (emt s t ~proc:p) s.prt.(p)

let is_ep_type s t =
  match enabling_proc_id s t with
  | -1 -> false
  | ep -> lmt s t >= s.prt.(ep)

(* The fused EST sweep: for each processor, the EMT max-fold runs inline
   over the CSR predecessor arrays with [Machine.hops] (an int, so no
   boxed float crosses a function boundary), and both the per-processor
   accumulator and the running minimum live in float arrays. ETF calls
   this once per (ready task, iteration) pair — the single hottest loop
   in the repository — so it must not allocate. *)
let min_est_into s t ~dest =
  require_preds_scheduled s t "min_est_into";
  let m = s.machine in
  let best_p = ref (-1) in
  for p = 0 to num_procs s - 1 do
    if s.alive.(p) then begin
      s.scratch.(0) <- 0.0;
      for i = s.pred_off.(t) to s.pred_off.(t + 1) - 1 do
        let pred = s.pred_id.(i) in
        let h = Machine.hops m ~src:s.proc.(pred) ~dst:p in
        let arrival = s.finish.(pred) +. (s.pred_w.(i) *. float_of_int h) in
        if arrival > s.scratch.(0) then s.scratch.(0) <- arrival
      done;
      let e = if s.scratch.(0) > s.prt.(p) then s.scratch.(0) else s.prt.(p) in
      if !best_p < 0 || e < dest.(0) then begin
        best_p := p;
        dest.(0) <- e
      end
    end
  done;
  if !best_p < 0 then invalid_arg "Schedule.min_est_into: every processor is masked";
  !best_p

let min_est_over_procs s t =
  let dest = Array.make 1 0.0 in
  let p = min_est_into s t ~dest in
  (p, dest.(0))

let makespan s = Array.fold_left Float.max 0.0 s.prt

let validate s =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let n = Taskgraph.num_tasks s.graph in
  for t = 0 to n - 1 do
    if s.proc.(t) < 0 then err "task %d is unscheduled" t
    else begin
      (* Frozen tasks carry measured finish times, which legitimately
         differ from start + comp (slowdown faults, spin-work noise). *)
      if (not s.frozen.(t)) && s.finish.(t) <> s.start.(t) +. Taskgraph.comp s.graph t
      then err "task %d: finish <> start + comp" t;
      if s.start.(t) < 0.0 then err "task %d starts before time 0" t
    end
  done;
  if !errors = [] then begin
    (* Dependence feasibility. Edges into frozen tasks are history — the
       runtime already executed them, modelled arrival times no longer
       bind — but edges from frozen into newly scheduled tasks must hold. *)
    Taskgraph.iter_edges
      (fun src dst w ->
        if not s.frozen.(dst) then
          let delay =
            Machine.comm_time s.machine ~src:s.proc.(src) ~dst:s.proc.(dst) ~cost:w
          in
          if s.start.(dst) < s.finish.(src) +. delay -. 1e-9 then
            err "edge %d->%d violated: start %g < arrival %g" src dst s.start.(dst)
              (s.finish.(src) +. delay))
      s.graph;
    (* Processor exclusivity: sweep each processor's tasks in (start,
       finish) order and flag any positive-length task beginning before
       the busy frontier. Zero-duration tasks occupy no time and cannot
       conflict; overlap among frozen tasks is the runtime's business,
       but a new task must never start under the frontier. *)
    for p = 0 to num_procs s - 1 do
      let tasks = Array.of_list (tasks_on s p) in
      Array.sort
        (fun a b -> compare (s.start.(a), s.finish.(a)) (s.start.(b), s.finish.(b)))
        tasks;
      let frontier = ref neg_infinity in
      Array.iter
        (fun t ->
          if
            (not s.frozen.(t))
            && s.finish.(t) > s.start.(t)
            && s.start.(t) < !frontier -. 1e-9
          then err "task %d overlaps earlier work on processor %d" t p;
          if s.finish.(t) > !frontier then frontier := s.finish.(t))
        tasks
    done
  end;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let pp ppf s =
  Format.fprintf ppf "schedule: %d/%d tasks placed, makespan %g" s.num_scheduled
    (Taskgraph.num_tasks s.graph) (makespan s)
