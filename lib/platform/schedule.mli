open! Flb_taskgraph

(** Partial and complete schedules, and the timing quantities of the
    paper (Section 2).

    A schedule maps tasks to processors with start and finish times. The
    quantities below are defined on a {e partial} schedule and a ready
    task [t] (one whose predecessors are all scheduled):

    - [PRT p]: processor ready time, the finish time of the last task
      scheduled on [p];
    - [LMT t]: last message arrival time,
      [max over preds (FT t' +. comm (t', t))] (0 for entry tasks);
    - [EP t]: enabling processor, the processor the last message arrives
      from (ties broken towards the lowest processor id);
    - [EMT t p]: effective message arrival time when tentatively placing
      [t] on [p] — each message pays {!Machine.comm_time} from its
      sender's processor to [p] (0 locally; the edge cost on the paper's
      clique; cost times hops on a mesh);
    - [EST t p = max (EMT t p) (PRT p)]: estimated start time;
    - [t] is {e EP type} iff [LMT t >= PRT (EP t)], else non-EP type.

    All schedulers in this repository mutate a value of this type through
    {!assign}; {!validate} checks the final result against the machine
    model independently of how it was produced. *)

type t

type task = Taskgraph.task

(** {1 Creation and assignment} *)

val create : Taskgraph.t -> Machine.t -> t
(** Empty schedule: every task unscheduled, every processor idle at 0. *)

val graph : t -> Taskgraph.t

val machine : t -> Machine.t

val num_procs : t -> int

val assign : t -> task -> proc:int -> start:float -> unit
(** Schedules a ready task. The finish time is [start +. comp].
    @raise Invalid_argument if the task is already scheduled, some
    predecessor is unscheduled, the processor is unknown or masked out,
    or [start] is negative. Start-time feasibility against messages and
    processor availability is {e not} checked here (insertion-based
    schedulers legitimately start tasks before [PRT]); {!validate}
    checks it. *)

(** {1 Fault-time rescheduling support}

    A reschedule seeds a fresh schedule with the executed prefix of a
    run as {e frozen} history — measured start/finish times, possibly on
    processors that have since died — masks the dead processors, floors
    the live processors' ready times at the fault time, and then lets
    any list scheduler complete the remainder through the ordinary
    {!assign} path. *)

val assign_frozen : t -> task -> proc:int -> start:float -> finish:float -> unit
(** Pins a ready task as executed history: like {!assign} but with an
    explicit measured [finish] (any finite value [>= start] — slowdown
    faults and real spin-work make measured durations differ from the
    modelled [comp]), and permitted on masked processors (the task ran
    before the processor died; its output data remains available).
    {!validate} skips the [finish = start + comp] and overlap checks for
    frozen tasks, but still holds {e new} tasks to every edge out of
    them. *)

val is_frozen : t -> task -> bool

val mask_proc : t -> int -> unit
(** Removes a processor from further consideration: {!assign} and
    {!min_est_into} refuse it. Already-placed (frozen) work is kept. *)

val proc_alive : t -> int -> bool

val num_alive : t -> int
(** Number of unmasked processors. *)

val advance_prt : t -> int -> float -> unit
(** [advance_prt s p time] floors processor [p]'s ready time at [time]
    ([prt <- max prt time]): a rescheduler uses it to account for
    elapsed real time and in-flight work on live processors.
    @raise Invalid_argument on a non-finite or negative [time]. *)

(** {1 Queries on the partial schedule} *)

val is_scheduled : t -> task -> bool

val is_ready : t -> task -> bool
(** All predecessors scheduled, task itself not scheduled. (The paper
    defines readiness in terms of finished parents; for a compile-time
    list scheduler "scheduled" is the right notion.) *)

val ready_tasks : t -> task list
(** All currently ready tasks; O(V + E). For tests and oracles. *)

val num_scheduled : t -> int

val is_complete : t -> bool

val proc : t -> task -> int
(** @raise Invalid_argument if unscheduled. *)

val start_time : t -> task -> float
(** @raise Invalid_argument if unscheduled. *)

val finish_time : t -> task -> float
(** @raise Invalid_argument if unscheduled. *)

val prt : t -> int -> float
(** Processor ready time; 0 for an idle-since-boot processor. *)

val tasks_on : t -> int -> task list
(** Tasks assigned to a processor, in assignment order. *)

(** {1 The paper's timing quantities} *)

val lmt : t -> task -> float
(** @raise Invalid_argument unless the task is ready or scheduled. *)

val enabling_proc : t -> task -> int option
(** [None] for entry tasks (no messages). *)

val enabling_proc_id : t -> task -> int
(** Allocation-free variant of {!enabling_proc}: [-1] for entry tasks.
    Hot-path schedulers use this to avoid the [option] box. *)

val emt : t -> task -> proc:int -> float

val est : t -> task -> proc:int -> float

val is_ep_type : t -> task -> bool
(** EP-type test; entry tasks are non-EP by convention (no enabling
    processor), matching the paper's initialization. *)

val min_est_over_procs : t -> task -> int * float
(** Brute-force [(argmin, min)] of [est] over all processors (lowest
    processor id wins ties). O(P * in-degree); used by ETF and by the
    Theorem-3 oracle. *)

val min_est_into : t -> task -> dest:float array -> int
(** Allocation-free variant of {!min_est_over_procs}: returns the argmin
    processor and writes the minimum EST into [dest.(0)] ([dest] must
    have length at least 1). ETF's inner loop calls this once per
    (ready task, iteration) pair. Masked processors are skipped.
    @raise Invalid_argument if every processor is masked. *)

(** {1 Whole-schedule results} *)

val makespan : t -> float
(** Parallel completion time [max_p PRT p]; 0 for the empty schedule. *)

val validate : t -> (unit, string list) result
(** Checks that the schedule is complete and feasible: every task
    scheduled exactly once on a real processor; no two tasks overlap on
    a processor; every task starts no earlier than each predecessor's
    finish plus the (zeroed-if-local) communication cost; finish = start
    + comp. Returns all violations found. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: scheduled count and makespan. *)
