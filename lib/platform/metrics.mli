open! Flb_taskgraph

(** Schedule quality metrics used in the paper's evaluation. *)

val makespan : Schedule.t -> float
(** Parallel completion time (alias of {!Schedule.makespan}). *)

val sequential_time : Schedule.t -> float
(** Sum of all computation costs — the single-processor execution time
    used as the speedup numerator. *)

val speedup : Schedule.t -> float
(** [sequential_time /. makespan] (Fig. 3's y-axis).
    @raise Invalid_argument on a zero makespan. *)

val efficiency : Schedule.t -> float
(** [speedup /. P]. *)

val nsl : Schedule.t -> reference:float -> float
(** Normalized schedule length against a reference makespan (the paper
    normalizes to MCP; Fig. 4's y-axis).
    @raise Invalid_argument on a non-positive reference. *)

val busy_time : Schedule.t -> proc:int -> float
(** Total computation time assigned to one processor. *)

val load_imbalance : Schedule.t -> float
(** [max_p busy / mean_p busy]; 1.0 is perfectly balanced.
    @raise Invalid_argument if no work is scheduled. *)

val idle_fraction : Schedule.t -> float
(** Fraction of the [P * makespan] area that is idle. Clamped to
    [\[0, 1\]]: an empty schedule reports 0, and a fully packed one
    (any single-processor schedule) reports exactly 0 even when the
    division rounds. *)

val cp_lower_bound : Schedule.t -> float
(** Critical-path lower bound on any makespan for this graph. *)
