(** Request-scoped trace context.

    A context pairs a 64-bit trace id with a {!Trace.t}. The id is
    minted once at the request's origin (the service client), travels in
    the wire header, and names one trace track per request
    (["req-<16 hex digits>"]), so queue-wait, cache, scheduling and
    execution spans of a single request form one correlated row in
    Perfetto regardless of which thread or domain emitted them. *)

type t

val mint : unit -> int64
(** A fresh non-zero id: wall clock, pid and a process-local counter
    folded through the SplitMix64 finalizer. Zero is reserved for "no
    id" (a v1 peer). *)

val create : ?id:int64 -> Trace.t -> t
(** [create ?id tracer]. An absent or zero [id] mints a fresh one, so a
    request arriving without a trace id still gets a correlated track. *)

val id : t -> int64

val tracer : t -> Trace.t

val id_to_string : int64 -> string
(** 16 lowercase hex digits, zero-padded. *)

val id_of_string : string -> int64 option
(** Inverse of {!id_to_string}; [None] on anything else. *)

val track : t -> string
(** The context's track name: ["req-" ^ id_to_string id]. *)

val with_span : ?args:(string * float) list -> t -> string -> (unit -> 'a) -> 'a

val add_span : ?args:(string * float) list -> t -> string -> ts:float -> dur:float -> unit

val instant : ?args:(string * float) list -> t -> string -> unit
