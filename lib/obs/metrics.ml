open! Flb_prelude

(* Counters and gauges are lock-free atomics so hot paths stay cheap even
   when several domains share a series; the registry index and the
   histograms (whose buckets are a growable structure) are guarded by
   mutexes instead. *)

module Counter = struct
  type t = { name : string; help : string; value : int Atomic.t }

  let incr c = Atomic.incr c.value

  let add c n =
    if n < 0 then invalid_arg "Metrics.Counter.add: negative increment";
    ignore (Atomic.fetch_and_add c.value n)

  let value c = Atomic.get c.value

  let name c = c.name
end

module Gauge = struct
  type t = { name : string; help : string; value : float Atomic.t }

  let set g v = Atomic.set g.value v

  let rec add g v =
    let old = Atomic.get g.value in
    if not (Atomic.compare_and_set g.value old (old +. v)) then add g v

  let value g = Atomic.get g.value

  let name g = g.name
end

module Histogram = struct
  type t = {
    name : string;
    help : string;
    hist : Stats.Log_histogram.t;
    lock : Mutex.t;
  }

  let with_lock h f =
    Mutex.lock h.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock h.lock) f

  let observe h x = with_lock h (fun () -> Stats.Log_histogram.observe h.hist x)

  let count h = with_lock h (fun () -> Stats.Log_histogram.count h.hist)

  let sum h = with_lock h (fun () -> Stats.Log_histogram.sum h.hist)

  let quantile h ~q = with_lock h (fun () -> Stats.Log_histogram.quantile h.hist ~q)

  let name h = h.name
end

type metric =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

type t = {
  index : (string, metric) Hashtbl.t;
  mutable order : metric list; (* reversed registration order *)
  lock : Mutex.t;
}

let create () = { index = Hashtbl.create 32; order = []; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let register t name metric =
  Hashtbl.add t.index name metric;
  t.order <- metric :: t.order;
  metric

let kind_clash name =
  invalid_arg ("Metrics: " ^ name ^ " already registered with a different kind")

let counter t ?(help = "") name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.index name with
      | Some (C c) -> c
      | Some _ -> kind_clash name
      | None -> (
        match register t name (C { Counter.name; help; value = Atomic.make 0 }) with
        | C c -> c
        | _ -> assert false))

let gauge t ?(help = "") name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.index name with
      | Some (G g) -> g
      | Some _ -> kind_clash name
      | None -> (
        match
          register t name (G { Gauge.name; help; value = Atomic.make 0.0 })
        with
        | G g -> g
        | _ -> assert false))

let histogram t ?(help = "") ?gamma name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.index name with
      | Some (H h) -> h
      | Some _ -> kind_clash name
      | None -> (
        match
          register t name
            (H
               {
                 Histogram.name;
                 help;
                 hist = Stats.Log_histogram.create ?gamma ();
                 lock = Mutex.create ();
               })
        with
        | H h -> h
        | _ -> assert false))

let metrics t = with_lock t (fun () -> List.rev t.order)

(* Prometheus metric names allow [a-zA-Z0-9_:] and must not start with a
   digit; anything else ('-' in "DSC-LLB", spaces, quotes, ...) is folded
   to '_', and a leading digit (or an empty name) gets a '_' prefix so
   the sanitized name is always a valid exposition token. *)
let sanitize name =
  let folded =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      (String.lowercase_ascii name)
  in
  match folded with
  | "" -> "_"
  | s -> (match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s)

(* HELP text is free-form but line-oriented: a raw '\n' would start a new
   exposition line mid-comment and corrupt the scrape. Prometheus defines
   exactly two escapes for HELP ('\\' and '\n'). *)
let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Label values additionally escape '"' (they are double-quoted). *)
let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let header name help kind =
    if help <> "" then line "# HELP %s %s" name (escape_help help);
    line "# TYPE %s %s" name kind
  in
  List.iter
    (fun metric ->
      match metric with
      | C c ->
        let name = sanitize c.Counter.name in
        header name c.Counter.help "counter";
        line "%s %d" name (Counter.value c)
      | G g ->
        let name = sanitize g.Gauge.name in
        header name g.Gauge.help "gauge";
        line "%s %g" name (Gauge.value g)
      | H h ->
        let name = sanitize h.Histogram.name in
        header name h.Histogram.help "summary";
        Histogram.with_lock h (fun () ->
            let hist = h.Histogram.hist in
            if Stats.Log_histogram.count hist > 0 then
              List.iter
                (fun q ->
                  line "%s{quantile=\"%g\"} %g" name q
                    (Stats.Log_histogram.quantile hist ~q))
                [ 0.5; 0.95; 0.99 ];
            line "%s_sum %g" name (Stats.Log_histogram.sum hist);
            line "%s_count %d" name (Stats.Log_histogram.count hist)))
    (metrics t);
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string buf ",";
        Buffer.add_string buf s)
      fmt
  in
  List.iter
    (fun metric ->
      match metric with
      | C c -> emit "%S:%d" c.Counter.name (Counter.value c)
      | G g -> emit "%S:%g" g.Gauge.name (Gauge.value g)
      | H h ->
        Histogram.with_lock h (fun () ->
            let hist = h.Histogram.hist in
            let n = Stats.Log_histogram.count hist in
            if n = 0 then
              emit "%S:{\"count\":0,\"sum\":%g}" h.Histogram.name
                (Stats.Log_histogram.sum hist)
            else
              emit
                "%S:{\"count\":%d,\"sum\":%g,\"min\":%g,\"max\":%g,\"p50\":%g,\"p95\":%g,\"p99\":%g}"
                h.Histogram.name n
                (Stats.Log_histogram.sum hist)
                (Stats.Log_histogram.min hist)
                (Stats.Log_histogram.max hist)
                (Stats.Log_histogram.p50 hist)
                (Stats.Log_histogram.p95 hist)
                (Stats.Log_histogram.p99 hist)))
    (metrics t);
  Buffer.add_string buf "}";
  Buffer.contents buf

let save_prometheus t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_prometheus t))

let save_json t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json t))
