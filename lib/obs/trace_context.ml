(* Request-scoped trace context: a 64-bit id minted at the edge (the
   client), carried across the wire, and used to name one trace track
   per request so every span of a request's life — queue wait, cache
   lookup, scheduling, execution — lands on one correlated row. *)

type t = { id : int64; tracer : Trace.t }

(* SplitMix64 finalizer: full-period mixing of whatever entropy we fold
   in, so ids from the same process and instant still differ. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let counter = Atomic.make 0

let mint () =
  let t = Int64.bits_of_float (Unix.gettimeofday ()) in
  let c = Int64.of_int (Atomic.fetch_and_add counter 1) in
  let pid = Int64.of_int (Unix.getpid ()) in
  let id =
    mix
      (Int64.logxor t
         (Int64.logxor (Int64.mul c 0x9E3779B97F4A7C15L) (Int64.shift_left pid 32)))
  in
  if id = 0L then 1L else id

let id_to_string id = Printf.sprintf "%016Lx" id

let id_of_string s =
  if String.length s <> 16 then None
  else
    match Int64.of_string_opt ("0x" ^ s) with
    | Some id -> Some id
    | None -> None

let create ?id tracer =
  let id = match id with Some id when id <> 0L -> id | _ -> mint () in
  { id; tracer }

let id t = t.id

let tracer t = t.tracer

let track t = "req-" ^ id_to_string t.id

let with_span ?args t name f = Trace.with_span ?args t.tracer ~track:(track t) name f

let add_span ?args t name ~ts ~dur =
  Trace.add_span ?args t.tracer ~track:(track t) ~name ~ts ~dur

let instant ?args t name = Trace.instant ?args t.tracer ~track:(track t) name
