(** Span/event tracer for the scheduler's {e own} execution.

    Where {!Flb_platform.Chrome_trace} renders a finished schedule (the
    simulated program), this tracer records what the scheduler or
    simulator {e did} while running — nestable spans, instant events and
    counter samples on named tracks — and emits them either as JSONL or
    as Chrome trace-event JSON (the same emission idiom as
    [Chrome_trace]), so a profiling run opens directly in Perfetto with
    one row per track.

    A disabled tracer ({!null}) is free: every recording entry point
    checks a flag and returns without allocating, so instrumented hot
    loops pay nothing when tracing is off. *)

type t

val null : t
(** The disabled tracer: records nothing, costs nothing. *)

val create : ?clock:(unit -> float) -> unit -> t
(** A live tracer. [clock] returns absolute seconds (defaults to
    [Unix.gettimeofday]); timestamps are stored relative to the clock
    value at creation. Inject a fake clock for deterministic output. *)

val enabled : t -> bool

val now : t -> float
(** Seconds since the tracer's epoch (0 on a disabled tracer). *)

val num_events : t -> int

val add_span :
  ?args:(string * float) list ->
  t ->
  track:string ->
  name:string ->
  ts:float ->
  dur:float ->
  unit
(** Record a completed span with explicit start and duration (both in
    seconds on the tracer's timeline). The low-level entry point used by
    instrumentation that measures durations itself. *)

val instant : ?args:(string * float) list -> ?ts:float -> t -> track:string -> string -> unit
(** Record a point event; [ts] defaults to {!now}. *)

val counter : ?ts:float -> t -> track:string -> name:string -> float -> unit
(** Record a counter sample (rendered as a counter track in Perfetto). *)

val with_span : ?args:(string * float) list -> t -> track:string -> string -> (unit -> 'a) -> 'a
(** [with_span t ~track name f] runs [f] inside a span, recording it even
    if [f] raises. On a disabled tracer this is exactly [f ()]. *)

val to_chrome_json : ?name:string -> t -> string
(** Chrome trace-event JSON ([{"traceEvents": [...]}]): one thread (row)
    per track in order of first appearance, spans as ["X"] events,
    instants as ["i"], counters as ["C"]; timestamps in microseconds. *)

val to_jsonl : t -> string
(** One JSON object per line, in recording order. *)

val save_chrome : ?name:string -> t -> path:string -> unit

val save_jsonl : t -> path:string -> unit
