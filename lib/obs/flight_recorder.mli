(** Always-on flight recorder: fixed-size per-domain rings of recent
    runtime events.

    A {!Trace.t} records everything but only when a run opted in up
    front; the flight recorder is its complement — always recording,
    bounded, and read only post mortem. Each domain owns a ring of
    [capacity] slots backed by preallocated int/float arrays: recording
    is lock-free, allocation-free, and overwrites that domain's oldest
    entry once full. {!dump} writes the rings in the same JSONL line
    schema as {!Trace.to_jsonl}, so [flb analyze] reads live traces and
    flight dumps with one parser.

    Writes are strictly domain-local ([record] on domain [d] touches
    only ring [d]); a dump taken while other domains still run is a
    best-effort snapshot (the newest entry of a racing ring may be
    torn), which is exactly what a fault post-mortem needs. *)

type kind =
  | Task  (** a span: [a] = task id, [dur] = execution time *)
  | Steal  (** [a] = task, [b] = victim domain *)
  | Recover  (** [a] = task, [b] = victim domain (or -1) *)
  | Stall  (** [b] = stall horizon (weight units) *)
  | Killed
  | Resched  (** [a] = frontier size, [b] = latency in ns *)

val kind_name : kind -> string

type t

val default_capacity : int
(** 256 events per domain. *)

val create : ?capacity:int -> domains:int -> unit -> t
(** All rings preallocated. @raise Invalid_argument if [capacity < 1]
    or [domains < 1]. *)

val capacity : t -> int

val domains : t -> int

val record : t -> domain:int -> kind -> ts:float -> dur:float -> a:int -> b:float -> unit
(** Append to [domain]'s ring, overwriting its oldest entry when full.
    Call only from the owning domain. Never allocates. *)

val recorded : t -> domain:int -> int
(** Events ever recorded by the domain (including overwritten ones). *)

val stored : t -> domain:int -> int
(** Events currently held: [min (recorded) capacity]. *)

val iter :
  t ->
  (domain:int -> kind -> ts:float -> dur:float -> a:int -> b:float -> unit) ->
  unit
(** Oldest to newest within each domain, domains in index order. *)

val to_jsonl : ?meta:(string * string) list -> t -> string
(** One JSON object per line in the {!Trace.to_jsonl} schema (task
    spans on track ["D<i>"], other kinds as instants), preceded by one
    [{"type":"meta",...}] line when [meta] is non-empty. *)

val dump : ?meta:(string * string) list -> t -> path:string -> unit
