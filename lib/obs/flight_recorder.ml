(* Always-on flight recorder: one fixed-size ring of recent trace events
   per domain, recorded unconditionally (unlike Trace.t, which is opt-in
   per run) and dumped only on fault, panic or demand.

   The hot path is allocation-free: each domain owns preallocated
   parallel int/float arrays and a cursor, writes only its own ring, and
   overwrites its own oldest entries on wrap — no lock, no growth, no
   boxing. Reads (a dump) may race concurrent writers from other
   domains; a post-mortem snapshot tolerates a torn newest entry. *)

type kind = Task | Steal | Recover | Stall | Killed | Resched

let kind_to_int = function
  | Task -> 0
  | Steal -> 1
  | Recover -> 2
  | Stall -> 3
  | Killed -> 4
  | Resched -> 5

let kind_of_int = function
  | 0 -> Task
  | 1 -> Steal
  | 2 -> Recover
  | 3 -> Stall
  | 4 -> Killed
  | 5 -> Resched
  | n -> invalid_arg (Printf.sprintf "Flight_recorder.kind_of_int: %d" n)

let kind_name = function
  | Task -> "task"
  | Steal -> "steal"
  | Recover -> "recover"
  | Stall -> "stall"
  | Killed -> "killed"
  | Resched -> "resched"

type t = {
  capacity : int;
  kinds : int array array; (* [domain].[slot] *)
  ts : float array array;
  dur : float array array;
  a : int array array; (* task id, frontier size, ... *)
  b : float array array; (* victim, stall horizon, latency, ... *)
  total : int array; (* events ever recorded; slot [d] written only by [d] *)
}

let default_capacity = 256

let create ?(capacity = default_capacity) ~domains () =
  if capacity < 1 then invalid_arg "Flight_recorder: capacity must be >= 1";
  if domains < 1 then invalid_arg "Flight_recorder: domains must be >= 1";
  {
    capacity;
    kinds = Array.init domains (fun _ -> Array.make capacity 0);
    ts = Array.init domains (fun _ -> Array.make capacity 0.0);
    dur = Array.init domains (fun _ -> Array.make capacity 0.0);
    a = Array.init domains (fun _ -> Array.make capacity (-1));
    b = Array.init domains (fun _ -> Array.make capacity (-1.0));
    total = Array.make domains 0;
  }

let capacity t = t.capacity

let domains t = Array.length t.total

let recorded t ~domain = t.total.(domain)

let stored t ~domain = Int.min t.total.(domain) t.capacity

let record t ~domain kind ~ts ~dur ~a ~b =
  let slot = t.total.(domain) mod t.capacity in
  t.kinds.(domain).(slot) <- kind_to_int kind;
  t.ts.(domain).(slot) <- ts;
  t.dur.(domain).(slot) <- dur;
  t.a.(domain).(slot) <- a;
  t.b.(domain).(slot) <- b;
  t.total.(domain) <- t.total.(domain) + 1

(* Oldest-to-newest within each domain, domains in order. *)
let iter t f =
  for d = 0 to domains t - 1 do
    let n = stored t ~domain:d in
    let first = t.total.(d) - n in
    for i = 0 to n - 1 do
      let slot = (first + i) mod t.capacity in
      f ~domain:d
        (kind_of_int t.kinds.(d).(slot))
        ~ts:t.ts.(d).(slot) ~dur:t.dur.(d).(slot) ~a:t.a.(d).(slot)
        ~b:t.b.(d).(slot)
    done
  done

(* Same line schema as Trace.to_jsonl, so one parser (Analyze) reads
   live traces and flight dumps alike. A leading meta line carries the
   run's identity (engine, trace id, unit_ns, ...). *)
let to_jsonl ?(meta = []) t =
  let buf = Buffer.create 4096 in
  let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if meta <> [] then begin
    Buffer.add_string buf "{\"type\":\"meta\"";
    List.iter (fun (k, v) -> emit ",%S:%S" k v) meta;
    Buffer.add_string buf "}\n"
  end;
  iter t (fun ~domain kind ~ts ~dur ~a ~b ->
      let track = Printf.sprintf "D%d" domain in
      match kind with
      | Task -> emit "{\"type\":\"span\",\"track\":%S,\"name\":\"task %d\",\"ts\":%g,\"dur\":%g}\n" track a ts dur
      | Steal | Recover ->
        emit "{\"type\":\"instant\",\"track\":%S,\"name\":%S,\"ts\":%g,\"task\":%d%s}\n"
          track (kind_name kind) ts a
          (if b < 0.0 then "" else Printf.sprintf ",\"victim\":%g" b)
      | Stall ->
        emit "{\"type\":\"instant\",\"track\":%S,\"name\":\"stall\",\"ts\":%g,\"until\":%g}\n"
          track ts b
      | Killed -> emit "{\"type\":\"instant\",\"track\":%S,\"name\":\"killed\",\"ts\":%g}\n" track ts
      | Resched ->
        emit
          "{\"type\":\"instant\",\"track\":%S,\"name\":\"resched\",\"ts\":%g,\"frontier\":%d,\"latency_ns\":%g}\n"
          track ts a b);
  Buffer.contents buf

let dump ?meta t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl ?meta t))
