module Phase = struct
  type t = Priority | Selection | Queue | Assignment

  let all = [ Priority; Selection; Queue; Assignment ]

  let index = function Priority -> 0 | Selection -> 1 | Queue -> 2 | Assignment -> 3

  let name = function
    | Priority -> "priority"
    | Selection -> "selection"
    | Queue -> "queue"
    | Assignment -> "assignment"

  let label = function
    | Priority -> "priority computation"
    | Selection -> "task selection"
    | Queue -> "queue maintenance"
    | Assignment -> "assignment"
end

let num_phases = List.length Phase.all

type t = {
  name : string;
  live : bool;
  timed : bool;
  clock : unit -> float;
  tracer : Trace.t;
  mutable iterations : int;
  mutable task_queue_ops : int;
  mutable proc_queue_ops : int;
  mutable demotions : int;
  mutable ready_now : int;
  mutable peak_ready : int;
  mutable run_started : float;
  mutable wall_seconds : float;
  phase_started : float array;
  phase_seconds : float array;
  phase_calls : int array;
}

let make ~name ~live ~timed ~clock ~tracer =
  {
    name;
    live;
    timed;
    clock;
    tracer;
    iterations = 0;
    task_queue_ops = 0;
    proc_queue_ops = 0;
    demotions = 0;
    ready_now = 0;
    peak_ready = 0;
    run_started = 0.0;
    wall_seconds = 0.0;
    phase_started = Array.make num_phases 0.0;
    phase_seconds = Array.make num_phases 0.0;
    phase_calls = Array.make num_phases 0;
  }

let null =
  make ~name:"null" ~live:false ~timed:false ~clock:(fun () -> 0.0) ~tracer:Trace.null

(* A live tracer supplies the clock so probe spans land on the tracer's
   timeline; otherwise an explicit [clock] (tests) or gettimeofday. *)
let create ?clock ?(tracer = Trace.null) ?(timed = false) name =
  let timed = timed || Trace.enabled tracer in
  let clock =
    if Trace.enabled tracer then fun () -> Trace.now tracer
    else match clock with Some c -> c | None -> Unix.gettimeofday
  in
  make ~name ~live:true ~timed ~clock ~tracer

let is_live t = t.live

let name t = t.name

(* --- counting (free-standing int mutations; nothing allocates) --- *)

let iteration t =
  if t.live then begin
    t.iterations <- t.iterations + 1;
    if Trace.enabled t.tracer then
      Trace.counter t.tracer ~ts:(t.clock ()) ~track:"ready set" ~name:"ready_tasks"
        (float_of_int t.ready_now)
  end

let task_queue_ops t n = if t.live then t.task_queue_ops <- t.task_queue_ops + n

let task_queue_op t = task_queue_ops t 1

let proc_queue_ops t n = if t.live then t.proc_queue_ops <- t.proc_queue_ops + n

let proc_queue_op t = proc_queue_ops t 1

let demotion t = if t.live then t.demotions <- t.demotions + 1

let ready_added t =
  if t.live then begin
    t.ready_now <- t.ready_now + 1;
    if t.ready_now > t.peak_ready then t.peak_ready <- t.ready_now
  end

let ready_removed t = if t.live then t.ready_now <- t.ready_now - 1

(* --- phase timing (gated on [timed]: the clock is the only source of
   allocation, so an untimed probe adds none to a scheduler hot loop) --- *)

let phase_begin t phase =
  if t.timed then t.phase_started.(Phase.index phase) <- t.clock ()

let phase_end t phase =
  if t.timed then begin
    let i = Phase.index phase in
    let started = t.phase_started.(i) in
    let dur = t.clock () -. started in
    t.phase_seconds.(i) <- t.phase_seconds.(i) +. dur;
    t.phase_calls.(i) <- t.phase_calls.(i) + 1;
    if Trace.enabled t.tracer then
      Trace.add_span t.tracer ~track:(Phase.label phase) ~name:(Phase.name phase)
        ~ts:started ~dur
  end

let start_run t = if t.timed then t.run_started <- t.clock ()

let finish_run t =
  if t.timed then t.wall_seconds <- t.wall_seconds +. (t.clock () -. t.run_started)

(* --- reporting --- *)

type phase_stat = { phase : Phase.t; calls : int; seconds : float }

type report = {
  name : string;
  iterations : int;
  task_queue_ops : int;
  proc_queue_ops : int;
  demotions : int;
  peak_ready : int;
  wall_seconds : float;
  phases : phase_stat list;
}

let iterations (t : t) = t.iterations

let queue_ops (t : t) = t.task_queue_ops + t.proc_queue_ops

let peak_ready (t : t) = t.peak_ready

let report (t : t) : report =
  {
    name = t.name;
    iterations = t.iterations;
    task_queue_ops = t.task_queue_ops;
    proc_queue_ops = t.proc_queue_ops;
    demotions = t.demotions;
    peak_ready = t.peak_ready;
    wall_seconds = t.wall_seconds;
    phases =
      List.filter_map
        (fun phase ->
          let i = Phase.index phase in
          if t.phase_calls.(i) = 0 then None
          else Some { phase; calls = t.phase_calls.(i); seconds = t.phase_seconds.(i) })
        Phase.all;
  }

let render r =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "scheduler telemetry: %s" r.name;
  line "  iterations      %d" r.iterations;
  line "  task queue ops  %d%s" r.task_queue_ops
    (if r.iterations > 0 then
       Printf.sprintf "  (%.2f per task)"
         (float_of_int r.task_queue_ops /. float_of_int r.iterations)
     else "");
  line "  proc queue ops  %d%s" r.proc_queue_ops
    (if r.iterations > 0 then
       Printf.sprintf "  (%.2f per task)"
         (float_of_int r.proc_queue_ops /. float_of_int r.iterations)
     else "");
  line "  demotions       %d" r.demotions;
  line "  peak ready      %d" r.peak_ready;
  if r.wall_seconds > 0.0 then line "  wall time       %.3f ms" (r.wall_seconds *. 1e3);
  if r.phases <> [] then begin
    line "  %-22s %10s %12s %10s" "phase" "calls" "total ms" "mean us";
    List.iter
      (fun { phase; calls; seconds } ->
        line "  %-22s %10d %12.3f %10.2f" (Phase.label phase) calls (seconds *. 1e3)
          (seconds *. 1e6 /. float_of_int (max 1 calls)))
      r.phases
  end;
  Buffer.contents buf

let to_metrics registry r =
  let prefix = Metrics.sanitize r.name in
  let metric kind = prefix ^ "_" ^ kind in
  let count name help v =
    Metrics.Counter.add (Metrics.counter registry ~help (metric name)) v
  in
  count "iterations_total" "scheduling iterations (= V)" r.iterations;
  count "task_queue_ops_total" "task priority-queue operations" r.task_queue_ops;
  count "proc_queue_ops_total"
    "processor queue operations / tentative EST evaluations" r.proc_queue_ops;
  count "demotions_total" "EP-type tasks demoted to non-EP" r.demotions;
  Metrics.Gauge.set
    (Metrics.gauge registry ~help:"largest simultaneous ready set"
       (metric "peak_ready"))
    (float_of_int r.peak_ready);
  if r.wall_seconds > 0.0 then
    Metrics.Gauge.set
      (Metrics.gauge registry ~help:"scheduler wall time" (metric "wall_seconds"))
      r.wall_seconds;
  List.iter
    (fun { phase; calls; seconds } ->
      count ("phase_" ^ Phase.name phase ^ "_calls_total") "phase entries" calls;
      Metrics.Gauge.set
        (Metrics.gauge registry ~help:"cumulative phase wall time"
           (metric ("phase_" ^ Phase.name phase ^ "_seconds")))
        seconds)
    r.phases
