(** Registry of named counters, gauges and log-scale latency histograms.

    One registry per run (or per experiment row) collects everything the
    instrumented code reports, then dumps it either as Prometheus-style
    text exposition or as a single JSON object. Registration is
    idempotent by name: asking twice for the same name returns the same
    metric, so independent subsystems can share series without
    coordination.

    The registry is safe to share across OCaml 5 domains: counters and
    gauges are lock-free atomics (increments from concurrent domains
    lose no counts), while registration and histogram access are
    guarded by mutexes. Hot-path counter updates stay a single atomic
    add.

    @raise Invalid_argument when a name is re-registered with a
    different kind. *)

type t

val create : unit -> t

module Counter : sig
  type t

  val incr : t -> unit

  val add : t -> int -> unit
  (** @raise Invalid_argument on a negative increment. *)

  val value : t -> int

  val name : t -> string
end

module Gauge : sig
  type t

  val set : t -> float -> unit

  val add : t -> float -> unit

  val value : t -> float

  val name : t -> string
end

(** Log-scale histogram ({!Flb_prelude.Stats.Log_histogram}) exposed as
    a Prometheus-style summary with p50/p95/p99 quantiles. *)
module Histogram : sig
  type t

  val observe : t -> float -> unit

  val count : t -> int

  val sum : t -> float

  val quantile : t -> q:float -> float
  (** @raise Invalid_argument if empty or [q] outside [\[0, 1\]]. *)

  val name : t -> string
end

val counter : t -> ?help:string -> string -> Counter.t

val gauge : t -> ?help:string -> string -> Gauge.t

val histogram : t -> ?help:string -> ?gamma:float -> string -> Histogram.t

val sanitize : string -> string
(** Fold a free-form name ("DSC-LLB") into the Prometheus metric-name
    alphabet ([a-z0-9_:]). Never empty and never starts with a digit, so
    a hostile or accidental name (quotes, newlines, "42x42") cannot
    corrupt the exposition. *)

val escape_help : string -> string
(** Escape a HELP comment per the Prometheus text format: ['\\'] and
    newline (a raw newline would terminate the comment mid-string). *)

val escape_label_value : string -> string
(** Escape a double-quoted label value: ['\\'], newline and ['"']. *)

val to_prometheus : t -> string
(** Text exposition: [# HELP]/[# TYPE] headers and one sample line per
    counter/gauge; histograms as summaries with p50/p95/p99 quantile
    lines plus [_sum] and [_count]. Names are sanitized to the
    Prometheus alphabet ([a-z0-9_:]). *)

val to_json : t -> string
(** One JSON object, metrics in registration order; histograms dump
    count/sum/min/max/p50/p95/p99. *)

val save_prometheus : t -> path:string -> unit

val save_json : t -> path:string -> unit
