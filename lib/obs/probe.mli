(** Scheduler probe: the shared instrumentation interface every list
    scheduler reports through.

    The paper's comparison is fundamentally about {e operation counts} —
    FLB's O(V (log W + log P) + E) versus ETF's O(W (E + V) P) — so each
    scheduler (FLB, ETF, MCP, FCP, HLFET, DLS, ISH, ...) accepts a probe
    and reports the same schema: iterations, task/processor queue
    operations, ready-set peaks, and per-phase wall time (priority
    computation, task selection, queue maintenance, assignment).

    Cost discipline: counting entry points mutate unboxed [int] fields
    behind a [live] flag and never allocate; phase timing additionally
    reads the clock, gated behind a [timed] flag, so an untimed (or
    {!null}) probe adds no allocation to a scheduler's hot loop. For
    scan-based schedulers that keep no processor queue (ETF, DLS), the
    processor-queue counter counts tentative EST evaluations instead —
    the unit in which their O(W P) scan cost is expressed. *)

module Phase : sig
  type t = Priority | Selection | Queue | Assignment

  val all : t list

  val index : t -> int

  val name : t -> string
  (** Short machine-friendly name ("priority", "selection", ...). *)

  val label : t -> string
  (** Human/trace-row label ("priority computation", ...). *)
end

type t

val null : t
(** The disabled probe: every entry point is a no-op. *)

val create : ?clock:(unit -> float) -> ?tracer:Trace.t -> ?timed:bool -> string -> t
(** [create name] is a live counting probe. [timed] additionally records
    per-phase and wall time; an enabled [tracer] implies [timed], makes
    the tracer's timeline the probe's clock, and emits one span per
    phase occurrence (one Perfetto row per phase) plus a ready-set
    counter track. [clock] (absolute seconds, default
    [Unix.gettimeofday]) is only consulted when no tracer is given. *)

val is_live : t -> bool

val name : t -> string

(** {1 Counting} *)

val iteration : t -> unit

val task_queue_op : t -> unit

val task_queue_ops : t -> int -> unit

val proc_queue_op : t -> unit

val proc_queue_ops : t -> int -> unit

val demotion : t -> unit

val ready_added : t -> unit
(** A task became ready; tracks the running and peak ready-set size. *)

val ready_removed : t -> unit

(** {1 Phase timing} *)

val phase_begin : t -> Phase.t -> unit

val phase_end : t -> Phase.t -> unit
(** Phases may interleave but each phase must close before it reopens. *)

val start_run : t -> unit

val finish_run : t -> unit
(** Accumulates wall time since the matching {!start_run}. *)

(** {1 Reporting} *)

val iterations : t -> int

val queue_ops : t -> int
(** Task plus processor queue operations. *)

val peak_ready : t -> int

type phase_stat = { phase : Phase.t; calls : int; seconds : float }

type report = {
  name : string;
  iterations : int;
  task_queue_ops : int;
  proc_queue_ops : int;
  demotions : int;
  peak_ready : int;
  wall_seconds : float;
  phases : phase_stat list;  (** phases actually entered, in {!Phase.all} order *)
}

val report : t -> report

val render : report -> string
(** Human-readable multi-line summary. *)

val to_metrics : Metrics.t -> report -> unit
(** Export the report into a metrics registry under
    [<sanitized name>_*] series. *)
