open! Flb_prelude

type kind = Span of float | Instant | Counter of float

type event = {
  name : string;
  track : string;
  ts : float;
  kind : kind;
  args : (string * float) list;
}

type t = {
  enabled : bool;
  clock : unit -> float;
  epoch : float;
  events : event Vec.t;
}

let null =
  {
    enabled = false;
    clock = (fun () -> 0.0);
    epoch = 0.0;
    events = Vec.create ~capacity:0 ();
  }

let create ?(clock = Unix.gettimeofday) () =
  { enabled = true; clock; epoch = clock (); events = Vec.create ~capacity:256 () }

let enabled t = t.enabled

let now t = if t.enabled then t.clock () -. t.epoch else 0.0

let num_events t = Vec.length t.events

let add_span ?(args = []) t ~track ~name ~ts ~dur =
  if t.enabled then Vec.push t.events { name; track; ts; kind = Span dur; args }

let instant ?(args = []) ?ts t ~track name =
  if t.enabled then
    let ts = match ts with Some ts -> ts | None -> now t in
    Vec.push t.events { name; track; ts; kind = Instant; args }

let counter ?ts t ~track ~name value =
  if t.enabled then
    let ts = match ts with Some ts -> ts | None -> now t in
    Vec.push t.events { name; track; ts; kind = Counter value; args = [] }

let with_span ?args t ~track name f =
  if not t.enabled then f ()
  else begin
    let start = now t in
    Fun.protect
      ~finally:(fun () -> add_span ?args t ~track ~name ~ts:start ~dur:(now t -. start))
      f
  end

(* Tracks in order of first appearance define the row (tid) layout. *)
let tracks t =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  Vec.iter
    (fun e ->
      if not (Hashtbl.mem seen e.track) then begin
        Hashtbl.add seen e.track (Hashtbl.length seen);
        order := e.track :: !order
      end)
    t.events;
  (List.rev !order, fun track -> Hashtbl.find seen track)

let append_args buf args =
  List.iter
    (fun (k, v) -> Printf.ksprintf (Buffer.add_string buf) ",%S:%g" k v)
    args

(* Same emission idiom as Flb_platform.Chrome_trace: a "traceEvents"
   array, one thread (row) per track, microsecond timestamps. *)
let to_chrome_json ?(name = "flb-obs") t =
  let track_order, tid_of = tracks t in
  let buf = Buffer.create 4096 in
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string buf ",\n";
        Buffer.add_string buf s)
      fmt
  in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  emit "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":%S}}" name;
  List.iter
    (fun track ->
      emit
        "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%S}}"
        (tid_of track) track)
    track_order;
  Vec.iter
    (fun e ->
      let tid = tid_of e.track in
      let us x = x *. 1e6 in
      match e.kind with
      | Span dur ->
        let args_buf = Buffer.create 32 in
        append_args args_buf e.args;
        emit "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"name\":%S,\"ts\":%.3f,\"dur\":%.3f%s}"
          tid e.name (us e.ts) (us dur)
          (if e.args = [] then ""
           else
             ",\"args\":{"
             ^ String.sub (Buffer.contents args_buf) 1 (Buffer.length args_buf - 1)
             ^ "}")
      | Instant ->
        let args_buf = Buffer.create 32 in
        append_args args_buf e.args;
        emit "{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"name\":%S,\"ts\":%.3f,\"s\":\"t\"%s}"
          tid e.name (us e.ts)
          (if e.args = [] then ""
           else
             ",\"args\":{"
             ^ String.sub (Buffer.contents args_buf) 1 (Buffer.length args_buf - 1)
             ^ "}")
      | Counter v ->
        emit
          "{\"ph\":\"C\",\"pid\":0,\"tid\":%d,\"name\":%S,\"ts\":%.3f,\"args\":{\"value\":%g}}"
          tid e.name (us e.ts) v)
    t.events;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let to_jsonl t =
  let buf = Buffer.create 4096 in
  Vec.iter
    (fun e ->
      let args_buf = Buffer.create 32 in
      append_args args_buf e.args;
      let args = Buffer.contents args_buf in
      (match e.kind with
      | Span dur ->
        Printf.ksprintf (Buffer.add_string buf)
          "{\"type\":\"span\",\"track\":%S,\"name\":%S,\"ts\":%g,\"dur\":%g%s}\n"
          e.track e.name e.ts dur args
      | Instant ->
        Printf.ksprintf (Buffer.add_string buf)
          "{\"type\":\"instant\",\"track\":%S,\"name\":%S,\"ts\":%g%s}\n" e.track
          e.name e.ts args
      | Counter v ->
        Printf.ksprintf (Buffer.add_string buf)
          "{\"type\":\"counter\",\"track\":%S,\"name\":%S,\"ts\":%g,\"value\":%g}\n"
          e.track e.name e.ts v))
    t.events;
  Buffer.contents buf

let save_file content ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

let save_chrome ?name t ~path = save_file (to_chrome_json ?name t) ~path

let save_jsonl t ~path = save_file (to_jsonl t) ~path
