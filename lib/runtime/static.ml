open! Flb_taskgraph
open! Flb_platform
module State = Engine.State

let run ?(config = Engine.default_config) sched =
  let g = Schedule.graph sched in
  let procs = Schedule.num_procs sched in
  if config.domains <> procs then
    invalid_arg
      (Printf.sprintf "Static.run: config has %d domains but the schedule uses %d"
         config.domains procs);
  let plan = Engine.plan_of_schedule sched in
  let queues = Array.map Deque.of_list plan in
  let st = State.create config ~engine:"static" ~predicted:(Schedule.makespan sched) g in
  let worker d =
    let df = Fault.for_domain config.faults d in
    State.wait_start st;
    let busy = ref 0.0 in
    let fruitless = ref 0 in
    let t_begin = Clock.now_ns () in
    let run_one ~slowdown ~recovering t =
      fruitless := 0;
      if recovering then begin
        ignore (Atomic.fetch_and_add st.State.recovered 1);
        State.trace_instant st ~domain:d ~args:[ ("task", float_of_int t) ] "recover"
      end;
      busy := !busy +. State.run_task st ~domain:d ~slowdown t;
      st.State.d_tasks.(d) <- st.State.d_tasks.(d) + 1
    in
    (* The fault decision comes before the completion check: a kill that
       is due must register (fail-stop is a property of the domain, not
       of the remaining work), even if the other domains already
       finished everything while this one was being scheduled. *)
    let rec loop () =
      match Fault.decide df ~now:(State.now_units st) with
      | Fault.Die -> State.mark_dead st d
      | Fault.Stall_until until ->
        State.trace_instant st ~domain:d ~args:[ ("until", until) ] "stall";
        let n = ref 0 in
        while State.now_units st < until && State.now_units st < df.Fault.kill_at do
          incr n;
          Engine.relax !n
        done;
        loop ()
      | Fault.Proceed slowdown ->
        if Atomic.get st.State.completed < st.State.total then begin
          (* Own queue first — the placement is only overridden for the
             queues of dead domains, whose fronts any survivor may take. *)
          (match Deque.take_front_if queues.(d) (State.ready st) with
          | Some t -> run_one ~slowdown ~recovering:false t
          | None ->
            let taken = ref false in
            for v = 0 to procs - 1 do
              if (not !taken) && v <> d && State.is_dead st v then
                match Deque.take_front_if queues.(v) (State.ready st) with
                | Some t ->
                  taken := true;
                  run_one ~slowdown ~recovering:true t
                | None -> ()
            done;
            if not !taken then begin
              incr fruitless;
              Engine.relax !fruitless
            end);
          loop ()
        end
    in
    loop ();
    let wall = Clock.now_ns () -. t_begin in
    st.State.d_busy_ns.(d) <- !busy;
    st.State.d_idle_ns.(d) <- Float.max 0.0 (wall -. !busy)
  in
  (* A worker whose body raises is marked dead so survivors recover its
     queue instead of spinning on a completion count that can no longer
     be reached. *)
  let team =
    Flb_prelude.Workers.spawn ~count:procs ~on_exn:(fun d _ -> State.mark_dead st d)
      worker
  in
  State.release st;
  Flb_prelude.Workers.join team;
  State.outcome st ~wall_ns:(Clock.now_ns () -. st.State.start_ns)
