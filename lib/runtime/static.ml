open! Flb_taskgraph
open! Flb_platform
module State = Engine.State
module Snapshot = Flb_reschedule.Snapshot
module Reschedule = Flb_reschedule.Reschedule
module Metrics = Flb_obs.Metrics

let run ?(config = Engine.default_config) sched =
  let g = Schedule.graph sched in
  let procs = Schedule.num_procs sched in
  if config.domains <> procs then
    invalid_arg
      (Printf.sprintf "Static.run: config has %d domains but the schedule uses %d"
         config.domains procs);
  (match config.recover with
  | Engine.Resched algo when Reschedule.find algo = None ->
    invalid_arg
      (Printf.sprintf "Static.run: unknown reschedule algorithm %S (available: %s)"
         algo
         (String.concat ", " Reschedule.names))
  | _ -> ());
  let plan = Engine.plan_of_schedule sched in
  let queues = Array.map Deque.of_list plan in
  let st = State.create config ~engine:"static" ~predicted:(Schedule.makespan sched) g in
  let n = st.State.total in
  (* Death reactions (No_recovery's abandonment sweep, Resched's frontier
     reschedule) run on whichever survivor wins [coord_lock] after
     noticing [deaths] moved past [deaths_handled]. *)
  let coord_lock = Mutex.create () in
  let deaths_handled = Atomic.make 0 in
  (* No_recovery: tasks that can never execute because they sit in (or
     depend on) a dead domain's queue. Counting them keeps the
     completion condition reachable. *)
  let doomed = Array.make n false in
  let abandoned = Atomic.make 0 in
  (* Resched: dispatch gate during the snapshot + queue swap. *)
  let paused = Atomic.make false in
  let resched_latency =
    Option.map
      (fun m ->
        Metrics.histogram m ~help:"reschedule latency per fault event, ns"
          "rt_resched_latency_ns")
      config.metrics
  in
  let abandon_dead_work () =
    (* Anything still queued on a dead domain will never run, and
       neither will its dependence cone; doom the cone so survivors can
       drop past doomed queue fronts. A task downstream of an unexecuted
       task can never have executed, so the sweep never dooms finished
       work. *)
    let newly = ref 0 in
    let stack = ref [] in
    let push t =
      if not doomed.(t) then begin
        doomed.(t) <- true;
        incr newly;
        stack := t :: !stack
      end
    in
    for v = 0 to procs - 1 do
      if State.is_dead st v then List.iter push (Deque.to_list queues.(v))
    done;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | t :: rest ->
        stack := rest;
        Taskgraph.iter_succs g t (fun s _ -> push s)
    done;
    ignore (Atomic.fetch_and_add abandoned !newly)
  in
  let reschedule_frontier ~algo ~domain =
    Atomic.set paused true;
    Fun.protect
      ~finally:(fun () -> Atomic.set paused false)
      (fun () ->
        let t0 = Clock.now_ns () in
        let now = State.now_units st in
        let dead = ref [] in
        for v = procs - 1 downto 0 do
          if State.is_dead st v then dead := v :: !dead
        done;
        let slowdown_of =
          Array.init procs (fun v -> (Fault.for_domain config.faults v).Fault.slowdown)
        in
        let floors = Array.make procs now in
        let frozen = ref [] in
        (* Claimed = executed or in flight. Claims are published with SC
           atomics in dependency order, so one ascending scan observes a
           predecessor-closed set. In-flight tasks freeze at their claim
           time with a predicted finish, which also floors their
           domain's ready time. *)
        for t = 0 to n - 1 do
          let owner = Atomic.get st.State.owner.(t) in
          if owner >= 0 then begin
            let start = st.State.claim_units.(t) in
            let finish =
              if st.State.finish_ns.(t) > 0.0 then
                (st.State.finish_ns.(t) -. st.State.start_ns) /. config.unit_ns
              else
                Float.max now (start +. (Taskgraph.comp g t *. slowdown_of.(owner)))
            in
            let finish = Float.max finish start in
            if st.State.finish_ns.(t) <= 0.0 && not (State.is_dead st owner) then
              floors.(owner) <- Float.max floors.(owner) finish;
            frozen := { Snapshot.task = t; proc = owner; start; finish } :: !frozen
          end
        done;
        let ready = ref [] in
        for v = procs - 1 downto 0 do
          if not (State.is_dead st v) then ready := (v, floors.(v)) :: !ready
        done;
        let snap =
          Snapshot.make ~dead:!dead ~ready:!ready ~frozen:!frozen g
            (Schedule.machine sched)
        in
        let sched' = Reschedule.run ~algo snap in
        let plan' = Engine.plan_of_schedule sched' in
        Array.iteri
          (fun v tasks ->
            Deque.reset queues.(v)
              (List.filter (fun t -> not (Schedule.is_frozen sched' t)) tasks))
          plan';
        let dt = Clock.now_ns () -. t0 in
        ignore (Atomic.fetch_and_add st.State.rescheds 1);
        Option.iter (fun h -> Metrics.Histogram.observe h dt) resched_latency;
        Option.iter
          (fun m ->
            Metrics.Gauge.set
              (Metrics.gauge m ~help:"unexecuted tasks at the last reschedule"
                 "rt_resched_frontier")
              (float_of_int (Snapshot.frontier_size snap)))
          config.metrics;
        State.trace_instant st ~domain
          ~args:
            [
              ("latency_ns", dt);
              ("frontier", float_of_int (Snapshot.frontier_size snap));
            ]
          "resched")
  in
  let maybe_coordinate d =
    if
      Atomic.get st.State.deaths > Atomic.get deaths_handled
      && Mutex.try_lock coord_lock
    then
      Fun.protect
        ~finally:(fun () -> Mutex.unlock coord_lock)
        (fun () ->
          let d_now = Atomic.get st.State.deaths in
          if d_now > Atomic.get deaths_handled then begin
            (match config.recover with
            | Engine.No_recovery -> abandon_dead_work ()
            | Engine.Resched algo when config.unit_ns > 0.0 ->
              reschedule_frontier ~algo ~domain:d
            | Engine.Resched _ | Engine.Steal_queues -> ());
            (* Deaths that arrive during the reaction leave
               [deaths > d_now], so the next observer coordinates again. *)
            Atomic.set deaths_handled d_now
          end)
  in
  let worker d =
    State.wait_start st;
    let busy = ref 0.0 in
    let fruitless = ref 0 in
    let t_begin = Clock.now_ns () in
    let run_one ~slowdown ~recovering t =
      fruitless := 0;
      if recovering then begin
        ignore (Atomic.fetch_and_add st.State.recovered 1);
        State.trace_instant st ~domain:d ~args:[ ("task", float_of_int t) ] "recover"
      end;
      (* A recovered task runs on a survivor, away from its scheduled
         placement — the static engine's only source of hint misses. *)
      State.count_hint st ~hit:(not recovering);
      busy := !busy +. State.run_task st ~domain:d ~slowdown t;
      st.State.d_tasks.(d) <- st.State.d_tasks.(d) + 1
    in
    (* Under rescheduling a task can transiently sit in two queues (the
       pre-swap one it was taken from and the post-swap plan); the claim
       CAS guarantees a single execution, losers drop the stale entry. *)
    let claim_and_run ~slowdown ~recovering t =
      fruitless := 0;
      if State.try_claim st ~domain:d t then run_one ~slowdown ~recovering t
    in
    let idle () =
      incr fruitless;
      Engine.relax !fruitless
    in
    let step_none ~slowdown =
      (* Doomed tasks never become ready and would block the queue front
         forever; pull them off and drop them. *)
      match Deque.take_front_if queues.(d) (fun t -> doomed.(t) || State.ready st t) with
      | Some t -> if doomed.(t) then fruitless := 0 else run_one ~slowdown ~recovering:false t
      | None -> idle ()
    in
    let step_steal ~slowdown =
      (* Own queue first — the placement is only overridden for the
         queues of dead domains, whose fronts any survivor may take. *)
      match Deque.take_front_if queues.(d) (State.ready st) with
      | Some t -> run_one ~slowdown ~recovering:false t
      | None ->
        let taken = ref false in
        for v = 0 to procs - 1 do
          if (not !taken) && v <> d && State.is_dead st v then
            match Deque.take_front_if queues.(v) (State.ready st) with
            | Some t ->
              taken := true;
              run_one ~slowdown ~recovering:true t
            | None -> ()
        done;
        if not !taken then idle ()
    in
    let step_resched ~slowdown =
      if Atomic.get paused then idle ()
      else
        match Deque.take_front_if queues.(d) (State.ready st) with
        | Some t -> claim_and_run ~slowdown ~recovering:false t
        | None ->
          (* Backstop for the window between a death and the queue swap:
             dead fronts may be claimed, exactly as under Steal_queues.
             After the swap dead queues are empty. *)
          let taken = ref false in
          for v = 0 to procs - 1 do
            if (not !taken) && v <> d && State.is_dead st v then
              match Deque.take_front_if queues.(v) (State.ready st) with
              | Some t ->
                taken := true;
                claim_and_run ~slowdown ~recovering:true t
              | None -> ()
          done;
          if not !taken then idle ()
    in
    let finished () =
      match config.recover with
      | Engine.No_recovery ->
        Atomic.get st.State.completed + Atomic.get abandoned >= n
      | Engine.Steal_queues | Engine.Resched _ -> Atomic.get st.State.completed >= n
    in
    let step ~slowdown =
      (match config.recover with
      | Engine.No_recovery | Engine.Resched _ -> maybe_coordinate d
      | Engine.Steal_queues -> ());
      match config.recover with
      | Engine.No_recovery -> step_none ~slowdown
      | Engine.Steal_queues -> step_steal ~slowdown
      | Engine.Resched _ -> step_resched ~slowdown
    in
    State.worker_loop st ~domain:d ~finished ~step ();
    let wall = Clock.now_ns () -. t_begin in
    st.State.d_busy_ns.(d) <- !busy;
    st.State.d_idle_ns.(d) <- Float.max 0.0 (wall -. !busy)
  in
  (* A worker whose body raises is marked dead so survivors recover its
     queue instead of spinning on a completion count that can no longer
     be reached. *)
  let team =
    Flb_prelude.Workers.spawn ~count:procs ~on_exn:(fun d _ -> State.mark_dead st d)
      worker
  in
  State.release st;
  Flb_prelude.Workers.join team;
  State.outcome st ~wall_ns:(Clock.now_ns () -. st.State.start_ns)
