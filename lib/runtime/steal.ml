open! Flb_taskgraph
module State = Engine.State
module Rng = Flb_prelude.Rng

let max_backoff = 1024

let run ?(config = Engine.default_config) g =
  let dnum = config.Engine.domains in
  let st = State.create config ~engine:"steal" ~predicted:Float.nan g in
  let deques = Array.init dnum (fun _ -> Deque.create ()) in
  (* Entry tasks dealt round-robin so every domain has seed work. *)
  let next = ref 0 in
  for t = 0 to Taskgraph.num_tasks g - 1 do
    if Taskgraph.in_degree g t = 0 then begin
      Deque.push_back deques.(!next mod dnum) t;
      incr next
    end
  done;
  let worker d =
    let rng = Rng.create ~seed:(config.Engine.seed + (d * 0x9E3779B9)) in
    State.wait_start st;
    let busy = ref 0.0 in
    let backoff = ref 0 in
    let t_begin = Clock.now_ns () in
    (* The hint of a task is the deque it was placed in (its enabling
       domain, or its round-robin seed slot): popping one's own deque is
       a locality hit, having to steal is a miss. *)
    let run_one ~slowdown ~hit t =
      backoff := 0;
      State.count_hint st ~hit;
      busy :=
        !busy
        +. State.run_task_enqueue st ~domain:d ~slowdown
             ~on_ready:(Deque.push_back deques.(d))
             t;
      st.State.d_tasks.(d) <- st.State.d_tasks.(d) + 1
    in
    let step ~slowdown =
      match Deque.pop_back deques.(d) with
      | Some t -> run_one ~slowdown ~hit:true t
      | None ->
        if dnum = 1 then begin
          backoff := !backoff + 1;
          Engine.relax !backoff
        end
        else begin
          let victim = (d + 1 + Rng.int rng (dnum - 1)) mod dnum in
          (* Thief side takes the FIFO front — the oldest, most likely
             cold task — never racing the owner's LIFO back. *)
          match Deque.take_front deques.(victim) with
          | Some t ->
            ignore (Atomic.fetch_and_add st.State.steals 1);
            if State.is_dead st victim then begin
              ignore (Atomic.fetch_and_add st.State.recovered 1);
              State.trace_instant st ~domain:d
                ~args:[ ("task", float_of_int t); ("victim", float_of_int victim) ]
                "recover"
            end
            else
              State.trace_instant st ~domain:d
                ~args:[ ("task", float_of_int t); ("victim", float_of_int victim) ]
                "steal";
            run_one ~slowdown ~hit:false t
          | None ->
            ignore (Atomic.fetch_and_add st.State.failed_steals 1);
            backoff := Int.min (!backoff + 1) max_backoff;
            Engine.relax !backoff
        end
    in
    State.worker_loop st ~domain:d ~step ();
    let wall = Clock.now_ns () -. t_begin in
    st.State.d_busy_ns.(d) <- !busy;
    st.State.d_idle_ns.(d) <- Float.max 0.0 (wall -. !busy)
  in
  let team =
    Flb_prelude.Workers.spawn ~count:dnum ~on_exn:(fun d _ -> State.mark_dead st d)
      worker
  in
  State.release st;
  Flb_prelude.Workers.join team;
  State.outcome st ~wall_ns:(Clock.now_ns () -. st.State.start_ns)
