open! Flb_taskgraph
open! Flb_platform
module Trace = Flb_obs.Trace
module Metrics = Flb_obs.Metrics
module Flight = Flb_obs.Flight_recorder

type recovery = No_recovery | Steal_queues | Resched of string

let recovery_to_string = function
  | No_recovery -> "none"
  | Steal_queues -> "steal"
  | Resched algo -> Printf.sprintf "resched(%s)" algo

type config = {
  domains : int;
  unit_ns : float;
  charge_comm : bool;
  faults : Fault.spec;
  recover : recovery;
  seed : int;
  tracer : Trace.t;
  metrics : Metrics.t option;
  flight_capacity : int;
  flight_path : string option;
  trace_id : int64;
}

let default_config =
  {
    domains = 4;
    unit_ns = 1000.0;
    charge_comm = true;
    faults = Fault.none;
    recover = Steal_queues;
    seed = 1;
    tracer = Trace.null;
    metrics = None;
    flight_capacity = Flight.default_capacity;
    flight_path = None;
    trace_id = 0L;
  }

type outcome = {
  engine : string;
  domains : int;
  total : int;
  completed : int;
  real_ns : float;
  real_units : float;
  predicted_units : float;
  per_domain_tasks : int array;
  per_domain_busy_ns : float array;
  per_domain_idle_ns : float array;
  steals : int;
  failed_steals : int;
  recovered : int;
  killed : int;
  rescheds : int;
  hint_hits : int;
  hint_misses : int;
}

let complete o = o.completed = o.total

let ratio o = o.real_units /. o.predicted_units

let hint_hit_rate o =
  let total = o.hint_hits + o.hint_misses in
  if total = 0 then Float.nan else float_of_int o.hint_hits /. float_of_int total

let domain_track d = Printf.sprintf "D%d" d

let pp_outcome ppf o =
  Format.fprintf ppf
    "%s on %d domains: %d/%d tasks, %.3f ms real (%.2f units, predicted %g), %d \
     steals (%d failed), %d recovered, %d killed, %d rescheds"
    o.engine o.domains o.completed o.total (o.real_ns /. 1e6) o.real_units
    o.predicted_units o.steals o.failed_steals o.recovered o.killed o.rescheds;
  let rate = hint_hit_rate o in
  if Float.is_finite rate then
    Format.fprintf ppf ", hint hit rate %.2f (%d/%d)" rate o.hint_hits
      (o.hint_hits + o.hint_misses)

let emit_metrics m o =
  let open Metrics in
  Counter.add (counter m ~help:"tasks executed by the runtime" "rt_tasks_total")
    o.completed;
  Counter.add (counter m ~help:"successful steals" "rt_steals_total") o.steals;
  Counter.add (counter m ~help:"steal attempts that found nothing" "rt_failed_steals_total")
    o.failed_steals;
  Counter.add
    (counter m ~help:"steal attempts that found nothing (DLS-style name)"
       "rt_steal_fail_total")
    o.failed_steals;
  Counter.add
    (counter m ~help:"tasks executed on their affinity-hinted domain"
       "rt_affinity_hint_hits")
    o.hint_hits;
  Counter.add
    (counter m ~help:"tasks executed away from their affinity-hinted domain"
       "rt_affinity_hint_misses")
    o.hint_misses;
  Gauge.set
    (gauge m ~help:"fraction of tasks executed on their hinted domain"
       "rt_affinity_hint_rate")
    (let r = hint_hit_rate o in
     if Float.is_finite r then r else 0.0);
  Counter.add (counter m ~help:"tasks recovered from dead domains" "rt_recovered_total")
    o.recovered;
  Counter.add (counter m ~help:"domains killed by fault injection" "rt_killed_domains_total")
    o.killed;
  Counter.add
    (counter m ~help:"frontier reschedules triggered by faults" "rt_resched_total")
    o.rescheds;
  Gauge.set (gauge m ~help:"real makespan, ns" "rt_real_makespan_ns") o.real_ns;
  Gauge.set (gauge m ~help:"real makespan, weight units" "rt_real_makespan_units")
    o.real_units;
  Gauge.set
    (gauge m ~help:"schedule's analytic makespan, weight units"
       "rt_predicted_makespan_units")
    o.predicted_units;
  Gauge.set (gauge m ~help:"real / predicted makespan" "rt_real_over_predicted")
    (ratio o);
  Array.iteri
    (fun d ns ->
      Gauge.set (gauge m ~help:"idle ns of this domain" (Printf.sprintf "rt_idle_ns_d%d" d)) ns)
    o.per_domain_idle_ns;
  Array.iteri
    (fun d ns ->
      Gauge.set (gauge m ~help:"busy ns of this domain" (Printf.sprintf "rt_busy_ns_d%d" d)) ns)
    o.per_domain_busy_ns

let plan_of_schedule sched =
  let g = Schedule.graph sched in
  let n = Taskgraph.num_tasks g in
  for t = 0 to n - 1 do
    if not (Schedule.is_scheduled sched t) then
      invalid_arg (Printf.sprintf "Engine.plan_of_schedule: task %d unscheduled" t)
  done;
  let topo_position = Array.make n 0 in
  Array.iteri (fun i t -> topo_position.(t) <- i) (Topo.order g);
  (* Same order as Simulator.run: claimed start-time order with finish
     time and topological position breaking zero-duration ties
     dependency-consistently. *)
  Array.init (Schedule.num_procs sched) (fun p ->
      List.sort
        (fun a b ->
          compare
            (Schedule.start_time sched a, Schedule.finish_time sched a, topo_position.(a))
            (Schedule.start_time sched b, Schedule.finish_time sched b, topo_position.(b)))
        (Schedule.tasks_on sched p))

(* Cooperative wait: spin briefly, then nap. On a dedicated core the
   spins win and the sleep never triggers; on an oversubscribed or
   single-core host the nap yields the CPU, so dependency hand-offs cost
   ~100 µs instead of a full OS timeslice of fruitless spinning. *)
let relax fruitless =
  if fruitless > 200 then Unix.sleepf 1e-4
  else
    for _ = 1 to Int.min fruitless 64 do
      Domain.cpu_relax ()
    done

module State = struct
  type nonrec t = {
    cfg : config;
    graph : Taskgraph.t;
    total : int;
    predicted : float;
    engine : string;
    indegree : int Atomic.t array;
    finish_ns : float array;
    exec_domain : int array;
    completed : int Atomic.t;
    dead : bool Atomic.t array;
    deaths : int Atomic.t;
    go : bool Atomic.t;
    mutable start_ns : float;
    cal : Calibrate.t;
    flight : Flight.t;
    trace_lock : Mutex.t;
    steals : int Atomic.t;
    failed_steals : int Atomic.t;
    recovered : int Atomic.t;
    rescheds : int Atomic.t;
    hint_hits : int Atomic.t;
    hint_misses : int Atomic.t;
    owner : int Atomic.t array;
    claim_units : float array;
    d_tasks : int array;
    d_busy_ns : float array;
    d_idle_ns : float array;
  }

  let create (cfg : config) ~engine ~predicted g =
    if cfg.domains < 1 then invalid_arg "Engine: domains must be >= 1";
    if not (Float.is_finite cfg.unit_ns) || cfg.unit_ns < 0.0 then
      invalid_arg "Engine: unit_ns must be finite and >= 0";
    if cfg.faults <> Fault.none && cfg.unit_ns <= 0.0 then
      invalid_arg "Engine: faults need unit_ns > 0 (fault times are weight units)";
    (match Fault.validate cfg.faults ~domains:cfg.domains with
    | Ok () -> ()
    | Error e -> invalid_arg ("Engine: " ^ Fault.error_to_string e));
    let n = Taskgraph.num_tasks g in
    {
      cfg;
      graph = g;
      total = n;
      predicted;
      engine;
      indegree = Array.init n (fun t -> Atomic.make (Taskgraph.in_degree g t));
      finish_ns = Array.make n 0.0;
      exec_domain = Array.make n (-1);
      completed = Atomic.make 0;
      dead = Array.init cfg.domains (fun _ -> Atomic.make false);
      deaths = Atomic.make 0;
      go = Atomic.make false;
      start_ns = 0.0;
      cal = (if cfg.unit_ns > 0.0 then Calibrate.default () else Calibrate.instant);
      flight = Flight.create ~capacity:cfg.flight_capacity ~domains:cfg.domains ();
      trace_lock = Mutex.create ();
      steals = Atomic.make 0;
      failed_steals = Atomic.make 0;
      recovered = Atomic.make 0;
      rescheds = Atomic.make 0;
      hint_hits = Atomic.make 0;
      hint_misses = Atomic.make 0;
      owner = Array.init n (fun _ -> Atomic.make (-1));
      claim_units = Array.make n 0.0;
      d_tasks = Array.make cfg.domains 0;
      d_busy_ns = Array.make cfg.domains 0.0;
      d_idle_ns = Array.make cfg.domains 0.0;
    }

  (* Domain.spawn costs milliseconds — far more than small DAGs burn —
     so workers park on a start gate and the epoch is stamped only once
     the whole team is up; the measured makespan is then last-finish
     minus epoch, free of spawn and join overhead. *)
  let release st =
    st.start_ns <- Clock.now_ns ();
    Atomic.set st.go true

  let wait_start st =
    let n = ref 0 in
    while not (Atomic.get st.go) do
      incr n;
      relax !n
    done

  let now_units st =
    if st.cfg.unit_ns > 0.0 then (Clock.now_ns () -. st.start_ns) /. st.cfg.unit_ns
    else 0.0

  let is_dead st d = Atomic.get st.dead.(d)

  let flight_meta ?(reason = "demand") st =
    [
      ("reason", reason);
      ("engine", st.engine);
      ("domains", string_of_int st.cfg.domains);
      ("unit_ns", Printf.sprintf "%g" st.cfg.unit_ns);
      ("trace_id", Flb_obs.Trace_context.id_to_string st.cfg.trace_id);
    ]

  (* Post-mortem dump of the rings. Serialized on [trace_lock] so two
     concurrent faults don't interleave writes to the same file; a
     failing write must never take the run down with it. *)
  let dump_flight ?reason st =
    match st.cfg.flight_path with
    | None -> ()
    | Some path -> (
      Mutex.lock st.trace_lock;
      (try Flight.dump ~meta:(flight_meta ?reason st) st.flight ~path
       with _ -> ());
      Mutex.unlock st.trace_lock)

  (* Instants land in two sinks: the opt-in tracer (full history, only
     when a run asked for it) and always the flight recorder's
     fixed-size ring of the emitting domain. Fault events additionally
     trigger a dump — a kill or stall is exactly the moment the recent
     past becomes worth keeping. *)
  let trace_instant st ~domain ?(args = []) name =
    let arg k = match List.assoc_opt k args with Some v -> v | None -> -1.0 in
    let ts = (Clock.now_ns () -. st.start_ns) /. 1e9 in
    (match name with
    | "steal" ->
      Flight.record st.flight ~domain Flight.Steal ~ts ~dur:0.0
        ~a:(int_of_float (arg "task")) ~b:(arg "victim")
    | "steal-half" ->
      (* Batch steal: [a] carries the batch size instead of a task id. *)
      Flight.record st.flight ~domain Flight.Steal ~ts ~dur:0.0
        ~a:(int_of_float (arg "count")) ~b:(arg "victim")
    | "recover" ->
      Flight.record st.flight ~domain Flight.Recover ~ts ~dur:0.0
        ~a:(int_of_float (arg "task")) ~b:(arg "victim")
    | "stall" ->
      Flight.record st.flight ~domain Flight.Stall ~ts ~dur:0.0 ~a:(-1)
        ~b:(arg "until")
    | "killed" ->
      Flight.record st.flight ~domain Flight.Killed ~ts ~dur:0.0 ~a:(-1) ~b:(-1.0)
    | "resched" ->
      Flight.record st.flight ~domain Flight.Resched ~ts ~dur:0.0
        ~a:(int_of_float (arg "frontier")) ~b:(arg "latency_ns")
    | _ -> ());
    let tracer = st.cfg.tracer in
    if Trace.enabled tracer then begin
      Mutex.lock st.trace_lock;
      Trace.instant ~args tracer ~track:(domain_track domain) name;
      Mutex.unlock st.trace_lock
    end;
    match name with
    | "killed" | "stall" -> dump_flight ~reason:name st
    | _ -> ()

  let mark_dead st d =
    if not (Atomic.exchange st.dead.(d) true) then
      ignore (Atomic.fetch_and_add st.deaths 1);
    trace_instant st ~domain:d "killed"

  let ready st t = Atomic.get st.indegree.(t) = 0

  (* Exclusive-execution claim: stamp the claim time, then race the CAS.
     A loser's stamp is harmless — both contenders stamp the same
     instant, and only the winner's claim is ever read. *)
  let try_claim st ~domain t =
    st.claim_units.(t) <- now_units st;
    Atomic.compare_and_set st.owner.(t) (-1) domain

  let claimed st t = Atomic.get st.owner.(t) >= 0

  let run_task_enqueue st ~domain ~slowdown ~on_ready t =
    let g = st.graph in
    (* Arrival time of the last message: predecessors executed on another
       domain charge their edge's communication cost (in real ns) on top
       of their real finish time. Reading finish_ns/exec_domain is safe:
       both were written before the atomic indegree decrement that made
       [t] observable as ready. *)
    if st.cfg.charge_comm then begin
      let arrival = ref 0.0 in
      Taskgraph.iter_preds g t (fun p comm ->
          if st.exec_domain.(p) <> domain then
            arrival := Float.max !arrival (st.finish_ns.(p) +. (comm *. st.cfg.unit_ns)));
      let n = ref 0 in
      while Clock.now_ns () < !arrival do
        incr n;
        relax !n
      done
    end;
    let t0 = Clock.now_ns () in
    Calibrate.burn st.cal ~ns:(Taskgraph.comp g t *. st.cfg.unit_ns *. slowdown);
    let t1 = Clock.now_ns () in
    st.finish_ns.(t) <- t1;
    st.exec_domain.(t) <- domain;
    Taskgraph.iter_succs g t (fun s _ ->
        if Atomic.fetch_and_add st.indegree.(s) (-1) = 1 then on_ready s);
    ignore (Atomic.fetch_and_add st.completed 1);
    Flight.record st.flight ~domain Flight.Task
      ~ts:((t0 -. st.start_ns) /. 1e9)
      ~dur:((t1 -. t0) /. 1e9)
      ~a:t ~b:(-1.0);
    let tracer = st.cfg.tracer in
    if Trace.enabled tracer then begin
      Mutex.lock st.trace_lock;
      Trace.add_span tracer ~track:(domain_track domain)
        ~name:(Printf.sprintf "task %d" t)
        ~ts:((t0 -. st.start_ns) /. 1e9)
        ~dur:((t1 -. t0) /. 1e9);
      Mutex.unlock st.trace_lock
    end;
    t1 -. t0

  let run_task st ~domain ~slowdown t =
    run_task_enqueue st ~domain ~slowdown ~on_ready:ignore t

  let count_hint st ~hit =
    ignore (Atomic.fetch_and_add (if hit then st.hint_hits else st.hint_misses) 1)

  (* Shared worker skeleton of the dynamic engines (and the static one,
     which passes its own [finished] predicate): decide the fault state,
     then dispatch one step while work remains. The fault decision comes
     before the completion check: a kill that is due must register
     (fail-stop is a property of the domain, not of the remaining work),
     even if the other domains already finished everything while this one
     was being scheduled. *)
  let worker_loop st ~domain ?finished ~step () =
    let df = Fault.for_domain st.cfg.faults domain in
    let finished =
      match finished with
      | Some f -> f
      | None -> fun () -> Atomic.get st.completed >= st.total
    in
    let rec loop () =
      match Fault.decide df ~now:(now_units st) with
      | Fault.Die -> mark_dead st domain
      | Fault.Stall_until until ->
        trace_instant st ~domain ~args:[ ("until", until) ] "stall";
        let n = ref 0 in
        while now_units st < until && now_units st < df.Fault.kill_at do
          incr n;
          relax !n
        done;
        loop ()
      | Fault.Proceed slowdown ->
        if not (finished ()) then begin
          step ~slowdown;
          loop ()
        end
    in
    loop ()

  let outcome st ~wall_ns =
    let last_finish = Array.fold_left Float.max 0.0 st.finish_ns in
    let makespan_ns =
      if last_finish > st.start_ns then last_finish -. st.start_ns else wall_ns
    in
    let o =
      {
        engine = st.engine;
        domains = st.cfg.domains;
        total = st.total;
        completed = Atomic.get st.completed;
        real_ns = makespan_ns;
        real_units =
          (if st.cfg.unit_ns > 0.0 then makespan_ns /. st.cfg.unit_ns else Float.nan);
        predicted_units = st.predicted;
        per_domain_tasks = Array.copy st.d_tasks;
        per_domain_busy_ns = Array.copy st.d_busy_ns;
        per_domain_idle_ns = Array.copy st.d_idle_ns;
        steals = Atomic.get st.steals;
        failed_steals = Atomic.get st.failed_steals;
        recovered = Atomic.get st.recovered;
        killed =
          Array.fold_left (fun acc d -> if Atomic.get d then acc + 1 else acc) 0 st.dead;
        rescheds = Atomic.get st.rescheds;
        hint_hits = Atomic.get st.hint_hits;
        hint_misses = Atomic.get st.hint_misses;
      }
    in
    Option.iter (fun m -> emit_metrics m o) st.cfg.metrics;
    dump_flight ~reason:"end" st;
    o
end
