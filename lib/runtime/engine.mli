open! Flb_taskgraph
open! Flb_platform

(** Common interface of the execution engines.

    An engine runs a weighted task DAG on real OCaml 5 domains: each
    task burns calibrated spin-work proportional to its weight
    ({!Calibrate}), dependences are enforced with atomic indegree
    counters over the graph's CSR arrays, and cross-domain edges are
    optionally charged their communication cost as a real-time delay
    before the successor may start. Three engines share this interface:

    - {!Static} pins every task to the domain a {!Schedule.t} chose and
      consumes each domain's queue in schedule order — the FLB story:
      all placement decisions were made at compile time;
    - {!Steal} ignores the schedule entirely and balances dynamically
      with per-domain deques and randomized stealing — the decentralized
      list-scheduling baseline;
    - {!Affinity} is the production engine: work stealing {e guided} by
      the schedule — the FLB placement demoted from pins to affinity
      hints that route enabled tasks, while steal-half thieves override
      them whenever load demands it;
    - {!Virtual_clock} executes the same disciplines single-threaded
      under a deterministic virtual clock, reproducing
      [Flb_sim.Simulator.run] bit-for-bit, which is what makes the real
      engines testable.

    Fault injection ({!Fault.spec}) perturbs a run with per-domain
    slowdowns, stall windows and fail-stop kills; the [recover] policy
    chooses how the static engine reacts to a kill. *)

type recovery =
  | No_recovery
      (** survivors run only their own queues; work stranded on a dead
          domain (and everything depending on it) is abandoned *)
  | Steal_queues
      (** survivors claim the fronts of dead domains' queues,
          preserving schedule order — cheap, but keeps the now-stale
          placement *)
  | Resched of string
      (** on each death, snapshot the executed prefix and re-run the
          named list scheduler ({!Flb_reschedule.Reschedule}) over the
          unexecuted frontier on the surviving domains, then swap the
          per-domain queues *)

val recovery_to_string : recovery -> string

type config = {
  domains : int;  (** worker-domain count *)
  unit_ns : float;
      (** real nanoseconds one weight unit burns; 0 makes tasks
          instantaneous (engine-mechanics tests). Must be > 0 when
          [faults] is non-empty, since fault times are weight units. *)
  charge_comm : bool;
      (** charge cross-domain edges their communication cost as a
          real-time arrival delay (the machine model's message latency) *)
  faults : Fault.spec;
  recover : recovery;
      (** kill-recovery policy of the static engine (the stealing
          engine's deques recover naturally); default {!Steal_queues},
          the pre-rescheduling behaviour *)
  seed : int;  (** victim selection in the stealing engine *)
  tracer : Flb_obs.Trace.t;
      (** enabled tracer gets one track per domain ([D0], [D1], ...)
          with real timestamps: task spans, steal / recover / stall /
          killed instants *)
  metrics : Flb_obs.Metrics.t option;
      (** receives the [rt_*] series, see {!emit_metrics} *)
  flight_capacity : int;
      (** ring slots per domain in the always-on
          {!Flb_obs.Flight_recorder} *)
  flight_path : string option;
      (** where flight-recorder dumps go. When set, the rings are
          dumped on every [killed] and [stall] event (a fault is the
          moment the recent past becomes worth keeping — this includes
          engine panics, which {!State.mark_dead} the domain) and once
          more at the end of the run; [None] never writes a file but
          the rings still record *)
  trace_id : int64;
      (** request-scoped {!Flb_obs.Trace_context} id stamped into
          flight-dump metadata; 0 when the run has no originating
          request *)
}

val default_config : config
(** 4 domains, 1000 ns/unit, communication charged, no faults,
    steal-queues recovery, seed 1, disabled tracer, no metrics,
    256-slot flight rings with no dump path, no trace id. *)

type outcome = {
  engine : string;  (** ["static"], ["steal"] or ["affinity"] *)
  domains : int;
  total : int;  (** tasks in the graph *)
  completed : int;  (** tasks actually executed (= [total] unless every
                        domain was killed first) *)
  real_ns : float;
      (** wall-clock makespan: last task finish minus the start-gate
          epoch, so domain spawn/join overhead is excluded *)
  real_units : float;  (** [real_ns /. unit_ns]; [nan] when [unit_ns = 0] *)
  predicted_units : float;
      (** the schedule's analytic makespan (static engine); [nan] for
          the stealing engine, which has no prediction *)
  per_domain_tasks : int array;
  per_domain_busy_ns : float array;  (** time inside task spin-work *)
  per_domain_idle_ns : float array;  (** wall time minus busy time *)
  steals : int;
  failed_steals : int;
  recovered : int;  (** tasks taken from a dead domain's queue *)
  killed : int;  (** domains that died to a [Kill] fault *)
  rescheds : int;  (** frontier reschedules triggered by deaths *)
  hint_hits : int;
      (** tasks executed on their affinity-hinted domain — the scheduled
          processor under {!Affinity}, the deque a task was placed in
          under {!Steal}; always [completed] minus [recovered] for
          {!Static}, whose placement is the schedule itself *)
  hint_misses : int;  (** tasks executed away from their hint *)
}

val complete : outcome -> bool

val ratio : outcome -> float
(** [real_units /. predicted_units] — how much slower the real run was
    than the compile-time prediction. [nan] without a prediction. *)

val hint_hit_rate : outcome -> float
(** [hint_hits / (hint_hits + hint_misses)] — how much of the FLB
    placement survived dynamic execution. [nan] when the engine tracked
    no hints (e.g. a run that executed nothing). *)

val domain_track : int -> string
(** Trace track name of a domain: ["D0"], ["D1"], ... *)

val pp_outcome : Format.formatter -> outcome -> unit

val emit_metrics : Flb_obs.Metrics.t -> outcome -> unit
(** Record an outcome as [rt_*] series: counters [rt_tasks_total],
    [rt_steals_total], [rt_failed_steals_total] (also exported under the
    DLS-style name [rt_steal_fail_total]), [rt_recovered_total],
    [rt_killed_domains_total], [rt_affinity_hint_hits],
    [rt_affinity_hint_misses]; gauges [rt_real_makespan_ns],
    [rt_real_makespan_units], [rt_predicted_makespan_units],
    [rt_real_over_predicted], [rt_affinity_hint_rate] and per-domain
    [rt_idle_ns_d<i>] / [rt_busy_ns_d<i>]. *)

val plan_of_schedule : Schedule.t -> int list array
(** Per-processor execution order extracted from a complete schedule,
    sorted exactly as [Flb_sim.Simulator.run] sorts ((start, finish,
    topological position) — dependency-consistent even for zero-duration
    tasks), so the static engine and the virtual clock replay the same
    interleaving the simulator checks.
    @raise Invalid_argument if some task is unscheduled. *)

val relax : int -> unit
(** Cooperative wait step for worker loops: [fruitless] is the number of
    consecutive iterations that found nothing to do. Spins
    ([Domain.cpu_relax]) while small, naps 100 µs once past a grace
    threshold — so oversubscribed or single-core hosts make progress at
    sleep granularity instead of OS timeslices, while dedicated cores
    never reach the sleep. *)

(** {1 Shared run-state plumbing}

    Used by {!Static} and {!Steal}; not meant for external callers. *)

module State : sig
  type t = {
    cfg : config;
    graph : Taskgraph.t;
    total : int;
    predicted : float;
    engine : string;
    indegree : int Atomic.t array;  (** unfinished predecessors per task *)
    finish_ns : float array;
        (** absolute finish timestamp; published by the successor-side
            indegree decrement (plain write before atomic write) *)
    exec_domain : int array;  (** domain that ran the task; same publication *)
    completed : int Atomic.t;
    dead : bool Atomic.t array;
    deaths : int Atomic.t;  (** count of domains marked dead so far *)
    go : bool Atomic.t;  (** start gate; workers park until {!release} *)
    mutable start_ns : float;  (** run epoch, set by {!release} *)
    cal : Calibrate.t;
    flight : Flb_obs.Flight_recorder.t;
        (** always-on per-domain rings of recent events; dumped to
            [cfg.flight_path] on faults and at run end *)
    trace_lock : Mutex.t;  (** Trace.t is single-writer; engines share one *)
    steals : int Atomic.t;
    failed_steals : int Atomic.t;
    recovered : int Atomic.t;
    rescheds : int Atomic.t;
    hint_hits : int Atomic.t;
    hint_misses : int Atomic.t;
    owner : int Atomic.t array;
        (** exclusive-execution claims: [-1] free, else the claiming
            domain. The static engine claims before running so a
            reschedule's queue swap can never double-execute a task. *)
    claim_units : float array;
        (** claim timestamp (weight units) per task, stamped at claim;
            the reschedule snapshot uses it as the frozen start time of
            in-flight work *)
    d_tasks : int array;  (** slot [d] written only by domain [d] *)
    d_busy_ns : float array;
    d_idle_ns : float array;
  }

  val create : config -> engine:string -> predicted:float -> Taskgraph.t -> t
  (** Validates the config ([domains >= 1], [unit_ns >= 0], fault spec
      sane for the team size, [unit_ns > 0] when faults are present) and
      builds the shared arrays. @raise Invalid_argument on a bad config. *)

  val release : t -> unit
  (** Stamp the run epoch and open the start gate. Call once, after
      spawning the whole worker team: [Domain.spawn] costs milliseconds,
      so letting workers park on the gate keeps spawn overhead out of
      the measured makespan. *)

  val wait_start : t -> unit
  (** Park until {!release}; every worker's first action. *)

  val now_units : t -> float
  (** Elapsed weight units since {!start} (0 when [unit_ns = 0]). *)

  val is_dead : t -> int -> bool

  val mark_dead : t -> int -> unit
  (** Flags the domain dead and traces a [killed] instant (which also
      records it in the flight ring and triggers a flight dump when
      [flight_path] is set). *)

  val ready : t -> int -> bool
  (** All predecessors executed (indegree 0). *)

  val try_claim : t -> domain:int -> int -> bool
  (** Atomically claim a task for execution by [domain] (CAS [-1 ->
      domain] on [owner]), stamping [claim_units] first. Returns false
      if another domain already owns it — the caller must drop the task
      without running it. *)

  val claimed : t -> int -> bool

  val run_task : t -> domain:int -> slowdown:float -> int -> float
  (** Execute one ready task on the calling domain: wait out the
      message-arrival time implied by cross-domain predecessors (when
      [charge_comm]), burn [weight *. unit_ns *. slowdown] of spin-work,
      publish finish time and executing domain, decrement successor
      indegrees, bump the completion counter, trace a span. Returns the
      busy nanoseconds spent. *)

  val run_task_enqueue : t -> domain:int -> slowdown:float -> on_ready:(int -> unit) -> int -> float
  (** Same, additionally calling [on_ready s] for every successor whose
      indegree this completion dropped to zero (the stealing engine
      pushes them onto the finisher's deque). *)

  val count_hint : t -> hit:bool -> unit
  (** Bump the affinity-hint hit or miss counter for one executed task. *)

  val worker_loop :
    t -> domain:int -> ?finished:(unit -> bool) -> step:(slowdown:float -> unit) -> unit -> unit
  (** The worker skeleton every engine shares: poll the domain's fault
      clock ([Die] marks the domain dead and returns, [Stall_until]
      relax-waits out the window), then call [step ~slowdown] while
      [finished ()] is false (default: all tasks completed). The fault
      decision deliberately precedes the completion check — a kill that
      is due registers even when no work remains. *)

  val trace_instant : t -> domain:int -> ?args:(string * float) list -> string -> unit
  (** Emit a named instant: always into the domain's flight ring
      (recognized names — [steal], [steal-half] (with [count] /
      [victim] args), [recover], [stall], [killed], [resched] — map to
      typed ring events, with [task] / [victim] / [until] / [frontier] /
      [latency_ns] args carried along), and into the tracer when
      enabled. [killed] and [stall] trigger a flight dump. *)

  val dump_flight : ?reason:string -> t -> unit
  (** Write the flight rings to [cfg.flight_path] now (no-op without a
      path). Dumps carry a meta line with the reason, engine, domain
      count, unit_ns and trace id. Never raises. *)

  val outcome : t -> wall_ns:float -> outcome
  (** Assemble the outcome and, when configured, {!emit_metrics}.
      [real_ns] is the last task's finish timestamp minus the epoch
      (spawn/join overhead excluded); [wall_ns] is the fallback when no
      task executed at all. *)
end
