open! Flb_taskgraph
open! Flb_platform
module Snapshot = Flb_reschedule.Snapshot
module Reschedule = Flb_reschedule.Reschedule

type outcome = {
  start : float array;
  finish : float array;
  exec_domain : int array;
  makespan : float;
  per_domain_tasks : int array;
  steals : int;
  hint_hits : int;
  hint_misses : int;
}

(* The event-driven simulator dispatches a processor's head task at the
   later of "processor became idle" and "last message arrived", where a
   zero-latency message arrives at the sender's exact finish float and a
   positive-latency one at [finish +. latency]. Those event times are
   reproduced here by a fixpoint sweep over the per-processor queues —
   same floats in, same float operations, bit-identical times out. *)
let run_static sched =
  let g = Schedule.graph sched in
  let machine = Schedule.machine sched in
  let n = Taskgraph.num_tasks g in
  let p = Schedule.num_procs sched in
  let queues = Array.map Array.of_list (Engine.plan_of_schedule sched) in
  let qpos = Array.make p 0 in
  let proc_free = Array.make p 0.0 in
  let pending = Array.init n (Taskgraph.in_degree g) in
  let start = Array.make n Float.nan in
  let finish = Array.make n Float.nan in
  let executed = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    for pr = 0 to p - 1 do
      let head_runs = ref true in
      while !head_runs do
        if qpos.(pr) >= Array.length queues.(pr) then head_runs := false
        else begin
          let t = queues.(pr).(qpos.(pr)) in
          if pending.(t) > 0 then head_runs := false
          else begin
            let at = ref proc_free.(pr) in
            Taskgraph.iter_preds g t (fun pd w ->
                let latency =
                  Machine.comm_time machine ~src:(Schedule.proc sched pd) ~dst:pr
                    ~cost:w
                in
                let arrival =
                  if latency = 0.0 then finish.(pd) else finish.(pd) +. latency
                in
                at := Float.max !at arrival);
            start.(t) <- !at;
            finish.(t) <- !at +. Taskgraph.comp g t;
            proc_free.(pr) <- finish.(t);
            Taskgraph.iter_succs g t (fun s _ -> pending.(s) <- pending.(s) - 1);
            qpos.(pr) <- qpos.(pr) + 1;
            incr executed;
            progress := true
          end
        end
      done
    done
  done;
  if !executed < n then
    invalid_arg "Virtual_clock.run_static: replay deadlocked (inconsistent order)";
  {
    start;
    finish;
    exec_domain = Array.init n (Schedule.proc sched);
    makespan = Array.fold_left Float.max 0.0 finish;
    per_domain_tasks = Array.map Array.length queues;
    steals = 0;
    (* Every task runs exactly where the schedule placed it. *)
    hint_hits = n;
    hint_misses = 0;
  }

let run_steal ?(charge_comm = true) ~domains g =
  if domains < 1 then invalid_arg "Virtual_clock.run_steal: domains must be >= 1";
  let n = Taskgraph.num_tasks g in
  let pending = Array.init n (Taskgraph.in_degree g) in
  let deques = Array.init domains (fun _ -> Deque.create ()) in
  let next = ref 0 in
  for t = 0 to n - 1 do
    if Taskgraph.in_degree g t = 0 then begin
      Deque.push_back deques.(!next mod domains) t;
      incr next
    end
  done;
  let vt = Array.make domains 0.0 in
  let exec_domain = Array.make n (-1) in
  let start = Array.make n Float.nan in
  let finish = Array.make n Float.nan in
  let per_domain_tasks = Array.make domains 0 in
  let steals = ref 0 in
  let executed = ref 0 in
  while !executed < n do
    (* The earliest-free domain acts next; ties to the lowest id. *)
    let d = ref 0 in
    for i = 1 to domains - 1 do
      if vt.(i) < vt.(!d) then d := i
    done;
    let d = !d in
    let task =
      match Deque.pop_back deques.(d) with
      | Some _ as t -> t
      | None ->
        let found = ref None in
        for k = 1 to domains - 1 do
          if !found = None then begin
            match Deque.take_front deques.((d + k) mod domains) with
            | Some _ as t ->
              incr steals;
              found := t
            | None -> ()
          end
        done;
        !found
    in
    match task with
    | None ->
      (* Unreachable on a DAG: every unexecuted task with indegree 0 sits
         in exactly one deque, and some such task must exist. *)
      invalid_arg "Virtual_clock.run_steal: no runnable task (graph has a cycle?)"
    | Some t ->
      let ready = ref 0.0 in
      Taskgraph.iter_preds g t (fun pd w ->
          let r =
            if charge_comm && exec_domain.(pd) <> d then finish.(pd) +. w
            else finish.(pd)
          in
          ready := Float.max !ready r);
      let s = Float.max vt.(d) !ready in
      start.(t) <- s;
      finish.(t) <- s +. Taskgraph.comp g t;
      vt.(d) <- finish.(t);
      exec_domain.(t) <- d;
      per_domain_tasks.(d) <- per_domain_tasks.(d) + 1;
      incr executed;
      Taskgraph.iter_succs g t (fun su _ ->
          pending.(su) <- pending.(su) - 1;
          if pending.(su) = 0 then Deque.push_back deques.(d) su)
  done;
  {
    start;
    finish;
    exec_domain;
    makespan = Array.fold_left Float.max 0.0 finish;
    per_domain_tasks;
    steals = !steals;
    (* A task's hint is the deque it was placed in, so each steal is
       exactly one miss — matching the real engine's accounting. *)
    hint_hits = n - !steals;
    hint_misses = !steals;
  }

(* Deterministic rendition of {!Affinity.run}: domains act in
   lowest-virtual-time-first order (ties to the lowest id); each deque is
   seeded with its scheduled entry tasks and a newly enabled task is
   routed to the deque of its hinted (scheduled) processor. An empty
   domain steals half of the {e deepest} other deque — the load-aware
   victim rule, with the random two-victim probe collapsed to its
   deterministic limit — runs the oldest stolen task and keeps the rest
   at its own front. Each stolen task whose hint is not the thief is
   stamped with a transfer deadline — steal instant plus
   [Machine.comm_time] for its heaviest in-edge — and may not start
   before it, exactly as the real engine prices migration (transfers
   overlap with whatever the thief runs first). *)
let run_affinity ?(charge_comm = true) sched =
  let g = Schedule.graph sched in
  let machine = Schedule.machine sched in
  let n = Taskgraph.num_tasks g in
  let domains = Schedule.num_procs sched in
  let mig_cost =
    Array.init n (fun t ->
        let m = ref 0.0 in
        Taskgraph.iter_preds g t (fun _ w -> if w > !m then m := w);
        !m)
  in
  let pending = Array.init n (Taskgraph.in_degree g) in
  (* Reversed so the owner's LIFO back yields schedule order, as in the
     real engine's seeding. *)
  let deques =
    Array.map
      (fun tasks ->
        Deque.of_list
          (List.rev (List.filter (fun t -> Taskgraph.in_degree g t = 0) tasks)))
      (Engine.plan_of_schedule sched)
  in
  let vt = Array.make domains 0.0 in
  let mig_deadline = Array.make n 0.0 in
  let exec_domain = Array.make n (-1) in
  let start = Array.make n Float.nan in
  let finish = Array.make n Float.nan in
  let per_domain_tasks = Array.make domains 0 in
  let steals = ref 0 in
  let hint_hits = ref 0 in
  let hint_misses = ref 0 in
  let executed = ref 0 in
  while !executed < n do
    let d = ref 0 in
    for i = 1 to domains - 1 do
      if vt.(i) < vt.(!d) then d := i
    done;
    let d = !d in
    let task =
      match Deque.pop_back deques.(d) with
      | Some _ as t -> t
      | None ->
        let victim = ref (-1) and depth = ref 0 in
        for k = 1 to domains - 1 do
          let v = (d + k) mod domains in
          let len = Deque.length deques.(v) in
          if len > !depth then begin
            depth := len;
            victim := v
          end
        done;
        if !victim < 0 then None
        else begin
          match Deque.steal_half deques.(!victim) with
          | [] -> None
          | t :: rest as batch ->
            incr steals;
            if charge_comm then
              List.iter
                (fun s ->
                  let h = Schedule.proc sched s in
                  if h <> d then
                    mig_deadline.(s) <-
                      vt.(d)
                      +. Machine.comm_time machine ~src:h ~dst:d ~cost:mig_cost.(s))
                batch;
            Deque.push_front_batch deques.(d) rest;
            Some t
        end
    in
    match task with
    | None ->
      (* Unreachable on a DAG: every unexecuted indegree-0 task sits in
         exactly one deque, and some such task must exist. *)
      invalid_arg "Virtual_clock.run_affinity: no runnable task (graph has a cycle?)"
    | Some t ->
      let ready = ref mig_deadline.(t) in
      Taskgraph.iter_preds g t (fun pd w ->
          let r =
            if charge_comm && exec_domain.(pd) <> d then finish.(pd) +. w
            else finish.(pd)
          in
          ready := Float.max !ready r);
      let s = Float.max vt.(d) !ready in
      start.(t) <- s;
      finish.(t) <- s +. Taskgraph.comp g t;
      vt.(d) <- finish.(t);
      exec_domain.(t) <- d;
      per_domain_tasks.(d) <- per_domain_tasks.(d) + 1;
      if Schedule.proc sched t = d then incr hint_hits else incr hint_misses;
      incr executed;
      Taskgraph.iter_succs g t (fun su _ ->
          pending.(su) <- pending.(su) - 1;
          if pending.(su) = 0 then Deque.push_back deques.(Schedule.proc sched su) su)
  done;
  {
    start;
    finish;
    exec_domain;
    makespan = Array.fold_left Float.max 0.0 finish;
    per_domain_tasks;
    steals = !steals;
    hint_hits = !hint_hits;
    hint_misses = !hint_misses;
  }

(* --- fault-injected variants --- *)

type faulty_outcome = {
  start : float array;
  finish : float array;
  exec_domain : int array;
  makespan : float;
  completed : int;
  total : int;
  killed : int;
  rescheds : int;
  recovered : int;
  steals : int;
  hint_hits : int;
  hint_misses : int;
  per_domain_tasks : int array;
}

let faulty_complete o = o.completed = o.total

(* Earliest instant at or after [x] that is outside every stall window
   of the domain. Windows are sorted by start; [x] only moves forward,
   so one ascending pass settles it. *)
let next_allowed (df : Fault.domain_faults) x =
  List.fold_left
    (fun x (at, dur) -> if x >= at && x < at +. dur then at +. dur else x)
    x df.Fault.stalls

(* Deterministic rendition of [Static.run] under faults: a global
   event loop over per-domain claim events and death events, processed
   in increasing virtual time (deaths before claims on ties, then lowest
   domain, then a domain's own queue before a dead one's). A claim takes
   the front of a queue at the later of the domain's free time and the
   last message arrival, skipped past stall windows; a death fires at
   [max (domain's free time) kill_at] — fail-stop between tasks. With an
   empty fault spec no death or stall ever perturbs a claim and the
   per-task recurrence is exactly {!run_static}'s fixpoint, so the
   outcome matches it bit for bit. *)
let run_static_faulty ?(faults = Fault.none) ?(recover = Engine.Steal_queues) sched =
  let g = Schedule.graph sched in
  let machine = Schedule.machine sched in
  let n = Taskgraph.num_tasks g in
  let p = Schedule.num_procs sched in
  (match Fault.validate faults ~domains:p with
  | Ok () -> ()
  | Error e -> invalid_arg ("Virtual_clock: " ^ Fault.error_to_string e));
  (match recover with
  | Engine.Resched algo when Reschedule.find algo = None ->
    invalid_arg
      (Printf.sprintf "Virtual_clock: unknown reschedule algorithm %S" algo)
  | _ -> ());
  let df = Array.init p (Fault.for_domain faults) in
  let queues = Array.map Array.of_list (Engine.plan_of_schedule sched) in
  let qpos = Array.make p 0 in
  let vt = Array.make p 0.0 in
  let dead = Array.make p false in
  let death_time = Array.make p Float.nan in
  let pending = Array.init n (Taskgraph.in_degree g) in
  let start = Array.make n Float.nan in
  let finish = Array.make n Float.nan in
  let exec_domain = Array.make n (-1) in
  let doomed = Array.make n false in
  let per_domain_tasks = Array.make p 0 in
  let executed = ref 0 in
  let killed = ref 0 in
  let rescheds = ref 0 in
  let recovered = ref 0 in
  let arrival d t =
    let at = ref 0.0 in
    Taskgraph.iter_preds g t (fun pd w ->
        let latency = Machine.comm_time machine ~src:exec_domain.(pd) ~dst:d ~cost:w in
        let a = if latency = 0.0 then finish.(pd) else finish.(pd) +. latency in
        at := Float.max !at a);
    !at
  in
  (* Queue front of [v], skipping entries doomed by a No_recovery death
     sweep (the real engine pulls and drops those). *)
  let head v =
    while qpos.(v) < Array.length queues.(v) && doomed.(queues.(v).(qpos.(v))) do
      qpos.(v) <- qpos.(v) + 1
    done;
    if qpos.(v) < Array.length queues.(v) then Some queues.(v).(qpos.(v)) else None
  in
  let doom_dead_queues () =
    let stack = ref [] in
    let push t =
      if not doomed.(t) && exec_domain.(t) < 0 then begin
        doomed.(t) <- true;
        stack := t :: !stack
      end
    in
    for v = 0 to p - 1 do
      if dead.(v) then
        for i = qpos.(v) to Array.length queues.(v) - 1 do
          push queues.(v).(i)
        done
    done;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | t :: rest ->
        stack := rest;
        Taskgraph.iter_succs g t (fun s _ -> push s)
    done
  in
  let reschedule algo ~now =
    let live = ref 0 in
    for v = 0 to p - 1 do
      if not dead.(v) then incr live
    done;
    if !live > 0 && !executed < n then begin
      let dead_l = ref [] and ready_l = ref [] and frozen = ref [] in
      for v = p - 1 downto 0 do
        if dead.(v) then dead_l := v :: !dead_l
        else ready_l := (v, Float.max now vt.(v)) :: !ready_l
      done;
      for t = n - 1 downto 0 do
        if exec_domain.(t) >= 0 then
          frozen :=
            {
              Snapshot.task = t;
              proc = exec_domain.(t);
              start = start.(t);
              finish = finish.(t);
            }
            :: !frozen
      done;
      let snap = Snapshot.make ~dead:!dead_l ~ready:!ready_l ~frozen:!frozen g machine in
      let sched' = Reschedule.run ~algo snap in
      let plan' = Engine.plan_of_schedule sched' in
      Array.iteri
        (fun v tasks ->
          queues.(v) <-
            Array.of_list
              (List.filter (fun t -> not (Schedule.is_frozen sched' t)) tasks);
          qpos.(v) <- 0)
        plan';
      incr rescheds
    end
  in
  (* One pass per event keeps this O(events * P * degree) — fine for the
     test- and experiment-sized graphs the virtual clock exists for. *)
  let running = ref true in
  while !running do
    (* Best claim: (time, domain, task, source queue). Best death:
       (time, domain). *)
    let ct = ref Float.infinity and cd = ref (-1) and ctask = ref (-1) in
    let csrc = ref (-1) in
    let dt = ref Float.infinity and dd = ref (-1) in
    for d = 0 to p - 1 do
      if not dead.(d) then begin
        let kat = df.(d).Fault.kill_at in
        let deatht = if Float.is_finite kat then Float.max vt.(d) kat else infinity in
        (* Earliest claim available to this domain: own front, then —
           under steal recovery — the fronts of dead domains' queues,
           floored at the victim's death. *)
        let my_t = ref (-1) and my_time = ref Float.infinity and my_src = ref (-1) in
        let consider ~floor v =
          match head v with
          | Some t when pending.(t) = 0 ->
            let base = Float.max vt.(d) (arrival d t) in
            let base = if floor > base then floor else base in
            let c = next_allowed df.(d) base in
            if c < !my_time then begin
              my_t := t;
              my_time := c;
              my_src := v
            end
          | _ -> ()
        in
        consider ~floor:0.0 d;
        (match recover with
        | Engine.Steal_queues ->
          for v = 0 to p - 1 do
            if v <> d && dead.(v) then consider ~floor:death_time.(v) v
          done
        | Engine.No_recovery | Engine.Resched _ -> ());
        (* The domain polls the fault clock before taking work, so a
           death due at or before the claim preempts it. *)
        if !my_t >= 0 && !my_time < deatht then begin
          if !my_time < !ct then begin
            ct := !my_time;
            cd := d;
            ctask := !my_t;
            csrc := !my_src
          end
        end
        else if deatht < !dt then begin
          dt := deatht;
          dd := d
        end
      end
    done;
    if !dd >= 0 && !dt <= !ct then begin
      (* Fire the death only if the domain is still in its loop: once
         everything has executed, workers observe completion and exit,
         so a later kill never registers. *)
      let horizon = Array.fold_left Float.max 0.0 vt in
      if !executed < n || !dt <= horizon then begin
        let d = !dd in
        dead.(d) <- true;
        death_time.(d) <- !dt;
        incr killed;
        match recover with
        | Engine.No_recovery -> doom_dead_queues ()
        | Engine.Steal_queues -> ()
        | Engine.Resched algo -> reschedule algo ~now:!dt
      end
      else running := false
    end
    else if !cd >= 0 then begin
      let d = !cd and t = !ctask in
      if !csrc <> d then incr recovered;
      start.(t) <- !ct;
      finish.(t) <- !ct +. (Taskgraph.comp g t *. df.(d).Fault.slowdown);
      vt.(d) <- finish.(t);
      exec_domain.(t) <- d;
      per_domain_tasks.(d) <- per_domain_tasks.(d) + 1;
      qpos.(!csrc) <- qpos.(!csrc) + 1;
      Taskgraph.iter_succs g t (fun s _ -> pending.(s) <- pending.(s) - 1);
      incr executed
    end
    else running := false
  done;
  {
    start;
    finish;
    exec_domain;
    makespan = Array.fold_left Float.max 0.0 vt;
    completed = !executed;
    total = n;
    killed = !killed;
    rescheds = !rescheds;
    recovered = !recovered;
    steals = 0;
    (* Recovered tasks ran away from their scheduled placement; all
       others ran exactly where placed. *)
    hint_hits = !executed - !recovered;
    hint_misses = !recovered;
    per_domain_tasks;
  }

(* Same discipline as {!run_steal}, with kills and stalls: dead domains
   stop acting but their deques stay stealable, so recovery is the
   stealing engine's natural behaviour. With an empty spec this follows
   exactly the same action sequence as {!run_steal}. *)
let run_steal_faulty ?(charge_comm = true) ?(faults = Fault.none) ~domains g =
  if domains < 1 then
    invalid_arg "Virtual_clock.run_steal_faulty: domains must be >= 1";
  (match Fault.validate faults ~domains with
  | Ok () -> ()
  | Error e -> invalid_arg ("Virtual_clock: " ^ Fault.error_to_string e));
  let df = Array.init domains (Fault.for_domain faults) in
  let n = Taskgraph.num_tasks g in
  let pending = Array.init n (Taskgraph.in_degree g) in
  let deques = Array.init domains (fun _ -> Deque.create ()) in
  let next = ref 0 in
  for t = 0 to n - 1 do
    if Taskgraph.in_degree g t = 0 then begin
      Deque.push_back deques.(!next mod domains) t;
      incr next
    end
  done;
  let vt = Array.make domains 0.0 in
  let dead = Array.make domains false in
  let exec_domain = Array.make n (-1) in
  let start = Array.make n Float.nan in
  let finish = Array.make n Float.nan in
  let per_domain_tasks = Array.make domains 0 in
  let steals = ref 0 in
  let killed = ref 0 in
  let executed = ref 0 in
  let running = ref true in
  while !running && !executed < n do
    (* The earliest-free alive domain acts next; ties to the lowest id.
       Stall windows push its acting time forward. *)
    let d = ref (-1) in
    let at = ref Float.infinity in
    for i = 0 to domains - 1 do
      if not dead.(i) then begin
        let a = next_allowed df.(i) vt.(i) in
        if a < !at then begin
          at := a;
          d := i
        end
      end
    done;
    if !d < 0 then running := false
    else begin
      let d = !d in
      if !at >= df.(d).Fault.kill_at then begin
        dead.(d) <- true;
        incr killed
      end
      else begin
        let task =
          match Deque.pop_back deques.(d) with
          | Some _ as t -> t
          | None ->
            let found = ref None in
            for k = 1 to domains - 1 do
              if !found = None then begin
                match Deque.take_front deques.((d + k) mod domains) with
                | Some _ as t ->
                  incr steals;
                  found := t
                | None -> ()
              end
            done;
            !found
        in
        match task with
        | None ->
          (* Every unexecuted indegree-0 task sits in some deque (dead
             ones included, which stay stealable), so an alive domain
             always finds work while tasks remain. *)
          invalid_arg "Virtual_clock.run_steal_faulty: no runnable task"
        | Some t ->
          let ready = ref 0.0 in
          Taskgraph.iter_preds g t (fun pd w ->
              let r =
                if charge_comm && exec_domain.(pd) <> d then finish.(pd) +. w
                else finish.(pd)
              in
              ready := Float.max !ready r);
          let s = next_allowed df.(d) (Float.max !at !ready) in
          start.(t) <- s;
          finish.(t) <- s +. (Taskgraph.comp g t *. df.(d).Fault.slowdown);
          vt.(d) <- finish.(t);
          exec_domain.(t) <- d;
          per_domain_tasks.(d) <- per_domain_tasks.(d) + 1;
          incr executed;
          Taskgraph.iter_succs g t (fun su _ ->
              pending.(su) <- pending.(su) - 1;
              if pending.(su) = 0 then Deque.push_back deques.(d) su)
      end
    end
  done;
  let makespan = Array.fold_left Float.max 0.0 vt in
  (* Kills due before the team would have disbanded still register. *)
  for i = 0 to domains - 1 do
    if (not dead.(i)) && df.(i).Fault.kill_at <= makespan then incr killed
  done;
  {
    start;
    finish;
    exec_domain;
    makespan;
    completed = !executed;
    total = n;
    killed = !killed;
    rescheds = 0;
    recovered = 0;
    steals = !steals;
    hint_hits = !executed - !steals;
    hint_misses = !steals;
    per_domain_tasks;
  }

(* Same discipline as {!run_affinity}, with kills and stalls: dead
   domains stop acting but their deques stay stealable (steal-half
   thefts from a dead victim count the whole batch as [recovered]), and
   hint routing falls back to the enabling domain while the hinted one
   is dead. With an empty spec this follows exactly the same action
   sequence as {!run_affinity}. *)
let run_affinity_faulty ?(charge_comm = true) ?(faults = Fault.none) sched =
  let g = Schedule.graph sched in
  let machine = Schedule.machine sched in
  let n = Taskgraph.num_tasks g in
  let domains = Schedule.num_procs sched in
  (match Fault.validate faults ~domains with
  | Ok () -> ()
  | Error e -> invalid_arg ("Virtual_clock: " ^ Fault.error_to_string e));
  let df = Array.init domains (Fault.for_domain faults) in
  let mig_cost =
    Array.init n (fun t ->
        let m = ref 0.0 in
        Taskgraph.iter_preds g t (fun _ w -> if w > !m then m := w);
        !m)
  in
  let pending = Array.init n (Taskgraph.in_degree g) in
  let deques =
    Array.map
      (fun tasks ->
        Deque.of_list
          (List.rev (List.filter (fun t -> Taskgraph.in_degree g t = 0) tasks)))
      (Engine.plan_of_schedule sched)
  in
  let vt = Array.make domains 0.0 in
  let mig_deadline = Array.make n 0.0 in
  let dead = Array.make domains false in
  let exec_domain = Array.make n (-1) in
  let start = Array.make n Float.nan in
  let finish = Array.make n Float.nan in
  let per_domain_tasks = Array.make domains 0 in
  let steals = ref 0 in
  let killed = ref 0 in
  let recovered = ref 0 in
  let hint_hits = ref 0 in
  let hint_misses = ref 0 in
  let executed = ref 0 in
  let running = ref true in
  while !running && !executed < n do
    let d = ref (-1) in
    let at = ref Float.infinity in
    for i = 0 to domains - 1 do
      if not dead.(i) then begin
        let a = next_allowed df.(i) vt.(i) in
        if a < !at then begin
          at := a;
          d := i
        end
      end
    done;
    if !d < 0 then running := false
    else begin
      let d = !d in
      if !at >= df.(d).Fault.kill_at then begin
        dead.(d) <- true;
        incr killed
      end
      else begin
        let task =
          match Deque.pop_back deques.(d) with
          | Some _ as t -> t
          | None ->
            let victim = ref (-1) and depth = ref 0 in
            for k = 1 to domains - 1 do
              let v = (d + k) mod domains in
              let len = Deque.length deques.(v) in
              if len > !depth then begin
                depth := len;
                victim := v
              end
            done;
            if !victim < 0 then None
            else begin
              match Deque.steal_half deques.(!victim) with
              | [] -> None
              | t :: rest as batch ->
                incr steals;
                if dead.(!victim) then recovered := !recovered + List.length batch;
                if charge_comm then
                  List.iter
                    (fun s ->
                      let h = Schedule.proc sched s in
                      if h <> d then
                        mig_deadline.(s) <-
                          !at
                          +. Machine.comm_time machine ~src:h ~dst:d
                               ~cost:mig_cost.(s))
                    batch;
                Deque.push_front_batch deques.(d) rest;
                Some t
            end
        in
        match task with
        | None ->
          (* Every unexecuted indegree-0 task sits in some deque (dead
             ones included, which stay stealable), so an alive domain
             always finds work while tasks remain. *)
          invalid_arg "Virtual_clock.run_affinity_faulty: no runnable task"
        | Some t ->
          let ready = ref mig_deadline.(t) in
          Taskgraph.iter_preds g t (fun pd w ->
              let r =
                if charge_comm && exec_domain.(pd) <> d then finish.(pd) +. w
                else finish.(pd)
              in
              ready := Float.max !ready r);
          let s = next_allowed df.(d) (Float.max !at !ready) in
          start.(t) <- s;
          finish.(t) <- s +. (Taskgraph.comp g t *. df.(d).Fault.slowdown);
          vt.(d) <- finish.(t);
          exec_domain.(t) <- d;
          per_domain_tasks.(d) <- per_domain_tasks.(d) + 1;
          if Schedule.proc sched t = d then incr hint_hits else incr hint_misses;
          incr executed;
          Taskgraph.iter_succs g t (fun su _ ->
              pending.(su) <- pending.(su) - 1;
              if pending.(su) = 0 then begin
                let h = Schedule.proc sched su in
                Deque.push_back deques.(if dead.(h) then d else h) su
              end)
      end
    end
  done;
  let makespan = Array.fold_left Float.max 0.0 vt in
  (* Kills due before the team would have disbanded still register. *)
  for i = 0 to domains - 1 do
    if (not dead.(i)) && df.(i).Fault.kill_at <= makespan then incr killed
  done;
  {
    start;
    finish;
    exec_domain;
    makespan;
    completed = !executed;
    total = n;
    killed = !killed;
    rescheds = 0;
    recovered = !recovered;
    steals = !steals;
    hint_hits = !hint_hits;
    hint_misses = !hint_misses;
    per_domain_tasks;
  }
