open! Flb_taskgraph
open! Flb_platform

type outcome = {
  start : float array;
  finish : float array;
  makespan : float;
  per_domain_tasks : int array;
  steals : int;
}

(* The event-driven simulator dispatches a processor's head task at the
   later of "processor became idle" and "last message arrived", where a
   zero-latency message arrives at the sender's exact finish float and a
   positive-latency one at [finish +. latency]. Those event times are
   reproduced here by a fixpoint sweep over the per-processor queues —
   same floats in, same float operations, bit-identical times out. *)
let run_static sched =
  let g = Schedule.graph sched in
  let machine = Schedule.machine sched in
  let n = Taskgraph.num_tasks g in
  let p = Schedule.num_procs sched in
  let queues = Array.map Array.of_list (Engine.plan_of_schedule sched) in
  let qpos = Array.make p 0 in
  let proc_free = Array.make p 0.0 in
  let pending = Array.init n (Taskgraph.in_degree g) in
  let start = Array.make n Float.nan in
  let finish = Array.make n Float.nan in
  let executed = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    for pr = 0 to p - 1 do
      let head_runs = ref true in
      while !head_runs do
        if qpos.(pr) >= Array.length queues.(pr) then head_runs := false
        else begin
          let t = queues.(pr).(qpos.(pr)) in
          if pending.(t) > 0 then head_runs := false
          else begin
            let at = ref proc_free.(pr) in
            Taskgraph.iter_preds g t (fun pd w ->
                let latency =
                  Machine.comm_time machine ~src:(Schedule.proc sched pd) ~dst:pr
                    ~cost:w
                in
                let arrival =
                  if latency = 0.0 then finish.(pd) else finish.(pd) +. latency
                in
                at := Float.max !at arrival);
            start.(t) <- !at;
            finish.(t) <- !at +. Taskgraph.comp g t;
            proc_free.(pr) <- finish.(t);
            Taskgraph.iter_succs g t (fun s _ -> pending.(s) <- pending.(s) - 1);
            qpos.(pr) <- qpos.(pr) + 1;
            incr executed;
            progress := true
          end
        end
      done
    done
  done;
  if !executed < n then
    invalid_arg "Virtual_clock.run_static: replay deadlocked (inconsistent order)";
  {
    start;
    finish;
    makespan = Array.fold_left Float.max 0.0 finish;
    per_domain_tasks = Array.map Array.length queues;
    steals = 0;
  }

let run_steal ?(charge_comm = true) ~domains g =
  if domains < 1 then invalid_arg "Virtual_clock.run_steal: domains must be >= 1";
  let n = Taskgraph.num_tasks g in
  let pending = Array.init n (Taskgraph.in_degree g) in
  let deques = Array.init domains (fun _ -> Deque.create ()) in
  let next = ref 0 in
  for t = 0 to n - 1 do
    if Taskgraph.in_degree g t = 0 then begin
      Deque.push_back deques.(!next mod domains) t;
      incr next
    end
  done;
  let vt = Array.make domains 0.0 in
  let exec_domain = Array.make n (-1) in
  let start = Array.make n Float.nan in
  let finish = Array.make n Float.nan in
  let per_domain_tasks = Array.make domains 0 in
  let steals = ref 0 in
  let executed = ref 0 in
  while !executed < n do
    (* The earliest-free domain acts next; ties to the lowest id. *)
    let d = ref 0 in
    for i = 1 to domains - 1 do
      if vt.(i) < vt.(!d) then d := i
    done;
    let d = !d in
    let task =
      match Deque.pop_back deques.(d) with
      | Some _ as t -> t
      | None ->
        let found = ref None in
        for k = 1 to domains - 1 do
          if !found = None then begin
            match Deque.take_front deques.((d + k) mod domains) with
            | Some _ as t ->
              incr steals;
              found := t
            | None -> ()
          end
        done;
        !found
    in
    match task with
    | None ->
      (* Unreachable on a DAG: every unexecuted task with indegree 0 sits
         in exactly one deque, and some such task must exist. *)
      invalid_arg "Virtual_clock.run_steal: no runnable task (graph has a cycle?)"
    | Some t ->
      let ready = ref 0.0 in
      Taskgraph.iter_preds g t (fun pd w ->
          let r =
            if charge_comm && exec_domain.(pd) <> d then finish.(pd) +. w
            else finish.(pd)
          in
          ready := Float.max !ready r);
      let s = Float.max vt.(d) !ready in
      start.(t) <- s;
      finish.(t) <- s +. Taskgraph.comp g t;
      vt.(d) <- finish.(t);
      exec_domain.(t) <- d;
      per_domain_tasks.(d) <- per_domain_tasks.(d) + 1;
      incr executed;
      Taskgraph.iter_succs g t (fun su _ ->
          pending.(su) <- pending.(su) - 1;
          if pending.(su) = 0 then Deque.push_back deques.(d) su)
  done;
  {
    start;
    finish;
    makespan = Array.fold_left Float.max 0.0 finish;
    per_domain_tasks;
    steals = !steals;
  }
