open! Flb_platform

(** Static engine: execute a compile-time schedule on real domains.

    Every task runs on the domain its {!Schedule.t} placement chose, and
    each domain consumes its queue strictly in schedule order (the same
    order [Flb_sim.Simulator.run] replays), dependency-gated by the
    shared atomic indegree counters — the runtime embodiment of FLB's
    claim that all balancing decisions can be made before execution.

    Under fault injection the placement is still honored by live
    domains; only a {e killed} domain's remaining queue is recovered, by
    survivors taking its front task whenever that task is ready (front
    only, so the dead queue is drained in schedule order, which keeps
    intra-queue dependences pointing at tasks already taken). A run
    completes under any fault spec that leaves at least one domain
    alive; if every domain is killed the outcome reports
    [completed < total]. *)

val run : ?config:Engine.config -> Schedule.t -> Engine.outcome
(** [config.domains] must equal the schedule's processor count; the
    predicted makespan in the outcome is [Schedule.makespan].
    @raise Invalid_argument on a domain-count mismatch, an incomplete
    schedule, or a bad config (see {!Engine.State.create}). *)
