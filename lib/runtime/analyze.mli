open! Flb_taskgraph
open! Flb_platform

(** Post-mortem makespan attribution.

    Reads a runtime trace — live JSONL ({!Flb_obs.Trace.to_jsonl}), a
    flight-recorder dump ({!Flb_obs.Flight_recorder.to_jsonl}), or a
    virtual-clock rendering ({!jsonl_of_times}); all three share one
    line schema — and reconstructs what actually determined the
    makespan:

    - the {e realized critical path}: walking back from the
      last-finishing task through the tightest constraint on each start
      (the dependency with the latest comm-lagged arrival, or the
      same-domain predecessor's finish, whichever is later);
    - per-task {e slack}: how far each task's finish could slip without
      extending the makespan, over the realized constraint DAG
      (dependency edges plus same-domain execution order) — zero along
      the critical path;
    - per-domain busy/idle totals and steal / recover / stall / kill
      counts;
    - a ranked {e straggler} list against a predicted schedule's
      [(ST, FT)], when one is supplied.

    Timestamps are taken as-is, so a virtual-clock trace (weight units)
    and the schedule's analytic times compare directly; for a real-time
    trace (seconds) pass [scale] (e.g. [unit_ns /. 1e9]) to bring
    predictions into trace units. *)

(** {1 Parsed runs} *)

type exec = { task : int; domain : int; start : float; finish : float }

type mark = {
  mark_name : string;  (** [steal], [recover], [stall], [killed], ... *)
  mark_domain : int;
  mark_ts : float;
  mark_args : (string * float) list;
}

type run = {
  execs : exec list;  (** task spans on domain tracks, input order *)
  marks : mark list;  (** instants on domain tracks *)
  meta : (string * string) list;  (** a dump's [{"type":"meta"}] line *)
}

val of_jsonl : string -> (run, string) result
(** Parse JSONL trace text. Lines that are not task spans or instants
    on domain tracks ([D0], [D1], ...) — request tracks, probe phase
    tracks — are skipped; a syntactically broken line is an [Error]
    naming the line. *)

val load : string -> (run, string) result
(** {!of_jsonl} on a file's contents; I/O failures as [Error]. *)

(** {1 Reports} *)

type task_stat = {
  t_task : int;
  t_domain : int;
  t_start : float;
  t_finish : float;
  t_slack : float;  (** 0 on the realized critical path *)
  t_on_cp : bool;
  t_predicted_finish : float;  (** [nan] without a schedule *)
  t_lateness : float;  (** realized minus predicted finish; [nan] without *)
}

type domain_stat = {
  d_domain : int;
  d_tasks : int;
  d_busy : float;  (** sum of task durations *)
  d_idle : float;  (** makespan minus busy *)
  d_steals : int;
  d_recovers : int;
  d_stalls : int;
  d_killed : bool;
}

type report = {
  makespan : float;  (** last realized finish *)
  executed : int;
  total : int;  (** tasks in the graph *)
  comm_charged : bool;
      (** inferred: false iff some realized cross-domain dependency
          violates [start >= finish + w], i.e. the run didn't charge
          communication *)
  critical_path : int list;  (** realized CP, first task first *)
  per_task : task_stat option array;  (** by task id; [None] = never ran *)
  per_domain : domain_stat array;
  stragglers : (int * float) list;
      (** (task, lateness) for tasks later than predicted, worst first;
          empty without a schedule *)
}

val analyze :
  ?schedule:Schedule.t ->
  ?scale:float ->
  graph:Taskgraph.t ->
  run ->
  (report, string) result
(** [scale] (default 1) multiplies the schedule's times into trace
    units. [Error] on an empty run, out-of-range task ids, negative
    domains or negative durations. *)

val render : report -> string
(** Human-readable: summary line, the critical path with per-task
    slack, per-domain breakdown, top stragglers. *)

val to_json : report -> string
(** The whole report as one JSON object. *)

val jsonl_of_times :
  ?meta:(string * string) list ->
  start:float array ->
  finish:float array ->
  exec_domain:int array ->
  unit ->
  string
(** Render virtual-clock style [(start, finish, exec_domain)] arrays in
    the shared JSONL schema (tasks with [exec_domain < 0] are skipped),
    so deterministic outcomes feed {!of_jsonl} and golden tests.
    @raise Invalid_argument if array lengths differ. *)
