type event =
  | Slowdown of { domain : int; factor : float }
  | Stall of { domain : int; at : float; duration : float }
  | Kill of { domain : int; at : float }

type spec = event list

let none = []

type error = { fault : string; reason : string }

let error_to_string e =
  if e.fault = "" then e.reason
  else Printf.sprintf "fault %S: %s" e.fault e.reason

let event_to_string = function
  | Slowdown { domain; factor } -> Printf.sprintf "slow:%d:%g" domain factor
  | Stall { domain; at; duration } -> Printf.sprintf "stall:%d:%g:%g" domain at duration
  | Kill { domain; at } -> Printf.sprintf "kill:%d:%g" domain at

let domain_of = function
  | Slowdown { domain; _ } | Stall { domain; _ } | Kill { domain; _ } -> domain

let parse_event s =
  let s = String.trim s in
  let err reason = Error { fault = s; reason } in
  let num what v =
    match float_of_string_opt v with
    | Some f when Float.is_finite f -> Ok f
    | Some _ | None -> err (Printf.sprintf "%s: bad number %S" what v)
  in
  let dom v =
    match int_of_string_opt v with
    | Some d when d >= 0 -> Ok d
    | Some _ | None -> err (Printf.sprintf "bad domain %S" v)
  in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' s with
  | [ "slow"; d; f ] ->
    let* d = dom d in
    let* f = num "slow factor" f in
    if f <= 0.0 then err (Printf.sprintf "slow factor must be > 0, got %g" f)
    else Ok (Slowdown { domain = d; factor = f })
  | [ "stall"; d; at; dur ] ->
    let* d = dom d in
    let* at = num "stall time" at in
    let* duration = num "stall duration" dur in
    if at < 0.0 || duration < 0.0 then err "stall time/duration must be >= 0"
    else Ok (Stall { domain = d; at; duration })
  | [ "kill"; d; at ] ->
    let* d = dom d in
    let* at = num "kill time" at in
    if at < 0.0 then err "kill time must be >= 0"
    else Ok (Kill { domain = d; at })
  | _ -> err "expected slow:D:FACTOR, stall:D:AT:DUR or kill:D:AT"

(* A domain killed twice is almost always a typo for two different
   domains; silently taking the min would mask it, so both [parse] and
   [validate] reject the spec outright. *)
let duplicate_kill spec =
  let rec go seen = function
    | [] -> None
    | Kill { domain; _ } :: rest ->
      if List.mem domain seen then Some domain else go (domain :: seen) rest
    | _ :: rest -> go seen rest
  in
  go [] spec

let check_duplicate_kills spec =
  match duplicate_kill spec with
  | None -> Ok ()
  | Some d ->
    Error
      {
        fault = Printf.sprintf "kill:%d:*" d;
        reason = Printf.sprintf "domain %d is killed more than once" d;
      }

let parse s =
  if String.trim s = "" then Ok none
  else
    let rec go acc = function
      | [] -> Result.map (fun () -> List.rev acc) (check_duplicate_kills acc)
      | piece :: rest -> (
        match parse_event piece with
        | Ok ev -> go (ev :: acc) rest
        | Error _ as e -> e)
    in
    go [] (String.split_on_char ',' s)

let to_string spec = String.concat "," (List.map event_to_string spec)

let validate spec ~domains =
  match List.find_opt (fun ev -> domain_of ev >= domains) spec with
  | Some ev ->
    Error
      {
        fault = event_to_string ev;
        reason =
          Printf.sprintf "names domain %d but the run has only %d domains"
            (domain_of ev) domains;
      }
  | None -> check_duplicate_kills spec

type domain_faults = {
  slowdown : float;
  stalls : (float * float) list;
  kill_at : float;
}

let for_domain spec d =
  List.fold_left
    (fun acc ev ->
      if domain_of ev <> d then acc
      else
        match ev with
        | Slowdown { factor; _ } -> { acc with slowdown = acc.slowdown *. factor }
        | Stall { at; duration; _ } ->
          { acc with stalls = List.merge compare [ (at, duration) ] acc.stalls }
        | Kill { at; _ } -> { acc with kill_at = Float.min acc.kill_at at })
    { slowdown = 1.0; stalls = []; kill_at = Float.infinity }
    spec

type action = Proceed of float | Stall_until of float | Die

let decide df ~now =
  if now >= df.kill_at then Die
  else
    match
      List.find_opt (fun (at, dur) -> now >= at && now < at +. dur) df.stalls
    with
    | Some (at, dur) -> Stall_until (at +. dur)
    | None -> Proceed df.slowdown
