open! Flb_taskgraph
open! Flb_platform

(** Deterministic single-threaded execution under a virtual clock.

    The real engines are nondeterministic (wall-clock jitter, races in
    victim selection); this module executes the same disciplines with a
    simulated clock so tests can pin their behavior exactly.

    {!run_static} replays a schedule with the recurrence
    [start t = max (finish of the previous task on t's processor)
    (arrival of each predecessor's message)], over the same per-processor
    order {!Engine.plan_of_schedule} extracts — which is provably the
    fixpoint the event-driven [Flb_sim.Simulator.run] computes, using the
    identical float operations, so start and finish times agree
    {e bit-for-bit} (a zero-latency message arrives at the predecessor's
    exact finish float; a positive-latency one at [finish +. latency]).
    The qcheck suite asserts this equivalence on random DAGs for every
    registered scheduler.

    {!run_steal} is an idealized deterministic rendition of the stealing
    engine: domains act in lowest-virtual-time-first order (ties to the
    lowest id); an acting domain pops its own deque LIFO, or steals the
    front of the first non-empty deque scanning round-robin from its
    right neighbor; a taken task starts at [max (domain's clock)
    (readiness time)] where readiness charges cross-domain predecessor
    edges their communication weight when [charge_comm]. Entry tasks are
    dealt round-robin by id. With [domains = 1] there is nothing to
    steal and no communication, so the makespan is exactly the
    sequential sum of the weights (in execution order). *)

type outcome = {
  start : float array;
  finish : float array;
  exec_domain : int array;
      (** domain that ran each task: the schedule's placement for
          {!run_static}, the acting domain for {!run_steal} and
          {!run_affinity} *)
  makespan : float;
  per_domain_tasks : int array;
  steals : int;
  hint_hits : int;
      (** tasks executed on their hinted domain: all of them for
          {!run_static}, own-deque pops for {!run_steal}, scheduled
          placements honored for {!run_affinity} *)
  hint_misses : int;
}

val run_static : Schedule.t -> outcome
(** @raise Invalid_argument if the schedule is incomplete or its
    replay deadlocks (a dependency-inconsistent per-processor order,
    impossible for schedules built through [Schedule.assign]). *)

val run_steal : ?charge_comm:bool -> domains:int -> Taskgraph.t -> outcome
(** [charge_comm] defaults to [true]. @raise Invalid_argument if
    [domains < 1]. *)

val run_affinity : ?charge_comm:bool -> Schedule.t -> outcome
(** Deterministic rendition of the locality-aware stealing engine
    {!Affinity.run}: deques seeded with each processor's scheduled entry
    tasks, newly enabled tasks routed to their hinted (scheduled)
    processor's deque, owners popping LIFO; an empty domain steals half
    of the {e deepest} other deque (the two-random-victim probe of the
    real engine collapsed to its deterministic load-aware limit), and
    every stolen task whose hint is not the thief charges
    [Machine.comm_time] for its heaviest in-edge onto the thief's clock
    when [charge_comm]. Entirely RNG- and wall-clock-free: repeated runs
    are bit-identical (qcheck-pinned). With one processor the makespan
    is exactly the sequential sum of the task weights. *)

(** {1 Fault injection under the virtual clock}

    Deterministic counterparts of the real engines' fault handling, so
    recovery policies can be compared on exact makespans instead of
    noisy wall clocks. Fault times are in weight units, directly on the
    virtual clock. *)

type faulty_outcome = {
  start : float array;  (** [nan] for tasks that never executed *)
  finish : float array;
  exec_domain : int array;  (** [-1] for tasks that never executed *)
  makespan : float;  (** last finish among executed tasks; [0.] if none *)
  completed : int;
  total : int;
  killed : int;
  rescheds : int;
  recovered : int;  (** tasks taken from a dead domain's queue *)
  steals : int;  (** steals, dead victims included (stealing discipline) *)
  hint_hits : int;  (** tasks executed on their hinted domain *)
  hint_misses : int;
  per_domain_tasks : int array;
}

val faulty_complete : faulty_outcome -> bool

val run_static_faulty :
  ?faults:Fault.spec -> ?recover:Engine.recovery -> Schedule.t -> faulty_outcome
(** The static discipline under faults: a global event loop over claim
    and death events in increasing virtual time (deaths win ties — the
    worker polls its fault clock before taking work; fail-stop is
    between tasks). [recover] selects the reaction to a death:
    {!Engine.No_recovery} abandons the dead queue's dependence cone,
    {!Engine.Steal_queues} lets survivors take dead queue fronts no
    earlier than the death instant, {!Engine.Resched} freezes the
    executed prefix and re-runs the named scheduler over the frontier
    exactly as [Static.run] does. With [faults = Fault.none] the
    outcome's times match {!run_static} bit for bit.
    @raise Invalid_argument on a bad spec, unknown algorithm, or
    incomplete schedule. *)

val run_steal_faulty :
  ?charge_comm:bool ->
  ?faults:Fault.spec ->
  domains:int ->
  Taskgraph.t ->
  faulty_outcome
(** The stealing discipline under faults: dead domains stop acting but
    their deques stay stealable, so recovery needs no policy. With
    [faults = Fault.none] this follows the exact action sequence of
    {!run_steal}. *)

val run_affinity_faulty :
  ?charge_comm:bool -> ?faults:Fault.spec -> Schedule.t -> faulty_outcome
(** The affinity discipline under faults: dead domains stop acting but
    their deques stay stealable (a steal-half batch taken from a dead
    victim counts wholly as [recovered]), and hint routing falls back to
    the enabling domain while the hinted one is dead. With
    [faults = Fault.none] this follows the exact action sequence of
    {!run_affinity}. *)
