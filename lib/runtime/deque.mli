(** Per-domain task deque for the execution engines.

    A mutex-guarded growable ring of task ids with the two access
    patterns the engines need:

    - the {e work-stealing} discipline: the owner pushes and pops at the
      back (LIFO, cache-friendly for the task it just enabled) while
      thieves take from the front (FIFO, the oldest — typically largest
      — piece of work);
    - the {e static} discipline: everyone takes from the front, so a
      pinned per-domain queue is consumed in schedule order even when a
      survivor is draining a dead domain's queue.

    A mutex per operation is deliberate: the engines run tasks of
    calibrated duration (microseconds and up), so queue-operation cost
    is noise, and a lock keeps {!take_front_if}'s check-then-take
    atomic, which the lock-free Chase–Lev deque cannot express. *)

type t

val create : ?capacity:int -> unit -> t

val of_list : int list -> t
(** Front of the deque = head of the list. *)

val length : t -> int

val is_empty : t -> bool

val push_back : t -> int -> unit
(** Grows the ring as needed; never fails. *)

val pop_back : t -> int option
(** Owner end (LIFO with {!push_back}). *)

val take_front : t -> int option
(** Thief end (FIFO with {!push_back}). *)

val to_list : t -> int list
(** Snapshot of the contents, front first, taken atomically. *)

val reset : t -> int list -> unit
(** Atomically replace the whole contents (front of the deque = head of
    the list). The rescheduling coordinator uses this to swap every
    domain's queue for the newly computed plan in one lock acquisition
    per deque. *)

val push_front_batch : t -> int list -> unit
(** Prepend a batch in one lock acquisition: afterwards the head of the
    list is the new front. A thief deposits the tail of a stolen batch
    at its own {e front}, so the tasks keep their age order (oldest
    first) and remain the preferred fodder for further thieves while the
    owner's back stays reserved for the hot tasks it enables itself. *)

val steal_half : t -> int list
(** Atomically remove and return the front ⌈n/2⌉ elements (front
    first). A singleton deque is stolen whole — a thief that observed
    work never loses it to rounding — and an empty deque yields [[]].
    Steal-half batching amortizes the steal path: one lock acquisition
    migrates half the victim's backlog instead of one task per probe. *)

val take_front_if : t -> (int -> bool) -> int option
(** [take_front_if d p] removes and returns the front element iff [p]
    holds for it, atomically with respect to every other operation —
    two thieves can never both observe the same ready front and then
    take different tasks. [p] is called with the lock held; it must be
    cheap and must not touch the deque. *)
