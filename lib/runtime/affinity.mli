open! Flb_platform

(** Locality-aware work-stealing engine: FLB's schedule demoted from
    pins to hints, executed by a steal runtime.

    Each domain's deque is seeded with its {e scheduled} entry tasks (in
    schedule order) rather than round-robin, and a newly enabled task is
    routed to the deque of its hinted domain — the processor the
    schedule assigned it — falling back to the enabling domain when the
    hint is dead (QUARK's LOCALITY-flag semantics). Owners pop LIFO off
    the back; an idle thief probes two random victims, steals {e half}
    of the deeper deque FIFO off the front ({!Deque.steal_half}), runs
    the oldest stolen task and deposits the rest at its own front
    ({!Deque.push_front_batch}). Failed probes are bounded before
    exponential backoff, per the decentralized-list-scheduling analysis.

    Stealing is priced: each stolen task whose hint is not the thief
    charges [Machine.comm_time] for its heaviest in-edge against the
    thief's clock (gated by [config.charge_comm]), so theft only pays
    when the imbalance it fixes outweighs the data it moves.

    A killed domain needs no dedicated recovery path — its deque stays
    stealable and such thefts are counted as [recovered].

    [hint_hits]/[hint_misses] in the outcome count tasks executed on
    their scheduled processor vs. elsewhere. *)

val run : ?config:Engine.config -> Schedule.t -> Engine.outcome
(** Executes the schedule's DAG with [Schedule.proc] as affinity hints;
    [predicted_units] is [Schedule.makespan].
    @raise Invalid_argument if [config.domains] differs from the
    schedule's processor count, or on a bad config (see
    {!Engine.State.create}). *)
