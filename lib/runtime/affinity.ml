open! Flb_taskgraph
open! Flb_platform
module State = Engine.State
module Rng = Flb_prelude.Rng

let max_backoff = 1024

(* Consecutive empty-handed probe rounds a thief tolerates before it
   starts backing off — the bounded-attempts discipline of decentralized
   list scheduling, which keeps steal traffic O(attempts) per idle spell
   instead of a hot loop on the victims' locks. *)
let probe_attempts = 4

(* Heaviest in-edge of each task: the data that was staged toward the
   hinted processor, hence the cost a thief pays to pull it elsewhere.
   Entry tasks carry no data, so stealing seed work is free. *)
let migration_costs g =
  let n = Taskgraph.num_tasks g in
  let cost = Array.make n 0.0 in
  for t = 0 to n - 1 do
    let m = ref 0.0 in
    Taskgraph.iter_preds g t (fun _ w -> if w > !m then m := w);
    cost.(t) <- !m
  done;
  cost

let run ?(config = Engine.default_config) sched =
  let g = Schedule.graph sched in
  let procs = Schedule.num_procs sched in
  if config.Engine.domains <> procs then
    invalid_arg
      (Printf.sprintf "Affinity.run: config has %d domains but the schedule uses %d"
         config.Engine.domains procs);
  let machine = Schedule.machine sched in
  let dnum = procs in
  let st =
    State.create config ~engine:"affinity" ~predicted:(Schedule.makespan sched) g
  in
  let mig_cost = migration_costs g in
  (* Migration pricing: stealing a task whose hint is elsewhere starts a
     transfer of its staged data, and the task may not begin before the
     transfer lands. The deadline is stamped at steal time and checked
     at execution, so transfers overlap with whatever else the thief
     runs first — batch thefts pay parallel transfers, not a serial sum.
     No write race: a stolen task's slot is stamped after [steal_half]
     removed it from the victim and before the thief re-publishes it,
     while no other domain can hold it. *)
  let mig_deadline = Array.make (Taskgraph.num_tasks g) 0.0 in
  (* Seeded from the schedule, not round-robin: each domain starts with
     its scheduled entry tasks. The list is reversed so the owner's LIFO
     back pops them in schedule order, which leaves the deque's FIFO
     front — what thieves take — holding the work this domain would
     reach last. *)
  let deques =
    Array.map
      (fun tasks ->
        Deque.of_list
          (List.rev (List.filter (fun t -> Taskgraph.in_degree g t = 0) tasks)))
      (Engine.plan_of_schedule sched)
  in
  (* QUARK-LOCALITY routing: a newly enabled task goes to its hinted
     domain's mailbox — the processor the schedule chose — falling back
     to the enabling domain when the hint is dead. *)
  let route d s =
    let h = Schedule.proc sched s in
    Deque.push_back deques.(if State.is_dead st h then d else h) s
  in
  let worker d =
    let rng = Rng.create ~seed:(config.Engine.seed + (d * 0x9E3779B9)) in
    State.wait_start st;
    let busy = ref 0.0 in
    let backoff = ref 0 in
    let fails = ref 0 in
    let t_begin = Clock.now_ns () in
    let run_one ~slowdown t =
      backoff := 0;
      fails := 0;
      let until = mig_deadline.(t) in
      if until > 0.0 then begin
        let m = ref 0 in
        while Clock.now_ns () < until do
          incr m;
          Engine.relax !m
        done
      end;
      State.count_hint st ~hit:(Schedule.proc sched t = d);
      busy :=
        !busy +. State.run_task_enqueue st ~domain:d ~slowdown ~on_ready:(route d) t;
      st.State.d_tasks.(d) <- st.State.d_tasks.(d) + 1
    in
    let charge_migration ts =
      if config.Engine.charge_comm && config.Engine.unit_ns > 0.0 then begin
        let now = Clock.now_ns () in
        List.iter
          (fun t ->
            let h = Schedule.proc sched t in
            if h <> d then
              let units = Machine.comm_time machine ~src:h ~dst:d ~cost:mig_cost.(t) in
              if units > 0.0 then
                mig_deadline.(t) <- now +. (units *. config.Engine.unit_ns))
          ts
      end
    in
    let step ~slowdown =
      match Deque.pop_back deques.(d) with
      | Some t -> run_one ~slowdown t
      | None ->
        if dnum = 1 then begin
          backoff := !backoff + 1;
          Engine.relax !backoff
        end
        else begin
          (* Load-aware victim selection: probe two random victims and
             steal from the deeper deque (the power of two choices, per
             the decentralized-list-scheduling analysis). *)
          let v1 = (d + 1 + Rng.int rng (dnum - 1)) mod dnum in
          let victim =
            if dnum = 2 then v1
            else
              let v2 = (d + 1 + Rng.int rng (dnum - 1)) mod dnum in
              if Deque.length deques.(v2) > Deque.length deques.(v1) then v2
              else v1
          in
          match Deque.steal_half deques.(victim) with
          | [] ->
            ignore (Atomic.fetch_and_add st.State.failed_steals 1);
            incr fails;
            if !fails >= probe_attempts then begin
              backoff := Int.min ((2 * !backoff) + 1) max_backoff;
              Engine.relax !backoff
            end
            else Engine.relax !fails
          | t :: rest as batch ->
            ignore (Atomic.fetch_and_add st.State.steals 1);
            let count = float_of_int (List.length batch) in
            State.trace_instant st ~domain:d
              ~args:[ ("count", count); ("victim", float_of_int victim) ]
              "steal-half";
            if State.is_dead st victim then begin
              ignore
                (Atomic.fetch_and_add st.State.recovered (List.length batch));
              State.trace_instant st ~domain:d
                ~args:[ ("task", float_of_int t); ("victim", float_of_int victim) ]
                "recover"
            end;
            charge_migration batch;
            (* Keep the oldest stolen task for immediate execution and
               deposit the rest at the front of the thief's own deque, so
               they stay oldest-first for onward thieves while the back
               remains reserved for the hot tasks the thief enables. *)
            Deque.push_front_batch deques.(d) rest;
            run_one ~slowdown t
        end
    in
    State.worker_loop st ~domain:d ~step ();
    let wall = Clock.now_ns () -. t_begin in
    st.State.d_busy_ns.(d) <- !busy;
    st.State.d_idle_ns.(d) <- Float.max 0.0 (wall -. !busy)
  in
  let team =
    Flb_prelude.Workers.spawn ~count:dnum ~on_exn:(fun d _ -> State.mark_dead st d)
      worker
  in
  State.release st;
  Flb_prelude.Workers.join team;
  State.outcome st ~wall_ns:(Clock.now_ns () -. st.State.start_ns)
