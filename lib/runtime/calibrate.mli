(** Calibrated spin-work: make a task "run" for a real duration
    proportional to its weight.

    The engines execute a weighted DAG whose weights are abstract time
    units. To turn weight [w] into real work the engine burns
    [w *. unit_ns] nanoseconds of CPU in a spin kernel (an xorshift
    loop the optimizer cannot delete). Calibration measures the
    kernel's spins-per-nanosecond once, so a burn is a plain counted
    loop — no clock reads inside, which keeps short tasks (hundreds of
    nanoseconds) from being dominated by timer calls. *)

type t

val calibrate : ?spins:int -> unit -> t
(** Time [spins] kernel iterations (default 2_000_000, best of 3) and
    derive the spin rate. Takes a few milliseconds. *)

val default : unit -> t
(** Process-wide calibration, performed once on first use. This is what
    the engines use; tests that want zero-cost tasks use {!instant}. *)

val instant : t
(** A pseudo-calibration under which every {!burn} is free — tasks
    complete immediately. For tests and for [unit_ns = 0] runs that
    only exercise engine mechanics. *)

val ns_per_spin : t -> float
(** [infinity] for {!instant}. *)

val burn : t -> ns:float -> unit
(** Spin for approximately [ns] nanoseconds ([ns <= 0] returns
    immediately). *)
