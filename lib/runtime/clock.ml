(* Real-time clock used by the engines, in nanoseconds.

   [Unix.gettimeofday] is the only clock the preinstalled libraries give
   us from library code (Bechamel's monotonic clock is a bench-only
   dependency). Microsecond resolution is plenty: the engines burn
   calibrated spin-work per task, so intervals of interest are >= 1 us,
   and all timestamps within one run are differences against the run's
   own epoch, which also keeps the float arithmetic well-conditioned. *)

let now_ns () = Unix.gettimeofday () *. 1e9
