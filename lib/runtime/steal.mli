open! Flb_taskgraph

(** Work-stealing engine: the decentralized runtime baseline.

    No schedule is consumed — only the DAG. Entry tasks are dealt
    round-robin across the per-domain deques; each worker pops its own
    deque LIFO, pushes successors it enables onto its own deque, and when
    empty steals FIFO from a uniformly random other victim, backing off
    exponentially (counted [cpu_relax]) while steals keep failing. This
    is the "make every balancing decision at run time" counterpoint the
    FLB paper argues against for predictable workloads: the bench suite
    and [Runtime_real_exp] measure its real makespan against the static
    engine's.

    A killed domain needs no special recovery path — whatever remains in
    its deque is ordinary steal fodder for the survivors; such steals are
    additionally counted as [recovered].

    Locality accounting: a task's hint is the deque it was placed in (the
    domain that enabled it, or its round-robin seed slot), so
    [hint_hits] counts own-deque pops and [hint_misses] counts steals —
    the engine's natural locality rate, comparable with {!Affinity}'s
    schedule-hint rate. *)

val run : ?config:Engine.config -> Taskgraph.t -> Engine.outcome
(** [predicted_units] in the outcome is [nan]: dynamic balancing
    predicts nothing. @raise Invalid_argument on a bad config (see
    {!Engine.State.create}). *)
