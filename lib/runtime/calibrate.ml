type t = { ns_per_spin : float }

(* One xorshift64 step per spin: cheap, fixed-latency, and the running
   state defeats constant folding; [Sys.opaque_identity] defeats
   dead-code elimination of the whole loop. *)
let spin_kernel n =
  let x = ref 0x1E3779B97F4A7C15 in
  for _ = 1 to n do
    let v = !x in
    let v = v lxor (v lsl 13) in
    let v = v lxor (v lsr 7) in
    x := v lxor (v lsl 17)
  done;
  ignore (Sys.opaque_identity !x)

let calibrate ?(spins = 2_000_000) () =
  let spins = max 1000 spins in
  (* Best of 3: scheduling noise only ever inflates a sample. *)
  let best = ref Float.infinity in
  for _ = 1 to 3 do
    let t0 = Clock.now_ns () in
    spin_kernel spins;
    let dt = Clock.now_ns () -. t0 in
    if dt < !best then best := dt
  done;
  (* Floor at 0.01 ns/spin: a zero or absurd measurement (clock
     granularity) must not turn [burn] into an unbounded loop. *)
  { ns_per_spin = Float.max 0.01 (!best /. float_of_int spins) }

let instant = { ns_per_spin = Float.infinity }

let default_cal = lazy (calibrate ())

let default () = Lazy.force default_cal

let ns_per_spin t = t.ns_per_spin

let burn t ~ns =
  if ns > 0.0 && t.ns_per_spin < Float.infinity then
    spin_kernel (int_of_float (ns /. t.ns_per_spin))
