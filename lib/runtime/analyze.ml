open! Flb_taskgraph
open! Flb_platform

(* Post-mortem makespan attribution: parse a runtime trace (live JSONL
   or a flight-recorder dump — same line schema), rebuild the realized
   precedence structure (dependency arrivals plus same-domain execution
   order), and walk it backward to name the chain of tasks that actually
   determined the makespan, the slack of everything else, and where each
   domain's time went. *)

type exec = { task : int; domain : int; start : float; finish : float }

type mark = {
  mark_name : string;
  mark_domain : int;
  mark_ts : float;
  mark_args : (string * float) list;
}

type run = {
  execs : exec list;
  marks : mark list;
  meta : (string * string) list;
}

(* --- a minimal flat-JSON-object-per-line parser ---

   The trace schema is deliberately flat: one object per line, string
   or number values only. This parser covers exactly that (with full
   string escape handling) so the runtime library needs no JSON
   dependency. *)

type field = S of string | N of float

exception Bad of string

let parse_object line =
  let n = String.length line in
  let pos = ref 0 in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos < n && line.[!pos] = c then incr pos
    else raise (Bad (Printf.sprintf "expected %c at byte %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let fin = ref false in
    while not !fin do
      if !pos >= n then raise (Bad "unterminated string");
      (match line.[!pos] with
      | '"' -> fin := true
      | '\\' ->
        incr pos;
        if !pos >= n then raise (Bad "dangling escape");
        (match line.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 >= n then raise (Bad "truncated \\u escape");
          (match int_of_string_opt ("0x" ^ String.sub line (!pos + 1) 4) with
          | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
          | Some _ -> Buffer.add_char b '?'
          | None -> raise (Bad "bad \\u escape"));
          pos := !pos + 4
        | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)))
      | c -> Buffer.add_char b c);
      incr pos
    done;
    Buffer.contents b
  in
  let parse_number () =
    let first = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | 'n' | 'a' | 'i' | 'f' -> true (* nan / inf *)
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub line first (!pos - first)) with
    | Some x -> x
    | None -> raise (Bad (Printf.sprintf "bad number at byte %d" first))
  in
  expect '{';
  skip_ws ();
  if !pos < n && line.[!pos] = '}' then []
  else begin
    let fields = ref [] in
    let more = ref true in
    while !more do
      skip_ws ();
      let k = parse_string () in
      expect ':';
      skip_ws ();
      let v =
        if !pos < n && line.[!pos] = '"' then S (parse_string ())
        else N (parse_number ())
      in
      fields := (k, v) :: !fields;
      skip_ws ();
      if !pos < n && line.[!pos] = ',' then incr pos
      else begin
        expect '}';
        more := false
      end
    done;
    List.rev !fields
  end

let str fields k =
  match List.assoc_opt k fields with Some (S s) -> Some s | _ -> None

let num fields k =
  match List.assoc_opt k fields with Some (N x) -> Some x | _ -> None

(* "D7" -> Some 7; request/phase tracks -> None. *)
let domain_of_track track =
  let l = String.length track in
  if l >= 2 && track.[0] = 'D' then int_of_string_opt (String.sub track 1 (l - 1))
  else None

let task_of_name name =
  if String.length name > 5 && String.sub name 0 5 = "task " then
    int_of_string_opt (String.sub name 5 (String.length name - 5))
  else None

let of_jsonl text =
  let execs = ref [] and marks = ref [] and meta = ref [] in
  let err = ref None in
  let lineno = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         incr lineno;
         if !err = None && String.trim line <> "" then
           match parse_object line with
           | exception Bad msg ->
             err := Some (Printf.sprintf "line %d: %s" !lineno msg)
           | fields -> (
             match str fields "type" with
             | Some "meta" ->
               List.iter
                 (fun (k, v) ->
                   match v with
                   | S s when k <> "type" -> meta := (k, s) :: !meta
                   | _ -> ())
                 fields
             | Some "span" -> (
               (* Task spans live on domain tracks; request/phase spans
                  (req-..., "priority computation", ...) are not part of
                  the realized execution and are skipped. *)
               match
                 ( Option.bind (str fields "track") domain_of_track,
                   Option.bind (str fields "name") task_of_name,
                   num fields "ts",
                   num fields "dur" )
               with
               | Some domain, Some task, Some ts, Some dur ->
                 execs := { task; domain; start = ts; finish = ts +. dur } :: !execs
               | Some _, Some task, _, _ ->
                 (* a task span we recognized but cannot place in time:
                    dropping it silently would misattribute the run *)
                 err :=
                   Some
                     (Printf.sprintf "line %d: task %d span lacks ts/dur" !lineno
                        task)
               | _ -> ())
             | Some "instant" -> (
               match
                 ( Option.bind (str fields "track") domain_of_track,
                   str fields "name",
                   num fields "ts" )
               with
               | Some mark_domain, Some mark_name, Some mark_ts ->
                 let mark_args =
                   List.filter_map
                     (fun (k, v) ->
                       match v with
                       | N x when k <> "ts" && k <> "dur" -> Some (k, x)
                       | _ -> None)
                     fields
                 in
                 marks := { mark_name; mark_domain; mark_ts; mark_args } :: !marks
               | _ -> ())
             | _ -> ()))
  |> ignore;
  match !err with
  | Some e -> Error e
  | None ->
    Ok { execs = List.rev !execs; marks = List.rev !marks; meta = List.rev !meta }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> of_jsonl text

(* --- the report --- *)

type task_stat = {
  t_task : int;
  t_domain : int;
  t_start : float;
  t_finish : float;
  t_slack : float;
  t_on_cp : bool;
  t_predicted_finish : float; (* nan without a schedule *)
  t_lateness : float; (* finish -. predicted finish; nan without *)
}

type domain_stat = {
  d_domain : int;
  d_tasks : int;
  d_busy : float;
  d_idle : float;
  d_steals : int;
  d_recovers : int;
  d_stalls : int;
  d_killed : bool;
}

type report = {
  makespan : float;
  executed : int;
  total : int;
  comm_charged : bool;
  critical_path : int list; (* execution order, first task first *)
  per_task : task_stat option array; (* indexed by task id; None = never ran *)
  per_domain : domain_stat array;
  stragglers : (int * float) list; (* (task, lateness), worst first *)
}

let analyze ?schedule ?(scale = 1.0) ~graph run =
  let n = Taskgraph.num_tasks graph in
  let start = Array.make n Float.nan in
  let finish = Array.make n Float.nan in
  let dom = Array.make n (-1) in
  let bad = ref None in
  List.iter
    (fun e ->
      if !bad = None then
        if e.task < 0 || e.task >= n then
          bad := Some (Printf.sprintf "task %d out of range (graph has %d)" e.task n)
        else if e.domain < 0 then
          bad := Some (Printf.sprintf "task %d on negative domain" e.task)
        else if not (e.finish >= e.start) then
          bad := Some (Printf.sprintf "task %d finishes before it starts" e.task)
        else begin
          start.(e.task) <- e.start;
          finish.(e.task) <- e.finish;
          dom.(e.task) <- e.domain
        end)
    run.execs;
  match !bad with
  | Some e -> Error e
  | None ->
    let executed t = dom.(t) >= 0 in
    let executed_count = Array.fold_left (fun a d -> if d >= 0 then a + 1 else a) 0 dom in
    if executed_count = 0 then Error "trace contains no task spans on domain tracks"
    else begin
      let num_domains =
        let m = ref 0 in
        Array.iter (fun d -> if d > !m then m := d) dom;
        List.iter (fun mk -> if mk.mark_domain > !m then m := mk.mark_domain) run.marks;
        (* A dump's meta line knows the team size even when some domain
           recorded nothing at all. *)
        (match Option.bind (List.assoc_opt "domains" run.meta) int_of_string_opt with
        | Some d when d > !m + 1 -> m := d - 1
        | _ -> ());
        !m + 1
      in
      let makespan =
        let m = ref 0.0 in
        for t = 0 to n - 1 do
          if executed t && finish.(t) > !m then m := finish.(t)
        done;
        !m
      in
      let eps = 1e-9 *. Float.max 1.0 makespan in
      (* Was communication charged in this run? If every realized
         cross-domain dependency respects [start(s) >= finish(p) + w],
         treat the edge weights as real separations; one violation means
         the run didn't charge them (e.g. --no-comm), so dependency lag
         is plain finish time. *)
      let comm_charged =
        let ok = ref true in
        for s = 0 to n - 1 do
          if executed s then
            Taskgraph.iter_preds graph s (fun p w ->
                if
                  executed p && dom.(p) <> dom.(s)
                  && start.(s) +. eps < finish.(p) +. w
                then ok := false)
        done;
        !ok
      in
      let lag p s w = if comm_charged && dom.(p) <> dom.(s) then w else 0.0 in
      (* Same-domain realized order: tasks sorted by start per domain. *)
      let by_domain = Array.make num_domains [] in
      for t = n - 1 downto 0 do
        if executed t then by_domain.(dom.(t)) <- t :: by_domain.(dom.(t))
      done;
      let by_domain =
        Array.map
          (fun ts ->
            Array.of_list
              (List.sort (fun a b -> compare (start.(a), a) (start.(b), b)) ts))
          by_domain
      in
      let order_pred = Array.make n (-1) in
      let order_succ = Array.make n (-1) in
      Array.iter
        (fun ts ->
          Array.iteri
            (fun i t ->
              if i > 0 then order_pred.(t) <- ts.(i - 1);
              if i < Array.length ts - 1 then order_succ.(t) <- ts.(i + 1))
            ts)
        by_domain;
      (* Latest finish over the realized constraint DAG (dependency
         edges between executed tasks, lagged by charged communication,
         plus zero-lag same-domain order edges). Decreasing realized
         finish time is a reverse topological order of that DAG: every
         constraint points forward in time. *)
      let order =
        let ts = ref [] in
        for t = 0 to n - 1 do
          if executed t then ts := t :: !ts
        done;
        List.sort (fun a b -> compare (finish.(b), b) (finish.(a), a)) !ts
      in
      let lf = Array.make n Float.infinity in
      List.iter
        (fun t ->
          let bound = ref makespan in
          Taskgraph.iter_succs graph t (fun s w ->
              if executed s then
                bound :=
                  Float.min !bound (start.(s) +. lf.(s) -. finish.(s) -. lag t s w));
          if order_succ.(t) >= 0 then begin
            let s = order_succ.(t) in
            bound := Float.min !bound (start.(s) +. lf.(s) -. finish.(s))
          end;
          lf.(t) <- !bound)
        order;
      let slack t = lf.(t) -. finish.(t) in
      (* The realized critical path: from the last-finishing task, walk
         back through the tightest constraint on each start — the
         dependency with the latest (comm-lagged) arrival, or the
         same-domain predecessor's finish, whichever is later. On an
         exact (virtual-clock) trace the chosen constraint equals the
         start; on a real trace it is the one the start waited on, with
         scheduler overhead as the gap. Dependencies win ties, then
         lower task ids. The walk ends at a task with no executed
         predecessor of either kind. *)
      let last =
        let best = ref (-1) in
        for t = n - 1 downto 0 do
          if executed t && (!best < 0 || finish.(t) > finish.(!best)) then best := t
        done;
        !best
      in
      let cp = ref [] in
      let cur = ref last in
      let stop = ref false in
      while not !stop do
        cp := !cur :: !cp;
        let t = !cur in
        let dep = ref (-1) and dep_arrival = ref Float.neg_infinity in
        Taskgraph.iter_preds graph t (fun p w ->
            if executed p then begin
              let arrival = finish.(p) +. lag p t w in
              if
                arrival > !dep_arrival +. eps
                || (arrival >= !dep_arrival -. eps && (!dep < 0 || p < !dep))
              then begin
                dep := p;
                dep_arrival := arrival
              end
            end);
        let best =
          let q = order_pred.(t) in
          if !dep >= 0 && (q < 0 || !dep_arrival >= finish.(q) -. eps) then !dep
          else q
        in
        if best < 0 then stop := true else cur := best
      done;
      let on_cp = Array.make n false in
      List.iter (fun t -> on_cp.(t) <- true) !cp;
      (* Predicted (ST, FT) from the schedule, if one was given. *)
      let predicted_finish t =
        match schedule with
        | Some sched when Schedule.is_scheduled sched t ->
          Schedule.finish_time sched t *. scale
        | _ -> Float.nan
      in
      let per_task =
        Array.init n (fun t ->
            if not (executed t) then None
            else
              let pf = predicted_finish t in
              Some
                {
                  t_task = t;
                  t_domain = dom.(t);
                  t_start = start.(t);
                  t_finish = finish.(t);
                  t_slack = slack t;
                  t_on_cp = on_cp.(t);
                  t_predicted_finish = pf;
                  t_lateness = finish.(t) -. pf;
                })
      in
      let count_marks d name =
        List.fold_left
          (fun acc mk ->
            if mk.mark_domain = d && mk.mark_name = name then acc + 1 else acc)
          0 run.marks
      in
      let per_domain =
        Array.init num_domains (fun d ->
            let busy =
              Array.fold_left
                (fun acc t -> acc +. (finish.(t) -. start.(t)))
                0.0 by_domain.(d)
            in
            {
              d_domain = d;
              d_tasks = Array.length by_domain.(d);
              d_busy = busy;
              d_idle = Float.max 0.0 (makespan -. busy);
              d_steals = count_marks d "steal";
              d_recovers = count_marks d "recover";
              d_stalls = count_marks d "stall";
              d_killed = count_marks d "killed" > 0;
            })
      in
      let stragglers =
        let ls = ref [] in
        for t = n - 1 downto 0 do
          if executed t then begin
            let l = finish.(t) -. predicted_finish t in
            if Float.is_finite l && l > eps then ls := (t, l) :: !ls
          end
        done;
        List.sort (fun (a, la) (b, lb) -> compare (lb, a) (la, b)) !ls
      in
      Ok
        {
          makespan;
          executed = executed_count;
          total = n;
          comm_charged;
          critical_path = !cp;
          per_task;
          per_domain;
          stragglers;
        }
    end

(* --- rendering --- *)

let render r =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "%d/%d tasks on %d domains, makespan %g%s\n" r.executed r.total
    (Array.length r.per_domain) r.makespan
    (if r.comm_charged then "" else " (communication uncharged)");
  pr "realized critical path (%d tasks): %s\n"
    (List.length r.critical_path)
    (String.concat " -> " (List.map string_of_int r.critical_path));
  pr "  %6s %6s %10s %10s %10s %10s  %s\n" "task" "domain" "start" "finish"
    "dur" "slack" "";
  List.iter
    (fun t ->
      match r.per_task.(t) with
      | None -> ()
      | Some s ->
        pr "  %6d %6d %10g %10g %10g %10g  %s\n" s.t_task s.t_domain s.t_start
          s.t_finish
          (s.t_finish -. s.t_start)
          s.t_slack
          (if Float.is_finite s.t_lateness && Float.abs s.t_lateness > 1e-9 then
             Printf.sprintf "(%+g vs predicted)" s.t_lateness
           else ""))
    r.critical_path;
  pr "domains:\n";
  Array.iter
    (fun d ->
      pr "  D%d: %d tasks, busy %g (%.1f%%), idle %g" d.d_domain d.d_tasks
        d.d_busy
        (if r.makespan > 0.0 then 100.0 *. d.d_busy /. r.makespan else 0.0)
        d.d_idle;
      if d.d_steals > 0 then pr ", %d steals" d.d_steals;
      if d.d_recovers > 0 then pr ", %d recovered" d.d_recovers;
      if d.d_stalls > 0 then pr ", %d stalls" d.d_stalls;
      if d.d_killed then pr ", KILLED";
      pr "\n")
    r.per_domain;
  (match r.stragglers with
  | [] -> ()
  | ls ->
    pr "stragglers vs predicted finish:\n";
    List.iteri
      (fun i (t, l) ->
        if i < 10 then
          pr "  task %d: %+g%s\n" t l
            (match r.per_task.(t) with
            | Some s when s.t_on_cp -> " (on critical path)"
            | _ -> ""))
      ls);
  Buffer.contents b

let to_json r =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "{\"makespan\":%g,\"executed\":%d,\"total\":%d,\"comm_charged\":%b"
    r.makespan r.executed r.total r.comm_charged;
  pr ",\"critical_path\":[%s]"
    (String.concat "," (List.map string_of_int r.critical_path));
  pr ",\"tasks\":[";
  let first = ref true in
  Array.iter
    (fun s ->
      match s with
      | None -> ()
      | Some s ->
        if not !first then pr ",";
        first := false;
        pr
          "{\"task\":%d,\"domain\":%d,\"start\":%g,\"finish\":%g,\"slack\":%g,\"on_critical_path\":%b"
          s.t_task s.t_domain s.t_start s.t_finish s.t_slack s.t_on_cp;
        if Float.is_finite s.t_lateness then
          pr ",\"predicted_finish\":%g,\"lateness\":%g" s.t_predicted_finish
            s.t_lateness;
        pr "}")
    r.per_task;
  pr "],\"domains\":[";
  Array.iteri
    (fun i d ->
      if i > 0 then pr ",";
      pr
        "{\"domain\":%d,\"tasks\":%d,\"busy\":%g,\"idle\":%g,\"steals\":%d,\"recovered\":%d,\"stalls\":%d,\"killed\":%b}"
        d.d_domain d.d_tasks d.d_busy d.d_idle d.d_steals d.d_recovers
        d.d_stalls d.d_killed)
    r.per_domain;
  pr "],\"stragglers\":[%s]}"
    (String.concat ","
       (List.map
          (fun (t, l) -> Printf.sprintf "{\"task\":%d,\"lateness\":%g}" t l)
          r.stragglers));
  Buffer.contents b

(* --- JSONL writer for virtual-clock outcomes ---

   The deterministic complement of Trace.to_jsonl: the virtual engines
   produce (start, finish, exec_domain) arrays instead of a live trace;
   this renders them in the same line schema so [analyze] (and the fig1
   golden test) reads both. *)

let jsonl_of_times ?(meta = []) ~start ~finish ~exec_domain () =
  let n = Array.length start in
  if Array.length finish <> n || Array.length exec_domain <> n then
    invalid_arg "Analyze.jsonl_of_times: array lengths differ";
  let b = Buffer.create 1024 in
  if meta <> [] then begin
    Buffer.add_string b "{\"type\":\"meta\"";
    List.iter (fun (k, v) -> Printf.ksprintf (Buffer.add_string b) ",%S:%S" k v) meta;
    Buffer.add_string b "}\n"
  end;
  let tasks = ref [] in
  for t = n - 1 downto 0 do
    if exec_domain.(t) >= 0 then tasks := t :: !tasks
  done;
  let tasks =
    List.sort (fun a b -> compare (start.(a), a) (start.(b), b)) !tasks
  in
  List.iter
    (fun t ->
      Printf.ksprintf (Buffer.add_string b)
        "{\"type\":\"span\",\"track\":\"D%d\",\"name\":\"task %d\",\"ts\":%g,\"dur\":%g}\n"
        exec_domain.(t) t start.(t)
        (finish.(t) -. start.(t)))
    tasks;
  Buffer.contents b
