type t = {
  lock : Mutex.t;
  mutable buf : int array;
  mutable head : int;  (* index of the front element when len > 0 *)
  mutable len : int;
}

let create ?(capacity = 16) () =
  { lock = Mutex.create (); buf = Array.make (max 1 capacity) (-1); head = 0; len = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = locked t (fun () -> t.len)

let is_empty t = length t = 0

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) (-1) in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- buf;
  t.head <- 0

let push_back t x =
  locked t (fun () ->
      if t.len = Array.length t.buf then grow t;
      t.buf.((t.head + t.len) mod Array.length t.buf) <- x;
      t.len <- t.len + 1)

let pop_back t =
  locked t (fun () ->
      if t.len = 0 then None
      else begin
        t.len <- t.len - 1;
        Some t.buf.((t.head + t.len) mod Array.length t.buf)
      end)

let take_front_unlocked t =
  let x = t.buf.(t.head) in
  t.head <- (t.head + 1) mod Array.length t.buf;
  t.len <- t.len - 1;
  x

let take_front t =
  locked t (fun () -> if t.len = 0 then None else Some (take_front_unlocked t))

let take_front_if t p =
  locked t (fun () ->
      if t.len > 0 && p t.buf.(t.head) then Some (take_front_unlocked t) else None)

let push_front_batch t xs =
  locked t (fun () ->
      let k = List.length xs in
      if k > 0 then begin
        while t.len + k > Array.length t.buf do
          grow t
        done;
        let cap = Array.length t.buf in
        (* New front = head of [xs]: shift head back by k, then lay the
           batch down in order. *)
        t.head <- ((t.head - k) mod cap + cap) mod cap;
        t.len <- t.len + k;
        List.iteri (fun i x -> t.buf.((t.head + i) mod cap) <- x) xs
      end)

let steal_half t =
  locked t (fun () ->
      (* Ceiling half: a singleton is stolen whole, so a thief that saw a
         non-empty deque never comes away empty because of rounding. *)
      let k = t.len - (t.len / 2) in
      let rec take k acc =
        if k = 0 then List.rev acc else take (k - 1) (take_front_unlocked t :: acc)
      in
      take k [])

let to_list t =
  locked t (fun () ->
      List.init t.len (fun i -> t.buf.((t.head + i) mod Array.length t.buf)))

let reset t xs =
  locked t (fun () ->
      let n = List.length xs in
      if n > Array.length t.buf then t.buf <- Array.make n (-1);
      t.head <- 0;
      t.len <- 0;
      List.iter
        (fun x ->
          t.buf.(t.len) <- x;
          t.len <- t.len + 1)
        xs)

let of_list xs =
  let t = create ~capacity:(max 1 (List.length xs)) () in
  List.iter (fun x -> push_back t x) xs;
  t
