(** Fault injection for the execution engines.

    A fault specification perturbs the machine the engines run on, so
    the robustness of a static FLB placement can be measured against
    dynamic stealing under the perturbations the compile-time schedule
    did not anticipate:

    - {e slowdown}: a domain executes all its tasks slower by a factor
      (a smaller/over-subscribed core);
    - {e stall}: a domain freezes for a window of time (GC pause, OS
      preemption) and resumes;
    - {e kill}: a domain fail-stops at a point in time. Kills are
      fail-stop {e between} tasks: a domain finishes the task it is
      running, then dies without taking another, so no task is lost
      mid-flight and recovery is purely queue-draining (survivors steal
      the dead domain's remaining queue in both engines).

    All times and durations are in {e weight units} — the same unit as
    task weights and schedule makespans — so a spec is meaningful
    independent of the [unit_ns] scale chosen for a run. *)

type event =
  | Slowdown of { domain : int; factor : float }
  | Stall of { domain : int; at : float; duration : float }
  | Kill of { domain : int; at : float }

type spec = event list

val none : spec

type error = { fault : string; reason : string }
(** A rejected spec, pinpointing the offending event ([fault] is the
    event's surface syntax, or a pattern like ["kill:1:*"] for
    whole-spec problems) and why. *)

val error_to_string : error -> string

val parse : string -> (spec, error) result
(** Comma-separated events: [slow:D:FACTOR], [stall:D:AT:DURATION],
    [kill:D:AT] — e.g. ["kill:1:5,slow:0:2.5,stall:2:10:3"]. The empty
    string is {!none}. Rejected at parse time: malformed syntax,
    non-finite numbers, factors [<= 0], negative times or durations,
    negative domain ids, and duplicate kills of the same domain. *)

val to_string : spec -> string
(** Inverse of {!parse} (up to float formatting). *)

val validate : spec -> domains:int -> (unit, error) result
(** Every event's domain must exist in a team of [domains], and no
    domain may be killed twice (rechecked here for specs built
    programmatically rather than through {!parse}). *)

(** {1 Per-domain runtime view} *)

type domain_faults = {
  slowdown : float;  (** product of the domain's slowdown factors; 1.0 if none *)
  stalls : (float * float) list;  (** (at, duration), sorted by [at] *)
  kill_at : float;  (** earliest kill time; [infinity] if never killed *)
}

val for_domain : spec -> int -> domain_faults

type action =
  | Proceed of float  (** run the next task, weights scaled by the factor *)
  | Stall_until of float  (** frozen until this time (weight units) *)
  | Die  (** fail-stop now *)

val decide : domain_faults -> now:float -> action
(** What the domain must do at time [now]. Kill wins over an
    overlapping stall. *)
