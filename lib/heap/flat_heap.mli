(** Indexed (addressable) binary min-heap with unboxed two-component
    float keys.

    The allocation-free sibling of {!Indexed_heap}: elements are integer
    identifiers from a fixed universe and keys are pairs
    [(primary, secondary)] ordered lexicographically — exactly the
    [(value, tie-break)] keys every scheduler in this repository uses —
    but the two components live in plain [float array]s indexed by
    element, so no operation allocates: no boxed tuple per push, no
    polymorphic [compare] per sift step, no [option] per peek. The
    backing arrays are sized by the universe at {!create} (each element
    is present at most once, so the heap can never outgrow it), making
    every subsequent operation allocation-free.

    Ordering matches {!Indexed_heap} over [(float * float)] keys with
    [Stdlib.compare]: primary, then secondary, then element id (keys are
    required to be non-NaN; graph weights are validated finite at
    construction). *)

type t

val create : universe:int -> t
(** [create ~universe] supports elements [0 .. universe-1]. Allocates
    four arrays of length [universe]; nothing afterwards. *)

val length : t -> int

val is_empty : t -> bool

val mem : t -> int -> bool

val primary : t -> int -> float
(** Primary key component of a present element.
    @raise Not_found if the element is not in the heap. *)

val secondary : t -> int -> float
(** @raise Not_found if the element is not in the heap. *)

val add : t -> elt:int -> primary:float -> secondary:float -> unit
(** @raise Invalid_argument if [elt] is already present or out of range. *)

val update : t -> elt:int -> primary:float -> secondary:float -> unit
(** Re-keys a present element, or inserts an absent one. *)

val remove : t -> int -> unit
(** Removes the element if present; no-op otherwise. *)

val peek : t -> int
(** Element with the smallest key, or [-1] when empty. O(1), never
    allocates. Its key components are [primary h (peek h)] and
    [secondary h (peek h)]. *)

val pop : t -> int
(** Removes and returns the minimum element, or [-1] when empty. *)

val iter : (int -> unit) -> t -> unit
(** Heap order, not sorted order. *)

val to_sorted_list : t -> (int * (float * float)) list
(** Non-destructive; ascending by key then element id. For tests and
    trace snapshots (allocates freely). *)
