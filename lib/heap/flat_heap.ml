type t = {
  heap : int array; (* live prefix [0, size) holds element ids *)
  mutable size : int;
  pos : int array; (* element id -> heap index, or -1 if absent *)
  k1 : float array; (* element id -> primary key (valid while present) *)
  k2 : float array; (* element id -> secondary key *)
}

let create ~universe =
  if universe < 0 then invalid_arg "Flat_heap.create: negative universe";
  let cap = max 1 universe in
  {
    heap = Array.make cap 0;
    size = 0;
    pos = Array.make cap (-1);
    k1 = Array.make cap 0.0;
    k2 = Array.make cap 0.0;
  }

let length h = h.size

let is_empty h = h.size = 0

let in_range h e = e >= 0 && e < Array.length h.pos

let mem h e = in_range h e && h.pos.(e) >= 0

let primary h e =
  if not (mem h e) then raise Not_found;
  h.k1.(e)

let secondary h e =
  if not (mem h e) then raise Not_found;
  h.k2.(e)

(* Lexicographic (primary, secondary, id) order, fully monomorphic: every
   comparison below is a float or int primitive, none allocates and none
   falls back to the polymorphic compare runtime. *)
let[@inline] less h a b =
  let ka = h.k1.(a) and kb = h.k1.(b) in
  if ka < kb then true
  else if ka > kb then false
  else begin
    let sa = h.k2.(a) and sb = h.k2.(b) in
    if sa < sb then true else if sa > sb then false else a < b
  end

let[@inline] place h i e =
  h.heap.(i) <- e;
  h.pos.(e) <- i

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let e = h.heap.(i) and pe = h.heap.(parent) in
    if less h e pe then begin
      place h i pe;
      place h parent e;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = h.size in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && less h h.heap.(l) h.heap.(!smallest) then smallest := l;
  if r < n && less h h.heap.(r) h.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let e = h.heap.(i) and se = h.heap.(!smallest) in
    place h i se;
    place h !smallest e;
    sift_down h !smallest
  end

let add h ~elt ~primary ~secondary =
  if not (in_range h elt) then
    invalid_arg
      (Printf.sprintf "Flat_heap.add: element %d outside universe [0, %d)" elt
         (Array.length h.pos));
  if h.pos.(elt) >= 0 then
    invalid_arg (Printf.sprintf "Flat_heap.add: element %d already present" elt);
  h.k1.(elt) <- primary;
  h.k2.(elt) <- secondary;
  place h h.size elt;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let update h ~elt ~primary ~secondary =
  if mem h elt then begin
    h.k1.(elt) <- primary;
    h.k2.(elt) <- secondary;
    sift_up h h.pos.(elt);
    sift_down h h.pos.(elt)
  end
  else add h ~elt ~primary ~secondary

let remove_at h i =
  let e = h.heap.(i) in
  h.pos.(e) <- -1;
  h.size <- h.size - 1;
  if i <> h.size then begin
    let last = h.heap.(h.size) in
    place h i last;
    sift_up h i;
    sift_down h h.pos.(last)
  end

let remove h e = if mem h e then remove_at h h.pos.(e)

let peek h = if h.size = 0 then -1 else h.heap.(0)

let pop h =
  if h.size = 0 then -1
  else begin
    let e = h.heap.(0) in
    remove_at h 0;
    e
  end

let iter f h =
  for i = 0 to h.size - 1 do
    f h.heap.(i)
  done

let to_sorted_list h =
  let items = ref [] in
  iter (fun e -> items := (e, (h.k1.(e), h.k2.(e))) :: !items) h;
  List.sort
    (fun (e1, (p1, s1)) (e2, (p2, s2)) ->
      let c = Float.compare p1 p2 in
      if c <> 0 then c
      else
        let c = Float.compare s1 s2 in
        if c <> 0 then c else Int.compare e1 e2)
    !items
