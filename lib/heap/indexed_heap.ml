module Vec = Flb_prelude.Vec

type 'k t = {
  compare : 'k -> 'k -> int;
  heap : int Vec.t; (* heap of element ids *)
  pos : int array; (* element id -> heap index, or -1 if absent *)
  keys : 'k option array; (* element id -> key *)
}

let create ~universe ~compare =
  if universe < 0 then invalid_arg "Indexed_heap.create: negative universe";
  {
    compare;
    heap = Vec.create ~capacity:(max 8 universe) ();
    pos = Array.make (max 1 universe) (-1);
    keys = Array.make (max 1 universe) None;
  }

let length h = Vec.length h.heap

let is_empty h = Vec.is_empty h.heap

let in_range h e = e >= 0 && e < Array.length h.pos

let mem h e = in_range h e && h.pos.(e) >= 0

let key h e =
  if not (mem h e) then raise Not_found;
  match h.keys.(e) with Some k -> k | None -> assert false

(* Key order with element-id tie-break, so behaviour is deterministic and
   [to_sorted_list] is a total order. *)
let less h a b =
  let c = h.compare (key h a) (key h b) in
  if c <> 0 then c < 0 else a < b

let place h i e =
  Vec.set h.heap i e;
  h.pos.(e) <- i

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let e = Vec.get h.heap i and pe = Vec.get h.heap parent in
    if less h e pe then begin
      place h i pe;
      place h parent e;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = Vec.length h.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && less h (Vec.get h.heap l) (Vec.get h.heap !smallest) then
    smallest := l;
  if r < n && less h (Vec.get h.heap r) (Vec.get h.heap !smallest) then
    smallest := r;
  if !smallest <> i then begin
    let e = Vec.get h.heap i and se = Vec.get h.heap !smallest in
    place h i se;
    place h !smallest e;
    sift_down h !smallest
  end

let add h ~elt ~key =
  if not (in_range h elt) then
    invalid_arg
      (Printf.sprintf "Indexed_heap.add: element %d outside universe [0, %d)"
         elt (Array.length h.pos));
  if h.pos.(elt) >= 0 then
    invalid_arg (Printf.sprintf "Indexed_heap.add: element %d already present" elt);
  h.keys.(elt) <- Some key;
  Vec.push h.heap elt;
  h.pos.(elt) <- Vec.length h.heap - 1;
  sift_up h (Vec.length h.heap - 1)

let rekey h elt k =
  h.keys.(elt) <- Some k;
  let i = h.pos.(elt) in
  sift_up h i;
  sift_down h h.pos.(elt)

let update h ~elt ~key =
  if mem h elt then rekey h elt key else add h ~elt ~key

let remove_at h i =
  let n = Vec.length h.heap in
  let e = Vec.get h.heap i in
  h.pos.(e) <- -1;
  h.keys.(e) <- None;
  if i = n - 1 then ignore (Vec.pop h.heap)
  else begin
    let last = Vec.get h.heap (n - 1) in
    ignore (Vec.pop h.heap);
    place h i last;
    sift_up h i;
    sift_down h h.pos.(last)
  end

let remove h e = if mem h e then remove_at h h.pos.(e)

let min_elt h =
  if is_empty h then None
  else begin
    let e = Vec.get h.heap 0 in
    Some (e, key h e)
  end

let pop h =
  match min_elt h with
  | None -> None
  | Some (e, k) ->
    remove_at h 0;
    Some (e, k)

let iter f h = Vec.iter (fun e -> f e (key h e)) h.heap

let to_sorted_list h =
  let items = ref [] in
  iter (fun e k -> items := (e, k) :: !items) h;
  List.sort
    (fun (e1, k1) (e2, k2) ->
      let c = h.compare k1 k2 in
      if c <> 0 then c else Int.compare e1 e2)
    !items
