open! Flb_taskgraph
open! Flb_platform
module Trace = Flb_obs.Trace

type outcome = {
  start : float array;
  finish : float array;
  makespan : float;
  messages : int;
  comm_volume : float;
}

type error =
  | Deadlock of Taskgraph.task list
  | Incomplete_schedule of Taskgraph.task list

type event = Task_finished of int (* processor *) | Message_arrived of Taskgraph.task

let proc_track pr = Printf.sprintf "P%d" pr

let replay_placement ?send_ports ?(tracer = Trace.null) ?metrics g machine ~proc_of
    ~order_on =
  (match send_ports with
  | Some k when k < 1 -> invalid_arg "Simulator.replay_placement: send_ports < 1"
  | Some _ | None -> ());
  let n = Taskgraph.num_tasks g in
  let p = Machine.num_procs machine in
  let missing = ref [] in
  for t = n - 1 downto 0 do
    let pr = proc_of t in
    if pr < 0 || pr >= p then missing := t :: !missing
  done;
  if !missing <> [] then Result.Error (Incomplete_schedule !missing)
  else begin
    let queues = Array.init p (fun pr -> Queue.of_seq (List.to_seq (order_on pr))) in
    let running = Array.make p (-1) in
    (* -1: idle *)
    let pending_msgs = Array.init n (Taskgraph.in_degree g) in
    let start = Array.make n Float.nan in
    let finish = Array.make n Float.nan in
    let events = Event_queue.create () in
    let executed = ref 0 in
    let messages = ref 0 in
    let comm_volume = ref 0.0 in
    (* Outgoing-port model: [None] is the paper's contention-free network;
       [Some k] serializes each processor's sends through k ports. *)
    let ports =
      Option.map (fun k -> Array.init p (fun _ -> Array.make k 0.0)) send_ports
    in
    (* Optional telemetry: message/contention counters and latency
       histograms in [metrics], per-processor execution rows plus send
       and port-wait events in [tracer] (timestamps are simulated time). *)
    let latency_hist =
      Option.map
        (fun m ->
          Flb_obs.Metrics.histogram m ~help:"cross-processor message latency"
            "sim_message_latency")
        metrics
    in
    let port_wait_hist =
      Option.map
        (fun m ->
          Flb_obs.Metrics.histogram m ~help:"send delay due to port contention"
            "sim_port_wait")
        metrics
    in
    let port_waits = ref 0 in
    let departure now pr latency =
      match ports with
      | None -> now
      | Some ports ->
        let free = ports.(pr) in
        let slot = ref 0 in
        for i = 1 to Array.length free - 1 do
          if free.(i) < free.(!slot) then slot := i
        done;
        let start = Float.max now free.(!slot) in
        free.(!slot) <- start +. latency;
        let wait = start -. now in
        if wait > 0.0 then begin
          incr port_waits;
          Option.iter (fun h -> Flb_obs.Metrics.Histogram.observe h wait) port_wait_hist;
          if Trace.enabled tracer then
            Trace.instant tracer ~ts:now ~track:(proc_track pr) "port wait"
              ~args:[ ("wait", wait); ("departure", start) ]
        end;
        start
    in
    (* Start the head task of processor [pr] if the processor is idle and
       all the head's messages have arrived. *)
    let try_dispatch now pr =
      if running.(pr) < 0 then
        match Queue.peek_opt queues.(pr) with
        | Some t when pending_msgs.(t) = 0 ->
          ignore (Queue.pop queues.(pr));
          running.(pr) <- t;
          start.(t) <- now;
          finish.(t) <- now +. Taskgraph.comp g t;
          Event_queue.add events ~time:finish.(t) (Task_finished pr)
        | Some _ | None -> ()
    in
    let handle now = function
      | Task_finished pr ->
        let t = running.(pr) in
        running.(pr) <- -1;
        incr executed;
        if Trace.enabled tracer then
          Trace.add_span tracer ~track:(proc_track pr)
            ~name:(Printf.sprintf "task %d" t) ~ts:start.(t) ~dur:(now -. start.(t));
        Array.iter
          (fun (succ, w) ->
            let dst_proc = proc_of succ in
            let latency = Machine.comm_time machine ~src:pr ~dst:dst_proc ~cost:w in
            if latency = 0.0 then begin
              (* Local (or zero-cost) message: delivered instantly. *)
              pending_msgs.(succ) <- pending_msgs.(succ) - 1;
              if pending_msgs.(succ) = 0 then try_dispatch now dst_proc
            end
            else begin
              incr messages;
              comm_volume := !comm_volume +. latency;
              Option.iter
                (fun h -> Flb_obs.Metrics.Histogram.observe h latency)
                latency_hist;
              let sent = departure now pr latency in
              if Trace.enabled tracer then
                Trace.instant tracer ~ts:sent ~track:(proc_track pr)
                  (Printf.sprintf "send %d->%d" t succ)
                  ~args:
                    [
                      ("latency", latency);
                      ("dst_proc", float_of_int dst_proc);
                      ("arrival", sent +. latency);
                    ];
              Event_queue.add events ~time:(sent +. latency) (Message_arrived succ)
            end)
          (Taskgraph.succs g t);
        try_dispatch now pr
      | Message_arrived t ->
        pending_msgs.(t) <- pending_msgs.(t) - 1;
        if pending_msgs.(t) = 0 then try_dispatch now (proc_of t)
    in
    for pr = 0 to p - 1 do
      try_dispatch 0.0 pr
    done;
    let rec drain () =
      match Event_queue.pop events with
      | None -> ()
      | Some (now, ev) ->
        handle now ev;
        drain ()
    in
    drain ();
    if !executed < n then begin
      let stuck = ref [] in
      for t = n - 1 downto 0 do
        if Float.is_nan start.(t) then stuck := t :: !stuck
      done;
      Result.Error (Deadlock !stuck)
    end
    else begin
      let makespan = Array.fold_left Float.max 0.0 finish in
      Option.iter
        (fun m ->
          let open Flb_obs.Metrics in
          Counter.add
            (counter m ~help:"cross-processor messages delivered" "sim_messages_total")
            !messages;
          Counter.add
            (counter m ~help:"sends delayed by port contention"
               "sim_port_waits_total")
            !port_waits;
          Gauge.set (gauge m ~help:"total latency of delivered messages"
               "sim_comm_volume")
            !comm_volume;
          Gauge.set (gauge m ~help:"simulated makespan" "sim_makespan") makespan)
        metrics;
      Result.Ok
        { start; finish; makespan; messages = !messages; comm_volume = !comm_volume }
    end
  end

let run ?send_ports ?tracer ?metrics sched =
  let g = Schedule.graph sched in
  let missing = ref [] in
  for t = Taskgraph.num_tasks g - 1 downto 0 do
    if not (Schedule.is_scheduled sched t) then missing := t :: !missing
  done;
  if !missing <> [] then Result.Error (Incomplete_schedule !missing)
  else begin
    (* Execute each processor's tasks in claimed start-time order so that
       insertion-based schedules replay their intended interleaving.
       Zero-duration tasks make bare start times ambiguous; finish time
       and topological position break the ties dependency-consistently. *)
    let topo_position = Array.make (Taskgraph.num_tasks g) 0 in
    Array.iteri (fun i t -> topo_position.(t) <- i) (Topo.order g);
    let order_on p =
      List.sort
        (fun a b ->
          compare
            (Schedule.start_time sched a, Schedule.finish_time sched a, topo_position.(a))
            (Schedule.start_time sched b, Schedule.finish_time sched b, topo_position.(b)))
        (Schedule.tasks_on sched p)
    in
    replay_placement ?send_ports ?tracer ?metrics g (Schedule.machine sched)
      ~proc_of:(Schedule.proc sched) ~order_on
  end

let agrees_with_schedule sched outcome =
  let g = Schedule.graph sched in
  let ok = ref true in
  for t = 0 to Taskgraph.num_tasks g - 1 do
    if not (Schedule.is_scheduled sched t) then ok := false
    else if Schedule.start_time sched t <> outcome.start.(t) then ok := false
  done;
  !ok
