open! Flb_taskgraph
open! Flb_platform

(** Discrete-event execution of a schedule.

    The simulator takes only the {e placement} and {e per-processor
    order} from a schedule and replays the program on the machine model:
    each processor executes its tasks in order, a task starts as soon as
    its processor is free and all its messages have arrived, and every
    cross-processor edge becomes a message with the edge's communication
    latency.

    This is an independent feasibility check for the analytic start
    times computed by the schedulers: for work-conserving (non-insertion)
    schedulers the simulated start times must equal the scheduler's to
    the last bit, and for insertion-based schedulers they may only be
    earlier. A placement whose per-processor order contradicts the
    dependences deadlocks, which the simulator reports. *)

type outcome = {
  start : float array; (** simulated start time per task *)
  finish : float array; (** simulated finish time per task *)
  makespan : float;
  messages : int; (** cross-processor messages delivered *)
  comm_volume : float; (** total latency of those messages *)
}

type error =
  | Deadlock of Taskgraph.task list
      (** Tasks that could never start (processor order inconsistent with
          the dependences). *)
  | Incomplete_schedule of Taskgraph.task list
      (** Tasks missing a processor assignment. *)

val run :
  ?send_ports:int ->
  ?tracer:Flb_obs.Trace.t ->
  ?metrics:Flb_obs.Metrics.t ->
  Schedule.t ->
  (outcome, error) result
(** Replay a (complete) schedule.

    [send_ports] models network-interface contention, which the paper's
    machine model ignores: each processor owns that many outgoing
    ports, and a message occupies one port for its whole latency, so
    concurrent sends beyond the port count serialize (earliest-free
    port, FIFO among ties). Omitted (the default) means contention-free
    communication exactly as in the paper; with contention the replay
    measures how much a schedule computed under the contention-free
    assumption degrades on a more realistic machine.

    An enabled [tracer] gets one track per processor carrying the
    executed tasks as spans plus message-send and port-contention-wait
    instants; timestamps are simulated time. [metrics] receives
    [sim_*] counters ([sim_messages_total], [sim_port_waits_total]),
    gauges ([sim_makespan], [sim_comm_volume]) and latency histograms
    ([sim_message_latency], [sim_port_wait]).
    @raise Invalid_argument if [send_ports < 1]. *)

val replay_placement :
  ?send_ports:int ->
  ?tracer:Flb_obs.Trace.t ->
  ?metrics:Flb_obs.Metrics.t ->
  Taskgraph.t ->
  Machine.t ->
  proc_of:(Taskgraph.task -> int) ->
  order_on:(int -> Taskgraph.task list) ->
  (outcome, error) result
(** Same, from a raw placement: [proc_of] maps every task to a processor
    and [order_on p] lists the tasks of processor [p] in execution
    order. *)

val agrees_with_schedule : Schedule.t -> outcome -> bool
(** True iff every simulated start time equals the schedule's start time
    exactly. Holds for all work-conserving schedulers in this
    repository. *)
