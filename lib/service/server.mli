(** The scheduling daemon.

    A TCP server speaking the {!Wire} protocol. Connections are
    accepted on a listener thread and each served by its own systhread
    (connection handling is I/O-bound); the actual scheduling runs on a
    {!Pool} of OCaml 5 domains behind a capacity-bounded queue.

    The request path for [Schedule] is: validate → parse graph → probe
    the {!Cache} (a hit answers immediately, bypassing the pool) →
    admission control (a full queue answers [Overloaded] without
    blocking) → enqueue → a worker domain checks the queueing deadline,
    computes the schedule plus makespan/speedup/NSL, caches it → the
    connection thread sends the response.

    {2 Observability}

    Everything observable goes through one {!Flb_obs.Metrics} registry:
    request/overload/error counters, cache hit/miss/eviction counters,
    a queue-depth gauge, a request-latency histogram and per-stage
    histograms ([service_queue_wait_seconds], [service_cache_seconds],
    [service_sched_seconds], [service_exec_seconds]). [Get_metrics]
    serves the registry's Prometheus exposition; [Get_stats] serves a
    refreshed live snapshot (uptime, cache hit rate, pool depth,
    per-connection table) in Prometheus or JSON form.

    Every [Schedule] request carries a {!Flb_obs.Trace_context} id,
    taken from the wire header (v2 peers) or minted server-side (v1
    peers, or an unset id), and echoed in the response header. When the
    server [config] carries an enabled tracer, each request emits
    queue-wait / cache / schedule / execute spans on its own
    ["req-<id>"] track and the scheduler's probe phases land on their
    phase tracks, so one request reads as one correlated row in
    Perfetto. Stage durations also travel back to the client in the
    [Scheduled] response's breakdown, tracer or not.

    {2 Streaming}

    The v3 streaming messages ([Open_stream], [Add_tasks], [Add_edges],
    [Seal], [Poll_stream]) are routed to a
    {!Flb_stream.Scheduler_loop}: a per-stream session table with
    admission control and idle eviction, scheduling rounds that batch
    concurrent streams into one super-DAG, and per-round ["stream"]
    trace spans. The accept loop doubles as the round timer (its 200 ms
    select timeout bounds timer-tick latency). Streaming rounds never
    consult the LRU cache — partial graphs cannot repeat — and are
    accounted as [cache_bypass_total] so [service_cache_hit_rate] stays
    meaningful for one-shot traffic. *)

type config = {
  host : string;  (** Bind address; default ["127.0.0.1"]. *)
  port : int;  (** 0 picks an ephemeral port (see {!port}). *)
  domains : int;  (** Worker domains in the pool. *)
  queue_capacity : int;  (** Bound on queued (not in-flight) jobs. *)
  cache_capacity : int;  (** LRU entries. *)
  max_frame : int;  (** Reject frames declaring more than this. *)
  deadline_s : float;
      (** A job that waited in the queue longer than this answers
          [Error Deadline_exceeded] instead of running. *)
  work_delay_s : float;
      (** Artificial per-job delay before computing; 0 in production.
          Tests and load-shaping experiments use it to saturate the
          queue deterministically. *)
  tracer : Flb_obs.Trace.t;
      (** Request-trace sink; {!Flb_obs.Trace.null} (the default)
          disables request tracing at zero cost. Tracer writes are
          serialized on an internal lock, so enabling tracing also
          serializes traced scheduling runs — a debugging mode, not a
          throughput mode. *)
  stream : Flb_stream.Scheduler_loop.config;
      (** Streaming-session tuning: scheduling-round task threshold,
          round timer period, idle-stream eviction, stream admission
          limit. *)
}

val default_config : config
(** 127.0.0.1:7440, 2 domains, queue 64, cache 256, 16 MiB frames,
    30 s deadline, no artificial delay, no tracer, default streaming
    config ({!Flb_stream.Scheduler_loop.default_config}). *)

type t

val start : ?metrics:Flb_obs.Metrics.t -> config -> t
(** Binds, listens and returns immediately; serving happens on
    background threads. @raise Unix.Unix_error if the bind fails. *)

val port : t -> int
(** The actual bound port (useful with [port = 0]). *)

val metrics : t -> Flb_obs.Metrics.t

val request_stop : t -> unit
(** Begin a graceful shutdown: stop accepting, drain the pool. Returns
    without waiting; never blocks (safe to call from a connection
    thread serving a [Shutdown] request). *)

val wait : t -> unit
(** Block until the server has fully stopped. *)

val stop : t -> unit
(** [request_stop] then [wait]. Idempotent. *)
