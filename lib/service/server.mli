(** The scheduling daemon.

    A TCP server speaking the {!Wire} protocol. Connections are
    accepted on a listener thread and each served by its own systhread
    (connection handling is I/O-bound); the actual scheduling runs on a
    {!Pool} of OCaml 5 domains behind a capacity-bounded queue.

    The request path for [Schedule] is: validate → parse graph → probe
    the {!Cache} (a hit answers immediately, bypassing the pool) →
    admission control (a full queue answers [Overloaded] without
    blocking) → enqueue → a worker domain checks the queueing deadline,
    computes the schedule plus makespan/speedup/NSL, caches it → the
    connection thread sends the response.

    Everything observable goes through one {!Flb_obs.Metrics} registry:
    request/overload/error counters, cache hit/miss/eviction counters,
    a queue-depth gauge and a request-latency histogram; [Get_metrics]
    serves that registry's Prometheus exposition over the wire. *)

type config = {
  host : string;  (** Bind address; default ["127.0.0.1"]. *)
  port : int;  (** 0 picks an ephemeral port (see {!port}). *)
  domains : int;  (** Worker domains in the pool. *)
  queue_capacity : int;  (** Bound on queued (not in-flight) jobs. *)
  cache_capacity : int;  (** LRU entries. *)
  max_frame : int;  (** Reject frames declaring more than this. *)
  deadline_s : float;
      (** A job that waited in the queue longer than this answers
          [Error Deadline_exceeded] instead of running. *)
  work_delay_s : float;
      (** Artificial per-job delay before computing; 0 in production.
          Tests and load-shaping experiments use it to saturate the
          queue deterministically. *)
}

val default_config : config
(** 127.0.0.1:7440, 2 domains, queue 64, cache 256, 16 MiB frames,
    30 s deadline, no artificial delay. *)

type t

val start : ?metrics:Flb_obs.Metrics.t -> config -> t
(** Binds, listens and returns immediately; serving happens on
    background threads. @raise Unix.Unix_error if the bind fails. *)

val port : t -> int
(** The actual bound port (useful with [port = 0]). *)

val metrics : t -> Flb_obs.Metrics.t

val request_stop : t -> unit
(** Begin a graceful shutdown: stop accepting, drain the pool. Returns
    without waiting; never blocks (safe to call from a connection
    thread serving a [Shutdown] request). *)

val wait : t -> unit
(** Block until the server has fully stopped. *)

val stop : t -> unit
(** [request_stop] then [wait]. Idempotent. *)
