type t = {
  jobs : (unit -> unit) Queue.t;
  queue_capacity : int;
  lock : Mutex.t;
  not_empty : Condition.t;
  mutable closed : bool;
  mutable workers : Flb_prelude.Workers.t option;
}

let worker t _index =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.jobs && not t.closed do
      Condition.wait t.not_empty t.lock
    done;
    match Queue.take_opt t.jobs with
    | None ->
      (* empty and closed: graceful drain complete *)
      Mutex.unlock t.lock;
      ()
    | Some job ->
      Mutex.unlock t.lock;
      (try job () with _ -> ());
      loop ()
  in
  loop ()

let create ?name:_ ~domains ~queue_capacity () =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  if queue_capacity < 1 then invalid_arg "Pool.create: queue_capacity must be >= 1";
  let t =
    {
      jobs = Queue.create ();
      queue_capacity;
      lock = Mutex.create ();
      not_empty = Condition.create ();
      closed = false;
      workers = None;
    }
  in
  t.workers <- Some (Flb_prelude.Workers.spawn ~count:domains (worker t));
  t

let submit t job =
  Mutex.lock t.lock;
  let accepted = (not t.closed) && Queue.length t.jobs < t.queue_capacity in
  if accepted then begin
    Queue.push job t.jobs;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.lock;
  accepted

let pending t =
  Mutex.lock t.lock;
  let n = Queue.length t.jobs in
  Mutex.unlock t.lock;
  n

let domains t =
  match t.workers with Some w -> Flb_prelude.Workers.count w | None -> 0

let queue_capacity t = t.queue_capacity

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.lock;
  match t.workers with
  | Some w -> Flb_prelude.Workers.join w
  | None -> ()
