type stats_format = Stats_prometheus | Stats_json

type peer_status = Peer_up | Peer_draining | Peer_down

type gossip_entry = { backend : string; status : peer_status; epoch : int }

type gossip_digest = {
  entries : gossip_entry list;
  splits : string list;
  splits_epoch : int;
}

let empty_digest = { entries = []; splits = []; splits_epoch = 0 }

type request =
  | Schedule of { graph : string; algo : string; procs : int }
  | Get_metrics
  | Get_stats of stats_format
  | Get_load
  | Ping
  | Shutdown
  | Open_stream of { algo : string; procs : int; batch_tasks : int }
  | Add_tasks of { stream : int; comps : float array }
  | Add_edges of { stream : int; edges : (int * int * float) array }
  | Seal of { stream : int }
  | Poll_stream of { stream : int }
  | Gossip of { from : string; digest : gossip_digest }
  | Drain of { backend : string }

type error_code =
  | Bad_request
  | Invalid_graph
  | Unknown_algorithm
  | Deadline_exceeded
  | Internal
  | Unknown_stream
  | Edge_rejected

type breakdown = {
  queue_wait_s : float;
  cache_s : float;
  sched_s : float;
  exec_s : float;
}

let no_breakdown = { queue_wait_s = 0.0; cache_s = 0.0; sched_s = 0.0; exec_s = 0.0 }

type load = {
  uptime_s : float;
  pending : int;
  cache_entries : int;
  cache_hit_rate : float;
  scheduled_total : int;
  connections : int;
}

type response =
  | Scheduled of {
      schedule : string;
      makespan : float;
      speedup : float;
      nsl : float;
      cache_hit : bool;
      breakdown : breakdown;
    }
  | Metrics_text of string
  | Stats_text of string
  | Load of load
  | Pong
  | Shutting_down
  | Overloaded
  | Error of { code : error_code; message : string }
  | Stream_opened of { stream : int }
  | Placed of {
      stream : int;
      round : int;
      final : bool;
      makespan : float;
      placements : (int * int * float) array;
    }
  | Gossip_ack of { digest : gossip_digest }
  | Drain_ack of { backend : string }

let version = 4

let min_version = 1

type header = { header_version : int; trace_id : int64 }

let header_v1 = { header_version = 1; trace_id = 0L }

let default_max_frame = 16 * 1024 * 1024

let error_code_to_string = function
  | Bad_request -> "bad request"
  | Invalid_graph -> "invalid graph"
  | Unknown_algorithm -> "unknown algorithm"
  | Deadline_exceeded -> "deadline exceeded"
  | Internal -> "internal error"
  | Unknown_stream -> "unknown stream"
  | Edge_rejected -> "edge rejected"

(* --- primitive writers --- *)

let put_u8 buf n = Buffer.add_uint8 buf n

let put_i32 buf n = Buffer.add_int32_be buf (Int32.of_int n)

let put_i64 buf n = Buffer.add_int64_be buf n

let put_f64 buf x = Buffer.add_int64_be buf (Int64.bits_of_float x)

let put_string buf s =
  put_i32 buf (String.length s);
  Buffer.add_string buf s

let put_bool buf b = put_u8 buf (if b then 1 else 0)

(* --- primitive readers: a cursor over the payload string --- *)

exception Malformed of string

type cursor = { payload : string; mutable pos : int }

let need cur n what =
  if cur.pos + n > String.length cur.payload then
    raise (Malformed (Printf.sprintf "truncated payload: expected %s" what))

let get_u8 cur what =
  need cur 1 what;
  let n = Char.code cur.payload.[cur.pos] in
  cur.pos <- cur.pos + 1;
  n

let get_i32 cur what =
  need cur 4 what;
  let n = Int32.to_int (String.get_int32_be cur.payload cur.pos) in
  cur.pos <- cur.pos + 4;
  n

let get_i64 cur what =
  need cur 8 what;
  let n = String.get_int64_be cur.payload cur.pos in
  cur.pos <- cur.pos + 8;
  n

let get_f64 cur what =
  need cur 8 what;
  let x = Int64.float_of_bits (String.get_int64_be cur.payload cur.pos) in
  cur.pos <- cur.pos + 8;
  x

let get_string cur what =
  let len = get_i32 cur (what ^ " length") in
  if len < 0 then raise (Malformed (what ^ ": negative string length"));
  need cur len what;
  let s = String.sub cur.payload cur.pos len in
  cur.pos <- cur.pos + len;
  s

let get_bool cur what =
  match get_u8 cur what with
  | 0 -> false
  | 1 -> true
  | n -> raise (Malformed (Printf.sprintf "%s: bad boolean %d" what n))

(* The header: a version byte, then — from v2 on — the 8-byte trace id.
   v1 payloads carry no id and decode with trace_id = 0. *)
let put_header buf ~trace_id =
  put_u8 buf version;
  put_i64 buf trace_id

let get_header cur =
  let v = get_u8 cur "version" in
  if v < min_version || v > version then
    raise (Malformed (Printf.sprintf "unsupported protocol version %d" v));
  let trace_id = if v >= 2 then get_i64 cur "trace id" else 0L in
  { header_version = v; trace_id }

let decode what payload read =
  try
    let cur = { payload; pos = 0 } in
    let header = get_header cur in
    let value = read header cur in
    if cur.pos <> String.length payload then
      raise
        (Malformed
           (Printf.sprintf "%d trailing bytes after %s"
              (String.length payload - cur.pos)
              what));
    Result.Ok (header, value)
  with Malformed msg -> Result.Error (what ^ ": " ^ msg)

(* --- requests --- *)

let stats_format_to_int = function Stats_prometheus -> 0 | Stats_json -> 1

let stats_format_of_int = function
  | 0 -> Stats_prometheus
  | 1 -> Stats_json
  | n -> raise (Malformed (Printf.sprintf "unknown stats format %d" n))

(* Counted arrays: a 4-byte element count, then the elements. The count
   is validated against the bytes actually present before any element
   is read, so a hostile count cannot drive a huge allocation. *)
let put_f64_array buf a =
  put_i32 buf (Array.length a);
  Array.iter (put_f64 buf) a

let get_f64_array cur what =
  let n = get_i32 cur (what ^ " count") in
  if n < 0 then raise (Malformed (what ^ ": negative count"));
  need cur (8 * n) what;
  Array.init n (fun _ -> get_f64 cur what)

let put_triple_array buf a =
  put_i32 buf (Array.length a);
  Array.iter
    (fun (x, y, w) ->
      put_i32 buf x;
      put_i32 buf y;
      put_f64 buf w)
    a

let get_triple_array cur what =
  let n = get_i32 cur (what ^ " count") in
  if n < 0 then raise (Malformed (what ^ ": negative count"));
  need cur (16 * n) what;
  Array.init n (fun _ ->
      let x = get_i32 cur what in
      let y = get_i32 cur what in
      let w = get_f64 cur what in
      (x, y, w))

(* Gossip digests: counted lists whose counts are validated against a
   per-element size floor before anything is allocated, same discipline
   as the counted arrays above. An entry is at least 13 bytes (string
   length word, status byte, epoch), a split key at least 4. *)
let peer_status_to_int = function
  | Peer_up -> 0
  | Peer_draining -> 1
  | Peer_down -> 2

let peer_status_of_int = function
  | 0 -> Peer_up
  | 1 -> Peer_draining
  | 2 -> Peer_down
  | n -> raise (Malformed (Printf.sprintf "unknown peer status %d" n))

let put_digest buf d =
  put_i32 buf (List.length d.entries);
  List.iter
    (fun e ->
      put_string buf e.backend;
      put_u8 buf (peer_status_to_int e.status);
      put_i64 buf (Int64.of_int e.epoch))
    d.entries;
  put_i32 buf (List.length d.splits);
  List.iter (put_string buf) d.splits;
  put_i64 buf (Int64.of_int d.splits_epoch)

let get_counted cur what ~min_bytes read =
  let n = get_i32 cur (what ^ " count") in
  if n < 0 then raise (Malformed (what ^ ": negative count"));
  need cur (min_bytes * n) what;
  List.init n (fun _ -> read cur)

let get_digest cur =
  let entries =
    get_counted cur "gossip entries" ~min_bytes:13 (fun cur ->
        let backend = get_string cur "gossip backend" in
        let status = peer_status_of_int (get_u8 cur "gossip status") in
        let epoch = Int64.to_int (get_i64 cur "gossip epoch") in
        { backend; status; epoch })
  in
  let splits =
    get_counted cur "gossip splits" ~min_bytes:4 (fun cur ->
        get_string cur "gossip split key")
  in
  let splits_epoch = Int64.to_int (get_i64 cur "splits epoch") in
  { entries; splits; splits_epoch }

let put_request buf r =
  match r with
  | Schedule { graph; algo; procs } ->
    put_u8 buf 1;
    put_string buf graph;
    put_string buf algo;
    put_i32 buf procs
  | Get_metrics -> put_u8 buf 2
  | Ping -> put_u8 buf 3
  | Shutdown -> put_u8 buf 4
  | Get_stats fmt ->
    put_u8 buf 5;
    put_u8 buf (stats_format_to_int fmt)
  | Get_load -> put_u8 buf 6
  | Open_stream { algo; procs; batch_tasks } ->
    put_u8 buf 7;
    put_string buf algo;
    put_i32 buf procs;
    put_i32 buf batch_tasks
  | Add_tasks { stream; comps } ->
    put_u8 buf 8;
    put_i32 buf stream;
    put_f64_array buf comps
  | Add_edges { stream; edges } ->
    put_u8 buf 9;
    put_i32 buf stream;
    put_triple_array buf edges
  | Seal { stream } ->
    put_u8 buf 10;
    put_i32 buf stream
  | Poll_stream { stream } ->
    put_u8 buf 11;
    put_i32 buf stream
  | Gossip { from; digest } ->
    put_u8 buf 12;
    put_string buf from;
    put_digest buf digest
  | Drain { backend } ->
    put_u8 buf 13;
    put_string buf backend

let encode_request ?(trace_id = 0L) r =
  let buf = Buffer.create 256 in
  put_header buf ~trace_id;
  put_request buf r;
  Buffer.contents buf

let check_not_v3_request ~who r =
  match r with
  | Open_stream _ | Add_tasks _ | Add_edges _ | Seal _ | Poll_stream _ ->
    invalid_arg (Printf.sprintf "Wire.%s: streaming messages are v3-only" who)
  | _ -> ()

let check_not_v4_request ~who r =
  match r with
  | Gossip _ | Drain _ ->
    invalid_arg (Printf.sprintf "Wire.%s: gossip/drain messages are v4-only" who)
  | _ -> ()

(* v1 framing, for peers (and compatibility tests) that predate the
   trace-id header. Messages that did not exist in v1 cannot be sent. *)
let encode_request_v1 r =
  (match r with
  | Get_stats _ -> invalid_arg "Wire.encode_request_v1: Get_stats is v2-only"
  | Get_load -> invalid_arg "Wire.encode_request_v1: Get_load is v2-only"
  | _ ->
    check_not_v3_request ~who:"encode_request_v1" r;
    check_not_v4_request ~who:"encode_request_v1" r);
  let buf = Buffer.create 256 in
  put_u8 buf 1;
  put_request buf r;
  Buffer.contents buf

(* v2 framing (trace id, no streaming): what a PR 6/7-era peer sends. *)
let encode_request_v2 ?(trace_id = 0L) r =
  check_not_v3_request ~who:"encode_request_v2" r;
  check_not_v4_request ~who:"encode_request_v2" r;
  let buf = Buffer.create 256 in
  put_u8 buf 2;
  put_i64 buf trace_id;
  put_request buf r;
  Buffer.contents buf

(* v3 framing (streaming, no gossip/drain): what a PR 8/9-era peer sends. *)
let encode_request_v3 ?(trace_id = 0L) r =
  check_not_v4_request ~who:"encode_request_v3" r;
  let buf = Buffer.create 256 in
  put_u8 buf 3;
  put_i64 buf trace_id;
  put_request buf r;
  Buffer.contents buf

let decode_request payload =
  decode "request" payload (fun header cur ->
      match get_u8 cur "tag" with
      | 1 ->
        let graph = get_string cur "graph" in
        let algo = get_string cur "algo" in
        let procs = get_i32 cur "procs" in
        Schedule { graph; algo; procs }
      | 2 -> Get_metrics
      | 3 -> Ping
      | 4 -> Shutdown
      | 5 when header.header_version >= 2 ->
        Get_stats (stats_format_of_int (get_u8 cur "stats format"))
      | 6 when header.header_version >= 2 -> Get_load
      | 7 when header.header_version >= 3 ->
        let algo = get_string cur "algo" in
        let procs = get_i32 cur "procs" in
        let batch_tasks = get_i32 cur "batch_tasks" in
        Open_stream { algo; procs; batch_tasks }
      | 8 when header.header_version >= 3 ->
        let stream = get_i32 cur "stream" in
        let comps = get_f64_array cur "comps" in
        Add_tasks { stream; comps }
      | 9 when header.header_version >= 3 ->
        let stream = get_i32 cur "stream" in
        let edges = get_triple_array cur "edges" in
        Add_edges { stream; edges }
      | 10 when header.header_version >= 3 -> Seal { stream = get_i32 cur "stream" }
      | 11 when header.header_version >= 3 ->
        Poll_stream { stream = get_i32 cur "stream" }
      | 12 when header.header_version >= 4 ->
        let from = get_string cur "gossip from" in
        let digest = get_digest cur in
        Gossip { from; digest }
      | 13 when header.header_version >= 4 ->
        Drain { backend = get_string cur "drain backend" }
      | n -> raise (Malformed (Printf.sprintf "unknown request tag %d" n)))

(* --- responses --- *)

let error_code_to_int = function
  | Bad_request -> 1
  | Invalid_graph -> 2
  | Unknown_algorithm -> 3
  | Deadline_exceeded -> 4
  | Internal -> 5
  | Unknown_stream -> 6
  | Edge_rejected -> 7

let error_code_of_int = function
  | 1 -> Bad_request
  | 2 -> Invalid_graph
  | 3 -> Unknown_algorithm
  | 4 -> Deadline_exceeded
  | 5 -> Internal
  | 6 -> Unknown_stream
  | 7 -> Edge_rejected
  | n -> raise (Malformed (Printf.sprintf "unknown error code %d" n))

(* [v] gates version-dependent fields: a v1 Scheduled has no latency
   breakdown. *)
let put_response buf ~v r =
  match r with
  | Scheduled { schedule; makespan; speedup; nsl; cache_hit; breakdown } ->
    put_u8 buf 1;
    put_string buf schedule;
    put_f64 buf makespan;
    put_f64 buf speedup;
    put_f64 buf nsl;
    put_bool buf cache_hit;
    if v >= 2 then begin
      put_f64 buf breakdown.queue_wait_s;
      put_f64 buf breakdown.cache_s;
      put_f64 buf breakdown.sched_s;
      put_f64 buf breakdown.exec_s
    end
  | Metrics_text text ->
    put_u8 buf 2;
    put_string buf text
  | Pong -> put_u8 buf 3
  | Shutting_down -> put_u8 buf 4
  | Overloaded -> put_u8 buf 5
  | Error { code; message } ->
    put_u8 buf 6;
    put_u8 buf (error_code_to_int code);
    put_string buf message
  | Stats_text text ->
    put_u8 buf 7;
    put_string buf text
  | Load l ->
    put_u8 buf 8;
    put_f64 buf l.uptime_s;
    put_i32 buf l.pending;
    put_i32 buf l.cache_entries;
    put_f64 buf l.cache_hit_rate;
    put_i64 buf (Int64.of_int l.scheduled_total);
    put_i32 buf l.connections
  | Stream_opened { stream } ->
    put_u8 buf 9;
    put_i32 buf stream
  | Placed { stream; round; final; makespan; placements } ->
    put_u8 buf 10;
    put_i32 buf stream;
    put_i32 buf round;
    put_bool buf final;
    put_f64 buf makespan;
    put_triple_array buf placements
  | Gossip_ack { digest } ->
    put_u8 buf 11;
    put_digest buf digest
  | Drain_ack { backend } ->
    put_u8 buf 12;
    put_string buf backend

let encode_response ?(trace_id = 0L) r =
  let buf = Buffer.create 256 in
  put_header buf ~trace_id;
  put_response buf ~v:version r;
  Buffer.contents buf

let check_not_v3_response ~who r =
  match r with
  | Stream_opened _ | Placed _ ->
    invalid_arg (Printf.sprintf "Wire.%s: streaming messages are v3-only" who)
  | _ -> ()

let check_not_v4_response ~who r =
  match r with
  | Gossip_ack _ | Drain_ack _ ->
    invalid_arg (Printf.sprintf "Wire.%s: gossip/drain messages are v4-only" who)
  | _ -> ()

let encode_response_v1 r =
  (match r with
  | Stats_text _ -> invalid_arg "Wire.encode_response_v1: Stats_text is v2-only"
  | Load _ -> invalid_arg "Wire.encode_response_v1: Load is v2-only"
  | _ ->
    check_not_v3_response ~who:"encode_response_v1" r;
    check_not_v4_response ~who:"encode_response_v1" r);
  let buf = Buffer.create 256 in
  put_u8 buf 1;
  put_response buf ~v:1 r;
  Buffer.contents buf

let encode_response_v2 ?(trace_id = 0L) r =
  check_not_v3_response ~who:"encode_response_v2" r;
  check_not_v4_response ~who:"encode_response_v2" r;
  let buf = Buffer.create 256 in
  put_u8 buf 2;
  put_i64 buf trace_id;
  put_response buf ~v:2 r;
  Buffer.contents buf

let encode_response_v3 ?(trace_id = 0L) r =
  check_not_v4_response ~who:"encode_response_v3" r;
  let buf = Buffer.create 256 in
  put_u8 buf 3;
  put_i64 buf trace_id;
  put_response buf ~v:3 r;
  Buffer.contents buf

let decode_response payload =
  decode "response" payload (fun header cur ->
      match get_u8 cur "tag" with
      | 1 ->
        let schedule = get_string cur "schedule" in
        let makespan = get_f64 cur "makespan" in
        let speedup = get_f64 cur "speedup" in
        let nsl = get_f64 cur "nsl" in
        let cache_hit = get_bool cur "cache_hit" in
        let breakdown =
          if header.header_version >= 2 then
            let queue_wait_s = get_f64 cur "queue_wait_s" in
            let cache_s = get_f64 cur "cache_s" in
            let sched_s = get_f64 cur "sched_s" in
            let exec_s = get_f64 cur "exec_s" in
            { queue_wait_s; cache_s; sched_s; exec_s }
          else no_breakdown
        in
        Scheduled { schedule; makespan; speedup; nsl; cache_hit; breakdown }
      | 2 -> Metrics_text (get_string cur "metrics")
      | 3 -> Pong
      | 4 -> Shutting_down
      | 5 -> Overloaded
      | 6 ->
        let code = error_code_of_int (get_u8 cur "error code") in
        let message = get_string cur "message" in
        Error { code; message }
      | 7 when header.header_version >= 2 -> Stats_text (get_string cur "stats")
      | 8 when header.header_version >= 2 ->
        let uptime_s = get_f64 cur "uptime_s" in
        let pending = get_i32 cur "pending" in
        let cache_entries = get_i32 cur "cache_entries" in
        let cache_hit_rate = get_f64 cur "cache_hit_rate" in
        let scheduled_total = Int64.to_int (get_i64 cur "scheduled_total") in
        let connections = get_i32 cur "connections" in
        Load
          {
            uptime_s;
            pending;
            cache_entries;
            cache_hit_rate;
            scheduled_total;
            connections;
          }
      | 9 when header.header_version >= 3 ->
        Stream_opened { stream = get_i32 cur "stream" }
      | 10 when header.header_version >= 3 ->
        let stream = get_i32 cur "stream" in
        let round = get_i32 cur "round" in
        let final = get_bool cur "final" in
        let makespan = get_f64 cur "makespan" in
        let placements = get_triple_array cur "placements" in
        Placed { stream; round; final; makespan; placements }
      | 11 when header.header_version >= 4 -> Gossip_ack { digest = get_digest cur }
      | 12 when header.header_version >= 4 ->
        Drain_ack { backend = get_string cur "drained backend" }
      | n -> raise (Malformed (Printf.sprintf "unknown response tag %d" n)))

(* --- framing --- *)

type read_error =
  | Closed
  | Truncated
  | Oversized of int

let read_error_to_string = function
  | Closed -> "connection closed"
  | Truncated -> "truncated frame"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes declared)" n

let write_frame oc payload =
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (String.length payload));
  output_bytes oc header;
  output_string oc payload;
  flush oc

let read_frame ?(max_frame = default_max_frame) ic =
  (* Header bytes come one at a time so EOF before any byte ([Closed],
     the peer hung up between frames) is distinguishable from EOF
     mid-frame ([Truncated]). *)
  match input_char ic with
  | exception End_of_file -> Result.Error Closed
  | first -> (
    try
      let b = Bytes.create 4 in
      Bytes.set b 0 first;
      for i = 1 to 3 do
        Bytes.set b i (input_char ic)
      done;
      let len = Int32.to_int (Bytes.get_int32_be b 0) in
      if len < 0 || len > max_frame then Result.Error (Oversized len)
      else begin
        let payload = Bytes.create len in
        really_input ic payload 0 len;
        Result.Ok (Bytes.unsafe_to_string payload)
      end
    with End_of_file -> Result.Error Truncated)
