(** Blocking client for the scheduling daemon.

    One connection, one outstanding request at a time — exactly what
    the CLI, the tests and each thread of the load generator need. A
    client is NOT safe to share between threads; give each thread its
    own.

    Every request carries a {!Flb_obs.Trace_context} id in the wire
    header — minted per call unless the caller supplies one — and the
    id the server answered with is kept in {!last_trace_id}, so a
    caller can print "request 3f9a... failed" and grep the daemon's
    trace for the matching ["req-3f9a..."] track. *)

type t

val connect :
  ?host:string ->
  ?connect_timeout_s:float ->
  ?io_timeout_s:float ->
  port:int ->
  unit ->
  t
(** [host] defaults to ["127.0.0.1"]. [connect_timeout_s] bounds the
    TCP connect itself (non-blocking connect + select; absent or
    non-positive means the OS default, which can be minutes on a
    black-holed address). [io_timeout_s] arms per-syscall send/receive
    deadlines on the socket, so a peer that accepts a request but never
    answers turns into a [call] transport error instead of a hang —
    this is what lets a router fail over from a stalled backend.
    @raise Unix.Unix_error if the connection fails (including
    [ETIMEDOUT] from an expired [connect_timeout_s]). *)

val close : t -> unit
(** Idempotent. *)

val call : ?trace_id:int64 -> t -> Wire.request -> (Wire.response, string) result
(** One round trip. [Error] covers transport failures (connection
    closed, truncated or oversized response frame, undecodable
    payload); protocol-level failures arrive as [Ok (Wire.Error _)],
    [Ok Wire.Overloaded], etc. An absent or zero [trace_id] mints a
    fresh one. *)

val last_trace_id : t -> int64
(** The trace id of the most recent call: the one from the response
    header when the server set it, else the one this client sent.
    [0L] before the first call. *)

(** {1 Convenience wrappers} *)

val schedule :
  ?trace_id:int64 ->
  t ->
  graph:string ->
  algo:string ->
  procs:int ->
  (Wire.response, string) result
(** [call] with a [Wire.Schedule] request; the graph in
    {!Flb_taskgraph.Serial} text format. *)

val get_metrics : t -> (string, string) result
(** The server registry's Prometheus exposition. *)

val get_stats : t -> format:Wire.stats_format -> (string, string) result
(** Live introspection snapshot, pre-rendered by the daemon. *)

val get_load : t -> (Wire.load, string) result
(** Lightweight binary load probe (v2-only) — the router's balancer
    polls this instead of parsing a full stats snapshot. *)

val ping : t -> (unit, string) result

val shutdown : t -> (unit, string) result
(** Ask the daemon to drain and exit; [Ok ()] once it acknowledges. *)

val drain : ?backend:string -> t -> (unit, string) result
(** Graceful removal (v4-only). Against a router, [backend] names the
    member to flip to [Draining]; against a daemon, the default [""]
    asks the daemon itself to finish in-flight work and exit. [Ok ()]
    once the drain is acknowledged (not yet complete). *)

val gossip :
  t -> from:string -> digest:Wire.gossip_digest -> (Wire.gossip_digest, string) result
(** One symmetric anti-entropy exchange with a router peer (v4-only):
    send our digest, get the peer's post-merge digest back. *)

(** {1 Streaming (protocol v3)}

    The streaming wrappers unwrap the server's [Placed] answers into
    {!placed}; any other answer — including structured [Error]
    responses — comes back as [Error message]. Task ids are
    client-computable: consecutive from the stream's running task
    count, in [Add_tasks] order. *)

type placed = {
  round : int;  (** Scheduling rounds the stream has been part of. *)
  final : bool;  (** The stream is sealed, fully placed, and closed. *)
  makespan : float;  (** Max finish time over the stream's placements. *)
  placements : (int * int * float) array;  (** [(task, proc, start)]. *)
}

val open_stream :
  ?batch_tasks:int -> t -> algo:string -> procs:int -> (int, string) result
(** Open a streaming session; returns the server-assigned stream id. *)

val add_tasks : t -> stream:int -> comps:float array -> (placed, string) result

val add_edges :
  t -> stream:int -> edges:(int * int * float) array -> (placed, string) result

val seal_stream : t -> stream:int -> (placed, string) result
(** The final drain: the answer has [final = true]. *)

val poll_stream : t -> stream:int -> (placed, string) result
