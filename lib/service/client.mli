(** Blocking client for the scheduling daemon.

    One connection, one outstanding request at a time — exactly what
    the CLI, the tests and each thread of the load generator need. A
    client is NOT safe to share between threads; give each thread its
    own. *)

type t

val connect : ?host:string -> port:int -> unit -> t
(** [host] defaults to ["127.0.0.1"].
    @raise Unix.Unix_error if the connection fails. *)

val close : t -> unit
(** Idempotent. *)

val call : t -> Wire.request -> (Wire.response, string) result
(** One round trip. [Error] covers transport failures (connection
    closed, truncated or oversized response frame, undecodable
    payload); protocol-level failures arrive as [Ok (Wire.Error _)],
    [Ok Wire.Overloaded], etc. *)

(** {1 Convenience wrappers} *)

val schedule :
  t ->
  graph:string ->
  algo:string ->
  procs:int ->
  (Wire.response, string) result
(** [call] with a [Wire.Schedule] request; the graph in
    {!Flb_taskgraph.Serial} text format. *)

val get_metrics : t -> (string, string) result
(** The server registry's Prometheus exposition. *)

val ping : t -> (unit, string) result

val shutdown : t -> (unit, string) result
(** Ask the daemon to drain and exit; [Ok ()] once it acknowledges. *)
