module Ctx = Flb_obs.Trace_context

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
  mutable last_trace_id : int64;
}

(* Bounded connect: non-blocking connect + select, then read the
   socket's error slot. Plain [Unix.connect] can block for minutes on a
   black-holed address — a router failing over cannot afford that. *)
let connect_bounded fd addr ~timeout_s =
  Unix.set_nonblock fd;
  (match Unix.connect fd addr with
  | () -> ()
  | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
    match Unix.select [] [ fd ] [] timeout_s with
    | _, [], _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
    | _ -> (
      match Unix.getsockopt_error fd with
      | None -> ()
      | Some err -> raise (Unix.Unix_error (err, "connect", "")))));
  Unix.clear_nonblock fd

let connect ?(host = "127.0.0.1") ?connect_timeout_s ?io_timeout_s ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    (match connect_timeout_s with
    | Some t when t > 0.0 -> connect_bounded fd addr ~timeout_s:t
    | _ -> Unix.connect fd addr);
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
    (match io_timeout_s with
    | Some t when t > 0.0 ->
      (* Per-syscall receive/send deadlines: a peer that accepts the
         request but never answers surfaces as a transport error
         instead of hanging the caller forever. *)
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO t;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO t
       with _ -> ())
    | _ -> ());
    {
      fd;
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
      closed = false;
      last_trace_id = 0L;
    }
  with e ->
    (try Unix.close fd with _ -> ());
    raise e

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out_noerr t.oc;
    close_in_noerr t.ic
  end

let last_trace_id t = t.last_trace_id

(* Every call carries a trace id — minted here unless the caller brings
   its own — so the request is correlatable end to end even when the
   caller never looks at traces. The response header's id (the server
   echoes ours, or minted its own for us) lands in [last_trace_id]. *)
let call ?trace_id t request =
  if t.closed then Error "client already closed"
  else begin
    let id =
      match trace_id with Some id when id <> 0L -> id | _ -> Ctx.mint ()
    in
    t.last_trace_id <- id;
    match
      Wire.write_frame t.oc (Wire.encode_request ~trace_id:id request);
      Wire.read_frame t.ic
    with
    | Ok payload -> (
      match Wire.decode_response payload with
      | Ok (header, resp) ->
        if header.Wire.trace_id <> 0L then t.last_trace_id <- header.Wire.trace_id;
        Ok resp
      | Error _ as e -> e)
    | Error e -> Error (Wire.read_error_to_string e)
    | exception Sys_error msg -> Error msg
    | exception Sys_blocked_io -> Error "request timed out"
    | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  end

let schedule ?trace_id t ~graph ~algo ~procs =
  call ?trace_id t (Wire.Schedule { graph; algo; procs })

let get_metrics t =
  match call t Wire.Get_metrics with
  | Ok (Wire.Metrics_text text) -> Ok text
  | Ok resp ->
    Error
      (match resp with
      | Wire.Error { code; message } ->
        Printf.sprintf "%s: %s" (Wire.error_code_to_string code) message
      | _ -> "unexpected response to Get_metrics")
  | Error _ as e -> e

let get_stats t ~format =
  match call t (Wire.Get_stats format) with
  | Ok (Wire.Stats_text text) -> Ok text
  | Ok resp ->
    Error
      (match resp with
      | Wire.Error { code; message } ->
        Printf.sprintf "%s: %s" (Wire.error_code_to_string code) message
      | _ -> "unexpected response to Get_stats")
  | Error _ as e -> e

let get_load t =
  match call t Wire.Get_load with
  | Ok (Wire.Load l) -> Ok l
  | Ok resp ->
    Error
      (match resp with
      | Wire.Error { code; message } ->
        Printf.sprintf "%s: %s" (Wire.error_code_to_string code) message
      | _ -> "unexpected response to Get_load")
  | Error _ as e -> e

let ping t =
  match call t Wire.Ping with
  | Ok Wire.Pong -> Ok ()
  | Ok _ -> Error "unexpected response to Ping"
  | Error _ as e -> e

let shutdown t =
  match call t Wire.Shutdown with
  | Ok Wire.Shutting_down -> Ok ()
  | Ok _ -> Error "unexpected response to Shutdown"
  | Error _ as e -> e

let drain ?(backend = "") t =
  match call t (Wire.Drain { backend }) with
  | Ok (Wire.Drain_ack _) -> Ok ()
  | Ok (Wire.Error { code; message }) ->
    Error (Printf.sprintf "%s: %s" (Wire.error_code_to_string code) message)
  | Ok _ -> Error "unexpected response to Drain"
  | Error _ as e -> e

let gossip t ~from ~digest =
  match call t (Wire.Gossip { from; digest }) with
  | Ok (Wire.Gossip_ack { digest }) -> Ok digest
  | Ok (Wire.Error { code; message }) ->
    Error (Printf.sprintf "%s: %s" (Wire.error_code_to_string code) message)
  | Ok _ -> Error "unexpected response to Gossip"
  | Error _ as e -> e

(* --- streaming --- *)

type placed = {
  round : int;
  final : bool;
  makespan : float;
  placements : (int * int * float) array;
}

let unexpected what = function
  | Wire.Error { code; message } ->
    Error (Printf.sprintf "%s: %s" (Wire.error_code_to_string code) message)
  | Wire.Overloaded -> Error "server overloaded"
  | _ -> Error ("unexpected response to " ^ what)

let open_stream ?(batch_tasks = 0) t ~algo ~procs =
  match call t (Wire.Open_stream { algo; procs; batch_tasks }) with
  | Ok (Wire.Stream_opened { stream }) -> Ok stream
  | Ok resp -> unexpected "Open_stream" resp
  | Error _ as e -> e

let placed_of what t request =
  match call t request with
  | Ok (Wire.Placed { stream = _; round; final; makespan; placements }) ->
    Ok { round; final; makespan; placements }
  | Ok resp -> unexpected what resp
  | Error _ as e -> e

let add_tasks t ~stream ~comps =
  placed_of "Add_tasks" t (Wire.Add_tasks { stream; comps })

let add_edges t ~stream ~edges =
  placed_of "Add_edges" t (Wire.Add_edges { stream; edges })

let seal_stream t ~stream = placed_of "Seal" t (Wire.Seal { stream })

let poll_stream t ~stream = placed_of "Poll_stream" t (Wire.Poll_stream { stream })
