type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
    {
      fd;
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
      closed = false;
    }
  with e ->
    (try Unix.close fd with _ -> ());
    raise e

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out_noerr t.oc;
    close_in_noerr t.ic
  end

let call t request =
  if t.closed then Error "client already closed"
  else
    match
      Wire.write_frame t.oc (Wire.encode_request request);
      Wire.read_frame t.ic
    with
    | Ok payload -> Wire.decode_response payload
    | Error e -> Error (Wire.read_error_to_string e)
    | exception Sys_error msg -> Error msg
    | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let schedule t ~graph ~algo ~procs = call t (Wire.Schedule { graph; algo; procs })

let get_metrics t =
  match call t Wire.Get_metrics with
  | Ok (Wire.Metrics_text text) -> Ok text
  | Ok resp ->
    Error
      (match resp with
      | Wire.Error { code; message } ->
        Printf.sprintf "%s: %s" (Wire.error_code_to_string code) message
      | _ -> "unexpected response to Get_metrics")
  | Error _ as e -> e

let ping t =
  match call t Wire.Ping with
  | Ok Wire.Pong -> Ok ()
  | Ok _ -> Error "unexpected response to Ping"
  | Error _ as e -> e

let shutdown t =
  match call t Wire.Shutdown with
  | Ok Wire.Shutting_down -> Ok ()
  | Ok _ -> Error "unexpected response to Shutdown"
  | Error _ as e -> e
