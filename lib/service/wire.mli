(** Framed wire protocol of the scheduling service.

    Every message travels as one {e frame}: a 4-byte big-endian payload
    length followed by the payload itself. The payload starts with a
    one-byte protocol version, then a one-byte message tag and the
    tag's fields; strings are 4-byte-length-prefixed, floats travel as
    IEEE-754 bit patterns, so [decode ∘ encode] is the identity on
    every value (including non-finite floats).

    Decoding never raises on untrusted input: malformed frames (bad
    version, unknown tag, truncated fields, trailing garbage) come back
    as [Error], and {!read_frame} bounds the declared payload length by
    [max_frame] before allocating anything, so a hostile header cannot
    make the server allocate gigabytes or hang. *)

type request =
  | Schedule of { graph : string; algo : string; procs : int }
      (** [graph] in the {!Flb_taskgraph.Serial} text format; [algo] as
          understood by {!Flb_experiments.Registry.find}. *)
  | Get_metrics  (** Prometheus exposition of the server registry. *)
  | Ping
  | Shutdown  (** Ask the daemon to drain and exit. *)

type error_code =
  | Bad_request  (** Malformed frame, payload, or field values. *)
  | Invalid_graph  (** Graph text failed to parse (including cycles). *)
  | Unknown_algorithm
  | Deadline_exceeded  (** Spent longer than the deadline queued. *)
  | Internal

type response =
  | Scheduled of {
      schedule : string;  (** {!Flb_platform.Schedule_io} text format. *)
      makespan : float;
      speedup : float;
      nsl : float;  (** Normalized against MCP on the same instance. *)
      cache_hit : bool;
    }
  | Metrics_text of string
  | Pong
  | Shutting_down
  | Overloaded
      (** Admission control: the work queue is full; retry later. *)
  | Error of { code : error_code; message : string }

val version : int
(** Protocol version carried in every payload (currently 1). *)

val default_max_frame : int
(** 16 MiB: generous for V ≈ 10^5 task graphs, small enough that a
    hostile length header cannot balloon memory. *)

val error_code_to_string : error_code -> string

(** {1 Payload codecs} *)

val encode_request : request -> string

val decode_request : string -> (request, string) result

val encode_response : response -> string

val decode_response : string -> (response, string) result

(** {1 Framing} *)

type read_error =
  | Closed  (** EOF at a frame boundary: orderly peer shutdown. *)
  | Truncated  (** EOF in the middle of a frame. *)
  | Oversized of int  (** Declared length exceeds [max_frame]. *)

val read_error_to_string : read_error -> string

val write_frame : out_channel -> string -> unit
(** Length header plus payload; flushes the channel. *)

val read_frame : ?max_frame:int -> in_channel -> (string, read_error) result
(** Blocking read of one complete frame payload. *)
