(** Framed wire protocol of the scheduling service.

    Every message travels as one {e frame}: a 4-byte big-endian payload
    length followed by the payload itself. The payload starts with a
    one-byte protocol version; from version 2 on, an 8-byte big-endian
    trace id follows (the request-scoped {!Flb_obs.Trace_context} id,
    echoed back in the response header), then a one-byte message tag and
    the tag's fields. Strings are 4-byte-length-prefixed, floats travel
    as IEEE-754 bit patterns, so [decode ∘ encode] is the identity on
    every value (including non-finite floats).

    Version 1 frames (no trace id; [Scheduled] without the latency
    breakdown; no [Get_stats]/[Stats_text]) still decode — the header
    reports [trace_id = 0] and the breakdown reads as zeros — so old
    clients keep working against a new daemon and vice versa. Version 2
    frames (trace id, no streaming messages) likewise still decode.
    Version 3 adds the streaming conversation: [Open_stream] →
    [Stream_opened], then batches of [Add_tasks]/[Add_edges] answered
    with incremental [Placed] notifications, closed by [Seal] (or
    drained on demand with [Poll_stream]). The v1/v2 encoders raise on
    these — a pre-streaming peer cannot express them. Version 4 adds
    the router-tier hardening messages: [Gossip] → [Gossip_ack]
    (replicated routers exchanging per-backend status epochs and the
    split-shard set) and [Drain] → [Drain_ack] (graceful backend
    removal). The v1/v2/v3 encoders raise on these, mirroring the v3
    precedent.

    Decoding never raises on untrusted input: malformed frames (bad
    version, unknown tag, truncated fields, trailing garbage) come back
    as [Error], and {!read_frame} bounds the declared payload length by
    [max_frame] before allocating anything, so a hostile header cannot
    make the server allocate gigabytes or hang. *)

type stats_format =
  | Stats_prometheus  (** Text exposition, same as [Get_metrics] plus
                          refreshed snapshot gauges. *)
  | Stats_json  (** One JSON object with cache/pool/connection detail. *)

(** A backend's health as one router believes it, carried in gossip
    digests (v4-only). Mirrors [Flb_router.Backend.status] without
    making the wire layer depend on the router. *)
type peer_status = Peer_up | Peer_draining | Peer_down

(** One backend's (status, epoch) pair. The epoch is a per-backend
    logical clock bumped on every locally observed status change;
    merges are last-writer-wins by epoch, so epochs never regress. *)
type gossip_entry = { backend : string; status : peer_status; epoch : int }

(** The whole state a router replica shares with its peers: every
    backend's status epoch plus the currently split shard set under its
    own last-writer-wins epoch. Small by construction — O(backends +
    split shards), not O(requests). *)
type gossip_digest = {
  entries : gossip_entry list;
  splits : string list;  (** Shard keys currently fanned out wide. *)
  splits_epoch : int;
}

val empty_digest : gossip_digest

type request =
  | Schedule of { graph : string; algo : string; procs : int }
      (** [graph] in the {!Flb_taskgraph.Serial} text format; [algo] as
          understood by {!Flb_experiments.Registry.find}. *)
  | Get_metrics  (** Prometheus exposition of the server registry. *)
  | Get_stats of stats_format
      (** Live introspection snapshot (v2-only): metrics registry,
          cache hit rate, pool depth, per-connection state. *)
  | Get_load
      (** Lightweight binary load probe (v2-only): the handful of
          numbers a router's balancer needs — queue depth, cache hit
          rate, request count — without rendering a full [Get_stats]
          snapshot. Answered with {!response.Load}. *)
  | Ping
  | Shutdown  (** Ask the daemon to drain and exit. *)
  | Open_stream of { algo : string; procs : int; batch_tasks : int }
      (** Open a streaming session (v3-only). [batch_tasks = 0] leaves
          the server's scheduling-round threshold at its default. *)
  | Add_tasks of { stream : int; comps : float array }
      (** Append weighted tasks; ids are assigned consecutively from the
          stream's current task count (v3-only). *)
  | Add_edges of { stream : int; edges : (int * int * float) array }
      (** Append [(src, dst, comm)] dependences. Edges into tasks the
          server has already dispatched are rejected with
          {!error_code.Edge_rejected} (v3-only). *)
  | Seal of { stream : int }
      (** Declare the graph complete; the answer is the final [Placed]
          and the stream closes (v3-only). *)
  | Poll_stream of { stream : int }
      (** Drain pending placements without appending (v3-only). *)
  | Gossip of { from : string; digest : gossip_digest }
      (** Symmetric anti-entropy exchange between router replicas
          (v4-only): [from] is the sender's advertised address, the
          digest its current view. Answered with {!response.Gossip_ack}
          carrying the receiver's post-merge view. *)
  | Drain of { backend : string }
      (** Graceful removal (v4-only). Sent to a router, [backend] names
          the member to flip to [Draining] (and gossip onward); sent to
          a daemon with [backend = ""], the daemon itself finishes
          in-flight work and streams, then exits. *)

type error_code =
  | Bad_request  (** Malformed frame, payload, or field values. *)
  | Invalid_graph  (** Graph text failed to parse (including cycles). *)
  | Unknown_algorithm
  | Deadline_exceeded  (** Spent longer than the deadline queued. *)
  | Internal
  | Unknown_stream  (** No such (or already closed/evicted) stream. *)
  | Edge_rejected
      (** Structured append rejection: unknown endpoint, self edge,
          duplicate, bad weight, cycle, or an edge into a task whose
          placement was already announced. *)

(** Server-side latency breakdown of one [Schedule] request, in
    seconds. Zero fields where a stage did not run (a cache hit has no
    queue wait or compute). v1 peers always read zeros. *)
type breakdown = {
  queue_wait_s : float;  (** Enqueue to pickup by a worker domain. *)
  cache_s : float;  (** Cache key + lookup. *)
  sched_s : float;  (** The scheduling algorithm proper. *)
  exec_s : float;  (** The whole compute job (scheduling + NSL
                       reference + cache fill). *)
}

val no_breakdown : breakdown
(** All zeros. *)

(** One daemon's point-in-time load, as answered to {!request.Get_load}
    (v2-only). Fixed-size binary — cheap enough for a router to poll
    every health-check period. *)
type load = {
  uptime_s : float;
  pending : int;  (** Jobs waiting in the worker-pool queue. *)
  cache_entries : int;
  cache_hit_rate : float;  (** Hits / lookups since start. *)
  scheduled_total : int;  (** Schedules served since start. *)
  connections : int;  (** Currently open connections. *)
}

type response =
  | Scheduled of {
      schedule : string;  (** {!Flb_platform.Schedule_io} text format. *)
      makespan : float;
      speedup : float;
      nsl : float;  (** Normalized against MCP on the same instance. *)
      cache_hit : bool;
      breakdown : breakdown;
    }
  | Metrics_text of string
  | Stats_text of string  (** [Get_stats] answer, pre-rendered in the
                              requested format (v2-only). *)
  | Load of load  (** [Get_load] answer (v2-only). *)
  | Pong
  | Shutting_down
  | Overloaded
      (** Admission control: the work queue is full; retry later. *)
  | Error of { code : error_code; message : string }
  | Stream_opened of { stream : int }  (** [Open_stream] answer (v3-only). *)
  | Placed of {
      stream : int;
      round : int;  (** Scheduling rounds this stream has been part of. *)
      final : bool;  (** Sealed and fully placed; the stream is closed. *)
      makespan : float;  (** Max finish over the stream's placed tasks. *)
      placements : (int * int * float) array;
          (** Newly dispatched [(task, proc, start)] placements, drained
              from the stream's outbox (v3-only). Placements are
              immutable once announced. *)
    }
  | Gossip_ack of { digest : gossip_digest }
      (** The receiver's view after merging the incoming digest
          (v4-only); the sender merges it back, making one exchange
          symmetric. *)
  | Drain_ack of { backend : string }
      (** Drain accepted; echoes the drained member ("" = self). *)

val version : int
(** Current protocol version (4). *)

val min_version : int
(** Oldest version still decoded (1). *)

(** Decoded payload header. *)
type header = {
  header_version : int;  (** The version the peer actually spoke. *)
  trace_id : int64;  (** 0 when absent (v1) or unset. *)
}

val header_v1 : header
(** [{header_version = 1; trace_id = 0L}]. *)

val default_max_frame : int
(** 16 MiB: generous for V ≈ 10^5 task graphs, small enough that a
    hostile length header cannot balloon memory. *)

val error_code_to_string : error_code -> string

(** {1 Payload codecs} *)

val encode_request : ?trace_id:int64 -> request -> string
(** Current-version (v4) encoding; [trace_id] defaults to 0 (absent). *)

val decode_request : string -> (header * request, string) result

val encode_response : ?trace_id:int64 -> response -> string

val decode_response : string -> (header * response, string) result

val encode_request_v1 : request -> string
(** Legacy v1 encoding, kept for compatibility tests and old peers.
    @raise Invalid_argument on [Get_stats] and [Get_load] (v2-only),
    the streaming messages (v3-only) and the gossip/drain messages
    (v4-only), which v1 cannot express. *)

val encode_response_v1 : response -> string
(** Legacy v1 encoding; a [Scheduled] drops its breakdown.
    @raise Invalid_argument on [Stats_text], [Load], [Stream_opened],
    [Placed], [Gossip_ack] and [Drain_ack]. *)

val encode_request_v2 : ?trace_id:int64 -> request -> string
(** Legacy v2 encoding (trace id, no streaming).
    @raise Invalid_argument on the v3-only streaming messages and the
    v4-only gossip/drain messages. *)

val encode_response_v2 : ?trace_id:int64 -> response -> string
(** Legacy v2 encoding.
    @raise Invalid_argument on [Stream_opened], [Placed], [Gossip_ack]
    and [Drain_ack]. *)

val encode_request_v3 : ?trace_id:int64 -> request -> string
(** Legacy v3 encoding (streaming, no gossip/drain).
    @raise Invalid_argument on the v4-only gossip/drain messages. *)

val encode_response_v3 : ?trace_id:int64 -> response -> string
(** Legacy v3 encoding.
    @raise Invalid_argument on [Gossip_ack] and [Drain_ack]. *)

(** {1 Framing} *)

type read_error =
  | Closed  (** EOF at a frame boundary: orderly peer shutdown. *)
  | Truncated  (** EOF in the middle of a frame. *)
  | Oversized of int  (** Declared length exceeds [max_frame]. *)

val read_error_to_string : read_error -> string

val write_frame : out_channel -> string -> unit
(** Length header plus payload; flushes the channel. *)

val read_frame : ?max_frame:int -> in_channel -> (string, read_error) result
(** Blocking read of one complete frame payload. *)
