(** Framed wire protocol of the scheduling service.

    Every message travels as one {e frame}: a 4-byte big-endian payload
    length followed by the payload itself. The payload starts with a
    one-byte protocol version; from version 2 on, an 8-byte big-endian
    trace id follows (the request-scoped {!Flb_obs.Trace_context} id,
    echoed back in the response header), then a one-byte message tag and
    the tag's fields. Strings are 4-byte-length-prefixed, floats travel
    as IEEE-754 bit patterns, so [decode ∘ encode] is the identity on
    every value (including non-finite floats).

    Version 1 frames (no trace id; [Scheduled] without the latency
    breakdown; no [Get_stats]/[Stats_text]) still decode — the header
    reports [trace_id = 0] and the breakdown reads as zeros — so old
    clients keep working against a new daemon and vice versa.

    Decoding never raises on untrusted input: malformed frames (bad
    version, unknown tag, truncated fields, trailing garbage) come back
    as [Error], and {!read_frame} bounds the declared payload length by
    [max_frame] before allocating anything, so a hostile header cannot
    make the server allocate gigabytes or hang. *)

type stats_format =
  | Stats_prometheus  (** Text exposition, same as [Get_metrics] plus
                          refreshed snapshot gauges. *)
  | Stats_json  (** One JSON object with cache/pool/connection detail. *)

type request =
  | Schedule of { graph : string; algo : string; procs : int }
      (** [graph] in the {!Flb_taskgraph.Serial} text format; [algo] as
          understood by {!Flb_experiments.Registry.find}. *)
  | Get_metrics  (** Prometheus exposition of the server registry. *)
  | Get_stats of stats_format
      (** Live introspection snapshot (v2-only): metrics registry,
          cache hit rate, pool depth, per-connection state. *)
  | Get_load
      (** Lightweight binary load probe (v2-only): the handful of
          numbers a router's balancer needs — queue depth, cache hit
          rate, request count — without rendering a full [Get_stats]
          snapshot. Answered with {!response.Load}. *)
  | Ping
  | Shutdown  (** Ask the daemon to drain and exit. *)

type error_code =
  | Bad_request  (** Malformed frame, payload, or field values. *)
  | Invalid_graph  (** Graph text failed to parse (including cycles). *)
  | Unknown_algorithm
  | Deadline_exceeded  (** Spent longer than the deadline queued. *)
  | Internal

(** Server-side latency breakdown of one [Schedule] request, in
    seconds. Zero fields where a stage did not run (a cache hit has no
    queue wait or compute). v1 peers always read zeros. *)
type breakdown = {
  queue_wait_s : float;  (** Enqueue to pickup by a worker domain. *)
  cache_s : float;  (** Cache key + lookup. *)
  sched_s : float;  (** The scheduling algorithm proper. *)
  exec_s : float;  (** The whole compute job (scheduling + NSL
                       reference + cache fill). *)
}

val no_breakdown : breakdown
(** All zeros. *)

(** One daemon's point-in-time load, as answered to {!request.Get_load}
    (v2-only). Fixed-size binary — cheap enough for a router to poll
    every health-check period. *)
type load = {
  uptime_s : float;
  pending : int;  (** Jobs waiting in the worker-pool queue. *)
  cache_entries : int;
  cache_hit_rate : float;  (** Hits / lookups since start. *)
  scheduled_total : int;  (** Schedules served since start. *)
  connections : int;  (** Currently open connections. *)
}

type response =
  | Scheduled of {
      schedule : string;  (** {!Flb_platform.Schedule_io} text format. *)
      makespan : float;
      speedup : float;
      nsl : float;  (** Normalized against MCP on the same instance. *)
      cache_hit : bool;
      breakdown : breakdown;
    }
  | Metrics_text of string
  | Stats_text of string  (** [Get_stats] answer, pre-rendered in the
                              requested format (v2-only). *)
  | Load of load  (** [Get_load] answer (v2-only). *)
  | Pong
  | Shutting_down
  | Overloaded
      (** Admission control: the work queue is full; retry later. *)
  | Error of { code : error_code; message : string }

val version : int
(** Current protocol version (2). *)

val min_version : int
(** Oldest version still decoded (1). *)

(** Decoded payload header. *)
type header = {
  header_version : int;  (** The version the peer actually spoke. *)
  trace_id : int64;  (** 0 when absent (v1) or unset. *)
}

val header_v1 : header
(** [{header_version = 1; trace_id = 0L}]. *)

val default_max_frame : int
(** 16 MiB: generous for V ≈ 10^5 task graphs, small enough that a
    hostile length header cannot balloon memory. *)

val error_code_to_string : error_code -> string

(** {1 Payload codecs} *)

val encode_request : ?trace_id:int64 -> request -> string
(** Current-version (v2) encoding; [trace_id] defaults to 0 (absent). *)

val decode_request : string -> (header * request, string) result

val encode_response : ?trace_id:int64 -> response -> string

val decode_response : string -> (header * response, string) result

val encode_request_v1 : request -> string
(** Legacy v1 encoding, kept for compatibility tests and old peers.
    @raise Invalid_argument on [Get_stats] and [Get_load], which v1
    cannot express. *)

val encode_response_v1 : response -> string
(** Legacy v1 encoding; a [Scheduled] drops its breakdown.
    @raise Invalid_argument on [Stats_text] and [Load]. *)

(** {1 Framing} *)

type read_error =
  | Closed  (** EOF at a frame boundary: orderly peer shutdown. *)
  | Truncated  (** EOF in the middle of a frame. *)
  | Oversized of int  (** Declared length exceeds [max_frame]. *)

val read_error_to_string : read_error -> string

val write_frame : out_channel -> string -> unit
(** Length header plus payload; flushes the channel. *)

val read_frame : ?max_frame:int -> in_channel -> (string, read_error) result
(** Blocking read of one complete frame payload. *)
