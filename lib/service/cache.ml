module Metrics = Flb_obs.Metrics

(* Classic Hashtbl + doubly-linked recency list: the list head is the
   most recently used entry, the tail the eviction candidate. All
   mutation happens under [lock]. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option; (* towards the head (more recent) *)
  mutable next : 'a node option; (* towards the tail (less recent) *)
}

type 'a t = {
  capacity : int;
  index : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  lock : Mutex.t;
  hits : Metrics.Counter.t;
  misses : Metrics.Counter.t;
  evictions : Metrics.Counter.t;
  bypasses : Metrics.Counter.t;
}

let create ?metrics ~capacity () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  let reg = match metrics with Some r -> r | None -> Metrics.create () in
  {
    capacity;
    index = Hashtbl.create (min capacity 64);
    head = None;
    tail = None;
    lock = Mutex.create ();
    hits = Metrics.counter reg ~help:"schedule cache hits" "cache_hits_total";
    misses = Metrics.counter reg ~help:"schedule cache misses" "cache_misses_total";
    evictions =
      Metrics.counter reg ~help:"schedule cache LRU evictions"
        "cache_evictions_total";
    bypasses =
      Metrics.counter reg
        ~help:"requests that skipped the cache (non-cacheable work)"
        "cache_bypass_total";
  }

(* The digest of a graph is taken over its canonical serialization, so
   it is a pure function of the graph's structure and weights — two
   fresh constructions of the same graph digest byte-identically,
   whatever path each took through Builder/of_arrays/of_string. The
   sharded router keys its consistent-hash ring on this digest, so this
   stability is what makes routing deterministic across processes. *)
let digest g = Digest.to_hex (Digest.string (Flb_taskgraph.Serial.to_string g))

(* The processor mask is part of the key: a schedule computed for a
   degraded machine (some processors masked dead, e.g. by a
   fault-reactive reschedule) must never be served for the full machine
   or for a different degradation, and vice versa. Dead ids are sorted
   and deduplicated so the key is canonical in the set. *)
let key_of_digest ~dead ~digest ~algo ~procs =
  let mask =
    match List.sort_uniq compare dead with
    | [] -> "all"
    | ds -> "dead:" ^ String.concat "." (List.map string_of_int ds)
  in
  Printf.sprintf "%s/%s/%d/%s" digest (String.lowercase_ascii algo) procs mask

let key ~dead ~graph ~algo ~procs =
  key_of_digest ~dead ~digest:(Digest.to_hex (Digest.string graph)) ~algo ~procs

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- recency list surgery (call with the lock held) --- *)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with
  | Some h -> h.prev <- Some node
  | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
    unlink t node;
    push_front t node

let find t k =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.index k with
      | Some node ->
        touch t node;
        Metrics.Counter.incr t.hits;
        Some node.value
      | None ->
        Metrics.Counter.incr t.misses;
        None)

let add t k v =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.index k with
      | Some node ->
        node.value <- v;
        touch t node
      | None ->
        if Hashtbl.length t.index >= t.capacity then begin
          match t.tail with
          | Some lru ->
            unlink t lru;
            Hashtbl.remove t.index lru.key;
            Metrics.Counter.incr t.evictions
          | None -> assert false (* capacity >= 1 and index non-empty *)
        end;
        let node = { key = k; value = v; prev = None; next = None } in
        push_front t node;
        Hashtbl.add t.index k node)

let length t = with_lock t (fun () -> Hashtbl.length t.index)

let capacity t = t.capacity

let hits t = Metrics.Counter.value t.hits

let misses t = Metrics.Counter.value t.misses

let evictions t = Metrics.Counter.value t.evictions

(* Streaming rounds schedule partial graphs: no two rounds see the same
   key, so a lookup would be a guaranteed miss that only poisons the
   hit rate. They are accounted here instead, away from hits/misses. *)
let note_bypass t = Metrics.Counter.incr t.bypasses

let bypasses t = Metrics.Counter.value t.bypasses

let hit_rate t =
  let h = hits t and m = misses t in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
