(** Thread-safe LRU cache of schedule results.

    Keys combine a digest of the serialized graph with the algorithm
    name and processor count, so a repeated request is answered without
    touching the worker pool at all. Both lookups and insertions renew
    recency; when the cache is full the least-recently-used entry is
    evicted. Every operation is guarded by one mutex, so a cache may be
    shared by all connection threads and worker domains of a server.

    Hit/miss/eviction counts are reported both through accessors and as
    [cache_hits_total] / [cache_misses_total] / [cache_evictions_total]
    counters in the {!Flb_obs.Metrics} registry passed at creation. *)

type 'a t

val create : ?metrics:Flb_obs.Metrics.t -> capacity:int -> unit -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val digest : Flb_taskgraph.Taskgraph.t -> string
(** Stable, process-independent digest of a task graph: the hex digest
    of its canonical {!Flb_taskgraph.Serial} serialization. Two fresh
    constructions of the same graph digest byte-identically, so the
    digest can key a consistent-hash ring across router and daemon
    processes. *)

val key : dead:int list -> graph:string -> algo:string -> procs:int -> string
(** Digest-based cache key; the graph text is hashed, the algorithm
    name is case-folded. [dead] ([[]] for a healthy machine) is the set
    of masked processors the schedule was computed around — part of the
    key, so a degraded-machine reschedule can never hit a stale
    full-machine entry. The list is canonicalized (sorted,
    deduplicated). When the graph text is canonical
    ([Serial.to_string g]), this equals
    [key_of_digest ~digest:(digest g)]. *)

val key_of_digest :
  dead:int list -> digest:string -> algo:string -> procs:int -> string
(** [key] for a caller that already holds the graph digest (e.g. the
    router, which digests once and both routes and keys on it). *)

val find : 'a t -> string -> 'a option
(** [Some v] renews the entry's recency and counts a hit; [None]
    counts a miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or overwrite; evicts the LRU entry when over capacity. *)

val length : 'a t -> int

val capacity : 'a t -> int

val hits : 'a t -> int

val misses : 'a t -> int

val evictions : 'a t -> int

val note_bypass : 'a t -> unit
(** Account one non-cacheable request ([cache_bypass_total]) without
    touching hits or misses. Streaming scheduling rounds use this: a
    partial graph's key is never seen twice, so looking it up would
    record a structural miss and dilute {!hit_rate} for traffic the
    cache was never meant to serve. *)

val bypasses : 'a t -> int

val hit_rate : 'a t -> float
(** [hits / (hits + misses)], or 0 before any lookup. Bypassed requests
    do not participate. *)
