(** Bounded work queue drained by a pool of OCaml 5 domains.

    Jobs are closures; scheduling requests are CPU-bound, so the pool
    runs them on real domains rather than systhreads. The queue is
    capacity-bounded and {!submit} never blocks: when the queue is full
    (or the pool is shutting down) it refuses the job, which is what
    lets the server shed load with an explicit [Overloaded] response
    instead of queueing unboundedly.

    A job that raises is contained: the exception is swallowed and the
    worker keeps draining (jobs are expected to report their own errors
    through their result channel). *)

type t

val create : ?name:string -> domains:int -> queue_capacity:int -> unit -> t
(** Spawns [domains] worker domains immediately.
    @raise Invalid_argument if [domains < 1] or [queue_capacity < 1]. *)

val submit : t -> (unit -> unit) -> bool
(** [true] if the job was queued; [false] if the queue is at capacity
    or the pool is shutting down. Never blocks. *)

val pending : t -> int
(** Jobs queued and not yet picked up by a worker. *)

val domains : t -> int

val queue_capacity : t -> int

val shutdown : t -> unit
(** Graceful drain: refuses new jobs, lets the workers finish
    everything already queued, then joins them. Idempotent. *)
