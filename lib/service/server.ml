open! Flb_taskgraph
open! Flb_platform
module Registry = Flb_experiments.Registry
module Metrics = Flb_obs.Metrics

type config = {
  host : string;
  port : int;
  domains : int;
  queue_capacity : int;
  cache_capacity : int;
  max_frame : int;
  deadline_s : float;
  work_delay_s : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7440;
    domains = 2;
    queue_capacity = 64;
    cache_capacity = 256;
    max_frame = Wire.default_max_frame;
    deadline_s = 30.0;
    work_delay_s = 0.0;
  }

(* A write-once cell: the connection thread blocks on [read] while a
   worker domain [fill]s the response. *)
module Ivar = struct
  type 'a t = { lock : Mutex.t; cond : Condition.t; mutable value : 'a option }

  let create () = { lock = Mutex.create (); cond = Condition.create (); value = None }

  let fill t v =
    Mutex.lock t.lock;
    if t.value = None then begin
      t.value <- Some v;
      Condition.broadcast t.cond
    end;
    Mutex.unlock t.lock

  let read t =
    Mutex.lock t.lock;
    while t.value = None do
      Condition.wait t.cond t.lock
    done;
    let v = Option.get t.value in
    Mutex.unlock t.lock;
    v
end

type cached = { schedule : string; makespan : float; speedup : float; nsl : float }

type state =
  | Running
  | Stopping
  | Stopped

type t = {
  config : config;
  lsock : Unix.file_descr;
  bound_port : int;
  registry : Metrics.t;
  cache : cached Cache.t;
  pool : Pool.t;
  lock : Mutex.t;
  cond : Condition.t;
  mutable state : state;
  mutable accept_thread : Thread.t option;
  requests : Metrics.Counter.t;
  scheduled : Metrics.Counter.t;
  overloaded : Metrics.Counter.t;
  errors : Metrics.Counter.t;
  connections : Metrics.Counter.t;
  queue_depth : Metrics.Gauge.t;
  latency : Metrics.Histogram.t;
}

let metrics t = t.registry

let port t = t.bound_port

let stopping t =
  Mutex.lock t.lock;
  let s = t.state in
  Mutex.unlock t.lock;
  s <> Running

(* --- request handling --- *)

let now () = Unix.gettimeofday ()

let compute srv ~graph_text ~algo ~procs g (a : Registry.t) =
  if srv.config.work_delay_s > 0.0 then Unix.sleepf srv.config.work_delay_s;
  let machine = Machine.clique ~num_procs:procs in
  let s = a.Registry.run g machine in
  let mcp_len = Flb_schedulers.Mcp.schedule_length g machine in
  let result =
    {
      schedule = Schedule_io.to_string s;
      makespan = Schedule.makespan s;
      speedup = Flb_platform.Metrics.speedup s;
      nsl = Flb_platform.Metrics.nsl s ~reference:mcp_len;
    }
  in
  Cache.add srv.cache (Cache.key ~dead:[] ~graph:graph_text ~algo ~procs) result;
  result

let scheduled_response ~cache_hit { schedule; makespan; speedup; nsl } =
  Wire.Scheduled { schedule; makespan; speedup; nsl; cache_hit }

let handle_schedule srv ~graph ~algo ~procs =
  let started = now () in
  let finish resp =
    (match resp with
    | Wire.Scheduled _ -> Metrics.Counter.incr srv.scheduled
    | Wire.Overloaded -> Metrics.Counter.incr srv.overloaded
    | Wire.Error _ -> Metrics.Counter.incr srv.errors
    | _ -> ());
    Metrics.Histogram.observe srv.latency (now () -. started);
    resp
  in
  if procs < 1 then
    finish
      (Wire.Error
         {
           code = Wire.Bad_request;
           message = Printf.sprintf "procs must be >= 1 (got %d)" procs;
         })
  else
    match Registry.find algo with
    | None ->
      finish
        (Wire.Error
           {
             code = Wire.Unknown_algorithm;
             message =
               Printf.sprintf "unknown algorithm %S (try one of: %s)" algo
                 (String.concat ", " (Registry.names Registry.extended_set));
           })
    | Some a -> (
      match Serial.of_string graph with
      | exception Serial.Parse_error { line; message } ->
        finish
          (Wire.Error
             {
               code = Wire.Invalid_graph;
               message = Printf.sprintf "graph line %d: %s" line message;
             })
      | g -> (
        match Cache.find srv.cache (Cache.key ~dead:[] ~graph ~algo ~procs) with
        | Some cached -> finish (scheduled_response ~cache_hit:true cached)
        | None ->
          let ivar = Ivar.create () in
          let enqueued = now () in
          let job () =
            if now () -. enqueued > srv.config.deadline_s then
              Ivar.fill ivar
                (Wire.Error
                   {
                     code = Wire.Deadline_exceeded;
                     message =
                       Printf.sprintf "spent more than %gs queued"
                         srv.config.deadline_s;
                   })
            else
              match compute srv ~graph_text:graph ~algo ~procs g a with
              | result -> Ivar.fill ivar (scheduled_response ~cache_hit:false result)
              | exception e ->
                Ivar.fill ivar
                  (Wire.Error
                     { code = Wire.Internal; message = Printexc.to_string e })
          in
          if not (Pool.submit srv.pool job) then finish Wire.Overloaded
          else begin
            Metrics.Gauge.set srv.queue_depth (float_of_int (Pool.pending srv.pool));
            let resp = Ivar.read ivar in
            Metrics.Gauge.set srv.queue_depth (float_of_int (Pool.pending srv.pool));
            finish resp
          end))

let request_stop_internal srv =
  Mutex.lock srv.lock;
  if srv.state = Running then srv.state <- Stopping;
  Mutex.unlock srv.lock

(* Returns [false] when the connection should stop being served. *)
let handle_request srv respond = function
  | Wire.Schedule { graph; algo; procs } ->
    respond (handle_schedule srv ~graph ~algo ~procs);
    true
  | Wire.Get_metrics ->
    respond (Wire.Metrics_text (Metrics.to_prometheus srv.registry));
    true
  | Wire.Ping ->
    respond Wire.Pong;
    true
  | Wire.Shutdown ->
    respond Wire.Shutting_down;
    request_stop_internal srv;
    false

let handle_conn srv fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let respond resp = Wire.write_frame oc (Wire.encode_response resp) in
  let bad_request message =
    Metrics.Counter.incr srv.errors;
    try respond (Wire.Error { code = Wire.Bad_request; message }) with _ -> ()
  in
  let rec loop () =
    match Wire.read_frame ~max_frame:srv.config.max_frame ic with
    | Error Wire.Closed -> ()
    | Error Wire.Truncated -> bad_request "truncated frame"
    | Error (Wire.Oversized n) ->
      (* The stream cannot be resynchronized after refusing to read a
         frame body, so answer and drop the connection. *)
      bad_request
        (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
           srv.config.max_frame)
    | Ok payload -> (
      Metrics.Counter.incr srv.requests;
      match Wire.decode_request payload with
      | Error msg ->
        (* Frame boundaries are intact: report and keep serving. *)
        Metrics.Counter.incr srv.errors;
        (match respond (Wire.Error { code = Wire.Bad_request; message = msg }) with
        | () -> loop ()
        | exception _ -> ())
      | Ok req -> (
        match handle_request srv respond req with
        | true -> loop ()
        | false -> ()
        | exception _ -> ()))
  in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      close_in_noerr ic)
    loop

(* --- accept loop and lifecycle --- *)

let accept_loop srv () =
  let rec loop () =
    if stopping srv then ()
    else begin
      (match Unix.select [ srv.lsock ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept srv.lsock with
        | fd, _ ->
          Metrics.Counter.incr srv.connections;
          ignore (Thread.create (handle_conn srv) fd)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  (try loop () with _ -> ());
  Pool.shutdown srv.pool;
  (try Unix.close srv.lsock with _ -> ());
  Mutex.lock srv.lock;
  srv.state <- Stopped;
  Condition.broadcast srv.cond;
  Mutex.unlock srv.lock

let start ?metrics config =
  let registry = match metrics with Some r -> r | None -> Metrics.create () in
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let bound_port =
    try
      Unix.setsockopt lsock Unix.SO_REUSEADDR true;
      Unix.bind lsock
        (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
      Unix.listen lsock 64;
      match Unix.getsockname lsock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> config.port
    with e ->
      (try Unix.close lsock with _ -> ());
      raise e
  in
  let srv =
    {
      config;
      lsock;
      bound_port;
      registry;
      cache = Cache.create ~metrics:registry ~capacity:config.cache_capacity ();
      pool =
        Pool.create ~name:"flb-service" ~domains:config.domains
          ~queue_capacity:config.queue_capacity ();
      lock = Mutex.create ();
      cond = Condition.create ();
      state = Running;
      accept_thread = None;
      requests =
        Metrics.counter registry ~help:"requests received" "service_requests_total";
      scheduled =
        Metrics.counter registry ~help:"schedules served"
          "service_scheduled_total";
      overloaded =
        Metrics.counter registry ~help:"requests shed by admission control"
          "service_overloaded_total";
      errors =
        Metrics.counter registry ~help:"structured error responses"
          "service_errors_total";
      connections =
        Metrics.counter registry ~help:"connections accepted"
          "service_connections_total";
      queue_depth =
        Metrics.gauge registry ~help:"jobs waiting in the pool queue"
          "service_queue_depth";
      latency =
        Metrics.histogram registry ~help:"schedule request latency (seconds)"
          "service_request_seconds";
    }
  in
  srv.accept_thread <- Some (Thread.create (accept_loop srv) ());
  srv

let request_stop = request_stop_internal

let wait t =
  Mutex.lock t.lock;
  while t.state <> Stopped do
    Condition.wait t.cond t.lock
  done;
  Mutex.unlock t.lock;
  match t.accept_thread with Some th -> (try Thread.join th with _ -> ()) | None -> ()

let stop t =
  request_stop t;
  wait t
