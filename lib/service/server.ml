open! Flb_taskgraph
open! Flb_platform
module Registry = Flb_experiments.Registry
module Metrics = Flb_obs.Metrics
module Trace = Flb_obs.Trace
module Ctx = Flb_obs.Trace_context
module Stream_loop = Flb_stream.Scheduler_loop

type config = {
  host : string;
  port : int;
  domains : int;
  queue_capacity : int;
  cache_capacity : int;
  max_frame : int;
  deadline_s : float;
  work_delay_s : float;
  tracer : Trace.t;
  stream : Stream_loop.config;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7440;
    domains = 2;
    queue_capacity = 64;
    cache_capacity = 256;
    max_frame = Wire.default_max_frame;
    deadline_s = 30.0;
    work_delay_s = 0.0;
    tracer = Trace.null;
    stream = Stream_loop.default_config;
  }

(* A write-once cell: the connection thread blocks on [read] while a
   worker domain [fill]s the response. *)
module Ivar = struct
  type 'a t = { lock : Mutex.t; cond : Condition.t; mutable value : 'a option }

  let create () = { lock = Mutex.create (); cond = Condition.create (); value = None }

  let fill t v =
    Mutex.lock t.lock;
    if t.value = None then begin
      t.value <- Some v;
      Condition.broadcast t.cond
    end;
    Mutex.unlock t.lock

  let read t =
    Mutex.lock t.lock;
    while t.value = None do
      Condition.wait t.cond t.lock
    done;
    let v = Option.get t.value in
    Mutex.unlock t.lock;
    v
end

type cached = { schedule : string; makespan : float; speedup : float; nsl : float }

type state =
  | Running
  | Draining (* finish in-flight work and streams, refuse new conns, then stop *)
  | Stopping
  | Stopped

(* One row of the live connection table. [conn_requests] and [last_s]
   are written only by the owning connection thread; a stats snapshot
   reading them concurrently may see a value one request stale, which is
   fine for introspection. *)
type conn_info = {
  conn_id : int;
  peer : string;
  connected_at : float;
  mutable conn_requests : int;
  mutable last_s : float; (* wall time of the last request, 0 if none *)
}

type t = {
  config : config;
  lsock : Unix.file_descr;
  bound_port : int;
  started_at : float;
  registry : Metrics.t;
  cache : cached Cache.t;
  pool : Pool.t;
  streams : Stream_loop.t;
  lock : Mutex.t;
  cond : Condition.t;
  mutable state : state;
  (* Schedule requests currently being handled (queued or computing),
     guarded by [lock]; a drain completes only once this reaches zero. *)
  mutable inflight : int;
  (* Consecutive quiescent accept-loop ticks while draining; only the
     accept thread touches it. Two ticks (~400 ms) of quiet are required
     before a drain stops the daemon, closing the window where a frame
     has been read but not yet counted in-flight. *)
  mutable drain_idle_ticks : int;
  mutable accept_thread : Thread.t option;
  (* The tracer's buffer has one logical writer; connection threads and
     worker domains all emit request spans, so every tracer touch goes
     through this lock. Contention only exists when tracing is on. *)
  trace_lock : Mutex.t;
  conns : (int, conn_info) Hashtbl.t;
  conns_lock : Mutex.t;
  mutable next_conn : int;
  requests : Metrics.Counter.t;
  scheduled : Metrics.Counter.t;
  overloaded : Metrics.Counter.t;
  errors : Metrics.Counter.t;
  connections : Metrics.Counter.t;
  queue_depth : Metrics.Gauge.t;
  latency : Metrics.Histogram.t;
  queue_wait_seconds : Metrics.Histogram.t;
  cache_seconds : Metrics.Histogram.t;
  sched_seconds : Metrics.Histogram.t;
  exec_seconds : Metrics.Histogram.t;
  uptime_g : Metrics.Gauge.t;
  cache_hit_rate_g : Metrics.Gauge.t;
  cache_entries_g : Metrics.Gauge.t;
  pool_pending_g : Metrics.Gauge.t;
  conns_active_g : Metrics.Gauge.t;
}

let metrics t = t.registry

let port t = t.bound_port

let stopping t =
  Mutex.lock t.lock;
  let s = t.state in
  Mutex.unlock t.lock;
  match s with Running | Draining -> false | Stopping | Stopped -> true

let draining t =
  Mutex.lock t.lock;
  let s = t.state in
  Mutex.unlock t.lock;
  s = Draining

(* --- request handling --- *)

let now () = Unix.gettimeofday ()

let span srv ctx name ~ts ~dur args =
  if Trace.enabled srv.config.tracer then begin
    Mutex.lock srv.trace_lock;
    Ctx.add_span ~args ctx name ~ts ~dur;
    Mutex.unlock srv.trace_lock
  end

let compute srv ~ctx ~graph_text ~algo ~procs g (a : Registry.t) =
  if srv.config.work_delay_s > 0.0 then Unix.sleepf srv.config.work_delay_s;
  let machine = Machine.clique ~num_procs:procs in
  let tracer = srv.config.tracer in
  let ts0 = Trace.now tracer in
  let t0 = now () in
  let s =
    if Trace.enabled tracer then begin
      (* Traced runs are serialized: the probe emits phase spans
         (priority computation, processor selection, ...) into the
         shared tracer, time-aligned with this request's track. *)
      Mutex.lock srv.trace_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock srv.trace_lock)
        (fun () -> fst (Registry.run_with_report ~tracer a g machine))
    end
    else a.Registry.run g machine
  in
  let sched_s = now () -. t0 in
  Metrics.Histogram.observe srv.sched_seconds sched_s;
  span srv ctx "schedule" ~ts:ts0 ~dur:sched_s [ ("procs", float_of_int procs) ];
  let mcp_len = Flb_schedulers.Mcp.schedule_length g machine in
  let result =
    {
      schedule = Schedule_io.to_string s;
      makespan = Schedule.makespan s;
      speedup = Flb_platform.Metrics.speedup s;
      nsl = Flb_platform.Metrics.nsl s ~reference:mcp_len;
    }
  in
  Cache.add srv.cache (Cache.key ~dead:[] ~graph:graph_text ~algo ~procs) result;
  (result, sched_s)

let scheduled_response ~cache_hit ~breakdown { schedule; makespan; speedup; nsl } =
  Wire.Scheduled { schedule; makespan; speedup; nsl; cache_hit; breakdown }

let handle_schedule srv ~ctx ~graph ~algo ~procs =
  let started = now () in
  let finish resp =
    (match resp with
    | Wire.Scheduled _ -> Metrics.Counter.incr srv.scheduled
    | Wire.Overloaded -> Metrics.Counter.incr srv.overloaded
    | Wire.Error _ -> Metrics.Counter.incr srv.errors
    | _ -> ());
    Metrics.Histogram.observe srv.latency (now () -. started);
    resp
  in
  if procs < 1 then
    finish
      (Wire.Error
         {
           code = Wire.Bad_request;
           message = Printf.sprintf "procs must be >= 1 (got %d)" procs;
         })
  else
    match Registry.find algo with
    | None ->
      finish
        (Wire.Error
           {
             code = Wire.Unknown_algorithm;
             message =
               Printf.sprintf "unknown algorithm %S (try one of: %s)" algo
                 (String.concat ", " (Registry.names Registry.extended_set));
           })
    | Some a -> (
      match Serial.of_string graph with
      | exception Serial.Parse_error { line; message } ->
        finish
          (Wire.Error
             {
               code = Wire.Invalid_graph;
               message = Printf.sprintf "graph line %d: %s" line message;
             })
      | g ->
        let ts_cache = Trace.now srv.config.tracer in
        let t_cache = now () in
        let key = Cache.key ~dead:[] ~graph ~algo ~procs in
        let hit = Cache.find srv.cache key in
        let cache_s = now () -. t_cache in
        Metrics.Histogram.observe srv.cache_seconds cache_s;
        span srv ctx "cache" ~ts:ts_cache ~dur:cache_s
          [ ("hit", if hit = None then 0.0 else 1.0) ];
        (match hit with
        | Some cached ->
          let breakdown = { Wire.no_breakdown with cache_s } in
          finish (scheduled_response ~cache_hit:true ~breakdown cached)
        | None ->
          let ivar = Ivar.create () in
          let enqueued = now () in
          let ts_enqueued = Trace.now srv.config.tracer in
          let job () =
            let queue_wait_s = now () -. enqueued in
            Metrics.Histogram.observe srv.queue_wait_seconds queue_wait_s;
            span srv ctx "queue-wait" ~ts:ts_enqueued ~dur:queue_wait_s [];
            if queue_wait_s > srv.config.deadline_s then
              Ivar.fill ivar
                (Wire.Error
                   {
                     code = Wire.Deadline_exceeded;
                     message =
                       Printf.sprintf "spent more than %gs queued"
                         srv.config.deadline_s;
                   })
            else begin
              let ts_exec = Trace.now srv.config.tracer in
              let t_exec = now () in
              match compute srv ~ctx ~graph_text:graph ~algo ~procs g a with
              | result, sched_s ->
                let exec_s = now () -. t_exec in
                Metrics.Histogram.observe srv.exec_seconds exec_s;
                span srv ctx "execute" ~ts:ts_exec ~dur:exec_s [];
                let breakdown =
                  { Wire.queue_wait_s; cache_s; sched_s; exec_s }
                in
                Ivar.fill ivar
                  (scheduled_response ~cache_hit:false ~breakdown result)
              | exception e ->
                Ivar.fill ivar
                  (Wire.Error
                     { code = Wire.Internal; message = Printexc.to_string e })
            end
          in
          if not (Pool.submit srv.pool job) then finish Wire.Overloaded
          else begin
            Metrics.Gauge.set srv.queue_depth (float_of_int (Pool.pending srv.pool));
            let resp = Ivar.read ivar in
            Metrics.Gauge.set srv.queue_depth (float_of_int (Pool.pending srv.pool));
            finish resp
          end))

let request_stop_internal srv =
  Mutex.lock srv.lock;
  (match srv.state with
  | Running | Draining -> srv.state <- Stopping
  | Stopping | Stopped -> ());
  Mutex.unlock srv.lock

let begin_drain srv =
  Mutex.lock srv.lock;
  if srv.state = Running then srv.state <- Draining;
  Mutex.unlock srv.lock

let incr_inflight srv =
  Mutex.lock srv.lock;
  srv.inflight <- srv.inflight + 1;
  Mutex.unlock srv.lock

let decr_inflight srv =
  Mutex.lock srv.lock;
  srv.inflight <- srv.inflight - 1;
  Mutex.unlock srv.lock

(* A drain is complete when no schedule is in flight, the pool queue is
   empty and every streaming session has closed or been evicted. *)
let drain_quiescent srv =
  Mutex.lock srv.lock;
  let is_draining = srv.state = Draining in
  let inflight = srv.inflight in
  Mutex.unlock srv.lock;
  is_draining && inflight = 0
  && Pool.pending srv.pool = 0
  && Stream_loop.active_streams srv.streams = 0

let maybe_finish_drain srv =
  if drain_quiescent srv then begin
    srv.drain_idle_ticks <- srv.drain_idle_ticks + 1;
    if srv.drain_idle_ticks >= 2 then request_stop_internal srv
  end
  else srv.drain_idle_ticks <- 0

(* --- live introspection --- *)

let active_connections srv =
  Mutex.lock srv.conns_lock;
  let rows = Hashtbl.fold (fun _ info acc -> info :: acc) srv.conns [] in
  Mutex.unlock srv.conns_lock;
  List.sort (fun a b -> compare a.conn_id b.conn_id) rows

let state_name srv =
  Mutex.lock srv.lock;
  let s = srv.state in
  Mutex.unlock srv.lock;
  match s with
  | Running -> "running"
  | Draining -> "draining"
  | Stopping -> "stopping"
  | Stopped -> "stopped"

(* Point-in-time values live in gauges so the Prometheus exposition and
   the JSON snapshot agree; refresh them right before rendering. *)
let refresh_snapshot_gauges srv =
  Metrics.Gauge.set srv.uptime_g (now () -. srv.started_at);
  Metrics.Gauge.set srv.cache_hit_rate_g (Cache.hit_rate srv.cache);
  Metrics.Gauge.set srv.cache_entries_g (float_of_int (Cache.length srv.cache));
  Metrics.Gauge.set srv.pool_pending_g (float_of_int (Pool.pending srv.pool));
  Metrics.Gauge.set srv.conns_active_g
    (float_of_int (List.length (active_connections srv)))

let stats_json srv =
  let b = Buffer.create 1024 in
  let t = now () in
  Printf.bprintf b "{\"state\":%S,\"uptime_s\":%g" (state_name srv)
    (t -. srv.started_at);
  Printf.bprintf b
    ",\"cache\":{\"entries\":%d,\"capacity\":%d,\"hits\":%d,\"misses\":%d,\"evictions\":%d,\"hit_rate\":%g}"
    (Cache.length srv.cache) (Cache.capacity srv.cache) (Cache.hits srv.cache)
    (Cache.misses srv.cache) (Cache.evictions srv.cache)
    (Cache.hit_rate srv.cache);
  Printf.bprintf b
    ",\"pool\":{\"domains\":%d,\"pending\":%d,\"queue_capacity\":%d}"
    (Pool.domains srv.pool) (Pool.pending srv.pool)
    (Pool.queue_capacity srv.pool);
  Printf.bprintf b ",\"streams\":{\"active\":%d,\"rounds\":%d,\"bypasses\":%d}"
    (Stream_loop.active_streams srv.streams)
    (Stream_loop.rounds srv.streams)
    (Cache.bypasses srv.cache);
  Buffer.add_string b ",\"connections\":[";
  List.iteri
    (fun i info ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"id\":%d,\"peer\":%S,\"age_s\":%g,\"requests\":%d,\"idle_s\":%g}"
        info.conn_id info.peer
        (t -. info.connected_at)
        info.conn_requests
        (if info.last_s = 0.0 then t -. info.connected_at else t -. info.last_s))
    (active_connections srv);
  Buffer.add_string b "],\"metrics\":";
  Buffer.add_string b (Metrics.to_json srv.registry);
  Buffer.add_char b '}';
  Buffer.contents b

let stats_text srv fmt =
  refresh_snapshot_gauges srv;
  match fmt with
  | Wire.Stats_prometheus -> Metrics.to_prometheus srv.registry
  | Wire.Stats_json -> stats_json srv

(* Returns [false] when the connection should stop being served. *)
(* --- streaming sessions --- *)

let stream_error_response = function
  | Stream_loop.Unknown_stream _ as e ->
    Wire.Error
      { code = Wire.Unknown_stream; message = Stream_loop.error_to_string e }
  | Stream_loop.Too_many_streams _ -> Wire.Overloaded
  | Stream_loop.Rejected _ as e ->
    Wire.Error
      { code = Wire.Edge_rejected; message = Stream_loop.error_to_string e }
  | Stream_loop.Failed _ as e ->
    Wire.Error
      { code = Wire.Bad_request; message = Stream_loop.error_to_string e }

let placed_response ~stream (p : Stream_loop.progress) =
  Wire.Placed
    {
      stream;
      round = p.Stream_loop.round;
      final = p.Stream_loop.final;
      makespan = p.Stream_loop.makespan;
      placements =
        Array.map
          (fun (pl : Stream_loop.placement) ->
            (pl.Stream_loop.task, pl.Stream_loop.proc, pl.Stream_loop.start))
          p.Stream_loop.placements;
    }

let handle_stream srv ~stream result =
  (match result with
  | Ok _ -> ()
  | Error (Stream_loop.Too_many_streams _) -> Metrics.Counter.incr srv.overloaded
  | Error _ -> Metrics.Counter.incr srv.errors);
  match result with
  | Ok p -> placed_response ~stream p
  | Error e -> stream_error_response e

let handle_request srv respond header = function
  | Wire.Schedule { graph; algo; procs } ->
    (* A v1 peer (or an unset v2 id) gets a server-minted id, so the
       request still forms one correlated track in the trace and the
       peer can fish the id out of the response header. *)
    let ctx = Ctx.create ~id:header.Wire.trace_id srv.config.tracer in
    incr_inflight srv;
    let resp =
      Fun.protect
        ~finally:(fun () -> decr_inflight srv)
        (fun () -> handle_schedule srv ~ctx ~graph ~algo ~procs)
    in
    respond ~trace_id:(Ctx.id ctx) resp;
    true
  | Wire.Get_metrics ->
    respond ~trace_id:header.Wire.trace_id
      (Wire.Metrics_text (Metrics.to_prometheus srv.registry));
    true
  | Wire.Get_stats fmt ->
    respond ~trace_id:header.Wire.trace_id (Wire.Stats_text (stats_text srv fmt));
    true
  | Wire.Get_load ->
    (* Fixed-size binary answer, no text rendering: cheap enough for a
       router to poll every health-check period. *)
    respond ~trace_id:header.Wire.trace_id
      (Wire.Load
         {
           Wire.uptime_s = now () -. srv.started_at;
           pending = Pool.pending srv.pool;
           cache_entries = Cache.length srv.cache;
           cache_hit_rate = Cache.hit_rate srv.cache;
           scheduled_total = Metrics.Counter.value srv.scheduled;
           connections =
             (Mutex.lock srv.conns_lock;
              let n = Hashtbl.length srv.conns in
              Mutex.unlock srv.conns_lock;
              n);
         });
    true
  | Wire.Open_stream { algo; procs; batch_tasks = _ } ->
    (* [batch_tasks] is accepted for forward compatibility; the round
       threshold is server-wide config for now. A draining daemon takes
       no new streams — existing ones finish, new ones go elsewhere. *)
    let resp =
      if draining srv then begin
        Metrics.Counter.incr srv.overloaded;
        Wire.Overloaded
      end
      else
        match Stream_loop.open_stream srv.streams ~algo ~procs with
      | Ok id -> Wire.Stream_opened { stream = id }
      | Error (Stream_loop.Too_many_streams _) ->
        Metrics.Counter.incr srv.overloaded;
        Wire.Overloaded
      | Error e ->
        Metrics.Counter.incr srv.errors;
        stream_error_response e
    in
    respond ~trace_id:header.Wire.trace_id resp;
    true
  | Wire.Add_tasks { stream; comps } ->
    respond ~trace_id:header.Wire.trace_id
      (handle_stream srv ~stream
         (Result.map
            (fun (_first, p) -> p)
            (Stream_loop.add_tasks srv.streams ~stream ~comps)));
    true
  | Wire.Add_edges { stream; edges } ->
    respond ~trace_id:header.Wire.trace_id
      (handle_stream srv ~stream
         (Stream_loop.add_edges srv.streams ~stream ~edges));
    true
  | Wire.Seal { stream } ->
    respond ~trace_id:header.Wire.trace_id
      (handle_stream srv ~stream (Stream_loop.seal srv.streams ~stream));
    true
  | Wire.Poll_stream { stream } ->
    respond ~trace_id:header.Wire.trace_id
      (handle_stream srv ~stream (Stream_loop.poll srv.streams ~stream));
    true
  | Wire.Ping ->
    respond ~trace_id:header.Wire.trace_id Wire.Pong;
    true
  | Wire.Shutdown ->
    respond ~trace_id:header.Wire.trace_id Wire.Shutting_down;
    request_stop_internal srv;
    false
  | Wire.Drain { backend } ->
    (* Addressed to this daemon: finish in-flight schedules and open
       streams, refuse new connections, then exit. The accept loop
       notices quiescence and stops the daemon; the connection stays up
       so the drainer can poll until the process goes away. *)
    begin_drain srv;
    respond ~trace_id:header.Wire.trace_id (Wire.Drain_ack { backend });
    true
  | Wire.Gossip _ ->
    Metrics.Counter.incr srv.errors;
    respond ~trace_id:header.Wire.trace_id
      (Wire.Error
         {
           code = Wire.Bad_request;
           message = "gossip is only spoken between routers";
         });
    true

let peer_name fd =
  match Unix.getpeername fd with
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX path -> path
  | exception _ -> "unknown"

let register_conn srv fd =
  Mutex.lock srv.conns_lock;
  let id = srv.next_conn in
  srv.next_conn <- id + 1;
  let info =
    {
      conn_id = id;
      peer = peer_name fd;
      connected_at = now ();
      conn_requests = 0;
      last_s = 0.0;
    }
  in
  Hashtbl.replace srv.conns id info;
  Mutex.unlock srv.conns_lock;
  info

let unregister_conn srv info =
  Mutex.lock srv.conns_lock;
  Hashtbl.remove srv.conns info.conn_id;
  Mutex.unlock srv.conns_lock

let handle_conn srv fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let info = register_conn srv fd in
  let respond ~trace_id resp =
    Wire.write_frame oc (Wire.encode_response ~trace_id resp)
  in
  let bad_request message =
    Metrics.Counter.incr srv.errors;
    try respond ~trace_id:0L (Wire.Error { code = Wire.Bad_request; message })
    with _ -> ()
  in
  let rec loop () =
    match Wire.read_frame ~max_frame:srv.config.max_frame ic with
    | Error Wire.Closed -> ()
    | Error Wire.Truncated -> bad_request "truncated frame"
    | Error (Wire.Oversized n) ->
      (* The stream cannot be resynchronized after refusing to read a
         frame body, so answer and drop the connection. *)
      bad_request
        (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
           srv.config.max_frame)
    | Ok payload -> (
      Metrics.Counter.incr srv.requests;
      info.conn_requests <- info.conn_requests + 1;
      info.last_s <- now ();
      match Wire.decode_request payload with
      | Error msg ->
        (* Frame boundaries are intact: report and keep serving. *)
        Metrics.Counter.incr srv.errors;
        (match respond ~trace_id:0L (Wire.Error { code = Wire.Bad_request; message = msg }) with
        | () -> loop ()
        | exception _ -> ())
      | Ok (header, req) -> (
        match handle_request srv respond header req with
        | true -> loop ()
        | false -> ()
        | exception _ -> ()))
  in
  Fun.protect
    ~finally:(fun () ->
      unregister_conn srv info;
      close_out_noerr oc;
      close_in_noerr ic)
    loop

(* --- accept loop and lifecycle --- *)

let accept_loop srv () =
  let rec loop () =
    if stopping srv then ()
    else begin
      (* The accept loop doubles as the streaming round timer: every
         select wakeup (at most 200 ms apart) runs due periodic rounds
         and evicts idle streams, so pending streamed work is placed
         even when no client request arrives to trigger it. *)
      (try Stream_loop.maybe_tick srv.streams ~now:(now ()) with _ -> ());
      maybe_finish_drain srv;
      (match Unix.select [ srv.lsock ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept srv.lsock with
        | fd, _ ->
          if draining srv then
            (* New connections are turned away mid-drain; a router sees
               the refusal as a failure and fails over. *)
            (try Unix.close fd with _ -> ())
          else begin
            Metrics.Counter.incr srv.connections;
            ignore (Thread.create (handle_conn srv) fd)
          end
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  (try loop () with _ -> ());
  Pool.shutdown srv.pool;
  (try Unix.close srv.lsock with _ -> ());
  Mutex.lock srv.lock;
  srv.state <- Stopped;
  Condition.broadcast srv.cond;
  Mutex.unlock srv.lock

let start ?metrics config =
  let registry = match metrics with Some r -> r | None -> Metrics.create () in
  let cache = Cache.create ~metrics:registry ~capacity:config.cache_capacity () in
  let streams =
    Stream_loop.create ~metrics:registry ~tracer:config.tracer
      ~on_round:(fun ~streams:_ ~frontier:_ ->
        (* Partial graphs are never cache hits; account the round as a
           bypass so streaming traffic leaves the hit rate alone. *)
        Cache.note_bypass cache)
      config.stream
  in
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let bound_port =
    try
      Unix.setsockopt lsock Unix.SO_REUSEADDR true;
      Unix.bind lsock
        (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
      Unix.listen lsock 64;
      match Unix.getsockname lsock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> config.port
    with e ->
      (try Unix.close lsock with _ -> ());
      raise e
  in
  let srv =
    {
      config;
      lsock;
      bound_port;
      started_at = now ();
      registry;
      cache;
      streams;
      pool =
        Pool.create ~name:"flb-service" ~domains:config.domains
          ~queue_capacity:config.queue_capacity ();
      lock = Mutex.create ();
      cond = Condition.create ();
      state = Running;
      inflight = 0;
      drain_idle_ticks = 0;
      accept_thread = None;
      trace_lock = Mutex.create ();
      conns = Hashtbl.create 16;
      conns_lock = Mutex.create ();
      next_conn = 1;
      requests =
        Metrics.counter registry ~help:"requests received" "service_requests_total";
      scheduled =
        Metrics.counter registry ~help:"schedules served"
          "service_scheduled_total";
      overloaded =
        Metrics.counter registry ~help:"requests shed by admission control"
          "service_overloaded_total";
      errors =
        Metrics.counter registry ~help:"structured error responses"
          "service_errors_total";
      connections =
        Metrics.counter registry ~help:"connections accepted"
          "service_connections_total";
      queue_depth =
        Metrics.gauge registry ~help:"jobs waiting in the pool queue"
          "service_queue_depth";
      latency =
        Metrics.histogram registry ~help:"schedule request latency (seconds)"
          "service_request_seconds";
      queue_wait_seconds =
        Metrics.histogram registry
          ~help:"time a schedule job spent queued before a worker picked it up"
          "service_queue_wait_seconds";
      cache_seconds =
        Metrics.histogram registry
          ~help:"cache key + lookup time per schedule request"
          "service_cache_seconds";
      sched_seconds =
        Metrics.histogram registry
          ~help:"scheduling algorithm time per cache miss"
          "service_sched_seconds";
      exec_seconds =
        Metrics.histogram registry
          ~help:"whole compute job time per cache miss"
          "service_exec_seconds";
      uptime_g =
        Metrics.gauge registry ~help:"seconds since the daemon started"
          "service_uptime_seconds";
      cache_hit_rate_g =
        Metrics.gauge registry ~help:"cache hits / lookups since start"
          "service_cache_hit_rate";
      cache_entries_g =
        Metrics.gauge registry ~help:"entries currently cached"
          "service_cache_entries";
      pool_pending_g =
        Metrics.gauge registry ~help:"jobs pending in the worker pool"
          "service_pool_pending";
      conns_active_g =
        Metrics.gauge registry ~help:"currently open connections"
          "service_connections_active";
    }
  in
  srv.accept_thread <- Some (Thread.create (accept_loop srv) ());
  srv

let request_stop = request_stop_internal

let wait t =
  Mutex.lock t.lock;
  while t.state <> Stopped do
    Condition.wait t.cond t.lock
  done;
  Mutex.unlock t.lock;
  match t.accept_thread with Some th -> (try Thread.join th with _ -> ()) | None -> ()

let stop t =
  request_stop t;
  wait t
