(* Anti-entropy state a router replica shares with its peers: every
   backend's (status, epoch) pair plus the split-shard set under its own
   epoch. Epochs are per-key logical clocks bumped only on locally
   observed changes; merges are last-writer-wins by epoch with a
   deterministic tie-break, so any two replicas that have seen the same
   digests hold byte-identical state, and epochs never move backwards. *)

module Wire = Flb_service.Wire

type t = {
  lock : Mutex.t;
  entries : (string, Wire.peer_status * int) Hashtbl.t;
  mutable splits : string list; (* sorted *)
  mutable splits_epoch : int;
  (* The last split set this router computed locally. Only a change in
     the LOCAL computation bumps the epoch — re-announcing an unchanged
     local view must not outvote a fresher peer decision, or two idle
     routers would forever overwrite a busy one's splits. *)
  mutable last_local_splits : string list;
  mutable merges : int; (* entries changed by remote digests *)
  mutable exchanges : int; (* digests merged (one per exchange side) *)
}

let create ~backends =
  let entries = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace entries b (Wire.Peer_up, 0)) backends;
  {
    lock = Mutex.create ();
    entries;
    splits = [];
    splits_epoch = 0;
    last_local_splits = [];
    merges = 0;
    exchanges = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let severity = function
  | Wire.Peer_up -> 0
  | Wire.Peer_draining -> 1
  | Wire.Peer_down -> 2

let digest t =
  with_lock t (fun () ->
      let entries =
        Hashtbl.fold
          (fun backend (status, epoch) acc ->
            { Wire.backend; status; epoch } :: acc)
          t.entries []
      in
      {
        Wire.entries =
          List.sort
            (fun a b -> String.compare a.Wire.backend b.Wire.backend)
            entries;
        splits = t.splits;
        splits_epoch = t.splits_epoch;
      })

let status_of t backend =
  with_lock t (fun () -> Option.map fst (Hashtbl.find_opt t.entries backend))

let epoch_of t backend =
  with_lock t (fun () -> Option.map snd (Hashtbl.find_opt t.entries backend))

let splits t = with_lock t (fun () -> t.splits)

let merges t = with_lock t (fun () -> t.merges)

let exchanges t = with_lock t (fun () -> t.exchanges)

(* A local observation: record [status] if it differs from the current
   belief, bumping the backend's epoch past everything seen so far, so
   first-hand knowledge outvotes any stale gossip. Returns [true] when
   the belief changed. *)
let observe t ~backend status =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.entries backend with
      | Some (cur, _) when cur = status -> false
      | Some (_, epoch) ->
        Hashtbl.replace t.entries backend (status, epoch + 1);
        true
      | None ->
        Hashtbl.replace t.entries backend (status, 1);
        true)

let observe_splits t local =
  let local = List.sort_uniq String.compare local in
  with_lock t (fun () ->
      if local <> t.last_local_splits then begin
        t.last_local_splits <- local;
        t.splits_epoch <- t.splits_epoch + 1;
        t.splits <- local
      end)

(* Last-writer-wins merge of one incoming digest. Higher epoch wins; on
   an epoch tie the worse status (resp. the lexicographically greater
   split set) wins, which is symmetric, so both sides of an exchange
   settle on the same value. Returns the backends whose believed status
   changed, for the router to apply to its live [Backend.t]s. *)
let merge t (d : Wire.gossip_digest) =
  with_lock t (fun () ->
      t.exchanges <- t.exchanges + 1;
      let changed = ref [] in
      List.iter
        (fun { Wire.backend; status; epoch } ->
          let take cur_status =
            Hashtbl.replace t.entries backend (status, epoch);
            t.merges <- t.merges + 1;
            if cur_status <> Some status then
              changed := (backend, status) :: !changed
          in
          match Hashtbl.find_opt t.entries backend with
          | None -> take None
          | Some (cur, cur_epoch) ->
            if
              epoch > cur_epoch
              || (epoch = cur_epoch && severity status > severity cur)
            then take (Some cur))
        d.Wire.entries;
      if
        d.Wire.splits_epoch > t.splits_epoch
        || (d.Wire.splits_epoch = t.splits_epoch
            && compare d.Wire.splits t.splits > 0)
      then begin
        t.splits <- d.Wire.splits;
        t.splits_epoch <- d.Wire.splits_epoch;
        t.merges <- t.merges + 1
      end;
      List.rev !changed)

let to_json t =
  with_lock t (fun () ->
      let b = Buffer.create 256 in
      Buffer.add_string b "{\"backends\":{";
      let rows =
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.entries [])
      in
      List.iteri
        (fun i (backend, (status, epoch)) ->
          if i > 0 then Buffer.add_char b ',';
          Printf.bprintf b "%S:{\"status\":%S,\"epoch\":%d}" backend
            (match status with
            | Wire.Peer_up -> "up"
            | Wire.Peer_draining -> "draining"
            | Wire.Peer_down -> "down")
            epoch)
        rows;
      Printf.bprintf b "},\"splits\":[%s],\"splits_epoch\":%d"
        (String.concat "," (List.map (Printf.sprintf "%S") t.splits))
        t.splits_epoch;
      Printf.bprintf b ",\"exchanges\":%d,\"merges\":%d}" t.exchanges t.merges;
      Buffer.contents b)
