module Wire = Flb_service.Wire
module Cache = Flb_service.Cache
module Serial = Flb_taskgraph.Serial
module Metrics = Flb_obs.Metrics

type policy = Hash | Round_robin

type config = {
  host : string;
  port : int;
  backends : (string * int) list;
  replication : int;
  split_factor : int;
  vnodes : int;
  policy : policy;
  connect_timeout_s : float;
  call_timeout_s : float;
  health_period_s : float;
  max_frame : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7450;
    backends = [];
    replication = 2;
    split_factor = 2;
    vnodes = 64;
    policy = Hash;
    connect_timeout_s = 1.0;
    call_timeout_s = 10.0;
    health_period_s = 2.0;
    max_frame = Wire.default_max_frame;
  }

type state = Running | Stopping | Stopped

type t = {
  config : config;
  lsock : Unix.file_descr;
  bound_port : int;
  started_at : float;
  registry : Metrics.t;
  backends : Backend.t array;
  balancer : Balancer.t;
  rr : int Atomic.t; (* Round_robin rotation cursor *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable state : state;
  mutable accept_thread : Thread.t option;
  mutable health_thread : Thread.t option;
  active_conns : int Atomic.t;
  requests : Metrics.Counter.t;
  scheduled : Metrics.Counter.t;
  upstream_hits : Metrics.Counter.t;
  failovers : Metrics.Counter.t;
  overloaded : Metrics.Counter.t;
  errors : Metrics.Counter.t;
  connections : Metrics.Counter.t;
  backends_up_g : Metrics.Gauge.t;
  splits_g : Metrics.Gauge.t;
  latency : Metrics.Histogram.t;
  per_backend : (string * Metrics.Counter.t * Metrics.Counter.t) array;
      (* (id, forwarded, failures) in [backends] order *)
}

let now () = Unix.gettimeofday ()

let port t = t.bound_port
let metrics t = t.registry
let backends t = Array.to_list t.backends
let balancer t = t.balancer

let stopping t =
  Mutex.lock t.lock;
  let s = t.state in
  Mutex.unlock t.lock;
  s <> Running

(* --- shard routing --- *)

(* The shard key is the same digest × algorithm × P triple the backend
   cache keys on (minus the dead-proc mask, which Schedule requests
   cannot carry), so "same shard" and "same cache entry" coincide. *)
let shard_key ~digest ~algo ~procs =
  Printf.sprintf "%s/%s/%d" digest (String.lowercase_ascii algo) procs

let rotation t =
  let n = Array.length t.backends in
  let start = Atomic.fetch_and_add t.rr 1 in
  List.init n (fun i -> t.backends.((start + i) mod n))

let candidates t key ~hot =
  match t.config.policy with
  | Hash -> Balancer.candidates t.balancer key ~hot
  | Round_robin -> rotation t

let backend_counters t b =
  let id = Backend.id b in
  let found = ref None in
  Array.iter
    (fun ((bid, _, _) as row) -> if bid = id then found := Some row)
    t.per_backend;
  !found

let forward t ~trace_id ~key ~hot request =
  let cands = candidates t key ~hot in
  let rec attempt tried = function
    | [] ->
      (* Every candidate failed (or none existed): shed with a
         structured response rather than hang or leak an exception. *)
      Metrics.Counter.incr t.overloaded;
      Wire.Overloaded
    | b :: rest -> (
      match
        Backend.call ~trace_id ~connect_timeout_s:t.config.connect_timeout_s
          ~io_timeout_s:t.config.call_timeout_s b request
      with
      | Ok resp ->
        (match backend_counters t b with
        | Some (_, fwd, _) -> Metrics.Counter.incr fwd
        | None -> ());
        resp
      | Error _ ->
        (match backend_counters t b with
        | Some (_, _, fl) -> Metrics.Counter.incr fl
        | None -> ());
        if tried > 0 || rest <> [] then Metrics.Counter.incr t.failovers;
        attempt (tried + 1) rest)
  in
  attempt 0 cands

let handle_schedule t ~trace_id ~graph ~algo ~procs =
  let started = now () in
  let resp =
    match Serial.of_string graph with
    | exception Serial.Parse_error { line; message } ->
      (* No backend would accept it either; answer locally and save the
         round trip. *)
      Wire.Error
        {
          code = Wire.Invalid_graph;
          message = Printf.sprintf "graph line %d: %s" line message;
        }
    | g ->
      let key = shard_key ~digest:(Cache.digest g) ~algo ~procs in
      let prior = Balancer.note t.balancer key in
      forward t ~trace_id ~key ~hot:(prior > 0)
        (Wire.Schedule { graph; algo; procs })
  in
  (match resp with
  | Wire.Scheduled { cache_hit; _ } ->
    Metrics.Counter.incr t.scheduled;
    if cache_hit then Metrics.Counter.incr t.upstream_hits
  | Wire.Overloaded -> () (* counted where it was decided *)
  | Wire.Error _ -> Metrics.Counter.incr t.errors
  | _ -> ());
  Metrics.Histogram.observe t.latency (now () -. started);
  resp

(* --- local answers --- *)

let up_count t =
  Array.fold_left
    (fun acc b -> if Backend.status b = Backend.Up then acc + 1 else acc)
    0 t.backends

let refresh_gauges t =
  Metrics.Gauge.set t.backends_up_g (float_of_int (up_count t));
  Metrics.Gauge.set t.splits_g (float_of_int (Balancer.splits t.balancer))

let stats_json t =
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\"role\":\"router\",\"uptime_s\":%g,\"policy\":%S"
    (now () -. t.started_at)
    (match t.config.policy with Hash -> "hash" | Round_robin -> "round-robin");
  Printf.bprintf b ",\"replication\":%d,\"split_factor\":%d,\"vnodes\":%d"
    t.config.replication t.config.split_factor t.config.vnodes;
  Printf.bprintf b ",\"shards_tracked\":%d,\"splits\":%d"
    (Balancer.shards_tracked t.balancer)
    (Balancer.splits t.balancer);
  Buffer.add_string b ",\"backends\":[";
  Array.iteri
    (fun i bk ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"id\":%S,\"status\":%S,\"inflight\":%d,\"pending\":%d,\"hit_rate\":%g,\"requests\":%d,\"failures\":%d,\"last_error\":%S}"
        (Backend.id bk)
        (match Backend.status bk with Backend.Up -> "up" | Backend.Down -> "down")
        (Backend.inflight bk) (Backend.pending bk) (Backend.hit_rate bk)
        (Backend.requests bk) (Backend.failures bk) (Backend.last_error bk))
    t.backends;
  Buffer.add_string b "],\"metrics\":";
  Buffer.add_string b (Metrics.to_json t.registry);
  Buffer.add_char b '}';
  Buffer.contents b

let stats_text t fmt =
  refresh_gauges t;
  match fmt with
  | Wire.Stats_prometheus -> Metrics.to_prometheus t.registry
  | Wire.Stats_json -> stats_json t

let load_answer t =
  let scheduled = Metrics.Counter.value t.scheduled in
  let hits = Metrics.Counter.value t.upstream_hits in
  Wire.Load
    {
      Wire.uptime_s = now () -. t.started_at;
      (* Fleet-wide queue estimate: calls this router holds open plus
         what each backend last reported queued. *)
      pending =
        Array.fold_left
          (fun acc b -> acc + Backend.inflight b + Backend.pending b)
          0 t.backends;
      cache_entries = 0;
      cache_hit_rate =
        (if scheduled = 0 then 0.0
         else float_of_int hits /. float_of_int scheduled);
      scheduled_total = scheduled;
      connections = Atomic.get t.active_conns;
    }

let request_stop t =
  Mutex.lock t.lock;
  if t.state = Running then t.state <- Stopping;
  Mutex.unlock t.lock

(* Returns [false] when the connection should stop being served. *)
let handle_request t respond (header : Wire.header) = function
  | Wire.Schedule { graph; algo; procs } ->
    respond ~trace_id:header.Wire.trace_id
      (handle_schedule t ~trace_id:header.Wire.trace_id ~graph ~algo ~procs);
    true
  | Wire.Get_metrics ->
    refresh_gauges t;
    respond ~trace_id:header.Wire.trace_id
      (Wire.Metrics_text (Metrics.to_prometheus t.registry));
    true
  | Wire.Get_stats fmt ->
    respond ~trace_id:header.Wire.trace_id (Wire.Stats_text (stats_text t fmt));
    true
  | Wire.Get_load ->
    respond ~trace_id:header.Wire.trace_id (load_answer t);
    true
  | Wire.Ping ->
    respond ~trace_id:header.Wire.trace_id Wire.Pong;
    true
  | Wire.Shutdown ->
    respond ~trace_id:header.Wire.trace_id Wire.Shutting_down;
    request_stop t;
    false
  | Wire.Open_stream _ | Wire.Add_tasks _ | Wire.Add_edges _ | Wire.Seal _
  | Wire.Poll_stream _ ->
    (* A streaming session is stateful on one daemon's scheduler loop;
       hashing individual messages across the fleet would scatter it.
       Until sessions get sticky routing, point clients at a backend. *)
    respond ~trace_id:header.Wire.trace_id
      (Wire.Error
         {
           code = Wire.Bad_request;
           message =
             "streaming is not routed; open the stream against a backend \
              daemon directly";
         });
    true

let handle_conn t fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Atomic.incr t.active_conns;
  let respond ~trace_id resp =
    Wire.write_frame oc (Wire.encode_response ~trace_id resp)
  in
  let bad_request message =
    Metrics.Counter.incr t.errors;
    try respond ~trace_id:0L (Wire.Error { code = Wire.Bad_request; message })
    with _ -> ()
  in
  let rec loop () =
    match Wire.read_frame ~max_frame:t.config.max_frame ic with
    | Error Wire.Closed -> ()
    | Error Wire.Truncated -> bad_request "truncated frame"
    | Error (Wire.Oversized n) ->
      bad_request
        (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
           t.config.max_frame)
    | Ok payload -> (
      Metrics.Counter.incr t.requests;
      match Wire.decode_request payload with
      | Error msg ->
        Metrics.Counter.incr t.errors;
        (match
           respond ~trace_id:0L (Wire.Error { code = Wire.Bad_request; message = msg })
         with
        | () -> loop ()
        | exception _ -> ())
      | Ok (header, req) -> (
        match handle_request t respond header req with
        | true -> loop ()
        | false -> ()
        | exception _ -> ()))
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr t.active_conns;
      close_out_noerr oc;
      close_in_noerr ic)
    loop

(* --- health, accept, lifecycle --- *)

let probe_backends t =
  let up = ref 0 in
  Array.iter
    (fun b ->
      if
        Backend.probe ~connect_timeout_s:t.config.connect_timeout_s
          ~io_timeout_s:t.config.call_timeout_s b
      then incr up)
    t.backends;
  refresh_gauges t;
  !up

let health_loop t () =
  let period = t.config.health_period_s in
  while not (stopping t) do
    (* Sleep in short slices so shutdown is not held up by the period. *)
    let slept = ref 0.0 in
    while (not (stopping t)) && !slept < period do
      let s = Float.min 0.1 (period -. !slept) in
      Unix.sleepf s;
      slept := !slept +. s
    done;
    if not (stopping t) then begin
      (try ignore (probe_backends t) with _ -> ());
      Balancer.tick t.balancer
    end
  done

let accept_loop t () =
  let rec loop () =
    if stopping t then ()
    else begin
      (match Unix.select [ t.lsock ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept t.lsock with
        | fd, _ ->
          Metrics.Counter.incr t.connections;
          ignore (Thread.create (handle_conn t) fd)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  (try loop () with _ -> ());
  (try Unix.close t.lsock with _ -> ());
  Array.iter Backend.close t.backends;
  Mutex.lock t.lock;
  t.state <- Stopped;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

let start ?metrics (config : config) =
  if config.backends = [] then
    invalid_arg "Router.start: at least one backend is required";
  let registry = match metrics with Some r -> r | None -> Metrics.create () in
  let backends =
    Array.of_list
      (List.map (fun (host, port) -> Backend.create ~host ~port ()) config.backends)
  in
  let ring =
    Ring.create ~vnodes:config.vnodes
      (Array.to_list (Array.map Backend.id backends))
  in
  let balancer =
    Balancer.create ~ring ~replication:config.replication
      ~split_factor:config.split_factor
      ~backends:(Array.to_list backends)
  in
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let bound_port =
    try
      Unix.setsockopt lsock Unix.SO_REUSEADDR true;
      Unix.bind lsock
        (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
      Unix.listen lsock 64;
      match Unix.getsockname lsock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> config.port
    with e ->
      (try Unix.close lsock with _ -> ());
      raise e
  in
  let t =
    {
      config;
      lsock;
      bound_port;
      started_at = now ();
      registry;
      backends;
      balancer;
      rr = Atomic.make 0;
      lock = Mutex.create ();
      cond = Condition.create ();
      state = Running;
      accept_thread = None;
      health_thread = None;
      active_conns = Atomic.make 0;
      requests =
        Metrics.counter registry ~help:"requests received by the router"
          "router_requests_total";
      scheduled =
        Metrics.counter registry ~help:"schedules answered via a backend"
          "router_scheduled_total";
      upstream_hits =
        Metrics.counter registry
          ~help:"scheduled responses served from a backend cache"
          "router_upstream_cache_hits_total";
      failovers =
        Metrics.counter registry
          ~help:"requests re-enqueued on another replica after a transport failure"
          "router_failovers_total";
      overloaded =
        Metrics.counter registry
          ~help:"requests shed after every candidate replica failed"
          "router_overloaded_total";
      errors =
        Metrics.counter registry ~help:"structured error responses"
          "router_errors_total";
      connections =
        Metrics.counter registry ~help:"client connections accepted"
          "router_connections_total";
      backends_up_g =
        Metrics.gauge registry ~help:"backends currently marked up"
          "router_backends_up";
      splits_g =
        Metrics.gauge registry ~help:"shards currently split wide"
          "router_shards_split";
      latency =
        Metrics.histogram registry
          ~help:"schedule latency through the router (seconds)"
          "router_request_seconds";
      per_backend =
        Array.map
          (fun b ->
            let id = Backend.id b in
            let safe = Metrics.sanitize id in
            ( id,
              Metrics.counter registry
                ~help:(Printf.sprintf "requests forwarded to %s" id)
                (Printf.sprintf "router_backend_%s_requests_total" safe),
              Metrics.counter registry
                ~help:(Printf.sprintf "transport failures against %s" id)
                (Printf.sprintf "router_backend_%s_failures_total" safe) ))
          backends;
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  if config.health_period_s > 0.0 then
    t.health_thread <- Some (Thread.create (health_loop t) ());
  t

let wait t =
  Mutex.lock t.lock;
  while t.state <> Stopped do
    Condition.wait t.cond t.lock
  done;
  Mutex.unlock t.lock;
  (match t.accept_thread with
  | Some th -> ( try Thread.join th with _ -> ())
  | None -> ());
  match t.health_thread with
  | Some th -> ( try Thread.join th with _ -> ())
  | None -> ()

let stop t =
  request_stop t;
  wait t
