module Wire = Flb_service.Wire
module Cache = Flb_service.Cache
module Client = Flb_service.Client
module Serial = Flb_taskgraph.Serial
module Metrics = Flb_obs.Metrics
module Trace = Flb_obs.Trace

type policy = Hash | Round_robin

type hedge = Hedge_off | Hedge_fixed_ms of float | Hedge_adaptive

type config = {
  host : string;
  port : int;
  backends : (string * int) list;
  peers : (string * int) list;
  replication : int;
  split_factor : int;
  vnodes : int;
  policy : policy;
  connect_timeout_s : float;
  call_timeout_s : float;
  health_period_s : float;
  gossip_period_s : float;
  fail_threshold : int;
  hedge : hedge;
  warm_keys : int;
  tracer : Trace.t;
  max_frame : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7450;
    backends = [];
    peers = [];
    replication = 2;
    split_factor = 2;
    vnodes = 64;
    policy = Hash;
    connect_timeout_s = 1.0;
    call_timeout_s = 10.0;
    health_period_s = 2.0;
    gossip_period_s = 1.0;
    fail_threshold = 2;
    hedge = Hedge_off;
    warm_keys = 4;
    tracer = Trace.null;
    max_frame = Wire.default_max_frame;
  }

type state = Running | Stopping | Stopped

type t = {
  config : config;
  lsock : Unix.file_descr;
  bound_port : int;
  started_at : float;
  self_id : string; (* the address gossiped to peers as "who said so" *)
  registry : Metrics.t;
  backends : Backend.t array;
  balancer : Balancer.t;
  gossip : Gossip.t;
  rr : int Atomic.t; (* Round_robin rotation cursor *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable state : state;
  mutable accept_thread : Thread.t option;
  mutable health_thread : Thread.t option;
  mutable gossip_thread : Thread.t option;
  active_conns : int Atomic.t;
  (* Bounded shard-key -> Schedule payload store, so a joining or newly
     split replica can be warmed by replaying real requests. The router
     only ever sees shard keys otherwise — a key alone cannot
     reconstruct the graph text. Guarded by [warm_lock], which also
     covers [last_splits]. *)
  warm_store : (string, string * string * int) Hashtbl.t;
  warm_lock : Mutex.t;
  mutable last_splits : string list; (* split set at the last warm check *)
  requests : Metrics.Counter.t;
  scheduled : Metrics.Counter.t;
  upstream_hits : Metrics.Counter.t;
  failovers : Metrics.Counter.t;
  overloaded : Metrics.Counter.t;
  errors : Metrics.Counter.t;
  connections : Metrics.Counter.t;
  hedge_total : Metrics.Counter.t;
  hedge_wins : Metrics.Counter.t;
  gossip_rounds : Metrics.Counter.t;
  gossip_merges : Metrics.Counter.t;
  drains : Metrics.Counter.t;
  warms : Metrics.Counter.t;
  backends_up_g : Metrics.Gauge.t;
  backends_draining_g : Metrics.Gauge.t;
  splits_g : Metrics.Gauge.t;
  latency : Metrics.Histogram.t;
  per_backend : (string * Metrics.Counter.t * Metrics.Counter.t) array;
      (* (id, forwarded, failures) in [backends] order *)
}

let now () = Unix.gettimeofday ()

let port t = t.bound_port
let metrics t = t.registry
let backends t = Array.to_list t.backends
let balancer t = t.balancer
let gossip t = t.gossip

let stopping t =
  Mutex.lock t.lock;
  let s = t.state in
  Mutex.unlock t.lock;
  s <> Running

(* --- shard routing --- *)

(* The shard key is the same digest × algorithm × P triple the backend
   cache keys on (minus the dead-proc mask, which Schedule requests
   cannot carry), so "same shard" and "same cache entry" coincide. *)
let shard_key ~digest ~algo ~procs =
  Printf.sprintf "%s/%s/%d" digest (String.lowercase_ascii algo) procs

let rotation t =
  let n = Array.length t.backends in
  let start = Atomic.fetch_and_add t.rr 1 in
  let order = List.init n (fun i -> t.backends.((start + i) mod n)) in
  match List.filter (fun b -> Backend.status b = Backend.Up) order with
  | [] -> order (* everything looks down; let the call attempts decide *)
  | up -> up

let candidates t key ~hot =
  match t.config.policy with
  | Hash -> Balancer.candidates t.balancer key ~hot
  | Round_robin -> rotation t

let backend_counters t b =
  let id = Backend.id b in
  let found = ref None in
  Array.iter
    (fun ((bid, _, _) as row) -> if bid = id then found := Some row)
    t.per_backend;
  !found

let attempt_chain t ~trace_id request cands =
  let rec attempt tried = function
    | [] ->
      (* Every candidate failed (or none existed): shed with a
         structured response rather than hang or leak an exception. *)
      Wire.Overloaded
    | b :: rest -> (
      match
        Backend.call ~trace_id ~connect_timeout_s:t.config.connect_timeout_s
          ~io_timeout_s:t.config.call_timeout_s b request
      with
      | Ok resp ->
        (match backend_counters t b with
        | Some (_, fwd, _) -> Metrics.Counter.incr fwd
        | None -> ());
        resp
      | Error _ ->
        (match backend_counters t b with
        | Some (_, _, fl) -> Metrics.Counter.incr fl
        | None -> ());
        if tried > 0 || rest <> [] then Metrics.Counter.incr t.failovers;
        attempt (tried + 1) rest)
  in
  attempt 0 cands

let hedge_delay_s t =
  match t.config.hedge with
  | Hedge_off -> None
  | Hedge_fixed_ms ms -> Some (ms /. 1000.0)
  | Hedge_adaptive ->
    (* Tail-derived: hedge once a request outlives the observed p99.
       The floor keeps an all-cache-hit fleet (p99 ≈ 0) from hedging
       every single request. *)
    Some (Float.max 0.002 (Metrics.Histogram.quantile t.latency ~q:0.99))

(* First-good-answer-wins race cell for hedged requests. *)
type hedge_cell = {
  hlock : Mutex.t;
  hcond : Condition.t;
  mutable best : Wire.response option; (* first non-Overloaded answer *)
  mutable fallback : Wire.response option; (* some answer, if none good *)
  mutable winner_secondary : bool;
  mutable pending : int; (* chains launched and not yet finished *)
  mutable launched_secondary : bool;
}

let hedge_good = function Wire.Overloaded -> false | _ -> true

(* Hedged forward: run the normal failover chain; if it has not
   answered after [delay], launch a second chain starting from the next
   replica and take whichever answers first. The loser is abandoned —
   its thread finishes the call into the connection pool and its result
   is discarded. *)
let forward_hedged t ~trace_id ~delay request ~first ~others =
  let cell =
    {
      hlock = Mutex.create ();
      hcond = Condition.create ();
      best = None;
      fallback = None;
      winner_secondary = false;
      pending = 1;
      launched_secondary = false;
    }
  in
  let record ~secondary resp =
    Mutex.lock cell.hlock;
    cell.pending <- cell.pending - 1;
    if hedge_good resp && cell.best = None then begin
      cell.best <- Some resp;
      cell.winner_secondary <- secondary
    end
    else if cell.fallback = None then cell.fallback <- Some resp;
    Condition.broadcast cell.hcond;
    Mutex.unlock cell.hlock
  in
  let spawn ~secondary cands =
    ignore
      (Thread.create
         (fun () ->
           let r =
             try attempt_chain t ~trace_id request cands
             with _ -> Wire.Overloaded
           in
           record ~secondary r)
         ())
  in
  let ts0 = Trace.now t.config.tracer in
  let t0 = now () in
  spawn ~secondary:false (first :: others);
  ignore
    (Thread.create
       (fun () ->
         Unix.sleepf delay;
         Mutex.lock cell.hlock;
         let fire = cell.best = None && cell.pending > 0 in
         if fire then begin
           cell.pending <- cell.pending + 1;
           cell.launched_secondary <- true
         end;
         Mutex.unlock cell.hlock;
         if fire then begin
           Metrics.Counter.incr t.hedge_total;
           spawn ~secondary:true (others @ [ first ])
         end)
       ());
  Mutex.lock cell.hlock;
  while cell.best = None && cell.pending > 0 do
    Condition.wait cell.hcond cell.hlock
  done;
  let resp =
    match cell.best with
    | Some r -> r
    | None -> Option.value ~default:Wire.Overloaded cell.fallback
  in
  let win = cell.winner_secondary in
  let hedged = cell.launched_secondary in
  Mutex.unlock cell.hlock;
  if win then Metrics.Counter.incr t.hedge_wins;
  if hedged && Trace.enabled t.config.tracer then
    Trace.add_span t.config.tracer ~track:"router-hedge"
      ~name:(if win then "hedge-win" else "hedge-lose")
      ~ts:ts0 ~dur:(now () -. t0)
      ~args:[ ("delay_ms", delay *. 1000.0); ("win", if win then 1.0 else 0.0) ];
  resp

let forward t ~trace_id ~key ~hot request =
  let cands = candidates t key ~hot in
  let finish resp =
    if resp = Wire.Overloaded then Metrics.Counter.incr t.overloaded;
    resp
  in
  (* Only hot shards hedge: cold traffic is deliberately routed
     primary-first to warm one cache, and a duplicate would just smear
     the shard across replicas. *)
  match (cands, if hot then hedge_delay_s t else None) with
  | ([] | [ _ ]), _ | _, None -> finish (attempt_chain t ~trace_id request cands)
  | first :: others, Some delay ->
    finish (forward_hedged t ~trace_id ~delay request ~first ~others)

(* --- gossip & cache warming --- *)

let peer_status_of = function
  | Backend.Up -> Wire.Peer_up
  | Backend.Draining -> Wire.Peer_draining
  | Backend.Down -> Wire.Peer_down

let backend_status_of = function
  | Wire.Peer_up -> Backend.Up
  | Wire.Peer_draining -> Backend.Draining
  | Wire.Peer_down -> Backend.Down

let backend_by_id t id =
  let found = ref None in
  Array.iter (fun b -> if Backend.id b = id then found := Some b) t.backends;
  !found

let warm_capacity = 128

let store_warm t key payload =
  Mutex.lock t.warm_lock;
  (if Hashtbl.mem t.warm_store key then Hashtbl.replace t.warm_store key payload
   else begin
     if Hashtbl.length t.warm_store >= warm_capacity then (
       (* Full: evict an arbitrary entry. A genuinely hot key re-enters
          on its next request, so warming only ever misses cold keys. *)
       match Hashtbl.fold (fun k _ _ -> Some k) t.warm_store None with
       | Some victim -> Hashtbl.remove t.warm_store victim
       | None -> ());
     Hashtbl.add t.warm_store key payload
   end);
  Mutex.unlock t.warm_lock

let warm_payload t key =
  Mutex.lock t.warm_lock;
  let p = Hashtbl.find_opt t.warm_store key in
  Mutex.unlock t.warm_lock;
  p

(* Replay one shard's Schedule to one backend, off-thread: warming must
   never add latency to the request that triggered it. The replay is an
   ordinary Schedule, so the newcomer computes and caches it exactly as
   if a client had asked. *)
let replay t b key =
  match warm_payload t key with
  | None -> ()
  | Some (graph, algo, procs) ->
    Metrics.Counter.incr t.warms;
    ignore
      (Thread.create
         (fun () ->
           ignore
             (Backend.call ~connect_timeout_s:t.config.connect_timeout_s
                ~io_timeout_s:t.config.call_timeout_s b
                (Wire.Schedule { graph; algo; procs })))
         ())

let hottest_keys t =
  let rec take n = function
    | [] -> []
    | x :: r -> if n <= 0 then [] else x :: take (n - 1) r
  in
  take t.config.warm_keys (List.map fst (Balancer.hot_keys t.balancer))

(* A backend newly (re)joined: replay the hottest shards it serves. *)
let warm_backend t b =
  List.iter
    (fun key ->
      if List.mem (Backend.id b) (Balancer.replica_ids t.balancer key) then
        replay t b key)
    (hottest_keys t)

(* A shard newly split: replay it to the members the split added. *)
let warm_split t key =
  List.iter
    (fun id ->
      match Balancer.backend_of_id t.balancer id with
      | Some b when Backend.status b <> Backend.Down -> replay t b key
      | _ -> ())
    (Balancer.split_extras t.balancer key)

(* Push local first-hand knowledge into the gossip state; status
   changes bump the backend's epoch and outvote stale hearsay. *)
let sync_gossip_out t =
  Array.iter
    (fun b ->
      ignore
        (Gossip.observe t.gossip ~backend:(Backend.id b)
           (peer_status_of (Backend.status b))))
    t.backends

let apply_status_changes t changed =
  List.iter
    (fun (id, status) ->
      match backend_by_id t id with
      | None -> () (* a peer knows backends we do not serve; ignore *)
      | Some b ->
        let next = backend_status_of status in
        let prev = Backend.status b in
        if prev <> next then begin
          Backend.set_status b next;
          (* A Down backend a peer says is back gets its cache warmed
             before traffic lands on it again. *)
          if prev = Backend.Down && next = Backend.Up then warm_backend t b
        end)
    changed

(* Impose the merged fleet-wide split set on the balancer and warm the
   members any newly appearing split adds. *)
let refresh_splits t =
  let merged = Gossip.splits t.gossip in
  Balancer.set_splits t.balancer merged;
  Mutex.lock t.warm_lock;
  let prev = t.last_splits in
  t.last_splits <- merged;
  Mutex.unlock t.warm_lock;
  List.iter (fun key -> if not (List.mem key prev) then warm_split t key) merged

let merge_digest t digest =
  let changed = Gossip.merge t.gossip digest in
  Metrics.Counter.add t.gossip_merges (List.length changed);
  apply_status_changes t changed;
  refresh_splits t

let handle_schedule t ~trace_id ~graph ~algo ~procs =
  let started = now () in
  let resp =
    match Serial.of_string graph with
    | exception Serial.Parse_error { line; message } ->
      (* No backend would accept it either; answer locally and save the
         round trip. *)
      Wire.Error
        {
          code = Wire.Invalid_graph;
          message = Printf.sprintf "graph line %d: %s" line message;
        }
    | g ->
      let key = shard_key ~digest:(Cache.digest g) ~algo ~procs in
      store_warm t key (graph, algo, procs);
      let prior = Balancer.note t.balancer key in
      forward t ~trace_id ~key ~hot:(prior > 0)
        (Wire.Schedule { graph; algo; procs })
  in
  (match resp with
  | Wire.Scheduled { cache_hit; _ } ->
    Metrics.Counter.incr t.scheduled;
    if cache_hit then Metrics.Counter.incr t.upstream_hits
  | Wire.Overloaded -> () (* counted where it was decided *)
  | Wire.Error _ -> Metrics.Counter.incr t.errors
  | _ -> ());
  Metrics.Histogram.observe t.latency (now () -. started);
  resp

(* --- local answers --- *)

let up_count t =
  Array.fold_left
    (fun acc b -> if Backend.status b = Backend.Up then acc + 1 else acc)
    0 t.backends

let draining_count t =
  Array.fold_left
    (fun acc b -> if Backend.status b = Backend.Draining then acc + 1 else acc)
    0 t.backends

let refresh_gauges t =
  Metrics.Gauge.set t.backends_up_g (float_of_int (up_count t));
  Metrics.Gauge.set t.backends_draining_g (float_of_int (draining_count t));
  Metrics.Gauge.set t.splits_g (float_of_int (Balancer.splits t.balancer))

let stats_json t =
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\"role\":\"router\",\"uptime_s\":%g,\"policy\":%S"
    (now () -. t.started_at)
    (match t.config.policy with Hash -> "hash" | Round_robin -> "round-robin");
  Printf.bprintf b ",\"replication\":%d,\"split_factor\":%d,\"vnodes\":%d"
    t.config.replication t.config.split_factor t.config.vnodes;
  Printf.bprintf b ",\"shards_tracked\":%d,\"splits\":%d"
    (Balancer.shards_tracked t.balancer)
    (Balancer.splits t.balancer);
  Printf.bprintf b ",\"peers\":%d,\"gossip\":%s"
    (List.length t.config.peers)
    (Gossip.to_json t.gossip);
  Buffer.add_string b ",\"backends\":[";
  Array.iteri
    (fun i bk ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"id\":%S,\"status\":%S,\"inflight\":%d,\"pending\":%d,\"hit_rate\":%g,\"requests\":%d,\"failures\":%d,\"last_error\":%S}"
        (Backend.id bk)
        (Backend.status_name (Backend.status bk))
        (Backend.inflight bk) (Backend.pending bk) (Backend.hit_rate bk)
        (Backend.requests bk) (Backend.failures bk) (Backend.last_error bk))
    t.backends;
  Buffer.add_string b "],\"metrics\":";
  Buffer.add_string b (Metrics.to_json t.registry);
  Buffer.add_char b '}';
  Buffer.contents b

let stats_text t fmt =
  refresh_gauges t;
  match fmt with
  | Wire.Stats_prometheus -> Metrics.to_prometheus t.registry
  | Wire.Stats_json -> stats_json t

let load_answer t =
  let scheduled = Metrics.Counter.value t.scheduled in
  let hits = Metrics.Counter.value t.upstream_hits in
  Wire.Load
    {
      Wire.uptime_s = now () -. t.started_at;
      (* Fleet-wide queue estimate: calls this router holds open plus
         what each backend last reported queued. *)
      pending =
        Array.fold_left
          (fun acc b -> acc + Backend.inflight b + Backend.pending b)
          0 t.backends;
      cache_entries = 0;
      cache_hit_rate =
        (if scheduled = 0 then 0.0
         else float_of_int hits /. float_of_int scheduled);
      scheduled_total = scheduled;
      connections = Atomic.get t.active_conns;
    }

let request_stop t =
  Mutex.lock t.lock;
  if t.state = Running then t.state <- Stopping;
  Mutex.unlock t.lock

(* --- peer exchange --- *)

(* One symmetric exchange: send our digest, merge the peer's post-merge
   answer back. Connections are per-exchange — gossip runs once a
   period, so pooling would buy nothing. An unreachable peer is simply
   skipped; anti-entropy tolerates arbitrary missed rounds. *)
let gossip_exchange t (host, port) =
  match
    Client.connect ~host ~connect_timeout_s:t.config.connect_timeout_s
      ~io_timeout_s:t.config.call_timeout_s ~port ()
  with
  | exception _ -> ()
  | c ->
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        sync_gossip_out t;
        match Client.gossip c ~from:t.self_id ~digest:(Gossip.digest t.gossip) with
        | Ok peer_digest ->
          Metrics.Counter.incr t.gossip_rounds;
          merge_digest t peer_digest
        | Error _ -> ())

let gossip_now t = List.iter (gossip_exchange t) t.config.peers

(* Returns [false] when the connection should stop being served. *)
let handle_request t respond (header : Wire.header) = function
  | Wire.Schedule { graph; algo; procs } ->
    respond ~trace_id:header.Wire.trace_id
      (handle_schedule t ~trace_id:header.Wire.trace_id ~graph ~algo ~procs);
    true
  | Wire.Get_metrics ->
    refresh_gauges t;
    respond ~trace_id:header.Wire.trace_id
      (Wire.Metrics_text (Metrics.to_prometheus t.registry));
    true
  | Wire.Get_stats fmt ->
    respond ~trace_id:header.Wire.trace_id (Wire.Stats_text (stats_text t fmt));
    true
  | Wire.Get_load ->
    respond ~trace_id:header.Wire.trace_id (load_answer t);
    true
  | Wire.Ping ->
    respond ~trace_id:header.Wire.trace_id Wire.Pong;
    true
  | Wire.Shutdown ->
    respond ~trace_id:header.Wire.trace_id Wire.Shutting_down;
    request_stop t;
    false
  | Wire.Gossip { from = _; digest } ->
    (* Inbound half of a symmetric exchange: merge theirs, answer with
       our post-merge view (refreshed with local observations first, so
       the answer carries our first-hand knowledge too). *)
    Metrics.Counter.incr t.gossip_rounds;
    merge_digest t digest;
    sync_gossip_out t;
    respond ~trace_id:header.Wire.trace_id
      (Wire.Gossip_ack { digest = Gossip.digest t.gossip });
    true
  | Wire.Drain { backend } -> (
    match backend_by_id t backend with
    | None ->
      Metrics.Counter.incr t.errors;
      respond ~trace_id:header.Wire.trace_id
        (Wire.Error
           {
             code = Wire.Bad_request;
             message = Printf.sprintf "unknown backend %S" backend;
           });
      true
    | Some b ->
      Metrics.Counter.incr t.drains;
      (* Order matters: stop routing new shards here first, then tell
         the daemon to finish and exit, then rush the news to peers
         ahead of the next gossip period. *)
      Backend.set_status b Backend.Draining;
      ignore (Gossip.observe t.gossip ~backend:(Backend.id b) Wire.Peer_draining);
      ignore
        (Backend.call ~connect_timeout_s:t.config.connect_timeout_s
           ~io_timeout_s:t.config.call_timeout_s b
           (Wire.Drain { backend = "" }));
      ignore (Thread.create (fun () -> try gossip_now t with _ -> ()) ());
      refresh_gauges t;
      respond ~trace_id:header.Wire.trace_id (Wire.Drain_ack { backend });
      true)
  | Wire.Open_stream _ | Wire.Add_tasks _ | Wire.Add_edges _ | Wire.Seal _
  | Wire.Poll_stream _ ->
    (* A streaming session is stateful on one daemon's scheduler loop;
       hashing individual messages across the fleet would scatter it.
       Until sessions get sticky routing, point clients at a backend. *)
    respond ~trace_id:header.Wire.trace_id
      (Wire.Error
         {
           code = Wire.Bad_request;
           message =
             "streaming is not routed; open the stream against a backend \
              daemon directly";
         });
    true

let handle_conn t fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Atomic.incr t.active_conns;
  let respond ~trace_id resp =
    Wire.write_frame oc (Wire.encode_response ~trace_id resp)
  in
  let bad_request message =
    Metrics.Counter.incr t.errors;
    try respond ~trace_id:0L (Wire.Error { code = Wire.Bad_request; message })
    with _ -> ()
  in
  let rec loop () =
    match Wire.read_frame ~max_frame:t.config.max_frame ic with
    | Error Wire.Closed -> ()
    | Error Wire.Truncated -> bad_request "truncated frame"
    | Error (Wire.Oversized n) ->
      bad_request
        (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
           t.config.max_frame)
    | Ok payload -> (
      Metrics.Counter.incr t.requests;
      match Wire.decode_request payload with
      | Error msg ->
        Metrics.Counter.incr t.errors;
        (match
           respond ~trace_id:0L (Wire.Error { code = Wire.Bad_request; message = msg })
         with
        | () -> loop ()
        | exception _ -> ())
      | Ok (header, req) -> (
        match handle_request t respond header req with
        | true -> loop ()
        | false -> ()
        | exception _ -> ()))
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr t.active_conns;
      close_out_noerr oc;
      close_in_noerr ic)
    loop

(* --- health, accept, lifecycle --- *)

let probe_backends t =
  let up = ref 0 in
  Array.iter
    (fun b ->
      let prev = Backend.status b in
      if
        Backend.probe ~connect_timeout_s:t.config.connect_timeout_s
          ~io_timeout_s:t.config.call_timeout_s b
      then incr up;
      (* A probe just revived this backend: warm its cache with the
         hottest shards before client traffic lands on it again. *)
      if prev = Backend.Down && Backend.status b = Backend.Up then
        warm_backend t b)
    t.backends;
  refresh_gauges t;
  !up

(* One full health pass: probe, recompute the local split set, record
   both in the gossip state, and re-impose the merged fleet view.
   Exposed (as [health_pass] via probe_backends + tick in tests) so
   [health_period_s = 0.] setups stay deterministic. *)
let health_pass t =
  (try ignore (probe_backends t) with _ -> ());
  Balancer.tick t.balancer;
  sync_gossip_out t;
  Gossip.observe_splits t.gossip (Balancer.split_keys t.balancer);
  refresh_splits t

let sleep_slices t period =
  let slept = ref 0.0 in
  while (not (stopping t)) && !slept < period do
    (* Sleep in short slices so shutdown is not held up by the period. *)
    let s = Float.min 0.1 (period -. !slept) in
    Unix.sleepf s;
    slept := !slept +. s
  done

let health_loop t () =
  while not (stopping t) do
    sleep_slices t t.config.health_period_s;
    if not (stopping t) then health_pass t
  done

let gossip_loop t () =
  while not (stopping t) do
    sleep_slices t t.config.gossip_period_s;
    if not (stopping t) then (try gossip_now t with _ -> ())
  done

let accept_loop t () =
  let rec loop () =
    if stopping t then ()
    else begin
      (match Unix.select [ t.lsock ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept t.lsock with
        | fd, _ ->
          Metrics.Counter.incr t.connections;
          ignore (Thread.create (handle_conn t) fd)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  (try loop () with _ -> ());
  (try Unix.close t.lsock with _ -> ());
  Array.iter Backend.close t.backends;
  Mutex.lock t.lock;
  t.state <- Stopped;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

let start ?metrics (config : config) =
  if config.backends = [] then
    invalid_arg "Router.start: at least one backend is required";
  let registry = match metrics with Some r -> r | None -> Metrics.create () in
  let backends =
    Array.of_list
      (List.map
         (fun (host, port) ->
           Backend.create ~host ~fail_threshold:config.fail_threshold ~port ())
         config.backends)
  in
  let ring =
    Ring.create ~vnodes:config.vnodes
      (Array.to_list (Array.map Backend.id backends))
  in
  let balancer =
    Balancer.create ~ring ~replication:config.replication
      ~split_factor:config.split_factor
      ~backends:(Array.to_list backends)
  in
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let bound_port =
    try
      Unix.setsockopt lsock Unix.SO_REUSEADDR true;
      Unix.bind lsock
        (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
      Unix.listen lsock 64;
      match Unix.getsockname lsock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> config.port
    with e ->
      (try Unix.close lsock with _ -> ());
      raise e
  in
  let t =
    {
      config;
      lsock;
      bound_port;
      started_at = now ();
      self_id = Printf.sprintf "%s:%d" config.host bound_port;
      registry;
      backends;
      balancer;
      gossip =
        Gossip.create
          ~backends:(Array.to_list (Array.map Backend.id backends));
      rr = Atomic.make 0;
      lock = Mutex.create ();
      cond = Condition.create ();
      state = Running;
      accept_thread = None;
      health_thread = None;
      gossip_thread = None;
      active_conns = Atomic.make 0;
      warm_store = Hashtbl.create 64;
      warm_lock = Mutex.create ();
      last_splits = [];
      requests =
        Metrics.counter registry ~help:"requests received by the router"
          "router_requests_total";
      scheduled =
        Metrics.counter registry ~help:"schedules answered via a backend"
          "router_scheduled_total";
      upstream_hits =
        Metrics.counter registry
          ~help:"scheduled responses served from a backend cache"
          "router_upstream_cache_hits_total";
      failovers =
        Metrics.counter registry
          ~help:"requests re-enqueued on another replica after a transport failure"
          "router_failovers_total";
      overloaded =
        Metrics.counter registry
          ~help:"requests shed after every candidate replica failed"
          "router_overloaded_total";
      errors =
        Metrics.counter registry ~help:"structured error responses"
          "router_errors_total";
      connections =
        Metrics.counter registry ~help:"client connections accepted"
          "router_connections_total";
      hedge_total =
        Metrics.counter registry
          ~help:"hedged requests (second replica raced after the delay)"
          "router_hedge_total";
      hedge_wins =
        Metrics.counter registry
          ~help:"hedged requests won by the second replica"
          "router_hedge_wins";
      gossip_rounds =
        Metrics.counter registry
          ~help:"gossip exchanges completed (either direction)"
          "router_gossip_rounds_total";
      gossip_merges =
        Metrics.counter registry
          ~help:"backend status changes applied from peer digests"
          "router_gossip_merges_total";
      drains =
        Metrics.counter registry ~help:"drain requests accepted"
          "router_drains_total";
      warms =
        Metrics.counter registry
          ~help:"cache-warming schedules replayed to joining or split replicas"
          "router_cache_warms_total";
      backends_up_g =
        Metrics.gauge registry ~help:"backends currently marked up"
          "router_backends_up";
      backends_draining_g =
        Metrics.gauge registry ~help:"backends currently draining"
          "router_backends_draining";
      splits_g =
        Metrics.gauge registry ~help:"shards currently split wide"
          "router_shards_split";
      latency =
        Metrics.histogram registry
          ~help:"schedule latency through the router (seconds)"
          "router_request_seconds";
      per_backend =
        Array.map
          (fun b ->
            let id = Backend.id b in
            let safe = Metrics.sanitize id in
            ( id,
              Metrics.counter registry
                ~help:(Printf.sprintf "requests forwarded to %s" id)
                (Printf.sprintf "router_backend_%s_requests_total" safe),
              Metrics.counter registry
                ~help:(Printf.sprintf "transport failures against %s" id)
                (Printf.sprintf "router_backend_%s_failures_total" safe) ))
          backends;
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  if config.health_period_s > 0.0 then
    t.health_thread <- Some (Thread.create (health_loop t) ());
  if config.peers <> [] && config.gossip_period_s > 0.0 then
    t.gossip_thread <- Some (Thread.create (gossip_loop t) ());
  t

let wait t =
  Mutex.lock t.lock;
  while t.state <> Stopped do
    Condition.wait t.cond t.lock
  done;
  Mutex.unlock t.lock;
  List.iter
    (function
      | Some th -> ( try Thread.join th with _ -> ())
      | None -> ())
    [ t.accept_thread; t.health_thread; t.gossip_thread ]

let stop t =
  request_stop t;
  wait t
