(** Gossiped router-replica state: per-backend status epochs and the
    split-shard set.

    Replicated routers stay consistent without a coordinator by
    periodically exchanging {!Flb_service.Wire.gossip_digest}s: each
    side merges the other's digest last-writer-wins by epoch. Epochs
    are per-key logical clocks bumped only on {e locally observed}
    changes ({!observe}, {!observe_splits}), so first-hand knowledge
    outvotes stale hearsay, merged epochs never move backwards, and N
    replicas with disjoint observations converge to an identical
    (status, epoch, split-set) map after at most N-1 symmetric
    exchange rounds along a line of peers (tie-breaks are symmetric:
    the worse status, resp. the greater split set, wins an epoch tie).

    All operations are thread-safe; the gossip thread, the health
    thread and request handlers share one [t]. *)

type t

val create : backends:string list -> t
(** Every backend starts [Peer_up] at epoch 0. *)

val digest : t -> Flb_service.Wire.gossip_digest
(** Snapshot to send to a peer; entries sorted by backend id. *)

val observe : t -> backend:string -> Flb_service.Wire.peer_status -> bool
(** Record a first-hand status observation. A change bumps the
    backend's epoch by one (outvoting everything merged so far) and
    returns [true]; re-observing the current belief is free. *)

val observe_splits : t -> string list -> unit
(** Record this router's locally computed split set. Only a {e change}
    relative to the previous local computation bumps the split epoch —
    re-announcing an unchanged view never outvotes a fresher peer. *)

val merge : t -> Flb_service.Wire.gossip_digest -> (string * Flb_service.Wire.peer_status) list
(** Merge one incoming digest, last-writer-wins by epoch. Returns the
    backends whose believed status changed, so the caller can apply
    them to its live backend table. *)

val status_of : t -> string -> Flb_service.Wire.peer_status option

val epoch_of : t -> string -> int option

val splits : t -> string list
(** The current fleet-wide split-shard set (sorted). *)

val merges : t -> int
(** Entries changed by remote digests since start. *)

val exchanges : t -> int
(** Digests merged since start (one per exchange side). *)

val to_json : t -> string
(** One JSON object — backends with status/epoch, splits, counters —
    embedded in the router's stats snapshot so operators (and CI) can
    assert two replicas agree. *)
