(** Front-end TCP router: shards Schedule requests across a fleet of
    [flb serve] replicas.

    The router speaks the {!Flb_service.Wire} framing on both sides. A
    Schedule request is parsed just enough to compute its shard key —
    {!Flb_service.Cache.digest} of the graph × algorithm × P — and the
    key picks a replica set on a consistent-hash {!Ring}. Cold shards go
    primary-first so exactly one cache warms per shard; hot shards go to
    the least-loaded replica; saturated shards split across more
    replicas ({!Balancer}). A transport failure (connect refused,
    deadline, backend killed mid-request) re-enqueues the request on the
    next candidate — the client sees a normal response or a structured
    [Overloaded], never a hang.

    Everything else is answered locally: [Ping] → [Pong], [Get_metrics]
    / [Get_stats] from the router's own registry (with a per-backend
    table), [Get_load] with aggregate fleet load, [Shutdown] stops the
    router (backends keep running).

    Routers replicate: given [peers], a {!Gossip} thread exchanges
    per-backend status epochs and the split-shard set with the other
    replicas every [gossip_period_s], so a fleet behind DNS round-robin
    agrees on the Down set and split decisions within a few periods.
    Hot shards can {e hedge}: once a request outlives the configured
    (or p99-derived) delay, a second replica races it and the first
    answer wins. [Drain] flips a backend to [Draining] — no new shards,
    in-flight work finishes, the news gossips to every peer — and cache
    warming replays the hottest shards to joining or newly split
    replicas so they never serve cold. *)

type policy =
  | Hash  (** Consistent hashing by graph digest (the point of this
              module). *)
  | Round_robin  (** Ignore the ring; rotate through backends. Kept as
                     the baseline the benchmark compares against. *)

(** When to send a hot-shard request to a second replica. *)
type hedge =
  | Hedge_off
  | Hedge_fixed_ms of float  (** Hedge after a fixed delay. *)
  | Hedge_adaptive
      (** Hedge after the live p99 of [router_request_seconds]
          (floored at 2 ms so an all-cache-hit fleet does not hedge
          every request). *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port (see {!port}). *)
  backends : (string * int) list;  (** (host, port) of each replica. *)
  peers : (string * int) list;
      (** Fellow router replicas to gossip with; [[]] disables gossip. *)
  replication : int;  (** Replicas per shard. *)
  split_factor : int;  (** Replica-set multiplier for saturated shards. *)
  vnodes : int;  (** Ring points per backend. *)
  policy : policy;
  connect_timeout_s : float;
  call_timeout_s : float;  (** Per-call I/O deadline on backend sockets;
                               exceeding it triggers failover. *)
  health_period_s : float;  (** Probe cadence; [0.] disables the health
                                thread (tests drive probes manually). *)
  gossip_period_s : float;  (** Peer-exchange cadence; [0.] disables the
                                gossip thread (tests force passes). *)
  fail_threshold : int;  (** Consecutive failures before [Up -> Down]
                             (anti-flap hysteresis, default 2). *)
  hedge : hedge;
  warm_keys : int;  (** Hottest shards replayed to a joining or newly
                        split replica; [0] disables cache warming. *)
  tracer : Flb_obs.Trace.t;  (** Receives hedge spans; default null. *)
  max_frame : int;
}

val default_config : config
(** Port 7450, no backends (so {!start} must be given some), no peers,
    replication 2, split factor 2, 64 vnodes, [Hash] policy, 1s connect
    / 10s call timeouts, 2s health period, 1s gossip period, fail
    threshold 2, hedging off, 4 warm keys. *)

type t

val shard_key : digest:string -> algo:string -> procs:int -> string
(** The ring key of a Schedule request: the {!Flb_service.Cache.digest}
    of its graph, the case-folded algorithm, and the processor count —
    the same triple the backend cache keys on, so "same shard" and
    "same cache entry" coincide. Exposed so tests (and operators) can
    predict placement. *)

val start : ?metrics:Flb_obs.Metrics.t -> config -> t
(** Bind, listen, and serve in background threads until {!stop}.
    Backends are assumed [Up] until a call or probe says otherwise.
    @raise Invalid_argument if [config.backends] is empty or
    replication/split_factor/vnodes are out of range.
    @raise Unix.Unix_error if the port cannot be bound. *)

val port : t -> int
(** The actually-bound port. *)

val metrics : t -> Flb_obs.Metrics.t

val backends : t -> Backend.t list
(** Live backend handles, in configuration order. *)

val balancer : t -> Balancer.t

val gossip : t -> Gossip.t
(** The replica's gossip state (status epochs, split set, counters). *)

val probe_backends : t -> int
(** Probe every backend once (what the health thread does each period)
    and return how many answered. Exposed so tests with
    [health_period_s = 0.] can force a health pass deterministically. *)

val health_pass : t -> unit
(** One full health-thread iteration: probe backends, tick the
    balancer, then fold the fresh local view into gossip state. *)

val gossip_now : t -> unit
(** Exchange digests with every configured peer once (what the gossip
    thread does each period). Exposed so tests with
    [gossip_period_s = 0.] can force convergence deterministically. *)

val request_stop : t -> unit

val wait : t -> unit

val stop : t -> unit
(** [request_stop] then [wait]. *)
