(** Front-end TCP router: shards Schedule requests across a fleet of
    [flb serve] replicas.

    The router speaks the {!Flb_service.Wire} framing on both sides. A
    Schedule request is parsed just enough to compute its shard key —
    {!Flb_service.Cache.digest} of the graph × algorithm × P — and the
    key picks a replica set on a consistent-hash {!Ring}. Cold shards go
    primary-first so exactly one cache warms per shard; hot shards go to
    the least-loaded replica; saturated shards split across more
    replicas ({!Balancer}). A transport failure (connect refused,
    deadline, backend killed mid-request) re-enqueues the request on the
    next candidate — the client sees a normal response or a structured
    [Overloaded], never a hang.

    Everything else is answered locally: [Ping] → [Pong], [Get_metrics]
    / [Get_stats] from the router's own registry (with a per-backend
    table), [Get_load] with aggregate fleet load, [Shutdown] stops the
    router (backends keep running). *)

type policy =
  | Hash  (** Consistent hashing by graph digest (the point of this
              module). *)
  | Round_robin  (** Ignore the ring; rotate through backends. Kept as
                     the baseline the benchmark compares against. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port (see {!port}). *)
  backends : (string * int) list;  (** (host, port) of each replica. *)
  replication : int;  (** Replicas per shard. *)
  split_factor : int;  (** Replica-set multiplier for saturated shards. *)
  vnodes : int;  (** Ring points per backend. *)
  policy : policy;
  connect_timeout_s : float;
  call_timeout_s : float;  (** Per-call I/O deadline on backend sockets;
                               exceeding it triggers failover. *)
  health_period_s : float;  (** Probe cadence; [0.] disables the health
                                thread (tests drive probes manually). *)
  max_frame : int;
}

val default_config : config
(** Port 7450, no backends (so {!start} must be given some),
    replication 2, split factor 2, 64 vnodes, [Hash] policy, 1s connect
    / 10s call timeouts, 2s health period. *)

type t

val shard_key : digest:string -> algo:string -> procs:int -> string
(** The ring key of a Schedule request: the {!Flb_service.Cache.digest}
    of its graph, the case-folded algorithm, and the processor count —
    the same triple the backend cache keys on, so "same shard" and
    "same cache entry" coincide. Exposed so tests (and operators) can
    predict placement. *)

val start : ?metrics:Flb_obs.Metrics.t -> config -> t
(** Bind, listen, and serve in background threads until {!stop}.
    Backends are assumed [Up] until a call or probe says otherwise.
    @raise Invalid_argument if [config.backends] is empty or
    replication/split_factor/vnodes are out of range.
    @raise Unix.Unix_error if the port cannot be bound. *)

val port : t -> int
(** The actually-bound port. *)

val metrics : t -> Flb_obs.Metrics.t

val backends : t -> Backend.t list
(** Live backend handles, in configuration order. *)

val balancer : t -> Balancer.t

val probe_backends : t -> int
(** Probe every backend once (what the health thread does each period)
    and return how many answered. Exposed so tests with
    [health_period_s = 0.] can force a health pass deterministically. *)

val request_stop : t -> unit

val wait : t -> unit

val stop : t -> unit
(** [request_stop] then [wait]. *)
