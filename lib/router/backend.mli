(** One backend daemon replica as the router sees it.

    A backend owns a small pool of persistent {!Flb_service.Client}
    connections (checked out per call, so each is used by one thread at
    a time), a health state flipped by probes and call outcomes, and
    the last load numbers polled over the wire ({!Flb_service.Wire}
    [Get_load]). All mutable state is guarded by one mutex; [call]
    itself runs without the lock held, so slow backends never serialize
    the router. *)

type status =
  | Up
  | Draining
      (** Being removed gracefully: finishes what it has, takes no new
          shards, and is never promoted back to [Up] by a successful
          call — only an explicit {!set_status} can undo a drain. *)
  | Down

type t

val status_name : status -> string
(** ["up"], ["draining"], ["down"] — as rendered in stats JSON. *)

val parse_addr : string -> (string * int, string) result
(** ["host:port"] (or just ["port"], meaning 127.0.0.1). *)

val create : ?host:string -> ?fail_threshold:int -> port:int -> unit -> t
(** [fail_threshold] (default 2, must be >= 1) is the anti-flap
    hysteresis: the number of {e consecutive} probe/call failures
    before an [Up] backend is demoted to [Down]. Recovery is immediate:
    one success promotes [Down -> Up].
    @raise Invalid_argument on [fail_threshold < 1]. *)

val id : t -> string
(** ["host:port"] — the identity planted on the hash ring. *)

val host : t -> string

val port : t -> int

val status : t -> status

val set_status : t -> status -> unit
(** Force a status (drain orchestration, gossip merge, tests); also
    resets the consecutive-failure counter. *)

val consecutive_failures : t -> int
(** Failures since the last success — the hysteresis counter. *)

val mark_ok : t -> unit
(** Record a successful round trip: resets the failure streak and
    promotes [Down -> Up] (never [Draining -> Up]). [call] does this
    itself; exposed for tests. *)

val mark_failed : t -> string -> unit
(** Record a transport failure with its message; demotes to [Down]
    once the streak reaches [fail_threshold]. [call] does this itself;
    exposed for tests. *)

val last_error : t -> string
(** The transport error that last marked the backend down; [""] if
    none. *)

val inflight : t -> int
(** Router-side calls currently outstanding against this backend. *)

val load_score : t -> float
(** Load estimate for least-loaded selection: live router-side
    inflight plus the backend's last-reported queue depth. *)

val pending : t -> int

val hit_rate : t -> float

val requests : t -> int
(** Calls forwarded (successful round trips). *)

val failures : t -> int
(** Transport failures (connect refused, timeout, dropped mid-call). *)

val call :
  ?trace_id:int64 ->
  connect_timeout_s:float ->
  io_timeout_s:float ->
  t ->
  Flb_service.Wire.request ->
  (Flb_service.Wire.response, string) result
(** One round trip, using a pooled connection when one is idle. A
    transport failure on a pooled connection is retried once on a
    fresh connection (the pooled one may simply be stale, e.g. the
    backend restarted); a failure on a fresh connection counts against
    the hysteresis threshold and, once reached, marks the backend
    [Down]. A success promotes [Down -> Up] (but never
    [Draining -> Up]). *)

val probe : connect_timeout_s:float -> io_timeout_s:float -> t -> bool
(** Health check: [Ping], then refresh the load numbers via
    [Get_load]. Flips [status] accordingly; [true] iff the backend
    answered the ping. *)

val close : t -> unit
(** Drop every pooled connection. *)
