(* Immutable consistent-hash ring: a sorted array of (point, member)
   pairs, [vnodes] points per member. MD5 keeps placement deterministic
   across processes (unlike Hashtbl.hash, which is documented to vary),
   which is what lets a router restart — or a second router — agree on
   every assignment. *)

type t = {
  vnodes : int;
  members : string list; (* sorted, distinct *)
  points : (int64 * string) array; (* sorted by point, ties by member *)
}

(* First 8 bytes of the MD5, big-endian. Collisions are broken by the
   member name in the sort, so even equal points order deterministically. *)
let hash64 s =
  let d = Digest.string s in
  let b = Bytes.of_string (String.sub d 0 8) in
  Bytes.get_int64_be b 0

let point_of member i = hash64 (Printf.sprintf "%s#%d" member i)

let compare_point (h1, m1) (h2, m2) =
  match Int64.unsigned_compare h1 h2 with 0 -> String.compare m1 m2 | c -> c

let build ~vnodes members =
  let points = Array.make (List.length members * vnodes) (0L, "") in
  List.iteri
    (fun mi m ->
      for i = 0 to vnodes - 1 do
        points.((mi * vnodes) + i) <- (point_of m i, m)
      done)
    members;
  Array.sort compare_point points;
  { vnodes; members; points }

let create ?(vnodes = 64) members =
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be >= 1";
  build ~vnodes (List.sort_uniq String.compare members)

let members t = t.members

let size t = List.length t.members

let add t m =
  if List.mem m t.members then t
  else build ~vnodes:t.vnodes (List.sort String.compare (m :: t.members))

let remove t m =
  if not (List.mem m t.members) then t
  else build ~vnodes:t.vnodes (List.filter (fun x -> x <> m) t.members)

(* Index of the first point whose hash is >= h (in unsigned order), or
   0 when h is past the last point (the walk wraps). *)
let start_index t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let ph, _ = t.points.(mid) in
    if Int64.unsigned_compare ph h < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let lookup t ~n key =
  let total = size t in
  let want = min n total in
  if want <= 0 || total = 0 then []
  else begin
    let h = hash64 key in
    let start = start_index t h in
    let np = Array.length t.points in
    let picked = ref [] in
    let count = ref 0 in
    let i = ref 0 in
    while !count < want && !i < np do
      let _, m = t.points.((start + !i) mod np) in
      if not (List.mem m !picked) then begin
        picked := m :: !picked;
        incr count
      end;
      incr i
    done;
    List.rev !picked
  end

let primary t key = match lookup t ~n:1 key with [] -> None | m :: _ -> Some m
