type t = {
  ring : Ring.t;
  replication : int;
  split_factor : int;
  by_id : (string, Backend.t) Hashtbl.t;
  num_backends : int;
  lock : Mutex.t;
  window : (string, int) Hashtbl.t; (* shard key -> decaying request count *)
  mutable window_total : int;
  split : (string, unit) Hashtbl.t; (* shards currently split *)
}

let create ~ring ~replication ~split_factor ~backends =
  if replication < 1 then invalid_arg "Balancer.create: replication must be >= 1";
  if split_factor < 1 then
    invalid_arg "Balancer.create: split_factor must be >= 1";
  let by_id = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace by_id (Backend.id b) b) backends;
  List.iter
    (fun m ->
      if not (Hashtbl.mem by_id m) then
        invalid_arg
          (Printf.sprintf "Balancer.create: ring member %s has no backend" m))
    (Ring.members ring);
  {
    ring;
    replication;
    split_factor;
    by_id;
    num_backends = Ring.size ring;
    lock = Mutex.create ();
    window = Hashtbl.create 64;
    window_total = 0;
    split = Hashtbl.create 8;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let note t key =
  with_lock t (fun () ->
      let prior = Option.value ~default:0 (Hashtbl.find_opt t.window key) in
      Hashtbl.replace t.window key (prior + 1);
      t.window_total <- t.window_total + 1;
      prior)

let is_split t key = with_lock t (fun () -> Hashtbl.mem t.split key)

let splits t = with_lock t (fun () -> Hashtbl.length t.split)

let split_keys t =
  with_lock t (fun () ->
      List.sort String.compare
        (Hashtbl.fold (fun k () acc -> k :: acc) t.split []))

(* Replace the split set wholesale — how a gossip merge imposes the
   fleet-wide winner over this router's local decision. *)
let set_splits t keys =
  with_lock t (fun () ->
      Hashtbl.reset t.split;
      List.iter (fun k -> Hashtbl.replace t.split k ()) keys)

let shards_tracked t = with_lock t (fun () -> Hashtbl.length t.window)

let hot_keys t =
  with_lock t (fun () ->
      let all = Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.window [] in
      List.sort
        (fun (ka, ca) (kb, cb) ->
          match compare cb ca with 0 -> String.compare ka kb | c -> c)
        all)

let decide_split ~count ~total ~num_backends ~split_factor =
  split_factor > 1 && num_backends > 1
  && total >= 10 * num_backends
  && count * num_backends >= 2 * total

let tick t =
  with_lock t (fun () ->
      Hashtbl.reset t.split;
      Hashtbl.iter
        (fun key count ->
          if
            decide_split ~count ~total:t.window_total
              ~num_backends:t.num_backends ~split_factor:t.split_factor
          then Hashtbl.replace t.split key ())
        t.window;
      (* Halve the window so saturation reflects recent traffic, not the
         whole run; counts reaching zero drop out entirely. *)
      let halved =
        Hashtbl.fold (fun k c acc -> (k, c / 2) :: acc) t.window []
      in
      Hashtbl.reset t.window;
      t.window_total <- 0;
      List.iter
        (fun (k, c) ->
          if c > 0 then begin
            Hashtbl.replace t.window k c;
            t.window_total <- t.window_total + c
          end)
        halved)

let width t ~split =
  if split then min (t.replication * t.split_factor) t.num_backends
  else t.replication

let replica_ids t key = Ring.lookup t.ring ~n:(width t ~split:(is_split t key)) key

let split_extras t key =
  let wide = Ring.lookup t.ring ~n:(width t ~split:true) key in
  let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r in
  drop t.replication wide

let backend_of_id t id = Hashtbl.find_opt t.by_id id

let candidates t key ~hot =
  let split = is_split t key in
  let width = width t ~split in
  let ids = Ring.lookup t.ring ~n:width key in
  let all = List.filter_map (Hashtbl.find_opt t.by_id) ids in
  let pool =
    (* Draining backends take no new shards while anything healthy
       remains; they are still preferable to backends believed dead. *)
    match List.filter (fun b -> Backend.status b = Backend.Up) all with
    | [] -> (
      match List.filter (fun b -> Backend.status b = Backend.Draining) all with
      | [] -> all (* everything looks down; let the call attempts decide *)
      | draining -> draining)
    | up -> up
  in
  if hot || split then
    List.stable_sort
      (fun a b -> compare (Backend.load_score a) (Backend.load_score b))
      pool
  else pool (* cold: ring order, primary first, so its cache warms *)
