(** Consistent-hash ring over backend identifiers.

    Each member is planted on the ring at [vnodes] pseudo-random points
    (MD5 of ["<member>#<i>"]), and a key is served by the first distinct
    members encountered walking clockwise from the key's own hash. The
    classic consistency property follows: adding one member to an
    N-member ring moves only the keys that now land on the new member —
    about [1/(N+1)] of them — and removing it restores every previous
    assignment exactly. The router shards schedule requests on this
    ring keyed by {!Flb_service.Cache.digest}, so a given graph keeps
    hitting the same replica set (and its warm cache) as backends come
    and go.

    Rings are immutable; [add]/[remove] return new rings. Hashing is
    deterministic (MD5), so assignments agree across processes and
    runs. *)

type t

val create : ?vnodes:int -> string list -> t
(** Ring over the given member ids (duplicates ignored). [vnodes]
    (default 64) is the number of points per member; more points spread
    load more evenly at the cost of a larger ring.
    @raise Invalid_argument if [vnodes < 1]. *)

val add : t -> string -> t
(** Ring with one more member; no-op if already present. *)

val remove : t -> string -> t
(** Ring without the member; no-op if absent. *)

val members : t -> string list
(** Sorted member ids. *)

val size : t -> int

val lookup : t -> n:int -> string -> string list
(** The first [min n (size t)] distinct members clockwise from the
    key's hash — position 0 is the key's primary, the rest its
    replicas in deterministic failover order. [[]] on an empty ring. *)

val primary : t -> string -> string option
(** [lookup ~n:1] as an option. *)
