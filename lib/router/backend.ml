module Client = Flb_service.Client
module Wire = Flb_service.Wire

type status = Up | Draining | Down

let status_name = function Up -> "up" | Draining -> "draining" | Down -> "down"

type t = {
  id : string;
  host : string;
  port : int;
  fail_threshold : int;
  lock : Mutex.t;
  mutable state : status;
  mutable last_error : string;
  mutable consec_failures : int; (* since the last success; resets on Ok *)
  mutable idle : Client.t list; (* pooled connections, LIFO *)
  mutable inflight : int;
  mutable load_pending : int;
  mutable load_hit_rate : float;
  mutable requests : int;
  mutable failures : int;
}

let max_idle = 8

let parse_addr s =
  match String.rindex_opt s ':' with
  | None -> (
    match int_of_string_opt s with
    | Some p when p > 0 -> Ok ("127.0.0.1", p)
    | _ -> Error (Printf.sprintf "bad backend address %S (expected host:port)" s))
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && host <> "" -> Ok (host, p)
    | _ -> Error (Printf.sprintf "bad backend address %S (expected host:port)" s))

let create ?(host = "127.0.0.1") ?(fail_threshold = 2) ~port () =
  if fail_threshold < 1 then
    invalid_arg "Backend.create: fail_threshold must be >= 1";
  {
    id = Printf.sprintf "%s:%d" host port;
    host;
    port;
    fail_threshold;
    lock = Mutex.create ();
    state = Up (* optimistic: probes demote, not promote, the first requests *);
    last_error = "";
    consec_failures = 0;
    idle = [];
    inflight = 0;
    load_pending = 0;
    load_hit_rate = 0.0;
    requests = 0;
    failures = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let id t = t.id
let host t = t.host
let port t = t.port
let status t = with_lock t (fun () -> t.state)

let set_status t s =
  with_lock t (fun () ->
      t.state <- s;
      t.consec_failures <- 0)

let consecutive_failures t = with_lock t (fun () -> t.consec_failures)
let last_error t = with_lock t (fun () -> t.last_error)
let inflight t = with_lock t (fun () -> t.inflight)
let pending t = with_lock t (fun () -> t.load_pending)
let hit_rate t = with_lock t (fun () -> t.load_hit_rate)
let requests t = with_lock t (fun () -> t.requests)
let failures t = with_lock t (fun () -> t.failures)

let load_score t =
  with_lock t (fun () -> float_of_int t.inflight +. float_of_int t.load_pending)

let checkout t =
  with_lock t (fun () ->
      match t.idle with
      | c :: rest ->
        t.idle <- rest;
        Some c
      | [] -> None)

let checkin t c =
  let keep =
    with_lock t (fun () ->
        if List.length t.idle < max_idle then begin
          t.idle <- c :: t.idle;
          true
        end
        else false)
  in
  if not keep then Client.close c

(* Success promotes only [Down -> Up]: a [Draining] backend that still
   answers stays draining until it leaves. *)
let mark_ok t =
  with_lock t (fun () ->
      t.consec_failures <- 0;
      if t.state = Down then t.state <- Up;
      t.requests <- t.requests + 1)

(* Anti-flap hysteresis: one timed-out probe under load must not evict
   a healthy backend from every replica set, so demotion waits for
   [fail_threshold] consecutive failures. *)
let mark_failed t msg =
  with_lock t (fun () ->
      t.consec_failures <- t.consec_failures + 1;
      if t.consec_failures >= t.fail_threshold then t.state <- Down;
      t.last_error <- msg;
      t.failures <- t.failures + 1)

let fresh t ~connect_timeout_s ~io_timeout_s =
  match
    Client.connect ~host:t.host ~connect_timeout_s ~io_timeout_s ~port:t.port ()
  with
  | c -> Ok c
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | exception e -> Error (Printexc.to_string e)

let call ?trace_id ~connect_timeout_s ~io_timeout_s t request =
  with_lock t (fun () -> t.inflight <- t.inflight + 1);
  Fun.protect
    ~finally:(fun () -> with_lock t (fun () -> t.inflight <- t.inflight - 1))
    (fun () ->
      let once c =
        match Client.call ?trace_id c request with
        | Ok resp ->
          checkin t c;
          Ok resp
        | Error msg ->
          Client.close c;
          Error msg
      in
      let fresh_call () =
        match fresh t ~connect_timeout_s ~io_timeout_s with
        | Error msg -> Error msg
        | Ok c -> once c
      in
      let result =
        match checkout t with
        | None -> fresh_call ()
        | Some c -> (
          match once c with
          | Ok _ as ok -> ok
          | Error _ ->
            (* A pooled connection can be stale (backend restarted, idle
               timeout); one fresh attempt decides whether the backend
               itself is unhealthy. *)
            fresh_call ())
      in
      (match result with
      | Ok _ -> mark_ok t
      | Error msg -> mark_failed t msg);
      result)

let probe ~connect_timeout_s ~io_timeout_s t =
  match call ~connect_timeout_s ~io_timeout_s t Wire.Ping with
  | Ok Wire.Pong ->
    (match call ~connect_timeout_s ~io_timeout_s t Wire.Get_load with
    | Ok (Wire.Load l) ->
      with_lock t (fun () ->
          t.load_pending <- l.Wire.pending;
          t.load_hit_rate <- l.Wire.cache_hit_rate)
    | Ok _ | Error _ ->
      (* The ping answered, so the backend serves; stale load numbers
         only soften least-loaded selection. *)
      ());
    true
  | Ok _ ->
    mark_failed t "unexpected response to Ping";
    false
  | Error _ -> false

let close t =
  let conns =
    with_lock t (fun () ->
        let cs = t.idle in
        t.idle <- [];
        cs)
  in
  List.iter Client.close conns
