(** Shard→replica assignment policy on top of {!Ring}.

    Each shard key (graph digest × algorithm × P) owns a replica set:
    the first [replication] members clockwise on the ring. Cold keys
    are routed primary-first so the primary's cache warms
    deterministically; hot keys (seen before) are served by whichever
    replica currently carries the least load, which is what spreads a
    hot graph's traffic without losing cache locality.

    The balancer also watches per-shard traffic over a decaying window.
    A shard whose window share exceeds twice a backend's fair share is
    {e split}: its replica set widens to [replication * split_factor]
    ring members (capped at the backend count), modelled on the POP
    load balancer's split_factor. [tick] — called by the router's
    health thread — recomputes the split set and decays the window. *)

type t

val create :
  ring:Ring.t ->
  replication:int ->
  split_factor:int ->
  backends:Backend.t list ->
  t
(** [replication >= 1], [split_factor >= 1]; each ring member must have
    a backend whose {!Backend.id} matches.
    @raise Invalid_argument otherwise. *)

val note : t -> string -> int
(** Count one request against the shard; returns the shard's prior
    window count, so [note t key > 0] means "hot" (seen recently). *)

val candidates : t -> string -> hot:bool -> Backend.t list
(** Replicas to try, best first; later entries are failover targets.
    [Down] backends are filtered out unless that would leave nothing,
    in which case the unfiltered set is returned (a probe may simply
    not have revived them yet). Cold shards put the primary first; hot
    or split shards order by {!Backend.load_score}. *)

val tick : t -> unit
(** Recompute the split set from the current window and backend loads,
    then decay the window (halve every count, dropping zeros). *)

val is_split : t -> string -> bool

val splits : t -> int
(** Number of currently split shards. *)

val split_keys : t -> string list
(** The currently split shard keys, sorted — what a router gossips. *)

val set_splits : t -> string list -> unit
(** Replace the split set wholesale with the fleet-wide winner of a
    gossip merge. The next [tick] recomputes a local set, which the
    router feeds back through its gossip state. *)

val replica_ids : t -> string -> string list
(** The ring members currently serving the shard (widened when
    split), clockwise from the primary. *)

val split_extras : t -> string -> string list
(** The members a split {e adds} beyond the base replica set — the
    newcomers worth cache-warming when the shard fans out. *)

val backend_of_id : t -> string -> Backend.t option

val shards_tracked : t -> int
(** Shards with a nonzero window count. *)

val hot_keys : t -> (string * int) list
(** Shard keys by decaying window count, hottest first — the replay
    candidates for cache warming. *)

val decide_split :
  count:int -> total:int -> num_backends:int -> split_factor:int -> bool
(** The pure saturation rule behind [tick], exposed for tests: split
    when the shard alone carries at least twice a backend's fair share
    of a window big enough to mean anything ([total >= 10 *
    num_backends]), and splitting can actually widen the set
    ([split_factor > 1], [num_backends > 1]). *)
