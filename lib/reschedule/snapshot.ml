open! Flb_taskgraph
open! Flb_platform

type frozen = { task : Taskgraph.task; proc : int; start : float; finish : float }

type t = {
  graph : Taskgraph.t;
  machine : Machine.t;
  frozen : frozen array;
  ready : float array;
  dead : bool array;
}

let fail fmt = Printf.ksprintf invalid_arg fmt

let make ?(dead = []) ?(ready = []) ?(frozen = []) graph machine =
  let n = Taskgraph.num_tasks graph in
  let p = Machine.num_procs machine in
  let dead_mask = Array.make p false in
  List.iter
    (fun d ->
      if d < 0 || d >= p then fail "Snapshot.make: dead processor %d out of range" d;
      dead_mask.(d) <- true)
    dead;
  if Array.for_all Fun.id dead_mask then
    fail "Snapshot.make: every processor is dead, nothing can run the frontier";
  let floors = Array.make p 0.0 in
  List.iter
    (fun (pr, time) ->
      if pr < 0 || pr >= p then fail "Snapshot.make: ready time for unknown processor %d" pr;
      if (not (Float.is_finite time)) || time < 0.0 then
        fail "Snapshot.make: bad ready time %g for processor %d" time pr;
      if time > floors.(pr) then floors.(pr) <- time)
    ready;
  let executed = Array.make n false in
  List.iter
    (fun f ->
      if f.task < 0 || f.task >= n then fail "Snapshot.make: frozen task %d out of range" f.task;
      if executed.(f.task) then fail "Snapshot.make: task %d frozen twice" f.task;
      if f.proc < 0 || f.proc >= p then
        fail "Snapshot.make: frozen task %d on unknown processor %d" f.task f.proc;
      if (not (Float.is_finite f.start)) || f.start < 0.0 then
        fail "Snapshot.make: frozen task %d has bad start %g" f.task f.start;
      if (not (Float.is_finite f.finish)) || f.finish < f.start then
        fail "Snapshot.make: frozen task %d has bad finish %g" f.task f.finish;
      executed.(f.task) <- true)
    frozen;
  (* The executed prefix must be closed under predecessors: a task only
     ran after every predecessor finished, so a frozen task with an
     unexecuted predecessor means the caller snapshotted inconsistent
     engine state. *)
  List.iter
    (fun f ->
      Taskgraph.iter_preds graph f.task (fun pred _ ->
          if not executed.(pred) then
            fail "Snapshot.make: frozen task %d depends on unexecuted task %d" f.task
              pred))
    frozen;
  { graph; machine; frozen = Array.of_list frozen; ready = floors; dead = dead_mask }

let executed_mask s =
  let mask = Array.make (Taskgraph.num_tasks s.graph) false in
  Array.iter (fun f -> mask.(f.task) <- true) s.frozen;
  mask

let frontier_size s = Taskgraph.num_tasks s.graph - Array.length s.frozen

let frontier s =
  let mask = executed_mask s in
  Transform.restrict s.graph ~keep:(fun t -> not mask.(t))

let seed s =
  let sched = Schedule.create s.graph s.machine in
  Array.iteri (fun p d -> if d then Schedule.mask_proc sched p) s.dead;
  (* Frozen history goes in topologically, so every assignment sees its
     predecessors already placed; closure was checked in [make]. *)
  let n = Taskgraph.num_tasks s.graph in
  let by_task = Array.make n (-1) in
  Array.iteri (fun i f -> by_task.(f.task) <- i) s.frozen;
  Array.iter
    (fun t ->
      if by_task.(t) >= 0 then
        let f = s.frozen.(by_task.(t)) in
        Schedule.assign_frozen sched t ~proc:f.proc ~start:f.start ~finish:f.finish)
    (Topo.order s.graph);
  Array.iteri (fun p time -> Schedule.advance_prt sched p time) s.ready;
  sched
