open! Flb_taskgraph
open! Flb_platform

(** A consistent picture of a partially executed run, taken at a fault.

    The snapshot splits the graph into an {e executed prefix} — tasks
    the engine has finished or committed to (in-flight work is frozen
    with its predicted finish time; a claimed task runs to completion
    even if its domain is about to be preempted by the coordinator's
    queue swap) — and the {e unexecuted frontier}, everything else. The
    prefix is immutable history; only the frontier is rescheduled. *)

type frozen = {
  task : Taskgraph.task;
  proc : int;  (** the domain it ran (or is running) on — may be dead *)
  start : float;  (** measured start, in schedule time units *)
  finish : float;
      (** measured finish for completed tasks, predicted finish for
          in-flight ones *)
}

type t = private {
  graph : Taskgraph.t;
  machine : Machine.t;
  frozen : frozen array;
  ready : float array;  (** per-processor ready-time floor *)
  dead : bool array;
}

val make :
  ?dead:int list ->
  ?ready:(int * float) list ->
  ?frozen:frozen list ->
  Taskgraph.t ->
  Machine.t ->
  t
(** Validates and packs a snapshot.

    [dead] lists the processors that must receive no new work; [ready]
    gives per-processor ready-time floors (typically the fault time for
    every live processor, raised to the predicted finish of in-flight
    work); [frozen] is the executed prefix.

    @raise Invalid_argument if a processor or task id is out of range,
    every processor is dead, a ready floor or frozen time is negative or
    non-finite, a finish precedes its start, a task is frozen twice, or
    the frozen set is not closed under predecessors. *)

val frontier_size : t -> int
(** Number of unexecuted tasks. *)

val frontier : t -> Taskgraph.t * int array * int array
(** The unexecuted frontier as a standalone sub-DAG (via
    {!Transform.restrict}): [(sub, old_of_new, new_of_old)]. Exposed for
    analysis; {!Reschedule.run} itself keeps original task ids by
    seeding the full graph with the prefix pinned, which preserves
    cross-frontier message times exactly. *)

val seed : t -> Schedule.t
(** A fresh schedule over the full graph with the snapshot applied:
    dead processors masked, the executed prefix pinned via
    {!Schedule.assign_frozen} in topological order, and live
    processors' ready times floored per [ready]. Ready tasks of the
    result are exactly the frontier's entry tasks; any list scheduler's
    [run_into] completes it. *)
