open! Flb_platform

(** Fault-reactive incremental rescheduling.

    FLB's O(V (log W + log P) + E) cost makes rescheduling cheap enough
    to call {e during} a run: when a domain dies or degrades, the
    runtime snapshots the executed prefix ({!Snapshot}), and this module
    re-runs a list scheduler over the unexecuted frontier with that
    prefix pinned as frozen history — dead processors masked out of the
    Flat_heap universes, live processors' ready times floored at the
    fault time. The result is a complete, validated schedule whose
    frozen part matches reality and whose live part covers exactly the
    remaining work. *)

type entry = { name : string; resume : Schedule.t -> Schedule.t }

val entries : entry list
(** Every resumable scheduler: FLB, ETF, MCP, FCP, HLFET, DLS, ISH.
    Clustering-based algorithms are excluded (they cannot complete a
    half-placed schedule). [resume] completes a seeded schedule in place
    and returns it. *)

val names : string list

val find : string -> entry option
(** Case-insensitive lookup. *)

val run : ?algo:string -> Snapshot.t -> Schedule.t
(** [run ~algo snapshot] = seed the snapshot ({!Snapshot.seed}) and let
    [algo] (default ["FLB"]) complete it. On an empty snapshot (no
    frozen history, no dead processors, no ready floors) this reproduces
    [algo]'s from-scratch schedule bit for bit.
    @raise Invalid_argument on an unknown or non-resumable algorithm. *)
