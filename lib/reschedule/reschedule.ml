open! Flb_platform

type entry = { name : string; resume : Schedule.t -> Schedule.t }

(* Every list scheduler with a fixed-history [run_into] entry point.
   Clustering-based algorithms (DSC, Sarkar) merge tasks before placing
   them and cannot resume from a half-placed schedule, so they are not
   resumable. This registry is deliberately independent of
   [Flb_experiments.Registry]: experiments depend on the runtime, which
   depends on this library. *)
let entries =
  [
    { name = "FLB"; resume = (fun s -> Flb_core.Flb.run_into s) };
    { name = "ETF"; resume = (fun s -> Flb_schedulers.Etf.run_into s) };
    { name = "MCP"; resume = (fun s -> Flb_schedulers.Mcp.run_into s) };
    { name = "FCP"; resume = (fun s -> Flb_schedulers.Fcp.run_into s) };
    { name = "HLFET"; resume = (fun s -> Flb_schedulers.Hlfet.run_into s) };
    { name = "DLS"; resume = (fun s -> Flb_schedulers.Dls.run_into s) };
    { name = "ISH"; resume = (fun s -> Flb_schedulers.Ish.run_into s) };
  ]

let names = List.map (fun e -> e.name) entries

let find name =
  let needle = String.lowercase_ascii name in
  List.find_opt (fun e -> String.lowercase_ascii e.name = needle) entries

let run ?(algo = "FLB") snapshot =
  match find algo with
  | None ->
    invalid_arg
      (Printf.sprintf "Reschedule.run: unknown or non-resumable scheduler %S (have: %s)"
         algo (String.concat ", " names))
  | Some e ->
    let sched = Snapshot.seed snapshot in
    let sched = e.resume sched in
    assert (Schedule.is_complete sched);
    sched
