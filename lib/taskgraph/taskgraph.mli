(** Weighted directed acyclic task graphs.

    A node is a {e task}: a sequentially executed, non-preemptible unit
    with a computation cost. An edge [(t, t')] is a dependence with a
    communication cost, paid only when [t] and [t'] execute on different
    processors (the machine model zeroes intra-processor communication).

    Tasks are dense integer identifiers [0 .. num_tasks-1], assigned in
    creation order by {!Builder}. The structure is immutable after
    {!Builder.build}; all arrays returned by accessors are owned by the
    graph and must not be mutated by callers.

    Edges are stored in compressed-sparse-row (CSR) form: per direction
    one flat identifier array and one parallel weight array, indexed
    through an offset array of length [num_tasks + 1]. Scheduler hot
    paths stream the flat arrays (via {!iter_succs}/{!iter_preds} or the
    raw {!Csr} accessors) without allocating; the historical
    [(task * float) array array] adjacency ({!succs}/{!preds}) is a
    lazily materialized view kept for cold callers. *)

type task = int
(** Task identifier. *)

type t

(** {1 Construction} *)

module Builder : sig
  type graph := t

  type t

  val create : ?expected_tasks:int -> unit -> t

  val add_task : t -> comp:float -> task
  (** Registers a task and returns its identifier (consecutive from 0).
      @raise Invalid_argument if [comp] is negative or not finite. *)

  val add_edge : t -> src:task -> dst:task -> comm:float -> unit
  (** Adds the dependence [src -> dst].
      @raise Invalid_argument on unknown endpoints, self edges, duplicate
      edges, or a negative/non-finite [comm]. *)

  val num_tasks : t -> int

  val build : t -> graph
  (** Freezes the builder.
      @raise Invalid_argument if the edges contain a cycle (the error
      message names one task on the cycle). The builder must not be used
      afterwards. *)
end

val of_arrays : comp:float array -> edges:(task * task * float) array -> t
(** Convenience wrapper around {!Builder} for literal graphs. *)

(** {1 Accessors} *)

val num_tasks : t -> int

val num_edges : t -> int

val comp : t -> task -> float
(** Computation cost. *)

val succs : t -> task -> (task * float) array
(** Outgoing dependences as [(successor, comm)] pairs, in insertion
    order. Do not mutate. The tuple-array view is materialized (for the
    whole graph, O(V + E)) on first use and cached; hot paths should
    prefer {!iter_succs} or {!Csr}. *)

val preds : t -> task -> (task * float) array
(** Incoming dependences as [(predecessor, comm)] pairs. Do not mutate.
    Same lazy-view caveat as {!succs}. *)

val iter_succs : t -> task -> (task -> float -> unit) -> unit
(** [iter_succs g t f] calls [f successor comm] for each outgoing edge of
    [t], in insertion order, streaming the CSR arrays directly. *)

val iter_preds : t -> task -> (task -> float -> unit) -> unit
(** [iter_preds g t f] calls [f predecessor comm] for each incoming edge. *)

(** Raw CSR arrays, for allocation-free edge sweeps (index edge slots
    [offsets.(t) .. offsets.(t+1) - 1]). All arrays are owned by the
    graph: do not mutate. *)
module Csr : sig
  val succ_offsets : t -> int array
  (** Length [num_tasks + 1]; [succ_offsets g].(num_tasks g) = num_edges g]. *)

  val succ_targets : t -> int array
  (** Length [num_edges], grouped by source task, insertion order. *)

  val succ_weights : t -> float array
  (** Parallel to {!succ_targets}. *)

  val pred_offsets : t -> int array

  val pred_sources : t -> int array

  val pred_weights : t -> float array
end

val out_degree : t -> task -> int

val in_degree : t -> task -> int

val is_entry : t -> task -> bool
(** No incoming edges. *)

val is_exit : t -> task -> bool
(** No outgoing edges. *)

val entry_tasks : t -> task list

val exit_tasks : t -> task list

val iter_edges : (task -> task -> float -> unit) -> t -> unit
(** Visits every edge once, ordered by source task. *)

val comm : t -> src:task -> dst:task -> float option
(** Communication cost of the given edge, if it exists. O(out-degree). *)

(** {1 Aggregates} *)

val total_comp : t -> float
(** Sum of all computation costs; the sequential execution time, used as
    the numerator of speedup. *)

val total_comm : t -> float

val ccr : t -> float
(** Communication-to-computation ratio: average communication cost over
    average computation cost. 0 for graphs without edges.
    @raise Invalid_argument on an empty graph. *)

val pp : Format.formatter -> t -> unit
(** Short human-readable summary (task/edge counts, CCR). *)

val pp_full : Format.formatter -> t -> unit
(** Complete listing of tasks and edges; for debugging small graphs. *)
