(** Structure-preserving task-graph transformations. *)

val transitive_reduction : Taskgraph.t -> Taskgraph.t
(** Removes every edge implied by a longer path. Note that on a
    {e weighted} graph this changes scheduling semantics (a removed
    edge's message no longer costs anything), so this is an analysis
    tool — e.g. for counting the essential dependences of a generator's
    output — not a legal pre-scheduling step. Edge weights of surviving
    edges are preserved. O(V * E / word) via bitset reachability. *)

val reverse : Taskgraph.t -> Taskgraph.t
(** Flips every edge (entries become exits). Useful for testing
    dualities: the bottom levels of the reverse are the top levels plus
    computation of the original. *)

val induced_subgraph : Taskgraph.t -> keep:(Taskgraph.task -> bool) -> Taskgraph.t * int array
(** The subgraph on the kept tasks (edges between kept tasks survive)
    together with the mapping from new ids to original ids. *)

val restrict :
  Taskgraph.t -> keep:(Taskgraph.task -> bool) -> Taskgraph.t * int array * int array
(** Like {!induced_subgraph} but returns both direction maps
    [(sub, old_of_new, new_of_old)], with [new_of_old.(t) = -1] for
    dropped tasks. Streams the CSR adjacency directly (two counted
    passes, one edge-array allocation), so a fault-time frontier
    extraction stays O(V + E); relative task order is preserved. *)

type stats = {
  tasks : int;
  edges : int;
  ccr : float;
  levels : int;
  max_in_degree : int;
  max_out_degree : int;
  avg_degree : float;
  width_level_bound : int;
  comp_critical_path : float;
  parallelism : float;
      (** total computation / computation-only critical path: average
          available parallelism *)
}

val stats : Taskgraph.t -> stats
(** Summary statistics; O(V + E). @raise Invalid_argument on the empty
    graph. *)

val pp_stats : Format.formatter -> stats -> unit
