module Bitset = Flb_prelude.Bitset

let rebuild_edges g ~keep_edge =
  let comp = Array.init (Taskgraph.num_tasks g) (Taskgraph.comp g) in
  let edges = ref [] in
  Taskgraph.iter_edges
    (fun src dst w -> if keep_edge src dst then edges := (src, dst, w) :: !edges)
    g;
  Taskgraph.of_arrays ~comp ~edges:(Array.of_list (List.rev !edges))

let transitive_reduction g =
  let closure = Topo.reachable g in
  (* An edge (u, v) is redundant iff some other successor of u reaches v. *)
  let keep_edge u v =
    not
      (Array.exists
         (fun (s, _) -> s <> v && Bitset.mem closure.(s) v)
         (Taskgraph.succs g u))
  in
  rebuild_edges g ~keep_edge

let reverse g =
  let comp = Array.init (Taskgraph.num_tasks g) (Taskgraph.comp g) in
  let edges = ref [] in
  Taskgraph.iter_edges (fun src dst w -> edges := (dst, src, w) :: !edges) g;
  Taskgraph.of_arrays ~comp ~edges:(Array.of_list (List.rev !edges))

(* Restriction streams the CSR successor arrays directly — two counted
   passes, no intermediate edge lists — so extracting the unexecuted
   frontier of a run stays O(V + E) with exactly one edge-array
   allocation. Returns both direction maps: schedulers work in frontier
   ids, engines translate back through [old_of_new]. *)
let restrict g ~keep =
  let n = Taskgraph.num_tasks g in
  let new_of_old = Array.make n (-1) in
  let count = ref 0 in
  for t = 0 to n - 1 do
    if keep t then begin
      new_of_old.(t) <- !count;
      incr count
    end
  done;
  let old_of_new = Array.make !count 0 in
  for t = 0 to n - 1 do
    if new_of_old.(t) >= 0 then old_of_new.(new_of_old.(t)) <- t
  done;
  let comp = Array.map (Taskgraph.comp g) old_of_new in
  let off = Taskgraph.Csr.succ_offsets g in
  let tgt = Taskgraph.Csr.succ_targets g in
  let w = Taskgraph.Csr.succ_weights g in
  let m = ref 0 in
  for t = 0 to n - 1 do
    if new_of_old.(t) >= 0 then
      for i = off.(t) to off.(t + 1) - 1 do
        if new_of_old.(tgt.(i)) >= 0 then incr m
      done
  done;
  let edges = Array.make !m (0, 0, 0.0) in
  let k = ref 0 in
  for t = 0 to n - 1 do
    if new_of_old.(t) >= 0 then
      for i = off.(t) to off.(t + 1) - 1 do
        let dst = new_of_old.(tgt.(i)) in
        if dst >= 0 then begin
          edges.(!k) <- (new_of_old.(t), dst, w.(i));
          incr k
        end
      done
  done;
  (Taskgraph.of_arrays ~comp ~edges, old_of_new, new_of_old)

let induced_subgraph g ~keep =
  let sub, old_of_new, _ = restrict g ~keep in
  (sub, old_of_new)

type stats = {
  tasks : int;
  edges : int;
  ccr : float;
  levels : int;
  max_in_degree : int;
  max_out_degree : int;
  avg_degree : float;
  width_level_bound : int;
  comp_critical_path : float;
  parallelism : float;
}

let stats g =
  let n = Taskgraph.num_tasks g in
  if n = 0 then invalid_arg "Transform.stats: empty graph";
  let max_in = ref 0 and max_out = ref 0 in
  for t = 0 to n - 1 do
    max_in := max !max_in (Taskgraph.in_degree g t);
    max_out := max !max_out (Taskgraph.out_degree g t)
  done;
  let comp_cp = Array.fold_left Float.max 0.0 (Levels.blevel_comp_only g) in
  {
    tasks = n;
    edges = Taskgraph.num_edges g;
    ccr = Taskgraph.ccr g;
    levels = Topo.num_levels g;
    max_in_degree = !max_in;
    max_out_degree = !max_out;
    avg_degree = float_of_int (Taskgraph.num_edges g) /. float_of_int n;
    width_level_bound = Width.max_level_width g;
    comp_critical_path = comp_cp;
    parallelism = (if comp_cp > 0.0 then Taskgraph.total_comp g /. comp_cp else 1.0);
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "V=%d E=%d CCR=%.2f levels=%d deg(in/out/avg)=%d/%d/%.2f width>=%d compCP=%.2f parallelism=%.2f"
    s.tasks s.edges s.ccr s.levels s.max_in_degree s.max_out_degree s.avg_degree
    s.width_level_bound s.comp_critical_path s.parallelism
