module Vec = Flb_prelude.Vec

type task = int

(* Edges live in compressed-sparse-row form: for each direction, a flat
   id array and a parallel weight array, indexed by an offset array of
   length [n + 1]. The O(E) sweeps of every scheduler stream these flat
   arrays instead of chasing per-task tuple arrays. The historical
   [(task * float) array array] adjacency is kept as a lazily
   materialized view for cold callers. *)
type t = {
  comp : float array;
  succ_off : int array; (* length n+1 *)
  succ_id : int array; (* length E, grouped by source, insertion order *)
  succ_w : float array; (* parallel to succ_id *)
  pred_off : int array;
  pred_id : int array; (* grouped by destination, insertion order *)
  pred_w : float array;
  mutable succ_view : (task * float) array array option;
  mutable pred_view : (task * float) array array option;
}

let num_tasks g = Array.length g.comp

let num_edges g = Array.length g.succ_id

let check_task g t op =
  if t < 0 || t >= num_tasks g then
    invalid_arg (Printf.sprintf "Taskgraph.%s: unknown task %d" op t)

let comp g t =
  check_task g t "comp";
  g.comp.(t)

let out_degree g t =
  check_task g t "out_degree";
  g.succ_off.(t + 1) - g.succ_off.(t)

let in_degree g t =
  check_task g t "in_degree";
  g.pred_off.(t + 1) - g.pred_off.(t)

let materialize_view off id w =
  let n = Array.length off - 1 in
  Array.init n (fun t ->
      Array.init (off.(t + 1) - off.(t)) (fun i ->
          (id.(off.(t) + i), w.(off.(t) + i))))

let succs g t =
  check_task g t "succs";
  let view =
    match g.succ_view with
    | Some v -> v
    | None ->
      let v = materialize_view g.succ_off g.succ_id g.succ_w in
      g.succ_view <- Some v;
      v
  in
  view.(t)

let preds g t =
  check_task g t "preds";
  let view =
    match g.pred_view with
    | Some v -> v
    | None ->
      let v = materialize_view g.pred_off g.pred_id g.pred_w in
      g.pred_view <- Some v;
      v
  in
  view.(t)

let iter_succs g t f =
  check_task g t "iter_succs";
  for i = g.succ_off.(t) to g.succ_off.(t + 1) - 1 do
    f g.succ_id.(i) g.succ_w.(i)
  done

let iter_preds g t f =
  check_task g t "iter_preds";
  for i = g.pred_off.(t) to g.pred_off.(t + 1) - 1 do
    f g.pred_id.(i) g.pred_w.(i)
  done

module Csr = struct
  let succ_offsets g = g.succ_off

  let succ_targets g = g.succ_id

  let succ_weights g = g.succ_w

  let pred_offsets g = g.pred_off

  let pred_sources g = g.pred_id

  let pred_weights g = g.pred_w
end

let is_entry g t = in_degree g t = 0

let is_exit g t = out_degree g t = 0

let entry_tasks g =
  List.filter (is_entry g) (List.init (num_tasks g) Fun.id)

let exit_tasks g =
  List.filter (is_exit g) (List.init (num_tasks g) Fun.id)

let iter_edges f g =
  for src = 0 to num_tasks g - 1 do
    for i = g.succ_off.(src) to g.succ_off.(src + 1) - 1 do
      f src g.succ_id.(i) g.succ_w.(i)
    done
  done

let comm g ~src ~dst =
  check_task g src "comm";
  check_task g dst "comm";
  let result = ref None in
  for i = g.succ_off.(src) to g.succ_off.(src + 1) - 1 do
    if g.succ_id.(i) = dst && !result = None then result := Some g.succ_w.(i)
  done;
  !result

let total_comp g = Array.fold_left ( +. ) 0.0 g.comp

let total_comm g = Array.fold_left ( +. ) 0.0 g.succ_w

let ccr g =
  if num_tasks g = 0 then invalid_arg "Taskgraph.ccr: empty graph";
  if num_edges g = 0 then 0.0
  else begin
    let avg_comm = total_comm g /. float_of_int (num_edges g) in
    let avg_comp = total_comp g /. float_of_int (num_tasks g) in
    avg_comm /. avg_comp
  end

module Builder = struct
  type builder = {
    comps : float Vec.t;
    (* Adjacency accumulated as vectors, frozen to CSR in [build]. *)
    out : (task * float) Vec.t Vec.t;
    into : (task * float) Vec.t Vec.t;
    mutable edges : int;
    mutable built : bool;
  }

  type t = builder

  let create ?(expected_tasks = 16) () =
    {
      comps = Vec.create ~capacity:expected_tasks ();
      out = Vec.create ~capacity:expected_tasks ();
      into = Vec.create ~capacity:expected_tasks ();
      edges = 0;
      built = false;
    }

  let check_alive b op =
    if b.built then invalid_arg ("Taskgraph.Builder." ^ op ^ ": builder already built")

  let check_weight w what op =
    if not (Float.is_finite w) || w < 0.0 then
      invalid_arg
        (Printf.sprintf "Taskgraph.Builder.%s: %s must be finite and non-negative"
           op what)

  let add_task b ~comp =
    check_alive b "add_task";
    check_weight comp "computation cost" "add_task";
    let id = Vec.length b.comps in
    Vec.push b.comps comp;
    Vec.push b.out (Vec.create ~capacity:2 ());
    Vec.push b.into (Vec.create ~capacity:2 ());
    id

  let num_tasks b = Vec.length b.comps

  let add_edge b ~src ~dst ~comm =
    check_alive b "add_edge";
    check_weight comm "communication cost" "add_edge";
    let n = num_tasks b in
    if src < 0 || src >= n then
      invalid_arg (Printf.sprintf "Taskgraph.Builder.add_edge: unknown source %d" src);
    if dst < 0 || dst >= n then
      invalid_arg
        (Printf.sprintf "Taskgraph.Builder.add_edge: unknown destination %d" dst);
    if src = dst then
      invalid_arg (Printf.sprintf "Taskgraph.Builder.add_edge: self edge on %d" src);
    if Vec.exists (fun (t, _) -> t = dst) (Vec.get b.out src) then
      invalid_arg
        (Printf.sprintf "Taskgraph.Builder.add_edge: duplicate edge %d -> %d" src dst);
    Vec.push (Vec.get b.out src) (dst, comm);
    Vec.push (Vec.get b.into dst) (src, comm);
    b.edges <- b.edges + 1

  (* Freeze one adjacency direction into (offsets, ids, weights). *)
  let freeze_csr n m adj =
    let off = Array.make (n + 1) 0 in
    for t = 0 to n - 1 do
      off.(t + 1) <- off.(t) + Vec.length (Vec.get adj t)
    done;
    let id = Array.make m 0 and w = Array.make m 0.0 in
    for t = 0 to n - 1 do
      let base = off.(t) in
      Vec.iteri
        (fun i (other, weight) ->
          id.(base + i) <- other;
          w.(base + i) <- weight)
        (Vec.get adj t)
    done;
    (off, id, w)

  (* Kahn's algorithm; on failure some task keeps a positive in-degree and
     necessarily lies on (or downstream of) a cycle. *)
  let check_acyclic g =
    let n = Array.length g.comp in
    let indeg = Array.init n (fun t -> g.pred_off.(t + 1) - g.pred_off.(t)) in
    let queue = Queue.create () in
    Array.iteri (fun t d -> if d = 0 then Queue.add t queue) indeg;
    let visited = ref 0 in
    while not (Queue.is_empty queue) do
      let t = Queue.pop queue in
      incr visited;
      for i = g.succ_off.(t) to g.succ_off.(t + 1) - 1 do
        let s = g.succ_id.(i) in
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue
      done
    done;
    if !visited <> n then begin
      let on_cycle = ref (-1) in
      Array.iteri (fun t d -> if d > 0 && !on_cycle < 0 then on_cycle := t) indeg;
      invalid_arg
        (Printf.sprintf "Taskgraph.Builder.build: graph has a cycle through task %d"
           !on_cycle)
    end

  let build b =
    check_alive b "build";
    b.built <- true;
    let n = num_tasks b in
    let comp = Vec.to_array b.comps in
    let succ_off, succ_id, succ_w = freeze_csr n b.edges b.out in
    let pred_off, pred_id, pred_w = freeze_csr n b.edges b.into in
    let g =
      {
        comp;
        succ_off;
        succ_id;
        succ_w;
        pred_off;
        pred_id;
        pred_w;
        succ_view = None;
        pred_view = None;
      }
    in
    check_acyclic g;
    g
end

let of_arrays ~comp ~edges =
  let b = Builder.create ~expected_tasks:(Array.length comp) () in
  Array.iter (fun c -> ignore (Builder.add_task b ~comp:c)) comp;
  Array.iter (fun (src, dst, comm) -> Builder.add_edge b ~src ~dst ~comm) edges;
  Builder.build b

let pp ppf g =
  Format.fprintf ppf "task graph: %d tasks, %d edges, CCR %.3f" (num_tasks g)
    (num_edges g)
    (if num_tasks g = 0 then 0.0 else ccr g)

let pp_full ppf g =
  pp ppf g;
  for t = 0 to num_tasks g - 1 do
    Format.fprintf ppf "@\n  t%d comp=%g" t g.comp.(t);
    iter_succs g t (fun d w -> Format.fprintf ppf " ->t%d(%g)" d w)
  done
