let blevel_with ~comm_counts g =
  let n = Taskgraph.num_tasks g in
  let b = Array.make n 0.0 in
  let topo = Topo.order g in
  let off = Taskgraph.Csr.succ_offsets g in
  let id = Taskgraph.Csr.succ_targets g in
  let w = Taskgraph.Csr.succ_weights g in
  for i = n - 1 downto 0 do
    let t = topo.(i) in
    let best = ref 0.0 in
    for e = off.(t) to off.(t + 1) - 1 do
      let len = (if comm_counts then w.(e) else 0.0) +. b.(id.(e)) in
      if len > !best then best := len
    done;
    b.(t) <- Taskgraph.comp g t +. !best
  done;
  b

let blevel g = blevel_with ~comm_counts:true g

let blevel_comp_only g = blevel_with ~comm_counts:false g

let tlevel g =
  let tl = Array.make (Taskgraph.num_tasks g) 0.0 in
  let topo = Topo.order g in
  Array.iter
    (fun t ->
      Taskgraph.iter_succs g t (fun s w ->
          let len = tl.(t) +. Taskgraph.comp g t +. w in
          if len > tl.(s) then tl.(s) <- len))
    topo;
  tl

let cp_length g =
  (* The maximum of tlevel + blevel is attained at every task on a critical
     path; entry tasks alone suffice since tlevel of an entry is 0 and the
     blevel recursion propagates the full path length. *)
  Array.fold_left max 0.0 (blevel g)

let alap g =
  let cp = cp_length g in
  Array.map (fun b -> cp -. b) (blevel g)

let critical_path g =
  let n = Taskgraph.num_tasks g in
  if n = 0 then []
  else begin
    let b = blevel g in
    let start = ref 0 in
    for t = 1 to n - 1 do
      if
        b.(t) > b.(!start)
        || (b.(t) = b.(!start) && Taskgraph.is_entry g t && not (Taskgraph.is_entry g !start))
      then start := t
    done;
    (* Prefer an entry task achieving the max so the path spans the graph. *)
    for t = n - 1 downto 0 do
      if Taskgraph.is_entry g t && b.(t) >= b.(!start) then start := t
    done;
    let rec walk t acc =
      let next =
        Array.fold_left
          (fun best (s, w) ->
            let len = w +. b.(s) in
            match best with
            | Some (_, best_len) when best_len >= len -> best
            | _ -> Some (s, len))
          None (Taskgraph.succs g t)
      in
      match next with
      | None -> List.rev (t :: acc)
      | Some (s, _) -> walk s (t :: acc)
    in
    walk !start []
  end
