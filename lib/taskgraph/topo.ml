module Bitset = Flb_prelude.Bitset

(* Kahn's algorithm with a min-id frontier. The frontier is a sorted module
   Set of ints; at the graph sizes used here (V <= a few thousand) the
   O(V log V) cost is irrelevant and determinism is worth it. *)
let order g =
  let n = Taskgraph.num_tasks g in
  let indeg = Array.init n (Taskgraph.in_degree g) in
  let module Iset = Set.Make (Int) in
  let frontier = ref Iset.empty in
  for t = 0 to n - 1 do
    if indeg.(t) = 0 then frontier := Iset.add t !frontier
  done;
  let out = Array.make n 0 in
  let filled = ref 0 in
  while not (Iset.is_empty !frontier) do
    let t = Iset.min_elt !frontier in
    frontier := Iset.remove t !frontier;
    out.(!filled) <- t;
    incr filled;
    Taskgraph.iter_succs g t (fun s _ ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then frontier := Iset.add s !frontier)
  done;
  (* Builder guarantees acyclicity, so the sweep always completes. *)
  assert (!filled = n);
  out

let is_topological g a =
  let n = Taskgraph.num_tasks g in
  Array.length a = n
  && begin
       let position = Array.make n (-1) in
       Array.iteri (fun i t -> if t >= 0 && t < n then position.(t) <- i) a;
       Array.for_all (fun p -> p >= 0) position
       &&
       let ok = ref true in
       Taskgraph.iter_edges
         (fun src dst _ -> if position.(src) >= position.(dst) then ok := false)
         g;
       !ok
     end

let depth g =
  let d = Array.make (Taskgraph.num_tasks g) 0 in
  Array.iter
    (fun t ->
      Taskgraph.iter_succs g t (fun s _ ->
          if d.(s) < d.(t) + 1 then d.(s) <- d.(t) + 1))
    (order g);
  d

let num_levels g =
  if Taskgraph.num_tasks g = 0 then 0
  else 1 + Array.fold_left max 0 (depth g)

let level_members g =
  let levels = Array.make (num_levels g) [] in
  let d = depth g in
  (* Iterate downward so each level list ends up sorted ascending. *)
  for t = Taskgraph.num_tasks g - 1 downto 0 do
    levels.(d.(t)) <- t :: levels.(d.(t))
  done;
  levels

let reachable g =
  let n = Taskgraph.num_tasks g in
  let closure = Array.init n (fun _ -> Bitset.create n) in
  let topo = order g in
  (* Sweep in reverse topological order so each successor's closure is
     complete before it is folded into its predecessors. *)
  for i = n - 1 downto 0 do
    let t = topo.(i) in
    Taskgraph.iter_succs g t (fun s _ ->
        Bitset.add closure.(t) s;
        Bitset.union_into ~dst:closure.(t) ~src:closure.(s))
  done;
  closure

let connected closure a b = Bitset.mem closure.(a) b || Bitset.mem closure.(b) a
