open! Flb_taskgraph
open! Flb_platform
open! Flb_prelude

type tie_rule = Random_tie of int | Task_id_tie | Descendant_tie

(* Original MCP tie-break: compare the ascending lists of ALAP times of a
   task and all its descendants, lexicographically. Materializing the
   lists is O(V^2) in the worst case, which is why the paper's lower-cost
   variant exists; this rule is opt-in. *)
let descendant_ranks g alap =
  let n = Taskgraph.num_tasks g in
  let lists = Array.make n [] in
  let topo = Topo.order g in
  for i = n - 1 downto 0 do
    let t = topo.(i) in
    let merged =
      Array.fold_left
        (fun acc (s, _) -> List.merge Float.compare lists.(s) acc)
        [] (Taskgraph.succs g t)
    in
    lists.(t) <- List.merge Float.compare [ alap.(t) ] merged
  done;
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> List.compare Float.compare lists.(a) lists.(b)) order;
  let rank = Array.make n 0.0 in
  Array.iteri (fun r t -> rank.(t) <- float_of_int r) order;
  rank

let tie_values ?(tie = Random_tie 1) g alap =
  let n = Taskgraph.num_tasks g in
  match tie with
  | Task_id_tie -> Array.init n float_of_int
  | Random_tie seed ->
    let rng = Rng.create ~seed in
    Array.init n (fun _ -> Rng.float rng 1.0)
  | Descendant_tie -> descendant_ranks g alap

let alap_order ?tie g =
  let alap = Levels.alap g in
  let tb = tie_values ?tie g alap in
  let order = Array.init (Taskgraph.num_tasks g) Fun.id in
  Array.sort
    (fun a b ->
      let c = Float.compare alap.(a) alap.(b) in
      if c <> 0 then c
      else
        let c = Float.compare tb.(a) tb.(b) in
        if c <> 0 then c else Int.compare a b)
    order;
  order

let run_into ?tie ?(insertion = false) ?(probe = Flb_obs.Probe.null) sched =
  let g = Schedule.graph sched in
  Flb_obs.Probe.phase_begin probe Flb_obs.Probe.Phase.Priority;
  let alap = Levels.alap g in
  let tb = tie_values ?tie g alap in
  Flb_obs.Probe.phase_end probe Flb_obs.Probe.Phase.Priority;
  let rule =
    if insertion then List_common.earliest_proc_insertion
    else List_common.earliest_proc
  in
  let select_proc sched t =
    (* Both placement rules scan every processor. *)
    Flb_obs.Probe.proc_queue_ops probe (Schedule.num_procs sched);
    rule sched t
  in
  List_common.run_into ~probe
    ~priority:(fun t -> alap.(t))
    ~tie:(fun t -> tb.(t))
    ~select_proc sched

let run ?tie ?insertion ?probe g machine =
  run_into ?tie ?insertion ?probe (Schedule.create g machine)

let schedule_length ?tie ?insertion g machine =
  Schedule.makespan (run ?tie ?insertion g machine)
