open! Flb_taskgraph
module Vec = Flb_prelude.Vec

(* Start times of the clustered graph on unbounded processors: each
   cluster is a serial resource, intra-cluster messages are free. *)
let start_times g ~cluster_of =
  let n = Taskgraph.num_tasks g in
  let st = Array.make n 0.0 in
  let ready = Hashtbl.create 32 in
  (* cluster -> ready time *)
  Array.iter
    (fun t ->
      let c = cluster_of t in
      let cluster_ready = Option.value ~default:0.0 (Hashtbl.find_opt ready c) in
      let data =
        Array.fold_left
          (fun acc (u, w) ->
            let pay = if cluster_of u = c then 0.0 else w in
            Float.max acc (st.(u) +. Taskgraph.comp g u +. pay))
          0.0 (Taskgraph.preds g t)
      in
      st.(t) <- Float.max cluster_ready data;
      Hashtbl.replace ready c (st.(t) +. Taskgraph.comp g t))
    (Topo.order g);
  st

let parallel_time_of_grouping g ~cluster_of =
  let st = start_times g ~cluster_of in
  let pt = ref 0.0 in
  Array.iteri (fun t s -> pt := Float.max !pt (s +. Taskgraph.comp g t)) st;
  !pt

let cluster g =
  let n = Taskgraph.num_tasks g in
  let cl = Array.init n Fun.id in
  (* explicit member lists make merges (relabeling the smaller side) and
     rollbacks cheap *)
  let members = Array.init n (fun t -> Vec.of_list [ t ]) in
  let edges = ref [] in
  Taskgraph.iter_edges (fun u v w -> edges := (w, u, v) :: !edges) g;
  let edges =
    List.sort
      (fun (w1, u1, v1) (w2, u2, v2) ->
        let c = Float.compare w2 w1 in
        if c <> 0 then c
        else
          let c = Int.compare u1 u2 in
          if c <> 0 then c else Int.compare v1 v2)
      !edges
  in
  let current_pt = ref (parallel_time_of_grouping g ~cluster_of:(fun t -> cl.(t))) in
  List.iter
    (fun (_, u, v) ->
      let cu = cl.(u) and cv = cl.(v) in
      if cu <> cv then begin
        (* merge the smaller cluster into the larger *)
        let small, big =
          if Vec.length members.(cu) <= Vec.length members.(cv) then (cu, cv)
          else (cv, cu)
        in
        let moved = Vec.to_list members.(small) in
        List.iter (fun t -> cl.(t) <- big) moved;
        let pt = parallel_time_of_grouping g ~cluster_of:(fun t -> cl.(t)) in
        if pt <= !current_pt +. 1e-9 then begin
          (* keep the internalization *)
          List.iter (fun t -> Vec.push members.(big) t) moved;
          Vec.clear members.(small);
          current_pt := Float.min !current_pt pt
        end
        else
          (* revert *)
          List.iter (fun t -> cl.(t) <- small) moved
      end)
    edges;
  (* Freeze into the Dsc.clustering shape: dense ids, execution order by
     final start time, tlevel = start time. *)
  let st = start_times g ~cluster_of:(fun t -> cl.(t)) in
  let dense = Hashtbl.create 16 in
  let count = ref 0 in
  let cluster_of = Array.make n (-1) in
  for t = 0 to n - 1 do
    let c = cl.(t) in
    let id =
      match Hashtbl.find_opt dense c with
      | Some id -> id
      | None ->
        let id = !count in
        Hashtbl.add dense c id;
        incr count;
        id
    in
    cluster_of.(t) <- id
  done;
  let buckets = Array.make !count [] in
  for t = n - 1 downto 0 do
    buckets.(cluster_of.(t)) <- t :: buckets.(cluster_of.(t))
  done;
  let clusters =
    Array.map
      (fun tasks ->
        List.sort
          (fun a b ->
            let c = Float.compare st.(a) st.(b) in
            if c <> 0 then c else Int.compare a b)
          tasks)
      buckets
  in
  { Dsc.cluster_of; clusters; tlevel = st }
