open! Flb_taskgraph
open! Flb_platform
module Flat_heap = Flb_heap.Flat_heap
module Probe = Flb_obs.Probe

let run_into ?(probe = Probe.null) sched =
  let g = Schedule.graph sched in
  Probe.phase_begin probe Probe.Phase.Priority;
  let blevel = Levels.blevel g in
  Probe.phase_end probe Probe.Phase.Priority;
  let n = Taskgraph.num_tasks g in
  let p = Schedule.num_procs sched in
  let succ_off = Taskgraph.Csr.succ_offsets g in
  let succ_id = Taskgraph.Csr.succ_targets g in
  let ready = Flat_heap.create ~universe:n in
  (* Processors by ready time, so the idle-earliest one is the head.
     Masked (dead) processors never enter the heap. *)
  let procs = Flat_heap.create ~universe:p in
  for pr = 0 to p - 1 do
    if Schedule.proc_alive sched pr then begin
      Probe.proc_queue_op probe;
      Flat_heap.add procs ~elt:pr ~primary:(Schedule.prt sched pr) ~secondary:0.0
    end
  done;
  let enqueue t =
    Probe.task_queue_op probe;
    Probe.ready_added probe;
    Flat_heap.add ready ~elt:t ~primary:(-.blevel.(t)) ~secondary:(float_of_int t)
  in
  Probe.phase_begin probe Probe.Phase.Queue;
  for t = 0 to n - 1 do
    if Schedule.is_ready sched t then enqueue t
  done;
  Probe.phase_end probe Probe.Phase.Queue;
  let rec loop () =
    let t = Flat_heap.pop ready in
    if t >= 0 then begin
      Probe.iteration probe;
      Probe.task_queue_op probe;
      Probe.ready_removed probe;
      Probe.phase_begin probe Probe.Phase.Selection;
      let idle_first = Flat_heap.peek procs in
      Probe.proc_queue_op probe;
      let est_idle = Schedule.est sched t ~proc:idle_first in
      let ep = Schedule.enabling_proc_id sched t in
      let use_ep =
        ep >= 0 && Schedule.proc_alive sched ep
        && Schedule.est sched t ~proc:ep <= est_idle
      in
      (* Ties go to the enabling processor: same start, no message. *)
      let proc = if use_ep then ep else idle_first in
      let start = if use_ep then Schedule.est sched t ~proc:ep else est_idle in
      Probe.phase_end probe Probe.Phase.Selection;
      Probe.phase_begin probe Probe.Phase.Assignment;
      Schedule.assign sched t ~proc ~start;
      Probe.phase_end probe Probe.Phase.Assignment;
      Probe.phase_begin probe Probe.Phase.Queue;
      Probe.proc_queue_op probe;
      Flat_heap.update procs ~elt:proc ~primary:(Schedule.prt sched proc)
        ~secondary:0.0;
      for i = succ_off.(t) to succ_off.(t + 1) - 1 do
        let succ = succ_id.(i) in
        if Schedule.is_ready sched succ then enqueue succ
      done;
      Probe.phase_end probe Probe.Phase.Queue;
      loop ()
    end
  in
  loop ();
  sched

let run ?probe g machine = run_into ?probe (Schedule.create g machine)

let schedule_length g machine = Schedule.makespan (run g machine)
