open! Flb_taskgraph
open! Flb_platform
module Indexed_heap = Flb_heap.Indexed_heap
module Probe = Flb_obs.Probe

let run ?(probe = Probe.null) g machine =
  Probe.phase_begin probe Probe.Phase.Priority;
  let blevel = Levels.blevel g in
  Probe.phase_end probe Probe.Phase.Priority;
  let sched = Schedule.create g machine in
  let p = Machine.num_procs machine in
  let ready =
    Indexed_heap.create ~universe:(Taskgraph.num_tasks g) ~compare:Stdlib.compare
  in
  (* Processors by ready time, so the idle-earliest one is the head. *)
  let procs = Indexed_heap.create ~universe:p ~compare:Float.compare in
  for pr = 0 to p - 1 do
    Probe.proc_queue_op probe;
    Indexed_heap.add procs ~elt:pr ~key:0.0
  done;
  let enqueue t =
    Probe.task_queue_op probe;
    Probe.ready_added probe;
    Indexed_heap.add ready ~elt:t ~key:(-.blevel.(t), float_of_int t)
  in
  Probe.phase_begin probe Probe.Phase.Queue;
  List.iter enqueue (Taskgraph.entry_tasks g);
  Probe.phase_end probe Probe.Phase.Queue;
  let rec loop () =
    match Indexed_heap.pop ready with
    | None -> ()
    | Some (t, _) ->
      Probe.iteration probe;
      Probe.task_queue_op probe;
      Probe.ready_removed probe;
      Probe.phase_begin probe Probe.Phase.Selection;
      let idle_first =
        match Indexed_heap.min_elt procs with
        | Some (pr, _) -> pr
        | None -> assert false
      in
      Probe.proc_queue_op probe;
      let est_idle = Schedule.est sched t ~proc:idle_first in
      let proc, start =
        match Schedule.enabling_proc sched t with
        | Some ep when Schedule.est sched t ~proc:ep <= est_idle ->
          (* Ties go to the enabling processor: same start, no message. *)
          (ep, Schedule.est sched t ~proc:ep)
        | Some _ | None -> (idle_first, est_idle)
      in
      Probe.phase_end probe Probe.Phase.Selection;
      Probe.phase_begin probe Probe.Phase.Assignment;
      Schedule.assign sched t ~proc ~start;
      Probe.phase_end probe Probe.Phase.Assignment;
      Probe.phase_begin probe Probe.Phase.Queue;
      Probe.proc_queue_op probe;
      Indexed_heap.update procs ~elt:proc ~key:(Schedule.prt sched proc);
      Array.iter
        (fun (succ, _) -> if Schedule.is_ready sched succ then enqueue succ)
        (Taskgraph.succs g t);
      Probe.phase_end probe Probe.Phase.Queue;
      loop ()
  in
  loop ();
  sched

let schedule_length g machine = Schedule.makespan (run g machine)
