open! Flb_taskgraph
open! Flb_platform

(** DLS — Dynamic Level Scheduling (Sih & Lee, 1993; cited as a
    high-cost one-step alternative in the paper's introduction).

    At each iteration the (ready task, processor) pair maximizing the
    dynamic level [SL(t) - EST(t, p)] is scheduled, where SL is the
    static level (computation-only bottom level). Like ETF this costs
    O(W P) per iteration; it trades ETF's greedy earliest start for a
    bias towards critical tasks. *)

val run : ?probe:Flb_obs.Probe.t -> Taskgraph.t -> Machine.t -> Schedule.t

val run_into : ?probe:Flb_obs.Probe.t -> Schedule.t -> Schedule.t
(** Completes a partial schedule in place (and returns it); see
    {!Etf.run_into} for the seeded-schedule contract. *)

val schedule_length : Taskgraph.t -> Machine.t -> float
