open! Flb_taskgraph
open! Flb_platform

(** FCP — Fast Critical Path (Rădulescu & van Gemund, ICS 1999).

    The predecessor of FLB: a list scheduler with static priorities
    (bottom level, largest first) whose processor choice uses the
    two-processor lemma — only the task's enabling processor and the
    processor becoming idle the earliest can minimize its start time.
    O(V log P + E) once priorities are computed.

    FCP picks the highest-priority ready task regardless of whether it
    is the globally earliest-starting one; FLB's contribution is
    upgrading exactly that selection while keeping the cost. *)

val run : ?probe:Flb_obs.Probe.t -> Taskgraph.t -> Machine.t -> Schedule.t

val run_into : ?probe:Flb_obs.Probe.t -> Schedule.t -> Schedule.t
(** Completes a partial schedule in place (and returns it): masked
    processors never enter the idle-earliest heap, and a dead enabling
    processor disqualifies the two-processor shortcut for that task. *)

val schedule_length : Taskgraph.t -> Machine.t -> float
