open! Flb_taskgraph
open! Flb_platform
module Flat_heap = Flb_heap.Flat_heap

type priority = Least_blevel | Greatest_blevel

let run ?(priority = Greatest_blevel) g machine clustering =
  let n = Taskgraph.num_tasks g in
  let p = Machine.num_procs machine in
  let blevel = Levels.blevel g in
  let key1 t =
    match priority with
    | Least_blevel -> blevel.(t)
    | Greatest_blevel -> -.blevel.(t)
  in
  let sched = Schedule.create g machine in
  let cluster_proc = Array.make (Dsc.num_clusters clustering) (-1) in
  (* Ready tasks split by where they may run: one queue per processor for
     tasks of clusters mapped there, one queue for tasks of unmapped
     clusters. *)
  let mapped_ready = Array.init p (fun _ -> Flat_heap.create ~universe:n) in
  let unmapped_ready = Flat_heap.create ~universe:n in
  let procs = Flat_heap.create ~universe:p in
  for pr = 0 to p - 1 do
    Flat_heap.add procs ~elt:pr ~primary:0.0 ~secondary:0.0
  done;
  let enqueue t =
    let c = clustering.Dsc.cluster_of.(t) in
    let q =
      if cluster_proc.(c) >= 0 then mapped_ready.(cluster_proc.(c))
      else unmapped_ready
    in
    Flat_heap.add q ~elt:t ~primary:(key1 t) ~secondary:(float_of_int t)
  in
  List.iter enqueue (Taskgraph.entry_tasks g);
  let map_cluster c pr =
    cluster_proc.(c) <- pr;
    (* Migrate the cluster's currently-ready tasks to the processor's
       queue. *)
    List.iter
      (fun t ->
        if Flat_heap.mem unmapped_ready t then begin
          Flat_heap.remove unmapped_ready t;
          Flat_heap.add mapped_ready.(pr) ~elt:t ~primary:(key1 t)
            ~secondary:(float_of_int t)
        end)
      clustering.Dsc.clusters.(c)
  in
  let commit t pr =
    let c = clustering.Dsc.cluster_of.(t) in
    if cluster_proc.(c) < 0 then map_cluster c pr;
    Flat_heap.remove mapped_ready.(pr) t;
    (* (a no-op when the task came straight from the unmapped queue) *)
    Flat_heap.remove unmapped_ready t;
    Schedule.assign sched t ~proc:pr ~start:(Schedule.est sched t ~proc:pr);
    Flat_heap.update procs ~elt:pr ~primary:(Schedule.prt sched pr)
      ~secondary:0.0;
    Taskgraph.iter_succs g t (fun succ _ ->
        if Schedule.is_ready sched succ then enqueue succ)
  in
  (* Fallback when the idle-earliest processor has no candidates: take the
     best-priority ready task of any mapped cluster and run it at home.
     The key is (key1, task id); equal keys name the same task, which
     lives in exactly one queue, so the strict comparison is total. *)
  let fallback () =
    let best_t = ref (-1) and best_pr = ref (-1) in
    let best_k = ref 0.0 in
    Array.iteri
      (fun pr heap ->
        let t = Flat_heap.peek heap in
        if t >= 0 then begin
          let k = Flat_heap.primary heap t in
          if !best_t < 0 || k < !best_k || (k = !best_k && t < !best_t) then begin
            best_t := t;
            best_pr := pr;
            best_k := k
          end
        end)
      mapped_ready;
    if !best_t < 0 then assert false (* some ready task always exists mid-run *)
    else commit !best_t !best_pr
  in
  while not (Schedule.is_complete sched) do
    let pr = Flat_heap.peek procs in
    let tm = Flat_heap.peek mapped_ready.(pr) in
    let tu = Flat_heap.peek unmapped_ready in
    if tm < 0 && tu < 0 then fallback ()
    else if tm < 0 then commit tu pr
    else if tu < 0 then commit tm pr
    else if
      (* The earlier starter wins; the mapped task on a tie (it causes no
         new cluster mapping). *)
      Schedule.est sched tu ~proc:pr < Schedule.est sched tm ~proc:pr
    then commit tu pr
    else commit tm pr
  done;
  sched
