open! Flb_taskgraph
open! Flb_platform

(** HLFET — Highest Level First with Estimated Times (Adam, Chandy &
    Dickson's classic; extension beyond the paper's comparison set).

    Static-priority list scheduling by static level (bottom level
    counting computation only), largest first, placing each task on the
    processor with the earliest estimated start time. A useful "old
    default" baseline when studying what FLB's dynamic selection buys. *)

val run : ?probe:Flb_obs.Probe.t -> Taskgraph.t -> Machine.t -> Schedule.t

val run_into : ?probe:Flb_obs.Probe.t -> Schedule.t -> Schedule.t
(** Completes a partial schedule in place (and returns it); see
    {!Etf.run_into} for the seeded-schedule contract. *)

val schedule_length : Taskgraph.t -> Machine.t -> float
