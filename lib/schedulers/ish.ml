open! Flb_taskgraph
open! Flb_platform

let run_into ?(probe = Flb_obs.Probe.null) sched =
  let g = Schedule.graph sched in
  Flb_obs.Probe.phase_begin probe Flb_obs.Probe.Phase.Priority;
  let slevel = Levels.blevel_comp_only g in
  Flb_obs.Probe.phase_end probe Flb_obs.Probe.Phase.Priority;
  let select_proc sched t =
    Flb_obs.Probe.proc_queue_ops probe (Schedule.num_procs sched);
    List_common.earliest_proc_insertion sched t
  in
  List_common.run_into ~probe
    ~priority:(fun t -> -.slevel.(t))
    ~tie:float_of_int ~select_proc sched

let run ?probe g machine = run_into ?probe (Schedule.create g machine)

let schedule_length g machine = Schedule.makespan (run g machine)
