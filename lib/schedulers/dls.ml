open! Flb_taskgraph
open! Flb_platform
module Probe = Flb_obs.Probe

let run ?(probe = Probe.null) g machine =
  Probe.phase_begin probe Probe.Phase.Priority;
  let slevel = Levels.blevel_comp_only g in
  Probe.phase_end probe Probe.Phase.Priority;
  let sched = Schedule.create g machine in
  let ready = ref (Taskgraph.entry_tasks g) in
  List.iter (fun _ -> Probe.ready_added probe) !ready;
  for _ = 1 to Taskgraph.num_tasks g do
    Probe.iteration probe;
    Probe.phase_begin probe Probe.Phase.Selection;
    let best = ref None in
    List.iter
      (fun t ->
        for p = 0 to Schedule.num_procs sched - 1 do
          Probe.proc_queue_op probe;
          let est = Schedule.est sched t ~proc:p in
          let dl = slevel.(t) -. est in
          let better =
            match !best with
            | None -> true
            | Some (bt, _, _, best_dl) -> dl > best_dl || (dl = best_dl && t < bt)
          in
          if better then best := Some (t, p, est, dl)
        done)
      !ready;
    Probe.phase_end probe Probe.Phase.Selection;
    match !best with
    | None -> assert false (* a DAG always has a ready task while incomplete *)
    | Some (t, proc, est, _) ->
      Probe.phase_begin probe Probe.Phase.Assignment;
      Schedule.assign sched t ~proc ~start:est;
      Probe.phase_end probe Probe.Phase.Assignment;
      Probe.phase_begin probe Probe.Phase.Queue;
      Probe.task_queue_op probe;
      Probe.ready_removed probe;
      ready := List.filter (fun u -> u <> t) !ready;
      Array.iter
        (fun (succ, _) ->
          if Schedule.is_ready sched succ then begin
            Probe.task_queue_op probe;
            Probe.ready_added probe;
            ready := succ :: !ready
          end)
        (Taskgraph.succs g t);
      Probe.phase_end probe Probe.Phase.Queue
  done;
  sched

let schedule_length g machine = Schedule.makespan (run g machine)
