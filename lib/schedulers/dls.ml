open! Flb_taskgraph
open! Flb_platform
module Probe = Flb_obs.Probe

let run_into ?(probe = Probe.null) sched =
  let g = Schedule.graph sched in
  Probe.phase_begin probe Probe.Phase.Priority;
  let slevel = Levels.blevel_comp_only g in
  Probe.phase_end probe Probe.Phase.Priority;
  let n = Taskgraph.num_tasks g in
  let succ_off = Taskgraph.Csr.succ_offsets g in
  let succ_id = Taskgraph.Csr.succ_targets g in
  (* Unordered ready bag with swap-removal; the dynamic-level predicate
     (greatest DL, then lowest task id, then lowest processor id) is a
     strict total order, so bag order cannot affect the result. *)
  let ready = Array.make (max 1 n) 0 in
  let ready_len = ref 0 in
  let push t =
    ready.(!ready_len) <- t;
    incr ready_len
  in
  for t = 0 to n - 1 do
    if Schedule.is_ready sched t then begin
      Probe.ready_added probe;
      push t
    end
  done;
  let best_est = Array.make 1 0.0 in
  let best_dl = Array.make 1 0.0 in
  for _ = 1 to n - Schedule.num_scheduled sched do
    Probe.iteration probe;
    Probe.phase_begin probe Probe.Phase.Selection;
    let best_i = ref (-1) and best_t = ref (-1) and best_p = ref (-1) in
    for i = 0 to !ready_len - 1 do
      let t = ready.(i) in
      for p = 0 to Schedule.num_procs sched - 1 do
        if Schedule.proc_alive sched p then begin
          Probe.proc_queue_op probe;
          let est = Schedule.est sched t ~proc:p in
          let dl = slevel.(t) -. est in
          let better =
            !best_t < 0 || dl > best_dl.(0) || (dl = best_dl.(0) && t < !best_t)
          in
          if better then begin
            best_i := i;
            best_t := t;
            best_p := p;
            best_est.(0) <- est;
            best_dl.(0) <- dl
          end
        end
      done
    done;
    Probe.phase_end probe Probe.Phase.Selection;
    (* A DAG always has a ready task while incomplete. *)
    if !best_t < 0 then assert false;
    Probe.phase_begin probe Probe.Phase.Assignment;
    Schedule.assign sched !best_t ~proc:!best_p ~start:best_est.(0);
    Probe.phase_end probe Probe.Phase.Assignment;
    Probe.phase_begin probe Probe.Phase.Queue;
    Probe.task_queue_op probe;
    Probe.ready_removed probe;
    decr ready_len;
    ready.(!best_i) <- ready.(!ready_len);
    let t = !best_t in
    for i = succ_off.(t) to succ_off.(t + 1) - 1 do
      let succ = succ_id.(i) in
      if Schedule.is_ready sched succ then begin
        Probe.task_queue_op probe;
        Probe.ready_added probe;
        push succ
      end
    done;
    Probe.phase_end probe Probe.Phase.Queue
  done;
  sched

let run ?probe g machine = run_into ?probe (Schedule.create g machine)

let schedule_length g machine = Schedule.makespan (run g machine)
