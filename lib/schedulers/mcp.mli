open! Flb_taskgraph
open! Flb_platform
open! Flb_prelude

(** MCP — Modified Critical Path (Wu & Gajski, 1990).

    Tasks are prioritized by their latest possible start time (ALAP =
    critical-path length minus bottom level); the smallest ALAP goes
    first. Each popped ready task is placed on the processor that can
    start it the earliest.

    The FLB paper benchmarks the "lower-cost" MCP variant, which breaks
    ALAP ties randomly instead of comparing descendant ALAP lists; that
    is the default here ({!Random_tie} with a fixed seed). The original
    descendant-lexicographic rule and a deterministic id rule are also
    available, as is insertion-based placement (the original paper fills
    idle slots; the non-insertion variant is the one comparable with the
    other schedulers here). *)

type tie_rule =
  | Random_tie of int  (** seeded random priorities (the paper's choice) *)
  | Task_id_tie
  | Descendant_tie  (** original MCP: compare descendants' ALAP lists *)

val run :
  ?tie:tie_rule ->
  ?insertion:bool ->
  ?probe:Flb_obs.Probe.t ->
  Taskgraph.t ->
  Machine.t ->
  Schedule.t
(** [tie] defaults to [Random_tie 1], [insertion] to [false]. *)

val run_into :
  ?tie:tie_rule -> ?insertion:bool -> ?probe:Flb_obs.Probe.t -> Schedule.t -> Schedule.t
(** Completes a partial schedule in place (and returns it); see
    {!Etf.run_into} for the seeded-schedule contract. *)

val schedule_length :
  ?tie:tie_rule -> ?insertion:bool -> Taskgraph.t -> Machine.t -> float

val alap_order : ?tie:tie_rule -> Taskgraph.t -> Taskgraph.task array
(** The static priority order MCP uses (exposed for tests: it is always
    a topological order when computation costs are positive). *)
