open! Flb_taskgraph
open! Flb_platform
module Probe = Flb_obs.Probe

let run_into ?(probe = Probe.null) sched =
  let g = Schedule.graph sched in
  Probe.phase_begin probe Probe.Phase.Priority;
  let blevel = Levels.blevel g in
  Probe.phase_end probe Probe.Phase.Priority;
  let n = Taskgraph.num_tasks g in
  let num_procs = Schedule.num_procs sched in
  let succ_off = Taskgraph.Csr.succ_offsets g in
  let succ_id = Taskgraph.Csr.succ_targets g in
  (* The ready set as an unordered bag with swap-removal; ETF rescans it
     wholesale anyway, and its selection predicate below is a strict
     total order on tasks (EST, then greatest bottom level, then lowest
     id), so bag order cannot affect which task wins. *)
  let ready = Array.make (max 1 n) 0 in
  let ready_len = ref 0 in
  let push t =
    ready.(!ready_len) <- t;
    incr ready_len
  in
  for t = 0 to n - 1 do
    if Schedule.is_ready sched t then begin
      Probe.ready_added probe;
      push t
    end
  done;
  (* Float results of the sweep live in one-slot arrays, not refs: a
     [float ref] boxes on every store. *)
  let est_scratch = Array.make 1 0.0 in
  let best_est = Array.make 1 0.0 in
  for _ = 1 to n - Schedule.num_scheduled sched do
    Probe.iteration probe;
    Probe.phase_begin probe Probe.Phase.Selection;
    let best_i = ref (-1) and best_t = ref (-1) and best_p = ref (-1) in
    for i = 0 to !ready_len - 1 do
      let t = ready.(i) in
      (* The O(W P) scan: every (ready task, processor) pair is a
         tentative EST evaluation. *)
      Probe.proc_queue_ops probe num_procs;
      let proc = Schedule.min_est_into sched t ~dest:est_scratch in
      let est = est_scratch.(0) in
      let better =
        !best_t < 0
        || est < best_est.(0)
        || (est = best_est.(0)
           && (blevel.(t) > blevel.(!best_t)
              || (blevel.(t) = blevel.(!best_t) && t < !best_t)))
      in
      if better then begin
        best_i := i;
        best_t := t;
        best_p := proc;
        best_est.(0) <- est
      end
    done;
    Probe.phase_end probe Probe.Phase.Selection;
    (* A DAG always has a ready task while incomplete. *)
    if !best_t < 0 then assert false;
    Probe.phase_begin probe Probe.Phase.Assignment;
    Schedule.assign sched !best_t ~proc:!best_p ~start:best_est.(0);
    Probe.phase_end probe Probe.Phase.Assignment;
    Probe.phase_begin probe Probe.Phase.Queue;
    Probe.task_queue_op probe;
    Probe.ready_removed probe;
    decr ready_len;
    ready.(!best_i) <- ready.(!ready_len);
    let t = !best_t in
    for i = succ_off.(t) to succ_off.(t + 1) - 1 do
      let succ = succ_id.(i) in
      if Schedule.is_ready sched succ then begin
        Probe.task_queue_op probe;
        Probe.ready_added probe;
        push succ
      end
    done;
    Probe.phase_end probe Probe.Phase.Queue
  done;
  sched

let run ?probe g machine = run_into ?probe (Schedule.create g machine)

let schedule_length g machine = Schedule.makespan (run g machine)
