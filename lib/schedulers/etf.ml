open! Flb_taskgraph
open! Flb_platform
module Probe = Flb_obs.Probe

let run ?(probe = Probe.null) g machine =
  let sched = Schedule.create g machine in
  Probe.phase_begin probe Probe.Phase.Priority;
  let blevel = Levels.blevel g in
  Probe.phase_end probe Probe.Phase.Priority;
  let n = Taskgraph.num_tasks g in
  let num_procs = Schedule.num_procs sched in
  (* The ready set as an unordered bag; ETF rescans it wholesale anyway. *)
  let ready = ref (Taskgraph.entry_tasks g) in
  List.iter (fun _ -> Probe.ready_added probe) !ready;
  for _ = 1 to n do
    Probe.iteration probe;
    Probe.phase_begin probe Probe.Phase.Selection;
    let best = ref None in
    List.iter
      (fun t ->
        (* The O(W P) scan: every (ready task, processor) pair is a
           tentative EST evaluation. *)
        Probe.proc_queue_ops probe num_procs;
        let proc, est = Schedule.min_est_over_procs sched t in
        let better =
          match !best with
          | None -> true
          | Some (bt, _, best_est) ->
            est < best_est
            || (est = best_est
               && (blevel.(t) > blevel.(bt) || (blevel.(t) = blevel.(bt) && t < bt)))
        in
        if better then best := Some (t, proc, est))
      !ready;
    Probe.phase_end probe Probe.Phase.Selection;
    match !best with
    | None -> assert false (* a DAG always has a ready task while incomplete *)
    | Some (t, proc, est) ->
      Probe.phase_begin probe Probe.Phase.Assignment;
      Schedule.assign sched t ~proc ~start:est;
      Probe.phase_end probe Probe.Phase.Assignment;
      Probe.phase_begin probe Probe.Phase.Queue;
      Probe.task_queue_op probe;
      Probe.ready_removed probe;
      ready := List.filter (fun u -> u <> t) !ready;
      Array.iter
        (fun (succ, _) ->
          if Schedule.is_ready sched succ then begin
            Probe.task_queue_op probe;
            Probe.ready_added probe;
            ready := succ :: !ready
          end)
        (Taskgraph.succs g t);
      Probe.phase_end probe Probe.Phase.Queue
  done;
  sched

let schedule_length g machine = Schedule.makespan (run g machine)
