open! Flb_taskgraph
module Flat_heap = Flb_heap.Flat_heap
module Vec = Flb_prelude.Vec

type clustering = {
  cluster_of : int array;
  clusters : Taskgraph.task list array;
  tlevel : float array;
}

let cluster g =
  let n = Taskgraph.num_tasks g in
  let blevel = Levels.blevel g in
  let cluster_of = Array.make n (-1) in
  let tlevel = Array.make n 0.0 in
  let sequences : Taskgraph.task Vec.t Vec.t = Vec.create () in
  let cluster_ready : float Vec.t = Vec.create () in
  let new_cluster t start =
    let c = Vec.length sequences in
    Vec.push sequences (Vec.create ());
    Vec.push cluster_ready 0.0;
    cluster_of.(t) <- c;
    Vec.push (Vec.get sequences c) t;
    Vec.set cluster_ready c (start +. Taskgraph.comp g t);
    c
  in
  let append_to_cluster t c start =
    cluster_of.(t) <- c;
    Vec.push (Vec.get sequences c) t;
    Vec.set cluster_ready c (start +. Taskgraph.comp g t)
  in
  (* Free tasks (all predecessors examined), max tlevel + blevel first. *)
  let free = Flat_heap.create ~universe:n in
  let unexamined_preds = Array.init n (Taskgraph.in_degree g) in
  (* Arrival of a predecessor's data when the edge is kept (full cost). *)
  let arrival (p, w) = tlevel.(p) +. Taskgraph.comp g p +. w in
  let make_free t =
    let tl =
      Array.fold_left (fun acc e -> Float.max acc (arrival e)) 0.0 (Taskgraph.preds g t)
    in
    tlevel.(t) <- tl;
    Flat_heap.add free ~elt:t ~primary:(-.(tl +. blevel.(t)))
      ~secondary:(float_of_int t)
  in
  for t = 0 to n - 1 do
    if unexamined_preds.(t) = 0 then make_free t
  done;
  let rec loop () =
    let t = Flat_heap.pop free in
    if t >= 0 then begin
      let preds = Taskgraph.preds g t in
      let tl_own = tlevel.(t) in
      (* Dominant predecessor: the one whose message arrives last. *)
      let dominant =
        Array.fold_left
          (fun best e ->
            match best with
            | Some b when arrival b >= arrival e -> best
            | _ -> Some e)
          None preds
      in
      (match dominant with
      | None -> ignore (new_cluster t 0.0)
      | Some (dp, _) ->
        let c = cluster_of.(dp) in
        let merged_start =
          Array.fold_left
            (fun acc (p, w) ->
              let pay = if cluster_of.(p) = c then 0.0 else w in
              Float.max acc (tlevel.(p) +. Taskgraph.comp g p +. pay))
            (Vec.get cluster_ready c) preds
        in
        if merged_start <= tl_own then begin
          tlevel.(t) <- merged_start;
          append_to_cluster t c merged_start
        end
        else ignore (new_cluster t tl_own));
      Array.iter
        (fun (s, _) ->
          unexamined_preds.(s) <- unexamined_preds.(s) - 1;
          if unexamined_preds.(s) = 0 then make_free s)
        (Taskgraph.succs g t);
      loop ()
    end
  in
  loop ();
  {
    cluster_of;
    clusters = Vec.to_array (Vec.map Vec.to_list sequences);
    tlevel;
  }

let num_clusters c = Array.length c.clusters

let parallel_time g c =
  let span = ref 0.0 in
  Array.iteri
    (fun t tl -> span := Float.max !span (tl +. Taskgraph.comp g t))
    c.tlevel;
  !span

let validate g c =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let n = Taskgraph.num_tasks g in
  let seen = Array.make n false in
  Array.iteri
    (fun cid tasks ->
      let cursor = ref neg_infinity in
      List.iter
        (fun t ->
          if seen.(t) then err "task %d appears in two clusters" t;
          seen.(t) <- true;
          if c.cluster_of.(t) <> cid then err "task %d has wrong cluster id" t;
          if c.tlevel.(t) < !cursor -. 1e-9 then
            err "cluster %d overlaps at task %d" cid t;
          cursor := c.tlevel.(t) +. Taskgraph.comp g t)
        tasks)
    c.clusters;
  for t = 0 to n - 1 do
    if not seen.(t) then err "task %d missing from all clusters" t
  done;
  Taskgraph.iter_edges
    (fun u v w ->
      let pay = if c.cluster_of.(u) = c.cluster_of.(v) then 0.0 else w in
      if c.tlevel.(v) < c.tlevel.(u) +. Taskgraph.comp g u +. pay -. 1e-9 then
        err "edge %d->%d violated in clustering" u v)
    g;
  match !errors with [] -> Ok () | es -> Error (List.rev es)
