open! Flb_taskgraph
open! Flb_platform
module Flat_heap = Flb_heap.Flat_heap
module Probe = Flb_obs.Probe

let run_into ?(probe = Probe.null) ~priority ~tie ~select_proc sched =
  let g = Schedule.graph sched in
  let n = Taskgraph.num_tasks g in
  let ready = Flat_heap.create ~universe:n in
  let succ_off = Taskgraph.Csr.succ_offsets g in
  let succ_id = Taskgraph.Csr.succ_targets g in
  let enqueue t =
    Probe.task_queue_op probe;
    Probe.ready_added probe;
    Flat_heap.add ready ~elt:t ~primary:(priority t) ~secondary:(tie t)
  in
  (* On a fresh schedule this seeds exactly the entry tasks; on one
     seeded with frozen history it seeds the live frontier. *)
  Probe.phase_begin probe Probe.Phase.Queue;
  for t = 0 to n - 1 do
    if Schedule.is_ready sched t then enqueue t
  done;
  Probe.phase_end probe Probe.Phase.Queue;
  let rec loop () =
    let t = Flat_heap.pop ready in
    if t >= 0 then begin
      Probe.iteration probe;
      Probe.task_queue_op probe;
      Probe.ready_removed probe;
      Probe.phase_begin probe Probe.Phase.Selection;
      let proc, start = select_proc sched t in
      Probe.phase_end probe Probe.Phase.Selection;
      Probe.phase_begin probe Probe.Phase.Assignment;
      Schedule.assign sched t ~proc ~start;
      Probe.phase_end probe Probe.Phase.Assignment;
      Probe.phase_begin probe Probe.Phase.Queue;
      for i = succ_off.(t) to succ_off.(t + 1) - 1 do
        let succ = succ_id.(i) in
        if Schedule.is_ready sched succ then enqueue succ
      done;
      Probe.phase_end probe Probe.Phase.Queue;
      loop ()
    end
  in
  loop ();
  sched

let run ?probe ~priority ~tie ~select_proc g machine =
  run_into ?probe ~priority ~tie ~select_proc (Schedule.create g machine)

let earliest_proc sched t = Schedule.min_est_over_procs sched t

let earliest_proc_insertion sched t =
  let g = Schedule.graph sched in
  let comp = Taskgraph.comp g t in
  let best = ref (-1, Float.infinity) in
  for p = 0 to Schedule.num_procs sched - 1 do
    if Schedule.proc_alive sched p then begin
    let emt = Schedule.emt sched t ~proc:p in
    (* Scan the processor's timeline (kept sorted by start since every
       assignment appends at the current end or in a gap) for the first
       gap after [emt] that fits the task; fall back to the end. *)
    let tasks =
      List.sort
        (fun a b -> Float.compare (Schedule.start_time sched a) (Schedule.start_time sched b))
        (Schedule.tasks_on sched p)
    in
    let rec find_slot cursor = function
      | [] -> Float.max cursor emt
      | u :: rest ->
        let gap_start = Float.max cursor emt in
        if gap_start +. comp <= Schedule.start_time sched u then gap_start
        else find_slot (Float.max cursor (Schedule.finish_time sched u)) rest
    in
    let start = find_slot 0.0 tasks in
    if start < snd !best then best := (p, start)
    end
  done;
  !best

let two_proc_rule sched t =
  let idle_first =
    let best = ref (-1) in
    for p = 0 to Schedule.num_procs sched - 1 do
      if
        Schedule.proc_alive sched p
        && (!best < 0 || Schedule.prt sched p < Schedule.prt sched !best)
      then best := p
    done;
    !best
  in
  (* A dead enabling processor cannot take new work: fall back to the
     idle-earliest live processor alone. *)
  let candidates =
    match Schedule.enabling_proc sched t with
    | Some ep when Schedule.proc_alive sched ep && ep <> idle_first -> [ ep; idle_first ]
    | Some ep when Schedule.proc_alive sched ep -> [ ep ]
    | _ -> [ idle_first ]
  in
  List.fold_left
    (fun (bp, bs) p ->
      let s = Schedule.est sched t ~proc:p in
      if s < bs then (p, s) else (bp, bs))
    (List.hd candidates, Schedule.est sched t ~proc:(List.hd candidates))
    (List.tl candidates)
