open! Flb_taskgraph
open! Flb_platform

(** Shared skeleton for static-priority list schedulers.

    MCP, FCP and HLFET all follow the same loop: keep the ready tasks in
    a priority queue under a statically computed key, repeatedly pop the
    highest-priority ready task and hand it to a processor-selection
    rule. Only the key and the rule differ. *)

val run :
  ?probe:Flb_obs.Probe.t ->
  priority:(Taskgraph.task -> float) ->
  tie:(Taskgraph.task -> float) ->
  select_proc:(Schedule.t -> Taskgraph.task -> int * float) ->
  Taskgraph.t ->
  Machine.t ->
  Schedule.t
(** [run ~priority ~tie ~select_proc g m] list-schedules [g]: while
    tasks remain, pop the ready task with the smallest
    [(priority, tie, id)] key — lexicographic, minimum first, held in a
    {!Flb_heap.Flat_heap} so the queue never allocates — and assign it
    to the [(processor, start)] returned by [select_proc] (which sees
    the current partial schedule).

    [probe] (default {!Flb_obs.Probe.null}) receives iterations,
    ready-queue operations, ready-set peaks and per-phase times; callers
    should additionally count the cost of their [select_proc] rule (e.g.
    one processor-queue op per tentative EST evaluation) and wrap their
    static priority computation in the [Priority] phase. *)

val run_into :
  ?probe:Flb_obs.Probe.t ->
  priority:(Taskgraph.task -> float) ->
  tie:(Taskgraph.task -> float) ->
  select_proc:(Schedule.t -> Taskgraph.task -> int * float) ->
  Schedule.t ->
  Schedule.t
(** The fixed-history entry point behind {!run}: completes an existing
    (possibly partially filled) schedule in place and returns it. The
    ready heap is seeded from {!Schedule.is_ready} — on a schedule
    carrying frozen history this is exactly the unexecuted frontier —
    and [select_proc] sees the seeded processor ready times; masked
    processors are excluded by the {!Schedule} primitives themselves. *)

val earliest_proc : Schedule.t -> Taskgraph.task -> int * float
(** The non-insertion rule shared by most list schedulers: the
    processor with the smallest EST (exhaustive scan, lowest id on
    ties), started at that EST. *)

val earliest_proc_insertion : Schedule.t -> Taskgraph.task -> int * float
(** Insertion variant: may place the task in an idle gap between two
    tasks already on a processor, provided the gap fits it after its
    messages arrive. *)

val two_proc_rule : Schedule.t -> Taskgraph.task -> int * float
(** The FCP/FLB lemma's O(log P)-information rule: consider only the
    task's enabling processor and the processor that becomes idle the
    earliest; return whichever gives the smaller EST (the enabling
    processor on ties). The scan for the idle-earliest processor here is
    O(P) for simplicity; {!Fcp} keeps it in a heap. *)
