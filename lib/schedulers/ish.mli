open! Flb_taskgraph
open! Flb_platform

(** ISH — Insertion Scheduling Heuristic (Kruatrachue & Lewis; extension
    beyond the paper's comparison set).

    HLFET's static-level list scheduling, but each task may be inserted
    into a communication-induced idle slot of a processor's timeline
    instead of only appended after its last task. The classic cheap
    improvement over pure end-scheduling. *)

val run : ?probe:Flb_obs.Probe.t -> Taskgraph.t -> Machine.t -> Schedule.t

val run_into : ?probe:Flb_obs.Probe.t -> Schedule.t -> Schedule.t
(** Completes a partial schedule in place (and returns it); see
    {!Etf.run_into} for the seeded-schedule contract. *)

val schedule_length : Taskgraph.t -> Machine.t -> float
