open! Flb_taskgraph
open! Flb_platform

(** ETF — Earliest Task First (Hwang, Chow, Anger & Lee, 1989).

    At each iteration, every ready task is tentatively scheduled on
    every processor; the (task, processor) pair with the minimum
    estimated start time wins. This is the selection criterion FLB
    reproduces at exponentially lower cost; ETF's complexity is
    O(W (E + V) P).

    Ties on the start time are broken by the larger static bottom level
    (then the smaller task id, then the smaller processor id), which is
    the "static priority" rule of the original paper. FLB breaks the
    same ties dynamically, which is why the two algorithms can diverge
    on tied graphs while always choosing starts of equal value. *)

val run : ?probe:Flb_obs.Probe.t -> Taskgraph.t -> Machine.t -> Schedule.t
(** [probe] counts one processor-queue op per tentative (task, processor)
    EST evaluation — the unit of ETF's O(W (E + V) P) scan. *)

val run_into : ?probe:Flb_obs.Probe.t -> Schedule.t -> Schedule.t
(** Completes a partial schedule in place (and returns it): tasks
    already placed — e.g. frozen history from {!Schedule.assign_frozen}
    — are kept, masked processors receive no work. [run g m] is
    [run_into (Schedule.create g m)]. *)

val schedule_length : Taskgraph.t -> Machine.t -> float
