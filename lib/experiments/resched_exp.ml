open! Flb_taskgraph
module Runtime = Flb_runtime
module Metrics = Flb_obs.Metrics

type row = {
  workload : string;
  tasks : int;
  domains : int;
  fault : string;
  predicted_units : float;
  none_completed : int;
  steal_units : float;
  resched_units : float;
  resched_over_steal : float;
  rescheds : int;
  real_resched_units : float;
  resched_latency_us : float;
}

let run ?(algorithm = Registry.flb) ?suite ?(ccr = 0.2)
    ?(domains_list = [ 2; 4; 8 ]) ?(unit_ns = 20_000.0) ?(kill_frac = 0.25)
    ?(resched_algo = "FLB") () =
  let suite =
    match suite with Some s -> s | None -> Workload_suite.fig4_suite ~tasks:300 ()
  in
  List.concat_map
    (fun (w : Workload_suite.workload) ->
      let graph = Workload_suite.instance w ~ccr ~seed:1 in
      List.map
        (fun domains ->
          let machine = Flb_platform.Machine.clique ~num_procs:domains in
          let sched = algorithm.Registry.run graph machine in
          let predicted = Flb_platform.Schedule.makespan sched in
          (* Kill the last domain a quarter of the way into the
             predicted run: late enough that real history exists, early
             enough that most of the frontier is still open to
             replacement. *)
          let victim = domains - 1 in
          let at = kill_frac *. predicted in
          let faults = [ Runtime.Fault.Kill { domain = victim; at } ] in
          let vc recover = Runtime.Virtual_clock.run_static_faulty ~faults ~recover sched in
          let none = vc Runtime.Engine.No_recovery in
          let steal = vc Runtime.Engine.Steal_queues in
          let resched = vc (Runtime.Engine.Resched resched_algo) in
          (* The same fault on the real engine, for the recovery latency
             the virtual clock cannot measure. *)
          let reg = Metrics.create () in
          let config =
            {
              Runtime.Engine.default_config with
              domains;
              unit_ns;
              faults;
              recover = Runtime.Engine.Resched resched_algo;
              metrics = Some reg;
            }
          in
          let real = Runtime.Static.run ~config sched in
          let latency_us =
            let h = Metrics.histogram reg "rt_resched_latency_ns" in
            if Metrics.Histogram.count h = 0 then Float.nan
            else
              Metrics.Histogram.sum h
              /. float_of_int (Metrics.Histogram.count h)
              /. 1e3
          in
          {
            workload = w.Workload_suite.name;
            tasks = Taskgraph.num_tasks graph;
            domains;
            fault = Runtime.Fault.to_string faults;
            predicted_units = predicted;
            none_completed = none.Runtime.Virtual_clock.completed;
            steal_units = steal.Runtime.Virtual_clock.makespan;
            resched_units = resched.Runtime.Virtual_clock.makespan;
            resched_over_steal =
              resched.Runtime.Virtual_clock.makespan
              /. steal.Runtime.Virtual_clock.makespan;
            rescheds = resched.Runtime.Virtual_clock.rescheds;
            real_resched_units = real.Runtime.Engine.real_units;
            resched_latency_us = latency_us;
          })
        domains_list)
    suite

let render rows =
  let table =
    Table.create
      ~header:
        [
          "workload";
          "V";
          "domains";
          "fault";
          "predicted";
          "none done";
          "steal";
          "resched";
          "resched/steal";
          "events";
          "real resched";
          "latency µs";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.workload;
          string_of_int r.tasks;
          string_of_int r.domains;
          r.fault;
          Printf.sprintf "%.1f" r.predicted_units;
          Printf.sprintf "%d/%d" r.none_completed r.tasks;
          Printf.sprintf "%.1f" r.steal_units;
          Printf.sprintf "%.1f" r.resched_units;
          Printf.sprintf "%.3f" r.resched_over_steal;
          string_of_int r.rescheds;
          Printf.sprintf "%.1f" r.real_resched_units;
          Printf.sprintf "%.1f" r.resched_latency_us;
        ])
    rows;
  Table.render table

let to_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "workload,tasks,domains,fault,predicted_units,none_completed,steal_units,resched_units,resched_over_steal,rescheds,real_resched_units,resched_latency_us\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%s,%g,%d,%g,%g,%g,%d,%g,%g\n" r.workload r.tasks
           r.domains r.fault r.predicted_units r.none_completed r.steal_units
           r.resched_units r.resched_over_steal r.rescheds r.real_resched_units
           r.resched_latency_us))
    rows;
  Buffer.contents buf

(* Inner JSON array (no surrounding object), so Runtime_real_exp can
   embed it as the "resched" field of BENCH_runtime.json. *)
let rows_json rows =
  (* Wall-clock-derived fields can be nan (e.g. the kill landed after
     the real run already finished); JSON has no nan, so emit null. *)
  let num x = if Float.is_finite x then Printf.sprintf "%g" x else "null" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"tasks\": %d, \"domains\": %d, \
            \"fault\": \"%s\", \"predicted_units\": %g, \"none_completed\": %d, \
            \"steal_units\": %g, \"resched_units\": %g, \"resched_over_steal\": \
            %g, \"rescheds\": %d, \"real_resched_units\": %s, \
            \"resched_latency_us\": %s}%s\n"
           (Regress.Json.escape r.workload)
           r.tasks r.domains
           (Regress.Json.escape r.fault)
           r.predicted_units r.none_completed r.steal_units r.resched_units
           r.resched_over_steal r.rescheds
           (num r.real_resched_units)
           (num r.resched_latency_us)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]";
  Buffer.contents buf
