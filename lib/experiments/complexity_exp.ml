open! Flb_taskgraph
open! Flb_platform

type cell = {
  tasks : int;
  edges : int;
  procs : int;
  algorithm : string;
  seconds : float;
  ns_per_task : float;
  task_queue_ops_per_task : float;
  peak_ready : int;
}

let default_algorithms = [ Registry.flb; Registry.fcp; Registry.etf ]

let time_best ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Sys.time () in
    f ();
    let dt = Sys.time () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let run ?(algorithms = default_algorithms)
    ?(sizes = [ 250; 500; 1000; 2000; 4000 ]) ?(procs = [ 4; 32 ]) ?(repeats = 3)
    () =
  List.concat_map
    (fun tasks ->
      let workload = Workload_suite.stencil ~tasks () in
      let g = Workload_suite.instance workload ~ccr:1.0 ~seed:1 in
      let v = Taskgraph.num_tasks g in
      List.concat_map
        (fun p ->
          let machine = Machine.clique ~num_procs:p in
          List.map
            (fun (algo : Registry.t) ->
              let seconds =
                time_best ~repeats (fun () -> ignore (algo.run g machine))
              in
              (* Counting probe on a separate, untimed run so the probe
                 cannot perturb the timing above. *)
              let _, report = Registry.run_with_report ~timed:false algo g machine in
              let ops, peak =
                ( float_of_int report.Flb_obs.Probe.task_queue_ops /. float_of_int v,
                  report.Flb_obs.Probe.peak_ready )
              in
              {
                tasks = v;
                edges = Taskgraph.num_edges g;
                procs = p;
                algorithm = algo.name;
                seconds;
                ns_per_task = seconds *. 1e9 /. float_of_int v;
                task_queue_ops_per_task = ops;
                peak_ready = peak;
              })
            algorithms)
        procs)
    sizes

let render cells =
  let algorithms =
    List.fold_left
      (fun acc c -> if List.mem c.algorithm acc then acc else acc @ [ c.algorithm ])
      [] cells
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Scaling with V (Stencil graphs, CCR 1.0)\n";
  let header =
    [ "V"; "E"; "P" ]
    @ List.map (fun a -> a ^ " [ns/task]") algorithms
    @ List.map (fun a -> a ^ " [ops/task]") algorithms
    @ [ "peak ready" ]
  in
  let table = Table.create ~header in
  let keys =
    List.sort_uniq compare (List.map (fun c -> (c.tasks, c.procs)) cells)
  in
  List.iter
    (fun (v, p) ->
      let row_cells = List.filter (fun c -> c.tasks = v && c.procs = p) cells in
      let edges =
        match row_cells with c :: _ -> c.edges | [] -> 0
      in
      let per_algo =
        List.map
          (fun a ->
            match List.find_opt (fun c -> c.algorithm = a) row_cells with
            | Some c -> Printf.sprintf "%.0f" c.ns_per_task
            | None -> "-")
          algorithms
      in
      let per_algo_ops =
        List.map
          (fun a ->
            match List.find_opt (fun c -> c.algorithm = a) row_cells with
            | Some c when c.task_queue_ops_per_task > 0.0 ->
              Printf.sprintf "%.2f" c.task_queue_ops_per_task
            | Some _ | None -> "-")
          algorithms
      in
      let peak =
        List.fold_left (fun acc c -> max acc c.peak_ready) 0 row_cells
      in
      Table.add_row table
        ([ string_of_int v; string_of_int edges; string_of_int p ]
        @ per_algo @ per_algo_ops
        @ [ (if peak > 0 then string_of_int peak else "-") ]))
    keys;
  Buffer.add_string buf (Table.render table);
  Buffer.contents buf

let to_csv cells =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "tasks,edges,procs,algorithm,seconds,ns_per_task,task_queue_ops_per_task,peak_ready\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%s,%.9f,%.1f,%.3f,%d\n" c.tasks c.edges c.procs
           c.algorithm c.seconds c.ns_per_task c.task_queue_ops_per_task
           c.peak_ready))
    cells;
  Buffer.contents buf
