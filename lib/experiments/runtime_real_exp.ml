open! Flb_taskgraph
module Runtime = Flb_runtime

type row = {
  workload : string;
  tasks : int;
  domains : int;
  predicted_units : float;
  static_units : float;
  steal_units : float;
  static_ratio : float;
  steal_vs_static : float;
  steals : int;
}

let run ?(algorithm = Registry.flb) ?suite ?(ccr = 0.2)
    ?(domains_list = [ 2; 4; 8 ]) ?(unit_ns = 20_000.0) () =
  let suite =
    match suite with Some s -> s | None -> Workload_suite.fig4_suite ~tasks:300 ()
  in
  List.concat_map
    (fun (w : Workload_suite.workload) ->
      let graph = Workload_suite.instance w ~ccr ~seed:1 in
      List.map
        (fun domains ->
          let machine = Flb_platform.Machine.clique ~num_procs:domains in
          let sched = algorithm.Registry.run graph machine in
          let config = { Runtime.Engine.default_config with domains; unit_ns } in
          let st = Runtime.Static.run ~config sched in
          let dy = Runtime.Steal.run ~config graph in
          {
            workload = w.Workload_suite.name;
            tasks = Taskgraph.num_tasks graph;
            domains;
            predicted_units = st.Runtime.Engine.predicted_units;
            static_units = st.Runtime.Engine.real_units;
            steal_units = dy.Runtime.Engine.real_units;
            static_ratio = Runtime.Engine.ratio st;
            steal_vs_static =
              dy.Runtime.Engine.real_units /. st.Runtime.Engine.real_units;
            steals = dy.Runtime.Engine.steals;
          })
        domains_list)
    suite

let render rows =
  let table =
    Table.create
      ~header:
        [
          "workload";
          "V";
          "domains";
          "predicted";
          "static";
          "steal";
          "static/pred";
          "steal/static";
          "steals";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.workload;
          string_of_int r.tasks;
          string_of_int r.domains;
          Printf.sprintf "%.1f" r.predicted_units;
          Printf.sprintf "%.1f" r.static_units;
          Printf.sprintf "%.1f" r.steal_units;
          Printf.sprintf "%.3f" r.static_ratio;
          Printf.sprintf "%.3f" r.steal_vs_static;
          string_of_int r.steals;
        ])
    rows;
  Table.render table

let to_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "workload,tasks,domains,predicted_units,static_units,steal_units,static_ratio,steal_vs_static,steals\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%g,%g,%g,%g,%g,%d\n" r.workload r.tasks r.domains
           r.predicted_units r.static_units r.steal_units r.static_ratio
           r.steal_vs_static r.steals))
    rows;
  Buffer.contents buf

let to_json ?resched rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  (* Schema 2 = schema 1 plus a "resched" array (Resched_exp rows);
     readers of either version parse "rows" identically. *)
  Buffer.add_string buf
    (match resched with
    | None -> "  \"schema\": \"flb-runtime/1\",\n"
    | Some _ -> "  \"schema\": \"flb-runtime/2\",\n");
  (match resched with
  | None -> ()
  | Some rj -> Buffer.add_string buf (Printf.sprintf "  \"resched\": %s,\n" rj));
  Buffer.add_string buf "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"tasks\": %d, \"domains\": %d, \
            \"predicted_units\": %g, \"static_units\": %g, \"steal_units\": %g, \
            \"static_ratio\": %g, \"steal_vs_static\": %g, \"steals\": %d}%s\n"
           (Regress.Json.escape r.workload)
           r.tasks r.domains r.predicted_units r.static_units r.steal_units
           r.static_ratio r.steal_vs_static r.steals
           (if i = List.length rows - 1 then "" else ","))
      )
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let of_json text =
  let open Regress.Json in
  match parse_exn text with
  | exception Parse_error msg -> Error msg
  | json -> (
    match
      let schema = str (field "schema" json) in
      if schema <> "flb-runtime/1" && schema <> "flb-runtime/2" then
        raise (Parse_error (Printf.sprintf "unknown schema %S" schema));
      match field "rows" json with
      | Arr items ->
        List.map
          (fun item ->
            {
              workload = str (field "workload" item);
              tasks = int_of_float (num (field "tasks" item));
              domains = int_of_float (num (field "domains" item));
              predicted_units = num (field "predicted_units" item);
              static_units = num (field "static_units" item);
              steal_units = num (field "steal_units" item);
              static_ratio = num (field "static_ratio" item);
              steal_vs_static = num (field "steal_vs_static" item);
              steals = int_of_float (num (field "steals" item));
            })
          items
      | _ -> raise (Parse_error "rows must be an array")
    with
    | exception Parse_error msg -> Error msg
    | rows -> Ok rows)
