open! Flb_taskgraph
module Runtime = Flb_runtime

type row = {
  workload : string;
  tasks : int;
  domains : int;
  predicted_units : float;
  static_units : float;
  steal_units : float;
  affinity_units : float;
  static_ratio : float;
  steal_vs_static : float;
  affinity_vs_steal : float;
  hint_hit_rate : float;
  steals : int;
}

let run ?(algorithm = Registry.flb) ?suite ?(ccr = 0.2)
    ?(domains_list = [ 2; 4; 8 ]) ?(unit_ns = 20_000.0) () =
  let suite =
    match suite with Some s -> s | None -> Workload_suite.fig4_suite ~tasks:300 ()
  in
  List.concat_map
    (fun (w : Workload_suite.workload) ->
      let graph = Workload_suite.instance w ~ccr ~seed:1 in
      List.map
        (fun domains ->
          let machine = Flb_platform.Machine.clique ~num_procs:domains in
          let sched = algorithm.Registry.run graph machine in
          let config = { Runtime.Engine.default_config with domains; unit_ns } in
          let st = Runtime.Static.run ~config sched in
          let dy = Runtime.Steal.run ~config graph in
          let af = Runtime.Affinity.run ~config sched in
          {
            workload = w.Workload_suite.name;
            tasks = Taskgraph.num_tasks graph;
            domains;
            predicted_units = st.Runtime.Engine.predicted_units;
            static_units = st.Runtime.Engine.real_units;
            steal_units = dy.Runtime.Engine.real_units;
            affinity_units = af.Runtime.Engine.real_units;
            static_ratio = Runtime.Engine.ratio st;
            steal_vs_static =
              dy.Runtime.Engine.real_units /. st.Runtime.Engine.real_units;
            affinity_vs_steal =
              af.Runtime.Engine.real_units /. dy.Runtime.Engine.real_units;
            hint_hit_rate = Runtime.Engine.hint_hit_rate af;
            steals = dy.Runtime.Engine.steals;
          })
        domains_list)
    suite

let render rows =
  let table =
    Table.create
      ~header:
        [
          "workload";
          "V";
          "domains";
          "predicted";
          "static";
          "steal";
          "affinity";
          "static/pred";
          "steal/static";
          "affinity/steal";
          "hint rate";
          "steals";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.workload;
          string_of_int r.tasks;
          string_of_int r.domains;
          Printf.sprintf "%.1f" r.predicted_units;
          Printf.sprintf "%.1f" r.static_units;
          Printf.sprintf "%.1f" r.steal_units;
          Printf.sprintf "%.1f" r.affinity_units;
          Printf.sprintf "%.3f" r.static_ratio;
          Printf.sprintf "%.3f" r.steal_vs_static;
          Printf.sprintf "%.3f" r.affinity_vs_steal;
          Printf.sprintf "%.2f" r.hint_hit_rate;
          string_of_int r.steals;
        ])
    rows;
  Table.render table

let to_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "workload,tasks,domains,predicted_units,static_units,steal_units,affinity_units,static_ratio,steal_vs_static,affinity_vs_steal,hint_hit_rate,steals\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%g,%g,%g,%g,%g,%g,%g,%g,%d\n" r.workload r.tasks
           r.domains r.predicted_units r.static_units r.steal_units
           r.affinity_units r.static_ratio r.steal_vs_static r.affinity_vs_steal
           r.hint_hit_rate r.steals))
    rows;
  Buffer.contents buf

(* Non-finite ratios (a zero-division, an empty hint count) become JSON
   null, as in [Resched_exp.rows_json]. *)
let json_num f = if Float.is_finite f then Printf.sprintf "%g" f else "null"

let to_json ?resched rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  (* Schema 3 = schema 2 plus the affinity-engine columns
     (affinity_units, affinity_vs_steal, hint_hit_rate); the "resched"
     array stays optional. Readers of any version parse "rows"
     identically, with the affinity columns defaulting to nan. *)
  Buffer.add_string buf "  \"schema\": \"flb-runtime/3\",\n";
  (match resched with
  | None -> ()
  | Some rj -> Buffer.add_string buf (Printf.sprintf "  \"resched\": %s,\n" rj));
  Buffer.add_string buf "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"tasks\": %d, \"domains\": %d, \
            \"predicted_units\": %g, \"static_units\": %g, \"steal_units\": %g, \
            \"affinity_units\": %s, \"static_ratio\": %g, \"steal_vs_static\": \
            %g, \"affinity_vs_steal\": %s, \"hint_hit_rate\": %s, \"steals\": \
            %d}%s\n"
           (Regress.Json.escape r.workload)
           r.tasks r.domains r.predicted_units r.static_units r.steal_units
           (json_num r.affinity_units)
           r.static_ratio r.steal_vs_static
           (json_num r.affinity_vs_steal)
           (json_num r.hint_hit_rate) r.steals
           (if i = List.length rows - 1 then "" else ","))
      )
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let of_json text =
  let open Regress.Json in
  (* Columns added by later schema versions: absent (or null) in files
     written by earlier ones. *)
  let opt_num item name =
    match field name item with
    | exception Parse_error _ -> Float.nan
    | Null -> Float.nan
    | v -> num v
  in
  match parse_exn text with
  | exception Parse_error msg -> Error msg
  | json -> (
    match
      let schema = str (field "schema" json) in
      if
        schema <> "flb-runtime/1" && schema <> "flb-runtime/2"
        && schema <> "flb-runtime/3"
      then raise (Parse_error (Printf.sprintf "unknown schema %S" schema));
      match field "rows" json with
      | Arr items ->
        List.map
          (fun item ->
            {
              workload = str (field "workload" item);
              tasks = int_of_float (num (field "tasks" item));
              domains = int_of_float (num (field "domains" item));
              predicted_units = num (field "predicted_units" item);
              static_units = num (field "static_units" item);
              steal_units = num (field "steal_units" item);
              affinity_units = opt_num item "affinity_units";
              static_ratio = num (field "static_ratio" item);
              steal_vs_static = num (field "steal_vs_static" item);
              affinity_vs_steal = opt_num item "affinity_vs_steal";
              hint_hit_rate = opt_num item "hint_hit_rate";
              steals = int_of_float (num (field "steals" item));
            })
          items
      | _ -> raise (Parse_error "rows must be an array")
    with
    | exception Parse_error msg -> Error msg
    | rows -> Ok rows)
