open! Flb_taskgraph
open! Flb_platform
module Probe = Flb_obs.Probe

type t = {
  name : string;
  describe : string;
  run : Taskgraph.t -> Machine.t -> Schedule.t;
  probed : Probe.t -> Taskgraph.t -> Machine.t -> Schedule.t;
}

(* Clustering-based and naive algorithms don't report through the probe
   yet; they still run (and time) under it. *)
let unprobed run _probe g m = run g m

let flb =
  {
    name = "FLB";
    describe = "Fast Load Balancing (this paper); O(V(logW + logP) + E)";
    run = (fun g m -> Flb_core.Flb.run g m);
    probed = (fun probe g m -> Flb_core.Flb.run ~probe g m);
  }

let etf =
  {
    name = "ETF";
    describe = "Earliest Task First; O(W(E+V)P)";
    run = Flb_schedulers.Etf.run;
    probed = (fun probe g m -> Flb_schedulers.Etf.run ~probe g m);
  }

let mcp =
  {
    name = "MCP";
    describe = "Modified Critical Path, random tie-break; O(VlogV + (E+V)P)";
    run = (fun g m -> Flb_schedulers.Mcp.run g m);
    probed = (fun probe g m -> Flb_schedulers.Mcp.run ~probe g m);
  }

let fcp =
  {
    name = "FCP";
    describe = "Fast Critical Path; O(VlogP + E)";
    run = Flb_schedulers.Fcp.run;
    probed = (fun probe g m -> Flb_schedulers.Fcp.run ~probe g m);
  }

let dsc_llb =
  {
    name = "DSC-LLB";
    describe = "DSC clustering + LLB mapping; O((E+V)logV)";
    run = (fun g m -> Flb_schedulers.Dsc_llb.run g m);
    probed = unprobed (fun g m -> Flb_schedulers.Dsc_llb.run g m);
  }

let paper_set = [ mcp; etf; dsc_llb; fcp; flb ]

let extended_set =
  paper_set
  @ [
      {
        name = "HLFET";
        describe = "Highest Level First with Estimated Times (extension)";
        run = Flb_schedulers.Hlfet.run;
        probed = (fun probe g m -> Flb_schedulers.Hlfet.run ~probe g m);
      };
      {
        name = "DLS";
        describe = "Dynamic Level Scheduling (extension)";
        run = Flb_schedulers.Dls.run;
        probed = (fun probe g m -> Flb_schedulers.Dls.run ~probe g m);
      };
      {
        name = "ISH";
        describe = "Insertion Scheduling Heuristic (extension)";
        run = Flb_schedulers.Ish.run;
        probed = (fun probe g m -> Flb_schedulers.Ish.run ~probe g m);
      };
      {
        name = "SARKAR-LLB";
        describe = "Sarkar internalization clustering + LLB mapping (extension)";
        run =
          (fun g m -> Flb_schedulers.Llb.run g m (Flb_schedulers.Sarkar.cluster g));
        probed =
          unprobed (fun g m ->
              Flb_schedulers.Llb.run g m (Flb_schedulers.Sarkar.cluster g));
      };
      {
        name = "RR";
        describe = "round-robin placement (naive baseline)";
        run = Flb_schedulers.Naive.round_robin;
        probed = unprobed Flb_schedulers.Naive.round_robin;
      };
    ]

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun a -> String.lowercase_ascii a.name = lower) extended_set

let names algos = List.map (fun a -> a.name) algos

let run_with_report ?tracer ?(timed = true) algo g machine =
  let probe = Probe.create ?tracer ~timed algo.name in
  Probe.start_run probe;
  let sched = algo.probed probe g machine in
  Probe.finish_run probe;
  (sched, Probe.report probe)
