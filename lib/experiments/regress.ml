open! Flb_taskgraph

type entry = {
  scheduler : string;
  workload : string;
  tasks : int;
  procs : int;
  ccr : float;
  ns_per_task : float;
  bytes_per_task : float;
}

type report = { mode : string; entries : entry list }

let suite_procs = 8

let suite_ccr = 1.0

let measure ~repeats (algo : Registry.t) graph machine =
  let v = max 1 (Taskgraph.num_tasks graph) in
  (* Warm-up run: faults in lazily materialized views so the measured
     runs see only steady-state behaviour. *)
  ignore (algo.Registry.run graph machine);
  (* Both metrics are best-of-N. Time for the usual scheduling-noise
     reasons; allocation because [Gc.allocated_bytes] deltas sporadically
     include a large runtime-internal lump (~900 KB on OCaml 5.1) that is
     unrelated to the scheduler under test. The mutator's own allocation
     is deterministic, so the minimum over repeats is the clean figure. *)
  let best_dt = ref Float.infinity in
  let best_bytes = ref Float.infinity in
  for _ = 1 to repeats do
    let bytes_before = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    ignore (algo.Registry.run graph machine);
    let dt = Unix.gettimeofday () -. t0 in
    let bytes = Gc.allocated_bytes () -. bytes_before in
    if dt < !best_dt then best_dt := dt;
    if bytes < !best_bytes then best_bytes := bytes
  done;
  let ns_per_task = !best_dt *. 1e9 /. float_of_int v in
  let bytes_per_task = !best_bytes /. float_of_int v in
  (ns_per_task, bytes_per_task)

let run ?(quick = false) ?repeats () =
  let repeats = match repeats with Some r -> r | None -> if quick then 3 else 5 in
  let tasks = if quick then 400 else 2000 in
  let machine = Flb_platform.Machine.clique ~num_procs:suite_procs in
  let entries =
    List.concat_map
      (fun workload ->
        let graph = Workload_suite.instance workload ~ccr:suite_ccr ~seed:1 in
        List.map
          (fun (algo : Registry.t) ->
            let ns_per_task, bytes_per_task = measure ~repeats algo graph machine in
            {
              scheduler = algo.Registry.name;
              workload = workload.Workload_suite.name;
              tasks = Taskgraph.num_tasks graph;
              procs = suite_procs;
              ccr = suite_ccr;
              ns_per_task;
              bytes_per_task;
            })
          Registry.paper_set)
      (Workload_suite.fig4_suite ~tasks ())
  in
  { mode = (if quick then "quick" else "full"); entries }

let run_baseline ?repeats () =
  (* The committed baseline carries both suite sizes because bytes/task
     is not size-independent: schedulers with width-dependent per-task
     state (ALAP sets, cluster queues) allocate measurably more per task
     at V≈2000 than at V≈400. The CI smoke run uses the quick suite and
     must diff against quick entries; [check] keys on [tasks] to keep the
     two populations apart. *)
  let full = run ?repeats () in
  let quick = run ~quick:true ?repeats () in
  { mode = "full+quick"; entries = full.entries @ quick.entries }

let render r =
  let table =
    Table.create
      ~header:[ "scheduler"; "workload"; "V"; "P"; "ns/task"; "bytes/task" ]
  in
  List.iter
    (fun e ->
      Table.add_row table
        [
          e.scheduler;
          e.workload;
          string_of_int e.tasks;
          string_of_int e.procs;
          Printf.sprintf "%.1f" e.ns_per_task;
          Printf.sprintf "%.1f" e.bytes_per_task;
        ])
    r.entries;
  Table.render table

(* --- JSON: a strict reader/writer for the subset our reports emit.
   Exposed as [Regress.Json] so sibling experiments (Runtime_real_exp)
   and the bench harness reuse it instead of growing parsers. --- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let parse_exn text =
    let pos = ref 0 in
    let len = String.length text in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < len then Some text.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      skip_ws ();
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word value =
      if
        !pos + String.length word <= len
        && String.sub text !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> begin
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 'u' ->
            if !pos + 4 >= len then fail "truncated \\u escape";
            let hex = String.sub text (!pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
            | Some _ -> Buffer.add_char buf '?'
            | None -> fail "bad \\u escape");
            pos := !pos + 4
          | _ -> fail "bad escape");
          advance ();
          loop ()
        end
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
      in
      loop ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while (match peek () with Some c when is_num_char c -> true | _ -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub text start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some '{' -> parse_obj ()
      | Some '[' -> parse_arr ()
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some c when c = '-' || (c >= '0' && c <= '9') -> Num (parse_number ())
      | _ -> fail "expected a value"
    and parse_obj () =
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec loop () =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        loop ();
        Obj (List.rev !fields)
      end
    and parse_arr () =
      expect '[';
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [] in
        let rec loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        loop ();
        Arr (List.rev !items)
      end
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing content";
    v

  let parse text =
    match parse_exn text with exception Parse_error msg -> Error msg | v -> Ok v

  let field name = function
    | Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> raise (Parse_error (Printf.sprintf "missing field %S" name)))
    | _ -> raise (Parse_error (Printf.sprintf "expected an object around %S" name))

  let str = function Str s -> s | _ -> raise (Parse_error "expected a string")

  let num = function Num f -> f | _ -> raise (Parse_error "expected a number")
end

(* --- JSON writing --- *)

let json_escape = Json.escape

let to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"flb-regress/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"mode\": \"%s\",\n" (json_escape r.mode));
  Buffer.add_string buf "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"scheduler\": \"%s\", \"workload\": \"%s\", \"tasks\": %d, \
            \"procs\": %d, \"ccr\": %g, \"ns_per_task\": %.1f, \
            \"bytes_per_task\": %.1f}%s\n"
           (json_escape e.scheduler) (json_escape e.workload) e.tasks e.procs
           e.ccr e.ns_per_task e.bytes_per_task
           (if i = List.length r.entries - 1 then "" else ","))
      )
    r.entries;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* --- JSON reading --- *)

let of_json text =
  match Json.parse_exn text with
  | exception Json.Parse_error msg -> Error msg
  | json -> (
    match
      let open Json in
      let schema = str (field "schema" json) in
      if schema <> "flb-regress/1" then
        raise (Parse_error (Printf.sprintf "unknown schema %S" schema));
      let mode = str (field "mode" json) in
      let entries =
        match field "entries" json with
        | Arr items ->
          List.map
            (fun item ->
              {
                scheduler = str (field "scheduler" item);
                workload = str (field "workload" item);
                tasks = int_of_float (num (field "tasks" item));
                procs = int_of_float (num (field "procs" item));
                ccr = num (field "ccr" item);
                ns_per_task = num (field "ns_per_task" item);
                bytes_per_task = num (field "bytes_per_task" item);
              })
            items
        | _ -> raise (Parse_error "entries must be an array")
      in
      { mode; entries }
    with
    | exception Json.Parse_error msg -> Error msg
    | r -> Ok r)

(* --- Comparison --- *)

let abs_slack_bytes = 64.0

let check ~baseline ~current ~tolerance =
  let errors = ref [] in
  List.iter
    (fun cur ->
      match
        List.find_opt
          (fun b ->
            b.scheduler = cur.scheduler && b.workload = cur.workload
            && b.procs = cur.procs && b.tasks = cur.tasks)
          baseline.entries
      with
      | None ->
        errors :=
          Printf.sprintf
            "%s/%s/P=%d/V=%d: no baseline entry (regenerate with --regress)"
            cur.scheduler cur.workload cur.procs cur.tasks
          :: !errors
      | Some base ->
        let diff = Float.abs (cur.bytes_per_task -. base.bytes_per_task) in
        let rel = diff /. Float.max 1.0 base.bytes_per_task in
        if rel > tolerance && diff > abs_slack_bytes then
          errors :=
            Printf.sprintf
              "%s/%s/P=%d/V=%d: bytes/task %.1f vs baseline %.1f (%.0f%% > \
               %.0f%% tolerance)"
              cur.scheduler cur.workload cur.procs cur.tasks cur.bytes_per_task
              base.bytes_per_task (rel *. 100.0) (tolerance *. 100.0)
            :: !errors)
    current.entries;
  match List.rev !errors with [] -> Ok () | es -> Error es
