open! Flb_taskgraph
open! Flb_platform

(** Named scheduling algorithms, as compared in the paper. *)

type t = {
  name : string;
  describe : string;
  run : Taskgraph.t -> Machine.t -> Schedule.t;
  probed : Flb_obs.Probe.t -> Taskgraph.t -> Machine.t -> Schedule.t;
      (** Same as [run] but reporting through the given probe. The
          clustering-based entries (DSC-LLB, SARKAR-LLB) and RR ignore
          the probe's counters; {!run_with_report} still times them. *)
}

val flb : t

val etf : t

val mcp : t
(** The lower-cost random-tie-break variant the paper benchmarks. *)

val fcp : t

val dsc_llb : t

val paper_set : t list
(** The five algorithms of Figures 2 and 4: MCP, ETF, DSC-LLB, FCP,
    FLB — in the paper's plotting order. *)

val extended_set : t list
(** [paper_set] plus the extensions: HLFET, DLS, ISH, SARKAR-LLB, and
    the naive round-robin baseline. *)

val find : string -> t option
(** Case-insensitive lookup by [name] within {!extended_set}. *)

val names : t list -> string list

val run_with_report :
  ?tracer:Flb_obs.Trace.t ->
  ?timed:bool ->
  t ->
  Taskgraph.t ->
  Machine.t ->
  Schedule.t * Flb_obs.Probe.report
(** Run the algorithm under a fresh live probe and return its telemetry
    report alongside the schedule. [timed] (default true) records wall
    and per-phase time; an enabled [tracer] additionally gets one span
    per phase occurrence. *)
