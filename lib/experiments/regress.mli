(** Machine-readable performance-regression harness.

    Measures, for every scheduler in {!Registry.paper_set} on the Fig. 2
    workload suite, two per-task metrics:

    - [ns_per_task]: best-of-N wall time per scheduled task (noisy;
      recorded as a trajectory, never asserted in CI);
    - [bytes_per_task]: best-of-N [Gc.allocated_bytes] delta of one run
      divided by the task count. The mutator's allocation is
      deterministic, but on OCaml 5 the delta sporadically includes a
      large runtime-internal lump, so the minimum over repeats is the
      clean figure — and it {e is} asserted against the committed
      baseline.

    The report serializes to the committed [BENCH_schedulers.json]; a
    minimal JSON reader loads past baselines back so CI can diff
    allocation behaviour without any external tooling. *)

(** Strict JSON reader/writer helpers for the subset the reports in this
    repository emit (objects, arrays, strings, numbers, booleans, null;
    ASCII escapes). Shared by {!Regress} itself, {!Runtime_real_exp} and
    the bench harness so none of them grows a private parser. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val escape : string -> string
  (** Body of a JSON string literal (no surrounding quotes). *)

  val parse_exn : string -> t
  (** @raise Parse_error on malformed input or trailing content. *)

  val parse : string -> (t, string) result

  val field : string -> t -> t
  (** @raise Parse_error if missing or not applied to an object. *)

  val str : t -> string
  (** @raise Parse_error unless a string. *)

  val num : t -> float
  (** @raise Parse_error unless a number. *)
end

type entry = {
  scheduler : string;
  workload : string;
  tasks : int;  (** actual task count of the measured instance *)
  procs : int;
  ccr : float;
  ns_per_task : float;
  bytes_per_task : float;
}

type report = {
  mode : string;  (** ["full"], ["quick"], or ["full+quick"] *)
  entries : entry list;
}

val run : ?quick:bool -> ?repeats:int -> unit -> report
(** Runs one suite. [quick] (default false) shrinks graphs to V≈400 for
    smoke use; the full suite uses V≈2000. [repeats] overrides the
    best-of count for both metrics. *)

val run_baseline : ?repeats:int -> unit -> report
(** Runs the full {e and} quick suites and concatenates their entries
    (mode ["full+quick"]). This is what [--regress] writes to the
    committed [BENCH_schedulers.json]: bytes/task is not size-independent
    for every scheduler, so the CI quick run needs quick entries to diff
    against while the full entries document the paper-scale figures. *)

val render : report -> string
(** Human-readable table. *)

val to_json : report -> string

val of_json : string -> (report, string) result
(** Parses exactly the documents {!to_json} produces (strict JSON subset:
    one object with string/number fields and one array of entry
    objects). *)

val check :
  baseline:report -> current:report -> tolerance:float -> (unit, string list) result
(** Compares allocation metrics of [current] against [baseline], keyed by
    (scheduler, workload, procs, tasks) — the task count is part of the
    key so a quick run is only ever compared against quick baseline
    entries. A pair fails when the relative difference in
    [bytes_per_task] exceeds [tolerance] and the absolute difference
    exceeds a 64-byte slack; an entry present in [current] with no
    matching baseline entry also fails. Timing fields are deliberately
    ignored. *)
