(** Predicted vs. measured: execute FLB schedules on real domains.

    The whole premise of compile-time load balancing is that the
    schedule's analytic makespan predicts execution. This experiment
    closes that loop with {!Flb_runtime}: for each Fig. 4 workload and
    domain count it schedules the instance, executes the schedule with
    the static engine (tasks burn calibrated spin-work, cross-domain
    edges charge their communication weight as real delay), executes the
    same DAG under the work-stealing engine and under the locality-aware
    affinity engine (the same schedule demoted to hints), and reports
    real makespans in weight units next to the prediction.

    Two ratios matter: [static_ratio] (measured static over predicted —
    how honest the analytic model is, ideally close to 1) and
    [steal_vs_static] (dynamic balancing over compile-time balancing on
    the same hardware — the paper's argument quantified on a real
    machine). Wall-clock numbers are machine-dependent, so like the
    [ns_per_task] trajectory in {!Regress} they are recorded
    ([BENCH_runtime.json]) but never asserted in CI. *)

type row = {
  workload : string;
  tasks : int;
  domains : int;
  predicted_units : float;  (** the FLB schedule's analytic makespan *)
  static_units : float;  (** measured static-engine makespan, weight units *)
  steal_units : float;  (** measured stealing-engine makespan, weight units *)
  affinity_units : float;
      (** measured affinity-engine makespan (same schedule as hints);
          [nan] when read from a pre-schema-3 file *)
  static_ratio : float;  (** [static_units /. predicted_units] *)
  steal_vs_static : float;  (** [steal_units /. static_units] *)
  affinity_vs_steal : float;
      (** [affinity_units /. steal_units] — below 1 when the hints beat
          blind stealing; [nan] from a pre-schema-3 file *)
  hint_hit_rate : float;
      (** fraction of tasks the affinity engine ran on their scheduled
          domain; [nan] from a pre-schema-3 file *)
  steals : int;  (** successful steals in the stealing run *)
}

val run :
  ?algorithm:Registry.t ->
  ?suite:Workload_suite.workload list ->
  ?ccr:float ->
  ?domains_list:int list ->
  ?unit_ns:float ->
  unit ->
  row list
(** Defaults: FLB on {!Workload_suite.fig4_suite} shrunk to V≈300 (real
    execution burns real time), CCR 0.2, domains {2, 4, 8}, 20 µs per
    weight unit. Deterministic workload instances (seed 1); measured
    times are wall-clock and therefore noisy. *)

val render : row list -> string

val to_csv : row list -> string

val to_json : ?resched:string -> row list -> string
(** Schema ["flb-runtime/3"]: schema 2's columns plus [affinity_units],
    [affinity_vs_steal] and [hint_hit_rate] (non-finite values emitted
    as null). [resched] (a JSON array from {!Resched_exp.rows_json}) is
    embedded as the optional ["resched"] field. *)

val of_json : string -> (row list, string) result
(** Parses what {!to_json} emits, any schema version 1-3 (via
    {!Regress.Json}; the ["resched"] field is ignored, affinity columns
    absent from older versions parse as [nan]). *)
