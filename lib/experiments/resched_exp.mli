(** Recovery-policy comparison under scripted kill faults (the
    robustness story of fault-reactive rescheduling).

    For each (workload, domain count) cell of the Fig. 4 suite: build
    the FLB schedule, kill the highest-numbered domain a quarter of the
    way into the predicted makespan, and compare the three static-engine
    recovery policies on the deterministic virtual clock — no recovery
    (how much work is stranded), steal-queues (drain the dead queue in
    place), and frontier rescheduling. The same fault is then replayed
    on the real engine with resched recovery to measure the actual
    per-event reschedule latency from the [rt_resched_latency_ns]
    histogram. *)

type row = {
  workload : string;
  tasks : int;
  domains : int;
  fault : string;  (** the injected spec, [Fault.to_string] syntax *)
  predicted_units : float;  (** fault-free analytic makespan *)
  none_completed : int;
      (** tasks that still complete with no recovery (virtual clock) *)
  steal_units : float;  (** virtual makespan under steal recovery *)
  resched_units : float;  (** virtual makespan under resched recovery *)
  resched_over_steal : float;
  rescheds : int;  (** reschedule events in the virtual resched run *)
  real_resched_units : float;  (** real-engine makespan, resched recovery *)
  resched_latency_us : float;
      (** mean real reschedule latency per event, µs; [nan] if the kill
          landed after the real run finished *)
}

val run :
  ?algorithm:Registry.t ->
  ?suite:Workload_suite.workload list ->
  ?ccr:float ->
  ?domains_list:int list ->
  ?unit_ns:float ->
  ?kill_frac:float ->
  ?resched_algo:string ->
  unit ->
  row list

val render : row list -> string

val to_csv : row list -> string

val rows_json : row list -> string
(** The rows as a JSON array (no surrounding object), ready to embed as
    the ["resched"] field of [BENCH_runtime.json]
    ({!Runtime_real_exp.to_json}). *)
