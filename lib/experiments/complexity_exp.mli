(** Empirical validation of the paper's complexity claim (extension
    experiment E7 in DESIGN.md).

    The paper's headline result is FLB's O(V (log W + log P) + E) bound
    versus ETF's O(W (E + V) P). This experiment sweeps the graph size V
    and the machine size P and reports, per algorithm, the measured time
    per task plus the probe counters ({!Flb_obs.Probe}) from a separate
    counting run: if the bound holds, FLB's queue operations per task
    stay bounded by a small multiple of log W + log P while ETF's time
    per task grows linearly in W and P. *)

type cell = {
  tasks : int;
  edges : int;
  procs : int;
  algorithm : string;
  seconds : float;  (** best-of-repeats wall time for one scheduling run *)
  ns_per_task : float;
  task_queue_ops_per_task : float;  (** 0 for algorithms without probe support *)
  peak_ready : int;  (** 0 for algorithms without probe support *)
}

val run :
  ?algorithms:Registry.t list ->
  ?sizes:int list ->
  ?procs:int list ->
  ?repeats:int ->
  unit ->
  cell list
(** Defaults: FLB, FCP and ETF on Stencil graphs of
    V in {250, 500, 1000, 2000, 4000}, P in {4, 32}, 3 repeats. *)

val render : cell list -> string

val to_csv : cell list -> string
