open! Flb_taskgraph
open! Flb_platform
module Flat_heap = Flb_heap.Flat_heap
module Probe = Flb_obs.Probe

type tie_break = Bottom_level | Task_id

type options = { tie_break : tie_break; prefer_non_ep_on_tie : bool }

let default_options = { tie_break = Bottom_level; prefer_non_ep_on_tie = true }

type candidate = { task : Taskgraph.task; proc : int; est : float }

type ep_entry = {
  task : Taskgraph.task;
  emt : float;
  lmt : float;
  blevel : float;
}

type iteration = {
  index : int;
  ep_lists : (int * ep_entry list) list;
  non_ep_list : (Taskgraph.task * float) list;
  ep_candidate : candidate option;
  non_ep_candidate : candidate option;
  chosen : candidate;
}

type observer = Schedule.t -> iteration -> unit

type stats = {
  iterations : int;
  task_queue_ops : int;
  proc_queue_ops : int;
  demotions : int;
  peak_ready : int;
}

(* Queue keys are (value, tie-break) pairs ordered lexicographically, with
   the secondary component holding the negated bottom level or the task id.
   Flat_heap stores both components in unboxed float arrays and breaks
   remaining ties by element id, so the order is total, deterministic, and
   identical to the historical Indexed_heap over (float * float) keys —
   without a boxed tuple per push or a polymorphic compare per sift. *)
type state = {
  (* Operation counters and (optional) phase timings, re-expressed on the
     shared Flb_obs.Probe schema; a live untimed probe is pure int
     bookkeeping, cheap enough to maintain unconditionally. *)
  probe : Probe.t;
  graph : Taskgraph.t;
  sched : Schedule.t;
  options : options;
  blevel : float array;
  (* Per ready task: timing facts computed once when it becomes ready
     (finish times of predecessors never change afterwards). *)
  lmt : float array;
  ep : int array; (* enabling processor, -1 for entry tasks *)
  emt_on_ep : float array;
  (* The paper's queues. *)
  emt_ep : Flat_heap.t array; (* per proc: EP tasks by (EMT, tb) *)
  lmt_ep : Flat_heap.t array; (* per proc: EP tasks by (LMT, tb) *)
  non_ep : Flat_heap.t; (* by (LMT, tb) *)
  active_procs : Flat_heap.t; (* by (min EST of enabled EP task, tb) *)
  all_procs : Flat_heap.t; (* by (PRT, 0) *)
  (* CSR successors of [graph], for the ready-set update sweep. *)
  succ_off : int array;
  succ_id : int array;
  (* Selection scratch. The winning (task, proc, EST) of each iteration is
     written here instead of into a fresh [candidate] record; the EST lives
     in a one-element float array because a mutable float field in this
     mixed record would box on every write. *)
  mutable sel_task : int;
  mutable sel_proc : int;
  sel_est : float array;
}

let tie_value st t =
  match st.options.tie_break with
  | Bottom_level -> -.st.blevel.(t)
  | Task_id -> float_of_int t

let create_state ~probe options sched =
  let graph = Schedule.graph sched in
  let n = Taskgraph.num_tasks graph in
  let p = Schedule.num_procs sched in
  Probe.phase_begin probe Probe.Phase.Priority;
  let blevel = Levels.blevel graph in
  Probe.phase_end probe Probe.Phase.Priority;
  {
    probe;
    graph;
    sched;
    options;
    blevel;
    lmt = Array.make n 0.0;
    ep = Array.make n (-1);
    emt_on_ep = Array.make n 0.0;
    emt_ep = Array.init p (fun _ -> Flat_heap.create ~universe:n);
    lmt_ep = Array.init p (fun _ -> Flat_heap.create ~universe:n);
    non_ep = Flat_heap.create ~universe:n;
    active_procs = Flat_heap.create ~universe:p;
    all_procs = Flat_heap.create ~universe:p;
    succ_off = Taskgraph.Csr.succ_offsets graph;
    succ_id = Taskgraph.Csr.succ_targets graph;
    sel_task = -1;
    sel_proc = -1;
    sel_est = Array.make 1 0.0;
  }

(* Minimum EST among the EP tasks enabled by [p]: the head of the EMT
   queue against the processor's ready time (O(1), as in the paper). *)
let refresh_active st p =
  Probe.proc_queue_op st.probe;
  let head = Flat_heap.peek st.emt_ep.(p) in
  if head < 0 then Flat_heap.remove st.active_procs p
  else begin
    let emt = Flat_heap.primary st.emt_ep.(p) head in
    let prt = Schedule.prt st.sched p in
    let est = if emt > prt then emt else prt in
    Flat_heap.update st.active_procs ~elt:p ~primary:est
      ~secondary:(tie_value st head)
  end

(* Classify a freshly ready task into the EP or non-EP queues. *)
let enqueue_ready st t =
  Probe.ready_added st.probe;
  let tb = tie_value st t in
  st.lmt.(t) <- Schedule.lmt st.sched t;
  let ep = Schedule.enabling_proc_id st.sched t in
  (* A dead enabling processor cannot start the task at all: treat it as
     non-EP so it competes through the all-procs (live) queue. Its EST
     lower bound max(LMT, PRT) stays valid — EMT <= LMT on any
     processor. Only seeded (fault-recovery) schedules mask procs. *)
  let ep = if ep >= 0 && not (Schedule.proc_alive st.sched ep) then -1 else ep in
  st.ep.(t) <- ep;
  if ep < 0 then begin
    Probe.task_queue_op st.probe;
    Flat_heap.add st.non_ep ~elt:t ~primary:st.lmt.(t) ~secondary:tb
  end
  else begin
    st.emt_on_ep.(t) <- Schedule.emt st.sched t ~proc:ep;
    if st.lmt.(t) < Schedule.prt st.sched ep then begin
      (* Non-EP type: the enabling processor is already idle when the last
         message arrives. *)
      Probe.task_queue_op st.probe;
      Flat_heap.add st.non_ep ~elt:t ~primary:st.lmt.(t) ~secondary:tb
    end
    else begin
      Probe.task_queue_ops st.probe 2;
      Flat_heap.add st.emt_ep.(ep) ~elt:t ~primary:st.emt_on_ep.(t) ~secondary:tb;
      Flat_heap.add st.lmt_ep.(ep) ~elt:t ~primary:st.lmt.(t) ~secondary:tb;
      refresh_active st ep
    end
  end

(* The paper's UpdateTaskLists: after [p]'s ready time advanced, demote the
   EP tasks whose LMT fell below it. The LMT queue yields them cheapest
   first. *)
let demote_stale_ep_tasks st p =
  let prt = Schedule.prt st.sched p in
  let q = st.lmt_ep.(p) in
  let continue = ref true in
  while !continue do
    let t = Flat_heap.peek q in
    if t < 0 then continue := false
    else begin
      let lmt = Flat_heap.primary q t in
      if lmt < prt then begin
        let tb = Flat_heap.secondary q t in
        Probe.demotion st.probe;
        Probe.task_queue_ops st.probe 3;
        Flat_heap.remove q t;
        Flat_heap.remove st.emt_ep.(p) t;
        Flat_heap.add st.non_ep ~elt:t ~primary:lmt ~secondary:tb
      end
      else continue := false
    end
  done

(* Theorem 3: the winner is the better of two heads. [choose] writes it
   into the selection scratch; the [candidate] views below exist for the
   observer snapshot only. *)
let choose st =
  let ep_p = Flat_heap.peek st.active_procs in
  let ne_t = Flat_heap.peek st.non_ep in
  if ne_t < 0 then begin
    (* EP candidate only; the ready set is never empty mid-run. *)
    st.sel_task <- Flat_heap.peek st.emt_ep.(ep_p);
    st.sel_proc <- ep_p;
    st.sel_est.(0) <- Flat_heap.primary st.active_procs ep_p
  end
  else begin
    let ne_p = Flat_heap.peek st.all_procs in
    let lmt = Flat_heap.primary st.non_ep ne_t in
    let prt = Flat_heap.primary st.all_procs ne_p in
    let ne_est = if lmt > prt then lmt else prt in
    let take_ep =
      ep_p >= 0
      &&
      let ep_est = Flat_heap.primary st.active_procs ep_p in
      if ep_est < ne_est then true
      else if ep_est > ne_est then false
      else not st.options.prefer_non_ep_on_tie
    in
    if take_ep then begin
      st.sel_task <- Flat_heap.peek st.emt_ep.(ep_p);
      st.sel_proc <- ep_p;
      st.sel_est.(0) <- Flat_heap.primary st.active_procs ep_p
    end
    else begin
      st.sel_task <- ne_t;
      st.sel_proc <- ne_p;
      st.sel_est.(0) <- ne_est
    end
  end

(* Observer-only views; never called on the probe-less hot path. *)
let ep_candidate st =
  match Flat_heap.peek st.active_procs with
  | -1 -> None
  | p ->
    let t = Flat_heap.peek st.emt_ep.(p) in
    Some { task = t; proc = p; est = Flat_heap.primary st.active_procs p }

let non_ep_candidate st =
  match Flat_heap.peek st.non_ep with
  | -1 -> None
  | t ->
    let p = Flat_heap.peek st.all_procs in
    let est =
      Float.max (Flat_heap.primary st.non_ep t) (Flat_heap.primary st.all_procs p)
    in
    Some { task = t; proc = p; est }

let snapshot st index ~chosen =
  let ep_lists = ref [] in
  for p = Array.length st.emt_ep - 1 downto 0 do
    let entries =
      List.map
        (fun (t, _) ->
          { task = t; emt = st.emt_on_ep.(t); lmt = st.lmt.(t); blevel = st.blevel.(t) })
        (Flat_heap.to_sorted_list st.emt_ep.(p))
    in
    if entries <> [] then ep_lists := (p, entries) :: !ep_lists
  done;
  let non_ep_list =
    List.map (fun (t, _) -> (t, st.lmt.(t))) (Flat_heap.to_sorted_list st.non_ep)
  in
  {
    index;
    ep_lists = !ep_lists;
    non_ep_list;
    ep_candidate = ep_candidate st;
    non_ep_candidate = non_ep_candidate st;
    chosen;
  }

let commit st =
  let t = st.sel_task and p = st.sel_proc in
  Probe.ready_removed st.probe;
  Probe.phase_begin st.probe Probe.Phase.Queue;
  (* Remove the winner from whichever queues hold it. *)
  if Flat_heap.mem st.non_ep t then begin
    Probe.task_queue_op st.probe;
    Flat_heap.remove st.non_ep t
  end
  else begin
    let ep = st.ep.(t) in
    Probe.task_queue_ops st.probe 2;
    Flat_heap.remove st.emt_ep.(ep) t;
    Flat_heap.remove st.lmt_ep.(ep) t
  end;
  Probe.phase_end st.probe Probe.Phase.Queue;
  (* On the paper's uniform machine the queue-derived EST is exact; on a
     non-uniform topology (mesh extension) it is only an estimate, so
     recompute the real earliest start there to keep schedules feasible. *)
  let start =
    if Machine.is_uniform (Schedule.machine st.sched) then st.sel_est.(0)
    else Schedule.est st.sched t ~proc:p
  in
  Probe.phase_begin st.probe Probe.Phase.Assignment;
  Schedule.assign st.sched t ~proc:p ~start;
  Probe.phase_end st.probe Probe.Phase.Assignment;
  Probe.phase_begin st.probe Probe.Phase.Queue;
  (* UpdateTaskLists + UpdateProcLists for the destination processor. *)
  demote_stale_ep_tasks st p;
  Probe.proc_queue_op st.probe;
  Flat_heap.update st.all_procs ~elt:p ~primary:(Schedule.prt st.sched p)
    ~secondary:0.0;
  refresh_active st p;
  (* UpdateReadyTasks: successors that just became ready enter the queues. *)
  for i = st.succ_off.(t) to st.succ_off.(t + 1) - 1 do
    let succ = st.succ_id.(i) in
    if Schedule.is_ready st.sched succ then enqueue_ready st succ
  done;
  Probe.phase_end st.probe Probe.Phase.Queue

let run_state_into ?(options = default_options) ?observer ?probe sched =
  let probe = match probe with Some p -> p | None -> Probe.create "FLB" in
  let st = create_state ~probe options sched in
  let graph = Schedule.graph sched in
  Probe.phase_begin probe Probe.Phase.Queue;
  (* Only live processors enter the all-procs queue; on a seeded
     schedule their ready times carry the frozen history and fault-time
     floors. *)
  for p = 0 to Schedule.num_procs sched - 1 do
    if Schedule.proc_alive sched p then
      Flat_heap.add st.all_procs ~elt:p ~primary:(Schedule.prt sched p)
        ~secondary:0.0
  done;
  let n = Taskgraph.num_tasks graph in
  for t = 0 to n - 1 do
    if Schedule.is_ready sched t then enqueue_ready st t
  done;
  Probe.phase_end probe Probe.Phase.Queue;
  let remaining = n - Schedule.num_scheduled sched in
  for index = 0 to remaining - 1 do
    Probe.iteration probe;
    Probe.phase_begin probe Probe.Phase.Selection;
    choose st;
    Probe.phase_end probe Probe.Phase.Selection;
    (match observer with
    | Some f ->
      let chosen = { task = st.sel_task; proc = st.sel_proc; est = st.sel_est.(0) } in
      f st.sched (snapshot st index ~chosen)
    | None -> ());
    commit st
  done;
  st

let run_state ?options ?observer ?probe graph machine =
  run_state_into ?options ?observer ?probe (Schedule.create graph machine)

let run ?options ?observer ?probe graph machine =
  (run_state ?options ?observer ?probe graph machine).sched

let run_into ?options ?observer ?probe sched =
  (run_state_into ?options ?observer ?probe sched).sched

let run_with_stats ?options ?observer ?probe graph machine =
  let probe = match probe with Some p -> p | None -> Probe.create "FLB" in
  let st = run_state ?options ?observer ~probe graph machine in
  let r = Probe.report probe in
  ( st.sched,
    {
      iterations = Taskgraph.num_tasks graph;
      task_queue_ops = r.Probe.task_queue_ops;
      proc_queue_ops = r.Probe.proc_queue_ops;
      demotions = r.Probe.demotions;
      peak_ready = r.Probe.peak_ready;
    } )

let schedule_length ?options graph machine =
  Schedule.makespan (run ?options graph machine)
