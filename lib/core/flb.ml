open! Flb_taskgraph
open! Flb_platform
module Indexed_heap = Flb_heap.Indexed_heap
module Probe = Flb_obs.Probe

type tie_break = Bottom_level | Task_id

type options = { tie_break : tie_break; prefer_non_ep_on_tie : bool }

let default_options = { tie_break = Bottom_level; prefer_non_ep_on_tie = true }

type candidate = { task : Taskgraph.task; proc : int; est : float }

type ep_entry = {
  task : Taskgraph.task;
  emt : float;
  lmt : float;
  blevel : float;
}

type iteration = {
  index : int;
  ep_lists : (int * ep_entry list) list;
  non_ep_list : (Taskgraph.task * float) list;
  ep_candidate : candidate option;
  non_ep_candidate : candidate option;
  chosen : candidate;
}

type observer = Schedule.t -> iteration -> unit

type stats = {
  iterations : int;
  task_queue_ops : int;
  proc_queue_ops : int;
  demotions : int;
  peak_ready : int;
}

(* Queue keys are (value, priority) pairs ordered lexicographically with
   the secondary component holding the tie-break (negated bottom level, or
   the task id). Indexed_heap breaks remaining ties by element id, so the
   whole order is total and deterministic. *)
type key = float * float

let compare_key : key -> key -> int = compare

type state = {
  (* Operation counters and (optional) phase timings, re-expressed on the
     shared Flb_obs.Probe schema; a live untimed probe is pure int
     bookkeeping, cheap enough to maintain unconditionally. *)
  probe : Probe.t;
  graph : Taskgraph.t;
  sched : Schedule.t;
  options : options;
  blevel : float array;
  (* Per ready task: timing facts computed once when it becomes ready
     (finish times of predecessors never change afterwards). *)
  lmt : float array;
  ep : int array; (* enabling processor, -1 for entry tasks *)
  emt_on_ep : float array;
  (* The paper's queues. *)
  emt_ep : key Indexed_heap.t array; (* per proc: EP tasks by (EMT, tb) *)
  lmt_ep : key Indexed_heap.t array; (* per proc: EP tasks by (LMT, tb) *)
  non_ep : key Indexed_heap.t; (* by (LMT, tb) *)
  active_procs : key Indexed_heap.t; (* by (min EST of enabled EP task, tb) *)
  all_procs : key Indexed_heap.t; (* by (PRT, 0) *)
}

let tie_value st t =
  match st.options.tie_break with
  | Bottom_level -> -.st.blevel.(t)
  | Task_id -> float_of_int t

let create_state ~probe options graph machine =
  let n = Taskgraph.num_tasks graph in
  let p = Machine.num_procs machine in
  let heap () = Indexed_heap.create ~universe:n ~compare:compare_key in
  Probe.phase_begin probe Probe.Phase.Priority;
  let blevel = Levels.blevel graph in
  Probe.phase_end probe Probe.Phase.Priority;
  {
    probe;
    graph;
    sched = Schedule.create graph machine;
    options;
    blevel;
    lmt = Array.make n 0.0;
    ep = Array.make n (-1);
    emt_on_ep = Array.make n 0.0;
    emt_ep = Array.init p (fun _ -> heap ());
    lmt_ep = Array.init p (fun _ -> heap ());
    non_ep = heap ();
    active_procs = Indexed_heap.create ~universe:p ~compare:compare_key;
    all_procs = Indexed_heap.create ~universe:p ~compare:compare_key;
  }

(* Minimum EST among the EP tasks enabled by [p]: the head of the EMT
   queue against the processor's ready time (O(1), as in the paper). *)
let refresh_active st p =
  Probe.proc_queue_op st.probe;
  match Indexed_heap.min_elt st.emt_ep.(p) with
  | None -> Indexed_heap.remove st.active_procs p
  | Some (head, (emt, _)) ->
    let est = Float.max emt (Schedule.prt st.sched p) in
    Indexed_heap.update st.active_procs ~elt:p ~key:(est, tie_value st head)

(* Classify a freshly ready task into the EP or non-EP queues. *)
let enqueue_ready st t =
  Probe.ready_added st.probe;
  let tb = tie_value st t in
  st.lmt.(t) <- Schedule.lmt st.sched t;
  match Schedule.enabling_proc st.sched t with
  | None ->
    st.ep.(t) <- -1;
    Probe.task_queue_op st.probe;
    Indexed_heap.add st.non_ep ~elt:t ~key:(st.lmt.(t), tb)
  | Some p ->
    st.ep.(t) <- p;
    st.emt_on_ep.(t) <- Schedule.emt st.sched t ~proc:p;
    if st.lmt.(t) < Schedule.prt st.sched p then begin
      (* Non-EP type: the enabling processor is already idle when the last
         message arrives. *)
      Probe.task_queue_op st.probe;
      Indexed_heap.add st.non_ep ~elt:t ~key:(st.lmt.(t), tb)
    end
    else begin
      Probe.task_queue_ops st.probe 2;
      Indexed_heap.add st.emt_ep.(p) ~elt:t ~key:(st.emt_on_ep.(t), tb);
      Indexed_heap.add st.lmt_ep.(p) ~elt:t ~key:(st.lmt.(t), tb);
      refresh_active st p
    end

(* The paper's UpdateTaskLists: after [p]'s ready time advanced, demote the
   EP tasks whose LMT fell below it. The LMT queue yields them cheapest
   first. *)
let demote_stale_ep_tasks st p =
  let prt = Schedule.prt st.sched p in
  let rec loop () =
    match Indexed_heap.min_elt st.lmt_ep.(p) with
    | Some (t, (lmt, tb)) when lmt < prt ->
      Probe.demotion st.probe;
      Probe.task_queue_ops st.probe 3;
      Indexed_heap.remove st.lmt_ep.(p) t;
      Indexed_heap.remove st.emt_ep.(p) t;
      Indexed_heap.add st.non_ep ~elt:t ~key:(lmt, tb);
      loop ()
    | Some _ | None -> ()
  in
  loop ()

let ep_candidate st =
  match Indexed_heap.min_elt st.active_procs with
  | None -> None
  | Some (p, (est, _)) ->
    let t, _ =
      match Indexed_heap.min_elt st.emt_ep.(p) with
      | Some head -> head
      | None -> assert false (* active implies a non-empty EP queue *)
    in
    Some { task = t; proc = p; est }

let non_ep_candidate st =
  match (Indexed_heap.min_elt st.non_ep, Indexed_heap.min_elt st.all_procs) with
  | Some (t, (lmt, _)), Some (p, (prt, _)) ->
    Some { task = t; proc = p; est = Float.max lmt prt }
  | None, _ -> None
  | Some _, None -> assert false (* all_procs always holds every processor *)

let choose st =
  match (ep_candidate st, non_ep_candidate st) with
  | None, None -> assert false (* ready set is never empty mid-run *)
  | Some c, None | None, Some c -> c
  | Some c1, Some c2 ->
    if c1.est < c2.est then c1
    else if c1.est > c2.est then c2
    else if st.options.prefer_non_ep_on_tie then c2
    else c1

let snapshot st index ~chosen =
  let ep_lists = ref [] in
  for p = Array.length st.emt_ep - 1 downto 0 do
    let entries =
      List.map
        (fun (t, _) ->
          { task = t; emt = st.emt_on_ep.(t); lmt = st.lmt.(t); blevel = st.blevel.(t) })
        (Indexed_heap.to_sorted_list st.emt_ep.(p))
    in
    if entries <> [] then ep_lists := (p, entries) :: !ep_lists
  done;
  let non_ep_list =
    List.map (fun (t, _) -> (t, st.lmt.(t))) (Indexed_heap.to_sorted_list st.non_ep)
  in
  {
    index;
    ep_lists = !ep_lists;
    non_ep_list;
    ep_candidate = ep_candidate st;
    non_ep_candidate = non_ep_candidate st;
    chosen;
  }

let commit st { task = t; proc = p; est } =
  Probe.ready_removed st.probe;
  Probe.phase_begin st.probe Probe.Phase.Queue;
  (* Remove the winner from whichever queues hold it. *)
  if Indexed_heap.mem st.non_ep t then begin
    Probe.task_queue_op st.probe;
    Indexed_heap.remove st.non_ep t
  end
  else begin
    let ep = st.ep.(t) in
    Probe.task_queue_ops st.probe 2;
    Indexed_heap.remove st.emt_ep.(ep) t;
    Indexed_heap.remove st.lmt_ep.(ep) t
  end;
  Probe.phase_end st.probe Probe.Phase.Queue;
  (* On the paper's uniform machine the queue-derived EST is exact; on a
     non-uniform topology (mesh extension) it is only an estimate, so
     recompute the real earliest start there to keep schedules feasible. *)
  let start =
    if Machine.is_uniform (Schedule.machine st.sched) then est
    else Schedule.est st.sched t ~proc:p
  in
  Probe.phase_begin st.probe Probe.Phase.Assignment;
  Schedule.assign st.sched t ~proc:p ~start;
  Probe.phase_end st.probe Probe.Phase.Assignment;
  Probe.phase_begin st.probe Probe.Phase.Queue;
  (* UpdateTaskLists + UpdateProcLists for the destination processor. *)
  demote_stale_ep_tasks st p;
  Probe.proc_queue_op st.probe;
  Indexed_heap.update st.all_procs ~elt:p ~key:(Schedule.prt st.sched p, 0.0);
  refresh_active st p;
  (* UpdateReadyTasks: successors that just became ready enter the queues. *)
  Array.iter
    (fun (succ, _) -> if Schedule.is_ready st.sched succ then enqueue_ready st succ)
    (Taskgraph.succs st.graph t);
  Probe.phase_end st.probe Probe.Phase.Queue

let run_state ?(options = default_options) ?observer ?probe graph machine =
  let probe = match probe with Some p -> p | None -> Probe.create "FLB" in
  let st = create_state ~probe options graph machine in
  Probe.phase_begin probe Probe.Phase.Queue;
  List.iter
    (fun p -> Indexed_heap.add st.all_procs ~elt:p ~key:(0.0, 0.0))
    (Machine.procs machine);
  List.iter (fun t -> enqueue_ready st t) (Taskgraph.entry_tasks graph);
  Probe.phase_end probe Probe.Phase.Queue;
  let n = Taskgraph.num_tasks graph in
  for index = 0 to n - 1 do
    Probe.iteration probe;
    Probe.phase_begin probe Probe.Phase.Selection;
    let chosen = choose st in
    Probe.phase_end probe Probe.Phase.Selection;
    (match observer with
    | Some f -> f st.sched (snapshot st index ~chosen)
    | None -> ());
    commit st chosen
  done;
  st

let run ?options ?observer ?probe graph machine =
  (run_state ?options ?observer ?probe graph machine).sched

let run_with_stats ?options ?observer ?probe graph machine =
  let probe = match probe with Some p -> p | None -> Probe.create "FLB" in
  let st = run_state ?options ?observer ~probe graph machine in
  let r = Probe.report probe in
  ( st.sched,
    {
      iterations = Taskgraph.num_tasks graph;
      task_queue_ops = r.Probe.task_queue_ops;
      proc_queue_ops = r.Probe.proc_queue_ops;
      demotions = r.Probe.demotions;
      peak_ready = r.Probe.peak_ready;
    } )

let schedule_length ?options graph machine =
  Schedule.makespan (run ?options graph machine)
