open! Flb_taskgraph
open! Flb_platform

(** The FLB (Fast Load Balancing) scheduling algorithm — the paper's
    contribution (Section 4).

    At every iteration FLB schedules the ready task that can start the
    earliest, on the processor achieving that start time — the ETF
    selection criterion — but finds the winning task–processor pair by
    comparing just {e two} candidates (Theorem 3):

    + the EP-type task with minimum [EST(t, EP t)] on its enabling
      processor, read off a per-processor queue of EP tasks ordered by
      effective message arrival time, via a queue of {e active}
      processors ordered by that minimum EST; and
    + the non-EP-type task with minimum last message arrival time, on
      the processor that becomes idle the earliest, read off a global
      non-EP queue ordered by LMT and a global processor queue ordered
      by ready time.

    Every queue is an {!Flb_heap.Indexed_heap}, so one iteration costs
    O(log W + log P) amortized and the whole schedule
    O(V (log W + log P) + E).

    Tie-breaking follows the paper: queue ties prefer the larger bottom
    level (longest exit path, computation + communication), and when
    both candidate pairs start at the same time the non-EP pair wins
    (its communication is already overlapped). Both choices can be
    altered for ablation studies. *)

type tie_break =
  | Bottom_level  (** the paper's rule: larger bottom level first *)
  | Task_id  (** structural: smaller task id first (ablation) *)

type options = {
  tie_break : tie_break;
  prefer_non_ep_on_tie : bool;
      (** the paper's rule is [true]; [false] prefers the EP pair
          (ablation) *)
}

val default_options : options
(** [{ tie_break = Bottom_level; prefer_non_ep_on_tie = true }]. *)

(** {1 Observation}

    The scheduler can expose each iteration's decision to an observer —
    used by {!Flb_trace} to reproduce the paper's Table 1 and by
    {!Flb_check} to verify Theorem 3 at run time. Snapshots are only
    materialized when an observer is installed; plain runs pay nothing. *)

type candidate = { task : Taskgraph.task; proc : int; est : float }

type ep_entry = {
  task : Taskgraph.task;
  emt : float;  (** effective message arrival time on the enabling proc *)
  lmt : float;
  blevel : float;
}

type iteration = {
  index : int;  (** 0-based iteration number *)
  ep_lists : (int * ep_entry list) list;
      (** per active-or-inhabited processor, EP-type tasks it enables,
          ascending by (EMT, -blevel); processors in id order *)
  non_ep_list : (Taskgraph.task * float) list;
      (** non-EP-type ready tasks with their LMT, ascending by
          (LMT, -blevel) *)
  ep_candidate : candidate option;
  non_ep_candidate : candidate option;
  chosen : candidate;
}

type observer = Schedule.t -> iteration -> unit
(** Called once per iteration with the partial schedule {e before} the
    chosen assignment is applied. *)

(** {1 Running} *)

val run :
  ?options:options ->
  ?observer:observer ->
  ?probe:Flb_obs.Probe.t ->
  Taskgraph.t ->
  Machine.t ->
  Schedule.t
(** Schedules the whole graph. The result is complete and passes
    {!Schedule.validate}. [probe] reports operation counts and (when the
    probe is timed) per-phase wall time through the shared
    {!Flb_obs.Probe} schema; the default is a live untimed probe, whose
    bookkeeping is plain integer mutation — an untimed probe adds no
    allocation to the scheduling loop. *)

val run_into :
  ?options:options ->
  ?observer:observer ->
  ?probe:Flb_obs.Probe.t ->
  Schedule.t ->
  Schedule.t
(** Fixed-history entry point: completes an existing partial schedule in
    place (and returns it). The ready queues are seeded from the
    schedule's live frontier, the all-procs queue holds only unmasked
    processors at their current ready times, and a ready task whose
    enabling processor is masked is classified non-EP (a dead processor
    cannot start anything). [run g m] is [run_into (Schedule.create g m)]
    exactly — same queues, same tie-breaks, same result. *)

val schedule_length : ?options:options -> Taskgraph.t -> Machine.t -> float
(** Convenience: makespan of {!run}. *)

(** {1 Instrumentation}

    Counters backing the empirical complexity validation (the paper's
    central claim is the O(V (log W + log P) + E) bound; the
    [complexity] bench section checks that these counters scale
    accordingly). *)

type stats = {
  iterations : int;  (** scheduling iterations = V *)
  task_queue_ops : int;
      (** insertions/removals/re-keyings across the three task queues;
          the paper bounds this by O(V) operations of O(log W) each *)
  proc_queue_ops : int;
      (** operations on the two processor queues; O(V) of O(log P) each *)
  demotions : int;  (** EP-type tasks demoted to non-EP (UpdateTaskLists) *)
  peak_ready : int;
      (** largest number of simultaneously queued ready tasks; never
          exceeds the task-graph width W *)
}

val run_with_stats :
  ?options:options ->
  ?observer:observer ->
  ?probe:Flb_obs.Probe.t ->
  Taskgraph.t ->
  Machine.t ->
  Schedule.t * stats
(** The [stats] record is read back off the run's probe (supplied or
    internal), so it is one view of the same counters every other
    scheduler reports through {!Flb_obs.Probe}. *)
