open! Flb_taskgraph

(** A task graph under construction over the wire.

    Clients discover work as they go: tasks and edges arrive in batches
    and the scheduler dispatches a rolling frontier between batches, so
    — unlike {!Taskgraph.Builder} — this builder must accept appends
    {e after} parts of the graph have already been placed, and must
    answer bad input with structured errors instead of exceptions (the
    input crossed a trust boundary).

    The one irreversible transition is {e dispatch}: once the scheduling
    loop has placed a task and told the client, the task's incoming edge
    set is sealed — accepting a new edge into it would invalidate a
    placement the client may already be acting on. Such edges are
    rejected with {!error.Edge_into_dispatched}. Edges {e out} of a
    dispatched task are fine: that is exactly the cross-frontier
    dependence the rolling schedule exists to honour.

    Appends are amortized O(1) (doubling arrays); {!snapshot} rebuilds a
    CSR {!Taskgraph.t} in O(V + E) so each scheduling round reuses the
    allocation-free scheduler hot paths unchanged. *)

type t

type error =
  | Unknown_task of int  (** Edge endpoint not (yet) added. *)
  | Self_edge of int
  | Duplicate_edge of int * int
  | Edge_into_dispatched of int
      (** The destination was already placed and announced. *)
  | Bad_weight of float  (** Negative or non-finite comp/comm. *)
  | Cyclic of int  (** The edge set has a cycle through this task. *)
  | Sealed  (** Appends after {!seal}. *)

val error_to_string : error -> string

val create : ?expected_tasks:int -> unit -> t

val add_tasks : t -> comps:float array -> (int, error) result
(** Appends one weighted task per element and returns the id of the
    first (ids are consecutive from the current {!num_tasks}). On error
    nothing is appended. *)

val add_edge : t -> src:int -> dst:int -> comm:float -> (unit, error) result

val seal : t -> (unit, error) result
(** Declares the graph complete. Runs the cycle check; on [Cyclic] the
    stream is left unsealed (the graph is poisoned — see
    {!check_acyclic}). Sealing an already-sealed graph is a no-op. *)

val sealed : t -> bool

val check_acyclic : t -> (unit, error) result
(** Kahn's algorithm over the current edge set. The scheduling loop
    calls this before every round: {!Taskgraph.Builder.build} raises on
    cycles, and a raise mid-round would take down every stream merged
    into the same super-DAG, so a cyclic stream must be detected and
    excluded first. *)

val num_tasks : t -> int

val num_edges : t -> int

val comp : t -> int -> float

val mark_dispatched : t -> int -> unit

val is_dispatched : t -> int -> bool

val num_dispatched : t -> int

val pending : t -> int
(** Tasks added but not yet dispatched. *)

val snapshot : t -> Taskgraph.t
(** The current graph as an immutable CSR {!Taskgraph.t} (task ids are
    preserved). @raise Invalid_argument on a cyclic edge set — call
    {!check_acyclic} first. *)

val frontier : t -> Taskgraph.t * int array * int array
(** The undispatched frontier as a standalone sub-DAG via
    {!Transform.restrict}: [(sub, old_of_new, new_of_old)]. *)

val iter_edges : t -> (int -> int -> float -> unit) -> unit
(** Visits every edge in insertion order. *)
