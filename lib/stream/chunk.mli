(** Client-side batch planning for streaming a complete graph.

    A streaming client must ship tasks before the edges that mention
    them, and must never ship an edge into a task the server may already
    have dispatched. [plan] makes both invariants structural: tasks are
    relabeled into a topological {e stream order} and split into
    contiguous batches; each batch carries exactly the edges whose
    destination lies in it. Because stream order is topological, an
    edge's source is always in the same or an earlier batch (so both
    endpoints exist when it ships), and its destination is always in the
    batch being shipped (so no scheduling round has had a chance to
    dispatch it yet).

    Stream task ids are therefore the positions of {!order}: the task
    the server knows as [i] is [order.(i)] in the original graph. *)

open! Flb_taskgraph

type batch = {
  comps : float array;
      (** Computation costs of this batch's tasks, in stream order;
          ship with [Add_tasks]. *)
  edges : (int * int * float) array;
      (** [(src, dst, comm)] in stream ids, every [dst] inside this
          batch; ship with [Add_edges] right after the tasks. *)
}

val plan : ?chunks:int -> Taskgraph.t -> batch list
(** Split [g] into at most [chunks] (default 2) contiguous batches of
    near-equal size, in stream order. Returns fewer batches when the
    graph has fewer tasks than [chunks], and [[]] for the empty graph.
    @raise Invalid_argument if [chunks < 1]. *)

val order : Taskgraph.t -> Taskgraph.task array
(** The stream-order relabeling used by {!plan}: position [i] holds the
    original task streamed as id [i] (a {!Topo.order}). *)
