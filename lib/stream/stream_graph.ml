open! Flb_taskgraph

type error =
  | Unknown_task of int
  | Self_edge of int
  | Duplicate_edge of int * int
  | Edge_into_dispatched of int
  | Bad_weight of float
  | Cyclic of int
  | Sealed

let error_to_string = function
  | Unknown_task t -> Printf.sprintf "unknown task %d" t
  | Self_edge t -> Printf.sprintf "self edge on task %d" t
  | Duplicate_edge (s, d) -> Printf.sprintf "duplicate edge %d -> %d" s d
  | Edge_into_dispatched t ->
    Printf.sprintf "task %d is already dispatched; its dependences are final" t
  | Bad_weight w -> Printf.sprintf "weight %g is negative or not finite" w
  | Cyclic t -> Printf.sprintf "edge set is cyclic (through task %d)" t
  | Sealed -> "stream is sealed"

(* Tasks and edges live in doubling arrays so a batch append touches no
   existing element; [edge_index] provides O(1) duplicate detection. *)
type t = {
  mutable comps : float array;
  mutable n_tasks : int;
  mutable srcs : int array;
  mutable dsts : int array;
  mutable comms : float array;
  mutable n_edges : int;
  edge_index : (int * int, unit) Hashtbl.t;
  mutable dispatched : Bytes.t; (* one byte per task; grows with comps *)
  mutable n_dispatched : int;
  mutable is_sealed : bool;
}

let create ?(expected_tasks = 16) () =
  let cap = max expected_tasks 1 in
  {
    comps = Array.make cap 0.0;
    n_tasks = 0;
    srcs = Array.make cap 0;
    dsts = Array.make cap 0;
    comms = Array.make cap 0.0;
    n_edges = 0;
    edge_index = Hashtbl.create 64;
    dispatched = Bytes.make cap '\000';
    n_dispatched = 0;
    is_sealed = false;
  }

let num_tasks t = t.n_tasks

let num_edges t = t.n_edges

let sealed t = t.is_sealed

let comp t i =
  if i < 0 || i >= t.n_tasks then invalid_arg "Stream_graph.comp: bad task";
  t.comps.(i)

let grow_float a used need =
  if used + need <= Array.length a then a
  else begin
    let cap = max (2 * Array.length a) (used + need) in
    let a' = Array.make cap 0.0 in
    Array.blit a 0 a' 0 used;
    a'
  end

let grow_int a used need =
  if used + need <= Array.length a then a
  else begin
    let cap = max (2 * Array.length a) (used + need) in
    let a' = Array.make cap 0 in
    Array.blit a 0 a' 0 used;
    a'
  end

let grow_bytes b used need =
  if used + need <= Bytes.length b then b
  else begin
    let cap = max (2 * Bytes.length b) (used + need) in
    let b' = Bytes.make cap '\000' in
    Bytes.blit b 0 b' 0 used;
    b'
  end

let add_tasks t ~comps =
  if t.is_sealed then Error Sealed
  else
    match
      Array.fold_left
        (fun acc c ->
          match acc with
          | Some _ -> acc
          | None -> if c < 0.0 || not (Float.is_finite c) then Some c else None)
        None comps
    with
    | Some bad -> Error (Bad_weight bad)
    | None ->
      let first = t.n_tasks in
      let n = Array.length comps in
      t.comps <- grow_float t.comps t.n_tasks n;
      t.dispatched <- grow_bytes t.dispatched t.n_tasks n;
      Array.blit comps 0 t.comps t.n_tasks n;
      Bytes.fill t.dispatched t.n_tasks n '\000';
      t.n_tasks <- t.n_tasks + n;
      Ok first

let is_dispatched t i = i >= 0 && i < t.n_tasks && Bytes.get t.dispatched i <> '\000'

let mark_dispatched t i =
  if i < 0 || i >= t.n_tasks then
    invalid_arg "Stream_graph.mark_dispatched: bad task";
  if Bytes.get t.dispatched i = '\000' then begin
    Bytes.set t.dispatched i '\001';
    t.n_dispatched <- t.n_dispatched + 1
  end

let num_dispatched t = t.n_dispatched

let pending t = t.n_tasks - t.n_dispatched

let add_edge t ~src ~dst ~comm =
  if t.is_sealed then Error Sealed
  else if src < 0 || src >= t.n_tasks then Error (Unknown_task src)
  else if dst < 0 || dst >= t.n_tasks then Error (Unknown_task dst)
  else if src = dst then Error (Self_edge src)
  else if comm < 0.0 || not (Float.is_finite comm) then Error (Bad_weight comm)
  else if Hashtbl.mem t.edge_index (src, dst) then Error (Duplicate_edge (src, dst))
  else if is_dispatched t dst then Error (Edge_into_dispatched dst)
  else begin
    t.srcs <- grow_int t.srcs t.n_edges 1;
    t.dsts <- grow_int t.dsts t.n_edges 1;
    t.comms <- grow_float t.comms t.n_edges 1;
    t.srcs.(t.n_edges) <- src;
    t.dsts.(t.n_edges) <- dst;
    t.comms.(t.n_edges) <- comm;
    t.n_edges <- t.n_edges + 1;
    Hashtbl.add t.edge_index (src, dst) ();
    Ok ()
  end

let iter_edges t f =
  for e = 0 to t.n_edges - 1 do
    f t.srcs.(e) t.dsts.(e) t.comms.(e)
  done

(* Kahn's algorithm; on a cycle, reports one task left with unconsumed
   incoming edges. *)
let check_acyclic t =
  let n = t.n_tasks in
  let indeg = Array.make n 0 in
  for e = 0 to t.n_edges - 1 do
    indeg.(t.dsts.(e)) <- indeg.(t.dsts.(e)) + 1
  done;
  (* CSR of successors, built locally so the check is O(V + E). *)
  let off = Array.make (n + 1) 0 in
  for e = 0 to t.n_edges - 1 do
    off.(t.srcs.(e) + 1) <- off.(t.srcs.(e) + 1) + 1
  done;
  for i = 1 to n do
    off.(i) <- off.(i) + off.(i - 1)
  done;
  let fill = Array.copy off in
  let targets = Array.make t.n_edges 0 in
  for e = 0 to t.n_edges - 1 do
    let s = t.srcs.(e) in
    targets.(fill.(s)) <- t.dsts.(e);
    fill.(s) <- fill.(s) + 1
  done;
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then begin
      queue.(!tail) <- i;
      incr tail
    end
  done;
  let seen = ref 0 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    incr seen;
    for k = off.(u) to off.(u + 1) - 1 do
      let v = targets.(k) in
      indeg.(v) <- indeg.(v) - 1;
      if indeg.(v) = 0 then begin
        queue.(!tail) <- v;
        incr tail
      end
    done
  done;
  if !seen = n then Ok ()
  else begin
    let witness = ref 0 in
    (try
       for i = 0 to n - 1 do
         if indeg.(i) > 0 then begin
           witness := i;
           raise Exit
         end
       done
     with Exit -> ());
    Error (Cyclic !witness)
  end

let seal t =
  if t.is_sealed then Ok ()
  else
    match check_acyclic t with
    | Ok () ->
      t.is_sealed <- true;
      Ok ()
    | Error _ as e -> e

let snapshot t =
  let b = Taskgraph.Builder.create ~expected_tasks:t.n_tasks () in
  for i = 0 to t.n_tasks - 1 do
    ignore (Taskgraph.Builder.add_task b ~comp:t.comps.(i))
  done;
  for e = 0 to t.n_edges - 1 do
    Taskgraph.Builder.add_edge b ~src:t.srcs.(e) ~dst:t.dsts.(e)
      ~comm:t.comms.(e)
  done;
  Taskgraph.Builder.build b

let frontier t =
  Transform.restrict (snapshot t) ~keep:(fun i -> not (is_dispatched t i))
