open! Flb_taskgraph
open! Flb_platform
module Metrics = Flb_obs.Metrics
module Trace = Flb_obs.Trace
module Reschedule = Flb_reschedule.Reschedule
module Snapshot = Flb_reschedule.Snapshot

type config = {
  batch_tasks : int;
  tick_period_s : float;
  idle_timeout_s : float;
  max_streams : int;
}

let default_config =
  {
    batch_tasks = 32;
    tick_period_s = 0.05;
    idle_timeout_s = 60.0;
    max_streams = 64;
  }

type placement = { task : int; proc : int; start : float; finish : float }

type progress = {
  placements : placement array;
  round : int;
  final : bool;
  makespan : float;
}

type error =
  | Unknown_stream of int
  | Too_many_streams of int
  | Rejected of Stream_graph.error
  | Failed of string

let error_to_string = function
  | Unknown_stream id -> Printf.sprintf "unknown stream %d" id
  | Too_many_streams n -> Printf.sprintf "stream limit reached (%d open)" n
  | Rejected e -> Stream_graph.error_to_string e
  | Failed msg -> msg

(* Streams scheduling onto the same (algorithm, machine size) share a
   group: one super-DAG, one machine timeline. [floors] is the
   [advance_prt] image of every round the group has run — it outlives
   individual streams, because a drained stream's placements already
   occupied the shared processors and the timeline cannot un-happen. *)
type group = {
  g_algo : string;
  g_procs : int;
  floors : float array;
  mutable refcount : int;
  mutable last_tick : float;
}

type stream = {
  id : int;
  algo : string; (* canonical registry spelling *)
  procs : int;
  sgraph : Stream_graph.t;
  outbox : placement Queue.t;
  (* Placement record per dispatched local task id, for frozen pinning
     in later rounds. *)
  placed : (int, placement) Hashtbl.t;
  mutable max_finish : float;
  mutable rounds_in : int;
  mutable last_activity : float;
  mutable poisoned : Stream_graph.error option;
  (* Between an [add_tasks] and this stream's next [add_edges], [poll]
     or [seal]: the new tasks' dependences may still be in flight, so
     rounds triggered by OTHER group members must not dispatch them
     (doing so would force Edge_into_dispatched on a well-behaved
     client). The stream's own next call lifts the exclusion. *)
  mutable mid_batch : bool;
}

type t = {
  config : config;
  lock : Mutex.t;
  streams : (int, stream) Hashtbl.t;
  groups : (string * int, group) Hashtbl.t;
  mutable next_id : int;
  mutable total_rounds : int;
  mutable batch_streams : int;
  tracer : Trace.t;
  on_round : (streams:int -> frontier:int -> unit) option;
  open_total : Metrics.Counter.t;
  rounds_total : Metrics.Counter.t;
  placed_total : Metrics.Counter.t;
  evicted_total : Metrics.Counter.t;
  active_g : Metrics.Gauge.t;
  frontier_g : Metrics.Gauge.t;
  batch_g : Metrics.Gauge.t;
}

let now () = Unix.gettimeofday ()

let create ?metrics ?(tracer = Trace.null) ?on_round config =
  let reg = match metrics with Some r -> r | None -> Metrics.create () in
  {
    config;
    lock = Mutex.create ();
    streams = Hashtbl.create 16;
    groups = Hashtbl.create 8;
    next_id = 1;
    total_rounds = 0;
    batch_streams = 0;
    tracer;
    on_round;
    open_total =
      Metrics.counter reg ~help:"streams opened" "stream_open_total";
    rounds_total =
      Metrics.counter reg ~help:"scheduling rounds run" "stream_rounds_total";
    placed_total =
      Metrics.counter reg ~help:"tasks placed by streaming rounds"
        "stream_placed_total";
    evicted_total =
      Metrics.counter reg ~help:"idle unsealed streams evicted"
        "stream_evicted_total";
    active_g =
      Metrics.gauge reg ~help:"currently open streams" "stream_active";
    frontier_g =
      Metrics.gauge reg ~help:"merged frontier size of the last round"
        "stream_frontier_size";
    batch_g =
      Metrics.gauge reg ~help:"streams merged into the last round's super-DAG"
        "stream_batch_streams";
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let group_key s = (String.lowercase_ascii s.algo, s.procs)

let group_of t s =
  let key = group_key s in
  match Hashtbl.find_opt t.groups key with
  | Some g -> g
  | None ->
    let g =
      {
        g_algo = s.algo;
        g_procs = s.procs;
        floors = Array.make s.procs 0.0;
        refcount = 0;
        last_tick = 0.0;
      }
    in
    Hashtbl.add t.groups key g;
    g

(* Removing a stream drops its group when it was the last member: a
   fresh first stream must start on an empty timeline, not inherit
   floors from traffic long drained. *)
let remove_stream t s =
  Hashtbl.remove t.streams s.id;
  let key = group_key s in
  (match Hashtbl.find_opt t.groups key with
  | Some g ->
    g.refcount <- g.refcount - 1;
    if g.refcount <= 0 then Hashtbl.remove t.groups key
  | None -> ());
  Metrics.Gauge.set t.active_g (float_of_int (Hashtbl.length t.streams))

let members t g =
  Hashtbl.fold
    (fun _ s acc ->
      let lo, pr = group_key s in
      if lo = String.lowercase_ascii g.g_algo && pr = g.g_procs then s :: acc
      else acc)
    t.streams []
  |> List.sort (fun a b -> compare a.id b.id)

(* A mid-batch stream is skipped by rounds it did not trigger — until
   its client has been quiet for a full tick period, after which the
   edges are clearly not in flight and the timer must still be able to
   place the (possibly abandoned) work. *)
let excluded t s ~at =
  s.mid_batch && at -. s.last_activity < t.config.tick_period_s

(* Pending tasks a round could actually dispatch right now: mid-batch
   streams are waiting for their edges and do not count. *)
let group_pending t g ~at =
  List.fold_left
    (fun acc s ->
      if s.poisoned = None && not (excluded t s ~at) then
        acc + Stream_graph.pending s.sgraph
      else acc)
    0 (members t g)

(* One scheduling round for [g]. Call with the lock held. *)
let run_round t g ~at =
  g.last_tick <- at;
  (* A cyclic stream would make the merged Builder.build raise and take
     every member's round down with it: detect, poison, exclude. The
     poisoned stream reports its structured error on the next touch. *)
  let actives =
    List.filter
      (fun s ->
        s.poisoned = None
        && (not (excluded t s ~at))
        && Stream_graph.pending s.sgraph > 0
        &&
        match Stream_graph.check_acyclic s.sgraph with
        | Ok () -> true
        | Error e ->
          s.poisoned <- Some e;
          false)
      (members t g)
  in
  if actives <> [] then begin
    let frontier =
      List.fold_left
        (fun acc s -> acc + Stream_graph.pending s.sgraph)
        0 actives
    in
    let n_streams = List.length actives in
    let schedule_round () =
      (* Merge every active stream into one super-DAG; per-stream task
         ids are offset by the running total, so placements map back as
         [global - offset]. *)
      let total =
        List.fold_left
          (fun acc s -> acc + Stream_graph.num_tasks s.sgraph)
          0 actives
      in
      let b = Taskgraph.Builder.create ~expected_tasks:total () in
      let offsets = Hashtbl.create 8 in
      let frozen = ref [] in
      List.iter
        (fun s ->
          let off = Taskgraph.Builder.num_tasks b in
          Hashtbl.add offsets s.id off;
          for i = 0 to Stream_graph.num_tasks s.sgraph - 1 do
            ignore
              (Taskgraph.Builder.add_task b ~comp:(Stream_graph.comp s.sgraph i))
          done;
          Stream_graph.iter_edges s.sgraph (fun src dst comm ->
              Taskgraph.Builder.add_edge b ~src:(off + src) ~dst:(off + dst)
                ~comm);
          Hashtbl.iter
            (fun local p ->
              frozen :=
                {
                  Snapshot.task = off + local;
                  proc = p.proc;
                  start = p.start;
                  finish = p.finish;
                }
                :: !frozen)
            s.placed)
        actives;
      let merged = Taskgraph.Builder.build b in
      let machine = Machine.clique ~num_procs:g.g_procs in
      let ready =
        List.init g.g_procs (fun p -> (p, g.floors.(p)))
        |> List.filter (fun (_, f) -> f > 0.0)
      in
      let snapshot =
        Snapshot.make ~ready ~frozen:!frozen merged machine
      in
      let sched = Reschedule.run ~algo:g.g_algo snapshot in
      (* Fan placements back out and advance the shared floors. *)
      List.iter
        (fun s ->
          let off = Hashtbl.find offsets s.id in
          for i = 0 to Stream_graph.num_tasks s.sgraph - 1 do
            if not (Stream_graph.is_dispatched s.sgraph i) then begin
              let p =
                {
                  task = i;
                  proc = Schedule.proc sched (off + i);
                  start = Schedule.start_time sched (off + i);
                  finish = Schedule.finish_time sched (off + i);
                }
              in
              Stream_graph.mark_dispatched s.sgraph i;
              Hashtbl.replace s.placed i p;
              if p.finish > s.max_finish then s.max_finish <- p.finish;
              Queue.add p s.outbox;
              Metrics.Counter.incr t.placed_total
            end
          done;
          s.rounds_in <- s.rounds_in + 1)
        actives;
      for p = 0 to g.g_procs - 1 do
        g.floors.(p) <- Schedule.prt sched p
      done
    in
    if Trace.enabled t.tracer then
      Trace.with_span t.tracer ~track:"stream"
        ~args:
          [
            ("streams", float_of_int n_streams);
            ("frontier", float_of_int frontier);
          ]
        "round" schedule_round
    else schedule_round ();
    t.total_rounds <- t.total_rounds + 1;
    t.batch_streams <- n_streams;
    Metrics.Counter.incr t.rounds_total;
    Metrics.Gauge.set t.frontier_g (float_of_int frontier);
    Metrics.Gauge.set t.batch_g (float_of_int n_streams);
    match t.on_round with
    | Some f -> f ~streams:n_streams ~frontier
    | None -> ()
  end

(* Look a stream up and report a poisoned one: the structured cycle
   error surfaces on the first touch after the round that detected it,
   and the stream is closed. *)
let find_stream t id =
  match Hashtbl.find_opt t.streams id with
  | None -> Error (Unknown_stream id)
  | Some s -> (
    match s.poisoned with
    | Some e ->
      remove_stream t s;
      Error (Rejected e)
    | None -> Ok s)

(* A round may have just poisoned [s] (cycle found while merging):
   report the structured error on this very call, not the next. *)
let unless_poisoned t s k =
  match s.poisoned with
  | Some e ->
    remove_stream t s;
    Error (Rejected e)
  | None -> k ()

let drain ?(final = false) s =
  let placements = Array.of_seq (Queue.to_seq s.outbox) in
  Queue.clear s.outbox;
  { placements; round = s.rounds_in; final; makespan = s.max_finish }

let open_stream t ~algo ~procs =
  match Reschedule.find algo with
  | None ->
    Error
      (Failed
         (Printf.sprintf "unknown or non-resumable algorithm %S (try one of: %s)"
            algo
            (String.concat ", " Reschedule.names)))
  | Some entry ->
    if procs < 1 then
      Error (Failed (Printf.sprintf "procs must be >= 1 (got %d)" procs))
    else
      with_lock t (fun () ->
          if Hashtbl.length t.streams >= t.config.max_streams then
            Error (Too_many_streams (Hashtbl.length t.streams))
          else begin
            let id = t.next_id in
            t.next_id <- id + 1;
            let s =
              {
                id;
                algo = entry.Reschedule.name;
                procs;
                sgraph = Stream_graph.create ();
                outbox = Queue.create ();
                placed = Hashtbl.create 64;
                max_finish = 0.0;
                rounds_in = 0;
                last_activity = now ();
                poisoned = None;
                mid_batch = false;
              }
            in
            Hashtbl.add t.streams id s;
            let g = group_of t s in
            g.refcount <- g.refcount + 1;
            Metrics.Counter.incr t.open_total;
            Metrics.Gauge.set t.active_g
              (float_of_int (Hashtbl.length t.streams));
            Ok id
          end)

let add_tasks t ~stream ~comps =
  with_lock t (fun () ->
      match find_stream t stream with
      | Error _ as e -> e
      | Ok s -> (
        s.last_activity <- now ();
        match Stream_graph.add_tasks s.sgraph ~comps with
        | Error e -> Error (Rejected e)
        | Ok first ->
          if Array.length comps > 0 then s.mid_batch <- true;
          Ok (first, drain s)))

let add_edges t ~stream ~edges =
  with_lock t (fun () ->
      match find_stream t stream with
      | Error _ as e -> e
      | Ok s ->
        s.last_activity <- now ();
        s.mid_batch <- false;
        let bad = ref None in
        (try
           Array.iter
             (fun (src, dst, comm) ->
               match Stream_graph.add_edge s.sgraph ~src ~dst ~comm with
               | Ok () -> ()
               | Error e ->
                 bad := Some e;
                 raise Exit)
             edges
         with Exit -> ());
        (match !bad with
        | Some e -> Error (Rejected e)
        | None ->
          let g = group_of t s in
          let at = now () in
          if group_pending t g ~at >= t.config.batch_tasks then
            run_round t g ~at;
          unless_poisoned t s (fun () -> Ok (drain s))))

let seal t ~stream =
  with_lock t (fun () ->
      match find_stream t stream with
      | Error _ as e -> e
      | Ok s -> (
        s.last_activity <- now ();
        s.mid_batch <- false;
        match Stream_graph.seal s.sgraph with
        | Error e ->
          remove_stream t s;
          Error (Rejected e)
        | Ok () ->
          let g = group_of t s in
          if Stream_graph.pending s.sgraph > 0 then run_round t g ~at:(now ());
          let progress = drain ~final:true s in
          remove_stream t s;
          Ok progress))

let poll t ~stream =
  with_lock t (fun () ->
      match find_stream t stream with
      | Error _ as e -> e
      | Ok s ->
        s.last_activity <- now ();
        s.mid_batch <- false;
        if Stream_graph.pending s.sgraph > 0 then
          run_round t (group_of t s) ~at:(now ());
        unless_poisoned t s (fun () -> Ok (drain s)))

let maybe_tick t ~now:at =
  with_lock t (fun () ->
      (* Idle eviction: an unsealed stream whose client went away must
         not pin its group (and the admission slots) forever. Evicted
         history stays in the group floors. *)
      let idle =
        Hashtbl.fold
          (fun _ s acc ->
            if
              (not (Stream_graph.sealed s.sgraph))
              && at -. s.last_activity > t.config.idle_timeout_s
            then s :: acc
            else acc)
          t.streams []
      in
      List.iter
        (fun s ->
          remove_stream t s;
          Metrics.Counter.incr t.evicted_total)
        idle;
      (* Periodic rounds: pending work must not wait for the next client
         request to get placed. Mid-batch streams — tasks appended,
         edges still in flight — are excluded per stream by [excluded],
         so a timer round never dispatches a half-shipped batch. *)
      let due =
        Hashtbl.fold
          (fun _ g acc ->
            if at -. g.last_tick >= t.config.tick_period_s then g :: acc
            else acc)
          t.groups []
      in
      List.iter
        (fun g -> if group_pending t g ~at > 0 then run_round t g ~at) due)

let rounds t = with_lock t (fun () -> t.total_rounds)

let active_streams t = with_lock t (fun () -> Hashtbl.length t.streams)

let last_batch_streams t = with_lock t (fun () -> t.batch_streams)
