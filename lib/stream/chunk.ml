open! Flb_taskgraph

type batch = {
  comps : float array;
  edges : (int * int * float) array;
}

let order = Topo.order

let plan ?(chunks = 2) g =
  if chunks < 1 then invalid_arg "Chunk.plan: chunks must be >= 1";
  let n = Taskgraph.num_tasks g in
  if n = 0 then []
  else begin
    let ord = Topo.order g in
    (* stream id of each original task *)
    let pos = Array.make n 0 in
    Array.iteri (fun i t -> pos.(t) <- i) ord;
    let k = min chunks n in
    List.init k (fun c ->
        let lo = c * n / k and hi = (c + 1) * n / k in
        let comps =
          Array.init (hi - lo) (fun i -> Taskgraph.comp g ord.(lo + i))
        in
        (* Every edge travels with its destination's batch: in stream
           order the source is never later than the destination, so both
           endpoints exist and the destination is still undispatched. *)
        let edges = ref [] in
        for i = hi - 1 downto lo do
          Taskgraph.iter_preds g ord.(i) (fun src comm ->
              edges := (pos.(src), i, comm) :: !edges)
        done;
        { comps; edges = Array.of_list !edges })
  end
