open! Flb_platform

(** Rolling-frontier scheduling rounds over open streams.

    Each client owns a {e stream}: a {!Stream_graph} it grows in batches
    over the wire. On a {e tick} — an edge batch pushing the pending
    count past [batch_tasks], an explicit poll, a seal, or the periodic
    timer — the loop runs one {e scheduling round} for the affected
    group:

    - every open stream with the same (algorithm, processor count) is
      merged into one super-DAG (concurrent clients share a machine, so
      scheduling them together is what makes the placement globally
      load-balanced rather than per-client greedy);
    - each stream's already-dispatched tasks are pinned as frozen
      history ({!Flb_reschedule.Snapshot} via [Schedule.assign_frozen])
      and the group's per-processor ready floors — the [advance_prt]
      image of every earlier round, surviving even streams that have
      since drained — bound where new work may start;
    - any registered resumable scheduler ({!Flb_reschedule.Reschedule})
      completes the merged schedule, and the new placements fan back out
      to per-stream outboxes.

    Once dispatched, a placement is immutable: the frozen-prefix
    invariant is what lets clients act on placements before the graph is
    complete. A stream fed its whole graph and sealed before the first
    tick goes through exactly one round with no frozen history and no
    floors, which reproduces the one-shot scheduler bit for bit.

    All entry points are thread-safe; rounds run on the calling thread
    under one loop-wide lock. *)

type config = {
  batch_tasks : int;
      (** Tick as soon as a group's pending count reaches this. *)
  tick_period_s : float;  (** Periodic tick for groups with pending work. *)
  idle_timeout_s : float;
      (** Unsealed streams idle this long are evicted. Their dispatched
          history stays in the group floors — placements were announced
          and the shared timeline cannot un-happen. *)
  max_streams : int;  (** Admission control for {!open_stream}. *)
}

val default_config : config
(** 32 tasks, 50 ms timer, 60 s idle eviction, 64 streams. *)

type placement = { task : int; proc : int; start : float; finish : float }

(** What one call drained from the stream's outbox. *)
type progress = {
  placements : placement array;  (** Newly announced, in dispatch order. *)
  round : int;  (** Scheduling rounds this stream has participated in. *)
  final : bool;  (** Sealed and fully placed; the stream is now closed. *)
  makespan : float;  (** Max finish over the stream's own placed tasks. *)
}

type error =
  | Unknown_stream of int
  | Too_many_streams of int  (** The [max_streams] admission limit. *)
  | Rejected of Stream_graph.error
  | Failed of string  (** Unknown/non-resumable algorithm, bad procs. *)

val error_to_string : error -> string

type t

val create :
  ?metrics:Flb_obs.Metrics.t ->
  ?tracer:Flb_obs.Trace.t ->
  ?on_round:(streams:int -> frontier:int -> unit) ->
  config ->
  t
(** [on_round] fires after every scheduling round with the number of
    streams merged and the merged frontier size — the service uses it to
    account cache bypasses without touching hit/miss counters. *)

val open_stream : t -> algo:string -> procs:int -> (int, error) result
(** Validates [algo] against the resumable-scheduler registry and
    [procs >= 1]; returns the new stream id. *)

val add_tasks :
  t -> stream:int -> comps:float array -> (int * progress, error) result
(** Returns the first new task id. Never triggers a round: a freshly
    appended task with no edges yet looks like an entry task, and
    dispatching it before its dependences arrive would force
    [Edge_into_dispatched] rejections on well-behaved clients. It also
    marks the stream {e mid-batch}: until this stream's next
    [add_edges], [poll] or [seal] — or until it has sat idle for a full
    [tick_period_s] — rounds triggered by other group members (or the
    timer) skip it entirely, so a concurrent client cannot get your
    half-shipped batch dispatched under you. *)

val add_edges :
  t -> stream:int -> edges:(int * int * float) array -> (progress, error) result
(** Applies edges in order; the first bad edge aborts the batch with a
    structured error (earlier edges stay applied). May trigger a round
    when the group's pending count reaches [batch_tasks]. *)

val seal : t -> stream:int -> (progress, error) result
(** Cycle-checks, runs a final round draining the stream, and closes it.
    The returned progress has [final = true]. *)

val poll : t -> stream:int -> (progress, error) result
(** Drains the outbox; ticks a round first if the stream has pending
    tasks. *)

val maybe_tick : t -> now:float -> unit
(** Timer duties, called from the service accept loop: evict idle
    unsealed streams and run the periodic round for any group whose
    pending work has waited at least [tick_period_s]. Mid-batch streams
    are skipped per stream (see {!add_tasks}) until they have been idle
    a full tick period, so a timer round never fires between a live
    client's [add_tasks] and the matching [add_edges] — yet abandoned
    task-only batches still get placed eventually. *)

val rounds : t -> int
(** Scheduling rounds run since creation. *)

val active_streams : t -> int

val last_batch_streams : t -> int
(** Streams merged into the most recent round's super-DAG. *)
