(** Descriptive statistics for experiment reporting.

    The evaluation averages each experiment cell over several seeded
    instances (the paper uses 5 random-weight graphs per cell); these
    helpers compute the summaries printed in EXPERIMENTS.md. *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on empty input. *)

val variance : float array -> float
(** Unbiased (n-1) sample variance; 0 for singleton input. *)

val stddev : float array -> float

val coefficient_of_variation : float array -> float
(** [stddev / mean]. @raise Invalid_argument if the mean is zero. *)

val min : float array -> float

val max : float array -> float

val median : float array -> float

val quantile : float array -> q:float -> float
(** Linear-interpolation quantile, [q] in [\[0, 1\]]. *)

val geometric_mean : float array -> float
(** @raise Invalid_argument if any value is non-positive. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit

(** Streaming log-scale histogram with approximate quantiles.

    Positive samples are binned into geometric buckets
    [(gamma^(k-1), gamma^k]]; non-positive samples share one underflow
    bucket. Memory is O(number of distinct magnitudes), observation is
    O(1), and quantiles carry a bounded {e relative} error of at most
    [sqrt gamma - 1] (about 9% at the default gamma of 2{^ 1/4}) —
    the standard trade for latency-style telemetry where values span
    orders of magnitude. *)
module Log_histogram : sig
  type t

  val create : ?gamma:float -> unit -> t
  (** [gamma] is the bucket growth factor, default 2{^ 1/4}.
      @raise Invalid_argument if [gamma <= 1]. *)

  val observe : t -> float -> unit

  val count : t -> int

  val sum : t -> float

  val min : t -> float
  (** Exact observed minimum. @raise Invalid_argument if empty. *)

  val max : t -> float
  (** Exact observed maximum. @raise Invalid_argument if empty. *)

  val mean : t -> float
  (** Exact mean ([sum / count]). @raise Invalid_argument if empty. *)

  val quantile : t -> q:float -> float
  (** Approximate quantile (nearest-rank over buckets, geometric-midpoint
      representative, clamped to the observed [min]/[max]).
      @raise Invalid_argument if empty or [q] outside [\[0, 1\]]. *)

  val p50 : t -> float

  val p95 : t -> float

  val p99 : t -> float
end

(** Streaming mean/variance (Welford's algorithm), used where samples are
    produced one at a time and the array would be wastefully large. *)
module Accumulator : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end
