let require_nonempty name a =
  if Array.length a = 0 then invalid_arg ("Stats." ^ name ^ ": empty input")

let mean a =
  require_nonempty "mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  require_nonempty "variance" a;
  let n = Array.length a in
  if n = 1 then 0.0
  else begin
    let m = mean a in
    let sq = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    sq /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let coefficient_of_variation a =
  let m = mean a in
  if m = 0.0 then invalid_arg "Stats.coefficient_of_variation: zero mean";
  stddev a /. m

let min a =
  require_nonempty "min" a;
  Array.fold_left Stdlib.min a.(0) a

let max a =
  require_nonempty "max" a;
  Array.fold_left Stdlib.max a.(0) a

let quantile a ~q =
  require_nonempty "quantile" a;
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0, 1]";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let w = pos -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let median a = quantile a ~q:0.5

let geometric_mean a =
  require_nonempty "geometric_mean" a;
  let log_sum =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive value";
        acc +. log x)
      0.0 a
  in
  exp (log_sum /. float_of_int (Array.length a))

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let summarize a =
  {
    n = Array.length a;
    mean = mean a;
    stddev = stddev a;
    min = min a;
    max = max a;
    median = median a;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g" s.n
    s.mean s.stddev s.min s.median s.max

module Log_histogram = struct
  (* Log-scale histogram: positive samples fall into geometric buckets
     (gamma^(k-1), gamma^k]; non-positive samples share one underflow
     bucket represented as 0. Quantiles are read off the cumulative
     bucket counts and reported as the geometric midpoint of the winning
     bucket (relative error at most sqrt gamma - 1), clamped to the
     exact observed min/max so extreme quantiles stay honest. *)
  type t = {
    gamma : float;
    log_gamma : float;
    buckets : (int, int) Hashtbl.t;
    mutable zeros : int;
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
  }

  let create ?(gamma = sqrt (sqrt 2.0)) () =
    if gamma <= 1.0 then invalid_arg "Stats.Log_histogram.create: gamma <= 1";
    {
      gamma;
      log_gamma = log gamma;
      buckets = Hashtbl.create 64;
      zeros = 0;
      count = 0;
      sum = 0.0;
      min = infinity;
      max = neg_infinity;
    }

  let observe t x =
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    if x <= 0.0 then t.zeros <- t.zeros + 1
    else begin
      let k = int_of_float (Float.ceil (log x /. t.log_gamma)) in
      let prev = Option.value ~default:0 (Hashtbl.find_opt t.buckets k) in
      Hashtbl.replace t.buckets k (prev + 1)
    end

  let count t = t.count

  let sum t = t.sum

  let require_samples name t =
    if t.count = 0 then invalid_arg ("Stats.Log_histogram." ^ name ^ ": no samples")

  let min t =
    require_samples "min" t;
    t.min

  let max t =
    require_samples "max" t;
    t.max

  let mean t =
    require_samples "mean" t;
    t.sum /. float_of_int t.count

  let quantile t ~q =
    require_samples "quantile" t;
    if q < 0.0 || q > 1.0 then invalid_arg "Stats.Log_histogram.quantile: q outside [0, 1]";
    let target = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int t.count))) in
    if target <= t.zeros then Float.min 0.0 t.max
    else begin
      let keys =
        List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.buckets [])
      in
      let rec walk cumulative = function
        | [] -> t.max
        | k :: rest ->
          let cumulative = cumulative + Hashtbl.find t.buckets k in
          if cumulative >= target then
            let mid = t.gamma ** (float_of_int k -. 0.5) in
            Float.min t.max (Float.max t.min mid)
          else walk cumulative rest
      in
      walk t.zeros keys
    end

  let p50 t = quantile t ~q:0.50

  let p95 t = quantile t ~q:0.95

  let p99 t = quantile t ~q:0.99
end

module Accumulator = struct
  (* Welford's online algorithm: numerically stable single-pass mean and
     variance. *)
  type t = { mutable count : int; mutable mean : float; mutable m2 : float }

  let create () = { count = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.count

  let mean t =
    if t.count = 0 then invalid_arg "Stats.Accumulator.mean: no samples";
    t.mean

  let variance t =
    if t.count = 0 then invalid_arg "Stats.Accumulator.variance: no samples";
    if t.count = 1 then 0.0 else t.m2 /. float_of_int (t.count - 1)

  let stddev t = sqrt (variance t)
end
