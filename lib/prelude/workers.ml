type t = {
  size : int;
  lock : Mutex.t;
  mutable domains : unit Domain.t list;
}

let spawn ?(on_exn = fun _ _ -> ()) ~count f =
  if count < 1 then invalid_arg "Workers.spawn: count must be >= 1";
  let body i () = try f i with exn -> (try on_exn i exn with _ -> ()) in
  {
    size = count;
    lock = Mutex.create ();
    domains = List.init count (fun i -> Domain.spawn (body i));
  }

let count t = t.size

let join t =
  Mutex.lock t.lock;
  let domains = t.domains in
  t.domains <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join domains
