(** Shared domain lifecycle: spawn a fixed team of OCaml 5 worker
    domains, contain their exceptions, join them exactly once.

    Both {!Flb_service.Pool} (the daemon's job pool) and the
    [Flb_runtime] engines need the same three things from their worker
    domains: startup with a worker index, containment of any exception
    that escapes the worker body (a crashed worker must never take the
    process down or leave {!join} hanging), and an idempotent graceful
    join. This module is that one place. Draining semantics — what the
    workers do before they exit — stay with the caller, since the pool
    drains a job queue while the engines run until a task counter or a
    fault says stop. *)

type t

val spawn : ?on_exn:(int -> exn -> unit) -> count:int -> (int -> unit) -> t
(** [spawn ~count f] starts [count] domains, the [i]-th running [f i].
    An exception escaping [f] is passed to [on_exn] (default: swallowed)
    and the domain exits cleanly; an exception escaping [on_exn] itself
    is swallowed too.
    @raise Invalid_argument if [count < 1]. *)

val count : t -> int
(** The team size given to {!spawn} (constant; joined workers still
    count). *)

val join : t -> unit
(** Wait for every worker to return. Idempotent and safe to call from
    multiple threads: each domain is joined exactly once. *)
