open! Flb_taskgraph
open! Flb_platform
module Flat_heap = Flb_heap.Flat_heap

let run ?(max_dups_per_task = 8) g machine =
  let s = Dup_schedule.create g machine in
  let blevel = Levels.blevel g in
  let ready = Flat_heap.create ~universe:(Taskgraph.num_tasks g) in
  let enqueue t =
    Flat_heap.add ready ~elt:t ~primary:(-.blevel.(t)) ~secondary:(float_of_int t)
  in
  List.iter enqueue (Taskgraph.entry_tasks g);
  let rec loop () =
    let t = Flat_heap.pop ready in
    if t >= 0 then begin
      let best = ref None in
      for p = 0 to Dup_schedule.num_procs s - 1 do
        let start, dups = Dup_eval.evaluate s g t p ~max_dups:max_dups_per_task in
        match !best with
        | Some (_, best_start, _) when best_start <= start -> ()
        | _ -> best := Some (p, start, dups)
      done;
      (match !best with
      | None -> assert false (* at least one processor exists *)
      | Some (p, start, dups) ->
        List.iter
          (fun (u, du_start) -> ignore (Dup_schedule.place s u ~proc:p ~start:du_start))
          dups;
        ignore (Dup_schedule.place s t ~proc:p ~start));
      Array.iter
        (fun (succ, _) -> if Dup_schedule.is_ready s succ then enqueue succ)
        (Taskgraph.succs g t);
      loop ()
    end
  in
  loop ();
  s

let schedule_length ?max_dups_per_task g machine =
  Dup_schedule.makespan (run ?max_dups_per_task g machine)
