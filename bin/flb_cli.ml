(* flb — command-line front end.

   Subcommands:
     gen       generate a task graph (paper workloads or synthetic shapes)
     info      print structural statistics of a task graph
     schedule  schedule a graph with a chosen algorithm
     compare   run every algorithm on one graph and tabulate the results
     trace     print the FLB execution trace (Table 1 format)
     execute   run a graph on real OCaml domains (lib/runtime)
     analyze   makespan attribution for an executed trace (realized critical
               path, slack, busy/idle, stragglers)
     experiment regenerate a figure of the paper from the CLI
     serve     run the scheduling daemon (lib/service)
     request   send one schedule request to a running daemon
     stream    ship a graph to a daemon incrementally (lib/stream, wire v3)
     metrics   fetch a daemon's Prometheus metrics
     stats     live introspection snapshot of a running daemon
     route     run the sharding router in front of several daemons
     drain     gracefully remove a backend from a routed fleet *)

open Cmdliner
open! Flb_taskgraph
open! Flb_platform
module E = Flb_experiments
module R = Flb_runtime

(* --- shared argument parsers --- *)

let graph_arg =
  let doc = "Task graph file (lib/taskgraph/serial.mli format), a .flb program file (lib/lang/parse.mli), or 'fig1' for the paper's example graph." in
  Arg.(required & opt (some string) None & info [ "g"; "graph" ] ~docv:"FILE" ~doc)

let load_graph path =
  if path = "fig1" then Example.fig1 ()
  else if Filename.check_suffix path ".flb" then
    Flb_lang.Program.compile (Flb_lang.Parse.load ~path)
  else Serial.load ~path

let procs_arg =
  let doc = "Number of processors in the clique machine." in
  Arg.(value & opt int 4 & info [ "p"; "procs" ] ~docv:"P" ~doc)

let mesh_arg =
  let doc =
    "Use a 2-D mesh machine of the given dimensions (e.g. 4x4) instead of a \
     clique; latency multiplies edge costs by the hop distance."
  in
  let parse s =
    match String.split_on_char 'x' (String.lowercase_ascii s) with
    | [ r; c ] -> begin
      match (int_of_string_opt r, int_of_string_opt c) with
      | Some r, Some c when r > 0 && c > 0 -> Ok (r, c)
      | _ -> Error (`Msg "expected ROWSxCOLS with positive integers")
    end
    | _ -> Error (`Msg "expected ROWSxCOLS, e.g. 4x4")
  in
  let print ppf (r, c) = Format.fprintf ppf "%dx%d" r c in
  Arg.(value
       & opt (some (conv (parse, print))) None
       & info [ "mesh" ] ~docv:"RxC" ~doc)

let build_machine procs mesh =
  match mesh with
  | Some (rows, cols) -> Machine.mesh ~rows ~cols
  | None -> Machine.clique ~num_procs:procs

let algo_arg =
  let doc = "Scheduling algorithm: FLB, ETF, MCP, FCP, DSC-LLB, HLFET, DLS, ISH, SARKAR-LLB or RR." in
  Arg.(value & opt string "FLB" & info [ "a"; "algorithm"; "algo" ] ~docv:"ALGO" ~doc)

let seed_arg =
  let doc = "Random seed (weights are deterministic per seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

(* --- gen --- *)

let gen_cmd =
  let workload_arg =
    let doc =
      "Workload: lu, laplace, stencil, fft, gauss, cholesky, chain, diamond, \
       forkjoin, random."
    in
    Arg.(value & opt string "lu" & info [ "w"; "workload" ] ~docv:"KIND" ~doc)
  in
  let tasks_arg =
    let doc = "Approximate number of tasks." in
    Arg.(value & opt int 2000 & info [ "n"; "tasks" ] ~docv:"V" ~doc)
  in
  let ccr_arg =
    let doc = "Target communication-to-computation ratio for random weights; 0 keeps unit weights." in
    Arg.(value & opt float 1.0 & info [ "ccr" ] ~docv:"CCR" ~doc)
  in
  let out_arg =
    let doc = "Output file ('-' for stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run workload tasks ccr seed out =
    let structure =
      match String.lowercase_ascii workload with
      | "lu" -> (E.Workload_suite.lu ~tasks ()).structure
      | "laplace" -> (E.Workload_suite.laplace ~tasks ()).structure
      | "stencil" -> (E.Workload_suite.stencil ~tasks ()).structure
      | "fft" -> (E.Workload_suite.fft ~tasks ()).structure
      | "gauss" ->
        Flb_workloads.Gauss.structure
          ~matrix_size:(Flb_workloads.Lu.matrix_size_for_tasks tasks)
      | "cholesky" ->
        Flb_workloads.Cholesky.structure
          ~tiles:(Flb_workloads.Cholesky.tiles_for_tasks tasks)
      | "chain" -> Flb_workloads.Shapes.chain ~length:tasks
      | "diamond" ->
        Flb_workloads.Shapes.diamond
          ~size:(int_of_float (ceil (sqrt (float_of_int tasks))))
      | "forkjoin" ->
        Flb_workloads.Shapes.fork_join ~branches:8 ~stages:(max 1 (tasks / 9))
      | "random" ->
        Flb_workloads.Random_dag.layered
          ~rng:(Flb_prelude.Rng.create ~seed)
          ~layers:(max 1 (tasks / 10))
          ~min_width:1 ~max_width:20 ~edge_probability:0.2
      | other -> failwith (Printf.sprintf "unknown workload %S" other)
    in
    let g =
      if ccr <= 0.0 then structure
      else
        Flb_workloads.Weights.assign structure
          ~rng:(Flb_prelude.Rng.create ~seed)
          ~ccr
    in
    let text = Serial.to_string g in
    if out = "-" then print_string text
    else begin
      Serial.save g ~path:out;
      Printf.printf "wrote %s: %d tasks, %d edges\n" out (Taskgraph.num_tasks g)
        (Taskgraph.num_edges g)
    end
  in
  let doc = "Generate a task graph." in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(const run $ workload_arg $ tasks_arg $ ccr_arg $ seed_arg $ out_arg)

(* --- info --- *)

let info_cmd =
  let exact_arg =
    let doc = "Also compute the exact width (cubic; small graphs only)." in
    Arg.(value & flag & info [ "exact-width" ] ~doc)
  in
  let bounds_arg =
    let doc = "Also print makespan lower bounds for this processor count." in
    Arg.(value & opt (some int) None & info [ "bounds" ] ~docv:"P" ~doc)
  in
  let run path exact bounds =
    let g = load_graph path in
    Format.printf "%a@." Taskgraph.pp g;
    Printf.printf "entry tasks:     %d\n" (List.length (Taskgraph.entry_tasks g));
    Printf.printf "exit tasks:      %d\n" (List.length (Taskgraph.exit_tasks g));
    Printf.printf "levels:          %d\n" (Topo.num_levels g);
    Printf.printf "sequential time: %g\n" (Taskgraph.total_comp g);
    Printf.printf "critical path:   %g\n" (Levels.cp_length g);
    Printf.printf "width bounds:    level %d, ready %d\n" (Width.max_level_width g)
      (Width.max_ready_bound g);
    Format.printf "stats:           %a@." Transform.pp_stats (Transform.stats g);
    if exact then Printf.printf "exact width:     %d\n" (Width.exact g);
    match bounds with
    | None -> ()
    | Some procs ->
      Printf.printf "lower bounds (P=%d): cp %.3f, work %.3f, fernandez %.3f\n"
        procs
        (Lower_bounds.computation_critical_path g)
        (Lower_bounds.work_bound g ~procs)
        (Lower_bounds.fernandez_bound g ~procs)
  in
  let doc = "Print structural statistics of a task graph." in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run $ graph_arg $ exact_arg $ bounds_arg)

(* --- schedule --- *)

let schedule_cmd =
  let graph_default_arg =
    let doc =
      "Task graph file (lib/taskgraph/serial.mli format), a .flb program file, \
       or 'fig1' (default) for the paper's example graph."
    in
    Arg.(value & opt string "fig1" & info [ "g"; "graph" ] ~docv:"FILE" ~doc)
  in
  let gantt_arg = Arg.(value & flag & info [ "gantt" ] ~doc:"Draw a text Gantt chart.") in
  let listing_arg =
    Arg.(value & flag & info [ "listing" ] ~doc:"Print the task-by-task listing.")
  in
  let simulate_arg =
    Arg.(value & flag
         & info [ "simulate" ]
             ~doc:"Replay the schedule in the discrete-event machine and cross-check.")
  in
  let dot_arg =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE" ~doc:"Write a processor-colored DOT file.")
  in
  let chrome_arg =
    Arg.(value & opt (some string) None
         & info [ "chrome" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace-event JSON file (chrome://tracing).")
  in
  let svg_arg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"FILE" ~doc:"Write an SVG Gantt chart.")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE"
             ~doc:"Write the schedule itself (reloadable by validate-schedule).")
  in
  let profile_arg =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Run under a live probe and print scheduler telemetry \
                   (iterations, queue operations, per-phase time).")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace of the scheduler's own execution \
                   (phase spans, ready-set counter; open in Perfetto).")
  in
  let metrics_out_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write run telemetry as a Prometheus-style text dump \
                   (.json suffix switches to JSON).")
  in
  let run path algo procs mesh gantt listing simulate dot chrome svg save profile
      trace_out metrics_out =
    let g = load_graph path in
    let machine = build_machine procs mesh in
    match E.Registry.find algo with
    | None -> prerr_endline ("unknown algorithm: " ^ algo); exit 2
    | Some a ->
      let telemetry = profile || trace_out <> None || metrics_out <> None in
      let tracer =
        if trace_out <> None then Flb_obs.Trace.create () else Flb_obs.Trace.null
      in
      let registry =
        if metrics_out <> None then Some (Flb_obs.Metrics.create ()) else None
      in
      let s, report =
        if telemetry then
          let s, report = E.Registry.run_with_report ~tracer a g machine in
          (s, Some report)
        else (a.E.Registry.run g machine, None)
      in
      Printf.printf "%s on %d processors: makespan %g, speedup %.2f, efficiency %.2f\n"
        a.E.Registry.name procs (Schedule.makespan s) (Metrics.speedup s)
        (Metrics.efficiency s);
      (match Schedule.validate s with
      | Ok () -> print_endline "validation: ok"
      | Error es ->
        Printf.printf "validation FAILED:\n";
        List.iter (fun e -> Printf.printf "  %s\n" e) es;
        exit 1);
      if simulate then begin
        match Flb_sim.Simulator.run ~tracer ?metrics:registry s with
        | Ok o ->
          Printf.printf "simulation: makespan %g, %d messages, volume %g — %s\n"
            o.Flb_sim.Simulator.makespan o.Flb_sim.Simulator.messages
            o.Flb_sim.Simulator.comm_volume
            (if Flb_sim.Simulator.agrees_with_schedule s o then
               "agrees with analytic schedule"
             else "DISAGREES with analytic schedule")
        | Error _ -> print_endline "simulation: FAILED to replay"
      end;
      (match report with
      | Some r when profile -> print_string (Flb_obs.Probe.render r)
      | Some _ | None -> ());
      (match trace_out with
      | None -> ()
      | Some out ->
        Flb_obs.Trace.save_chrome tracer ~path:out
          ~name:(Printf.sprintf "%s on %s (P=%d)" a.E.Registry.name path procs);
        Printf.printf "wrote %s\n" out);
      (match registry with
      | None -> ()
      | Some reg ->
        Option.iter (fun r -> Flb_obs.Probe.to_metrics reg r) report;
        let open Flb_obs.Metrics in
        Gauge.set (gauge reg ~help:"schedule makespan" "schedule_makespan")
          (Schedule.makespan s);
        Gauge.set (gauge reg ~help:"sequential time / makespan" "schedule_speedup")
          (Metrics.speedup s);
        Gauge.set (gauge reg ~help:"speedup / P" "schedule_efficiency")
          (Metrics.efficiency s);
        Gauge.set
          (gauge reg ~help:"max busy / mean busy" "schedule_load_imbalance")
          (Metrics.load_imbalance s);
        Gauge.set
          (gauge reg ~help:"idle fraction of the P x makespan area"
             "schedule_idle_fraction")
          (Metrics.idle_fraction s);
        let out = Option.get metrics_out in
        if Filename.check_suffix out ".json" then save_json reg ~path:out
        else save_prometheus reg ~path:out;
        Printf.printf "wrote %s\n" out);
      if gantt then print_string (Gantt.render s);
      if listing then print_string (Gantt.render_listing s);
      (match chrome with
      | None -> ()
      | Some out ->
        Chrome_trace.save s ~path:out;
        Printf.printf "wrote %s\n" out);
      (match svg with
      | None -> ()
      | Some out ->
        Svg.save s ~path:out;
        Printf.printf "wrote %s\n" out);
      (match save with
      | None -> ()
      | Some out ->
        Schedule_io.save s ~path:out;
        Printf.printf "wrote %s\n" out);
      match dot with
      | None -> ()
      | Some out ->
        let text =
          Dot.to_string_with_placement g ~proc_of:(fun t -> Schedule.proc s t)
        in
        Out_channel.with_open_text out (fun oc -> output_string oc text);
        Printf.printf "wrote %s\n" out
  in
  let doc = "Schedule a task graph with one algorithm." in
  Cmd.v (Cmd.info "schedule" ~doc)
    Term.(
      const run $ graph_default_arg $ algo_arg $ procs_arg $ mesh_arg $ gantt_arg
      $ listing_arg $ simulate_arg $ dot_arg $ chrome_arg $ svg_arg $ save_arg
      $ profile_arg $ trace_out_arg $ metrics_out_arg)

(* --- compare --- *)

let compare_cmd =
  let run path procs mesh =
    let g = load_graph path in
    let machine = build_machine procs mesh in
    let mcp_len = Flb_schedulers.Mcp.schedule_length g machine in
    let table =
      E.Table.create ~header:[ "algorithm"; "makespan"; "NSL vs MCP"; "speedup" ]
    in
    List.iter
      (fun (a : E.Registry.t) ->
        let s = a.run g machine in
        E.Table.add_row table
          [
            a.name;
            Printf.sprintf "%g" (Schedule.makespan s);
            E.Table.cell_float (Metrics.nsl s ~reference:mcp_len);
            E.Table.cell_float (Metrics.speedup s);
          ])
      E.Registry.extended_set;
    print_string (E.Table.render table)
  in
  let doc = "Run every algorithm on a graph and tabulate the results." in
  Cmd.v (Cmd.info "compare" ~doc) Term.(const run $ graph_arg $ procs_arg $ mesh_arg)

(* --- compile --- *)

let compile_cmd =
  let program_arg =
    let doc = "Program file in the (seq/par/task) language; see lib/lang/parse.mli." in
    Arg.(required & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Output task-graph file ('-' for stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run program out =
    match Flb_lang.Parse.load ~path:program with
    | exception Flb_lang.Parse.Parse_error { position; message } ->
      Printf.eprintf "%s: at offset %d: %s\n" program position message;
      exit 2
    | p ->
      let g = Flb_lang.Program.compile p in
      if out = "-" then print_string (Serial.to_string g)
      else begin
        Serial.save g ~path:out;
        Printf.printf "wrote %s: %d tasks, %d edges\n" out (Taskgraph.num_tasks g)
          (Taskgraph.num_edges g)
      end
  in
  let doc = "Compile a structured program into a task graph." in
  Cmd.v (Cmd.info "compile" ~doc) Term.(const run $ program_arg $ out_arg)

(* --- profile --- *)

let profile_cmd =
  let run path =
    let g = load_graph path in
    print_string (Profile.render g);
    Printf.printf "average parallelism %.2f, peak %d\n"
      (Profile.average_parallelism g)
      (Profile.peak_parallelism g)
  in
  let doc =
    "Print the graph's idealized parallelism profile (running tasks over \
     time on unbounded processors)."
  in
  Cmd.v (Cmd.info "profile" ~doc) Term.(const run $ graph_arg)

(* --- validate-schedule --- *)

let validate_schedule_cmd =
  let schedule_arg =
    let doc = "Schedule file produced by 'schedule --save'." in
    Arg.(required & opt (some string) None & info [ "s"; "schedule" ] ~docv:"FILE" ~doc)
  in
  let run graph_path procs sched_path =
    let g = load_graph graph_path in
    let machine = Machine.clique ~num_procs:procs in
    match Schedule_io.load g machine ~path:sched_path with
    | exception Schedule_io.Parse_error { line; message } ->
      Printf.eprintf "%s:%d: %s\n" sched_path line message;
      exit 2
    | s ->
      Printf.printf "loaded: makespan %g\n" (Schedule.makespan s);
      (match Schedule.validate s with
      | Ok () -> print_endline "validation: ok"
      | Error es ->
        print_endline "validation FAILED:";
        List.iter (fun e -> Printf.printf "  %s\n" e) es;
        exit 1);
      match Flb_sim.Simulator.run s with
      | Ok o ->
        Printf.printf "simulation: makespan %g (%s)\n" o.Flb_sim.Simulator.makespan
          (if Flb_sim.Simulator.agrees_with_schedule s o then "exact replay"
           else "replay starts earlier somewhere: schedule has deliberate idling")
      | Error _ ->
        print_endline "simulation: replay FAILED";
        exit 1
  in
  let doc = "Load a saved schedule and check it against graph and machine." in
  Cmd.v
    (Cmd.info "validate-schedule" ~doc)
    Term.(const run $ graph_arg $ procs_arg $ schedule_arg)

(* --- dsh (duplication) --- *)

let dsh_cmd =
  let budget_arg =
    Arg.(value & opt int 8
         & info [ "budget" ] ~docv:"N" ~doc:"Duplications allowed per placement.")
  in
  let run path procs budget =
    let g = load_graph path in
    let machine = Machine.clique ~num_procs:procs in
    let s = Flb_duplication.Dsh.run ~max_dups_per_task:budget g machine in
    let v = Taskgraph.num_tasks g in
    let copies = Flb_duplication.Dup_schedule.copies_placed s in
    Printf.printf
      "DSH on %d processors: makespan %g, %d copies for %d tasks (%.1f%% duplication)\n"
      procs
      (Flb_duplication.Dup_schedule.makespan s)
      copies v
      (100.0 *. float_of_int (copies - v) /. float_of_int v);
    (match Flb_duplication.Dup_schedule.validate s with
    | Ok () -> print_endline "validation: ok"
    | Error es ->
      print_endline "validation FAILED:";
      List.iter (fun e -> Printf.printf "  %s\n" e) es;
      exit 1);
    Printf.printf "FLB without duplication: makespan %g\n"
      (Flb_core.Flb.schedule_length g machine)
  in
  let doc = "Schedule with the DSH duplication heuristic and compare to FLB." in
  Cmd.v (Cmd.info "dsh" ~doc) Term.(const run $ graph_arg $ procs_arg $ budget_arg)

(* --- trace --- *)

let trace_cmd =
  let run path procs =
    let g = load_graph path in
    let machine = Machine.clique ~num_procs:procs in
    let sched, rows = Flb_core.Flb_trace.collect g machine in
    print_string (Flb_core.Flb_trace.render ~num_procs:procs rows);
    Printf.printf "schedule length: %g\n" (Schedule.makespan sched)
  in
  let doc = "Print the FLB execution trace (the paper's Table 1 format)." in
  let graph_default =
    let doc = "Task graph file, or 'fig1' (default) for the paper's example." in
    Arg.(value & opt string "fig1" & info [ "g"; "graph" ] ~docv:"FILE" ~doc)
  in
  let procs_default =
    Arg.(value & opt int 2 & info [ "p"; "procs" ] ~docv:"P" ~doc:"Processors.")
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ graph_default $ procs_default)

(* --- execute --- *)

let execute_cmd =
  let graph_default_arg =
    let doc =
      "Task graph file (lib/taskgraph/serial.mli format), a .flb program file, \
       or 'fig1' (default) for the paper's example graph."
    in
    Arg.(value & opt string "fig1" & info [ "g"; "graph" ] ~docv:"FILE" ~doc)
  in
  let engine_arg =
    let doc =
      "Execution engine: $(b,static) (run the schedule produced by \
       --algorithm), $(b,steal) (decentralized work stealing, no schedule), \
       or $(b,affinity)[:ALGO] (work stealing seeded and routed by the \
       schedule's placements as locality hints; ALGO overrides --algorithm)."
    in
    Arg.(value & opt string "static" & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc)
  in
  let domains_arg =
    Arg.(value & opt int 2
         & info [ "d"; "domains" ] ~docv:"N" ~doc:"Worker domains to spawn.")
  in
  let unit_ns_arg =
    Arg.(value & opt float 1000.0
         & info [ "unit-ns" ] ~docv:"NS"
             ~doc:"Real nanoseconds of spin-work per weight unit; 0 makes \
                   tasks instantaneous (not allowed with --faults).")
  in
  let faults_arg =
    Arg.(value & opt string ""
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Comma-separated fault events, times in weight units: \
                   slow:D:FACTOR, stall:D:AT:DURATION, kill:D:AT. How a \
                   killed domain's work is recovered is chosen by \
                   $(b,--recover).")
  in
  let recover_arg =
    Arg.(value & opt string "steal"
         & info [ "recover" ] ~docv:"POLICY"
             ~doc:"Static-engine reaction to a killed domain: $(b,none) \
                   (strand its work), $(b,steal) (survivors drain its queue \
                   in place), or $(b,resched)[:ALGO] (snapshot the executed \
                   prefix and reschedule the unexecuted frontier on the \
                   survivors with ALGO, default FLB).")
  in
  let no_comm_arg =
    Arg.(value & flag
         & info [ "no-comm" ]
             ~doc:"Do not charge cross-domain edges their communication cost \
                   as a real arrival delay.")
  in
  let virtual_arg =
    Arg.(value & flag
         & info [ "virtual" ]
             ~doc:"Deterministic single-threaded virtual-clock mode instead \
                   of real domains (fault-free static mode reproduces the \
                   discrete-event simulator bit-for-bit; with --faults the \
                   run is still deterministic, with fault times read \
                   directly off the virtual clock).")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write an execution trace with one track per domain (task \
                   spans, steal/recover/stall/killed instants). A .jsonl \
                   suffix writes the line-oriented schema $(b,flb analyze) \
                   reads (also produced in --virtual mode); anything else \
                   writes a Chrome/Perfetto trace.")
  in
  let flight_out_arg =
    Arg.(value & opt (some string) None
         & info [ "flight-out" ] ~docv:"FILE"
             ~doc:"Flight-recorder dump file. The recorder always runs \
                   (fixed-size per-domain rings of recent events) and dumps \
                   here on kill/stall faults and at run end. Defaults to \
                   flb-flight.jsonl when --faults is non-empty; readable by \
                   $(b,flb analyze).")
  in
  let metrics_out_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write rt_* runtime metrics as a Prometheus-style text dump \
                   (.json suffix switches to JSON).")
  in
  let run path engine_s algo domains unit_ns faults_s recover_s no_comm virt seed
      trace_out flight_out metrics_out =
    let g = load_graph path in
    let engine =
      match String.lowercase_ascii engine_s with
      | "static" -> `Static
      | "steal" -> `Steal
      | "affinity" -> `Affinity None
      | s when String.length s > 9 && String.sub s 0 9 = "affinity:" ->
        `Affinity (Some (String.sub engine_s 9 (String.length engine_s - 9)))
      | _ ->
        prerr_endline
          ("bad --engine: expected static, steal or affinity[:ALGO], got "
          ^ engine_s);
        exit 2
    in
    let faults =
      match R.Fault.parse faults_s with
      | Ok f -> f
      | Error e ->
        prerr_endline ("bad --faults: " ^ R.Fault.error_to_string e);
        exit 2
    in
    let recover =
      match String.lowercase_ascii recover_s with
      | "none" -> R.Engine.No_recovery
      | "steal" -> R.Engine.Steal_queues
      | "resched" -> R.Engine.Resched "FLB"
      | s when String.length s > 8 && String.sub s 0 8 = "resched:" ->
        R.Engine.Resched (String.sub recover_s 8 (String.length recover_s - 8))
      | _ ->
        prerr_endline
          ("bad --recover: expected none, steal or resched[:ALGO], got "
          ^ recover_s);
        exit 2
    in
    let sched_for algo_name =
      match E.Registry.find algo_name with
      | None ->
        prerr_endline ("unknown algorithm: " ^ algo_name);
        exit 2
      | Some a ->
        let machine = Machine.clique ~num_procs:domains in
        let s = a.E.Registry.run g machine in
        Printf.printf "%s on %d domains: predicted makespan %g\n" a.E.Registry.name
          domains (Schedule.makespan s);
        s
    in
    let sched_for_static () = sched_for algo in
    (* The hint-providing schedule: --engine affinity:ALGO overrides
       --algorithm. *)
    let sched_for_affinity algo_o = sched_for (Option.value algo_o ~default:algo) in
    let engine_name =
      match engine with
      | `Static -> "static"
      | `Steal -> "steal"
      | `Affinity _ -> "affinity"
    in
    let write_virtual_trace ~start ~finish ~exec_domain ~num_domains =
      match trace_out with
      | None -> ()
      | Some out ->
        let text =
          R.Analyze.jsonl_of_times
            ~meta:
              [ ("engine", engine_name); ("clock", "virtual");
                ("domains", string_of_int num_domains) ]
            ~start ~finish ~exec_domain ()
        in
        Out_channel.with_open_text out (fun oc -> output_string oc text);
        Printf.printf "wrote %s\n" out
    in
    if virt then begin
      if faults = R.Fault.none then begin
        let o =
          match engine with
          | `Static -> R.Virtual_clock.run_static (sched_for_static ())
          | `Steal -> R.Virtual_clock.run_steal ~charge_comm:(not no_comm) ~domains g
          | `Affinity algo_o ->
            R.Virtual_clock.run_affinity ~charge_comm:(not no_comm)
              (sched_for_affinity algo_o)
        in
        Printf.printf "virtual clock: makespan %g, %d steals\n"
          o.R.Virtual_clock.makespan o.R.Virtual_clock.steals;
        (match engine with
        | `Affinity _ ->
          Printf.printf "  hint hits %d, misses %d\n" o.R.Virtual_clock.hint_hits
            o.R.Virtual_clock.hint_misses
        | `Static | `Steal -> ());
        Array.iteri
          (fun d n -> Printf.printf "  D%d: %d tasks\n" d n)
          o.R.Virtual_clock.per_domain_tasks;
        write_virtual_trace ~start:o.R.Virtual_clock.start
          ~finish:o.R.Virtual_clock.finish
          ~exec_domain:o.R.Virtual_clock.exec_domain
          ~num_domains:(Array.length o.R.Virtual_clock.per_domain_tasks)
      end
      else begin
        let o =
          match engine with
          | `Static ->
            R.Virtual_clock.run_static_faulty ~faults ~recover (sched_for_static ())
          | `Steal ->
            R.Virtual_clock.run_steal_faulty ~charge_comm:(not no_comm) ~faults
              ~domains g
          | `Affinity algo_o ->
            R.Virtual_clock.run_affinity_faulty ~charge_comm:(not no_comm) ~faults
              (sched_for_affinity algo_o)
        in
        Printf.printf
          "virtual clock (%s recovery): makespan %g, %d/%d tasks, %d killed, %d \
           rescheds, %d recovered, %d steals\n"
          (R.Engine.recovery_to_string recover)
          o.R.Virtual_clock.makespan o.R.Virtual_clock.completed
          o.R.Virtual_clock.total o.R.Virtual_clock.killed
          o.R.Virtual_clock.rescheds o.R.Virtual_clock.recovered
          o.R.Virtual_clock.steals;
        Array.iteri
          (fun d n -> Printf.printf "  D%d: %d tasks\n" d n)
          o.R.Virtual_clock.per_domain_tasks;
        write_virtual_trace ~start:o.R.Virtual_clock.start
          ~finish:o.R.Virtual_clock.finish
          ~exec_domain:o.R.Virtual_clock.exec_domain
          ~num_domains:(Array.length o.R.Virtual_clock.per_domain_tasks);
        if not (R.Virtual_clock.faulty_complete o) then begin
          prerr_endline "execution incomplete (work was lost to kills)";
          exit 1
        end
      end
    end
    else begin
      let tracer =
        if trace_out <> None then Flb_obs.Trace.create () else Flb_obs.Trace.null
      in
      let registry =
        if metrics_out <> None then Some (Flb_obs.Metrics.create ()) else None
      in
      (* A faulty run is exactly when a post-mortem is wanted, so the
         flight recorder dumps somewhere even without --flight-out. *)
      let flight_path =
        match flight_out with
        | Some _ as p -> p
        | None -> if faults <> R.Fault.none then Some "flb-flight.jsonl" else None
      in
      let config =
        {
          R.Engine.domains;
          unit_ns;
          charge_comm = not no_comm;
          faults;
          recover;
          seed;
          tracer;
          metrics = registry;
          flight_capacity = Flb_obs.Flight_recorder.default_capacity;
          flight_path;
          trace_id = 0L;
        }
      in
      let o =
        match engine with
        | `Static -> R.Static.run ~config (sched_for_static ())
        | `Steal -> R.Steal.run ~config g
        | `Affinity algo_o -> R.Affinity.run ~config (sched_for_affinity algo_o)
      in
      Format.printf "%a@." R.Engine.pp_outcome o;
      Array.iteri
        (fun d n ->
          Printf.printf "  D%d: %d tasks, busy %.3f ms, idle %.3f ms\n" d n
            (o.R.Engine.per_domain_busy_ns.(d) /. 1e6)
            (o.R.Engine.per_domain_idle_ns.(d) /. 1e6))
        o.R.Engine.per_domain_tasks;
      (match trace_out with
      | None -> ()
      | Some out ->
        if Filename.check_suffix out ".jsonl" then
          Flb_obs.Trace.save_jsonl tracer ~path:out
        else
          Flb_obs.Trace.save_chrome tracer ~path:out
            ~name:(Printf.sprintf "%s on %s (%d domains)" engine_name path domains);
        Printf.printf "wrote %s\n" out);
      (match flight_path with
      | Some out when faults <> R.Fault.none -> Printf.printf "flight recorder dump: %s\n" out
      | _ -> ());
      (match (registry, metrics_out) with
      | Some reg, Some out ->
        let open Flb_obs.Metrics in
        if Filename.check_suffix out ".json" then save_json reg ~path:out
        else save_prometheus reg ~path:out;
        Printf.printf "wrote %s\n" out
      | _ -> ());
      if not (R.Engine.complete o) then begin
        prerr_endline "execution incomplete (every domain was killed)";
        exit 1
      end
    end
  in
  let doc = "Execute a task graph on real OCaml 5 domains." in
  Cmd.v (Cmd.info "execute" ~doc)
    Term.(
      const run $ graph_default_arg $ engine_arg $ algo_arg $ domains_arg
      $ unit_ns_arg $ faults_arg $ recover_arg $ no_comm_arg $ virtual_arg
      $ seed_arg $ trace_out_arg $ flight_out_arg $ metrics_out_arg)

(* --- serve / request / metrics (the flb_service daemon) --- *)

let port_arg =
  let doc = "TCP port of the scheduling daemon." in
  Arg.(value & opt int Flb_service.Server.default_config.port
       & info [ "port" ] ~docv:"PORT" ~doc)

let host_arg =
  let doc = "Host of the scheduling daemon." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let serve_cmd =
  let domains_arg =
    Arg.(value & opt int 2
         & info [ "domains" ] ~docv:"N" ~doc:"Worker domains in the pool.")
  in
  let queue_arg =
    Arg.(value & opt int 64
         & info [ "queue-capacity" ] ~docv:"N"
             ~doc:"Bound on queued jobs; beyond it requests are answered \
                   Overloaded.")
  in
  let cache_arg =
    Arg.(value & opt int 256
         & info [ "cache-capacity" ] ~docv:"N" ~doc:"LRU schedule-cache entries.")
  in
  let deadline_arg =
    Arg.(value & opt float 30.0
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Queueing deadline: jobs waiting longer answer an error \
                   instead of running.")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Record request traces (one req-<id> track per request \
                   plus scheduler phase tracks) and write them on shutdown; \
                   .jsonl suffix for the $(b,flb analyze) schema, anything \
                   else for Chrome/Perfetto. Serializes traced scheduling — \
                   a debugging mode.")
  in
  let stream_batch_arg =
    Arg.(value & opt int Flb_stream.Scheduler_loop.default_config.batch_tasks
         & info [ "stream-batch-tasks" ] ~docv:"N"
             ~doc:"Streaming: run a scheduling round as soon as a group \
                   has this many pending tasks.")
  in
  let stream_tick_arg =
    Arg.(value & opt float Flb_stream.Scheduler_loop.default_config.tick_period_s
         & info [ "stream-tick" ] ~docv:"SECONDS"
             ~doc:"Streaming: periodic round timer for quiescent groups \
                   with pending work.")
  in
  let run host port domains queue_capacity cache_capacity deadline_s trace_out
      stream_batch_tasks stream_tick =
    let tracer =
      if trace_out <> None then Flb_obs.Trace.create () else Flb_obs.Trace.null
    in
    let config =
      {
        Flb_service.Server.default_config with
        host;
        port;
        domains;
        queue_capacity;
        cache_capacity;
        deadline_s;
        tracer;
        stream =
          {
            Flb_stream.Scheduler_loop.default_config with
            batch_tasks = stream_batch_tasks;
            tick_period_s = stream_tick;
          };
      }
    in
    let srv = Flb_service.Server.start config in
    Printf.printf "flb daemon listening on %s:%d (%d domains, queue %d, cache %d)\n%!"
      host
      (Flb_service.Server.port srv)
      domains queue_capacity cache_capacity;
    Flb_service.Server.wait srv;
    (match trace_out with
    | None -> ()
    | Some out ->
      if Filename.check_suffix out ".jsonl" then
        Flb_obs.Trace.save_jsonl tracer ~path:out
      else Flb_obs.Trace.save_chrome tracer ~path:out ~name:"flb daemon";
      Printf.printf "wrote %s\n" out);
    print_endline "flb daemon stopped"
  in
  let doc = "Run the scheduling daemon." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ host_arg $ port_arg $ domains_arg $ queue_arg $ cache_arg
          $ deadline_arg $ trace_out_arg $ stream_batch_arg $ stream_tick_arg)

let request_cmd =
  let graph_default_arg =
    let doc =
      "Task graph file (lib/taskgraph/serial.mli format), a .flb program \
       file, or 'fig1' (default) for the paper's example graph."
    in
    Arg.(value & opt string "fig1" & info [ "g"; "graph" ] ~docv:"FILE" ~doc)
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE"
             ~doc:"Write the returned schedule (reloadable by \
                   validate-schedule).")
  in
  let shutdown_arg =
    Arg.(value & flag
         & info [ "shutdown" ] ~doc:"Ask the daemon to drain and exit instead \
                                     of scheduling.")
  in
  let run host port path algo procs save shutdown =
    let client = Flb_service.Client.connect ~host ~port () in
    Fun.protect
      ~finally:(fun () -> Flb_service.Client.close client)
      (fun () ->
        if shutdown then begin
          match Flb_service.Client.shutdown client with
          | Ok () -> print_endline "daemon shutting down"
          | Error msg -> prerr_endline ("shutdown failed: " ^ msg); exit 1
        end
        else begin
          let graph = Serial.to_string (load_graph path) in
          match Flb_service.Client.schedule client ~graph ~algo ~procs with
          | Ok (Flb_service.Wire.Scheduled r) ->
            Printf.printf
              "%s on %d processors: makespan %g, speedup %.2f, NSL vs MCP %.3f \
               (cache %s)\n"
              algo procs r.makespan r.speedup r.nsl
              (if r.cache_hit then "hit" else "miss");
            let { Flb_service.Wire.queue_wait_s; cache_s; sched_s; exec_s } =
              r.breakdown
            in
            if exec_s > 0.0 || cache_s > 0.0 then
              Printf.printf
                "  server: queue-wait %.3f ms, cache %.3f ms, schedule %.3f \
                 ms, execute %.3f ms\n"
                (queue_wait_s *. 1e3) (cache_s *. 1e3) (sched_s *. 1e3)
                (exec_s *. 1e3);
            Printf.printf "  trace id: %s\n"
              (Flb_obs.Trace_context.id_to_string
                 (Flb_service.Client.last_trace_id client));
            (match save with
            | None -> ()
            | Some out ->
              Out_channel.with_open_text out (fun oc ->
                  output_string oc r.schedule);
              Printf.printf "wrote %s\n" out)
          | Ok Flb_service.Wire.Overloaded ->
            prerr_endline "daemon overloaded: request shed, retry later";
            exit 3
          | Ok (Flb_service.Wire.Error { code; message }) ->
            Printf.eprintf "error (%s): %s\n"
              (Flb_service.Wire.error_code_to_string code)
              message;
            exit 1
          | Ok _ -> prerr_endline "unexpected response"; exit 1
          | Error msg -> prerr_endline ("transport error: " ^ msg); exit 1
        end)
  in
  let doc = "Send one schedule request to a running daemon." in
  Cmd.v (Cmd.info "request" ~doc)
    Term.(const run $ host_arg $ port_arg $ graph_default_arg $ algo_arg
          $ procs_arg $ save_arg $ shutdown_arg)

let stream_cmd =
  let graph_default_arg =
    let doc =
      "Task graph file (lib/taskgraph/serial.mli format), a .flb program \
       file, or 'fig1' (default) for the paper's example graph."
    in
    Arg.(value & opt string "fig1" & info [ "g"; "graph" ] ~docv:"FILE" ~doc)
  in
  let batches_arg =
    Arg.(value & opt int 2
         & info [ "batches" ] ~docv:"N"
             ~doc:"Ship the graph in this many topologically ordered \
                   task/edge batches, polling for placements after each.")
  in
  let placements_arg =
    Arg.(value & flag
         & info [ "placements" ]
             ~doc:"Print every placement as it is announced (stream task \
                   id, processor, start time).")
  in
  let run host port path algo procs batches placements_flag =
    let g = load_graph path in
    let total = Taskgraph.num_tasks g in
    let chunks = Flb_stream.Chunk.plan ~chunks:batches g in
    let client = Flb_service.Client.connect ~host ~port () in
    Fun.protect
      ~finally:(fun () -> Flb_service.Client.close client)
      (fun () ->
        let placed = ref 0 in
        let note what (p : Flb_service.Client.placed) =
          placed := !placed + Array.length p.placements;
          if Array.length p.placements > 0 then begin
            Printf.printf "%s: round %d placed %d tasks (%d/%d total)\n" what
              p.round
              (Array.length p.placements)
              !placed total;
            if placements_flag then
              Array.iter
                (fun (task, proc, start) ->
                  Printf.printf "  task %d -> P%d @ %g\n" task proc start)
                p.placements
          end
        in
        let fail msg = prerr_endline ("stream failed: " ^ msg); exit 1 in
        let stream =
          match Flb_service.Client.open_stream client ~algo ~procs with
          | Ok id -> id
          | Error msg -> fail msg
        in
        Printf.printf "stream %d opened: %s on %d processors, %d tasks in %d batches\n"
          stream algo procs total (List.length chunks);
        List.iteri
          (fun i { Flb_stream.Chunk.comps; edges } ->
            Printf.printf "batch %d: %d tasks, %d edges\n" (i + 1)
              (Array.length comps) (Array.length edges);
            (match Flb_service.Client.add_tasks client ~stream ~comps with
            | Ok p -> note "  add-tasks" p
            | Error msg -> fail msg);
            (if Array.length edges > 0 then
               match Flb_service.Client.add_edges client ~stream ~edges with
               | Ok p -> note "  add-edges" p
               | Error msg -> fail msg);
            match Flb_service.Client.poll_stream client ~stream with
            | Ok p -> note "  poll" p
            | Error msg -> fail msg)
          chunks;
        match Flb_service.Client.seal_stream client ~stream with
        | Error msg -> fail msg
        | Ok final ->
          note "seal" final;
          if not final.final || !placed <> total then begin
            Printf.eprintf "stream incomplete: %d of %d tasks placed\n" !placed
              total;
            exit 1
          end;
          Printf.printf "final makespan %g after %d rounds\n" final.makespan
            final.round)
  in
  let doc =
    "Stream a task graph to a running daemon incrementally: open a \
     session, ship tasks and edges in batches, and collect placements \
     as rolling scheduling rounds announce them."
  in
  Cmd.v (Cmd.info "stream" ~doc)
    Term.(const run $ host_arg $ port_arg $ graph_default_arg $ algo_arg
          $ procs_arg $ batches_arg $ placements_arg)

let metrics_cmd =
  let run host port =
    let client = Flb_service.Client.connect ~host ~port () in
    Fun.protect
      ~finally:(fun () -> Flb_service.Client.close client)
      (fun () ->
        match Flb_service.Client.get_metrics client with
        | Ok text -> print_string text
        | Error msg -> prerr_endline ("metrics failed: " ^ msg); exit 1)
  in
  let doc = "Fetch a running daemon's Prometheus metrics exposition." in
  Cmd.v (Cmd.info "metrics" ~doc) Term.(const run $ host_arg $ port_arg)

let stats_cmd =
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"One JSON object (cache, pool, per-connection table, \
                   metrics) instead of the Prometheus exposition.")
  in
  let run host port json =
    let client = Flb_service.Client.connect ~host ~port () in
    Fun.protect
      ~finally:(fun () -> Flb_service.Client.close client)
      (fun () ->
        let format =
          if json then Flb_service.Wire.Stats_json
          else Flb_service.Wire.Stats_prometheus
        in
        match Flb_service.Client.get_stats client ~format with
        | Ok text ->
          print_string text;
          if text <> "" && text.[String.length text - 1] <> '\n' then
            print_newline ()
        | Error msg ->
          prerr_endline ("stats failed: " ^ msg);
          exit 1)
  in
  let doc =
    "Live introspection snapshot of a running daemon: uptime, cache hit \
     rate, pool depth, per-connection state — no restart required."
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ host_arg $ port_arg $ json_arg)

(* --- route (the flb_router sharding tier) --- *)

let route_cmd =
  let backends_arg =
    let doc =
      "Comma-separated backend daemons, each host:port (or just a port, \
       meaning 127.0.0.1)."
    in
    Arg.(required & opt (some string) None
         & info [ "backends" ] ~docv:"HOST:PORT,..." ~doc)
  in
  let route_port_arg =
    let doc = "TCP port the router listens on." in
    Arg.(value & opt int Flb_router.Router.default_config.port
         & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let replication_arg =
    Arg.(value & opt int 2
         & info [ "replication" ] ~docv:"R"
             ~doc:"Replicas per shard: how many ring members may serve one \
                   graph digest.")
  in
  let split_arg =
    Arg.(value & opt int 2
         & info [ "split-factor" ] ~docv:"S"
             ~doc:"Replica-set multiplier for saturated shards.")
  in
  let vnodes_arg =
    Arg.(value & opt int 64
         & info [ "vnodes" ] ~docv:"N" ~doc:"Ring points per backend.")
  in
  let policy_arg =
    Arg.(value
         & opt (enum [ ("hash", Flb_router.Router.Hash);
                       ("round-robin", Flb_router.Router.Round_robin) ])
             Flb_router.Router.Hash
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"$(b,hash) shards by graph digest on the consistent-hash \
                   ring; $(b,round-robin) ignores the ring (baseline).")
  in
  let connect_timeout_arg =
    Arg.(value & opt float 1.0
         & info [ "connect-timeout" ] ~docv:"SECONDS"
             ~doc:"Backend connect deadline before failing over.")
  in
  let call_timeout_arg =
    Arg.(value & opt float 10.0
         & info [ "call-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-request backend I/O deadline before failing over.")
  in
  let health_arg =
    Arg.(value & opt float 2.0
         & info [ "health-period" ] ~docv:"SECONDS"
             ~doc:"Ping/load-probe cadence against every backend.")
  in
  let peers_arg =
    Arg.(value & opt string ""
         & info [ "peers" ] ~docv:"HOST:PORT,..."
             ~doc:"Comma-separated fellow router replicas to gossip backend \
                   health and split decisions with.")
  in
  let gossip_arg =
    Arg.(value & opt float 1.0
         & info [ "gossip-period" ] ~docv:"SECONDS"
             ~doc:"Peer digest-exchange cadence; 0 disables gossip.")
  in
  let fail_threshold_arg =
    Arg.(value & opt int 2
         & info [ "fail-threshold" ] ~docv:"K"
             ~doc:"Consecutive probe/call failures before a backend is marked \
                   down (anti-flap hysteresis).")
  in
  let hedge_after_arg =
    Arg.(value & opt float 0.0
         & info [ "hedge-after-ms" ] ~docv:"MS"
             ~doc:"Hot-shard hedging: also send the request to a second \
                   replica once it has been outstanding this long and take \
                   the first answer; 0 disables.")
  in
  let hedge_adaptive_arg =
    Arg.(value & flag
         & info [ "hedge-adaptive" ]
             ~doc:"Derive the hedge delay from the live p99 request latency \
                   instead of a fixed --hedge-after-ms.")
  in
  let warm_keys_arg =
    Arg.(value & opt int 4
         & info [ "warm-keys" ] ~docv:"N"
             ~doc:"Hottest shards replayed to a recovering or newly split \
                   replica so it never serves cold; 0 disables cache warming.")
  in
  let parse_addr_list what s =
    List.map
      (fun s ->
        match Flb_router.Backend.parse_addr (String.trim s) with
        | Ok hp -> hp
        | Error msg -> prerr_endline (what ^ ": " ^ msg); exit 2)
      (List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' s))
  in
  let run host port backends_s peers_s replication split_factor vnodes policy
      connect_timeout_s call_timeout_s health_period_s gossip_period_s
      fail_threshold hedge_after_ms hedge_adaptive warm_keys =
    let backends = parse_addr_list "--backends" backends_s in
    if backends = [] then begin
      prerr_endline "--backends must name at least one daemon";
      exit 2
    end;
    let peers = parse_addr_list "--peers" peers_s in
    let hedge =
      if hedge_adaptive then Flb_router.Router.Hedge_adaptive
      else if hedge_after_ms > 0.0 then
        Flb_router.Router.Hedge_fixed_ms hedge_after_ms
      else Flb_router.Router.Hedge_off
    in
    let config =
      {
        Flb_router.Router.default_config with
        host;
        port;
        backends;
        peers;
        replication;
        split_factor;
        vnodes;
        policy;
        connect_timeout_s;
        call_timeout_s;
        health_period_s;
        gossip_period_s;
        fail_threshold;
        hedge;
        warm_keys;
      }
    in
    let router = Flb_router.Router.start config in
    Printf.printf
      "flb router listening on %s:%d — %d backends, replication %d, split \
       factor %d, %s policy, %d peers, hedging %s\n%!"
      host
      (Flb_router.Router.port router)
      (List.length backends) replication split_factor
      (match policy with
      | Flb_router.Router.Hash -> "hash"
      | Flb_router.Router.Round_robin -> "round-robin")
      (List.length peers)
      (match hedge with
      | Flb_router.Router.Hedge_off -> "off"
      | Flb_router.Router.Hedge_fixed_ms ms -> Printf.sprintf "after %g ms" ms
      | Flb_router.Router.Hedge_adaptive -> "adaptive (p99)");
    Flb_router.Router.wait router;
    print_endline "flb router stopped"
  in
  let doc =
    "Run the sharding router: consistent-hash request routing across \
     several daemons, with replication, shard splitting, failover, \
     gossiped health between router replicas and hot-shard hedging."
  in
  Cmd.v (Cmd.info "route" ~doc)
    Term.(const run $ host_arg $ route_port_arg $ backends_arg $ peers_arg
          $ replication_arg $ split_arg $ vnodes_arg $ policy_arg
          $ connect_timeout_arg $ call_timeout_arg $ health_arg $ gossip_arg
          $ fail_threshold_arg $ hedge_after_arg $ hedge_adaptive_arg
          $ warm_keys_arg)

(* --- drain (graceful backend removal) --- *)

let drain_cmd =
  let backend_arg =
    let doc =
      "Backend daemon to drain, host:port (or just a port, meaning \
       127.0.0.1)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"HOST:PORT" ~doc)
  in
  let router_port_arg =
    let doc = "TCP port of the router to send the drain through." in
    Arg.(value & opt int Flb_router.Router.default_config.port
         & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let timeout_arg =
    Arg.(value & opt float 30.0
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"How long to wait for the drained daemon to finish its \
                   in-flight work and exit; 0 returns right after the \
                   acknowledgement.")
  in
  let direct_arg =
    Arg.(value & flag
         & info [ "direct" ]
             ~doc:"Send the drain straight to the backend daemon instead of \
                   through a router (no router or peer learns about it).")
  in
  let run host port backend_s timeout direct =
    let bhost, bport =
      match Flb_router.Backend.parse_addr (String.trim backend_s) with
      | Ok hp -> hp
      | Error msg -> prerr_endline msg; exit 2
    in
    let backend_id = Printf.sprintf "%s:%d" bhost bport in
    (if direct then
       let c = Flb_service.Client.connect ~host:bhost ~port:bport () in
       Fun.protect
         ~finally:(fun () -> Flb_service.Client.close c)
         (fun () ->
           match Flb_service.Client.drain c with
           | Ok () -> Printf.printf "%s draining\n%!" backend_id
           | Error msg -> prerr_endline ("drain failed: " ^ msg); exit 1)
     else
       let c = Flb_service.Client.connect ~host ~port () in
       Fun.protect
         ~finally:(fun () -> Flb_service.Client.close c)
         (fun () ->
           match Flb_service.Client.drain ~backend:backend_id c with
           | Ok () ->
             Printf.printf
               "%s draining — router %s:%d stops routing new shards to it \
                and gossips the drain to its peers\n%!"
               backend_id host port
           | Error msg -> prerr_endline ("drain failed: " ^ msg); exit 1));
    if timeout > 0.0 then begin
      let deadline = Unix.gettimeofday () +. timeout in
      let rec wait () =
        match
          Flb_service.Client.connect ~host:bhost ~port:bport
            ~connect_timeout_s:0.5 ()
        with
        | exception _ -> Printf.printf "%s drained and gone\n" backend_id
        | probe ->
          Flb_service.Client.close probe;
          if Unix.gettimeofday () > deadline then begin
            Printf.eprintf "%s still accepting after %g s\n" backend_id timeout;
            exit 1
          end
          else begin
            Unix.sleepf 0.2;
            wait ()
          end
      in
      wait ()
    end
  in
  let doc =
    "Gracefully remove a backend from a routed fleet: it finishes \
     in-flight and streaming work, takes no new shards, and exits — \
     zero dropped requests."
  in
  Cmd.v (Cmd.info "drain" ~doc)
    Term.(const run $ host_arg $ router_port_arg $ backend_arg $ timeout_arg
          $ direct_arg)

(* --- analyze --- *)

let analyze_cmd =
  let trace_arg =
    let doc =
      "Trace to analyze: JSONL from $(b,flb execute --trace-out x.jsonl) \
       (real or --virtual), or a flight-recorder dump."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)
  in
  let graph_default_arg =
    let doc =
      "Task graph the trace executed (needed for dependencies), or 'fig1' \
       (default) for the paper's example graph."
    in
    Arg.(value & opt string "fig1" & info [ "g"; "graph" ] ~docv:"FILE" ~doc)
  in
  let algo_opt_arg =
    Arg.(value & opt (some string) None
         & info [ "a"; "algorithm" ] ~docv:"NAME"
             ~doc:"Recompute this algorithm's schedule as the prediction to \
                   rank stragglers against (same algorithm the run was \
                   scheduled with). Without it the report has no \
                   predicted-vs-realized comparison.")
  in
  let procs_opt_arg =
    Arg.(value & opt int 0
         & info [ "p"; "procs" ] ~docv:"P"
             ~doc:"Processors for the predicted schedule; 0 (default) infers \
                   the trace's domain count.")
  in
  let unit_ns_arg =
    Arg.(value & opt float 0.0
         & info [ "unit-ns" ] ~docv:"NS"
             ~doc:"The run's nanoseconds per weight unit: scales predicted \
                   times into the trace's seconds. 0 (default) for \
                   virtual-clock traces, whose timestamps already are weight \
                   units.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let run trace_path graph_path algo procs unit_ns json =
    let g = load_graph graph_path in
    let report =
      match R.Analyze.load trace_path with
      | Error msg ->
        prerr_endline ("cannot read trace: " ^ msg);
        exit 1
      | Ok parsed -> (
        let schedule =
          match algo with
          | None -> None
          | Some name -> (
            match E.Registry.find name with
            | None ->
              prerr_endline ("unknown algorithm: " ^ name);
              exit 2
            | Some a ->
              let procs =
                if procs > 0 then procs
                else
                  (* The trace knows the team size. *)
                  let m = ref 0 in
                  List.iter
                    (fun e ->
                      if e.R.Analyze.domain > !m then m := e.R.Analyze.domain)
                    parsed.R.Analyze.execs;
                  List.iter
                    (fun mk ->
                      if mk.R.Analyze.mark_domain > !m then
                        m := mk.R.Analyze.mark_domain)
                    parsed.R.Analyze.marks;
                  !m + 1
              in
              Some (a.E.Registry.run g (Machine.clique ~num_procs:procs)))
        in
        let scale = if unit_ns > 0.0 then unit_ns /. 1e9 else 1.0 in
        match R.Analyze.analyze ?schedule ~scale ~graph:g parsed with
        | Error msg ->
          prerr_endline ("analysis failed: " ^ msg);
          exit 1
        | Ok report -> report)
    in
    if json then print_endline (R.Analyze.to_json report)
    else print_string (R.Analyze.render report)
  in
  let doc =
    "Makespan attribution for an executed trace: the realized critical \
     path, per-task slack, per-domain busy/idle/steal breakdown, and \
     stragglers against the schedule's predicted finish times."
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ trace_arg $ graph_default_arg $ algo_opt_arg
          $ procs_opt_arg $ unit_ns_arg $ json_arg)

(* --- experiment --- *)

let experiment_cmd =
  let which_arg =
    let doc = "Which experiment: fig2, fig3, fig4, complexity, duplication, granularity, runtime, resched." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE" ~doc)
  in
  let tasks_arg =
    Arg.(value & opt int 2000 & info [ "n"; "tasks" ] ~docv:"V" ~doc:"Graph size.")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")
  in
  let run which tasks csv =
    match String.lowercase_ascii which with
    | "fig2" ->
      let cells =
        E.Runtime_exp.run ~suite:(E.Workload_suite.fig4_suite ~tasks ()) ()
      in
      print_string (if csv then E.Runtime_exp.to_csv cells else E.Runtime_exp.render cells)
    | "fig3" ->
      let cells =
        E.Speedup_exp.run ~suite:(E.Workload_suite.fig3_suite ~tasks ()) ()
      in
      print_string (if csv then E.Speedup_exp.to_csv cells else E.Speedup_exp.render cells)
    | "fig4" ->
      let cells = E.Nsl_exp.run ~suite:(E.Workload_suite.fig4_suite ~tasks ()) () in
      print_string (if csv then E.Nsl_exp.to_csv cells else E.Nsl_exp.render cells)
    | "complexity" ->
      let cells = E.Complexity_exp.run () in
      print_string
        (if csv then E.Complexity_exp.to_csv cells else E.Complexity_exp.render cells)
    | "duplication" ->
      print_string (E.Duplication_exp.render (E.Duplication_exp.run ()))
    | "granularity" ->
      print_string (E.Granularity_exp.render (E.Granularity_exp.run ()))
    | "runtime" ->
      let rows = E.Runtime_real_exp.run () in
      print_string
        (if csv then E.Runtime_real_exp.to_csv rows else E.Runtime_real_exp.render rows)
    | "resched" ->
      let rows = E.Resched_exp.run () in
      print_string
        (if csv then E.Resched_exp.to_csv rows else E.Resched_exp.render rows)
    | other ->
      prerr_endline ("unknown experiment: " ^ other);
      exit 2
  in
  let doc = "Regenerate a figure of the paper." in
  Cmd.v (Cmd.info "experiment" ~doc) Term.(const run $ which_arg $ tasks_arg $ csv_arg)

let () =
  let doc = "FLB task scheduling for distributed-memory machines" in
  let info = Cmd.info "flb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ gen_cmd; compile_cmd; info_cmd; profile_cmd; schedule_cmd;
            validate_schedule_cmd; compare_cmd; dsh_cmd; trace_cmd; execute_cmd;
            analyze_cmd; experiment_cmd; serve_cmd; request_cmd; stream_cmd;
            metrics_cmd; stats_cmd; route_cmd; drain_cmd ]))
