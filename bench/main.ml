(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (Section 6):

   - Table 1: the FLB execution trace of the Fig. 1 example graph;
   - Fig. 2:  scheduling algorithm costs (Bechamel micro-benchmarks plus a
              repeat-and-take-best summary sweep);
   - Fig. 3:  FLB speedup on LU / Laplace / Stencil / FFT;
   - Fig. 4:  normalized schedule lengths against MCP;
   - plus the ablation studies DESIGN.md calls out (tie-break rules, LLB
     priority, MCP insertion).

   Flags select sections (--table1 --fig2 --fig3 --fig4 --ablation
   --complexity --duplication --granularity --multistep --mesh
   --contention --random); no flag runs everything. --quick shrinks
   graphs and sample counts for a fast smoke run; --csv DIR additionally
   writes plot-ready CSV files for Figures 3 and 4. *)

open Bechamel
open Toolkit
module E = Flb_experiments

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

(* --- Table 1 --- *)

let run_table1 () =
  section "Table 1: FLB execution trace on the Fig. 1 graph (P = 2)";
  print_string (Flb_core.Flb_trace.render_fig1 ());
  Printf.printf "schedule length: %g (paper: 14)\n%!"
    (Flb_core.Flb.schedule_length (Flb_taskgraph.Example.fig1 ())
       (Flb_platform.Machine.clique ~num_procs:2))

(* --- Fig. 2 (Bechamel part): rigorous per-algorithm timing --- *)

let bechamel_fig2 ~tasks ~procs_list ~quota_s =
  section
    (Printf.sprintf
       "Figure 2a: scheduling cost, Bechamel OLS estimate (V = %d Stencil graph)"
       tasks);
  let workload = E.Workload_suite.stencil ~tasks () in
  let graph = E.Workload_suite.instance workload ~ccr:1.0 ~seed:1 in
  let tests =
    List.concat_map
      (fun p ->
        let machine = Flb_platform.Machine.clique ~num_procs:p in
        List.map
          (fun (algo : E.Registry.t) ->
            Test.make
              ~name:(Printf.sprintf "%s/P=%d" algo.E.Registry.name p)
              (Staged.stage (fun () -> ignore (algo.E.Registry.run graph machine))))
          E.Registry.paper_set)
      procs_list
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) ~kde:None
      ~stabilize:false ()
  in
  let raw =
    List.fold_left
      (fun acc test ->
        let results = Benchmark.all cfg [ Instance.monotonic_clock ] (
          Test.make_grouped ~name:"fig2" [ test ]) in
        Hashtbl.iter (Hashtbl.replace acc) results;
        acc)
      (Hashtbl.create 32) tests
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table = E.Table.create ~header:[ "benchmark"; "time per run [ms]" ] in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, ols) ->
      let ms =
        match Analyze.OLS.estimates ols with
        | Some (ns :: _) -> Printf.sprintf "%.3f" (ns /. 1e6)
        | _ -> "n/a"
      in
      E.Table.add_row table [ name; ms ])
    rows;
  print_string (E.Table.render table);
  print_newline ();
  (* Probe counter snapshots for the same runs: the operation counts the
     paper's complexity bounds are actually about, next to the times. *)
  let counters =
    E.Table.create
      ~header:
        [ "benchmark"; "task ops/task"; "proc ops/task"; "peak ready"; "demotions" ]
  in
  List.iter
    (fun p ->
      let machine = Flb_platform.Machine.clique ~num_procs:p in
      List.iter
        (fun (algo : E.Registry.t) ->
          let _, r = E.Registry.run_with_report ~timed:false algo graph machine in
          let v = float_of_int (max 1 r.Flb_obs.Probe.iterations) in
          let cell n = Printf.sprintf "%.2f" (float_of_int n /. v) in
          if r.Flb_obs.Probe.iterations > 0 then
            E.Table.add_row counters
              [
                Printf.sprintf "%s/P=%d" algo.E.Registry.name p;
                cell r.Flb_obs.Probe.task_queue_ops;
                cell r.Flb_obs.Probe.proc_queue_ops;
                string_of_int r.Flb_obs.Probe.peak_ready;
                string_of_int r.Flb_obs.Probe.demotions;
              ])
        E.Registry.paper_set)
    procs_list;
  print_string (E.Table.render counters);
  print_newline ()

(* --- Fig. 2 (sweep part): the paper's cost-vs-P curves --- *)

let run_fig2_sweep ~tasks ~repeats ~instances =
  section
    (Printf.sprintf
       "Figure 2b: scheduling cost sweep (best of %d repeats, V = %d graphs)"
       repeats tasks);
  let cells =
    E.Runtime_exp.run
      ~suite:(E.Workload_suite.fig4_suite ~tasks ())
      ~repeats ~instances_per_cell:instances ()
  in
  print_string (E.Runtime_exp.render cells);
  print_newline ();
  print_string
    "Expected shape (paper): ETF largest and growing steeply with P; MCP\n\
     growing moderately; DSC-LLB roughly flat; FCP and FLB smallest, flat.\n"

(* --- Fig. 3 --- *)

let run_fig3 ~tasks ~instances =
  section (Printf.sprintf "Figure 3: FLB speedup (V = %d graphs)" tasks);
  let cells =
    E.Speedup_exp.run
      ~suite:(E.Workload_suite.fig3_suite ~tasks ())
      ~instances_per_cell:instances ()
  in
  print_string (E.Speedup_exp.render cells);
  print_string
    "Expected shape (paper): Stencil and FFT near-linear; LU and Laplace\n\
     flatten at large P; CCR 5.0 speedups below CCR 0.2.\n"

(* --- Fig. 4 --- *)

let run_fig4 ~tasks ~instances =
  section (Printf.sprintf "Figure 4: normalized schedule lengths (V = %d graphs)" tasks);
  let cells =
    E.Nsl_exp.run
      ~domains:(Flb_prelude.Parallel.recommended_domains ())
      ~suite:(E.Workload_suite.fig4_suite ~tasks ())
      ~instances_per_cell:instances ()
  in
  print_string (E.Nsl_exp.render cells);
  print_string
    "Expected shape (paper): FLB comparable to ETF and MCP (within a few\n\
     percent, better on fine-grain Stencil/Laplace, worse on LU);\n\
     DSC-LLB consistently above all one-step algorithms.\n"

(* --- Ablations --- *)

let run_ablation ~tasks ~instances =
  section (Printf.sprintf "Ablation: design choices (V = %d graphs)" tasks);
  let algorithms =
    [
      E.Registry.mcp;
      {
        E.Registry.name = "MCP-ins";
        describe = "MCP with insertion-based placement";
        run = (fun g m -> Flb_schedulers.Mcp.run ~insertion:true g m);
        probed = (fun probe g m -> Flb_schedulers.Mcp.run ~insertion:true ~probe g m);
      };
      E.Registry.flb;
      {
        E.Registry.name = "FLB-id";
        describe = "FLB breaking ties by task id instead of bottom level";
        run =
          (fun g m ->
            Flb_core.Flb.run
              ~options:
                { Flb_core.Flb.tie_break = Flb_core.Flb.Task_id;
                  prefer_non_ep_on_tie = true }
              g m);
        probed =
          (fun probe g m ->
            Flb_core.Flb.run
              ~options:
                { Flb_core.Flb.tie_break = Flb_core.Flb.Task_id;
                  prefer_non_ep_on_tie = true }
              ~probe g m);
      };
      {
        E.Registry.name = "FLB-ep";
        describe = "FLB preferring the EP pair on start-time ties";
        run =
          (fun g m ->
            Flb_core.Flb.run
              ~options:
                { Flb_core.Flb.tie_break = Flb_core.Flb.Bottom_level;
                  prefer_non_ep_on_tie = false }
              g m);
        probed =
          (fun probe g m ->
            Flb_core.Flb.run
              ~options:
                { Flb_core.Flb.tie_break = Flb_core.Flb.Bottom_level;
                  prefer_non_ep_on_tie = false }
              ~probe g m);
      };
      E.Registry.dsc_llb;
      {
        E.Registry.name = "DSC-LLB-l";
        describe = "DSC-LLB with the paper's literal least-bottom-level LLB priority";
        run =
          (fun g m ->
            Flb_schedulers.Dsc_llb.run ~priority:Flb_schedulers.Llb.Least_blevel g m);
        probed =
          (fun _ g m ->
            Flb_schedulers.Dsc_llb.run ~priority:Flb_schedulers.Llb.Least_blevel g m);
      };
    ]
  in
  let cells =
    E.Nsl_exp.run
      ~domains:(Flb_prelude.Parallel.recommended_domains ())
      ~algorithms
      ~suite:(E.Workload_suite.fig4_suite ~tasks ())
      ~procs:[ 4; 16 ] ~instances_per_cell:instances ()
  in
  print_string (E.Nsl_exp.render cells)

(* --- Complexity scaling (extension experiment E7) --- *)

let run_complexity ~quick =
  section "Complexity scaling: time per task and FLB queue ops vs V and P";
  let cells =
    E.Complexity_exp.run
      ~sizes:(if quick then [ 250; 1000 ] else [ 250; 500; 1000; 2000; 4000 ])
      ~repeats:(if quick then 1 else 3) ()
  in
  print_string (E.Complexity_exp.render cells);
  print_string
    "Expected: FLB/FCP ns-per-task roughly flat in V and P (the paper's\n\
     O(V(logW + logP) + E) and O(VlogP + E) bounds); ETF ns-per-task\n\
     growing with both (O(W(E+V)P)). FLB queue ops per task stay below a\n\
     small constant (each task enters and leaves at most two queues).\n"

(* --- Duplication study (extension experiment E8) --- *)

let run_duplication ~quick =
  section "Duplication: DSH vs the non-duplicating schedulers";
  let cells =
    E.Duplication_exp.run ~tasks:(if quick then 200 else 500) ()
  in
  print_string (E.Duplication_exp.render cells);
  print_string
    "Expected: on fork-heavy graphs at high CCR, DSH's duplication beats\n\
     every non-duplicating scheduler on makespan while placing extra\n\
     copies and paying a far larger scheduling time — the trade-off the\n\
     paper's introduction uses to motivate non-duplicating heuristics.\n"

(* --- Granularity study (extension experiment E9) --- *)

let run_granularity () =
  section "Grain packing: chain merging ahead of FLB";
  print_string (E.Granularity_exp.render (E.Granularity_exp.run ()));
  print_string
    "Expected: merging chains removes internal messages, so at high CCR\n\
     the coarse graph schedules both better and faster; at low CCR the\n\
     effect is mostly on scheduling time (fewer tasks to place).\n"

(* --- Multi-step methods: DSC vs Sarkar clustering (extension E12) --- *)

let run_multistep ~quick =
  section "Multi-step methods: clustering choice (DSC vs Sarkar) under LLB";
  let algorithms =
    [
      E.Registry.mcp;
      E.Registry.flb;
      E.Registry.dsc_llb;
      {
        E.Registry.name = "SARKAR-LLB";
        describe = "Sarkar internalization + LLB";
        run = (fun g m -> Flb_schedulers.Llb.run g m (Flb_schedulers.Sarkar.cluster g));
        probed =
          (fun _ g m -> Flb_schedulers.Llb.run g m (Flb_schedulers.Sarkar.cluster g));
      };
    ]
  in
  let cells =
    E.Nsl_exp.run
      ~domains:(Flb_prelude.Parallel.recommended_domains ())
      ~algorithms
      ~suite:(E.Workload_suite.fig4_suite ~tasks:(if quick then 300 else 1000) ())
      ~procs:[ 4; 16 ]
      ~instances_per_cell:(if quick then 2 else 3)
      ()
  in
  print_string (E.Nsl_exp.render cells);
  print_string
    "Expected: both multi-step methods trail the one-step algorithms;\n\
     Sarkar's O(E(V+E)) clustering is far slower to compute than DSC\n\
     for comparable mapped quality — why DSC is the step the paper\n\
     benchmarks.\n"

(* --- Non-uniform machines (extension experiment E13) --- *)

let run_mesh ~quick =
  section "Mesh topology: FLB where Theorem 3 does not hold";
  let suite = E.Workload_suite.fig4_suite ~tasks:(if quick then 300 else 2000) () in
  print_string (E.Mesh_exp.render (E.Mesh_exp.run ~suite ()));
  print_string
    "Expected: on the clique FLB takes zero suboptimal steps (Theorem 3).\n\
     On the 4x4 mesh roughly half its selections are beaten by the\n\
     exhaustive scan; at coarse grain the makespan stays within a few\n\
     percent of ETF anyway, while at fine grain the lemma's failure\n\
     costs up to ~2.4x — off the uniform machine model the cheap\n\
     two-candidate rule genuinely needs topology awareness.\n"

(* --- Contention sensitivity (extension experiment E11) --- *)

let run_contention ~quick =
  section "Contention: replaying schedules with bounded send ports";
  let suite = E.Workload_suite.fig4_suite ~tasks:(if quick then 400 else 2000) () in
  print_string (E.Contention_exp.render (E.Contention_exp.run ~suite ()));
  print_string
    "Expected: the contention-free replay matches the analytic makespan\n\
     exactly; port-limited replays degrade more at high CCR and high P,\n\
     quantifying the paper's contention-free modelling assumption.\n"

(* --- Random structures (the TR's larger problem set) --- *)

let run_random_suite ~quick =
  section "Random/irregular structures: NSL vs MCP beyond the paper's kernels";
  let cells =
    E.Nsl_exp.run
      ~domains:(Flb_prelude.Parallel.recommended_domains ())
      ~suite:(E.Workload_suite.random_suite ~tasks:(if quick then 400 else 2000) ())
      ~procs:[ 4; 16 ]
      ~instances_per_cell:(if quick then 2 else 3)
      ()
  in
  print_string (E.Nsl_exp.render cells)

(* --- Runtime: real execution, FLB-static vs work stealing --- *)

let run_runtime ~quick =
  section "Runtime: real makespan on OCaml domains, FLB static vs work stealing";
  let rows =
    E.Runtime_real_exp.run
      ~suite:(E.Workload_suite.fig4_suite ~tasks:(if quick then 150 else 300) ())
      ()
  in
  print_string (E.Runtime_real_exp.render rows);
  print_string
    "Expected: static/pred near 1 on an unloaded multicore host (spin\n\
     calibration and arrival delays are approximate; single-core hosts\n\
     serialize the domains and inflate the ratio); steal/static around 1\n\
     at low CCR, where dynamic balancing has enough slack to hide its\n\
     communication blindness.\n";
  rows

(* --- Runtime: recovery policies under kill faults --- *)

let run_resched ~quick =
  section "Runtime: recovery from a killed domain, none vs steal vs resched";
  let rows =
    E.Resched_exp.run
      ~suite:(E.Workload_suite.fig4_suite ~tasks:(if quick then 150 else 300) ())
      ()
  in
  print_string (E.Resched_exp.render rows);
  print_string
    "Expected: none strands the dead domain's dependence cone (done <\n\
     V); resched/steal at or below 1 on most cells — draining the stale\n\
     queue in place keeps the dead processor's placement, rescheduling\n\
     re-balances the frontier over the survivors. Latency is the real\n\
     engine's per-event reschedule cost (µs; FLB's near-linear cost is\n\
     what makes mid-run rescheduling affordable).\n";
  rows

(* --- Perf-regression harness (--regress / --regress-check) --- *)

let run_regress ~quick ~out =
  section
    (Printf.sprintf "Perf regression: ns/task and bytes/task (%s)"
       (if quick then "quick suite" else "full + quick suites"));
  (* The baseline carries both suite sizes (bytes/task is not
     size-independent for every scheduler); --quick shrinks to the quick
     suite alone for a fast local look, but such a file is not a valid
     CI baseline. *)
  let report =
    if quick then E.Regress.run ~quick:true () else E.Regress.run_baseline ()
  in
  print_string (E.Regress.render report);
  Out_channel.with_open_text out (fun oc ->
      output_string oc (E.Regress.to_json report));
  Printf.printf "[regress] wrote %s\n%!" out

let run_regress_check ~baseline_path =
  section
    (Printf.sprintf "Perf regression check: quick suite vs %s" baseline_path);
  let text = In_channel.with_open_text baseline_path In_channel.input_all in
  match E.Regress.of_json text with
  | Error msg ->
    Printf.printf "[regress-check] FAILED: %s does not parse: %s\n%!" baseline_path msg;
    exit 1
  | Ok baseline ->
    Printf.printf "[regress-check] baseline parses: mode=%s, %d entries\n%!"
      baseline.E.Regress.mode
      (List.length baseline.E.Regress.entries);
    let current = E.Regress.run ~quick:true () in
    print_string (E.Regress.render current);
    (* Only allocation is checked, and only against baseline entries of
       the same task count — the baseline carries a quick section for
       exactly this comparison. Wall time is never checked. *)
    (match E.Regress.check ~baseline ~current ~tolerance:0.5 with
    | Ok () -> Printf.printf "[regress-check] allocation metrics match baseline\n%!"
    | Error errors ->
      List.iter (Printf.printf "[regress-check] FAILED: %s\n") errors;
      exit 1)

(* --- driver --- *)

let write_csv dir name content =
  match dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir name in
    Out_channel.with_open_text path (fun oc -> output_string oc content);
    Printf.printf "[csv] wrote %s\n%!" path

let () =
  let argv = Array.to_list Sys.argv in
  let has flag = List.mem flag argv in
  let csv_dir =
    let rec find = function
      | "--csv" :: dir :: _ -> Some dir
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let quick = has "--quick" in
  let tasks = if quick then 400 else 2000 in
  let instances = if quick then 2 else 5 in
  (* The regression harness runs alone: it is meant for baselines and CI,
     not as part of the full figure reproduction. *)
  (match
     let rec find = function
       | "--regress-check" :: path :: _ -> Some path
       | _ :: rest -> find rest
       | [] -> None
     in
     find argv
   with
  | Some baseline_path ->
    run_regress_check ~baseline_path;
    exit 0
  | None -> ());
  if has "--regress" then begin
    let out =
      let rec find = function
        | "--regress-out" :: path :: _ -> Some path
        | _ :: rest -> find rest
        | [] -> None
      in
      Option.value (find argv) ~default:"BENCH_schedulers.json"
    in
    run_regress ~quick ~out;
    (* The runtime suite rides along: same baseline-writing entry point,
       but its numbers are wall-clock on live domains, so the file is a
       trajectory record only — never diffed by CI. *)
    let runtime_out =
      let rec find = function
        | "--runtime-out" :: path :: _ -> Some path
        | _ :: rest -> find rest
        | [] -> None
      in
      Option.value (find argv) ~default:"BENCH_runtime.json"
    in
    let rows = run_runtime ~quick in
    let resched_rows = run_resched ~quick in
    Out_channel.with_open_text runtime_out (fun oc ->
        output_string oc
          (E.Runtime_real_exp.to_json
             ~resched:(E.Resched_exp.rows_json resched_rows)
             rows));
    Printf.printf "[regress] wrote %s (trajectory only, never CI-checked)\n%!"
      runtime_out;
    (* Streaming-mode trajectory: a small in-process daemon driven by
       Stream_bench over the E4 workloads. Placement latency is
       wall-clock against live threads, so like the runtime suite this
       file records the trajectory only — never diffed by CI. *)
    let stream_out =
      let rec find = function
        | "--stream-out" :: path :: _ -> Some path
        | _ :: rest -> find rest
        | [] -> None
      in
      Option.value (find argv) ~default:"BENCH_stream.json"
    in
    let clients = 2 and repeats = (if quick then 2 else 4) and batches = 4 in
    let srv =
      Flb_service.Server.start
        { Flb_service.Server.default_config with port = 0; domains = 2 }
    in
    let port = Flb_service.Server.port srv in
    let rows =
      List.map
        (fun workload ->
          let graph =
            E.Workload_suite.instance workload ~ccr:1.0 ~seed:1
          in
          let o =
            Stream_bench.run ~clients ~repeats ~batches ~graph ~algo:"FLB"
              ~procs:8 ~host:"127.0.0.1" ~port
          in
          let quant q =
            if Flb_obs.Metrics.Histogram.count o.Stream_bench.latency > 0 then
              Stream_bench.quantile_ms o q
            else 0.0
          in
          Printf.sprintf
            {|    {"workload": "%s", "streams_ok": %d, "dropped": %d, "placed": %d, "expected": %d, "rounds": %d, "wall_s": %.6f, "rounds_per_s": %.1f, "placement_ms": {"p50": %.3f, "p95": %.3f, "p99": %.3f}}|}
            (E.Regress.Json.escape workload.E.Workload_suite.name)
            o.Stream_bench.streams_ok o.Stream_bench.dropped
            o.Stream_bench.placed o.Stream_bench.expected o.Stream_bench.rounds
            o.Stream_bench.wall
            (Stream_bench.rounds_per_s o)
            (quant 0.5) (quant 0.95) (quant 0.99))
        (E.Workload_suite.fig4_suite ~tasks:(if quick then 60 else 150) ())
    in
    Flb_service.Server.stop srv;
    Out_channel.with_open_text stream_out (fun oc ->
        Printf.fprintf oc
          "{\n  \"suite\": \"stream\",\n  \"note\": \"trajectory only, never \
           CI-checked\",\n  \"clients\": %d,\n  \"repeats\": %d,\n  \
           \"batches\": %d,\n  \"workloads\": [\n%s\n  ]\n}\n"
          clients repeats batches
          (String.concat ",\n" rows));
    Printf.printf "[regress] wrote %s (trajectory only, never CI-checked)\n%!"
      stream_out;
    exit 0
  end;
  let all = not (has "--table1" || has "--fig2" || has "--fig3" || has "--fig4"
                 || has "--ablation" || has "--complexity" || has "--duplication"
                 || has "--granularity" || has "--contention" || has "--random"
                 || has "--multistep" || has "--mesh" || has "--runtime"
                 || has "--resched")
  in
  if all || has "--table1" then run_table1 ();
  if all || has "--fig2" then begin
    bechamel_fig2 ~tasks ~procs_list:[ 2; 8; 32 ]
      ~quota_s:(if quick then 0.25 else 1.0);
    run_fig2_sweep ~tasks ~repeats:(if quick then 1 else 3)
      ~instances:(if quick then 1 else 2)
  end;
  if all || has "--fig3" then begin
    run_fig3 ~tasks ~instances;
    if csv_dir <> None then
      write_csv csv_dir "fig3_speedup.csv"
        (E.Speedup_exp.to_csv
           (E.Speedup_exp.run
              ~suite:(E.Workload_suite.fig3_suite ~tasks ())
              ~instances_per_cell:instances ()))
  end;
  if all || has "--fig4" then begin
    run_fig4 ~tasks ~instances;
    if csv_dir <> None then
      write_csv csv_dir "fig4_nsl.csv"
        (E.Nsl_exp.to_csv
           (E.Nsl_exp.run
              ~domains:(Flb_prelude.Parallel.recommended_domains ())
              ~suite:(E.Workload_suite.fig4_suite ~tasks ())
              ~instances_per_cell:instances ()))
  end;
  if all || has "--ablation" then
    run_ablation ~tasks:(if quick then 400 else 1000) ~instances:(if quick then 2 else 3);
  if all || has "--complexity" then run_complexity ~quick;
  if all || has "--duplication" then run_duplication ~quick;
  if all || has "--granularity" then run_granularity ();
  if all || has "--multistep" then run_multistep ~quick;
  if all || has "--mesh" then run_mesh ~quick;
  if all || has "--contention" then run_contention ~quick;
  if all || has "--random" then run_random_suite ~quick;
  if all || has "--runtime" then begin
    let rows = run_runtime ~quick in
    if csv_dir <> None then
      write_csv csv_dir "runtime_real.csv" (E.Runtime_real_exp.to_csv rows)
  end;
  if all || has "--resched" then begin
    let rows = run_resched ~quick in
    if csv_dir <> None then
      write_csv csv_dir "resched.csv" (E.Resched_exp.to_csv rows)
  end
