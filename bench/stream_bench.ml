(* Streaming-mode measurement core, shared by loadgen (--stream) and
   the bench harness (--regress writes BENCH_stream.json).

   Drives [clients] concurrent streaming sessions against a daemon:
   each session ships one graph in [batches] topologically ordered
   task/edge batches (Flb_stream.Chunk.plan), polls after every batch
   so placements arrive incrementally, and seals. Placement latency is
   measured per task — the time from the Add_tasks call that shipped it
   to the response that announced its placement — and observed into one
   histogram; rounds are the per-stream final round counts summed, so
   rounds-per-second reflects actual scheduling rounds, not calls. *)

module Metrics = Flb_obs.Metrics
module Client = Flb_service.Client
module Chunk = Flb_stream.Chunk

type outcome = {
  wall : float;  (* seconds for the whole run *)
  streams_ok : int;  (* sessions sealed with every task placed *)
  rounds : int;  (* sum of final per-stream round counts *)
  placed : int;  (* placements received across all sessions *)
  expected : int;  (* clients * repeats * tasks *)
  dropped : int;  (* transport or protocol failures *)
  latency : Metrics.Histogram.t;  (* placement latency, seconds *)
}

let run ~clients ~repeats ~batches ~graph ~algo ~procs ~host ~port =
  let chunks = Chunk.plan ~chunks:batches graph in
  let tasks = Flb_taskgraph.Taskgraph.num_tasks graph in
  let registry = Metrics.create () in
  let latency =
    Metrics.histogram registry ~help:"add-to-placement latency (s)"
      "stream_placement_seconds"
  in
  let rounds = Atomic.make 0 in
  let placed = Atomic.make 0 in
  let dropped = Atomic.make 0 in
  let streams_ok = Atomic.make 0 in
  let one_stream client =
    match Client.open_stream client ~algo ~procs with
    | Error msg ->
      Printf.eprintf "stream open failed: %s\n%!" msg;
      Atomic.incr dropped;
      false
    | Ok stream ->
      let added = Array.make tasks 0.0 in
      let seen = ref 0 in
      let note (p : Client.placed) =
        let t = Unix.gettimeofday () in
        Array.iter
          (fun (task, _, _) ->
            Metrics.Histogram.observe latency (t -. added.(task));
            incr seen)
          p.Client.placements
      in
      let next = ref 0 in
      let failed = ref false in
      let step what = function
        | Ok p -> note p
        | Error msg ->
          if not !failed then begin
            Printf.eprintf "%s failed: %s\n%!" what msg;
            Atomic.incr dropped;
            failed := true
          end
      in
      List.iter
        (fun { Chunk.comps; edges } ->
          if not !failed then begin
            let t0 = Unix.gettimeofday () in
            for i = 0 to Array.length comps - 1 do
              added.(!next + i) <- t0
            done;
            step "add-tasks" (Client.add_tasks client ~stream ~comps);
            next := !next + Array.length comps;
            if (not !failed) && Array.length edges > 0 then
              step "add-edges" (Client.add_edges client ~stream ~edges);
            if not !failed then
              step "poll" (Client.poll_stream client ~stream)
          end)
        chunks;
      if !failed then false
      else
        match Client.seal_stream client ~stream with
        | Error msg ->
          Printf.eprintf "seal failed: %s\n%!" msg;
          Atomic.incr dropped;
          false
        | Ok final ->
          note final;
          ignore (Atomic.fetch_and_add rounds final.Client.round);
          ignore (Atomic.fetch_and_add placed !seen);
          if final.Client.final && !seen = tasks then begin
            Atomic.incr streams_ok;
            true
          end
          else begin
            Printf.eprintf "stream incomplete: %d of %d tasks placed\n%!" !seen
              tasks;
            Atomic.incr dropped;
            false
          end
  in
  let client_thread id () =
    match Client.connect ~host ~port () with
    | exception e ->
      Printf.eprintf "stream client %d: connect failed: %s\n%!" id
        (Printexc.to_string e);
      Atomic.incr dropped
    | client ->
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          for _ = 1 to repeats do
            ignore (one_stream client)
          done)
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun id -> Thread.create (client_thread id) ()) in
  List.iter Thread.join threads;
  {
    wall = Unix.gettimeofday () -. t0;
    streams_ok = Atomic.get streams_ok;
    rounds = Atomic.get rounds;
    placed = Atomic.get placed;
    expected = clients * repeats * tasks;
    dropped = Atomic.get dropped;
    latency;
  }

let quantile_ms o q = Metrics.Histogram.quantile o.latency ~q *. 1e3

let rounds_per_s o = float_of_int o.rounds /. (if o.wall > 0.0 then o.wall else 1.0)

let print_summary ~label o =
  Printf.printf "%s: %d streams ok, %d/%d placements, %d rounds, %d dropped\n"
    label o.streams_ok o.placed o.expected o.rounds o.dropped;
  Printf.printf "  wall %.2f s, %.1f rounds/s\n" o.wall (rounds_per_s o);
  if Metrics.Histogram.count o.latency > 0 then
    Printf.printf "  placement latency p50/p95/p99: %.3f / %.3f / %.3f ms\n"
      (quantile_ms o 0.5) (quantile_ms o 0.95) (quantile_ms o 0.99)
