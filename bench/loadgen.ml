(* Load generator for the flb_service daemon.

   Drives N concurrent clients over the E4 (Fig. 4) workload suite —
   LU, Stencil, Laplace instances at the paper's CCRs — against either
   an in-process server (the default; started on an ephemeral port with
   a 2-domain pool and a capacity-bounded queue) or an external daemon
   given with --port. Each client thread owns one connection and issues
   its requests back to back; request latencies and the server-reported
   per-stage breakdown (queue wait / cache / schedule / execute, from
   the v2 Scheduled response) are observed into Flb_obs.Metrics
   histograms, and the run ends with a throughput and p50/p95/p99
   summary — end-to-end and per stage — plus the server's cache hit
   rate.

   Flags:
     --clients N     concurrent client connections        (default 4)
     --requests N    requests per client                  (default 200)
     --domains N     worker domains of in-process server  (default 2)
     --queue-cap N   pool queue bound                     (default 64)
     --cache-cap N   schedule cache entries               (default 256)
     --tasks N       approximate tasks per workload graph (default 150)
     --algo NAME     scheduling algorithm                 (default FLB)
     --procs P       processors per request               (default 8)
     --port P        drive an external daemon instead
     --host H        external daemon host                 (default 127.0.0.1)

   Exits non-zero on any dropped connection or transport error. *)

module E = Flb_experiments
module Metrics = Flb_obs.Metrics
module Wire = Flb_service.Wire

let arg_int name default =
  let rec find = function
    | flag :: v :: _ when flag = name -> int_of_string v
    | _ :: rest -> find rest
    | [] -> default
  in
  find (Array.to_list Sys.argv)

let arg_string name default =
  let rec find = function
    | flag :: v :: _ when flag = name -> v
    | _ :: rest -> find rest
    | [] -> default
  in
  find (Array.to_list Sys.argv)

let () =
  let clients = arg_int "--clients" 4 in
  let requests = arg_int "--requests" 200 in
  let domains = arg_int "--domains" 2 in
  let queue_cap = arg_int "--queue-cap" 64 in
  let cache_cap = arg_int "--cache-cap" 256 in
  let tasks = arg_int "--tasks" 150 in
  let algo = arg_string "--algo" "FLB" in
  let procs = arg_int "--procs" 8 in
  let external_port = arg_int "--port" 0 in
  let host = arg_string "--host" "127.0.0.1" in

  (* The E4 suite: one instance per workload and CCR, serialized once.
     Clients cycle through the pool, so every graph repeats and the
     cache gets real hits. *)
  let graphs =
    List.concat_map
      (fun workload ->
        List.map
          (fun ccr ->
            Flb_taskgraph.Serial.to_string
              (E.Workload_suite.instance workload ~ccr ~seed:1))
          E.Workload_suite.paper_ccrs)
      (E.Workload_suite.fig4_suite ~tasks ())
  in
  let graphs = Array.of_list graphs in
  Printf.printf
    "loadgen: %d clients x %d requests, %s on P=%d, %d graphs (E4 suite, V ~ %d)\n%!"
    clients requests algo procs (Array.length graphs) tasks;

  let server, port =
    if external_port > 0 then (None, external_port)
    else begin
      let srv =
        Flb_service.Server.start
          {
            Flb_service.Server.default_config with
            port = 0;
            domains;
            queue_capacity = queue_cap;
            cache_capacity = cache_cap;
          }
      in
      Printf.printf "loadgen: in-process daemon on port %d (%d domains, queue %d)\n%!"
        (Flb_service.Server.port srv)
        domains queue_cap;
      (Some srv, Flb_service.Server.port srv)
    end
  in

  let registry = Metrics.create () in
  let latency =
    Metrics.histogram registry ~help:"client-observed request latency (s)"
      "client_request_seconds"
  in
  (* server-reported per-stage breakdown (v2 Scheduled responses) *)
  let queue_wait_h =
    Metrics.histogram registry ~help:"server-reported queue wait (s)"
      "client_queue_wait_seconds"
  in
  let cache_h =
    Metrics.histogram registry ~help:"server-reported cache stage (s)"
      "client_cache_seconds"
  in
  let sched_h =
    Metrics.histogram registry ~help:"server-reported scheduling time (s)"
      "client_sched_seconds"
  in
  let exec_h =
    Metrics.histogram registry ~help:"server-reported compute job (s)"
      "client_exec_seconds"
  in
  let ok = Metrics.counter registry ~help:"Scheduled responses" "client_ok_total" in
  let cache_hits =
    Metrics.counter registry ~help:"Scheduled responses served from cache"
      "client_cache_hits_total"
  in
  let overloaded =
    Metrics.counter registry ~help:"Overloaded responses" "client_overloaded_total"
  in
  let errors =
    Metrics.counter registry ~help:"structured error responses"
      "client_errors_total"
  in
  let dropped =
    Metrics.counter registry ~help:"dropped connections / transport errors"
      "client_dropped_total"
  in

  let client_thread id () =
    match Flb_service.Client.connect ~host ~port () with
    | exception e ->
      Printf.eprintf "client %d: connect failed: %s\n%!" id (Printexc.to_string e);
      Metrics.Counter.incr dropped
    | client ->
      Fun.protect
        ~finally:(fun () -> Flb_service.Client.close client)
        (fun () ->
          for i = 0 to requests - 1 do
            let graph = graphs.((id + (i * clients)) mod Array.length graphs) in
            let t0 = Unix.gettimeofday () in
            (match Flb_service.Client.schedule client ~graph ~algo ~procs with
            | Ok (Wire.Scheduled r) ->
              Metrics.Counter.incr ok;
              if r.cache_hit then Metrics.Counter.incr cache_hits;
              let b = r.breakdown in
              Metrics.Histogram.observe queue_wait_h b.Wire.queue_wait_s;
              Metrics.Histogram.observe cache_h b.Wire.cache_s;
              Metrics.Histogram.observe sched_h b.Wire.sched_s;
              Metrics.Histogram.observe exec_h b.Wire.exec_s
            | Ok Wire.Overloaded -> Metrics.Counter.incr overloaded
            | Ok (Wire.Error _) -> Metrics.Counter.incr errors
            | Ok _ -> Metrics.Counter.incr errors
            | Error msg ->
              Printf.eprintf "client %d: transport error: %s\n%!" id msg;
              Metrics.Counter.incr dropped);
            Metrics.Histogram.observe latency (Unix.gettimeofday () -. t0)
          done)
  in

  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun id -> Thread.create (client_thread id) ()) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in

  let server_metrics =
    match server with
    | None -> None
    | Some srv ->
      let text = Metrics.to_prometheus (Flb_service.Server.metrics srv) in
      Flb_service.Server.stop srv;
      Some text
  in

  let total = clients * requests in
  let q p = Metrics.Histogram.quantile latency ~q:p *. 1e3 in
  Printf.printf "\n--- load generator summary ---\n";
  Printf.printf "requests:        %d (%d ok, %d overloaded, %d errors, %d dropped)\n"
    total (Metrics.Counter.value ok)
    (Metrics.Counter.value overloaded)
    (Metrics.Counter.value errors)
    (Metrics.Counter.value dropped);
  Printf.printf "wall time:       %.2f s\n" wall;
  Printf.printf "throughput:      %.0f req/s\n" (float_of_int total /. wall);
  Printf.printf "latency p50/p95/p99: %.3f / %.3f / %.3f ms\n" (q 0.5) (q 0.95)
    (q 0.99);
  let stage name h =
    if Metrics.Histogram.count h > 0 then
      let q p = Metrics.Histogram.quantile h ~q:p *. 1e3 in
      Printf.printf "  %-11s p50/p95/p99: %.3f / %.3f / %.3f ms\n" name (q 0.5)
        (q 0.95) (q 0.99)
  in
  Printf.printf "server-side breakdown of ok responses:\n";
  stage "queue wait" queue_wait_h;
  stage "cache" cache_h;
  stage "schedule" sched_h;
  stage "execute" exec_h;
  Printf.printf "client-seen cache hits: %d (%.1f%% of ok)\n"
    (Metrics.Counter.value cache_hits)
    (100.0
    *. float_of_int (Metrics.Counter.value cache_hits)
    /. float_of_int (max 1 (Metrics.Counter.value ok)));
  (match server_metrics with
  | None -> ()
  | Some text ->
    print_newline ();
    print_string "--- server metrics (Prometheus exposition) ---\n";
    print_string text);
  if Metrics.Counter.value dropped > 0 then exit 1
