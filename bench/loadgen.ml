(* Load generator for the flb_service daemon and the flb_router tier.

   Drives N concurrent clients over the E4 (Fig. 4) workload suite —
   LU, Stencil, Laplace instances at the paper's CCRs — against either
   an in-process server (the default; started on an ephemeral port with
   a 2-domain pool and a capacity-bounded queue) or an external daemon
   given with --port. Each client thread owns one connection and issues
   its requests back to back; request latencies and the server-reported
   per-stage breakdown (queue wait / cache / schedule / execute, from
   the v2 Scheduled response) are observed into Flb_obs.Metrics
   histograms, and the run ends with a throughput and p50/p95/p99
   summary — end-to-end and per stage — plus the cache hit rate.

   --router N starts an in-process fleet instead: N backend daemons
   plus a router in front, and runs the same workload twice — once with
   the consistent-hash policy, once round-robin over the same number of
   fresh backends — then prints the two aggregate cache hit rates side
   by side (hashing keeps each graph digest on its replica set, so with
   replication < N it must win). Router runs also print a per-shard
   table (each distinct graph digest: requests, throughput, primary
   backend) and a per-backend table (forwarded requests, failures,
   backend-reported hit rate).

   Flags:
     --clients N       concurrent client connections        (default 4)
     --requests N      requests per client                  (default 200)
     --domains N       worker domains per in-process server (default 2)
     --queue-cap N     pool queue bound                     (default 64)
     --cache-cap N     schedule cache entries               (default 256)
     --tasks N         approximate tasks per workload graph (default 150)
     --algo NAME       scheduling algorithm                 (default FLB)
     --procs P         processors per request               (default 8)
     --port P          drive an external daemon (or router) instead
     --host H          external daemon host                 (default 127.0.0.1)
     --ports P1,P2,..  drive several external endpoints (replicated
                       routers): each client starts on one and, on a
                       transport error, rotates to the next and retries —
                       a request is dropped only once every endpoint has
                       failed it
     --router N        in-process fleet: N backends + router (default 0 = off)
     --replication R   replicas per shard in router mode    (default 2)
     --split-factor S  saturated-shard multiplier           (default 2)
     --hedge MS        hedging comparison: run the in-process fleet
                       twice — hot-shard hedging off, then on with this
                       delay — and print p50/p95/p99 side by side plus
                       the hedge-win rate scraped from the router metrics
     --stream N        streaming mode: N concurrent protocol-v3
                       streams per workload (default 0 = off); each
                       stream ships its graph in --batches batches and
                       the run reports placement latency p50/p95/p99
                       and rounds/sec (see Stream_bench)
     --batches B       task batches per stream               (default 4)

   Exits non-zero on any dropped connection or transport error. *)

module E = Flb_experiments
module Metrics = Flb_obs.Metrics
module Wire = Flb_service.Wire
module Router = Flb_router.Router
module Backend = Flb_router.Backend
module Ring = Flb_router.Ring

let arg_int name default =
  let rec find = function
    | flag :: v :: _ when flag = name -> int_of_string v
    | _ :: rest -> find rest
    | [] -> default
  in
  find (Array.to_list Sys.argv)

let arg_string name default =
  let rec find = function
    | flag :: v :: _ when flag = name -> v
    | _ :: rest -> find rest
    | [] -> default
  in
  find (Array.to_list Sys.argv)

let arg_float name default =
  let rec find = function
    | flag :: v :: _ when flag = name -> float_of_string v
    | _ :: rest -> find rest
    | [] -> default
  in
  find (Array.to_list Sys.argv)

(* Pull one counter value out of a Prometheus exposition dump. *)
let scrape_counter text name =
  List.fold_left
    (fun acc line ->
      match String.index_opt line ' ' with
      | Some i when String.sub line 0 i = name -> (
        match
          int_of_string_opt
            (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
        with
        | Some v -> v
        | None -> acc)
      | _ -> acc)
    0
    (String.split_on_char '\n' text)

(* Everything one workload pass produces, so router mode can run two
   passes (hash, round-robin) and compare. *)
type phase = {
  label : string;
  wall : float;
  latency : Metrics.Histogram.t;
  queue_wait_h : Metrics.Histogram.t;
  cache_h : Metrics.Histogram.t;
  sched_h : Metrics.Histogram.t;
  exec_h : Metrics.Histogram.t;
  ok : int;
  cache_hits : int;
  overloaded : int;
  errors : int;
  dropped : int;
  per_shard : int array; (* ok responses per graph index *)
}

let run_phase ~label ~clients ~requests ~graphs ~algo ~procs ~endpoints =
  let registry = Metrics.create () in
  let latency =
    Metrics.histogram registry ~help:"client-observed request latency (s)"
      "client_request_seconds"
  in
  (* server-reported per-stage breakdown (v2 Scheduled responses) *)
  let queue_wait_h =
    Metrics.histogram registry ~help:"server-reported queue wait (s)"
      "client_queue_wait_seconds"
  in
  let cache_h =
    Metrics.histogram registry ~help:"server-reported cache stage (s)"
      "client_cache_seconds"
  in
  let sched_h =
    Metrics.histogram registry ~help:"server-reported scheduling time (s)"
      "client_sched_seconds"
  in
  let exec_h =
    Metrics.histogram registry ~help:"server-reported compute job (s)"
      "client_exec_seconds"
  in
  let ok = Metrics.counter registry ~help:"Scheduled responses" "client_ok_total" in
  let cache_hits =
    Metrics.counter registry ~help:"Scheduled responses served from cache"
      "client_cache_hits_total"
  in
  let overloaded =
    Metrics.counter registry ~help:"Overloaded responses" "client_overloaded_total"
  in
  let errors =
    Metrics.counter registry ~help:"structured error responses"
      "client_errors_total"
  in
  let dropped =
    Metrics.counter registry ~help:"dropped connections / transport errors"
      "client_dropped_total"
  in
  let per_shard = Array.init (Array.length graphs) (fun _ -> Atomic.make 0) in

  let client_thread id () =
    let eps = Array.of_list endpoints in
    let n_eps = Array.length eps in
    let conn = ref None in
    let cur = ref (id mod n_eps) in
    let drop_conn () =
      (match !conn with
      | Some c -> ( try Flb_service.Client.close c with _ -> ())
      | None -> ());
      conn := None;
      cur := (!cur + 1) mod n_eps
    in
    let get_conn () =
      match !conn with
      | Some c -> Some c
      | None -> (
        let host, port = eps.(!cur) in
        match Flb_service.Client.connect ~host ~port () with
        | c ->
          conn := Some c;
          Some c
        | exception _ -> None)
    in
    Fun.protect
      ~finally:(fun () ->
        match !conn with
        | Some c -> Flb_service.Client.close c
        | None -> ())
      (fun () ->
        for i = 0 to requests - 1 do
          let gi = (id + (i * clients)) mod Array.length graphs in
          let graph = graphs.(gi) in
          let t0 = Unix.gettimeofday () in
          (* A transport error rotates to the next endpoint and retries
             there — with replicated routers a killed replica costs a
             reconnect, not a request. Dropped only once every endpoint
             has failed it twice (the second pass gives a just-restarted
             endpoint a fresh connection instead of a stale pooled one). *)
          let rec attempt tries last_err =
            if tries >= 2 * n_eps then begin
              Printf.eprintf "client %d: request dropped after %d attempts: %s\n%!"
                id tries last_err;
              Metrics.Counter.incr dropped
            end
            else
              match get_conn () with
              | None ->
                drop_conn ();
                attempt (tries + 1) "connect failed"
              | Some client -> (
                match Flb_service.Client.schedule client ~graph ~algo ~procs with
                | Ok (Wire.Scheduled r) ->
                  Metrics.Counter.incr ok;
                  Atomic.incr per_shard.(gi);
                  if r.cache_hit then Metrics.Counter.incr cache_hits;
                  let b = r.breakdown in
                  Metrics.Histogram.observe queue_wait_h b.Wire.queue_wait_s;
                  Metrics.Histogram.observe cache_h b.Wire.cache_s;
                  Metrics.Histogram.observe sched_h b.Wire.sched_s;
                  Metrics.Histogram.observe exec_h b.Wire.exec_s
                | Ok Wire.Overloaded -> Metrics.Counter.incr overloaded
                | Ok (Wire.Error _) -> Metrics.Counter.incr errors
                | Ok _ -> Metrics.Counter.incr errors
                | Error msg ->
                  drop_conn ();
                  attempt (tries + 1) msg)
          in
          attempt 0 "";
          Metrics.Histogram.observe latency (Unix.gettimeofday () -. t0)
        done)
  in

  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun id -> Thread.create (client_thread id) ()) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  {
    label;
    wall;
    latency;
    queue_wait_h;
    cache_h;
    sched_h;
    exec_h;
    ok = Metrics.Counter.value ok;
    cache_hits = Metrics.Counter.value cache_hits;
    overloaded = Metrics.Counter.value overloaded;
    errors = Metrics.Counter.value errors;
    dropped = Metrics.Counter.value dropped;
    per_shard = Array.map Atomic.get per_shard;
  }

let hit_pct p =
  100.0 *. float_of_int p.cache_hits /. float_of_int (max 1 p.ok)

let print_phase ~total p =
  Printf.printf "\n--- %s summary ---\n" p.label;
  Printf.printf "requests:        %d (%d ok, %d overloaded, %d errors, %d dropped)\n"
    total p.ok p.overloaded p.errors p.dropped;
  Printf.printf "wall time:       %.2f s\n" p.wall;
  Printf.printf "throughput:      %.0f req/s\n" (float_of_int total /. p.wall);
  let q h pr = Metrics.Histogram.quantile h ~q:pr *. 1e3 in
  Printf.printf "latency p50/p95/p99: %.3f / %.3f / %.3f ms\n" (q p.latency 0.5)
    (q p.latency 0.95) (q p.latency 0.99);
  let stage name h =
    if Metrics.Histogram.count h > 0 then
      Printf.printf "  %-11s p50/p95/p99: %.3f / %.3f / %.3f ms\n" name (q h 0.5)
        (q h 0.95) (q h 0.99)
  in
  Printf.printf "server-side breakdown of ok responses:\n";
  stage "queue wait" p.queue_wait_h;
  stage "cache" p.cache_h;
  stage "schedule" p.sched_h;
  stage "execute" p.exec_h;
  Printf.printf "client-seen cache hits: %d (%.1f%% of ok)\n" p.cache_hits
    (hit_pct p)

let () =
  let clients = arg_int "--clients" 4 in
  let requests = arg_int "--requests" 200 in
  let domains = arg_int "--domains" 2 in
  let queue_cap = arg_int "--queue-cap" 64 in
  let cache_cap = arg_int "--cache-cap" 256 in
  let tasks = arg_int "--tasks" 150 in
  let algo = arg_string "--algo" "FLB" in
  let procs = arg_int "--procs" 8 in
  let external_port = arg_int "--port" 0 in
  let host = arg_string "--host" "127.0.0.1" in
  let extra_endpoints =
    List.filter_map
      (fun s ->
        let s = String.trim s in
        if s = "" then None
        else
          match Backend.parse_addr s with
          | Ok hp -> Some hp
          | Error msg ->
            prerr_endline ("--ports: " ^ msg);
            exit 2)
      (String.split_on_char ',' (arg_string "--ports" ""))
  in
  let hedge_ms = arg_float "--hedge" 0.0 in
  let router_backends = arg_int "--router" 0 in
  let replication = arg_int "--replication" 2 in
  let split_factor = arg_int "--split-factor" 2 in
  let stream_clients = arg_int "--stream" 0 in
  let batches = arg_int "--batches" 4 in

  if stream_clients > 0 then begin
    (* --- streaming mode: incremental ingestion over protocol v3 --- *)
    let repeats = arg_int "--requests" 8 in
    let server, port =
      if external_port > 0 then (None, external_port)
      else begin
        let srv =
          Flb_service.Server.start
            {
              Flb_service.Server.default_config with
              port = 0;
              domains;
              queue_capacity = queue_cap;
              cache_capacity = cache_cap;
            }
        in
        Printf.printf
          "loadgen: in-process daemon on port %d (%d domains, queue %d)\n%!"
          (Flb_service.Server.port srv)
          domains queue_cap;
        (Some srv, Flb_service.Server.port srv)
      end
    in
    Printf.printf
      "loadgen: streaming, %d clients x %d streams per workload, %s on P=%d, \
       %d batches per stream (V ~ %d)\n%!"
      stream_clients repeats algo procs batches tasks;
    let outcomes =
      List.map
        (fun workload ->
          let graph = E.Workload_suite.instance workload ~ccr:1.0 ~seed:1 in
          let o =
            Stream_bench.run ~clients:stream_clients ~repeats ~batches ~graph
              ~algo ~procs ~host ~port
          in
          Stream_bench.print_summary ~label:workload.E.Workload_suite.name o;
          o)
        (E.Workload_suite.fig4_suite ~tasks ())
    in
    (match server with
    | None -> ()
    | Some srv -> Flb_service.Server.stop srv);
    let total f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
    let wall =
      List.fold_left (fun acc o -> acc +. o.Stream_bench.wall) 0.0 outcomes
    in
    let rounds = total (fun o -> o.Stream_bench.rounds) in
    let dropped = total (fun o -> o.Stream_bench.dropped) in
    Printf.printf "\n--- streaming aggregate ---\n";
    Printf.printf "streams ok:  %d (%d dropped)\n"
      (total (fun o -> o.Stream_bench.streams_ok))
      dropped;
    Printf.printf "placements:  %d of %d expected\n"
      (total (fun o -> o.Stream_bench.placed))
      (total (fun o -> o.Stream_bench.expected));
    Printf.printf "rounds:      %d (%.1f rounds/s over %.2f s)\n" rounds
      (float_of_int rounds /. Float.max wall 1e-9)
      wall;
    exit (if dropped > 0 then 1 else 0)
  end;

  (* The E4 suite: one instance per workload and CCR, serialized once.
     Clients cycle through the pool, so every graph repeats and the
     cache gets real hits. *)
  let graphs =
    List.concat_map
      (fun workload ->
        List.map
          (fun ccr ->
            Flb_taskgraph.Serial.to_string
              (E.Workload_suite.instance workload ~ccr ~seed:1))
          E.Workload_suite.paper_ccrs)
      (E.Workload_suite.fig4_suite ~tasks ())
  in
  let graphs = Array.of_list graphs in
  Printf.printf
    "loadgen: %d clients x %d requests, %s on P=%d, %d graphs (E4 suite, V ~ %d)\n%!"
    clients requests algo procs (Array.length graphs) tasks;
  let total = clients * requests in

  if hedge_ms > 0.0 then begin
    (* --- hedging comparison: same fleet, hedging off then on --- *)
    let n_backends = if router_backends > 0 then router_backends else 3 in
    let run_fleet hedge label =
      let servers =
        List.init n_backends (fun _ ->
            Flb_service.Server.start
              {
                Flb_service.Server.default_config with
                port = 0;
                domains;
                queue_capacity = queue_cap;
                cache_capacity = cache_cap;
              })
      in
      let backends =
        List.map (fun s -> ("127.0.0.1", Flb_service.Server.port s)) servers
      in
      let router =
        Router.start
          {
            Router.default_config with
            port = 0;
            backends;
            replication;
            split_factor;
            health_period_s = 0.5;
            hedge;
          }
      in
      Printf.printf "loadgen: %s — router on port %d, %d backends\n%!" label
        (Router.port router) n_backends;
      let phase =
        run_phase ~label ~clients ~requests ~graphs ~algo ~procs
          ~endpoints:[ ("127.0.0.1", Router.port router) ]
      in
      let text = Metrics.to_prometheus (Router.metrics router) in
      Router.stop router;
      List.iter Flb_service.Server.stop servers;
      (phase, scrape_counter text "router_hedge_total",
       scrape_counter text "router_hedge_wins")
    in
    let off_phase, _, _ = run_fleet Router.Hedge_off "hedging off" in
    let on_phase, hedges, wins =
      run_fleet
        (Router.Hedge_fixed_ms hedge_ms)
        (Printf.sprintf "hedging after %g ms" hedge_ms)
    in
    print_phase ~total off_phase;
    print_phase ~total on_phase;
    let q p pr = Metrics.Histogram.quantile p.latency ~q:pr *. 1e3 in
    Printf.printf "\n--- hedging comparison (%d clients x %d requests) ---\n"
      clients requests;
    Printf.printf "  %-24s p50 %8.3f  p95 %8.3f  p99 %8.3f ms\n" "hedging off:"
      (q off_phase 0.5) (q off_phase 0.95) (q off_phase 0.99);
    Printf.printf "  %-24s p50 %8.3f  p95 %8.3f  p99 %8.3f ms\n"
      (Printf.sprintf "hedging after %g ms:" hedge_ms)
      (q on_phase 0.5) (q on_phase 0.95) (q on_phase 0.99);
    Printf.printf "  hedges fired: %d, won: %d (win rate %.1f%%)\n" hedges wins
      (100.0 *. float_of_int wins /. float_of_int (max 1 hedges));
    if off_phase.dropped > 0 || on_phase.dropped > 0 then exit 1 else exit 0
  end;

  if router_backends > 0 then begin
    (* --- router mode: in-process fleet, hash vs round-robin --- *)
    let digests =
      Array.map
        (fun text ->
          Flb_service.Cache.digest (Flb_taskgraph.Serial.of_string text))
        graphs
    in
    let run_fleet policy label =
      let servers =
        List.init router_backends (fun _ ->
            Flb_service.Server.start
              {
                Flb_service.Server.default_config with
                port = 0;
                domains;
                queue_capacity = queue_cap;
                cache_capacity = cache_cap;
              })
      in
      let backends =
        List.map (fun s -> ("127.0.0.1", Flb_service.Server.port s)) servers
      in
      let router =
        Router.start
          {
            Router.default_config with
            port = 0;
            backends;
            replication;
            split_factor;
            policy;
            health_period_s = 0.5;
          }
      in
      Printf.printf
        "loadgen: %s router on port %d — %d backends %s, replication %d, \
         split factor %d\n%!"
        label (Router.port router) router_backends
        (String.concat "," (List.map (fun (_, p) -> string_of_int p) backends))
        replication split_factor;
      let phase =
        run_phase ~label ~clients ~requests ~graphs ~algo ~procs
          ~endpoints:[ ("127.0.0.1", Router.port router) ]
      in
      (* Refresh Backend.hit_rate et al. over the wire before reading. *)
      ignore (Router.probe_backends router);
      let rows =
        List.map
          (fun b ->
            (Backend.id b, Backend.requests b, Backend.failures b,
             Backend.hit_rate b))
          (Router.backends router)
      in
      Router.stop router;
      List.iter Flb_service.Server.stop servers;
      (phase, rows)
    in
    let hash_phase, hash_rows = run_fleet Router.Hash "hash policy" in
    let rr_phase, rr_rows = run_fleet Router.Round_robin "round-robin policy" in

    print_phase ~total hash_phase;
    Printf.printf "per-shard throughput (hash policy):\n";
    let ring =
      Ring.create (List.map (fun (id, _, _, _) -> id) hash_rows)
    in
    Array.iteri
      (fun i n ->
        Printf.printf "  shard %s (graph %2d): %5d ok, %7.1f req/s, primary %s\n"
          (String.sub digests.(i) 0 8)
          i n
          (float_of_int n /. hash_phase.wall)
          (Option.value ~default:"?"
             (Ring.primary ring
                (Printf.sprintf "%s/%s/%d" digests.(i)
                   (String.lowercase_ascii algo) procs))))
      hash_phase.per_shard;
    Printf.printf "per-backend (hash policy):\n";
    List.iter
      (fun (id, reqs, fails, hr) ->
        Printf.printf
          "  %-21s %6d forwarded, %3d failures, backend hit rate %.1f%%\n" id
          reqs fails (100.0 *. hr))
      hash_rows;

    print_phase ~total rr_phase;
    Printf.printf "per-backend (round-robin policy):\n";
    List.iter
      (fun (id, reqs, fails, hr) ->
        Printf.printf
          "  %-21s %6d forwarded, %3d failures, backend hit rate %.1f%%\n" id
          reqs fails (100.0 *. hr))
      rr_rows;

    Printf.printf "\n--- policy comparison (aggregate cache hit rate) ---\n";
    Printf.printf "  %-22s %6.1f%%  (%d of %d ok)\n" "consistent hashing:"
      (hit_pct hash_phase) hash_phase.cache_hits hash_phase.ok;
    Printf.printf "  %-22s %6.1f%%  (%d of %d ok)\n" "round-robin:"
      (hit_pct rr_phase) rr_phase.cache_hits rr_phase.ok;
    if hit_pct hash_phase > hit_pct rr_phase then
      Printf.printf "  hashing wins by %.1f points\n"
        (hit_pct hash_phase -. hit_pct rr_phase)
    else
      Printf.printf "  hashing does NOT win (replication %d vs %d backends?)\n"
        replication router_backends;
    if hash_phase.dropped > 0 || rr_phase.dropped > 0 then exit 1
  end
  else begin
    (* --- single-daemon / external-endpoint mode --- *)
    let server, endpoints =
      if extra_endpoints <> [] then begin
        Printf.printf "loadgen: %d external endpoints: %s\n%!"
          (List.length extra_endpoints)
          (String.concat ", "
             (List.map
                (fun (h, p) -> Printf.sprintf "%s:%d" h p)
                extra_endpoints));
        (None, extra_endpoints)
      end
      else if external_port > 0 then (None, [ (host, external_port) ])
      else begin
        let srv =
          Flb_service.Server.start
            {
              Flb_service.Server.default_config with
              port = 0;
              domains;
              queue_capacity = queue_cap;
              cache_capacity = cache_cap;
            }
        in
        Printf.printf
          "loadgen: in-process daemon on port %d (%d domains, queue %d)\n%!"
          (Flb_service.Server.port srv)
          domains queue_cap;
        (Some srv, [ ("127.0.0.1", Flb_service.Server.port srv) ])
      end
    in
    let phase =
      run_phase ~label:"load generator" ~clients ~requests ~graphs ~algo ~procs
        ~endpoints
    in
    let server_metrics =
      match server with
      | None -> None
      | Some srv ->
        let text = Metrics.to_prometheus (Flb_service.Server.metrics srv) in
        Flb_service.Server.stop srv;
        Some text
    in
    print_phase ~total phase;
    (match server_metrics with
    | None -> ()
    | Some text ->
      print_newline ();
      print_string "--- server metrics (Prometheus exposition) ---\n";
      print_string text);
    if phase.dropped > 0 then exit 1
  end
