(* lib/stream: streaming/online DAG scheduling. The anchor property is
   the streaming analogue of PR 5's empty-snapshot pin: a stream fed its
   whole graph and sealed before the first tick goes through exactly one
   round with no frozen history and no floors, so it must reproduce the
   one-shot scheduler bit for bit — the streaming path and the one-shot
   path are the same code. The second invariant is the frozen prefix:
   once a placement is announced it never moves, whatever arrives
   later. *)

open! Flb_taskgraph
open! Flb_platform
open Testutil
module SG = Flb_stream.Stream_graph
module SL = Flb_stream.Scheduler_loop
module Chunk = Flb_stream.Chunk
module RS = Flb_reschedule
module E = Flb_experiments

let bits = Int64.bits_of_float

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (SL.error_to_string e)

let graph_comps g = Array.init (Taskgraph.num_tasks g) (Taskgraph.comp g)

let graph_edges g =
  let acc = ref [] in
  Taskgraph.iter_edges (fun s d c -> acc := (s, d, c) :: !acc) g;
  Array.of_list (List.rev !acc)

(* Feed a whole graph through one stream and seal. *)
let stream_whole loop ~algo ~procs g =
  let id = ok (SL.open_stream loop ~algo ~procs) in
  let first, _ = ok (SL.add_tasks loop ~stream:id ~comps:(graph_comps g)) in
  Alcotest.(check int) "ids start at 0" 0 first;
  let (_ : SL.progress) =
    ok (SL.add_edges loop ~stream:id ~edges:(graph_edges g))
  in
  ok (SL.seal loop ~stream:id)

let placements_by_task (p : SL.progress) extra =
  let tbl = Hashtbl.create 16 in
  Array.iter (fun (pl : SL.placement) -> Hashtbl.replace tbl pl.task pl)
    (Array.concat [ extra; p.placements ]);
  tbl

(* --- Stream_graph: structured errors, never exceptions --- *)

let test_graph_errors () =
  let sg = SG.create () in
  Alcotest.(check int) "first batch at 0" 0
    (Result.get_ok (SG.add_tasks sg ~comps:[| 1.0; 2.0 |]));
  Alcotest.(check int) "second batch appended" 2
    (Result.get_ok (SG.add_tasks sg ~comps:[| 3.0 |]));
  let expect_err name want got =
    match got with
    | Ok _ -> Alcotest.failf "%s: expected %s" name (SG.error_to_string want)
    | Error e ->
      Alcotest.(check string) name (SG.error_to_string want)
        (SG.error_to_string e)
  in
  expect_err "bad comp weight" (SG.Bad_weight (-1.0))
    (SG.add_tasks sg ~comps:[| -1.0 |]);
  expect_err "unknown src" (SG.Unknown_task 9)
    (SG.add_edge sg ~src:9 ~dst:0 ~comm:1.0);
  expect_err "unknown dst" (SG.Unknown_task (-1))
    (SG.add_edge sg ~src:0 ~dst:(-1) ~comm:1.0);
  expect_err "self edge" (SG.Self_edge 1) (SG.add_edge sg ~src:1 ~dst:1 ~comm:1.0);
  expect_err "bad comm" (SG.Bad_weight Float.infinity)
    (SG.add_edge sg ~src:0 ~dst:1 ~comm:Float.infinity);
  Alcotest.(check unit) "good edge" ()
    (Result.get_ok (SG.add_edge sg ~src:0 ~dst:1 ~comm:1.0));
  expect_err "duplicate edge" (SG.Duplicate_edge (0, 1))
    (SG.add_edge sg ~src:0 ~dst:1 ~comm:2.0);
  SG.mark_dispatched sg 2;
  expect_err "edge into dispatched" (SG.Edge_into_dispatched 2)
    (SG.add_edge sg ~src:0 ~dst:2 ~comm:1.0);
  Alcotest.(check unit) "edge out of dispatched is fine" ()
    (Result.get_ok (SG.add_edge sg ~src:2 ~dst:1 ~comm:1.0));
  Alcotest.(check int) "pending excludes dispatched" 2 (SG.pending sg);
  Alcotest.(check unit) "acyclic so far" ()
    (Result.get_ok (SG.check_acyclic sg));
  Alcotest.(check unit) "seal succeeds" () (Result.get_ok (SG.seal sg));
  Alcotest.(check bool) "sealed" true (SG.sealed sg);
  expect_err "append after seal" SG.Sealed (SG.add_tasks sg ~comps:[| 1.0 |])

let test_graph_cycle () =
  let sg = SG.create () in
  ignore (Result.get_ok (SG.add_tasks sg ~comps:[| 1.0; 1.0; 1.0 |]));
  List.iter
    (fun (s, d) -> ignore (Result.get_ok (SG.add_edge sg ~src:s ~dst:d ~comm:0.5)))
    [ (0, 1); (1, 2); (2, 0) ];
  (match SG.check_acyclic sg with
  | Error (SG.Cyclic _) -> ()
  | _ -> Alcotest.fail "cycle not detected");
  (match SG.seal sg with
  | Error (SG.Cyclic _) -> ()
  | _ -> Alcotest.fail "seal accepted a cycle");
  Alcotest.(check bool) "left unsealed" false (SG.sealed sg)

let test_graph_snapshot_roundtrip () =
  let g = Example.fig1 () in
  let sg = SG.create () in
  ignore (Result.get_ok (SG.add_tasks sg ~comps:(graph_comps g)));
  Array.iter
    (fun (s, d, c) ->
      ignore (Result.get_ok (SG.add_edge sg ~src:s ~dst:d ~comm:c)))
    (graph_edges g);
  let snap = SG.snapshot sg in
  Alcotest.(check string) "snapshot round-trips through Serial"
    (Serial.to_string g) (Serial.to_string snap);
  SG.mark_dispatched sg 0;
  SG.mark_dispatched sg 1;
  let sub, old_of_new, _ = SG.frontier sg in
  Alcotest.(check int) "frontier excludes dispatched" 6
    (Taskgraph.num_tasks sub);
  Array.iter
    (fun ot -> Alcotest.(check bool) "dispatched have no image" false (ot < 2))
    old_of_new

(* --- One sealed round == one-shot, every resumable scheduler --- *)

let prop_sealed_round_is_one_shot (p, procs) =
  let g = build_dag p in
  List.iter
    (fun entry ->
      let name = entry.RS.Reschedule.name in
      let reg =
        match E.Registry.find name with
        | Some r -> r
        | None -> QCheck.Test.fail_reportf "%s not in the registry" name
      in
      let m = Machine.clique ~num_procs:procs in
      let fresh = reg.E.Registry.run g m in
      let loop = SL.create SL.default_config in
      let final = stream_whole loop ~algo:name ~procs g in
      if not final.SL.final then QCheck.Test.fail_report "seal not final";
      if Array.length final.SL.placements <> Taskgraph.num_tasks g then
        QCheck.Test.fail_reportf "%s: %d placements for %d tasks" name
          (Array.length final.SL.placements)
          (Taskgraph.num_tasks g);
      Array.iter
        (fun (pl : SL.placement) ->
          if
            pl.proc <> Schedule.proc fresh pl.task
            || bits pl.start <> bits (Schedule.start_time fresh pl.task)
            || bits pl.finish <> bits (Schedule.finish_time fresh pl.task)
          then
            QCheck.Test.fail_reportf
              "%s diverges on task %d: stream p%d [%h,%h], one-shot p%d [%h,%h]"
              name pl.task pl.proc pl.start pl.finish
              (Schedule.proc fresh pl.task)
              (Schedule.start_time fresh pl.task)
              (Schedule.finish_time fresh pl.task))
        final.SL.placements;
      if bits final.SL.makespan <> bits (Schedule.makespan fresh) then
        QCheck.Test.fail_reportf "%s makespan drifts: %h vs %h" name
          final.SL.makespan (Schedule.makespan fresh))
    RS.Reschedule.entries;
  true

(* --- fig1 in two batches: >= 2 rounds, frozen prefix, makespan --- *)

let test_fig1_two_batches () =
  let g = Example.fig1 () in
  let loop = SL.create SL.default_config in
  let id = ok (SL.open_stream loop ~algo:"FLB" ~procs:2) in
  (* Batch 1: tasks 0-3 and their mutual edges. *)
  let comps = graph_comps g in
  ignore (ok (SL.add_tasks loop ~stream:id ~comps:(Array.sub comps 0 4)));
  let edges_into lo hi =
    Array.of_list
      (List.filter (fun (_, d, _) -> d >= lo && d < hi)
         (Array.to_list (graph_edges g)))
  in
  ignore (ok (SL.add_edges loop ~stream:id ~edges:(edges_into 0 4)));
  let p1 = ok (SL.poll loop ~stream:id) in
  Alcotest.(check int) "batch 1 dispatched" 4 (Array.length p1.SL.placements);
  Alcotest.(check int) "one round so far" 1 p1.SL.round;
  (* Batch 2: tasks 4-7, edges from both batches. *)
  ignore (ok (SL.add_tasks loop ~stream:id ~comps:(Array.sub comps 4 4)));
  ignore (ok (SL.add_edges loop ~stream:id ~edges:(edges_into 4 8)));
  let final = ok (SL.seal loop ~stream:id) in
  Alcotest.(check bool) "final" true final.SL.final;
  Alcotest.(check int) "batch 2 dispatched" 4 (Array.length final.SL.placements);
  Alcotest.(check bool) "at least two rounds" true (final.SL.round >= 2);
  (* The frozen prefix never moves: batch 1 placements are immutable. *)
  let all = placements_by_task final p1.SL.placements in
  Array.iter
    (fun (pl : SL.placement) ->
      let again = Hashtbl.find all pl.task in
      Alcotest.(check bool) "prefix pinned" true (again = pl))
    p1.SL.placements;
  Alcotest.(check int) "every task placed exactly once" 8 (Hashtbl.length all);
  (* Batch 1 alone is scheduled without lookahead; FLB still lands the
     full Fig. 1 graph on the Table 1 schedule length. *)
  Alcotest.(check (float 1e-9)) "fig1 streamed makespan" 14.0 final.SL.makespan

(* --- Two concurrent clients merge into one super-DAG round --- *)

let test_two_streams_batch () =
  let loop = SL.create { SL.default_config with batch_tasks = 1000 } in
  let a = ok (SL.open_stream loop ~algo:"FLB" ~procs:2) in
  let b = ok (SL.open_stream loop ~algo:"FLB" ~procs:2) in
  let chain id =
    ignore (ok (SL.add_tasks loop ~stream:id ~comps:[| 2.0; 3.0 |]));
    ignore
      (ok (SL.add_edges loop ~stream:id ~edges:[| (0, 1, 1.0) |]))
  in
  chain a;
  chain b;
  let pa = ok (SL.poll loop ~stream:a) in
  Alcotest.(check int) "both streams in the round" 2
    (SL.last_batch_streams loop);
  Alcotest.(check int) "a fully placed" 2 (Array.length pa.SL.placements);
  let pb = ok (SL.poll loop ~stream:b) in
  Alcotest.(check int) "b fully placed" 2 (Array.length pb.SL.placements);
  Alcotest.(check int) "one shared round" 1 (SL.rounds loop);
  (* Shared machine: the two chains must not overlap on a processor. *)
  let busy = Hashtbl.create 8 in
  Array.iter
    (fun (pl : SL.placement) ->
      Hashtbl.add busy pl.proc (pl.start, pl.finish))
    (Array.append pa.SL.placements pb.SL.placements);
  Hashtbl.iter
    (fun p (s1, f1) ->
      Hashtbl.iter
        (fun p' (s2, f2) ->
          if p = p' && (s1, f1) <> (s2, f2) && s1 < f2 && s2 < f1 then
            Alcotest.failf "overlap on proc %d: [%g,%g] vs [%g,%g]" p s1 f1 s2
              f2)
        busy)
    busy

(* Group floors survive a drained stream: a second wave starting after
   the first drained must not be scheduled below the busy timeline. *)
let test_floors_survive_drain () =
  let loop = SL.create SL.default_config in
  let a = ok (SL.open_stream loop ~algo:"FLB" ~procs:2) in
  let b = ok (SL.open_stream loop ~algo:"FLB" ~procs:2) in
  ignore (ok (SL.add_tasks loop ~stream:a ~comps:[| 5.0; 5.0 |]));
  let fa = ok (SL.seal loop ~stream:a) in
  Alcotest.(check (float 1e-9)) "wave 1 spans both procs" 5.0 fa.SL.makespan;
  ignore (ok (SL.add_tasks loop ~stream:b ~comps:[| 1.0 |]));
  let fb = ok (SL.seal loop ~stream:b) in
  let pl = fb.SL.placements.(0) in
  Alcotest.(check bool) "wave 2 starts after wave 1's floor" true
    (pl.SL.start >= 5.0);
  (* Last member gone: the group timeline resets for new traffic. *)
  let c = ok (SL.open_stream loop ~algo:"FLB" ~procs:2) in
  ignore (ok (SL.add_tasks loop ~stream:c ~comps:[| 1.0 |]));
  let fc = ok (SL.seal loop ~stream:c) in
  Alcotest.(check (float 1e-9)) "fresh group starts at zero" 0.0
    fc.SL.placements.(0).SL.start

(* --- Poisoned stream: cycle reported as a structured error --- *)

let test_cyclic_stream_poisoned () =
  let loop = SL.create SL.default_config in
  let id = ok (SL.open_stream loop ~algo:"FLB" ~procs:2) in
  ignore (ok (SL.add_tasks loop ~stream:id ~comps:[| 1.0; 1.0 |]));
  ignore
    (ok (SL.add_edges loop ~stream:id ~edges:[| (0, 1, 1.0) |]));
  (* The reverse edge closes a cycle; the poll's round detects it. *)
  ignore (ok (SL.add_edges loop ~stream:id ~edges:[| (1, 0, 1.0) |]));
  (match SL.poll loop ~stream:id with
  | Error (SL.Rejected (SG.Cyclic _)) -> ()
  | Ok _ -> Alcotest.fail "cyclic stream still scheduled"
  | Error e -> Alcotest.failf "wrong error: %s" (SL.error_to_string e));
  (match SL.poll loop ~stream:id with
  | Error (SL.Unknown_stream _) -> ()
  | _ -> Alcotest.fail "poisoned stream not closed")

(* --- Admission control and idle eviction --- *)

let test_admission_and_eviction () =
  let loop =
    SL.create { SL.default_config with max_streams = 1; idle_timeout_s = 10.0 }
  in
  let a = ok (SL.open_stream loop ~algo:"FLB" ~procs:2) in
  (match SL.open_stream loop ~algo:"FLB" ~procs:2 with
  | Error (SL.Too_many_streams 1) -> ()
  | _ -> Alcotest.fail "admission limit not enforced");
  (match SL.open_stream loop ~algo:"NOPE" ~procs:2 with
  | Error (SL.Failed _) -> ()
  | _ -> Alcotest.fail "unknown algorithm accepted");
  (match SL.open_stream loop ~algo:"FLB" ~procs:0 with
  | Error (SL.Failed _) -> ()
  | _ -> Alcotest.fail "procs 0 accepted");
  ignore (ok (SL.add_tasks loop ~stream:a ~comps:[| 1.0 |]));
  (* Idle past the timeout: the sweep evicts and frees the slot. *)
  SL.maybe_tick loop ~now:(Unix.gettimeofday () +. 3600.0);
  Alcotest.(check int) "evicted" 0 (SL.active_streams loop);
  (match SL.poll loop ~stream:a with
  | Error (SL.Unknown_stream _) -> ()
  | _ -> Alcotest.fail "evicted stream still answers");
  ignore (ok (SL.open_stream loop ~algo:"FLB" ~procs:2))

(* --- Chunk.plan: topological batches a client can replay safely --- *)

let test_chunk_plan () =
  let g = Example.fig1 () in
  let n = Taskgraph.num_tasks g in
  let check_plan chunks =
    let batches = Chunk.plan ~chunks g in
    Alcotest.(check int)
      (Printf.sprintf "%d chunks clamp to the task count" chunks)
      (min chunks n) (List.length batches);
    (* Concatenated comps are the graph's, in stream (topological)
       order; every edge ships in its destination's batch, with the
       source at a same-or-earlier stream position. *)
    let ord = Chunk.order g in
    let pos = ref 0 in
    let edges_total = ref 0 in
    List.iter
      (fun { Chunk.comps; edges } ->
        let lo = !pos in
        Array.iteri
          (fun i c ->
            Alcotest.(check (float 0.0)) "comp in stream order"
              (Taskgraph.comp g ord.(lo + i))
              c)
          comps;
        pos := lo + Array.length comps;
        Array.iter
          (fun (src, dst, _) ->
            edges_total := !edges_total + 1;
            Alcotest.(check bool) "dst lands in this batch" true
              (dst >= lo && dst < !pos);
            Alcotest.(check bool) "src already streamed" true
              (src >= 0 && src < !pos))
          edges)
      batches;
    Alcotest.(check int) "every task shipped" n !pos;
    Alcotest.(check int) "every edge shipped" (Taskgraph.num_edges g)
      !edges_total
  in
  List.iter check_plan [ 1; 2; 3; n; 2 * n ];
  Alcotest.check_raises "chunks < 1 rejected"
    (Invalid_argument "Chunk.plan: chunks must be >= 1") (fun () ->
      ignore (Chunk.plan ~chunks:0 g));
  let empty = Taskgraph.Builder.build (Taskgraph.Builder.create ()) in
  Alcotest.(check int) "empty graph plans to no batches" 0
    (List.length (Chunk.plan empty))

(* A client replaying Chunk.plan — add_tasks, add_edges, poll per
   batch — must never see Edge_rejected and must end fully placed,
   whatever DAG, chunk count or (threshold-triggering) batch size. *)
let prop_chunked_stream_completes (p, procs) =
  let g = build_dag p in
  let n = Taskgraph.num_tasks g in
  let chunks = 1 + (n mod 5) in
  let okq = function
    | Ok v -> v
    | Error e ->
      QCheck.Test.fail_reportf "chunked stream hit: %s" (SL.error_to_string e)
  in
  let loop = SL.create { SL.default_config with batch_tasks = 4 } in
  let id = okq (SL.open_stream loop ~algo:"FLB" ~procs) in
  let seen = Hashtbl.create 64 in
  let note (pr : SL.progress) =
    Array.iter
      (fun (pl : SL.placement) ->
        if Hashtbl.mem seen pl.SL.task then
          QCheck.Test.fail_reportf "task %d placed twice" pl.SL.task;
        Hashtbl.replace seen pl.SL.task pl)
      pr.SL.placements
  in
  List.iter
    (fun { Chunk.comps; edges } ->
      ignore (okq (SL.add_tasks loop ~stream:id ~comps));
      if Array.length edges > 0 then
        note (okq (SL.add_edges loop ~stream:id ~edges));
      note (okq (SL.poll loop ~stream:id)))
    (Chunk.plan ~chunks g);
  let final = okq (SL.seal loop ~stream:id) in
  note final;
  if not final.SL.final then QCheck.Test.fail_report "seal not final";
  if Hashtbl.length seen <> n then
    QCheck.Test.fail_reportf "%d of %d tasks placed" (Hashtbl.length seen) n;
  (* The reported makespan is the max finish over the placements. *)
  let max_finish =
    Hashtbl.fold (fun _ (pl : SL.placement) acc -> Float.max pl.SL.finish acc)
      seen 0.0
  in
  if bits final.SL.makespan <> bits max_finish then
    QCheck.Test.fail_reportf "makespan %h but max finish %h" final.SL.makespan
      max_finish;
  true

(* The periodic timer places pending work without any client call. *)
let test_timer_tick () =
  let loop = SL.create { SL.default_config with tick_period_s = 0.0 } in
  let id = ok (SL.open_stream loop ~algo:"FLB" ~procs:2) in
  ignore (ok (SL.add_tasks loop ~stream:id ~comps:[| 1.0; 2.0 |]));
  Alcotest.(check int) "nothing placed yet" 0 (SL.rounds loop);
  SL.maybe_tick loop ~now:(Unix.gettimeofday ());
  Alcotest.(check int) "timer ran a round" 1 (SL.rounds loop);
  let p = ok (SL.poll loop ~stream:id) in
  Alcotest.(check int) "placements waited in the outbox" 2
    (Array.length p.SL.placements)

let suite =
  [
    Alcotest.test_case "stream graph: structured append errors" `Quick
      test_graph_errors;
    Alcotest.test_case "stream graph: cycle check on seal" `Quick
      test_graph_cycle;
    Alcotest.test_case "stream graph: snapshot/frontier round-trip" `Quick
      test_graph_snapshot_roundtrip;
    Alcotest.test_case "fig1 in two batches: frozen prefix, makespan 14"
      `Quick test_fig1_two_batches;
    Alcotest.test_case "two clients share one super-DAG round" `Quick
      test_two_streams_batch;
    Alcotest.test_case "group floors survive a drained stream" `Quick
      test_floors_survive_drain;
    Alcotest.test_case "cyclic stream is poisoned with a structured error"
      `Quick test_cyclic_stream_poisoned;
    Alcotest.test_case "admission control and idle eviction" `Quick
      test_admission_and_eviction;
    Alcotest.test_case "timer tick places pending work" `Quick test_timer_tick;
    Alcotest.test_case "chunk plan: topological batches, every edge with its \
                        destination" `Quick test_chunk_plan;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [
        qtest ~count:40 "sealed stream in one round = one-shot, every scheduler"
          arb_scheduling_case prop_sealed_round_is_one_shot;
        qtest ~count:60 "chunked streaming always completes, never rejected"
          arb_scheduling_case prop_chunked_stream_completes;
      ]
