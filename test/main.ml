let () =
  Alcotest.run "flb"
    [
      ("rng", Test_rng.suite);
      ("vec", Test_vec.suite);
      ("stats", Test_stats.suite);
      ("bitset", Test_bitset.suite);
      ("heaps", Test_heaps.suite);
      ("taskgraph", Test_taskgraph.suite);
      ("topo-levels", Test_topo_levels.suite);
      ("width", Test_width.suite);
      ("schedule", Test_schedule.suite);
      ("serial-dot", Test_serial_dot.suite);
      ("simulator", Test_sim.suite);
      ("workloads", Test_workloads.suite);
      ("flb", Test_flb.suite);
      ("schedulers", Test_schedulers.suite);
      ("duplication", Test_duplication.suite);
      ("analysis", Test_analysis.suite);
      ("analyze", Test_analyze.suite);
      ("mesh", Test_mesh.suite);
      ("lang", Test_lang.suite);
      ("exhaustive", Test_exhaustive.suite);
      ("experiments", Test_experiments.suite);
      ("alloc", Test_alloc.suite);
      ("obs", Test_obs.suite);
      ("reschedule", Test_reschedule.suite);
      ("runtime", Test_runtime.suite);
      ("stream", Test_stream.suite);
      ("service", Test_service.suite);
      ("router", Test_router.suite);
    ]
