(* lib/runtime Analyze: makespan attribution from JSONL traces. The
   golden test pins the fig1 report exactly — the virtual clock makes
   the trace deterministic, so the realized critical path, slack, and
   per-domain busy/idle totals are contracts, not approximations. *)

open! Flb_taskgraph
open! Flb_platform
open Testutil
module R = Flb_runtime
module E = Flb_experiments
module A = Flb_runtime.Analyze

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* fig1, FLB, P=2, replayed on the virtual clock: the exact run every
   paper figure is calibrated against. *)
let fig1_run () =
  let g = Example.fig1 () in
  let sched = E.Registry.flb.E.Registry.run g (Machine.clique ~num_procs:2) in
  let v = R.Virtual_clock.run_static sched in
  let jsonl =
    A.jsonl_of_times
      ~meta:[ ("engine", "virtual-static"); ("domains", "2") ]
      ~start:v.R.Virtual_clock.start ~finish:v.R.Virtual_clock.finish
      ~exec_domain:v.R.Virtual_clock.exec_domain ()
  in
  (g, sched, jsonl)

let test_fig1_golden () =
  let g, sched, jsonl = fig1_run () in
  let run =
    match A.of_jsonl jsonl with Ok r -> r | Error e -> Alcotest.fail e
  in
  check_int "8 executed spans parsed" 8 (List.length run.A.execs);
  Alcotest.(check (list (pair string string)))
    "meta line parsed"
    [ ("engine", "virtual-static"); ("domains", "2") ]
    run.A.meta;
  let r =
    match A.analyze ~schedule:sched ~graph:g run with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  check_float "makespan" 14.0 r.A.makespan;
  check_int "executed" 8 r.A.executed;
  check_int "total" 8 r.A.total;
  check_bool "communication charged" true r.A.comm_charged;
  Alcotest.(check (list int))
    "realized critical path" [ 0; 3; 2; 6; 7 ] r.A.critical_path;
  (* slack: zero along the CP, positive off it *)
  List.iter
    (fun t ->
      match r.A.per_task.(t) with
      | None -> Alcotest.failf "task %d missing" t
      | Some s ->
        check_float (Printf.sprintf "task %d slack" t) 0.0 s.A.t_slack;
        check_bool (Printf.sprintf "task %d on CP" t) true s.A.t_on_cp)
    r.A.critical_path;
  (match r.A.per_task.(5) with
  | Some s ->
    check_float "task 5 slack" 2.0 s.A.t_slack;
    check_bool "task 5 off CP" false s.A.t_on_cp
  | None -> Alcotest.fail "task 5 missing");
  (* per-domain busy/idle: D0 runs 5 tasks for 12 units, D1 runs 3 for 7 *)
  check_int "two domains" 2 (Array.length r.A.per_domain);
  let d0 = r.A.per_domain.(0) and d1 = r.A.per_domain.(1) in
  check_int "D0 tasks" 5 d0.A.d_tasks;
  check_float "D0 busy" 12.0 d0.A.d_busy;
  check_float "D0 idle" 2.0 d0.A.d_idle;
  check_int "D1 tasks" 3 d1.A.d_tasks;
  check_float "D1 busy" 7.0 d1.A.d_busy;
  check_float "D1 idle" 7.0 d1.A.d_idle;
  (* the virtual replay matches its own prediction exactly: no stragglers *)
  check_bool "no stragglers" true (r.A.stragglers = []);
  (* rendered forms carry the same story *)
  let text = A.render r in
  check_bool "render names the CP" true (contains text "0 -> 3 -> 2 -> 6 -> 7");
  check_bool "render shows D0" true (contains text "D0: 5 tasks");
  let json = A.to_json r in
  check_bool "json makespan" true (contains json "\"makespan\":14");
  check_bool "json CP" true (contains json "\"critical_path\":[0,3,2,6,7]")

let test_stragglers_ranked () =
  (* perturb the realized times: task 6 finishes 3 late, task 1 finishes
     1 late; the ranking must come back worst-first with exact lateness *)
  let g = Example.fig1 () in
  let sched = E.Registry.flb.E.Registry.run g (Machine.clique ~num_procs:2) in
  let v = R.Virtual_clock.run_static sched in
  let start = Array.copy v.R.Virtual_clock.start
  and finish = Array.copy v.R.Virtual_clock.finish in
  finish.(6) <- finish.(6) +. 3.0;
  finish.(1) <- finish.(1) +. 1.0;
  let jsonl =
    A.jsonl_of_times ~start ~finish
      ~exec_domain:v.R.Virtual_clock.exec_domain ()
  in
  let run = Result.get_ok (A.of_jsonl jsonl) in
  match A.analyze ~schedule:sched ~graph:g run with
  | Error e -> Alcotest.fail e
  | Ok r -> (
    match r.A.stragglers with
    | (6, l6) :: (1, l1) :: _ ->
      check_float "worst first" 3.0 l6;
      check_float "then the next" 1.0 l1
    | s -> Alcotest.failf "unexpected straggler list (%d entries)" (List.length s))

let test_comm_charged_inference () =
  (* same placement, but cross-domain gaps squeezed out: the analyzer
     must notice communication was not charged *)
  let g = Example.fig1 () in
  let sched = E.Registry.flb.E.Registry.run g (Machine.clique ~num_procs:2) in
  let v = R.Virtual_clock.run_static sched in
  let run =
    Result.get_ok
      (A.of_jsonl
         (A.jsonl_of_times ~start:v.R.Virtual_clock.start
            ~finish:v.R.Virtual_clock.finish
            ~exec_domain:v.R.Virtual_clock.exec_domain ()))
  in
  let r = Result.get_ok (A.analyze ~graph:g run) in
  check_bool "virtual static charges comm" true r.A.comm_charged;
  (* hand-built two-task run: 0 on D0 finishes at 1, 1 on D1 starts at 1
     despite edge weight 5 — communication visibly skipped *)
  let g2 =
    Taskgraph.of_arrays ~comp:[| 1.0; 1.0 |] ~edges:[| (0, 1, 5.0) |]
  in
  let run2 =
    Result.get_ok
      (A.of_jsonl
         (A.jsonl_of_times ~start:[| 0.0; 1.0 |] ~finish:[| 1.0; 2.0 |]
            ~exec_domain:[| 0; 1 |] ()))
  in
  let r2 = Result.get_ok (A.analyze ~graph:g2 run2) in
  check_bool "uncharged comm detected" false r2.A.comm_charged

let test_partial_run () =
  (* a faulted run that lost task 1: the report says 7 of 8 and keeps a
     coherent critical path over what did execute *)
  let g = Example.fig1 () in
  let sched = E.Registry.flb.E.Registry.run g (Machine.clique ~num_procs:2) in
  let v = R.Virtual_clock.run_static sched in
  let exec_domain = Array.copy v.R.Virtual_clock.exec_domain in
  exec_domain.(1) <- -1;
  let jsonl =
    A.jsonl_of_times ~start:v.R.Virtual_clock.start
      ~finish:v.R.Virtual_clock.finish ~exec_domain ()
  in
  let run = Result.get_ok (A.of_jsonl jsonl) in
  let r = Result.get_ok (A.analyze ~graph:g run) in
  check_int "one task missing" 7 r.A.executed;
  check_int "graph size still reported" 8 r.A.total;
  check_bool "missing task has no stats" true (r.A.per_task.(1) = None);
  check_bool "CP avoids the missing task" false (List.mem 1 r.A.critical_path)

let test_parser_errors () =
  let reject what text =
    match A.of_jsonl text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" what
  in
  reject "broken json" "{\"type\":\"span\",\"track\":\"D0\"";
  reject "span without dur"
    "{\"type\":\"span\",\"track\":\"D0\",\"name\":\"task 1\",\"ts\":0}";
  (* non-domain tracks and unknown line types are skipped, not errors *)
  let ok =
    A.of_jsonl
      ("{\"type\":\"span\",\"track\":\"req-00ff\",\"name\":\"cache\",\"ts\":0,\"dur\":1}\n"
     ^ "{\"type\":\"counter\",\"track\":\"D0\",\"name\":\"ready\",\"ts\":0}\n"
     ^ "{\"type\":\"span\",\"track\":\"D0\",\"name\":\"task 0\",\"ts\":0,\"dur\":2}\n")
  in
  match ok with
  | Error e -> Alcotest.fail e
  | Ok run -> check_int "only the domain span kept" 1 (List.length run.A.execs)

let test_analyze_validation () =
  let g = Example.fig1 () in
  let bad execs = A.analyze ~graph:g { A.execs; marks = []; meta = [] } in
  (match bad [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an empty run");
  (match bad [ { A.task = 99; domain = 0; start = 0.0; finish = 1.0 } ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an out-of-range task id");
  match bad [ { A.task = 0; domain = 0; start = 2.0; finish = 1.0 } ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a negative duration"

let suite =
  [
    Alcotest.test_case "fig1 golden report" `Quick test_fig1_golden;
    Alcotest.test_case "stragglers ranked worst-first" `Quick
      test_stragglers_ranked;
    Alcotest.test_case "communication charging inferred" `Quick
      test_comm_charged_inference;
    Alcotest.test_case "partial (faulted) runs" `Quick test_partial_run;
    Alcotest.test_case "parser rejects broken lines" `Quick test_parser_errors;
    Alcotest.test_case "analyze validates its input" `Quick
      test_analyze_validation;
  ]
