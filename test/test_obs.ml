(* The observability layer: tracer, metrics registry, scheduler probe,
   and their integration with the schedulers and the simulator. *)

open! Flb_taskgraph
open! Flb_platform
open Testutil
module Trace = Flb_obs.Trace
module Obs_metrics = Flb_obs.Metrics
module Probe = Flb_obs.Probe
module Log_histogram = Flb_prelude.Stats.Log_histogram

let machine2 () = Machine.clique ~num_procs:2

let contains_s hay needle =
  let n = String.length needle and h = String.length hay in
  let rec loop i = i + n <= h && (String.sub hay i n = needle || loop (i + 1)) in
  loop 0

(* --- Log-scale histogram --- *)

let test_log_histogram () =
  let h = Log_histogram.create () in
  check_int "empty count" 0 (Log_histogram.count h);
  check_raises_invalid "empty min" (fun () -> ignore (Log_histogram.min h));
  check_raises_invalid "empty quantile" (fun () ->
      ignore (Log_histogram.quantile h ~q:0.5));
  check_raises_invalid "bad gamma" (fun () ->
      ignore (Log_histogram.create ~gamma:1.0 ()));
  List.iter (fun x -> Log_histogram.observe h x) [ 1.0; 2.0; 4.0; 8.0; 100.0 ];
  check_int "count" 5 (Log_histogram.count h);
  check_float "sum" 115.0 (Log_histogram.sum h);
  check_float "min exact" 1.0 (Log_histogram.min h);
  check_float "max exact" 100.0 (Log_histogram.max h);
  check_float "mean" 23.0 (Log_histogram.mean h);
  (* default gamma = 2^(1/4): every quantile is within sqrt gamma - 1
     (~9.05%) relative error of the exact sample *)
  let within_bound exact approx =
    Float.abs (approx -. exact) /. exact <= sqrt (sqrt (sqrt 2.0)) -. 1.0 +. 1e-9
  in
  check_bool "p50 near 4" true (within_bound 4.0 (Log_histogram.p50 h));
  check_bool "p99 near max" true (within_bound 100.0 (Log_histogram.p99 h));
  check_bool "q=1 near max" true
    (within_bound 100.0 (Log_histogram.quantile h ~q:1.0));
  check_raises_invalid "q out of range" (fun () ->
      ignore (Log_histogram.quantile h ~q:1.5))

let test_log_histogram_zeros () =
  let h = Log_histogram.create () in
  Log_histogram.observe h 0.0;
  Log_histogram.observe h 0.0;
  Log_histogram.observe h 5.0;
  check_int "count includes zeros" 3 (Log_histogram.count h);
  check_float "p50 in the zero bucket" 0.0 (Log_histogram.quantile h ~q:0.5);
  check_float "min is zero" 0.0 (Log_histogram.min h)

let qsuite_histogram =
  [
    qtest ~count:100 "log-histogram quantiles stay within the gamma bound"
      QCheck.(list_of_size Gen.(int_range 1 200) (QCheck.float_range 1e-9 1e6))
      (fun samples ->
        let h = Log_histogram.create () in
        List.iter (Log_histogram.observe h) samples;
        let sorted = List.sort compare samples in
        let n = List.length sorted in
        List.for_all
          (fun q ->
            let exact =
              List.nth sorted
                (Stdlib.max 0
                   (int_of_float (Float.ceil (q *. float_of_int n)) - 1))
            in
            let approx = Log_histogram.quantile h ~q in
            (* bucket relative error sqrt gamma - 1 ~ 9.05%, plus
               clamping only ever moves toward the exact value *)
            Float.abs (approx -. exact) <= (0.091 *. exact) +. 1e-12)
          [ 0.5; 0.95; 0.99 ]);
  ]

(* --- Tracer --- *)

let fake_clock times =
  let remaining = ref times in
  fun () ->
    match !remaining with
    | [] -> Alcotest.fail "fake clock exhausted"
    | t :: rest ->
      remaining := rest;
      t

let test_trace_null_free () =
  let t = Trace.null in
  check_bool "disabled" false (Trace.enabled t);
  Trace.add_span t ~track:"x" ~name:"s" ~ts:0.0 ~dur:1.0;
  Trace.instant t ~track:"x" "i";
  Trace.counter t ~track:"x" ~name:"c" 1.0;
  check_int "records nothing" 0 (Trace.num_events t);
  check_float "now is 0" 0.0 (Trace.now t);
  check_int "with_span is just the thunk" 41 (Trace.with_span t ~track:"x" "s" (fun () -> 41))

let test_trace_records () =
  (* epoch read at create: 10; span brackets at 11 and 13.5 *)
  let t = Trace.create ~clock:(fake_clock [ 10.0; 11.0; 13.5 ]) () in
  check_bool "enabled" true (Trace.enabled t);
  let v = Trace.with_span t ~track:"work" "outer" (fun () -> 7) in
  check_int "value through span" 7 v;
  check_int "one event" 1 (Trace.num_events t);
  let jsonl = Trace.to_jsonl t in
  check_bool "span line" true (contains_s jsonl "\"type\":\"span\"");
  check_bool "relative ts" true (contains_s jsonl "\"ts\":1,");
  check_bool "duration" true (contains_s jsonl "\"dur\":2.5")

let test_trace_records_on_raise () =
  let t = Trace.create ~clock:(fake_clock [ 0.0; 1.0; 2.0 ]) () in
  (try Trace.with_span t ~track:"work" "failing" (fun () -> failwith "boom")
   with Failure _ -> ());
  check_int "span recorded despite raise" 1 (Trace.num_events t)

(* Golden test for the Chrome sink: the byte-level trace-event format is
   consumed by Perfetto, so it is a contract just like
   Chrome_trace.of_schedule's. *)
let obs_chrome_golden =
  "{\"traceEvents\": [\n\
   {\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"golden\"}},\n\
   {\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"phases\"}},\n\
   {\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"ready set\"}},\n\
   {\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"priority\",\"ts\":1.000,\"dur\":2.000,\"args\":{\"tasks\":8}},\n\
   {\"ph\":\"i\",\"pid\":0,\"tid\":0,\"name\":\"pick\",\"ts\":4.000,\"s\":\"t\"},\n\
   {\"ph\":\"C\",\"pid\":0,\"tid\":1,\"name\":\"ready\",\"ts\":4.000,\"args\":{\"value\":3}}\n\
   ]}\n"

let test_trace_chrome_golden () =
  let t = Trace.create ~clock:(fun () -> 0.0) () in
  Trace.add_span t ~track:"phases" ~name:"priority" ~ts:1e-6 ~dur:2e-6
    ~args:[ ("tasks", 8.0) ];
  Trace.instant t ~ts:4e-6 ~track:"phases" "pick";
  Trace.counter t ~ts:4e-6 ~track:"ready set" ~name:"ready" 3.0;
  Alcotest.(check string)
    "byte-identical emission" obs_chrome_golden
    (Trace.to_chrome_json ~name:"golden" t)

(* --- Metrics registry --- *)

let test_metrics_registry () =
  let reg = Obs_metrics.create () in
  let c = Obs_metrics.counter reg ~help:"a counter" "requests_total" in
  Obs_metrics.Counter.incr c;
  Obs_metrics.Counter.add c 4;
  check_int "counter value" 5 (Obs_metrics.Counter.value c);
  check_raises_invalid "negative increment" (fun () ->
      Obs_metrics.Counter.add c (-1));
  (* registration is idempotent by name: same metric comes back *)
  Obs_metrics.Counter.incr (Obs_metrics.counter reg "requests_total");
  check_int "shared series" 6 (Obs_metrics.Counter.value c);
  check_raises_invalid "kind clash" (fun () ->
      ignore (Obs_metrics.gauge reg "requests_total"));
  let g = Obs_metrics.gauge reg ~help:"a gauge" "queue depth" in
  Obs_metrics.Gauge.set g 2.5;
  Obs_metrics.Gauge.add g 0.5;
  let h = Obs_metrics.histogram reg "latency" in
  List.iter (Obs_metrics.Histogram.observe h) [ 1.0; 2.0; 4.0 ];
  let prom = Obs_metrics.to_prometheus reg in
  check_bool "counter line" true (contains_s prom "requests_total 6");
  check_bool "help line" true (contains_s prom "# HELP requests_total a counter");
  check_bool "type line" true (contains_s prom "# TYPE requests_total counter");
  check_bool "gauge sanitized" true (contains_s prom "queue_depth 3");
  check_bool "summary type" true (contains_s prom "# TYPE latency summary");
  check_bool "p50 quantile" true (contains_s prom "latency{quantile=\"0.5\"}");
  check_bool "summary count" true (contains_s prom "latency_count 3");
  check_bool "summary sum" true (contains_s prom "latency_sum 7");
  let json = Obs_metrics.to_json reg in
  check_bool "json counter" true (contains_s json "\"requests_total\":6");
  check_bool "json histogram count" true (contains_s json "\"count\":3")

let test_metrics_multidomain () =
  (* the registry is shared by the service's connection threads and
     worker domains: concurrent increments must lose no counts, and
     concurrent registration must stay idempotent *)
  let reg = Obs_metrics.create () in
  let c = Obs_metrics.counter reg "shared_total" in
  let g = Obs_metrics.gauge reg "shared_gauge" in
  let h = Obs_metrics.histogram reg "shared_latency" in
  let per_domain = 25_000 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs_metrics.Counter.incr c;
              Obs_metrics.Gauge.add g 1.0;
              if i mod 100 = 0 then begin
                Obs_metrics.Histogram.observe h (float_of_int i);
                (* same-name registration from racing domains returns the
                   shared series rather than corrupting the index *)
                Obs_metrics.Counter.incr (Obs_metrics.counter reg "shared_total");
                ignore (Obs_metrics.counter reg (Printf.sprintf "domain_%d_total" d))
              end
            done))
  in
  List.iter Domain.join domains;
  check_int "no lost counter increments"
    ((4 * per_domain) + (4 * (per_domain / 100)))
    (Obs_metrics.Counter.value c);
  check_float "no lost gauge adds"
    (float_of_int (4 * per_domain))
    (Obs_metrics.Gauge.value g);
  check_int "no lost histogram observations"
    (4 * (per_domain / 100))
    (Obs_metrics.Histogram.count h);
  (* exposition still renders every concurrently registered series *)
  let prom = Obs_metrics.to_prometheus reg in
  for d = 0 to 3 do
    check_bool
      (Printf.sprintf "domain_%d series present" d)
      true
      (contains_s prom (Printf.sprintf "domain_%d_total" d))
  done

let test_metrics_sanitize () =
  Alcotest.(check string) "dashes fold" "dsc_llb" (Obs_metrics.sanitize "DSC-LLB");
  Alcotest.(check string) "colon kept" "a:b_c" (Obs_metrics.sanitize "a:b c")

let test_metrics_escaping () =
  Alcotest.(check string) "digit-led name prefixed" "_42x42"
    (Obs_metrics.sanitize "42x42");
  Alcotest.(check string) "empty name survives" "_" (Obs_metrics.sanitize "");
  Alcotest.(check string) "help escapes backslash and newline" "a\\\\b\\nc"
    (Obs_metrics.escape_help "a\\b\nc");
  Alcotest.(check string) "label value escapes quotes too" "say \\\"hi\\\"\\n\\\\"
    (Obs_metrics.escape_label_value "say \"hi\"\n\\");
  (* a hostile help string cannot break the exposition into extra lines *)
  let reg = Obs_metrics.create () in
  ignore
    (Obs_metrics.counter reg ~help:"first\nsecond \"quoted\"" "bad name\"42");
  let prom = Obs_metrics.to_prometheus reg in
  check_bool "name sanitized in exposition" true (contains_s prom "bad_name_42");
  check_bool "raw newline neutralized" false (contains_s prom "\nsecond");
  check_bool "escaped newline kept" true (contains_s prom "first\\nsecond")

let test_metrics_empty_histogram () =
  let reg = Obs_metrics.create () in
  ignore (Obs_metrics.histogram reg "empty");
  let prom = Obs_metrics.to_prometheus reg in
  (* no quantile lines for an empty summary, but sum/count still there *)
  check_bool "no quantile line" false (contains_s prom "quantile");
  check_bool "count 0" true (contains_s prom "empty_count 0");
  check_bool "json degrades" true
    (contains_s (Obs_metrics.to_json reg) "{\"count\":0")

(* --- Trace context --- *)

module Ctx = Flb_obs.Trace_context
module Flight = Flb_obs.Flight_recorder

let test_trace_context_ids () =
  let a = Ctx.mint () and b = Ctx.mint () in
  check_bool "minted ids nonzero" true (a <> 0L && b <> 0L);
  check_bool "minted ids distinct" true (a <> b);
  let hex = Ctx.id_to_string a in
  check_int "16 hex digits" 16 (String.length hex);
  check_bool "hex round trip" true (Ctx.id_of_string hex = Some a);
  check_bool "rejects non-hex" true (Ctx.id_of_string "not-a-trace-id!!" = None);
  check_bool "rejects short" true (Ctx.id_of_string "abc" = None);
  Alcotest.(check string) "zero-padded" "00000000000000ff"
    (Ctx.id_to_string 0xffL)

let test_trace_context_track () =
  let tracer = Trace.create ~clock:(fake_clock [ 0.0; 1.0; 2.0 ]) () in
  let ctx = Ctx.create ~id:0xabcdL tracer in
  check_bool "explicit id kept" true (Ctx.id ctx = 0xabcdL);
  Alcotest.(check string) "track from id" "req-000000000000abcd" (Ctx.track ctx);
  check_int "with_span emits on the track" 5
    (Ctx.with_span ctx "stage" (fun () -> 5));
  let jsonl = Trace.to_jsonl tracer in
  check_bool "span on request track" true
    (contains_s jsonl "\"track\":\"req-000000000000abcd\"");
  (* a zero id is replaced by a minted one *)
  check_bool "zero id minted" true (Ctx.id (Ctx.create ~id:0L tracer) <> 0L)

(* --- Flight recorder --- *)

let test_flight_recorder_ring () =
  check_raises_invalid "capacity 0" (fun () ->
      ignore (Flight.create ~capacity:0 ~domains:1 ()));
  check_raises_invalid "domains 0" (fun () ->
      ignore (Flight.create ~capacity:4 ~domains:0 ()));
  let fr = Flight.create ~capacity:4 ~domains:2 () in
  check_int "capacity" 4 (Flight.capacity fr);
  check_int "domains" 2 (Flight.domains fr);
  (* six task events on a ring of four: the two oldest are overwritten *)
  for i = 0 to 5 do
    Flight.record fr ~domain:0 Flight.Task ~ts:(float_of_int i) ~dur:1.0 ~a:i
      ~b:(-1.0)
  done;
  Flight.record fr ~domain:1 Flight.Killed ~ts:9.0 ~dur:0.0 ~a:0 ~b:0.0;
  check_int "recorded counts overwrites" 6 (Flight.recorded fr ~domain:0);
  check_int "stored bounded by capacity" 4 (Flight.stored fr ~domain:0);
  check_int "other ring untouched" 1 (Flight.stored fr ~domain:1);
  let seen = ref [] in
  Flight.iter fr (fun ~domain kind ~ts:_ ~dur:_ ~a ~b:_ ->
      seen := (domain, kind, a) :: !seen);
  (match List.rev !seen with
  | (0, Flight.Task, 2) :: _ as all ->
    check_int "4 + 1 events survive" 5 (List.length all)
  | (d, _, a) :: _ -> Alcotest.failf "oldest survivor was task %d on D%d" a d
  | [] -> Alcotest.fail "iter saw nothing")

let test_flight_recorder_jsonl () =
  let fr = Flight.create ~capacity:8 ~domains:2 () in
  Flight.record fr ~domain:0 Flight.Task ~ts:1.0 ~dur:2.0 ~a:3 ~b:(-1.0);
  Flight.record fr ~domain:0 Flight.Steal ~ts:3.5 ~dur:0.0 ~a:4 ~b:1.0;
  Flight.record fr ~domain:1 Flight.Killed ~ts:4.0 ~dur:0.0 ~a:0 ~b:0.0;
  let jsonl = Flight.to_jsonl ~meta:[ ("engine", "steal") ] fr in
  check_bool "meta line" true
    (contains_s jsonl "{\"type\":\"meta\",\"engine\":\"steal\"}");
  check_bool "task span" true
    (contains_s jsonl
       "{\"type\":\"span\",\"track\":\"D0\",\"name\":\"task 3\",\"ts\":1,\"dur\":2}");
  check_bool "steal instant names its victim" true
    (contains_s jsonl "\"name\":\"steal\",\"ts\":3.5,\"task\":4,\"victim\":1");
  check_bool "killed instant" true
    (contains_s jsonl "{\"type\":\"instant\",\"track\":\"D1\",\"name\":\"killed\",\"ts\":4}");
  (* no meta argument, no meta line *)
  check_bool "meta omitted" false (contains_s (Flight.to_jsonl fr) "meta")

(* --- Probe --- *)

let test_probe_null () =
  let p = Probe.null in
  check_bool "not live" false (Probe.is_live p);
  Probe.iteration p;
  Probe.task_queue_op p;
  Probe.ready_added p;
  Probe.phase_begin p Probe.Phase.Priority;
  Probe.phase_end p Probe.Phase.Priority;
  let r = Probe.report p in
  check_int "no iterations" 0 r.Probe.iterations;
  check_int "no ops" 0 r.Probe.task_queue_ops;
  check_bool "no phases" true (r.Probe.phases = [])

let test_probe_counting () =
  let p = Probe.create ~timed:false "test" in
  Probe.ready_added p;
  Probe.ready_added p;
  Probe.ready_added p;
  Probe.ready_removed p;
  Probe.ready_added p;
  Probe.iteration p;
  Probe.task_queue_ops p 2;
  Probe.proc_queue_op p;
  Probe.demotion p;
  let r = Probe.report p in
  check_int "iterations" 1 r.Probe.iterations;
  check_int "task ops" 2 r.Probe.task_queue_ops;
  check_int "proc ops" 1 r.Probe.proc_queue_ops;
  check_int "demotions" 1 r.Probe.demotions;
  check_int "peak tracks the high-water mark" 3 r.Probe.peak_ready;
  check_bool "untimed probe records no phases" true (r.Probe.phases = []);
  check_float "untimed probe records no wall time" 0.0 r.Probe.wall_seconds;
  let text = Probe.render r in
  check_bool "render names the probe" true (contains_s text "test");
  check_bool "render shows peak" true (contains_s text "peak ready      3")

let test_probe_timed_phases () =
  (* clock: run start 0; priority 1..3; selection 3..4; run end 10 *)
  let p =
    Probe.create ~clock:(fake_clock [ 0.0; 1.0; 3.0; 3.0; 4.0; 10.0 ]) ~timed:true
      "timed"
  in
  Probe.start_run p;
  Probe.phase_begin p Probe.Phase.Priority;
  Probe.phase_end p Probe.Phase.Priority;
  Probe.phase_begin p Probe.Phase.Selection;
  Probe.phase_end p Probe.Phase.Selection;
  Probe.finish_run p;
  let r = Probe.report p in
  check_float "wall time" 10.0 r.Probe.wall_seconds;
  (match r.Probe.phases with
  | [ a; b ] ->
    check_bool "priority first" true (a.Probe.phase = Probe.Phase.Priority);
    check_int "priority calls" 1 a.Probe.calls;
    check_float "priority seconds" 2.0 a.Probe.seconds;
    check_bool "selection second" true (b.Probe.phase = Probe.Phase.Selection);
    check_float "selection seconds" 1.0 b.Probe.seconds
  | phases -> Alcotest.failf "expected 2 phases, got %d" (List.length phases));
  let reg = Obs_metrics.create () in
  Probe.to_metrics reg r;
  let prom = Obs_metrics.to_prometheus reg in
  check_bool "exports phase counters" true
    (contains_s prom "timed_phase_priority_calls_total 1");
  check_bool "exports wall gauge" true (contains_s prom "timed_wall_seconds 10")

let test_probe_traced () =
  let t = Trace.create ~clock:(fake_clock [ 0.0; 1.0; 3.0 ]) () in
  let p = Probe.create ~tracer:t "traced" in
  (* an enabled tracer implies timing and shares its clock *)
  Probe.phase_begin p Probe.Phase.Queue;
  Probe.phase_end p Probe.Phase.Queue;
  check_int "phase emitted one span" 1 (Trace.num_events t);
  let jsonl = Trace.to_jsonl t in
  check_bool "span on the phase's row" true
    (contains_s jsonl "\"track\":\"queue maintenance\"")

(* --- every scheduler reports through the same probe --- *)

let probed_algorithms () =
  List.filter_map
    (fun name -> Flb_experiments.Registry.find name)
    [ "FLB"; "ETF"; "MCP"; "FCP"; "HLFET"; "DLS"; "ISH" ]

let test_schedulers_report () =
  let g = Example.fig1 () in
  let m = machine2 () in
  let algos = probed_algorithms () in
  check_int "all seven registered" 7 (List.length algos);
  List.iter
    (fun (a : Flb_experiments.Registry.t) ->
      let s, r = Flb_experiments.Registry.run_with_report a g m in
      check_bool (a.name ^ " schedule valid") true (Schedule.validate s = Ok ());
      check_float
        (a.name ^ " same makespan as the unprobed run")
        (Schedule.makespan (a.run g m))
        (Schedule.makespan s);
      check_int (a.name ^ " one iteration per task") 8 r.Probe.iterations;
      check_bool (a.name ^ " counts queue work") true (r.Probe.task_queue_ops > 0);
      check_bool (a.name ^ " bounded ready set") true
        (r.Probe.peak_ready >= 1 && r.Probe.peak_ready <= 8);
      check_bool (a.name ^ " saw the priority phase") true
        (List.exists
           (fun ph -> ph.Probe.phase = Probe.Phase.Priority)
           r.Probe.phases))
    algos

let test_probe_does_not_change_schedules () =
  (* the probe is observation only: probed and unprobed runs place every
     task identically, for every instrumented scheduler *)
  let p = { layers = 5; max_width = 4; edge_probability = 0.5; ccr = 2.0; seed = 7 } in
  let g = build_dag p in
  let m = Machine.clique ~num_procs:3 in
  List.iter
    (fun (a : Flb_experiments.Registry.t) ->
      let s = a.run g m in
      let s', _ = Flb_experiments.Registry.run_with_report a g m in
      for t = 0 to Taskgraph.num_tasks g - 1 do
        check_int (a.name ^ " same proc") (Schedule.proc s t) (Schedule.proc s' t)
      done)
    (probed_algorithms ())

let qsuite_probe =
  [
    qtest ~count:75 "probed list schedulers count O(V) task-queue work"
      arb_scheduling_case (fun (p, procs) ->
        let g = build_dag p in
        let v = Taskgraph.num_tasks g in
        let m = Machine.clique ~num_procs:procs in
        List.for_all
          (fun name ->
            match Flb_experiments.Registry.find name with
            | None -> false
            | Some a ->
              let _, r =
                Flb_experiments.Registry.run_with_report ~timed:false a g m
              in
              (* each task enters and leaves the ready structure once
                 (FLB also pays for demotions: <= 7 ops per task) *)
              r.Probe.iterations = v
              && r.Probe.task_queue_ops <= 7 * v
              && r.Probe.peak_ready <= Width.exact g)
          [ "FLB"; "ETF"; "MCP"; "FCP"; "HLFET" ]);
  ]

(* --- simulator telemetry --- *)

let test_simulator_telemetry () =
  let g = Example.fig1 () in
  let s = Flb_core.Flb.run g (machine2 ()) in
  let tracer = Trace.create ~clock:(fun () -> 0.0) () in
  let reg = Obs_metrics.create () in
  (match Flb_sim.Simulator.run ~tracer ~metrics:reg s with
  | Error _ -> Alcotest.fail "replay failed"
  | Ok o ->
    let prom = Obs_metrics.to_prometheus reg in
    check_bool "messages counter matches outcome" true
      (contains_s prom (Printf.sprintf "sim_messages_total %d" o.messages));
    check_bool "makespan gauge" true
      (contains_s prom (Printf.sprintf "sim_makespan %g" o.makespan));
    check_bool "latency summary observed" true
      (contains_s prom (Printf.sprintf "sim_message_latency_count %d" o.messages)));
  let jsonl = Trace.to_jsonl tracer in
  (* 8 task spans on the processor rows plus one instant per message *)
  check_bool "task spans on P0" true (contains_s jsonl "\"track\":\"P0\"");
  check_bool "task spans on P1" true (contains_s jsonl "\"track\":\"P1\"");
  check_bool "task names" true (contains_s jsonl "\"name\":\"task 7\"");
  check_bool "send events carry latency" true (contains_s jsonl "\"latency\":")

let test_simulator_port_contention_events () =
  (* a root fanning out to three remote successors through one send port
     must serialize: two sends wait, and the telemetry shows it *)
  let g =
    Taskgraph.of_arrays
      ~comp:[| 1.0; 1.0; 1.0; 1.0 |]
      ~edges:[| (0, 1, 2.0); (0, 2, 2.0); (0, 3, 2.0) |]
  in
  let m = Machine.clique ~num_procs:4 in
  let s = Schedule.create g m in
  Schedule.assign s 0 ~proc:0 ~start:0.0;
  Schedule.assign s 1 ~proc:1 ~start:3.0;
  Schedule.assign s 2 ~proc:2 ~start:3.0;
  Schedule.assign s 3 ~proc:3 ~start:3.0;
  let tracer = Trace.create ~clock:(fun () -> 0.0) () in
  let reg = Obs_metrics.create () in
  match Flb_sim.Simulator.run ~send_ports:1 ~tracer ~metrics:reg s with
  | Error _ -> Alcotest.fail "replay failed"
  | Ok _ ->
    let prom = Obs_metrics.to_prometheus reg in
    check_bool "two sends waited" true (contains_s prom "sim_port_waits_total 2");
    check_bool "wait histogram filled" true (contains_s prom "sim_port_wait_count 2");
    check_bool "trace has port wait instants" true
      (contains_s (Trace.to_jsonl tracer) "\"name\":\"port wait\"")

(* Metrics hygiene: both dynamic engines must expose the steal-failure
   counter and the locality series, so dashboards can rely on the names
   regardless of which engine a deployment runs. *)
let test_runtime_engine_metric_names () =
  let module R = Flb_runtime in
  let g = Example.fig1 () in
  let sched =
    Flb_experiments.Registry.flb.Flb_experiments.Registry.run g (machine2 ())
  in
  let run_with engine =
    let reg = Obs_metrics.create () in
    let config =
      {
        R.Engine.default_config with
        domains = 2;
        unit_ns = 2000.0;
        metrics = Some reg;
      }
    in
    (match engine with
    | `Steal -> ignore (R.Steal.run ~config g)
    | `Affinity -> ignore (R.Affinity.run ~config sched));
    Obs_metrics.to_prometheus reg
  in
  List.iter
    (fun (name, engine) ->
      let prom = run_with engine in
      List.iter
        (fun series ->
          check_bool (name ^ " exposes " ^ series) true (contains_s prom series))
        [
          "rt_steal_fail_total";
          "rt_affinity_hint_hits";
          "rt_affinity_hint_misses";
          "rt_affinity_hint_rate";
        ])
    [ ("steal", `Steal); ("affinity", `Affinity) ]

let suite =
  [
    Alcotest.test_case "log histogram" `Quick test_log_histogram;
    Alcotest.test_case "log histogram zeros" `Quick test_log_histogram_zeros;
    Alcotest.test_case "trace: null is free" `Quick test_trace_null_free;
    Alcotest.test_case "trace: records spans" `Quick test_trace_records;
    Alcotest.test_case "trace: span survives raise" `Quick test_trace_records_on_raise;
    Alcotest.test_case "trace: chrome golden" `Quick test_trace_chrome_golden;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "metrics survive concurrent domains" `Quick
      test_metrics_multidomain;
    Alcotest.test_case "metrics name sanitizing" `Quick test_metrics_sanitize;
    Alcotest.test_case "metrics escaping" `Quick test_metrics_escaping;
    Alcotest.test_case "metrics empty histogram" `Quick test_metrics_empty_histogram;
    Alcotest.test_case "trace context: ids" `Quick test_trace_context_ids;
    Alcotest.test_case "trace context: request track" `Quick
      test_trace_context_track;
    Alcotest.test_case "flight recorder: ring wraps" `Quick
      test_flight_recorder_ring;
    Alcotest.test_case "flight recorder: jsonl schema" `Quick
      test_flight_recorder_jsonl;
    Alcotest.test_case "probe: null is inert" `Quick test_probe_null;
    Alcotest.test_case "probe: counting" `Quick test_probe_counting;
    Alcotest.test_case "probe: timed phases" `Quick test_probe_timed_phases;
    Alcotest.test_case "probe: traced phases" `Quick test_probe_traced;
    Alcotest.test_case "schedulers share the probe schema" `Quick
      test_schedulers_report;
    Alcotest.test_case "probe never changes schedules" `Quick
      test_probe_does_not_change_schedules;
    Alcotest.test_case "simulator telemetry" `Quick test_simulator_telemetry;
    Alcotest.test_case "runtime engines expose the locality metric names" `Quick
      test_runtime_engine_metric_names;
    Alcotest.test_case "simulator port contention events" `Quick
      test_simulator_port_contention_events;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      (qsuite_histogram @ qsuite_probe)
