(* lib/reschedule: snapshots of partially executed runs and their
   completion by any registered list scheduler. The anchor property is
   the identity: rescheduling from an empty snapshot (no history, no
   dead processors, no ready floors) reproduces the from-scratch
   scheduler bit for bit — so the fault path and the healthy path are
   the same code, not a parallel implementation that can drift. *)

open! Flb_taskgraph
open! Flb_platform
open Testutil
module RS = Flb_reschedule
module R = Flb_runtime
module E = Flb_experiments

let bits = Int64.bits_of_float

let frozen task proc start finish = { RS.Snapshot.task; proc; start; finish }

(* --- Snapshot validation --- *)

let test_snapshot_validation () =
  let g = Example.fig1 () in
  let m = Machine.clique ~num_procs:2 in
  ignore (RS.Snapshot.make g m);
  check_raises_invalid "dead proc out of range" (fun () ->
      RS.Snapshot.make ~dead:[ 5 ] g m);
  check_raises_invalid "every proc dead" (fun () ->
      RS.Snapshot.make ~dead:[ 0; 1 ] g m);
  check_raises_invalid "ready proc out of range" (fun () ->
      RS.Snapshot.make ~ready:[ (7, 1.0) ] g m);
  check_raises_invalid "negative ready floor" (fun () ->
      RS.Snapshot.make ~ready:[ (0, -1.0) ] g m);
  check_raises_invalid "non-finite ready floor" (fun () ->
      RS.Snapshot.make ~ready:[ (0, Float.nan) ] g m);
  check_raises_invalid "frozen task out of range" (fun () ->
      RS.Snapshot.make ~frozen:[ frozen 99 0 0.0 2.0 ] g m);
  check_raises_invalid "frozen proc out of range" (fun () ->
      RS.Snapshot.make ~frozen:[ frozen 0 9 0.0 2.0 ] g m);
  check_raises_invalid "finish before start" (fun () ->
      RS.Snapshot.make ~frozen:[ frozen 0 0 3.0 2.0 ] g m);
  check_raises_invalid "negative start" (fun () ->
      RS.Snapshot.make ~frozen:[ frozen 0 0 (-1.0) 2.0 ] g m);
  check_raises_invalid "task frozen twice" (fun () ->
      RS.Snapshot.make ~frozen:[ frozen 0 0 0.0 2.0; frozen 0 1 0.0 2.0 ] g m);
  check_raises_invalid "prefix not closed under preds" (fun () ->
      (* t3's predecessor t0 is not frozen. *)
      RS.Snapshot.make ~frozen:[ frozen 3 0 2.0 5.0 ] g m);
  (* A frozen task on a dead processor is legitimate history. *)
  let s = RS.Snapshot.make ~dead:[ 1 ] ~frozen:[ frozen 0 1 0.0 2.0 ] g m in
  check_int "one task frozen" 7 (RS.Snapshot.frontier_size s)

(* --- Frontier extraction --- *)

let test_frontier () =
  let g = Example.fig1 () in
  let m = Machine.clique ~num_procs:2 in
  let empty = RS.Snapshot.make g m in
  check_int "empty snapshot: everything is frontier" 8
    (RS.Snapshot.frontier_size empty);
  let s =
    RS.Snapshot.make
      ~frozen:[ frozen 0 0 0.0 2.0; frozen 1 1 3.0 5.0; frozen 3 0 2.0 5.0 ]
      g m
  in
  check_int "frontier size excludes the prefix" 5 (RS.Snapshot.frontier_size s);
  let sub, old_of_new, new_of_old = RS.Snapshot.frontier s in
  check_int "sub-DAG covers the frontier" 5 (Taskgraph.num_tasks sub);
  check_int "frozen tasks have no image" (-1) new_of_old.(0);
  Array.iteri
    (fun nt ot ->
      check_int "index maps are inverse" nt new_of_old.(ot);
      check_float "weights carried over" (Taskgraph.comp g ot)
        (Taskgraph.comp sub nt))
    old_of_new

(* --- Seeding --- *)

let test_seed () =
  let g = Example.fig1 () in
  let m = Machine.clique ~num_procs:2 in
  let s =
    RS.Snapshot.make ~dead:[ 1 ]
      ~ready:[ (0, 6.0) ]
      ~frozen:[ frozen 0 0 0.0 2.0; frozen 1 1 3.0 5.0 ]
      g m
  in
  let sched = RS.Snapshot.seed s in
  check_bool "dead proc masked" false (Schedule.proc_alive sched 1);
  check_int "one proc left" 1 (Schedule.num_alive sched);
  check_bool "prefix pinned frozen" true
    (Schedule.is_frozen sched 0 && Schedule.is_frozen sched 1);
  check_float "frozen times preserved" 5.0 (Schedule.finish_time sched 1);
  check_float "live prt floored" 6.0 (Schedule.prt sched 0);
  check_int "only the prefix is scheduled" 2 (Schedule.num_scheduled sched);
  check_bool "frontier entries are ready" true
    (List.sort compare (Schedule.ready_tasks sched) = [ 2; 3; 4 ])

(* --- Rescheduling around a dead processor --- *)

let test_resched_masked_proc () =
  let g = Example.fig1 () in
  let m = Machine.clique ~num_procs:2 in
  let s =
    RS.Snapshot.make ~dead:[ 1 ]
      ~ready:[ (0, 5.0) ]
      ~frozen:[ frozen 0 0 0.0 2.0; frozen 1 1 3.0 5.0 ]
      g m
  in
  let sched = RS.Reschedule.run s in
  check_bool "complete" true (Schedule.is_complete sched);
  (match Schedule.validate sched with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
  for t = 0 to Taskgraph.num_tasks g - 1 do
    if not (Schedule.is_frozen sched t) then
      check_int "new work only on the survivor" 0 (Schedule.proc sched t)
  done;
  check_bool "makespan finite" true (Float.is_finite (Schedule.makespan sched));
  check_raises_invalid "unknown algorithm" (fun () ->
      RS.Reschedule.run ~algo:"DSC-LLB" s)

(* --- The empty-snapshot identity, every resumable scheduler --- *)

let prop_empty_snapshot_reproduces (p, procs) =
  let g = build_dag p in
  let m = Machine.clique ~num_procs:procs in
  List.iter
    (fun entry ->
      let reg =
        match E.Registry.find entry.RS.Reschedule.name with
        | Some r -> r
        | None ->
          QCheck.Test.fail_reportf "%s not in the registry"
            entry.RS.Reschedule.name
      in
      let fresh = reg.E.Registry.run g m in
      let resumed = RS.Reschedule.run ~algo:entry.RS.Reschedule.name
          (RS.Snapshot.make g m)
      in
      for t = 0 to Taskgraph.num_tasks g - 1 do
        if
          Schedule.proc fresh t <> Schedule.proc resumed t
          || bits (Schedule.start_time fresh t)
             <> bits (Schedule.start_time resumed t)
          || bits (Schedule.finish_time fresh t)
             <> bits (Schedule.finish_time resumed t)
        then
          QCheck.Test.fail_reportf
            "%s diverges on task %d: fresh p%d [%h,%h], resumed p%d [%h,%h]"
            entry.RS.Reschedule.name t (Schedule.proc fresh t)
            (Schedule.start_time fresh t)
            (Schedule.finish_time fresh t)
            (Schedule.proc resumed t)
            (Schedule.start_time resumed t)
            (Schedule.finish_time resumed t)
      done;
      if bits (Schedule.makespan fresh) <> bits (Schedule.makespan resumed) then
        QCheck.Test.fail_reportf "%s makespan drifts: %h vs %h"
          entry.RS.Reschedule.name (Schedule.makespan fresh)
          (Schedule.makespan resumed))
    RS.Reschedule.entries;
  true

(* Partial-history soundness: freeze a random prefix of FLB's own
   schedule, floor the survivors at the fault time, and the completed
   schedule must still validate and cover everything. *)
let prop_partial_history_valid (p, procs) =
  let g = build_dag p in
  let n = Taskgraph.num_tasks g in
  let m = Machine.clique ~num_procs:procs in
  let base = E.Registry.flb.E.Registry.run g m in
  let cut = Schedule.makespan base /. 2.0 in
  let frozen_tasks =
    List.filter (fun t -> Schedule.finish_time base t <= cut)
      (List.init n Fun.id)
  in
  let fr =
    List.map
      (fun t ->
        frozen t (Schedule.proc base t) (Schedule.start_time base t)
          (Schedule.finish_time base t))
      frozen_tasks
  in
  let dead = if procs > 1 then [ procs - 1 ] else [] in
  let ready =
    List.filteri (fun p _ -> p < procs - 1 || procs = 1)
      (List.init procs (fun p -> (p, cut)))
  in
  let s = RS.Snapshot.make ~dead ~ready ~frozen:fr g m in
  check_int "frontier + prefix = all" n
    (RS.Snapshot.frontier_size s + List.length frozen_tasks);
  let sched = RS.Reschedule.run s in
  if not (Schedule.is_complete sched) then
    QCheck.Test.fail_report "reschedule left tasks unscheduled";
  (match Schedule.validate sched with
  | Ok () -> ()
  | Error es ->
    QCheck.Test.fail_reportf "invalid reschedule: %s" (String.concat "; " es));
  List.iter
    (fun t ->
      if bits (Schedule.finish_time sched t) <> bits (Schedule.finish_time base t)
      then QCheck.Test.fail_reportf "frozen task %d moved" t)
    frozen_tasks;
  true

(* --- Virtual faulty execution: exactness and recovery --- *)

let test_virtual_resched_fig1 () =
  let g = Example.fig1 () in
  let m = Machine.clique ~num_procs:2 in
  let sched = E.Registry.flb.E.Registry.run g m in
  let faults = Result.get_ok (R.Fault.parse "kill:1:0") in
  let o =
    R.Virtual_clock.run_static_faulty ~faults
      ~recover:(R.Engine.Resched "FLB") sched
  in
  check_bool "complete despite the kill" true (R.Virtual_clock.faulty_complete o);
  check_int "all eight ran" 8 o.R.Virtual_clock.completed;
  check_int "one domain died" 1 o.R.Virtual_clock.killed;
  check_int "one reschedule" 1 o.R.Virtual_clock.rescheds;
  check_float "rescheduled makespan" 19.0 o.R.Virtual_clock.makespan;
  check_int "the victim ran nothing" 0 o.R.Virtual_clock.per_domain_tasks.(1);
  let abandoned =
    R.Virtual_clock.run_static_faulty ~faults ~recover:R.Engine.No_recovery
      sched
  in
  check_bool "no recovery loses the cone" false
    (R.Virtual_clock.faulty_complete abandoned);
  check_bool "but terminates with partial progress" true
    (abandoned.R.Virtual_clock.completed > 0
    && abandoned.R.Virtual_clock.completed < 8)

let prop_faulty_static_no_faults_is_exact (p, procs) =
  let g = build_dag p in
  let m = Machine.clique ~num_procs:procs in
  List.iter
    (fun algo ->
      let sched = algo.E.Registry.run g m in
      let exact = R.Virtual_clock.run_static sched in
      List.iter
        (fun recover ->
          let faulty = R.Virtual_clock.run_static_faulty ~recover sched in
          if not (R.Virtual_clock.faulty_complete faulty) then
            QCheck.Test.fail_reportf "%s: incomplete without faults"
              algo.E.Registry.name;
          for t = 0 to Taskgraph.num_tasks g - 1 do
            if
              bits exact.R.Virtual_clock.start.(t)
              <> bits faulty.R.Virtual_clock.start.(t)
              || bits exact.R.Virtual_clock.finish.(t)
                 <> bits faulty.R.Virtual_clock.finish.(t)
            then
              QCheck.Test.fail_reportf
                "%s task %d: exact [%h,%h] vs faulty [%h,%h]"
                algo.E.Registry.name t exact.R.Virtual_clock.start.(t)
                exact.R.Virtual_clock.finish.(t)
                faulty.R.Virtual_clock.start.(t)
                faulty.R.Virtual_clock.finish.(t)
          done)
        [ R.Engine.No_recovery; R.Engine.Steal_queues; R.Engine.Resched "FLB" ])
    E.Registry.extended_set;
  true

let prop_faulty_steal_no_faults_is_exact (p, procs) =
  let g = build_dag p in
  let exact = R.Virtual_clock.run_steal ~domains:procs g in
  let faulty = R.Virtual_clock.run_steal_faulty ~domains:procs g in
  if not (R.Virtual_clock.faulty_complete faulty) then
    QCheck.Test.fail_report "incomplete without faults";
  if faulty.R.Virtual_clock.steals <> exact.R.Virtual_clock.steals then
    QCheck.Test.fail_reportf "steal counts differ: %d vs %d"
      exact.R.Virtual_clock.steals faulty.R.Virtual_clock.steals;
  for t = 0 to Taskgraph.num_tasks g - 1 do
    if
      bits exact.R.Virtual_clock.start.(t)
      <> bits faulty.R.Virtual_clock.start.(t)
      || bits exact.R.Virtual_clock.finish.(t)
         <> bits faulty.R.Virtual_clock.finish.(t)
    then
      QCheck.Test.fail_reportf "task %d: exact [%h,%h] vs faulty [%h,%h]" t
        exact.R.Virtual_clock.start.(t)
        exact.R.Virtual_clock.finish.(t)
        faulty.R.Virtual_clock.start.(t)
        faulty.R.Virtual_clock.finish.(t)
  done;
  true

let suite =
  [
    Alcotest.test_case "snapshot: validation rejects bad inputs" `Quick
      test_snapshot_validation;
    Alcotest.test_case "snapshot: frontier extraction" `Quick test_frontier;
    Alcotest.test_case "snapshot: seeding pins history and masks" `Quick
      test_seed;
    Alcotest.test_case "reschedule completes around a dead proc" `Quick
      test_resched_masked_proc;
    Alcotest.test_case "virtual resched recovers fig1 kill (makespan 19)"
      `Quick test_virtual_resched_fig1;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [
        qtest ~count:40 "empty snapshot = from-scratch run, every scheduler"
          arb_scheduling_case prop_empty_snapshot_reproduces;
        qtest ~count:60 "partial history: reschedule valid and prefix pinned"
          arb_scheduling_case prop_partial_history_valid;
        qtest ~count:25 "faulty static, no faults = exact (every policy)"
          arb_scheduling_case prop_faulty_static_no_faults_is_exact;
        qtest ~count:60 "faulty steal, no faults = exact" arb_scheduling_case
          prop_faulty_steal_no_faults_is_exact;
      ]
