(* The scheduling service: wire codecs, LRU cache, domain pool, and the
   TCP server's happy path, failure injection and admission control. *)

open! Flb_taskgraph
open! Flb_platform
open Testutil
module Wire = Flb_service.Wire
module Cache = Flb_service.Cache
module Pool = Flb_service.Pool
module Server = Flb_service.Server
module Client = Flb_service.Client

(* --- wire codec round trips (qcheck) --- *)

let gen_bytes =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 300))

let gen_float =
  QCheck.Gen.(
    frequency
      [
        (8, float);
        (1, oneofl [ 0.0; -0.0; 1e-300; 1e300; infinity; neg_infinity; nan ]);
      ])

let gen_peer_status =
  QCheck.Gen.oneofl [ Wire.Peer_up; Wire.Peer_draining; Wire.Peer_down ]

let gen_digest =
  QCheck.Gen.(
    map3
      (fun entries splits splits_epoch -> { Wire.entries; splits; splits_epoch })
      (list_size (int_range 0 8)
         (map3
            (fun backend status epoch -> { Wire.backend; status; epoch })
            gen_bytes gen_peer_status (int_range 0 1000)))
      (list_size (int_range 0 8) gen_bytes)
      (int_range 0 1000))

let gen_request =
  QCheck.Gen.(
    frequency
      [
        ( 5,
          map3
            (fun graph algo procs -> Wire.Schedule { graph; algo; procs })
            gen_bytes gen_bytes (int_range 0 1000) );
        (1, return Wire.Get_metrics);
        (1, return (Wire.Get_stats Wire.Stats_prometheus));
        (1, return (Wire.Get_stats Wire.Stats_json));
        (1, return Wire.Get_load);
        (1, return Wire.Ping);
        (1, return Wire.Shutdown);
        ( 2,
          map3
            (fun algo procs batch_tasks -> Wire.Open_stream { algo; procs; batch_tasks })
            gen_bytes (int_range 0 1000) (int_range 0 1000) );
        ( 2,
          map2
            (fun stream comps -> Wire.Add_tasks { stream; comps = Array.of_list comps })
            (int_range 0 10000)
            (list_size (int_range 0 30) gen_float) );
        ( 2,
          map2
            (fun stream edges -> Wire.Add_edges { stream; edges = Array.of_list edges })
            (int_range 0 10000)
            (list_size (int_range 0 30)
               (triple (int_range 0 1000) (int_range 0 1000) gen_float)) );
        (1, map (fun stream -> Wire.Seal { stream }) (int_range 0 10000));
        (1, map (fun stream -> Wire.Poll_stream { stream }) (int_range 0 10000));
        ( 2,
          map2 (fun from digest -> Wire.Gossip { from; digest }) gen_bytes gen_digest );
        (1, map (fun backend -> Wire.Drain { backend }) gen_bytes);
      ])

let gen_breakdown =
  QCheck.Gen.(
    map
      (fun (queue_wait_s, cache_s, sched_s, exec_s) ->
        { Wire.queue_wait_s; cache_s; sched_s; exec_s })
      (quad gen_float gen_float gen_float gen_float))

let gen_response =
  QCheck.Gen.(
    frequency
      [
        ( 5,
          map3
            (fun schedule (makespan, speedup) ((nsl, cache_hit), breakdown) ->
              Wire.Scheduled { schedule; makespan; speedup; nsl; cache_hit; breakdown })
            gen_bytes (pair gen_float gen_float)
            (pair (pair gen_float bool) gen_breakdown) );
        (2, map (fun s -> Wire.Metrics_text s) gen_bytes);
        (2, map (fun s -> Wire.Stats_text s) gen_bytes);
        ( 2,
          map
            (fun ((uptime_s, cache_hit_rate), (pending, cache_entries),
                  (scheduled_total, connections)) ->
              Wire.Load
                {
                  Wire.uptime_s;
                  pending;
                  cache_entries;
                  cache_hit_rate;
                  scheduled_total;
                  connections;
                })
            (triple (pair gen_float gen_float)
               (pair (int_range 0 10000) (int_range 0 10000))
               (pair (int_range 0 1000000) (int_range 0 10000))) );
        (1, return Wire.Pong);
        (1, return Wire.Shutting_down);
        (1, return Wire.Overloaded);
        ( 2,
          map2
            (fun code message -> Wire.Error { code; message })
            (oneofl
               [
                 Wire.Bad_request;
                 Wire.Invalid_graph;
                 Wire.Unknown_algorithm;
                 Wire.Deadline_exceeded;
                 Wire.Internal;
                 Wire.Unknown_stream;
                 Wire.Edge_rejected;
               ])
            gen_bytes );
        (1, map (fun stream -> Wire.Stream_opened { stream }) (int_range 0 10000));
        ( 2,
          map
            (fun ((stream, round), ((final, makespan), placements)) ->
              Wire.Placed
                { stream; round; final; makespan; placements = Array.of_list placements })
            (pair
               (pair (int_range 0 10000) (int_range 0 1000))
               (pair (pair bool gen_float)
                  (list_size (int_range 0 30)
                     (triple (int_range 0 1000) (int_range 0 1000) gen_float)))) );
        (2, map (fun digest -> Wire.Gossip_ack { digest }) gen_digest);
        (1, map (fun backend -> Wire.Drain_ack { backend }) gen_bytes);
      ])

let show_request = function
  | Wire.Schedule { graph; algo; procs } ->
    Printf.sprintf "Schedule{graph=%S; algo=%S; procs=%d}" graph algo procs
  | Wire.Get_metrics -> "Get_metrics"
  | Wire.Get_stats Wire.Stats_prometheus -> "Get_stats prometheus"
  | Wire.Get_stats Wire.Stats_json -> "Get_stats json"
  | Wire.Get_load -> "Get_load"
  | Wire.Ping -> "Ping"
  | Wire.Shutdown -> "Shutdown"
  | Wire.Open_stream { algo; procs; batch_tasks } ->
    Printf.sprintf "Open_stream{algo=%S; procs=%d; batch=%d}" algo procs batch_tasks
  | Wire.Add_tasks { stream; comps } ->
    Printf.sprintf "Add_tasks{stream=%d; n=%d}" stream (Array.length comps)
  | Wire.Add_edges { stream; edges } ->
    Printf.sprintf "Add_edges{stream=%d; n=%d}" stream (Array.length edges)
  | Wire.Seal { stream } -> Printf.sprintf "Seal{stream=%d}" stream
  | Wire.Poll_stream { stream } -> Printf.sprintf "Poll_stream{stream=%d}" stream
  | Wire.Gossip { from; digest } ->
    Printf.sprintf "Gossip{from=%S; entries=%d; splits=%d; epoch=%d}" from
      (List.length digest.Wire.entries)
      (List.length digest.Wire.splits)
      digest.Wire.splits_epoch
  | Wire.Drain { backend } -> Printf.sprintf "Drain{backend=%S}" backend

let show_response = function
  | Wire.Scheduled { schedule; makespan; speedup; nsl; cache_hit; breakdown = b } ->
    Printf.sprintf
      "Scheduled{schedule=%S; makespan=%h; speedup=%h; nsl=%h; hit=%b; \
       qw=%h cache=%h sched=%h exec=%h}"
      schedule makespan speedup nsl cache_hit b.Wire.queue_wait_s b.Wire.cache_s
      b.Wire.sched_s b.Wire.exec_s
  | Wire.Metrics_text s -> Printf.sprintf "Metrics_text %S" s
  | Wire.Stats_text s -> Printf.sprintf "Stats_text %S" s
  | Wire.Load l ->
    Printf.sprintf "Load{up=%h; pend=%d; entries=%d; hit=%h; sched=%d; conns=%d}"
      l.Wire.uptime_s l.Wire.pending l.Wire.cache_entries l.Wire.cache_hit_rate
      l.Wire.scheduled_total l.Wire.connections
  | Wire.Pong -> "Pong"
  | Wire.Shutting_down -> "Shutting_down"
  | Wire.Overloaded -> "Overloaded"
  | Wire.Error { code; message } ->
    Printf.sprintf "Error{%s; %S}" (Wire.error_code_to_string code) message
  | Wire.Stream_opened { stream } -> Printf.sprintf "Stream_opened{stream=%d}" stream
  | Wire.Placed { stream; round; final; makespan; placements } ->
    Printf.sprintf "Placed{stream=%d; round=%d; final=%b; makespan=%h; n=%d}" stream
      round final makespan (Array.length placements)
  | Wire.Gossip_ack { digest } ->
    Printf.sprintf "Gossip_ack{entries=%d; splits=%d; epoch=%d}"
      (List.length digest.Wire.entries)
      (List.length digest.Wire.splits)
      digest.Wire.splits_epoch
  | Wire.Drain_ack { backend } -> Printf.sprintf "Drain_ack{backend=%S}" backend

let gen_trace_id =
  QCheck.Gen.(
    map2
      (fun hi lo -> Int64.(logor (shift_left (of_int hi) 32) (of_int lo)))
      (int_bound 0x3FFFFFFF) (int_bound 0x3FFFFFFF))

let v3_only_request = function
  | Wire.Open_stream _ | Wire.Add_tasks _ | Wire.Add_edges _ | Wire.Seal _
  | Wire.Poll_stream _ ->
    true
  | _ -> false

let v3_only_response = function
  | Wire.Stream_opened _ | Wire.Placed _ -> true
  | _ -> false

let v4_only_request = function Wire.Gossip _ | Wire.Drain _ -> true | _ -> false

let v4_only_response = function
  | Wire.Gossip_ack _ | Wire.Drain_ack _ -> true
  | _ -> false

let v1_request = function
  | Wire.Get_stats _ | Wire.Get_load -> false
  | r -> not (v3_only_request r) && not (v4_only_request r)

let v1_response = function
  | Wire.Stats_text _ | Wire.Load _ -> false
  | r -> not (v3_only_response r) && not (v4_only_response r)

(* Structural compare instead of (=): it treats nan as equal to itself,
   and the codec stores float bit patterns so nan round-trips. *)
let qsuite_wire =
  [
    qtest ~count:300 "request decode ∘ encode = id, header echoed"
      (QCheck.make
         ~print:(fun (id, r) -> Printf.sprintf "id=%Lx %s" id (show_request r))
         QCheck.Gen.(pair gen_trace_id gen_request))
      (fun (trace_id, r) ->
        match Wire.decode_request (Wire.encode_request ~trace_id r) with
        | Ok (h, r') ->
          h.Wire.header_version = Wire.version
          && h.Wire.trace_id = trace_id
          && compare r r' = 0
        | Error _ -> false);
    qtest ~count:300 "response decode ∘ encode = id, header echoed"
      (QCheck.make
         ~print:(fun (id, r) -> Printf.sprintf "id=%Lx %s" id (show_response r))
         QCheck.Gen.(pair gen_trace_id gen_response))
      (fun (trace_id, r) ->
        match Wire.decode_response (Wire.encode_response ~trace_id r) with
        | Ok (h, r') ->
          h.Wire.header_version = Wire.version
          && h.Wire.trace_id = trace_id
          && compare r r' = 0
        | Error _ -> false);
    qtest ~count:300 "v1 request frames still decode"
      (QCheck.make ~print:show_request gen_request) (fun r ->
        QCheck.assume (v1_request r);
        match Wire.decode_request (Wire.encode_request_v1 r) with
        | Ok (h, r') -> compare h Wire.header_v1 = 0 && compare r r' = 0
        | Error _ -> false);
    qtest ~count:300 "v1 response frames decode, breakdown zeroed"
      (QCheck.make ~print:show_response gen_response) (fun r ->
        QCheck.assume (v1_response r);
        let expect =
          match r with
          | Wire.Scheduled s -> Wire.Scheduled { s with breakdown = Wire.no_breakdown }
          | r -> r
        in
        match Wire.decode_response (Wire.encode_response_v1 r) with
        | Ok (h, r') -> compare h Wire.header_v1 = 0 && compare expect r' = 0
        | Error _ -> false);
    qtest ~count:300 "v2 request frames still decode, trace id intact"
      (QCheck.make
         ~print:(fun (id, r) -> Printf.sprintf "id=%Lx %s" id (show_request r))
         QCheck.Gen.(pair gen_trace_id gen_request))
      (fun (trace_id, r) ->
        QCheck.assume (not (v3_only_request r) && not (v4_only_request r));
        match Wire.decode_request (Wire.encode_request_v2 ~trace_id r) with
        | Ok (h, r') ->
          h.Wire.header_version = 2 && h.Wire.trace_id = trace_id && compare r r' = 0
        | Error _ -> false);
    qtest ~count:300 "v2 response frames still decode, trace id intact"
      (QCheck.make
         ~print:(fun (id, r) -> Printf.sprintf "id=%Lx %s" id (show_response r))
         QCheck.Gen.(pair gen_trace_id gen_response))
      (fun (trace_id, r) ->
        QCheck.assume (not (v3_only_response r) && not (v4_only_response r));
        match Wire.decode_response (Wire.encode_response_v2 ~trace_id r) with
        | Ok (h, r') ->
          h.Wire.header_version = 2 && h.Wire.trace_id = trace_id && compare r r' = 0
        | Error _ -> false);
    qtest ~count:300 "v3 request frames still decode, trace id intact"
      (QCheck.make
         ~print:(fun (id, r) -> Printf.sprintf "id=%Lx %s" id (show_request r))
         QCheck.Gen.(pair gen_trace_id gen_request))
      (fun (trace_id, r) ->
        QCheck.assume (not (v4_only_request r));
        match Wire.decode_request (Wire.encode_request_v3 ~trace_id r) with
        | Ok (h, r') ->
          h.Wire.header_version = 3 && h.Wire.trace_id = trace_id && compare r r' = 0
        | Error _ -> false);
    qtest ~count:300 "v3 response frames still decode, trace id intact"
      (QCheck.make
         ~print:(fun (id, r) -> Printf.sprintf "id=%Lx %s" id (show_response r))
         QCheck.Gen.(pair gen_trace_id gen_response))
      (fun (trace_id, r) ->
        QCheck.assume (not (v4_only_response r));
        match Wire.decode_response (Wire.encode_response_v3 ~trace_id r) with
        | Ok (h, r') ->
          h.Wire.header_version = 3 && h.Wire.trace_id = trace_id && compare r r' = 0
        | Error _ -> false);
    qtest ~count:100 "pre-v3 encoders refuse streaming messages"
      (QCheck.make ~print:show_request gen_request) (fun r ->
        QCheck.assume (v3_only_request r);
        let refuses f = match f r with exception Invalid_argument _ -> true | _ -> false in
        refuses Wire.encode_request_v1 && refuses (Wire.encode_request_v2 ?trace_id:None));
    qtest ~count:100 "pre-v4 encoders refuse gossip/drain requests"
      (QCheck.make ~print:show_request gen_request) (fun r ->
        QCheck.assume (v4_only_request r);
        let refuses f = match f r with exception Invalid_argument _ -> true | _ -> false in
        refuses Wire.encode_request_v1
        && refuses (Wire.encode_request_v2 ?trace_id:None)
        && refuses (Wire.encode_request_v3 ?trace_id:None));
    qtest ~count:100 "pre-v4 encoders refuse gossip/drain responses"
      (QCheck.make ~print:show_response gen_response) (fun r ->
        QCheck.assume (v4_only_response r);
        let refuses f = match f r with exception Invalid_argument _ -> true | _ -> false in
        refuses Wire.encode_response_v1
        && refuses (Wire.encode_response_v2 ?trace_id:None)
        && refuses (Wire.encode_response_v3 ?trace_id:None));
    qtest ~count:100 "decoding arbitrary bytes never raises"
      (QCheck.make gen_bytes) (fun s ->
        (match Wire.decode_request s with Ok _ | Error _ -> true)
        && (match Wire.decode_response s with Ok _ | Error _ -> true));
  ]

let test_wire_malformed () =
  let reject what payload =
    match Wire.decode_request payload with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" what
  in
  reject "empty payload" "";
  reject "bad version" "\x07\x03";
  reject "unknown tag" "\x01\x99";
  reject "truncated Schedule" "\x01\x01\x00\x00\x00\x05ab";
  (* a v2 payload that ends inside the 8-byte trace id *)
  reject "truncated v2 header" "\x02\x00\x00\x00\x01";
  (* tags 5 (Get_stats) and 6 (Get_load) do not exist in version 1 *)
  reject "v2-only tag in a v1 frame" "\x01\x05\x00";
  reject "v2-only Get_load in a v1 frame" "\x01\x06";
  (* a valid Ping with trailing garbage must not decode *)
  reject "trailing bytes" (Wire.encode_request Wire.Ping ^ "x");
  (* streaming tags do not exist before version 3 *)
  reject "v3-only tag in a v2 frame" "\x02\x00\x00\x00\x00\x00\x00\x00\x00\x07";
  reject "v3-only tag in a v1 frame" "\x01\x0b";
  (* gossip/drain tags do not exist before version 4 *)
  reject "v4-only Gossip tag in a v3 frame"
    "\x03\x00\x00\x00\x00\x00\x00\x00\x00\x0c";
  reject "v4-only Drain tag in a v2 frame"
    "\x02\x00\x00\x00\x00\x00\x00\x00\x00\x0d";
  reject "v4-only tag in a v1 frame" "\x01\x0c";
  (* a gossip entry count that promises more bytes than the frame
     carries is rejected before any allocation *)
  reject "gossip entry count exceeding the frame"
    "\x04\x00\x00\x00\x00\x00\x00\x00\x00\x0c\x00\x00\x00\x00\x7f\xff\xff\xff";
  (let full =
     Wire.encode_request
       (Wire.Gossip
          {
            from = "r1";
            digest =
              {
                Wire.entries =
                  [ { Wire.backend = "b1"; status = Wire.Peer_down; epoch = 3 } ];
                splits = [ "shard" ];
                splits_epoch = 2;
              };
          })
   in
   reject "truncated Gossip digest" (String.sub full 0 (String.length full - 4)));
  (* counted arrays whose element count promises more bytes than the
     frame carries are rejected before any allocation *)
  (let full =
     Wire.encode_request (Wire.Add_tasks { stream = 1; comps = [| 1.0; 2.0; 3.0 |] })
   in
   reject "truncated Add_tasks array" (String.sub full 0 (String.length full - 4)));
  (let full =
     Wire.encode_request (Wire.Add_edges { stream = 1; edges = [| (0, 1, 2.0) |] })
   in
   reject "truncated Add_edges array" (String.sub full 0 (String.length full - 4)));
  (* the v1 encoders refuse messages v1 cannot express *)
  check_raises_invalid "v1 cannot encode Get_stats" (fun () ->
      ignore (Wire.encode_request_v1 (Wire.Get_stats Wire.Stats_json)));
  check_raises_invalid "v1 cannot encode Get_load" (fun () ->
      ignore (Wire.encode_request_v1 Wire.Get_load));
  check_raises_invalid "v1 cannot encode Stats_text" (fun () ->
      ignore (Wire.encode_response_v1 (Wire.Stats_text "x")));
  check_raises_invalid "v1 cannot encode Load" (fun () ->
      ignore
        (Wire.encode_response_v1
           (Wire.Load
              {
                Wire.uptime_s = 1.0;
                pending = 0;
                cache_entries = 0;
                cache_hit_rate = 0.0;
                scheduled_total = 0;
                connections = 0;
              })));
  (* the v1/v2 encoders refuse streaming messages v3 introduced *)
  check_raises_invalid "v1 cannot encode Open_stream" (fun () ->
      ignore
        (Wire.encode_request_v1
           (Wire.Open_stream { algo = "flb"; procs = 2; batch_tasks = 0 })));
  check_raises_invalid "v2 cannot encode Seal" (fun () ->
      ignore (Wire.encode_request_v2 (Wire.Seal { stream = 0 })));
  check_raises_invalid "v1 cannot encode Stream_opened" (fun () ->
      ignore (Wire.encode_response_v1 (Wire.Stream_opened { stream = 0 })));
  check_raises_invalid "v2 cannot encode Placed" (fun () ->
      ignore
        (Wire.encode_response_v2
           (Wire.Placed
              { stream = 0; round = 1; final = true; makespan = 0.0; placements = [||] })));
  (* the v1/v2/v3 encoders refuse the gossip/drain messages v4 introduced *)
  check_raises_invalid "v3 cannot encode Gossip" (fun () ->
      ignore
        (Wire.encode_request_v3 (Wire.Gossip { from = "r"; digest = Wire.empty_digest })));
  check_raises_invalid "v3 cannot encode Drain" (fun () ->
      ignore (Wire.encode_request_v3 (Wire.Drain { backend = "b" })));
  check_raises_invalid "v2 cannot encode Drain" (fun () ->
      ignore (Wire.encode_request_v2 (Wire.Drain { backend = "b" })));
  check_raises_invalid "v3 cannot encode Gossip_ack" (fun () ->
      ignore (Wire.encode_response_v3 (Wire.Gossip_ack { digest = Wire.empty_digest })));
  check_raises_invalid "v1 cannot encode Drain_ack" (fun () ->
      ignore (Wire.encode_response_v1 (Wire.Drain_ack { backend = "b" })))

let test_wire_framing () =
  let rd, wr = Unix.pipe () in
  let ic = Unix.in_channel_of_descr rd in
  let oc = Unix.out_channel_of_descr wr in
  Wire.write_frame oc "hello";
  Wire.write_frame oc "";
  (match Wire.read_frame ic with
  | Ok p -> Alcotest.(check string) "first frame" "hello" p
  | Error e -> Alcotest.fail (Wire.read_error_to_string e));
  (match Wire.read_frame ic with
  | Ok p -> Alcotest.(check string) "empty frame" "" p
  | Error e -> Alcotest.fail (Wire.read_error_to_string e));
  (* oversized: declared length above the cap is refused before reading *)
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 1024l;
  output_bytes oc header;
  flush oc;
  (match Wire.read_frame ~max_frame:100 ic with
  | Error (Wire.Oversized 1024) -> ()
  | Error e -> Alcotest.fail (Wire.read_error_to_string e)
  | Ok _ -> Alcotest.fail "oversized frame accepted");
  (* truncated: header promises 50 bytes, the peer hangs up after 3 *)
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 50l;
  output_bytes oc header;
  output_string oc "abc";
  close_out oc;
  (match Wire.read_frame ic with
  | Error Wire.Truncated -> ()
  | Error e -> Alcotest.fail (Wire.read_error_to_string e)
  | Ok _ -> Alcotest.fail "truncated frame accepted");
  (* a fresh EOF at a frame boundary is Closed, not Truncated *)
  let rd2, wr2 = Unix.pipe () in
  Unix.close wr2;
  let ic2 = Unix.in_channel_of_descr rd2 in
  (match Wire.read_frame ic2 with
  | Error Wire.Closed -> ()
  | Error e -> Alcotest.fail (Wire.read_error_to_string e)
  | Ok _ -> Alcotest.fail "read from closed pipe succeeded");
  close_in_noerr ic2;
  close_in_noerr ic

(* --- cache --- *)

let test_cache_lru () =
  let c = Cache.create ~capacity:1 () in
  Alcotest.(check (option string)) "empty miss" None (Cache.find c "k1");
  Cache.add c "k1" "v1";
  Alcotest.(check (option string)) "hit" (Some "v1") (Cache.find c "k1");
  (* capacity-1 stress: each insert evicts the previous entry *)
  Cache.add c "k2" "v2";
  Alcotest.(check (option string)) "k1 evicted" None (Cache.find c "k1");
  Alcotest.(check (option string)) "k2 present" (Some "v2") (Cache.find c "k2");
  Cache.add c "k3" "v3";
  Alcotest.(check (option string)) "k2 evicted" None (Cache.find c "k2");
  Alcotest.(check (option string)) "k3 present" (Some "v3") (Cache.find c "k3");
  check_int "length bounded" 1 (Cache.length c);
  check_int "evictions" 2 (Cache.evictions c);
  check_int "hits" 3 (Cache.hits c);
  check_int "misses" 3 (Cache.misses c);
  check_raises_invalid "capacity 0" (fun () -> ignore (Cache.create ~capacity:0 ()))

let test_cache_access_order () =
  (* eviction follows access recency, not insertion order *)
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  ignore (Cache.find c "a");
  (* recency now a > b, so inserting c evicts b *)
  Cache.add c "c" 3;
  Alcotest.(check (option int)) "a survives" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "c present" (Some 3) (Cache.find c "c")

let test_cache_key () =
  let g = Serial.to_string (small_graph ()) in
  Alcotest.(check string)
    "algo case-folded"
    (Cache.key ~dead:[] ~graph:g ~algo:"flb" ~procs:4)
    (Cache.key ~dead:[] ~graph:g ~algo:"FLB" ~procs:4);
  check_bool "procs distinguishes" false
    (Cache.key ~dead:[] ~graph:g ~algo:"flb" ~procs:4
    = Cache.key ~dead:[] ~graph:g ~algo:"flb" ~procs:8);
  check_bool "graph distinguishes" false
    (Cache.key ~dead:[] ~graph:g ~algo:"flb" ~procs:4
    = Cache.key ~dead:[] ~graph:(g ^ "# x\n") ~algo:"flb" ~procs:4)

let test_cache_key_mask () =
  let g = Serial.to_string (small_graph ()) in
  let k dead = Cache.key ~dead ~graph:g ~algo:"flb" ~procs:4 in
  check_bool "mask distinguishes from healthy" false (k [] = k [ 2 ]);
  check_bool "distinct masks distinguish" false (k [ 1 ] = k [ 2 ]);
  Alcotest.(check string) "mask is canonical (order)" (k [ 1; 3 ]) (k [ 3; 1 ]);
  Alcotest.(check string) "mask is canonical (dups)" (k [ 2 ]) (k [ 2; 2 ]);
  (* The property the key exists for: a degraded-machine reschedule
     must miss on a cache warmed with the full-machine entry. *)
  let c = Cache.create ~capacity:4 () in
  Cache.add c (k []) 1;
  Alcotest.(check (option int)) "degraded mask misses" None (Cache.find c (k [ 2 ]));
  Alcotest.(check (option int)) "healthy still hits" (Some 1) (Cache.find c (k []))

let test_cache_digest () =
  (* Two fresh constructions of the same graph digest identically: the
     digest hashes the canonical Serial text, not physical structure, so
     a router and a restarted router agree on every shard. *)
  Alcotest.(check string)
    "fig1 digest is construction-independent"
    (Cache.digest (Example.fig1 ()))
    (Cache.digest (Example.fig1 ()));
  Alcotest.(check string)
    "digest survives a serialize/parse round trip"
    (Cache.digest (Example.fig1 ()))
    (Cache.digest (Serial.of_string (Serial.to_string (Example.fig1 ()))));
  check_bool "distinct graphs digest differently" false
    (Cache.digest (Example.fig1 ()) = Cache.digest (small_graph ()));
  (* and the digest is exactly the one the cache key uses for canonical
     graph text, so router shards and backend cache entries coincide *)
  let g = small_graph () in
  Alcotest.(check string)
    "key_of_digest matches key on canonical text"
    (Cache.key ~dead:[] ~graph:(Serial.to_string g) ~algo:"FLB" ~procs:4)
    (Cache.key_of_digest ~dead:[] ~digest:(Cache.digest g) ~algo:"FLB" ~procs:4)

(* --- pool --- *)

let test_pool_rejects_and_drains () =
  let pool = Pool.create ~domains:1 ~queue_capacity:2 () in
  let ran = Atomic.make 0 in
  let gate = Atomic.make false in
  let job () =
    while not (Atomic.get gate) do
      Domain.cpu_relax ()
    done;
    Atomic.incr ran
  in
  (* first job occupies the worker (it spins on the gate), leaving the
     queue free for exactly queue_capacity more *)
  check_bool "j1 accepted" true (Pool.submit pool job);
  let deadline = Unix.gettimeofday () +. 2.0 in
  while Pool.pending pool > 0 && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  check_bool "j2 accepted" true (Pool.submit pool job);
  check_bool "j3 accepted" true (Pool.submit pool job);
  check_bool "j4 rejected (queue full)" false (Pool.submit pool job);
  Atomic.set gate true;
  Pool.shutdown pool;
  check_int "all accepted jobs ran before shutdown returned" 3 (Atomic.get ran);
  check_bool "submit after shutdown rejected" false (Pool.submit pool job)

let test_pool_contains_exceptions () =
  let pool = Pool.create ~domains:2 ~queue_capacity:8 () in
  let ran = Atomic.make 0 in
  for _ = 1 to 4 do
    ignore (Pool.submit pool (fun () -> failwith "job blew up"))
  done;
  for _ = 1 to 4 do
    ignore (Pool.submit pool (fun () -> Atomic.incr ran))
  done;
  Pool.shutdown pool;
  check_int "workers survive raising jobs" 4 (Atomic.get ran)

(* --- server helpers --- *)

let with_server ?(config = Server.default_config) f =
  let srv = Server.start { config with host = "127.0.0.1"; port = 0 } in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () -> f srv (Server.port srv))

let with_client port f =
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let fig1_text () = Serial.to_string (Example.fig1 ())

(* --- server: happy path and cache semantics --- *)

let test_server_end_to_end () =
  with_server (fun _srv port ->
      with_client port (fun c ->
          Alcotest.(check (result unit string)) "ping" (Ok ()) (Client.ping c);
          let graph = fig1_text () in
          match Client.schedule c ~graph ~algo:"FLB" ~procs:2 with
          | Ok (Wire.Scheduled r) ->
            check_float "fig1 makespan" Example.fig1_schedule_length r.makespan;
            check_bool "first run is a miss" false r.cache_hit;
            let b = r.breakdown in
            check_bool "breakdown sane" true
              (b.Wire.queue_wait_s >= 0.0
              && b.Wire.cache_s >= 0.0
              && b.Wire.sched_s >= 0.0
              && b.Wire.exec_s >= b.Wire.sched_s);
            (* the returned schedule text reloads and validates *)
            let g = Example.fig1 () in
            let m = Machine.clique ~num_procs:2 in
            let s = Schedule_io.of_string g m r.schedule in
            check_bool "schedule validates" true (Schedule.validate s = Ok ());
            check_float "makespan consistent" r.makespan (Schedule.makespan s)
          | Ok resp -> Alcotest.failf "unexpected response: %s" (show_response resp)
          | Error msg -> Alcotest.fail msg))

let test_server_cache_hit_byte_identical () =
  with_server (fun _srv port ->
      with_client port (fun c ->
          let graph = Serial.to_string (small_graph ()) in
          let run () =
            match Client.schedule c ~graph ~algo:"FLB" ~procs:3 with
            | Ok (Wire.Scheduled { schedule; makespan; cache_hit; breakdown; _ }) ->
              (schedule, makespan, cache_hit, breakdown)
            | Ok resp -> Alcotest.failf "unexpected: %s" (show_response resp)
            | Error msg -> Alcotest.fail msg
          in
          let schedule1, makespan1, hit1, _ = run () in
          let schedule2, makespan2, hit2, b2 = run () in
          check_bool "first is a miss" false hit1;
          check_bool "second is a hit" true hit2;
          (* a hit bypasses the pool: no queue wait, no compute *)
          check_float "hit queue wait" 0.0 b2.Wire.queue_wait_s;
          check_float "hit sched time" 0.0 b2.Wire.sched_s;
          check_float "hit exec time" 0.0 b2.Wire.exec_s;
          Alcotest.(check string)
            "hit is byte-identical to the fresh run" schedule1 schedule2;
          (* and byte-identical to scheduling locally *)
          (match Flb_experiments.Registry.find "FLB" with
          | None -> Alcotest.fail "FLB not registered"
          | Some a ->
            let local =
              Schedule_io.to_string
                (a.Flb_experiments.Registry.run (small_graph ())
                   (Machine.clique ~num_procs:3))
            in
            Alcotest.(check string) "matches a local run" local schedule1);
          check_float "same makespan" makespan1 makespan2))

(* --- server: introspection and trace ids --- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_server_stats () =
  with_server (fun _srv port ->
      with_client port (fun c ->
          (match Client.schedule c ~graph:(fig1_text ()) ~algo:"FLB" ~procs:2 with
          | Ok (Wire.Scheduled _) -> ()
          | Ok resp -> Alcotest.failf "unexpected: %s" (show_response resp)
          | Error msg -> Alcotest.fail msg);
          (match Client.get_stats c ~format:Wire.Stats_json with
          | Ok s ->
            List.iter
              (fun key ->
                check_bool (Printf.sprintf "json stats carry %s" key) true
                  (contains s (Printf.sprintf "%S" key)))
              [ "uptime_s"; "cache"; "hit_rate"; "pool"; "connections"; "metrics" ]
          | Error msg -> Alcotest.fail msg);
          match Client.get_stats c ~format:Wire.Stats_prometheus with
          | Ok s ->
            List.iter
              (fun metric ->
                check_bool (Printf.sprintf "exposition carries %s" metric) true
                  (contains s metric))
              [
                "service_uptime_seconds";
                "service_cache_hit_rate";
                "service_pool_pending";
                "service_connections_active";
                "service_requests_total";
              ]
          | Error msg -> Alcotest.fail msg))

let test_server_get_load () =
  with_server (fun _srv port ->
      with_client port (fun c ->
          (match Client.get_load c with
          | Ok l ->
            check_int "nothing scheduled yet" 0 l.Wire.scheduled_total;
            check_int "nothing cached yet" 0 l.Wire.cache_entries;
            check_bool "uptime sane" true (l.Wire.uptime_s >= 0.0);
            check_bool "this connection is counted" true (l.Wire.connections >= 1)
          | Error msg -> Alcotest.fail msg);
          (match Client.schedule c ~graph:(fig1_text ()) ~algo:"FLB" ~procs:2 with
          | Ok (Wire.Scheduled _) -> ()
          | Ok resp -> Alcotest.failf "unexpected: %s" (show_response resp)
          | Error msg -> Alcotest.fail msg);
          match Client.get_load c with
          | Ok l ->
            check_int "schedule counted" 1 l.Wire.scheduled_total;
            check_int "result cached" 1 l.Wire.cache_entries
          | Error msg -> Alcotest.fail msg))

let test_client_io_timeout () =
  (* A peer that accepts but never answers: the client's I/O deadline
     must surface as a transport error, not a hang — this is what lets
     the router fail over from a stalled backend. *)
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lsock 4;
  let port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "no port"
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close lsock with _ -> ())
    (fun () ->
      let c = Client.connect ~io_timeout_s:0.2 ~port () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let t0 = Unix.gettimeofday () in
          match Client.ping c with
          | Ok () -> Alcotest.fail "ping answered by a mute peer"
          | Error _ ->
            check_bool "timed out promptly" true
              (Unix.gettimeofday () -. t0 < 2.0)))

let test_server_trace_id_echo () =
  with_server (fun _srv port ->
      with_client port (fun c ->
          check_bool "no id before the first call" true (Client.last_trace_id c = 0L);
          let id = 0x1234_5678_9abc_def0L in
          (match
             Client.schedule ~trace_id:id c ~graph:(fig1_text ()) ~algo:"FLB" ~procs:2
           with
          | Ok (Wire.Scheduled _) -> ()
          | Ok resp -> Alcotest.failf "unexpected: %s" (show_response resp)
          | Error msg -> Alcotest.fail msg);
          check_bool "explicit id echoed by the server" true
            (Client.last_trace_id c = id);
          (match Client.ping c with
          | Ok () -> ()
          | Error msg -> Alcotest.fail msg);
          let minted = Client.last_trace_id c in
          check_bool "absent id is minted" true (minted <> 0L && minted <> id)))

let test_server_request_tracing () =
  (* with a tracer configured, one traced request produces spans on its
     own req-<id> track *)
  let tracer = Flb_obs.Trace.create () in
  let config = { Server.default_config with tracer } in
  with_server ~config (fun _srv port ->
      with_client port (fun c ->
          let id = 0xfeed_f00dL in
          (match
             Client.schedule ~trace_id:id c ~graph:(fig1_text ()) ~algo:"FLB" ~procs:2
           with
          | Ok (Wire.Scheduled _) -> ()
          | Ok resp -> Alcotest.failf "unexpected: %s" (show_response resp)
          | Error msg -> Alcotest.fail msg);
          let jsonl = Flb_obs.Trace.to_jsonl tracer in
          let track =
            Printf.sprintf "req-%s" (Flb_obs.Trace_context.id_to_string id)
          in
          check_bool "request track present" true (contains jsonl track);
          List.iter
            (fun span ->
              check_bool (Printf.sprintf "span %s present" span) true
                (contains jsonl (Printf.sprintf "%S" span)))
            [ "cache"; "execute" ]))

(* --- server: failure injection --- *)

let expect_error code = function
  | Ok (Wire.Error e) ->
    Alcotest.(check string)
      "error code"
      (Wire.error_code_to_string code)
      (Wire.error_code_to_string e.code)
  | Ok resp -> Alcotest.failf "expected error, got %s" (show_response resp)
  | Error msg -> Alcotest.failf "transport error instead of response: %s" msg

let test_server_structured_errors () =
  with_server (fun _srv port ->
      with_client port (fun c ->
          let cyclic = "tasks 2\ntask 0 1\ntask 1 1\nedge 0 1 1\nedge 1 0 1\n" in
          expect_error Wire.Invalid_graph
            (Client.schedule c ~graph:cyclic ~algo:"FLB" ~procs:2);
          expect_error Wire.Invalid_graph
            (Client.schedule c ~graph:"not a graph" ~algo:"FLB" ~procs:2);
          expect_error Wire.Unknown_algorithm
            (Client.schedule c ~graph:(fig1_text ()) ~algo:"MAGIC" ~procs:2);
          expect_error Wire.Bad_request
            (Client.schedule c ~graph:(fig1_text ()) ~algo:"FLB" ~procs:0);
          (* the connection survives all of the above *)
          Alcotest.(check (result unit string)) "still serving" (Ok ())
            (Client.ping c)))

let test_server_rejects_raw_garbage () =
  with_server (fun _srv port ->
      (* garbage payload in a well-formed frame: structured error, and the
         connection keeps serving *)
      with_client port (fun c ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          let oc = Unix.out_channel_of_descr fd in
          let ic = Unix.in_channel_of_descr fd in
          Wire.write_frame oc "\xde\xad\xbe\xef";
          (match Wire.read_frame ic with
          | Ok payload -> expect_error Wire.Bad_request (Result.map snd (Wire.decode_response payload))
          | Error e -> Alcotest.fail (Wire.read_error_to_string e));
          (* same connection still answers a well-formed request *)
          Wire.write_frame oc (Wire.encode_request Wire.Ping);
          (match Wire.read_frame ic with
          | Ok payload ->
            (match Wire.decode_response payload with
            | Ok (_, Wire.Pong) -> ()
            | Ok (_, resp) ->
              Alcotest.failf "expected Pong, got %s" (show_response resp)
            | Error msg -> Alcotest.fail msg)
          | Error e -> Alcotest.fail (Wire.read_error_to_string e));
          close_out_noerr oc;
          close_in_noerr ic;
          (* and the server as a whole is still alive *)
          Alcotest.(check (result unit string)) "server alive" (Ok ())
            (Client.ping c)))

let test_server_truncated_frame () =
  with_server (fun _srv port ->
      with_client port (fun probe ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          let oc = Unix.out_channel_of_descr fd in
          let ic = Unix.in_channel_of_descr fd in
          (* header promises 64 bytes; send 5 and half-close *)
          let header = Bytes.create 4 in
          Bytes.set_int32_be header 0 64l;
          output_bytes oc header;
          output_string oc "trunc";
          flush oc;
          Unix.shutdown fd Unix.SHUTDOWN_SEND;
          (match Wire.read_frame ic with
          | Ok payload -> expect_error Wire.Bad_request (Result.map snd (Wire.decode_response payload))
          | Error e ->
            Alcotest.failf "no structured response to truncation: %s"
              (Wire.read_error_to_string e));
          close_out_noerr oc;
          close_in_noerr ic;
          Alcotest.(check (result unit string)) "server alive" (Ok ())
            (Client.ping probe)))

let test_server_oversized_frame () =
  let config = { Server.default_config with max_frame = 4096 } in
  with_server ~config (fun _srv port ->
      with_client port (fun probe ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          let oc = Unix.out_channel_of_descr fd in
          let ic = Unix.in_channel_of_descr fd in
          let header = Bytes.create 4 in
          Bytes.set_int32_be header 0 1_000_000l;
          output_bytes oc header;
          flush oc;
          (match Wire.read_frame ic with
          | Ok payload -> expect_error Wire.Bad_request (Result.map snd (Wire.decode_response payload))
          | Error e ->
            Alcotest.failf "no structured response to oversized frame: %s"
              (Wire.read_error_to_string e));
          close_out_noerr oc;
          close_in_noerr ic;
          Alcotest.(check (result unit string)) "server alive" (Ok ())
            (Client.ping probe)))

(* --- server: admission control and deadlines --- *)

(* Distinct graphs (one per request) keep the cache out of the picture. *)
let distinct_graph i =
  Serial.to_string
    (build_dag
       { layers = 4; max_width = 3; edge_probability = 0.5; ccr = 1.0; seed = 900 + i })

let test_server_admission_control () =
  (* one worker occupied for 0.4 s, queue of one: concurrent requests
     beyond the first two must be shed with Overloaded, while the
     admitted ones still complete with correct schedules *)
  let config =
    {
      Server.default_config with
      domains = 1;
      queue_capacity = 1;
      work_delay_s = 0.4;
      deadline_s = 30.0;
    }
  in
  with_server ~config (fun _srv port ->
      let results = Array.make 4 (Error "never ran") in
      let fire i delay =
        Thread.create
          (fun () ->
            Thread.delay delay;
            with_client port (fun c ->
                results.(i) <-
                  Client.schedule c ~graph:(distinct_graph i) ~algo:"FLB" ~procs:2))
          ()
      in
      (* request 0 reaches the worker; 0.15 s later the rest arrive while
         the worker still sleeps: one is queued, the others are shed *)
      let t0 = fire 0 0.0 in
      let rest = List.init 3 (fun i -> fire (i + 1) 0.15) in
      List.iter Thread.join (t0 :: rest);
      let scheduled, overloaded =
        Array.fold_left
          (fun (s, o) r ->
            match r with
            | Ok (Wire.Scheduled _) -> (s + 1, o)
            | Ok Wire.Overloaded -> (s, o + 1)
            | Ok resp -> Alcotest.failf "unexpected: %s" (show_response resp)
            | Error msg -> Alcotest.failf "transport error: %s" msg)
          (0, 0) results
      in
      check_int "exactly queue+workers admitted" 2 scheduled;
      check_int "the rest shed" 2 overloaded;
      (* in-flight results are correct, not just present *)
      Array.iteri
        (fun i r ->
          match r with
          | Ok (Wire.Scheduled resp) ->
            let g = Serial.of_string (distinct_graph i) in
            let s =
              Schedule_io.of_string g (Machine.clique ~num_procs:2) resp.schedule
            in
            check_bool
              (Printf.sprintf "request %d schedule validates" i)
              true
              (Schedule.validate s = Ok ())
          | _ -> ())
        results)

let test_server_queue_deadline () =
  let config =
    {
      Server.default_config with
      domains = 1;
      queue_capacity = 4;
      work_delay_s = 0.4;
      deadline_s = 0.1;
    }
  in
  with_server ~config (fun _srv port ->
      let second = ref (Error "never ran") in
      let t1 =
        Thread.create
          (fun () ->
            with_client port (fun c ->
                ignore (Client.schedule c ~graph:(distinct_graph 50) ~algo:"FLB" ~procs:2)))
          ()
      in
      Thread.delay 0.15;
      let t2 =
        Thread.create
          (fun () ->
            with_client port (fun c ->
                second :=
                  Client.schedule c ~graph:(distinct_graph 51) ~algo:"FLB" ~procs:2))
          ()
      in
      Thread.join t1;
      Thread.join t2;
      (* the queued request waited ~0.25 s behind the 0.4 s job: over its
         0.1 s deadline, so it must be answered with the structured
         deadline error rather than scheduled late *)
      expect_error Wire.Deadline_exceeded !second)

let test_server_drain () =
  let srv = Server.start { Server.default_config with host = "127.0.0.1"; port = 0 } in
  let port = Server.port srv in
  with_client port (fun c ->
      (match Client.schedule c ~graph:(fig1_text ()) ~algo:"FLB" ~procs:2 with
      | Ok (Wire.Scheduled _) -> ()
      | Ok resp -> Alcotest.failf "unexpected: %s" (show_response resp)
      | Error msg -> Alcotest.fail msg);
      Alcotest.(check (result unit string))
        "drain acknowledged" (Ok ()) (Client.drain c);
      (* while draining, existing connections keep being served but new
         streaming sessions are refused *)
      (match Client.open_stream c ~algo:"FLB" ~procs:2 with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "draining daemon opened a stream"));
  (* with no in-flight work left, the daemon exits on its own *)
  Server.wait srv;
  (match Client.connect ~port () with
  | exception Unix.Unix_error _ -> ()
  | c -> Client.close c);
  (* stop after the fact is a no-op *)
  Server.stop srv

let test_server_graceful_shutdown () =
  let srv = Server.start { Server.default_config with port = 0 } in
  let port = Server.port srv in
  with_client port (fun c ->
      Alcotest.(check (result unit string)) "acknowledged" (Ok ()) (Client.shutdown c));
  Server.wait srv;
  (* the port is released: connecting now must fail *)
  (match Client.connect ~port () with
  | exception Unix.Unix_error _ -> ()
  | c ->
    (* accept loop is gone; at best the connection is refused lazily *)
    Client.close c);
  (* stop after the fact is a no-op *)
  Server.stop srv

(* --- server: streaming sessions (wire v3) --- *)

let okr = function Ok v -> v | Error msg -> Alcotest.fail msg

(* A streaming config that never ticks on its own: rounds happen only
   when a Seal (or an explicit threshold crossing) forces one, which
   makes round boundaries deterministic for the assertions below. *)
let quiet_stream ?(batch_tasks = max_int) () =
  { Flb_stream.Scheduler_loop.default_config with batch_tasks; tick_period_s = 1e9 }

let graph_parts g =
  let comps = Array.init (Taskgraph.num_tasks g) (Taskgraph.comp g) in
  let edges = ref [] in
  Taskgraph.iter_edges (fun src dst comm -> edges := (src, dst, comm) :: !edges) g;
  (comps, Array.of_list (List.rev !edges))

let test_server_stream_matches_one_shot () =
  (* The frozen-prefix identity, end to end over the wire: a graph
     streamed whole and sealed schedules bit-identically to the same
     graph submitted as a one-shot Schedule, for every paper workload
     in the Fig. 4 suite and more than one algorithm. *)
  let config = { Server.default_config with stream = quiet_stream () } in
  with_server ~config (fun _srv port ->
      with_client port (fun c ->
          List.iter
            (fun algo ->
              List.iter
                (fun w ->
                  let g = w.Flb_experiments.Workload_suite.structure in
                  let name =
                    Printf.sprintf "%s/%s" w.Flb_experiments.Workload_suite.name algo
                  in
                  let one_shot =
                    match
                      Client.schedule c ~graph:(Serial.to_string g) ~algo ~procs:4
                    with
                    | Ok (Wire.Scheduled r) -> r.makespan
                    | Ok resp -> Alcotest.failf "unexpected: %s" (show_response resp)
                    | Error msg -> Alcotest.fail msg
                  in
                  let comps, edges = graph_parts g in
                  let stream = okr (Client.open_stream c ~algo ~procs:4) in
                  ignore (okr (Client.add_tasks c ~stream ~comps));
                  ignore (okr (Client.add_edges c ~stream ~edges));
                  let final = okr (Client.seal_stream c ~stream) in
                  check_bool (name ^ " final") true final.Client.final;
                  check_int (name ^ " fully placed") (Array.length comps)
                    (Array.length final.Client.placements);
                  check_float (name ^ " streamed = one-shot") one_shot
                    final.Client.makespan)
                (Flb_experiments.Workload_suite.fig4_suite ~tasks:60 ()))
            [ "FLB"; "ETF" ]))

let test_server_stream_cache_bypass () =
  (* Streaming rounds must not touch the LRU: partial-graph keys never
     repeat, so counting them as misses would poison
     service_cache_hit_rate for one-shot traffic. They are accounted as
     bypasses instead. *)
  let config = { Server.default_config with stream = quiet_stream () } in
  with_server ~config (fun _srv port ->
      with_client port (fun c ->
          let graph = fig1_text () in
          (* warm the cache to a known hit rate: one miss, one hit *)
          List.iter
            (fun expect_hit ->
              match Client.schedule c ~graph ~algo:"FLB" ~procs:2 with
              | Ok (Wire.Scheduled r) ->
                check_bool "warmup hit/miss" expect_hit r.cache_hit
              | Ok resp -> Alcotest.failf "unexpected: %s" (show_response resp)
              | Error msg -> Alcotest.fail msg)
            [ false; true ];
          let before = okr (Client.get_load c) in
          let comps, edges = graph_parts (Example.fig1 ()) in
          let stream = okr (Client.open_stream c ~algo:"FLB" ~procs:2) in
          ignore (okr (Client.add_tasks c ~stream ~comps));
          ignore (okr (Client.add_edges c ~stream ~edges));
          let final = okr (Client.seal_stream c ~stream) in
          check_float "streamed fig1 makespan" Example.fig1_schedule_length
            final.Client.makespan;
          let after = okr (Client.get_load c) in
          check_float "hit rate untouched by streaming" before.Wire.cache_hit_rate
            after.Wire.cache_hit_rate;
          check_int "no cache fills from streaming" before.Wire.cache_entries
            after.Wire.cache_entries;
          (* the seal's round shows up as a bypass, not a miss *)
          match Client.get_stats c ~format:Wire.Stats_json with
          | Ok s -> check_bool "round counted as bypass" true (contains s "\"bypasses\":1")
          | Error msg -> Alcotest.fail msg))

let test_server_stream_two_clients_batched () =
  (* Two clients with open streams on the same (algo, procs): the round
     forced by A's seal schedules BOTH pending subgraphs as one
     super-DAG, and every placement reaches its own stream — none
     dropped, none crossed. *)
  let config = { Server.default_config with stream = quiet_stream () } in
  with_server ~config (fun _srv port ->
      with_client port (fun ca ->
          with_client port (fun cb ->
              let sa = okr (Client.open_stream ca ~algo:"FLB" ~procs:2) in
              let sb = okr (Client.open_stream cb ~algo:"FLB" ~procs:2) in
              ignore (okr (Client.add_tasks ca ~stream:sa ~comps:[| 1.0; 1.0 |]));
              ignore (okr (Client.add_edges ca ~stream:sa ~edges:[| (0, 1, 1.0) |]));
              ignore (okr (Client.add_tasks cb ~stream:sb ~comps:[| 2.0; 2.0 |]));
              ignore (okr (Client.add_edges cb ~stream:sb ~edges:[| (0, 1, 1.0) |]));
              let fa = okr (Client.seal_stream ca ~stream:sa) in
              check_bool "A final" true fa.Client.final;
              (* B's placements were computed in that same round *)
              let pb = okr (Client.poll_stream cb ~stream:sb) in
              let fb = okr (Client.seal_stream cb ~stream:sb) in
              check_bool "B final" true fb.Client.final;
              let tasks p =
                Array.to_list (Array.map (fun (t, _, _) -> t) p.Client.placements)
              in
              Alcotest.(check (list int))
                "A fully placed, nothing dropped" [ 0; 1 ]
                (List.sort compare (tasks fa));
              Alcotest.(check (list int))
                "B fully placed, nothing dropped" [ 0; 1 ]
                (List.sort compare (tasks pb @ tasks fb));
              (* the shared round really did merge both streams *)
              match Client.get_metrics ca with
              | Ok m ->
                check_bool "stream_batch_streams reports 2" true
                  (contains m "stream_batch_streams 2")
              | Error msg -> Alcotest.fail msg)))

let test_server_stream_structured_errors () =
  (* Malformed appends answer structured errors on a live connection,
     and a rejected append does not kill the stream. batch_tasks = 2
     forces a dispatch mid-stream so the edge-into-dispatched rejection
     is reachable over the wire. *)
  let config = { Server.default_config with stream = quiet_stream ~batch_tasks:2 () } in
  with_server ~config (fun _srv port ->
      with_client port (fun c ->
          (match Client.poll_stream c ~stream:999 with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "poll of an unknown stream succeeded");
          let stream = okr (Client.open_stream c ~algo:"FLB" ~procs:2) in
          ignore (okr (Client.add_tasks c ~stream ~comps:[| 1.0; 1.0 |]));
          (match Client.add_edges c ~stream ~edges:[| (0, 0, 1.0) |] with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "self edge accepted");
          (match Client.add_edges c ~stream ~edges:[| (0, 5, 1.0) |] with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "unknown endpoint accepted");
          (* the stream survives the rejections; this append crosses the
             2-task threshold and dispatches tasks 0 and 1 *)
          let p = okr (Client.add_edges c ~stream ~edges:[| (0, 1, 1.0) |]) in
          check_int "threshold round dispatched the prefix" 2
            (Array.length p.Client.placements);
          ignore (okr (Client.add_tasks c ~stream ~comps:[| 1.0 |]));
          (* an edge INTO a dispatched task is rejected: its placement
             was already announced and cannot be revised *)
          (match Client.add_edges c ~stream ~edges:[| (2, 1, 1.0) |] with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "edge into a dispatched task accepted");
          (* an edge FROM a dispatched task is the normal rolling case *)
          ignore (okr (Client.add_edges c ~stream ~edges:[| (0, 2, 1.0) |]));
          let final = okr (Client.seal_stream c ~stream) in
          check_bool "final despite rejections" true final.Client.final;
          check_bool "took at least two rounds" true (final.Client.round >= 2);
          (* the connection survives all of the above *)
          Alcotest.(check (result unit string)) "still serving" (Ok ())
            (Client.ping c)))

let suite =
  [
    Alcotest.test_case "wire: malformed payloads rejected" `Quick test_wire_malformed;
    Alcotest.test_case "wire: framing" `Quick test_wire_framing;
    Alcotest.test_case "cache: LRU capacity-1 stress" `Quick test_cache_lru;
    Alcotest.test_case "cache: eviction follows access order" `Quick
      test_cache_access_order;
    Alcotest.test_case "cache: key construction" `Quick test_cache_key;
    Alcotest.test_case "cache: processor mask keys distinct entries" `Quick
      test_cache_key_mask;
    Alcotest.test_case "cache: graph digest is stable" `Quick test_cache_digest;
    Alcotest.test_case "pool: bounded queue rejects, drains on shutdown" `Quick
      test_pool_rejects_and_drains;
    Alcotest.test_case "pool: contains raising jobs" `Quick
      test_pool_contains_exceptions;
    Alcotest.test_case "server: end to end on fig1" `Quick test_server_end_to_end;
    Alcotest.test_case "server: cache hit is byte-identical" `Quick
      test_server_cache_hit_byte_identical;
    Alcotest.test_case "server: stats snapshot" `Quick test_server_stats;
    Alcotest.test_case "server: load probe" `Quick test_server_get_load;
    Alcotest.test_case "client: I/O deadline on a mute peer" `Quick
      test_client_io_timeout;
    Alcotest.test_case "server: trace id minted and echoed" `Quick
      test_server_trace_id_echo;
    Alcotest.test_case "server: request tracing spans" `Quick
      test_server_request_tracing;
    Alcotest.test_case "server: structured errors" `Quick
      test_server_structured_errors;
    Alcotest.test_case "server: garbage payload" `Quick
      test_server_rejects_raw_garbage;
    Alcotest.test_case "server: truncated frame" `Quick test_server_truncated_frame;
    Alcotest.test_case "server: oversized frame" `Quick test_server_oversized_frame;
    Alcotest.test_case "server: admission control sheds load" `Quick
      test_server_admission_control;
    Alcotest.test_case "server: queueing deadline" `Quick test_server_queue_deadline;
    Alcotest.test_case "server: graceful shutdown" `Quick
      test_server_graceful_shutdown;
    Alcotest.test_case "server: drain finishes work and exits" `Quick
      test_server_drain;
    Alcotest.test_case "stream: sealed stream matches one-shot" `Quick
      test_server_stream_matches_one_shot;
    Alcotest.test_case "stream: rounds bypass the cache" `Quick
      test_server_stream_cache_bypass;
    Alcotest.test_case "stream: two clients batch into one round" `Quick
      test_server_stream_two_clients_batched;
    Alcotest.test_case "stream: structured append errors" `Quick
      test_server_stream_structured_errors;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite_wire
