(* The sharded serving tier: consistent-hash ring, shard balancer, and
   the router end to end — replication, hot/cold routing, failover under
   refused connections, stalled backends and mid-request kills. *)

open! Flb_taskgraph
open Testutil
module Wire = Flb_service.Wire
module Cache = Flb_service.Cache
module Server = Flb_service.Server
module Client = Flb_service.Client
module Ring = Flb_router.Ring
module Backend = Flb_router.Backend
module Balancer = Flb_router.Balancer
module Gossip = Flb_router.Gossip
module Router = Flb_router.Router

(* --- ring --- *)

let test_ring_basics () =
  check_raises_invalid "vnodes 0" (fun () -> ignore (Ring.create ~vnodes:0 [ "a" ]));
  let empty = Ring.create [] in
  check_int "empty size" 0 (Ring.size empty);
  check_bool "empty lookup" true (Ring.lookup empty ~n:3 "k" = []);
  check_bool "empty primary" true (Ring.primary empty "k" = None);
  let ring = Ring.create [ "b"; "a"; "c"; "a" ] in
  check_int "duplicates collapse" 3 (Ring.size ring);
  Alcotest.(check (list string)) "members sorted" [ "a"; "b"; "c" ]
    (Ring.members ring);
  (* lookups are deterministic, distinct, bounded and start at the
     primary *)
  for i = 0 to 20 do
    let key = Printf.sprintf "key-%d" i in
    let two = Ring.lookup ring ~n:2 key in
    check_int "two distinct replicas" 2 (List.length (List.sort_uniq compare two));
    check_bool "primary heads the replica list" true
      (Ring.primary ring key = Some (List.hd two));
    check_bool "over-asking returns everyone" true
      (List.sort compare (Ring.lookup ring ~n:10 key) = [ "a"; "b"; "c" ])
  done;
  (* a second identically-built ring agrees on every assignment *)
  let ring2 = Ring.create [ "a"; "b"; "c" ] in
  for i = 0 to 50 do
    let key = Printf.sprintf "agree-%d" i in
    check_bool "rings agree across constructions" true
      (Ring.lookup ring ~n:2 key = Ring.lookup ring2 ~n:2 key)
  done;
  (* add/remove are no-ops for present/absent members *)
  check_bool "add existing is identity" true
    (Ring.members (Ring.add ring "b") = Ring.members ring);
  check_bool "remove absent is identity" true
    (Ring.members (Ring.remove ring "zz") = Ring.members ring)

(* The consistency property the router rides on (ISSUE satellite): one
   more backend remaps only the keys that now land on it — about
   1/(N+1) of them — and removing it restores every assignment. *)
let qsuite_ring =
  [
    qtest ~count:60 "add remaps ~K/N keys to the newcomer; remove restores"
      (QCheck.make
         ~print:(fun (n, salt) -> Printf.sprintf "n=%d salt=%d" n salt)
         QCheck.Gen.(pair (int_range 2 8) (int_range 0 10_000)))
      (fun (n, salt) ->
        let members = List.init n (fun i -> Printf.sprintf "b%d-%d" salt i) in
        let keys = List.init 200 (fun i -> Printf.sprintf "key-%d-%d" salt i) in
        let newcomer = Printf.sprintf "b%d-new" salt in
        let ring = Ring.create members in
        let ring' = Ring.add ring newcomer in
        let changed =
          List.filter (fun k -> Ring.primary ring k <> Ring.primary ring' k) keys
        in
        (* every remapped key moved TO the newcomer, nowhere else *)
        List.for_all (fun k -> Ring.primary ring' k = Some newcomer) changed
        (* and not many of them: fair share is K/(N+1); allow 2.5x + slack
           for vnode placement variance (deterministic given MD5) *)
        && List.length changed <= (5 * List.length keys / (2 * (n + 1))) + 5
        &&
        let restored = Ring.remove ring' newcomer in
        Ring.members restored = Ring.members ring
        && List.for_all
             (fun k -> Ring.primary restored k = Ring.primary ring k)
             keys);
  ]

(* --- balancer --- *)

let mk_backends ports = List.map (fun p -> Backend.create ~port:p ()) ports

let test_balancer_candidates () =
  let backends = mk_backends [ 7001; 7002; 7003 ] in
  let ids = List.map Backend.id backends in
  let ring = Ring.create ids in
  let bal =
    Balancer.create ~ring ~replication:2 ~split_factor:2 ~backends
  in
  let key = "some-shard-key" in
  let cands = Balancer.candidates bal key ~hot:false in
  check_int "replication-wide" 2 (List.length cands);
  check_bool "cold keys go primary-first" true
    (Ring.primary ring key = Some (Backend.id (List.hd cands)));
  (* a Down primary is filtered out *)
  Backend.set_status (List.hd cands) Backend.Down;
  let up = Balancer.candidates bal key ~hot:false in
  check_int "down replica filtered" 1 (List.length up);
  check_bool "survivor is up" true (Backend.status (List.hd up) = Backend.Up);
  (* everything down: fall back to the unfiltered set so calls decide *)
  List.iter (fun b -> Backend.set_status b Backend.Down) backends;
  check_int "all-down falls back to the full set" 2
    (List.length (Balancer.candidates bal key ~hot:false));
  List.iter (fun b -> Backend.set_status b Backend.Up) backends;
  (* validation *)
  check_raises_invalid "replication 0" (fun () ->
      ignore (Balancer.create ~ring ~replication:0 ~split_factor:1 ~backends));
  check_raises_invalid "ring member without backend" (fun () ->
      ignore
        (Balancer.create
           ~ring:(Ring.add ring "ghost:1")
           ~replication:1 ~split_factor:1 ~backends))

let test_balancer_window_and_split () =
  let backends = mk_backends [ 7101; 7102; 7103 ] in
  let ring = Ring.create (List.map Backend.id backends) in
  let bal = Balancer.create ~ring ~replication:1 ~split_factor:2 ~backends in
  check_int "first sight is cold" 0 (Balancer.note bal "k1");
  check_int "second sight is hot" 1 (Balancer.note bal "k1");
  check_int "other shards unaffected" 0 (Balancer.note bal "k2");
  check_int "shards tracked" 2 (Balancer.shards_tracked bal);
  (* saturate k1: with one shard owning the whole window, tick must
     split it, widening its replica set from 1 to 2 *)
  for _ = 1 to 60 do
    ignore (Balancer.note bal "k1")
  done;
  check_bool "not split before tick" false (Balancer.is_split bal "k1");
  check_int "unsplit width" 1 (List.length (Balancer.candidates bal "k1" ~hot:true));
  Balancer.tick bal;
  check_bool "saturated shard splits" true (Balancer.is_split bal "k1");
  check_bool "quiet shard does not" false (Balancer.is_split bal "k2");
  check_int "split widens the replica set" 2
    (List.length (Balancer.candidates bal "k1" ~hot:true));
  (* the window decays: a few quiet ticks un-split the shard *)
  Balancer.tick bal;
  Balancer.tick bal;
  Balancer.tick bal;
  check_bool "split decays with traffic" false (Balancer.is_split bal "k1")

let test_balancer_decide_split () =
  let d = Balancer.decide_split in
  check_bool "hot shard over fair share splits" true
    (d ~count:60 ~total:60 ~num_backends:3 ~split_factor:2);
  check_bool "below 2x fair share stays" false
    (d ~count:10 ~total:60 ~num_backends:3 ~split_factor:2);
  check_bool "tiny windows never split" false
    (d ~count:20 ~total:20 ~num_backends:3 ~split_factor:2);
  check_bool "split_factor 1 cannot widen" false
    (d ~count:60 ~total:60 ~num_backends:3 ~split_factor:1);
  check_bool "single backend cannot widen" false
    (d ~count:60 ~total:60 ~num_backends:1 ~split_factor:2)

let test_backend_parse_addr () =
  check_bool "host:port" true
    (Backend.parse_addr "10.0.0.1:7440" = Ok ("10.0.0.1", 7440));
  check_bool "bare port means loopback" true
    (Backend.parse_addr "7440" = Ok ("127.0.0.1", 7440));
  check_bool "bad port rejected" true
    (match Backend.parse_addr "host:notaport" with Error _ -> true | Ok _ -> false);
  check_bool "empty host rejected" true
    (match Backend.parse_addr ":7440" with Error _ -> true | Ok _ -> false)

(* --- router helpers --- *)

let fig1_text () = Serial.to_string (Example.fig1 ())

(* A TCP port that refuses connections: bind, read the number, close. *)
let dead_port () =
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let p =
    match Unix.getsockname s with Unix.ADDR_INET (_, p) -> p | _ -> 0
  in
  Unix.close s;
  p

let with_servers n f =
  let servers =
    List.init n (fun _ ->
        Server.start { Server.default_config with host = "127.0.0.1"; port = 0 })
  in
  Fun.protect
    ~finally:(fun () -> List.iter Server.stop servers)
    (fun () -> f servers)

(* Router on an ephemeral port, health thread off so tests stay
   deterministic (probes are driven explicitly where needed). *)
let with_router ?(replication = 2) ?(split_factor = 2) ?(policy = Router.Hash)
    ?(connect_timeout_s = 0.5) ?(call_timeout_s = 5.0) ?(fail_threshold = 2)
    ?(peers = []) ?(hedge = Router.Hedge_off) backends f =
  let router =
    Router.start
      {
        Router.default_config with
        host = "127.0.0.1";
        port = 0;
        backends;
        peers;
        replication;
        split_factor;
        policy;
        connect_timeout_s;
        call_timeout_s;
        fail_threshold;
        hedge;
        health_period_s = 0.0;
        gossip_period_s = 0.0;
      }
  in
  Fun.protect
    ~finally:(fun () -> Router.stop router)
    (fun () -> f router (Router.port router))

let with_client port f =
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* (makespan, cache_hit) of a response that must be Scheduled *)
let expect_scheduled = function
  | Ok (Wire.Scheduled { makespan; cache_hit; _ }) -> (makespan, cache_hit)
  | Ok Wire.Overloaded -> Alcotest.fail "Overloaded instead of Scheduled"
  | Ok (Wire.Error { message; _ }) -> Alcotest.failf "error response: %s" message
  | Ok _ -> Alcotest.fail "unexpected response"
  | Error msg -> Alcotest.failf "transport error: %s" msg

(* A graph whose shard primary (in a ring identical to the router's) is
   [want] — this is what makes the failover tests deterministic: the
   faulty backend IS the first candidate, so success proves failover. *)
let graph_with_primary ~ids ~want ~procs =
  let ring = Ring.create ids in
  let rec go seed =
    if seed > 500 then Alcotest.fail "no graph maps to the wanted backend"
    else
      let g =
        build_dag
          { layers = 3; max_width = 3; edge_probability = 0.5; ccr = 1.0; seed }
      in
      let key = Router.shard_key ~digest:(Cache.digest g) ~algo:"FLB" ~procs in
      if Ring.primary ring key = Some want then Serial.to_string g else go (seed + 1)
  in
  go 0

(* --- router: happy path --- *)

let test_router_end_to_end () =
  with_servers 2 (fun servers ->
      let backends =
        List.map (fun s -> ("127.0.0.1", Server.port s)) servers
      in
      with_router backends (fun router port ->
          with_client port (fun c ->
              Alcotest.(check (result unit string)) "ping" (Ok ()) (Client.ping c);
              let makespan, hit =
                expect_scheduled
                  (Client.schedule c ~graph:(fig1_text ()) ~algo:"FLB" ~procs:2)
              in
              check_float "fig1 makespan through the router"
                Example.fig1_schedule_length makespan;
              check_bool "first request misses" false hit;
              (* hot path: same shard, no load skew — the primary serves
                 again and its cache hits *)
              let makespan2, hit2 =
                expect_scheduled
                  (Client.schedule c ~graph:(fig1_text ()) ~algo:"FLB" ~procs:2)
              in
              check_bool "repeat hits the warmed replica" true hit2;
              check_float "hit returns the same makespan"
                Example.fig1_schedule_length makespan2;
              (* local answers: load, stats, metrics *)
              (match Client.get_load c with
              | Ok l ->
                check_int "router counted both schedules" 2 l.Wire.scheduled_total
              | Error msg -> Alcotest.fail msg);
              (match Client.get_stats c ~format:Wire.Stats_json with
              | Ok s ->
                List.iter
                  (fun key ->
                    check_bool (Printf.sprintf "stats carry %S" key) true
                      (Test_service.contains s (Printf.sprintf "%S" key)))
                  [ "role"; "backends"; "replication"; "shards_tracked" ]
              | Error msg -> Alcotest.fail msg);
              (match Client.get_metrics c with
              | Ok text ->
                List.iter
                  (fun m ->
                    check_bool (Printf.sprintf "exposition carries %s" m) true
                      (Test_service.contains text m))
                  [
                    "router_requests_total";
                    "router_scheduled_total";
                    "router_failovers_total";
                    "router_backends_up";
                  ]
              | Error msg -> Alcotest.fail msg));
          (* both backends answered probes; per-shard state tracked *)
          check_int "both backends probe up" 2 (Router.probe_backends router);
          check_bool "balancer saw the shard" true
            (Balancer.shards_tracked (Router.balancer router) >= 1)))

let test_router_invalid_graph_answered_locally () =
  (* No live backend at all: parse errors must still be answered with a
     structured Invalid_graph, proving the router fails fast locally. *)
  with_router ~connect_timeout_s:0.2
    [ ("127.0.0.1", dead_port ()) ]
    (fun _router port ->
      with_client port (fun c ->
          match Client.schedule c ~graph:"not a graph" ~algo:"FLB" ~procs:2 with
          | Ok (Wire.Error e) ->
            Alcotest.(check string)
              "invalid graph"
              (Wire.error_code_to_string Wire.Invalid_graph)
              (Wire.error_code_to_string e.code)
          | Ok _ -> Alcotest.fail "parse error was not reported"
          | Error msg -> Alcotest.failf "transport error: %s" msg))

(* --- router: failure injection --- *)

let test_router_failover_refused_connection () =
  with_servers 1 (fun servers ->
      let live = Server.port (List.hd servers) in
      let dead = dead_port () in
      (* dead backend first in config order; replication 2 covers both *)
      let backends = [ ("127.0.0.1", dead); ("127.0.0.1", live) ] in
      let ids = [ Printf.sprintf "127.0.0.1:%d" dead;
                  Printf.sprintf "127.0.0.1:%d" live ] in
      let graph =
        graph_with_primary ~ids ~want:(Printf.sprintf "127.0.0.1:%d" dead)
          ~procs:2
      in
      with_router ~connect_timeout_s:0.3 ~fail_threshold:1 backends
        (fun router port ->
          with_client port (fun c ->
              let makespan, _ =
                expect_scheduled (Client.schedule c ~graph ~algo:"FLB" ~procs:2)
              in
              check_bool "schedule is real work" true (makespan > 0.0);
              (* the dead primary was actually tried and demoted *)
              let dead_b =
                List.find
                  (fun b -> Backend.port b = dead)
                  (Router.backends router)
              in
              check_bool "dead backend recorded the failure" true
                (Backend.failures dead_b >= 1);
              check_bool "dead backend demoted" true
                (Backend.status dead_b = Backend.Down);
              (* follow-ups keep succeeding without it *)
              let _, hit2 =
                expect_scheduled (Client.schedule c ~graph ~algo:"FLB" ~procs:2)
              in
              check_bool "retry hits the survivor's cache" true hit2)))

(* A wire-speaking fake backend: answers Ping, misbehaves on Schedule. *)
type fake_behavior = Stall_on_schedule | Close_on_schedule

let start_fake behavior =
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lsock 8;
  let port =
    match Unix.getsockname lsock with Unix.ADDR_INET (_, p) -> p | _ -> 0
  in
  let stop = Atomic.make false in
  let handle fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let rec loop () =
      match Wire.read_frame ic with
      | Error _ -> ()
      | Ok payload -> (
        match Wire.decode_request payload with
        | Ok (h, Wire.Ping) ->
          Wire.write_frame oc
            (Wire.encode_response ~trace_id:h.Wire.trace_id Wire.Pong);
          loop ()
        | Ok (_, Wire.Schedule _) -> (
          match behavior with
          | Stall_on_schedule ->
            (* hold the request open past the router's deadline *)
            while not (Atomic.get stop) do
              Thread.delay 0.02
            done
          | Close_on_schedule ->
            (* die mid-request: drop the connection without answering *)
            ())
        | Ok _ | Error _ -> loop ())
    in
    (try loop () with _ -> ());
    close_out_noerr oc;
    close_in_noerr ic
  in
  let acceptor =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          match Unix.select [ lsock ] [] [] 0.05 with
          | [], _, _ -> ()
          | _ -> (
            match Unix.accept lsock with
            | fd, _ -> ignore (Thread.create handle fd)
            | exception _ -> ())
          | exception _ -> ()
        done)
      ()
  in
  let shutdown () =
    Atomic.set stop true;
    (try Thread.join acceptor with _ -> ());
    try Unix.close lsock with _ -> ()
  in
  (port, shutdown)

let run_fake_failover behavior check_elapsed =
  let fake_port, stop_fake = start_fake behavior in
  Fun.protect ~finally:stop_fake (fun () ->
      with_servers 1 (fun servers ->
          let live = Server.port (List.hd servers) in
          let backends = [ ("127.0.0.1", fake_port); ("127.0.0.1", live) ] in
          let ids = [ Printf.sprintf "127.0.0.1:%d" fake_port;
                      Printf.sprintf "127.0.0.1:%d" live ] in
          let graph =
            graph_with_primary ~ids
              ~want:(Printf.sprintf "127.0.0.1:%d" fake_port)
              ~procs:2
          in
          with_router ~call_timeout_s:0.4 backends (fun router port ->
              with_client port (fun c ->
                  let t0 = Unix.gettimeofday () in
                  let makespan, _ =
                    expect_scheduled
                      (Client.schedule c ~graph ~algo:"FLB" ~procs:2)
                  in
                  let elapsed = Unix.gettimeofday () -. t0 in
                  check_bool "schedule is real work" true (makespan > 0.0);
                  check_elapsed elapsed;
                  let fake_b =
                    List.find
                      (fun b -> Backend.port b = fake_port)
                      (Router.backends router)
                  in
                  check_bool "faulty backend recorded the failure" true
                    (Backend.failures fake_b >= 1)))))

let test_router_failover_stalled_backend () =
  (* the fake answers Ping but never Schedule: only the per-call I/O
     deadline can unstick the router *)
  run_fake_failover Stall_on_schedule (fun elapsed ->
      check_bool "waited for the deadline, not forever" true
        (elapsed >= 0.3 && elapsed < 5.0))

let test_router_failover_killed_mid_request () =
  (* the fake reads the request then drops the connection *)
  run_fake_failover Close_on_schedule (fun elapsed ->
      check_bool "failed over promptly" true (elapsed < 5.0))

let test_router_all_backends_dead () =
  (* nobody to serve: a structured Overloaded, never a hang or a raw
     exception *)
  with_router ~connect_timeout_s:0.2
    [ ("127.0.0.1", dead_port ()); ("127.0.0.1", dead_port ()) ]
    (fun _router port ->
      with_client port (fun c ->
          let t0 = Unix.gettimeofday () in
          (match Client.schedule c ~graph:(fig1_text ()) ~algo:"FLB" ~procs:2 with
          | Ok Wire.Overloaded -> ()
          | Ok _ -> Alcotest.fail "dead fleet answered a schedule"
          | Error msg -> Alcotest.failf "transport error instead of Overloaded: %s" msg);
          check_bool "failed fast" true (Unix.gettimeofday () -. t0 < 5.0);
          (* the router itself is still healthy *)
          Alcotest.(check (result unit string)) "still serving" (Ok ())
            (Client.ping c)))

let test_router_round_robin_policy () =
  with_servers 2 (fun servers ->
      let backends =
        List.map (fun s -> ("127.0.0.1", Server.port s)) servers
      in
      with_router ~policy:Router.Round_robin backends (fun router port ->
          with_client port (fun c ->
              for _ = 1 to 4 do
                ignore
                  (expect_scheduled
                     (Client.schedule c ~graph:(fig1_text ()) ~algo:"FLB"
                        ~procs:2))
              done);
          (* rotation spreads identical requests over both backends *)
          List.iter
            (fun b ->
              check_int
                (Printf.sprintf "backend %s served its share" (Backend.id b))
                2 (Backend.requests b))
            (Router.backends router)))

(* --- backend: anti-flap hysteresis --- *)

let test_backend_hysteresis () =
  let b = Backend.create ~port:7999 ~fail_threshold:3 () in
  check_bool "starts up" true (Backend.status b = Backend.Up);
  Backend.mark_failed b "boom";
  check_bool "one failure stays up" true (Backend.status b = Backend.Up);
  Backend.mark_failed b "boom";
  check_bool "below threshold stays up" true (Backend.status b = Backend.Up);
  check_int "streak counted" 2 (Backend.consecutive_failures b);
  Backend.mark_failed b "boom";
  check_bool "threshold demotes" true (Backend.status b = Backend.Down);
  (* recovery: one success revives and resets the streak *)
  Backend.mark_ok b;
  check_bool "success revives" true (Backend.status b = Backend.Up);
  check_int "streak reset on success" 0 (Backend.consecutive_failures b);
  (* flapping never demotes: successes interleaved under the threshold *)
  Backend.mark_failed b "flap";
  Backend.mark_failed b "flap";
  Backend.mark_ok b;
  Backend.mark_failed b "flap";
  Backend.mark_failed b "flap";
  check_bool "interleaved successes prevent demotion" true
    (Backend.status b = Backend.Up);
  (* draining is sticky: a successful call must not promote it back *)
  Backend.set_status b Backend.Draining;
  Backend.mark_ok b;
  check_bool "success does not undo draining" true
    (Backend.status b = Backend.Draining);
  check_raises_invalid "threshold 0 rejected" (fun () ->
      ignore (Backend.create ~port:1 ~fail_threshold:0 ()))

let test_router_hysteresis_over_probes () =
  (* one dead backend, threshold 2: the first failed probe keeps it in
     rotation, the second demotes it *)
  with_router ~connect_timeout_s:0.2 ~fail_threshold:2
    [ ("127.0.0.1", dead_port ()) ]
    (fun router _port ->
      let b = List.hd (Router.backends router) in
      ignore (Router.probe_backends router);
      check_bool "one failed probe keeps it up" true
        (Backend.status b = Backend.Up);
      ignore (Router.probe_backends router);
      check_bool "second failed probe demotes" true
        (Backend.status b = Backend.Down))

let test_balancer_draining_preference () =
  let backends = mk_backends [ 7201; 7202 ] in
  let ring = Ring.create (List.map Backend.id backends) in
  let bal = Balancer.create ~ring ~replication:2 ~split_factor:2 ~backends in
  let key = "k" in
  let b1 = List.nth backends 0 and b2 = List.nth backends 1 in
  Backend.set_status b1 Backend.Draining;
  let cands = Balancer.candidates bal key ~hot:false in
  check_int "draining filtered while an up replica exists" 1 (List.length cands);
  check_bool "survivor is the up replica" true
    (Backend.id (List.hd cands) = Backend.id b2);
  (* no Up replica left: draining ones are preferred over down *)
  Backend.set_status b2 Backend.Down;
  let cands = Balancer.candidates bal key ~hot:false in
  check_bool "draining preferred over down" true
    (cands <> [] && List.for_all (fun b -> Backend.status b = Backend.Draining) cands);
  (* everything down: unfiltered fallback, as before *)
  Backend.set_status b1 Backend.Down;
  check_int "all-down falls back to the full set" 2
    (List.length (Balancer.candidates bal key ~hot:false))

(* --- gossip --- *)

let test_gossip_observe_merge () =
  let g1 = Gossip.create ~backends:[ "a"; "b" ] in
  let g2 = Gossip.create ~backends:[ "a"; "b" ] in
  check_bool "starts up" true (Gossip.status_of g1 "a" = Some Wire.Peer_up);
  check_bool "observation changes belief" true
    (Gossip.observe g1 ~backend:"a" Wire.Peer_down);
  check_bool "re-observation is free" false
    (Gossip.observe g1 ~backend:"a" Wire.Peer_down);
  check_bool "epoch bumped" true (Gossip.epoch_of g1 "a" = Some 1);
  (* the peer adopts the fresher epoch and reports the change *)
  let changed = Gossip.merge g2 (Gossip.digest g1) in
  check_bool "merge reports the change" true
    (List.mem ("a", Wire.Peer_down) changed);
  check_bool "peer adopted down" true
    (Gossip.status_of g2 "a" = Some Wire.Peer_down);
  (* a fresher first-hand observation outvotes the stale digest *)
  ignore (Gossip.observe g2 ~backend:"a" Wire.Peer_up);
  check_bool "stale digest changes nothing" true
    (Gossip.merge g2 (Gossip.digest g1) = []);
  check_bool "first-hand up sticks" true
    (Gossip.status_of g2 "a" = Some Wire.Peer_up);
  check_bool "epoch never moved backwards" true (Gossip.epoch_of g2 "a" = Some 2);
  (* splits: re-announcing an unchanged local view does not bump *)
  Gossip.observe_splits g1 [ "s1" ];
  Gossip.observe_splits g1 [ "s1" ];
  ignore (Gossip.merge g2 (Gossip.digest g1));
  Alcotest.(check (list string)) "peer adopted the split set" [ "s1" ]
    (Gossip.splits g2);
  check_bool "merge counters advance" true
    (Gossip.exchanges g2 = 3 && Gossip.merges g2 >= 2)

(* The convergence property the ISSUE pins down: N replicas with
   disjoint local observations hold byte-identical (status, epoch,
   split-set) state after at most N-1 symmetric exchange sweeps along a
   line of peers, and no epoch ever moves backwards. *)
let qsuite_gossip =
  [
    qtest ~count:60 "gossip: N replicas converge in ≤ N-1 rounds"
      (QCheck.make
         ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
         QCheck.Gen.(pair (int_range 2 6) (int_range 0 100_000)))
      (fun (n, seed) ->
        let backends = List.init 4 (fun i -> Printf.sprintf "b%d" i) in
        let routers = Array.init n (fun _ -> Gossip.create ~backends) in
        let st = Random.State.make [| seed |] in
        let statuses = [| Wire.Peer_up; Wire.Peer_draining; Wire.Peer_down |] in
        (* disjoint first-hand observations, plus per-replica split views *)
        Array.iteri
          (fun i g ->
            List.iter
              (fun b ->
                if Random.State.int st 3 = 0 then
                  ignore
                    (Gossip.observe g ~backend:b
                       statuses.(Random.State.int st 3)))
              backends;
            if Random.State.bool st then
              Gossip.observe_splits g [ Printf.sprintf "shard-%d" i ])
          routers;
        let epochs g =
          List.map (fun b -> Option.value ~default:0 (Gossip.epoch_of g b)) backends
        in
        let before = Array.map epochs routers in
        let exchange a b =
          (* the wire protocol: send a digest, the peer merges and
             replies post-merge, the sender merges that back *)
          ignore (Gossip.merge b (Gossip.digest a));
          ignore (Gossip.merge a (Gossip.digest b))
        in
        for _round = 1 to n - 1 do
          for i = 0 to n - 2 do
            exchange routers.(i) routers.(i + 1)
          done
        done;
        let d0 = Gossip.digest routers.(0) in
        Array.for_all
          (fun g -> compare (Gossip.digest g) d0 = 0)
          routers
        && Array.for_all2
             (fun g b0 -> List.for_all2 (fun e e0 -> e >= e0) (epochs g) b0)
             routers before);
  ]

let test_router_gossip_end_to_end () =
  (* two live routers over the same fleet: r1 sees a backend die
     first-hand; one forced exchange makes r2 flip its own handle *)
  with_servers 1 (fun servers ->
      let live = Server.port (List.hd servers) in
      let dead = dead_port () in
      let backends = [ ("127.0.0.1", live); ("127.0.0.1", dead) ] in
      with_router ~fail_threshold:1 backends (fun r2 port2 ->
          with_router ~fail_threshold:1 ~connect_timeout_s:0.3
            ~peers:[ ("127.0.0.1", port2) ]
            backends
            (fun r1 _port1 ->
              let dead_id = Printf.sprintf "127.0.0.1:%d" dead in
              let b2 =
                List.find (fun b -> Backend.id b = dead_id) (Router.backends r2)
              in
              ignore (Router.probe_backends r1);
              check_bool "r2 still believes up" true
                (Backend.status b2 = Backend.Up);
              Router.gossip_now r1;
              check_bool "r2 adopted down via gossip" true
                (Backend.status b2 = Backend.Down);
              check_bool "replica digests agree" true
                (compare
                   (Gossip.digest (Router.gossip r1))
                   (Gossip.digest (Router.gossip r2))
                 = 0);
              check_bool "exchange counted on both sides" true
                (Gossip.exchanges (Router.gossip r1) >= 1
                && Gossip.exchanges (Router.gossip r2) >= 1))))

(* --- drain --- *)

let test_router_drain () =
  with_servers 2 (fun servers ->
      let ports = List.map Server.port servers in
      let backends = List.map (fun p -> ("127.0.0.1", p)) ports in
      with_router backends (fun router port ->
          with_client port (fun c ->
              ignore
                (expect_scheduled
                   (Client.schedule c ~graph:(fig1_text ()) ~algo:"FLB" ~procs:2));
              (* draining an unknown member is a structured error *)
              (match Client.drain ~backend:"no.such.host:1" c with
              | Error _ -> ()
              | Ok () -> Alcotest.fail "unknown backend drained");
              let target = List.hd (Router.backends router) in
              let addr = Backend.id target in
              (match Client.drain ~backend:addr c with
              | Ok () -> ()
              | Error msg -> Alcotest.fail msg);
              check_bool "backend flipped to draining" true
                (Backend.status target = Backend.Draining);
              check_bool "drain observed in gossip" true
                (Gossip.status_of (Router.gossip router) addr
                = Some Wire.Peer_draining);
              (* new requests keep succeeding on the survivor *)
              ignore
                (expect_scheduled
                   (Client.schedule c ~graph:(fig1_text ()) ~algo:"FLB" ~procs:2));
              (* the drained daemon finishes its in-flight work and
                 leaves: its port stops accepting *)
              let drained_port = Backend.port target in
              let deadline = Unix.gettimeofday () +. 5.0 in
              let rec wait_gone () =
                match Client.connect ~connect_timeout_s:0.2 ~port:drained_port () with
                | exception _ -> ()
                | probe ->
                  Client.close probe;
                  if Unix.gettimeofday () > deadline then
                    Alcotest.fail "drained daemon never exited"
                  else begin
                    Thread.delay 0.1;
                    wait_gone ()
                  end
              in
              wait_gone ())))

(* --- hedging --- *)

let test_router_hedging () =
  (* primary stalls forever on Schedule; the hedge fires after 80 ms and
     the second replica answers, far inside the 1 s per-call deadline *)
  let fake_port, stop_fake = start_fake Stall_on_schedule in
  Fun.protect ~finally:stop_fake (fun () ->
      with_servers 1 (fun servers ->
          let live = Server.port (List.hd servers) in
          let backends = [ ("127.0.0.1", fake_port); ("127.0.0.1", live) ] in
          let ids =
            [
              Printf.sprintf "127.0.0.1:%d" fake_port;
              Printf.sprintf "127.0.0.1:%d" live;
            ]
          in
          let graph =
            graph_with_primary ~ids
              ~want:(Printf.sprintf "127.0.0.1:%d" fake_port)
              ~procs:2
          in
          with_router ~call_timeout_s:1.0 ~fail_threshold:10
            ~hedge:(Router.Hedge_fixed_ms 80.0) backends (fun router port ->
              with_client port (fun c ->
                  (* cold request: primary-first, no hedge — the per-call
                     deadline fails it over and marks the shard hot *)
                  ignore (expect_scheduled (Client.schedule c ~graph ~algo:"FLB" ~procs:2));
                  (* hot request: the stalled primary still heads the
                     candidate list, so only the hedge can finish early *)
                  let t0 = Unix.gettimeofday () in
                  let makespan, _ =
                    expect_scheduled (Client.schedule c ~graph ~algo:"FLB" ~procs:2)
                  in
                  let elapsed = Unix.gettimeofday () -. t0 in
                  check_bool "hedged schedule is real work" true (makespan > 0.0);
                  check_bool "answered well before the primary's deadline" true
                    (elapsed < 0.8);
                  match Client.get_metrics c with
                  | Ok m ->
                    check_bool "hedge counted" true
                      (Test_service.contains m "router_hedge_total 1");
                    check_bool "hedge win counted" true
                      (Test_service.contains m "router_hedge_wins 1")
                  | Error msg -> Alcotest.fail msg);
              ignore router)))

let suite =
  [
    Alcotest.test_case "ring: determinism, distinctness, membership" `Quick
      test_ring_basics;
    Alcotest.test_case "balancer: replica candidates and health" `Quick
      test_balancer_candidates;
    Alcotest.test_case "balancer: traffic window and shard splitting" `Quick
      test_balancer_window_and_split;
    Alcotest.test_case "balancer: split rule" `Quick test_balancer_decide_split;
    Alcotest.test_case "backend: address parsing" `Quick test_backend_parse_addr;
    Alcotest.test_case "router: end to end on fig1" `Quick test_router_end_to_end;
    Alcotest.test_case "router: invalid graph answered locally" `Quick
      test_router_invalid_graph_answered_locally;
    Alcotest.test_case "router: failover on refused connection" `Quick
      test_router_failover_refused_connection;
    Alcotest.test_case "router: failover on stalled backend" `Quick
      test_router_failover_stalled_backend;
    Alcotest.test_case "router: failover on mid-request kill" `Quick
      test_router_failover_killed_mid_request;
    Alcotest.test_case "router: dead fleet answers Overloaded" `Quick
      test_router_all_backends_dead;
    Alcotest.test_case "router: round-robin baseline" `Quick
      test_router_round_robin_policy;
    Alcotest.test_case "backend: anti-flap hysteresis" `Quick
      test_backend_hysteresis;
    Alcotest.test_case "router: hysteresis over failed probes" `Quick
      test_router_hysteresis_over_probes;
    Alcotest.test_case "balancer: draining replicas leave rotation" `Quick
      test_balancer_draining_preference;
    Alcotest.test_case "gossip: observe, merge, epochs" `Quick
      test_gossip_observe_merge;
    Alcotest.test_case "router: gossip flips a peer's backend" `Quick
      test_router_gossip_end_to_end;
    Alcotest.test_case "router: drain empties a backend gracefully" `Quick
      test_router_drain;
    Alcotest.test_case "router: hedged request beats a stalled primary" `Quick
      test_router_hedging;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite_ring
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite_gossip
