open! Flb_taskgraph
open! Flb_platform
open! Flb_core
open Testutil

let machine2 () = Machine.clique ~num_procs:2

(* --- The golden test: the paper's Table 1, row for row. --- *)

type expected_row = {
  ep : (int * (int * float * float * float) list) list;
      (** proc -> [(task, EMT, blevel, LMT)] in queue order *)
  non_ep : (int * float) list;
  action : int * int * float * float;  (** task, proc, start, finish *)
}

let table1 : expected_row list =
  [
    { ep = []; non_ep = [ (0, 0.) ]; action = (0, 0, 0., 2.) };
    {
      ep = [ (0, [ (3, 2., 12., 3.); (1, 2., 11., 3.); (2, 2., 9., 6.) ]) ];
      non_ep = [];
      action = (3, 0, 2., 5.);
    };
    {
      ep = [ (0, [ (2, 2., 9., 6.) ]) ];
      non_ep = [ (1, 3.) ];
      action = (1, 1, 3., 5.);
    };
    {
      ep = [ (0, [ (2, 2., 9., 6.); (5, 6., 8., 6.) ]); (1, [ (4, 5., 6., 7.) ]) ];
      non_ep = [];
      action = (2, 0, 5., 7.);
    };
    {
      ep = [ (0, [ (6, 7., 6., 8.) ]); (1, [ (4, 5., 6., 7.) ]) ];
      non_ep = [ (5, 6.) ];
      action = (4, 1, 5., 8.);
    };
    {
      ep = [ (0, [ (6, 7., 6., 8.) ]) ];
      non_ep = [ (5, 6.) ];
      action = (5, 0, 7., 10.);
    };
    { ep = []; non_ep = [ (6, 8.) ]; action = (6, 1, 8., 10.) };
    { ep = [ (0, [ (7, 12., 2., 13.) ]) ]; non_ep = []; action = (7, 0, 12., 14.) };
  ]

let test_table1_golden () =
  let _, rows = Flb_trace.collect (Example.fig1 ()) (machine2 ()) in
  check_int "eight iterations" (List.length table1) (List.length rows);
  List.iteri
    (fun i (expected, (row : Flb_trace.row)) ->
      let context = Printf.sprintf "row %d" i in
      let t, p, st, ft = expected.action in
      check_int (context ^ " task") t row.Flb_trace.task;
      check_int (context ^ " proc") p row.Flb_trace.proc;
      check_float (context ^ " start") st row.Flb_trace.start;
      check_float (context ^ " finish") ft row.Flb_trace.finish;
      Alcotest.(check (list (pair int (float 1e-9))))
        (context ^ " non-EP list") expected.non_ep row.Flb_trace.non_ep;
      let actual_ep =
        List.map
          (fun (proc, entries) ->
            ( proc,
              List.map
                (fun (e : Flb.ep_entry) -> (e.Flb.task, e.Flb.emt, e.Flb.blevel, e.Flb.lmt))
                entries ))
          row.Flb_trace.ep_lists
      in
      Alcotest.(
        check
          (list
             (pair int
                (list (pair int (triple (float 1e-9) (float 1e-9) (float 1e-9)))))))
        (context ^ " EP lists")
        (List.map
           (fun (p, l) -> (p, List.map (fun (t, a, b, c) -> (t, (a, b, c))) l))
           expected.ep)
        (List.map
           (fun (p, l) -> (p, List.map (fun (t, a, b, c) -> (t, (a, b, c))) l))
           actual_ep))
    (List.combine table1 rows)

let test_fig1_schedule () =
  let s = Flb.run (Example.fig1 ()) (machine2 ()) in
  check_float "makespan 14" Example.fig1_schedule_length (Schedule.makespan s);
  check_int "t0 on p0" 0 (Schedule.proc s 0);
  check_int "t4 on p1" 1 (Schedule.proc s 4);
  check_float "t7 starts at 12" 12.0 (Schedule.start_time s 7);
  match Schedule.validate s with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es)

let test_render_fig1_contains () =
  let rendered = Flb_trace.render_fig1 () in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec loop i = i + n <= h && (String.sub hay i n = needle || loop (i + 1)) in
    loop 0
  in
  List.iter
    (fun cell ->
      check_bool (Printf.sprintf "contains %S" cell) true (contains cell rendered))
    [ "t3[2;12/3]"; "t1[2;11/3]"; "t2[2;9/6]"; "t7[12;2/13]"; "t7 -> p0 [12-14]" ]

(* --- Theorem 3 at run time: FLB's choice always achieves the brute-force
   minimum EST over every (ready task, processor) pair. --- *)

let test_oracle_fig1 () =
  match Flb_check.run_checked (Example.fig1 ()) (machine2 ()) with
  | Ok _ -> ()
  | Error vs ->
    Alcotest.failf "%d violations; first: %s" (List.length vs)
      (Format.asprintf "%a" Flb_check.pp_violation (List.hd vs))

let test_oracle_workloads () =
  List.iter
    (fun (w : Flb_experiments.Workload_suite.workload) ->
      let g = Flb_experiments.Workload_suite.instance w ~ccr:1.0 ~seed:1 in
      List.iter
        (fun p ->
          match Flb_check.run_checked g (Machine.clique ~num_procs:p) with
          | Ok _ -> ()
          | Error vs ->
            Alcotest.failf "%s on %d procs: %d violations" w.name p (List.length vs))
        [ 1; 2; 4 ])
    (Flb_experiments.Workload_suite.fig3_suite ~tasks:150 ())

(* --- Degenerate and edge-case graphs --- *)

let test_single_task () =
  let g = Taskgraph.of_arrays ~comp:[| 5.0 |] ~edges:[||] in
  let s = Flb.run g (machine2 ()) in
  check_float "makespan" 5.0 (Schedule.makespan s);
  check_float "starts at 0" 0.0 (Schedule.start_time s 0)

let test_empty_graph () =
  let g = Taskgraph.of_arrays ~comp:[||] ~edges:[||] in
  let s = Flb.run g (machine2 ()) in
  check_float "empty makespan" 0.0 (Schedule.makespan s);
  check_bool "complete" true (Schedule.is_complete s)

let test_single_proc () =
  let g = Example.fig1 () in
  let s = Flb.run g (Machine.clique ~num_procs:1) in
  check_float "serialized" (Taskgraph.total_comp g) (Schedule.makespan s)

let test_zero_costs () =
  (* all-zero weights must not crash or divide by zero inside FLB *)
  let g =
    Taskgraph.of_arrays ~comp:[| 0.0; 0.0; 0.0 |]
      ~edges:[| (0, 1, 0.0); (0, 2, 0.0) |]
  in
  let s = Flb.run g (machine2 ()) in
  check_float "zero makespan" 0.0 (Schedule.makespan s);
  match Schedule.validate s with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es)

let test_independent_tasks_balance () =
  (* 8 equal independent tasks on 4 processors: perfect balance, makespan
     2 — the "load balancing" behaviour the name promises *)
  let g = Flb_workloads.Shapes.independent ~tasks:8 in
  let s = Flb.run g (Machine.clique ~num_procs:4) in
  check_float "balanced makespan" 2.0 (Schedule.makespan s);
  check_float "imbalance 1" 1.0 (Metrics.load_imbalance s)

let test_options_ablation_valid () =
  let g = Example.fig1 () in
  List.iter
    (fun options ->
      let s = Flb.run ~options g (machine2 ()) in
      match Schedule.validate s with
      | Ok () -> ()
      | Error es -> Alcotest.failf "ablation invalid: %s" (String.concat "; " es))
    [
      { Flb.tie_break = Flb.Task_id; prefer_non_ep_on_tie = true };
      { Flb.tie_break = Flb.Bottom_level; prefer_non_ep_on_tie = false };
      { Flb.tie_break = Flb.Task_id; prefer_non_ep_on_tie = false };
    ]

let test_determinism () =
  let g = Flb_experiments.Workload_suite.instance
      (Flb_experiments.Workload_suite.lu ~tasks:200 ()) ~ccr:2.0 ~seed:3
  in
  let m = Machine.clique ~num_procs:4 in
  let s1 = Flb.run g m and s2 = Flb.run g m in
  for t = 0 to Taskgraph.num_tasks g - 1 do
    check_int "same proc" (Schedule.proc s1 t) (Schedule.proc s2 t);
    check_float "same start" (Schedule.start_time s1 t) (Schedule.start_time s2 t)
  done

let test_stats_fig1 () =
  let g = Example.fig1 () in
  let s, stats = Flb.run_with_stats g (machine2 ()) in
  check_float "same schedule" Example.fig1_schedule_length (Schedule.makespan s);
  check_int "iterations = V" 8 stats.Flb.iterations;
  check_bool "peak ready at most width" true (stats.Flb.peak_ready <= Width.exact g);
  check_bool "some queue activity" true (stats.Flb.task_queue_ops > 0);
  (* the trace shows exactly three demotions: t1 (after t3 runs), t5
     (after t2) and t6 (after t5 pushes PRT(p0) past LMT(t6) = 8) *)
  check_int "demotions" 3 stats.Flb.demotions

let qsuite =
  [
    qtest ~count:100 "operation counters respect the complexity bound"
      arb_scheduling_case (fun (p, procs) ->
        let g = build_dag p in
        let v = Taskgraph.num_tasks g in
        let _, stats = Flb.run_with_stats g (Machine.clique ~num_procs:procs) in
        (* every task: at most 2 insertions at readiness, 3 ops on its one
           possible demotion, and 2 removals when scheduled *)
        stats.Flb.iterations = v
        && stats.Flb.task_queue_ops <= 7 * v
        && stats.Flb.demotions <= v
        && stats.Flb.peak_ready <= Width.exact g);
    qtest ~count:100 "probe counters match run_with_stats and stay O(V)"
      arb_scheduling_case (fun (p, procs) ->
        let g = build_dag p in
        let v = Taskgraph.num_tasks g in
        let m = Machine.clique ~num_procs:procs in
        let probe = Flb_obs.Probe.create ~timed:false "FLB" in
        let _ = Flb.run ~probe g m in
        let r = Flb_obs.Probe.report probe in
        let _, stats = Flb.run_with_stats g m in
        (* the external probe must see exactly what the built-in stats see,
           and both must respect the paper's O(V) queue-work bound *)
        r.Flb_obs.Probe.iterations = v
        && r.Flb_obs.Probe.task_queue_ops = stats.Flb.task_queue_ops
        && r.Flb_obs.Probe.demotions = stats.Flb.demotions
        && r.Flb_obs.Probe.peak_ready = stats.Flb.peak_ready
        && r.Flb_obs.Probe.task_queue_ops <= 7 * v
        && r.Flb_obs.Probe.peak_ready <= Width.exact g);
    qtest ~count:150 "Theorem 3 holds on random DAGs" arb_scheduling_case
      (fun (p, procs) ->
        let g = build_dag p in
        match Flb_check.run_checked g (Machine.clique ~num_procs:procs) with
        | Ok _ -> true
        | Error _ -> false);
    qtest ~count:150 "FLB schedules are always valid" arb_scheduling_case
      (fun (p, procs) ->
        let g = build_dag p in
        let s = Flb.run g (Machine.clique ~num_procs:procs) in
        Schedule.is_complete s && Schedule.validate s = Ok ());
    qtest ~count:100 "Theorem 3 holds under every tie-break option"
      arb_scheduling_case (fun (p, procs) ->
        let g = build_dag p in
        List.for_all
          (fun options ->
            match
              Flb_check.run_checked ~options g (Machine.clique ~num_procs:procs)
            with
            | Ok _ -> true
            | Error _ -> false)
          [
            { Flb.tie_break = Flb.Task_id; prefer_non_ep_on_tie = true };
            { Flb.tie_break = Flb.Bottom_level; prefer_non_ep_on_tie = false };
          ]);
    (* The full-communication critical path is NOT a lower bound (local
       edges are free), but the computation-only critical path is:
       communication can be zeroed, computation cannot. *)
    qtest ~count:100 "makespan at least the computation-only critical path"
      arb_scheduling_case (fun (p, procs) ->
        let g = build_dag p in
        let m = Machine.clique ~num_procs:procs in
        let len = Schedule.makespan (Flb.run g m) in
        let comp_cp = Array.fold_left Float.max 0.0 (Levels.blevel_comp_only g) in
        len >= comp_cp -. 1e-9);
  ]

let suite =
  [
    Alcotest.test_case "Table 1 golden trace" `Quick test_table1_golden;
    Alcotest.test_case "fig1 schedule" `Quick test_fig1_schedule;
    Alcotest.test_case "rendered trace cells" `Quick test_render_fig1_contains;
    Alcotest.test_case "oracle on fig1" `Quick test_oracle_fig1;
    Alcotest.test_case "oracle on paper workloads" `Quick test_oracle_workloads;
    Alcotest.test_case "single task" `Quick test_single_task;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "single processor" `Quick test_single_proc;
    Alcotest.test_case "zero costs" `Quick test_zero_costs;
    Alcotest.test_case "independent tasks balance" `Quick test_independent_tasks_balance;
    Alcotest.test_case "ablation options stay valid" `Quick test_options_ablation_valid;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "stats on fig1" `Quick test_stats_fig1;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
