open! Flb_taskgraph
open! Flb_platform
open Testutil

let machine2 () = Machine.clique ~num_procs:2

let test_machine () =
  let m = machine2 () in
  check_int "procs" 2 (Machine.num_procs m);
  Alcotest.(check (list int)) "proc ids" [ 0; 1 ] (Machine.procs m);
  check_float "remote comm" 3.0 (Machine.comm_time m ~src:0 ~dst:1 ~cost:3.0);
  check_float "local comm" 0.0 (Machine.comm_time m ~src:1 ~dst:1 ~cost:3.0);
  check_raises_invalid "no procs" (fun () -> ignore (Machine.clique ~num_procs:0));
  check_raises_invalid "unknown proc" (fun () ->
      ignore (Machine.comm_time m ~src:0 ~dst:2 ~cost:1.0))

(* Walk the paper's Fig. 1 by hand through the first three assignments of
   Table 1 and check every quantity of Section 2 along the way. *)
let test_fig1_quantities () =
  let g = Example.fig1 () in
  let s = Schedule.create g (machine2 ()) in
  check_bool "t0 ready" true (Schedule.is_ready s 0);
  check_bool "t1 not ready" false (Schedule.is_ready s 1);
  check_float "entry lmt" 0.0 (Schedule.lmt s 0);
  Alcotest.(check (option int)) "entry has no EP" None (Schedule.enabling_proc s 0);
  check_bool "entry is non-EP type" false (Schedule.is_ep_type s 0);

  Schedule.assign s 0 ~proc:0 ~start:0.0;
  check_float "prt p0" 2.0 (Schedule.prt s 0);
  check_float "prt p1" 0.0 (Schedule.prt s 1);
  Alcotest.(check (list int)) "ready now" [ 1; 2; 3 ] (Schedule.ready_tasks s);

  (* Table 1 row 2: t3[EMT 2, LMT 3], t1[EMT 2, LMT 3], t2[EMT 2, LMT 6],
     all EP type on p0. *)
  check_float "lmt t3" 3.0 (Schedule.lmt s 3);
  check_float "lmt t2" 6.0 (Schedule.lmt s 2);
  Alcotest.(check (option int)) "EP of t3" (Some 0) (Schedule.enabling_proc s 3);
  check_float "emt t3 on p0" 2.0 (Schedule.emt s 3 ~proc:0);
  check_float "emt t3 on p1" 3.0 (Schedule.emt s 3 ~proc:1);
  check_float "est t3 on p0" 2.0 (Schedule.est s 3 ~proc:0);
  check_float "est t3 on p1" 3.0 (Schedule.est s 3 ~proc:1);
  check_bool "t3 EP type" true (Schedule.is_ep_type s 3);

  Schedule.assign s 3 ~proc:0 ~start:2.0;
  (* After t3, PRT(p0) = 5 > LMT(t1) = 3: t1 becomes non-EP type. *)
  check_bool "t1 no longer EP type" false (Schedule.is_ep_type s 1);
  check_bool "t2 still EP type" true (Schedule.is_ep_type s 2);
  let proc, est = Schedule.min_est_over_procs s 1 in
  check_int "t1 best proc" 1 proc;
  check_float "t1 best est" 3.0 est;

  Schedule.assign s 1 ~proc:1 ~start:3.0;
  check_float "prt p1 after t1" 5.0 (Schedule.prt s 1);
  check_float "finish t1" 5.0 (Schedule.finish_time s 1);
  check_int "num scheduled" 3 (Schedule.num_scheduled s);
  check_bool "not complete" false (Schedule.is_complete s)

let test_assign_errors () =
  let g = Example.fig1 () in
  let s = Schedule.create g (machine2 ()) in
  check_raises_invalid "not ready" (fun () -> Schedule.assign s 7 ~proc:0 ~start:0.0);
  Schedule.assign s 0 ~proc:0 ~start:0.0;
  check_raises_invalid "double assign" (fun () ->
      Schedule.assign s 0 ~proc:0 ~start:5.0);
  check_raises_invalid "bad proc" (fun () -> Schedule.assign s 1 ~proc:9 ~start:0.0);
  check_raises_invalid "negative start" (fun () ->
      Schedule.assign s 1 ~proc:0 ~start:(-1.0));
  check_raises_invalid "lmt needs preds scheduled" (fun () ->
      ignore (Schedule.lmt s 7));
  check_raises_invalid "start_time of unscheduled" (fun () ->
      ignore (Schedule.start_time s 1))

let test_validate_accepts_good () =
  let g = Example.fig1 () in
  let s = Flb_core.Flb.run g (machine2 ()) in
  (match Schedule.validate s with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es));
  check_float "makespan" Example.fig1_schedule_length (Schedule.makespan s)

let test_validate_catches_incomplete () =
  let g = small_graph () in
  let s = Schedule.create g (machine2 ()) in
  Schedule.assign s 0 ~proc:0 ~start:0.0;
  match Schedule.validate s with
  | Ok () -> Alcotest.fail "incomplete schedule accepted"
  | Error es -> check_bool "mentions unscheduled" true (List.length es >= 3)

let test_validate_catches_comm_violation () =
  let g = small_graph () in
  let s = Schedule.create g (machine2 ()) in
  Schedule.assign s 0 ~proc:0 ~start:0.0;
  (* t2 on p1 needs comm 4 from t0 (arrival 2 + 4 = 6); starting at 3 is
     infeasible *)
  Schedule.assign s 2 ~proc:1 ~start:3.0;
  Schedule.assign s 1 ~proc:0 ~start:2.0;
  Schedule.assign s 3 ~proc:0 ~start:7.0;
  match Schedule.validate s with
  | Ok () -> Alcotest.fail "message-violating schedule accepted"
  | Error es ->
    check_bool "edge violation reported" true
      (List.exists (fun e -> String.length e > 0) es)

let test_validate_catches_overlap () =
  let g = Taskgraph.of_arrays ~comp:[| 2.0; 2.0 |] ~edges:[||] in
  let s = Schedule.create g (machine2 ()) in
  Schedule.assign s 0 ~proc:0 ~start:0.0;
  Schedule.assign s 1 ~proc:0 ~start:1.0;
  match Schedule.validate s with
  | Ok () -> Alcotest.fail "overlapping schedule accepted"
  | Error _ -> ()

let test_metrics () =
  let g = small_graph () in
  let m = machine2 () in
  let s = Flb_schedulers.Naive.serial g m in
  check_float "serial makespan = total comp" 7.0 (Schedule.makespan s);
  check_float "speedup 1" 1.0 (Metrics.speedup s);
  check_float "nsl vs self" 1.0 (Metrics.nsl s ~reference:(Schedule.makespan s));
  check_float "busy p0" 7.0 (Metrics.busy_time s ~proc:0);
  check_float "busy p1" 0.0 (Metrics.busy_time s ~proc:1);
  check_float "imbalance (all on one proc)" 2.0 (Metrics.load_imbalance s);
  check_float "efficiency" 0.5 (Metrics.efficiency s);
  check_floatish "idle fraction" 0.5 (Metrics.idle_fraction s);
  check_float "cp bound" (Levels.cp_length g) (Metrics.cp_lower_bound s);
  check_raises_invalid "nsl bad reference" (fun () ->
      ignore (Metrics.nsl s ~reference:0.0))

let test_metrics_edge_cases () =
  (* Any single-processor schedule is fully packed: imbalance exactly 1,
     idle fraction exactly 0 (not a tiny negative from rounding). *)
  let g = small_graph () in
  let s1 = Flb_schedulers.Naive.serial g (Machine.clique ~num_procs:1) in
  check_float "single proc imbalance" 1.0 (Metrics.load_imbalance s1);
  check_float "single proc idle" 0.0 (Metrics.idle_fraction s1);
  check_float "single proc speedup" 1.0 (Metrics.speedup s1);
  (* Two equal independent tasks on two processors: no idle area at all. *)
  let g2 = Taskgraph.of_arrays ~comp:[| 2.0; 2.0 |] ~edges:[||] in
  let s2 = Schedule.create g2 (machine2 ()) in
  Schedule.assign s2 0 ~proc:0 ~start:0.0;
  Schedule.assign s2 1 ~proc:1 ~start:0.0;
  check_float "packed imbalance" 1.0 (Metrics.load_imbalance s2);
  check_float "packed idle" 0.0 (Metrics.idle_fraction s2);
  (* Zero-work schedule: idle fraction is defined as 0, imbalance is not
     defined at all. *)
  let g0 = Taskgraph.of_arrays ~comp:[| 0.0 |] ~edges:[||] in
  let s0 = Schedule.create g0 (machine2 ()) in
  Schedule.assign s0 0 ~proc:0 ~start:0.0;
  check_float "zero makespan idle" 0.0 (Metrics.idle_fraction s0);
  check_raises_invalid "no work imbalance" (fun () ->
      ignore (Metrics.load_imbalance s0))

let test_gantt () =
  let g = Example.fig1 () in
  let s = Flb_core.Flb.run g (machine2 ()) in
  let chart = Gantt.render s in
  check_bool "mentions p0" true (String.length chart > 0);
  let listing = Gantt.render_listing s in
  check_bool "lists t7" true
    (String.split_on_char '\n' listing |> List.exists (fun l -> String.length l > 0));
  (* the listing is sorted by start time: t0 first, t7 last *)
  let lines = String.split_on_char '\n' listing in
  check_bool "t0 first" true
    (match lines with _ :: first :: _ -> String.length first >= 2 && String.sub first 0 2 = "t0" | _ -> false)

let test_schedule_io_round_trip () =
  let g = Example.fig1 () in
  let m = machine2 () in
  let s = Flb_core.Flb.run g m in
  let s' = Schedule_io.of_string g m (Schedule_io.to_string s) in
  check_float "same makespan" (Schedule.makespan s) (Schedule.makespan s');
  for t = 0 to 7 do
    check_int "same proc" (Schedule.proc s t) (Schedule.proc s' t);
    check_float "same start" (Schedule.start_time s t) (Schedule.start_time s' t)
  done;
  Alcotest.(check (result unit (list string))) "still valid" (Ok ())
    (Schedule.validate s')

let test_schedule_io_errors () =
  let g = Example.fig1 () in
  let m = machine2 () in
  let expect input =
    match Schedule_io.of_string g m input with
    | exception Schedule_io.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" (String.escaped input)
  in
  expect "";
  expect "assign 0 0 0\n";
  expect "schedule 4 2\n" (* wrong task count *);
  expect "schedule 8 3\n" (* wrong proc count *);
  expect "schedule 8 2\nassign 0 0 0\n" (* missing assignments *);
  expect
    "schedule 8 2\nassign 0 0 0\nassign 0 1 0\nassign 1 0 0\nassign 2 0 0\n\
     assign 3 0 0\nassign 4 0 0\nassign 5 0 0\nassign 6 0 0\nassign 7 0 0\n"
    (* duplicate *);
  expect "schedule 8 2\nassign 0 9 0\n" (* bad proc *);
  expect "schedule 8 2\nassign 0 0 -1\n" (* negative start *);
  (* incomplete schedules cannot be saved *)
  let s = Schedule.create g m in
  check_raises_invalid "incomplete save" (fun () ->
      ignore (Schedule_io.to_string s))

let qsuite =
  [
    qtest ~count:100 "schedule files round-trip for every scheduler"
      arb_scheduling_case (fun (p, procs) ->
        let g = build_dag p in
        let m = Machine.clique ~num_procs:procs in
        let s = Flb_schedulers.Mcp.run g m in
        let s' = Schedule_io.of_string g m (Schedule_io.to_string s) in
        Schedule.makespan s = Schedule.makespan s'
        && List.for_all
             (fun t ->
               Schedule.proc s t = Schedule.proc s' t
               && Schedule.start_time s t = Schedule.start_time s' t)
             (List.init (Flb_taskgraph.Taskgraph.num_tasks g) Fun.id));
    qtest ~count:100 "est >= emt and est >= prt" arb_scheduling_case
      (fun (p, procs) ->
        let g = build_dag p in
        let m = Machine.clique ~num_procs:procs in
        let s = Schedule.create g m in
        (* schedule everything with FLB but probe ESTs along the way via
           an observer *)
        let ok = ref true in
        let observer sched (it : Flb_core.Flb.iteration) =
          let { Flb_core.Flb.task = t; proc = pr; est } = it.Flb_core.Flb.chosen in
          if est < Schedule.emt sched t ~proc:pr -. 1e-9 then ok := false;
          if est < Schedule.prt sched pr -. 1e-9 then ok := false
        in
        ignore (Flb_core.Flb.run ~observer g m);
        ignore s;
        !ok);
  ]

let suite =
  [
    Alcotest.test_case "machine model" `Quick test_machine;
    Alcotest.test_case "fig1 timing quantities" `Quick test_fig1_quantities;
    Alcotest.test_case "assign errors" `Quick test_assign_errors;
    Alcotest.test_case "validate accepts FLB result" `Quick test_validate_accepts_good;
    Alcotest.test_case "validate: incomplete" `Quick test_validate_catches_incomplete;
    Alcotest.test_case "validate: message violation" `Quick
      test_validate_catches_comm_violation;
    Alcotest.test_case "validate: overlap" `Quick test_validate_catches_overlap;
    Alcotest.test_case "metrics" `Quick test_metrics;
    Alcotest.test_case "metrics edge cases" `Quick test_metrics_edge_cases;
    Alcotest.test_case "gantt rendering" `Quick test_gantt;
    Alcotest.test_case "schedule io round trip" `Quick test_schedule_io_round_trip;
    Alcotest.test_case "schedule io errors" `Quick test_schedule_io_errors;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
