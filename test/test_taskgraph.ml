open! Flb_taskgraph
open Testutil

let test_builder_basics () =
  let g = small_graph () in
  check_int "tasks" 4 (Taskgraph.num_tasks g);
  check_int "edges" 4 (Taskgraph.num_edges g);
  check_float "comp" 3.0 (Taskgraph.comp g 1);
  check_int "out degree" 2 (Taskgraph.out_degree g 0);
  check_int "in degree" 2 (Taskgraph.in_degree g 3);
  Alcotest.(check (list int)) "entries" [ 0 ] (Taskgraph.entry_tasks g);
  Alcotest.(check (list int)) "exits" [ 3 ] (Taskgraph.exit_tasks g);
  check_bool "is_entry" true (Taskgraph.is_entry g 0);
  check_bool "is_exit" false (Taskgraph.is_exit g 1)

let test_comm_lookup () =
  let g = small_graph () in
  Alcotest.(check (option (float 0.0))) "edge cost" (Some 4.0)
    (Taskgraph.comm g ~src:0 ~dst:2);
  Alcotest.(check (option (float 0.0))) "absent edge" None
    (Taskgraph.comm g ~src:1 ~dst:2)

let test_aggregates () =
  let g = small_graph () in
  check_float "total comp" 7.0 (Taskgraph.total_comp g);
  check_float "total comm" 8.0 (Taskgraph.total_comm g);
  (* avg comm = 2, avg comp = 7/4 *)
  check_floatish "ccr" (2.0 /. (7.0 /. 4.0)) (Taskgraph.ccr g)

let test_builder_rejects_cycle () =
  let b = Taskgraph.Builder.create () in
  let a = Taskgraph.Builder.add_task b ~comp:1.0 in
  let c = Taskgraph.Builder.add_task b ~comp:1.0 in
  Taskgraph.Builder.add_edge b ~src:a ~dst:c ~comm:1.0;
  Taskgraph.Builder.add_edge b ~src:c ~dst:a ~comm:1.0;
  check_raises_invalid "cycle" (fun () -> ignore (Taskgraph.Builder.build b))

let test_builder_rejects_bad_edges () =
  let b = Taskgraph.Builder.create () in
  let a = Taskgraph.Builder.add_task b ~comp:1.0 in
  let c = Taskgraph.Builder.add_task b ~comp:1.0 in
  check_raises_invalid "self edge" (fun () ->
      Taskgraph.Builder.add_edge b ~src:a ~dst:a ~comm:1.0);
  check_raises_invalid "unknown dst" (fun () ->
      Taskgraph.Builder.add_edge b ~src:a ~dst:9 ~comm:1.0);
  check_raises_invalid "negative comm" (fun () ->
      Taskgraph.Builder.add_edge b ~src:a ~dst:c ~comm:(-1.0));
  check_raises_invalid "nan comm" (fun () ->
      Taskgraph.Builder.add_edge b ~src:a ~dst:c ~comm:Float.nan);
  Taskgraph.Builder.add_edge b ~src:a ~dst:c ~comm:1.0;
  check_raises_invalid "duplicate edge" (fun () ->
      Taskgraph.Builder.add_edge b ~src:a ~dst:c ~comm:2.0)

let test_builder_rejects_bad_tasks () =
  let b = Taskgraph.Builder.create () in
  check_raises_invalid "negative comp" (fun () ->
      ignore (Taskgraph.Builder.add_task b ~comp:(-2.0)));
  check_raises_invalid "infinite comp" (fun () ->
      ignore (Taskgraph.Builder.add_task b ~comp:Float.infinity))

let test_builder_single_use () =
  let b = Taskgraph.Builder.create () in
  ignore (Taskgraph.Builder.add_task b ~comp:1.0);
  ignore (Taskgraph.Builder.build b);
  check_raises_invalid "build twice" (fun () -> ignore (Taskgraph.Builder.build b));
  check_raises_invalid "add after build" (fun () ->
      ignore (Taskgraph.Builder.add_task b ~comp:1.0))

let test_empty_graph () =
  let g = Taskgraph.of_arrays ~comp:[||] ~edges:[||] in
  check_int "no tasks" 0 (Taskgraph.num_tasks g);
  check_raises_invalid "ccr of empty" (fun () -> ignore (Taskgraph.ccr g))

let test_unknown_task_errors () =
  let g = small_graph () in
  check_raises_invalid "comp of unknown" (fun () -> ignore (Taskgraph.comp g 99));
  check_raises_invalid "succs of negative" (fun () -> ignore (Taskgraph.succs g (-1)))

let test_printers () =
  let g = small_graph () in
  let short = Format.asprintf "%a" Taskgraph.pp g in
  check_bool "pp mentions counts" true
    (String.length short > 0
    &&
    let contains needle hay =
      let n = String.length needle and h = String.length hay in
      let rec loop i = i + n <= h && (String.sub hay i n = needle || loop (i + 1)) in
      loop 0
    in
    contains "4 tasks" short && contains "4 edges" short);
  let full = Format.asprintf "%a" Taskgraph.pp_full g in
  check_bool "pp_full lists every task" true
    (List.length (String.split_on_char 't' full) > 4)

let test_iter_edges_complete () =
  let g = small_graph () in
  let count = ref 0 and sum = ref 0.0 in
  Taskgraph.iter_edges (fun _ _ w -> incr count; sum := !sum +. w) g;
  check_int "edge count" 4 !count;
  check_float "weight sum" 8.0 !sum

(* Reference implementations over the legacy tuple-array adjacency only
   ([succs]/[preds]); the library versions stream the CSR arrays. The
   two representations must produce byte-identical results — same
   visiting order, same float accumulation order. *)
let ref_topo_order g =
  let n = Taskgraph.num_tasks g in
  let indeg = Array.init n (fun t -> Array.length (Taskgraph.preds g t)) in
  let module Iset = Set.Make (Int) in
  let frontier = ref Iset.empty in
  for t = 0 to n - 1 do
    if indeg.(t) = 0 then frontier := Iset.add t !frontier
  done;
  let out = Array.make n 0 in
  let filled = ref 0 in
  while not (Iset.is_empty !frontier) do
    let t = Iset.min_elt !frontier in
    frontier := Iset.remove t !frontier;
    out.(!filled) <- t;
    incr filled;
    Array.iter
      (fun (s, _) ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then frontier := Iset.add s !frontier)
      (Taskgraph.succs g t)
  done;
  out

let ref_blevel g =
  let n = Taskgraph.num_tasks g in
  let b = Array.make n 0.0 in
  let topo = ref_topo_order g in
  for i = n - 1 downto 0 do
    let t = topo.(i) in
    let best = ref 0.0 in
    Array.iter
      (fun (s, w) ->
        let len = w +. b.(s) in
        if len > !best then best := len)
      (Taskgraph.succs g t);
    b.(t) <- Taskgraph.comp g t +. !best
  done;
  b

let ref_tlevel g =
  let tl = Array.make (Taskgraph.num_tasks g) 0.0 in
  Array.iter
    (fun t ->
      Array.iter
        (fun (s, w) ->
          let len = tl.(t) +. Taskgraph.comp g t +. w in
          if len > tl.(s) then tl.(s) <- len)
        (Taskgraph.succs g t))
    (ref_topo_order g);
  tl

let qsuite =
  [
    qtest "CSR arrays and legacy tuple views agree" arb_dag_params (fun p ->
        let g = build_dag p in
        let n = Taskgraph.num_tasks g in
        let s_off = Taskgraph.Csr.succ_offsets g
        and s_id = Taskgraph.Csr.succ_targets g
        and s_w = Taskgraph.Csr.succ_weights g
        and p_off = Taskgraph.Csr.pred_offsets g
        and p_id = Taskgraph.Csr.pred_sources g
        and p_w = Taskgraph.Csr.pred_weights g in
        let ok = ref (Array.length s_off = n + 1 && Array.length p_off = n + 1) in
        let slice off id w t =
          Array.init (off.(t + 1) - off.(t)) (fun i ->
              (id.(off.(t) + i), w.(off.(t) + i)))
        in
        for t = 0 to n - 1 do
          if slice s_off s_id s_w t <> Taskgraph.succs g t then ok := false;
          if slice p_off p_id p_w t <> Taskgraph.preds g t then ok := false;
          let streamed = ref [] in
          Taskgraph.iter_succs g t (fun s w -> streamed := (s, w) :: !streamed);
          if Array.of_list (List.rev !streamed) <> Taskgraph.succs g t then
            ok := false;
          streamed := [];
          Taskgraph.iter_preds g t (fun s w -> streamed := (s, w) :: !streamed);
          if Array.of_list (List.rev !streamed) <> Taskgraph.preds g t then
            ok := false
        done;
        !ok);
    qtest "Topo and Levels are byte-identical across representations"
      arb_dag_params (fun p ->
        let g = build_dag p in
        ref_topo_order g = Topo.order g
        && ref_blevel g = Levels.blevel g
        && ref_tlevel g = Levels.tlevel g);
    qtest "random DAGs have consistent degrees" arb_dag_params (fun p ->
        let g = build_dag p in
        let out_sum = ref 0 and in_sum = ref 0 in
        for t = 0 to Taskgraph.num_tasks g - 1 do
          out_sum := !out_sum + Taskgraph.out_degree g t;
          in_sum := !in_sum + Taskgraph.in_degree g t
        done;
        !out_sum = Taskgraph.num_edges g && !in_sum = Taskgraph.num_edges g);
    qtest "pred/succ adjacency mirror" arb_dag_params (fun p ->
        let g = build_dag p in
        let ok = ref true in
        Taskgraph.iter_edges
          (fun src dst w ->
            if not (Array.exists (fun (s, w') -> s = src && w' = w) (Taskgraph.preds g dst))
            then ok := false)
          g;
        !ok);
    qtest "weights are non-negative and finite" arb_dag_params (fun p ->
        let g = build_dag p in
        let ok = ref true in
        for t = 0 to Taskgraph.num_tasks g - 1 do
          let c = Taskgraph.comp g t in
          if not (Float.is_finite c) || c < 0.0 then ok := false
        done;
        Taskgraph.iter_edges (fun _ _ w -> if w < 0.0 then ok := false) g;
        !ok);
  ]

let suite =
  [
    Alcotest.test_case "builder basics" `Quick test_builder_basics;
    Alcotest.test_case "comm lookup" `Quick test_comm_lookup;
    Alcotest.test_case "aggregates" `Quick test_aggregates;
    Alcotest.test_case "cycle rejected" `Quick test_builder_rejects_cycle;
    Alcotest.test_case "bad edges rejected" `Quick test_builder_rejects_bad_edges;
    Alcotest.test_case "bad tasks rejected" `Quick test_builder_rejects_bad_tasks;
    Alcotest.test_case "builder single use" `Quick test_builder_single_use;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "unknown task errors" `Quick test_unknown_task_errors;
    Alcotest.test_case "iter_edges complete" `Quick test_iter_edges_complete;
    Alcotest.test_case "printers" `Quick test_printers;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
