(* Allocation budget of the probe-less scheduler hot paths.

   The FLB and ETF runs below must allocate O(1) bytes per scheduled
   task beyond graph construction: queue state and schedule arrays are
   sized by V and P up front, keys live in unboxed float arrays, and the
   per-iteration loops stream the CSR edge arrays. The budgets are
   roughly 2x the figure measured on this graph at P = 8 — ~750 B/task
   for FLB (dominated by its 2P fixed-size per-processor queues divided
   by V) and ~140 B/task for ETF; a regression to boxed tuple keys,
   option-returning peeks or per-iteration records blows through them
   immediately — the pre-CSR code measured ~2.5 KB/task for FLB and
   ~38 KB/task for ETF on the same workloads. *)

open! Flb_taskgraph
open! Flb_platform

let graph =
  lazy
    (Flb_experiments.Workload_suite.instance
       (Flb_experiments.Workload_suite.stencil ~tasks:1000 ())
       ~ccr:1.0 ~seed:1)

let machine = Machine.clique ~num_procs:8

let bytes_per_task run =
  let g = Lazy.force graph in
  let n = float_of_int (Taskgraph.num_tasks g) in
  (* Warm-up run: faults in lazily materialized views and one-time
     state so the measured runs see only steady-state allocation. Then
     best-of-N: on OCaml 5 a [Gc.allocated_bytes] delta sporadically
     includes a ~900 KB runtime-internal lump, and the mutator's own
     allocation is deterministic, so the minimum is the clean figure. *)
  run g machine;
  let best = ref Float.infinity in
  for _ = 1 to 5 do
    let before = Gc.allocated_bytes () in
    run g machine;
    let after = Gc.allocated_bytes () in
    if after -. before < !best then best := after -. before
  done;
  !best /. n

let check_budget name budget measured =
  if measured > budget then
    Alcotest.failf
      "%s hot path allocates %.1f bytes/task (budget %.1f): a per-iteration \
       allocation crept back in"
      name measured budget

let test_flb_budget () =
  check_budget "FLB" 1600.0
    (bytes_per_task (fun g m ->
         ignore (Flb_core.Flb.run ~probe:Flb_obs.Probe.null g m)))

let test_etf_budget () =
  check_budget "ETF" 300.0
    (bytes_per_task (fun g m -> ignore (Flb_schedulers.Etf.run g m)))

let suite =
  [
    Alcotest.test_case "FLB allocates O(1) bytes per task" `Quick test_flb_budget;
    Alcotest.test_case "ETF allocates O(1) bytes per task" `Quick test_etf_budget;
  ]
