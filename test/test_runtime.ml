(* lib/runtime: real-domain execution engines, the deterministic virtual
   clock, the work-stealing deque, fault parsing, and the shared Workers
   lifecycle helper. The heart of the suite is the equivalence property:
   virtual-clock static execution reproduces the discrete-event simulator
   bit-for-bit, for every scheduler, on random DAGs. *)

open! Flb_taskgraph
open! Flb_platform
open Testutil
module R = Flb_runtime
module E = Flb_experiments

(* --- Deque --- *)

let test_deque_lifo_fifo () =
  let d = R.Deque.create () in
  check_bool "fresh empty" true (R.Deque.is_empty d);
  List.iter (R.Deque.push_back d) [ 1; 2; 3; 4 ];
  check_int "length" 4 (R.Deque.length d);
  check_int "owner pops LIFO" 4 (Option.get (R.Deque.pop_back d));
  check_int "thief takes FIFO" 1 (Option.get (R.Deque.take_front d));
  check_int "front again" 2 (Option.get (R.Deque.take_front d));
  check_int "back again" 3 (Option.get (R.Deque.pop_back d));
  check_bool "drained" true (R.Deque.is_empty d);
  check_bool "pop on empty" true (R.Deque.pop_back d = None);
  check_bool "take on empty" true (R.Deque.take_front d = None)

let test_deque_growth () =
  let d = R.Deque.create ~capacity:2 () in
  (* Interleave pushes and front-takes so the ring wraps while growing. *)
  for i = 0 to 99 do
    R.Deque.push_back d i;
    if i mod 3 = 0 then ignore (R.Deque.take_front d)
  done;
  let seen = ref [] in
  let rec drain () =
    match R.Deque.take_front d with
    | Some v ->
      seen := v :: !seen;
      drain ()
    | None -> ()
  in
  drain ();
  let seen = List.rev !seen in
  check_bool "FIFO order preserved across growth" true
    (List.sort_uniq compare seen = seen)

let test_deque_take_front_if () =
  let d = R.Deque.of_list [ 10; 11; 12 ] in
  check_bool "predicate false leaves the deque alone" true
    (R.Deque.take_front_if d (fun _ -> false) = None);
  check_int "nothing removed" 3 (R.Deque.length d);
  check_int "predicate true takes the front" 10
    (Option.get (R.Deque.take_front_if d (fun t -> t = 10)));
  check_bool "predicate sees the new front" true
    (R.Deque.take_front_if d (fun t -> t = 10) = None)

let drain_front d =
  let rec go acc =
    match R.Deque.take_front d with Some v -> go (v :: acc) | None -> List.rev acc
  in
  go []

let test_deque_steal_half () =
  let d = R.Deque.create () in
  check_bool "empty deque yields nothing" true (R.Deque.steal_half d = []);
  R.Deque.push_back d 7;
  check_bool "a singleton is stolen whole" true (R.Deque.steal_half d = [ 7 ]);
  check_bool "left empty" true (R.Deque.is_empty d);
  List.iter (R.Deque.push_back d) [ 1; 2; 3; 4; 5 ];
  check_bool "odd length: ceiling half off the front, oldest first" true
    (R.Deque.steal_half d = [ 1; 2; 3 ]);
  check_int "the floor half remains" 2 (R.Deque.length d);
  check_bool "even length: exactly half" true (R.Deque.steal_half d = [ 4 ]);
  check_bool "back end untouched throughout" true
    (R.Deque.pop_back d = Some 5 && R.Deque.is_empty d)

let test_deque_push_front_batch () =
  let d = R.Deque.of_list [ 8; 9 ] in
  R.Deque.push_front_batch d [];
  check_int "empty batch is a no-op" 2 (R.Deque.length d);
  R.Deque.push_front_batch d [ 5; 6; 7 ];
  check_int "batch counted" 5 (R.Deque.length d);
  check_bool "batch lands in order ahead of the old front" true
    (drain_front d = [ 5; 6; 7; 8; 9 ]);
  (* Growth path: batch larger than the remaining capacity. *)
  let d = R.Deque.create ~capacity:2 () in
  R.Deque.push_back d 100;
  R.Deque.push_front_batch d (List.init 50 Fun.id);
  check_int "grown to fit" 51 (R.Deque.length d);
  check_bool "old back is still the back" true (R.Deque.pop_back d = Some 100);
  (* Reset interaction: a reset deque forgets batch history entirely. *)
  R.Deque.reset d [ 1; 2; 3 ];
  check_int "reset length" 3 (R.Deque.length d);
  check_bool "reset contents only" true
    (R.Deque.steal_half d = [ 1; 2 ] && R.Deque.pop_back d = Some 3)

(* --- Fault specs --- *)

let test_fault_parse_roundtrip () =
  let spec_s = "slow:1:2.5,stall:0:3:4,kill:2:10" in
  match R.Fault.parse spec_s with
  | Error e -> Alcotest.failf "parse failed: %s" (R.Fault.error_to_string e)
  | Ok spec ->
    Alcotest.(check string) "round trip" spec_s (R.Fault.to_string spec);
    check_bool "empty string is no faults" true (R.Fault.parse "" = Ok R.Fault.none);
    check_bool "bad kind rejected" true (Result.is_error (R.Fault.parse "melt:0:1"));
    check_bool "negative time rejected" true
      (Result.is_error (R.Fault.parse "kill:0:-1"));
    check_bool "zero slow factor rejected" true
      (Result.is_error (R.Fault.parse "slow:0:0"));
    check_bool "validate catches out-of-range domain" true
      (Result.is_error (R.Fault.validate spec ~domains:2));
    check_bool "validate accepts in-range" true
      (R.Fault.validate spec ~domains:3 = Ok ())

let test_fault_decide () =
  match R.Fault.parse "slow:0:2,slow:0:3,stall:0:5:2,kill:0:20" with
  | Error e -> Alcotest.failf "parse failed: %s" (R.Fault.error_to_string e)
  | Ok spec ->
    let df = R.Fault.for_domain spec 0 in
    check_float "slowdowns multiply" 6.0 df.R.Fault.slowdown;
    check_float "kill time" 20.0 df.R.Fault.kill_at;
    (match R.Fault.decide df ~now:0.0 with
    | R.Fault.Proceed s -> check_float "proceed with slowdown" 6.0 s
    | _ -> Alcotest.fail "expected Proceed at t=0");
    (match R.Fault.decide df ~now:6.0 with
    | R.Fault.Stall_until u -> check_float "stall until at+dur" 7.0 u
    | _ -> Alcotest.fail "expected Stall_until inside the window");
    (match R.Fault.decide df ~now:25.0 with
    | R.Fault.Die -> ()
    | _ -> Alcotest.fail "expected Die past kill time");
    let clean = R.Fault.for_domain spec 1 in
    check_float "other domains unaffected" 1.0 clean.R.Fault.slowdown;
    check_bool "other domains never die" true (clean.R.Fault.kill_at = infinity)

(* --- Calibration --- *)

let test_calibrate () =
  let cal = R.Calibrate.calibrate ~spins:20_000 () in
  check_bool "ns/spin floored" true (R.Calibrate.ns_per_spin cal >= 0.01);
  check_bool "ns/spin finite" true (Float.is_finite (R.Calibrate.ns_per_spin cal));
  (* Burning a budget takes at least a recognizable fraction of it. *)
  let t0 = Unix.gettimeofday () in
  R.Calibrate.burn cal ~ns:2e6;
  let dt_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  check_bool "burn 2ms takes at least 0.2ms" true (dt_ns >= 2e5);
  R.Calibrate.burn R.Calibrate.instant ~ns:1e12;
  R.Calibrate.burn cal ~ns:(-5.0)
(* instant and negative burns return immediately *)

(* --- Workers --- *)

let test_workers () =
  let hits = Array.make 3 false in
  let w = Flb_prelude.Workers.spawn ~count:3 (fun i -> hits.(i) <- true) in
  check_int "count" 3 (Flb_prelude.Workers.count w);
  Flb_prelude.Workers.join w;
  check_bool "every worker ran with its index" true (Array.for_all Fun.id hits);
  Flb_prelude.Workers.join w;
  (* idempotent *)
  let seen = Atomic.make (-1) in
  let w =
    Flb_prelude.Workers.spawn ~count:2
      ~on_exn:(fun i _ -> Atomic.set seen i)
      (fun i -> if i = 1 then failwith "boom")
  in
  Flb_prelude.Workers.join w;
  check_int "exception contained and reported" 1 (Atomic.get seen);
  check_raises_invalid "count < 1" (fun () ->
      Flb_prelude.Workers.spawn ~count:0 (fun _ -> ()))

(* --- Engine config validation --- *)

let test_engine_validation () =
  let g = small_graph () in
  check_raises_invalid "domains < 1" (fun () ->
      R.Steal.run ~config:{ R.Engine.default_config with domains = 0 } g);
  check_raises_invalid "faults need unit_ns > 0" (fun () ->
      R.Steal.run
        ~config:
          {
            R.Engine.default_config with
            unit_ns = 0.0;
            faults = Result.get_ok (R.Fault.parse "kill:0:1");
          }
        g);
  check_raises_invalid "fault domain out of range" (fun () ->
      R.Steal.run
        ~config:
          {
            R.Engine.default_config with
            domains = 2;
            faults = Result.get_ok (R.Fault.parse "kill:5:1");
          }
        g);
  let machine = Machine.clique ~num_procs:2 in
  let sched = Schedule.create g machine in
  check_raises_invalid "incomplete schedule" (fun () ->
      R.Engine.plan_of_schedule sched);
  let full = E.Registry.flb.E.Registry.run g machine in
  check_raises_invalid "domain count must match the schedule" (fun () ->
      R.Static.run ~config:{ R.Engine.default_config with domains = 3 } full)

(* --- Virtual clock vs the discrete-event simulator --- *)

let check_bitwise_equal ~what expected got =
  Array.iteri
    (fun t e ->
      if Int64.bits_of_float e <> Int64.bits_of_float got.(t) then
        Alcotest.failf "%s: task %d: simulator %h vs virtual clock %h" what t e
          got.(t))
    expected

let test_virtual_static_fig1 () =
  let g = Example.fig1 () in
  let machine = Machine.clique ~num_procs:2 in
  let sched = E.Registry.flb.E.Registry.run g machine in
  check_float "fig1 FLB predicted makespan" 14.0 (Schedule.makespan sched);
  let v = R.Virtual_clock.run_static sched in
  match Flb_sim.Simulator.run sched with
  | Error _ -> Alcotest.fail "simulator failed to replay fig1"
  | Ok o ->
    check_bitwise_equal ~what:"start times" o.Flb_sim.Simulator.start
      v.R.Virtual_clock.start;
    check_bitwise_equal ~what:"finish times" o.Flb_sim.Simulator.finish
      v.R.Virtual_clock.finish;
    check_float "makespan" o.Flb_sim.Simulator.makespan v.R.Virtual_clock.makespan;
    check_float "virtual static fig1 makespan is the prediction" 14.0
      v.R.Virtual_clock.makespan

let prop_virtual_static_equals_simulator (p, procs) =
  let g = build_dag p in
  let machine = Machine.clique ~num_procs:procs in
  List.iter
    (fun (algo : E.Registry.t) ->
      let sched = algo.run g machine in
      match Flb_sim.Simulator.run sched with
      | Error _ ->
        QCheck.Test.fail_reportf "%s: simulator failed on %s" algo.name
          (show_dag_params p)
      | Ok o ->
        let v = R.Virtual_clock.run_static sched in
        Array.iteri
          (fun t e ->
            if
              Int64.bits_of_float e
              <> Int64.bits_of_float v.R.Virtual_clock.start.(t)
            then
              QCheck.Test.fail_reportf
                "%s: task %d starts at %h in the simulator, %h under the \
                 virtual clock (%s, P=%d)"
                algo.name t e
                v.R.Virtual_clock.start.(t)
                (show_dag_params p) procs)
          o.Flb_sim.Simulator.start)
    E.Registry.extended_set;
  true

let prop_steal_one_domain_is_sequential p =
  let g = build_dag p in
  let v = R.Virtual_clock.run_steal ~domains:1 g in
  let total = Taskgraph.total_comp g in
  check_int "one domain runs everything"
    (Taskgraph.num_tasks g)
    v.R.Virtual_clock.per_domain_tasks.(0);
  check_int "nothing to steal" 0 v.R.Virtual_clock.steals;
  (* Summation order differs (execution order vs task-id order), so the
     comparison is tolerance-based, not bitwise. *)
  Float.abs (v.R.Virtual_clock.makespan -. total)
  <= 1e-6 *. Float.max 1.0 (Float.abs total)

let prop_virtual_steal_valid (p, domains) =
  let g = build_dag p in
  let v = R.Virtual_clock.run_steal ~domains g in
  let n = Taskgraph.num_tasks g in
  (* Every task ran after its predecessors' finish (no causality hole). *)
  for t = 0 to n - 1 do
    Taskgraph.iter_preds g t (fun pd _ ->
        if v.R.Virtual_clock.start.(t) < v.R.Virtual_clock.finish.(pd) then
          QCheck.Test.fail_reportf "task %d started before predecessor %d finished"
            t pd)
  done;
  Array.fold_left ( + ) 0 v.R.Virtual_clock.per_domain_tasks = n

(* --- Virtual affinity: deterministic locality-aware stealing --- *)

let test_virtual_affinity_fig1 () =
  let g = Example.fig1 () in
  let machine = Machine.clique ~num_procs:2 in
  let sched = E.Registry.flb.E.Registry.run g machine in
  let v = R.Virtual_clock.run_affinity sched in
  let n = Taskgraph.num_tasks g in
  check_int "all tasks ran" n (Array.fold_left ( + ) 0 v.R.Virtual_clock.per_domain_tasks);
  check_int "every execution is a hit or a miss" n
    (v.R.Virtual_clock.hint_hits + v.R.Virtual_clock.hint_misses);
  for t = 0 to n - 1 do
    Taskgraph.iter_preds g t (fun pd _ ->
        check_bool
          (Printf.sprintf "task %d causal after %d" t pd)
          true
          (v.R.Virtual_clock.start.(t) >= v.R.Virtual_clock.finish.(pd)))
  done

let prop_affinity_one_domain_is_sequential p =
  let g = build_dag p in
  let sched = E.Registry.flb.E.Registry.run g (Machine.clique ~num_procs:1) in
  let v = R.Virtual_clock.run_affinity sched in
  let total = Taskgraph.total_comp g in
  check_int "one domain runs everything"
    (Taskgraph.num_tasks g)
    v.R.Virtual_clock.per_domain_tasks.(0);
  check_int "nothing to steal" 0 v.R.Virtual_clock.steals;
  check_int "every hint honored" (Taskgraph.num_tasks g) v.R.Virtual_clock.hint_hits;
  (* Summation order differs (execution order vs task-id order), so the
     comparison is tolerance-based, not bitwise. *)
  Float.abs (v.R.Virtual_clock.makespan -. total)
  <= 1e-6 *. Float.max 1.0 (Float.abs total)

let prop_affinity_deterministic (p, procs) =
  let g = build_dag p in
  let machine = Machine.clique ~num_procs:procs in
  List.iter
    (fun (algo : E.Registry.t) ->
      let sched = algo.run g machine in
      let a = R.Virtual_clock.run_affinity sched in
      let b = R.Virtual_clock.run_affinity sched in
      Array.iteri
        (fun t s ->
          if Int64.bits_of_float s <> Int64.bits_of_float b.R.Virtual_clock.start.(t)
          then
            QCheck.Test.fail_reportf
              "%s: task %d starts at %h on the first run, %h on the second \
               (%s, P=%d)"
              algo.name t s
              b.R.Virtual_clock.start.(t)
              (show_dag_params p) procs)
        a.R.Virtual_clock.start;
      if
        Int64.bits_of_float a.R.Virtual_clock.makespan
        <> Int64.bits_of_float b.R.Virtual_clock.makespan
        || a.R.Virtual_clock.steals <> b.R.Virtual_clock.steals
        || a.R.Virtual_clock.hint_hits <> b.R.Virtual_clock.hint_hits
        || a.R.Virtual_clock.exec_domain <> b.R.Virtual_clock.exec_domain
      then
        QCheck.Test.fail_reportf "%s: repeated runs disagree (%s, P=%d)" algo.name
          (show_dag_params p) procs;
      (* While at it: the replay is causal and exhaustive. *)
      let n = Taskgraph.num_tasks g in
      for t = 0 to n - 1 do
        Taskgraph.iter_preds g t (fun pd _ ->
            if a.R.Virtual_clock.start.(t) < a.R.Virtual_clock.finish.(pd) then
              QCheck.Test.fail_reportf
                "%s: task %d started before predecessor %d finished" algo.name t
                pd)
      done;
      if a.R.Virtual_clock.hint_hits + a.R.Virtual_clock.hint_misses <> n then
        QCheck.Test.fail_reportf "%s: hint accounting does not cover every task"
          algo.name)
    E.Registry.extended_set;
  true

(* --- Real engines (kept small: the suite runs on one core) --- *)

let real_config ?(domains = 2) ?(unit_ns = 2000.0) ?faults () =
  let faults =
    match faults with
    | None -> R.Fault.none
    | Some s -> Result.get_ok (R.Fault.parse s)
  in
  { R.Engine.default_config with domains; unit_ns; faults }

let test_real_static_fig1 () =
  let g = Example.fig1 () in
  let machine = Machine.clique ~num_procs:2 in
  let sched = E.Registry.flb.E.Registry.run g machine in
  let o = R.Static.run ~config:(real_config ()) sched in
  check_bool "complete" true (R.Engine.complete o);
  check_float "predicted carried through" 14.0 o.R.Engine.predicted_units;
  check_bool "measured something" true (o.R.Engine.real_ns > 0.0);
  check_bool "ratio defined" true (Float.is_finite (R.Engine.ratio o));
  (* Placement is honored: per-domain counts match the schedule. *)
  Array.iteri
    (fun d n ->
      check_int
        (Printf.sprintf "tasks on domain %d" d)
        (List.length (Schedule.tasks_on sched d))
        n)
    o.R.Engine.per_domain_tasks;
  check_int "static never steals" 0 o.R.Engine.steals

let test_real_steal_four_domains () =
  let g = Example.fig1 () in
  let o = R.Steal.run ~config:(real_config ~domains:4 ()) g in
  check_bool "complete" true (R.Engine.complete o);
  check_int "all tasks ran exactly once" (Taskgraph.num_tasks g)
    (Array.fold_left ( + ) 0 o.R.Engine.per_domain_tasks);
  check_bool "no prediction" true (Float.is_nan o.R.Engine.predicted_units)

let test_real_static_kill_recovery () =
  let g = Example.fig1 () in
  let machine = Machine.clique ~num_procs:2 in
  let sched = E.Registry.flb.E.Registry.run g machine in
  let o = R.Static.run ~config:(real_config ~faults:"kill:1:0" ()) sched in
  check_bool "completes despite the kill" true (R.Engine.complete o);
  check_int "one domain died" 1 o.R.Engine.killed;
  check_int "victim ran nothing" 0 o.R.Engine.per_domain_tasks.(1);
  check_bool "its queue was recovered" true (o.R.Engine.recovered >= 1)

let test_real_static_resched_recovery () =
  let g = Example.fig1 () in
  let machine = Machine.clique ~num_procs:2 in
  let sched = E.Registry.flb.E.Registry.run g machine in
  let metrics = Flb_obs.Metrics.create () in
  let config =
    {
      (real_config ~faults:"kill:1:0" ()) with
      R.Engine.recover = R.Engine.Resched "FLB";
      metrics = Some metrics;
    }
  in
  let o = R.Static.run ~config sched in
  check_bool "completes despite the kill" true (R.Engine.complete o);
  check_int "one domain died" 1 o.R.Engine.killed;
  check_int "one reschedule" 1 o.R.Engine.rescheds;
  check_int "victim ran nothing" 0 o.R.Engine.per_domain_tasks.(1);
  let open Flb_obs.Metrics in
  check_int "rt_resched_total counted" 1
    (Counter.value (counter metrics "rt_resched_total"));
  check_bool "latency histogram observed once" true
    (Histogram.count (histogram metrics "rt_resched_latency_ns") = 1);
  check_raises_invalid "unknown resched algorithm rejected up front"
    (fun () ->
      R.Static.run
        ~config:{ config with R.Engine.recover = R.Engine.Resched "nope" }
        sched)

let test_real_steal_kill_recovery () =
  let g = Example.fig1 () in
  let o = R.Steal.run ~config:(real_config ~faults:"kill:0:0" ()) g in
  check_bool "completes despite the kill" true (R.Engine.complete o);
  check_int "one domain died" 1 o.R.Engine.killed;
  check_int "the survivor ran everything" (Taskgraph.num_tasks g)
    o.R.Engine.per_domain_tasks.(1)

let test_real_affinity_fig1 () =
  let g = Example.fig1 () in
  let machine = Machine.clique ~num_procs:2 in
  let sched = E.Registry.flb.E.Registry.run g machine in
  let o = R.Affinity.run ~config:(real_config ()) sched in
  check_bool "complete" true (R.Engine.complete o);
  check_float "predicted carried through" 14.0 o.R.Engine.predicted_units;
  check_int "all tasks ran exactly once" (Taskgraph.num_tasks g)
    (Array.fold_left ( + ) 0 o.R.Engine.per_domain_tasks);
  check_int "every execution is a hit or a miss" (Taskgraph.num_tasks g)
    (o.R.Engine.hint_hits + o.R.Engine.hint_misses);
  check_bool "hit rate defined" true (Float.is_finite (R.Engine.hint_hit_rate o));
  check_raises_invalid "domain count must match the schedule" (fun () ->
      R.Affinity.run ~config:(real_config ~domains:4 ()) sched)

let test_real_affinity_kill_recovery () =
  let g = Example.fig1 () in
  let machine = Machine.clique ~num_procs:2 in
  let sched = E.Registry.flb.E.Registry.run g machine in
  (* Kill domain 0: it holds fig1's entry task as seed work, which can
     then only leave the dead deque by theft. (Whether that theft also
     counts as [recovered] races with the kill being registered, so only
     the steal itself is asserted.) *)
  let o = R.Affinity.run ~config:(real_config ~faults:"kill:0:0" ()) sched in
  check_bool "completes despite the kill" true (R.Engine.complete o);
  check_int "one domain died" 1 o.R.Engine.killed;
  check_int "victim ran nothing" 0 o.R.Engine.per_domain_tasks.(0);
  check_int "the survivor ran everything" (Taskgraph.num_tasks g)
    o.R.Engine.per_domain_tasks.(1);
  check_bool "the victim's seed work was stolen" true (o.R.Engine.steals >= 1)

let test_real_slowdown_and_stall () =
  let g = small_graph () in
  let o =
    R.Steal.run ~config:(real_config ~faults:"slow:0:4,stall:1:0:1" ()) g
  in
  check_bool "complete under slow+stall" true (R.Engine.complete o);
  check_int "nobody died" 0 o.R.Engine.killed

let test_observability () =
  let g = Example.fig1 () in
  let machine = Machine.clique ~num_procs:2 in
  let sched = E.Registry.flb.E.Registry.run g machine in
  let tracer = Flb_obs.Trace.create () in
  let metrics = Flb_obs.Metrics.create () in
  let config =
    { (real_config ()) with R.Engine.tracer; metrics = Some metrics }
  in
  let o = R.Static.run ~config sched in
  check_bool "complete" true (R.Engine.complete o);
  check_bool "one span per task" true
    (Flb_obs.Trace.num_events tracer >= Taskgraph.num_tasks g);
  let open Flb_obs.Metrics in
  check_int "rt_tasks_total" (Taskgraph.num_tasks g)
    (Counter.value (counter metrics "rt_tasks_total"));
  check_float "rt_predicted_makespan_units" 14.0
    (Gauge.value (gauge metrics "rt_predicted_makespan_units"));
  check_bool "per-domain idle gauges registered" true
    (String.length (to_prometheus metrics) > 0
    && Gauge.value (gauge metrics "rt_busy_ns_d0") > 0.0);
  check_bool "track names" true (R.Engine.domain_track 3 = "D3")

let test_real_flight_dump_on_kill () =
  (* no tracer configured: the always-on flight recorder alone must
     leave a readable post-mortem behind *)
  let g = Example.fig1 () in
  let machine = Machine.clique ~num_procs:2 in
  let sched = E.Registry.flb.E.Registry.run g machine in
  let path = Filename.temp_file "flb-flight" ".jsonl" in
  let config =
    { (real_config ~faults:"kill:1:0" ()) with R.Engine.flight_path = Some path }
  in
  let o = R.Static.run ~config sched in
  check_bool "completes despite the kill" true (R.Engine.complete o);
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let text =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  check_bool "dump leads with a meta line" true (contains text "{\"type\":\"meta\"");
  check_bool "meta names the engine" true (contains text "\"engine\":\"static\"");
  check_bool "kill instant on the victim's ring" true
    (contains text "\"track\":\"D1\",\"name\":\"killed\"");
  check_bool "task spans recorded" true (contains text "\"name\":\"task ");
  (* and the dump feeds straight into the analyzer *)
  (match R.Analyze.load path with
  | Error e -> Alcotest.fail e
  | Ok run -> (
    match R.Analyze.analyze ~graph:g run with
    | Error e -> Alcotest.fail e
    | Ok report ->
      check_int "all tasks accounted for" 8 report.R.Analyze.executed;
      check_bool "victim flagged as killed" true
        report.R.Analyze.per_domain.(1).R.Analyze.d_killed;
      check_int "survivor recovered work" 8
        report.R.Analyze.per_domain.(0).R.Analyze.d_tasks));
  Sys.remove path

let suite =
  [
    Alcotest.test_case "deque: owner LIFO, thief FIFO" `Quick test_deque_lifo_fifo;
    Alcotest.test_case "deque: ring growth keeps order" `Quick test_deque_growth;
    Alcotest.test_case "deque: conditional front take" `Quick
      test_deque_take_front_if;
    Alcotest.test_case "deque: steal-half splits off the front" `Quick
      test_deque_steal_half;
    Alcotest.test_case "deque: batch front push and reset" `Quick
      test_deque_push_front_batch;
    Alcotest.test_case "fault: parse/print round trip" `Quick
      test_fault_parse_roundtrip;
    Alcotest.test_case "fault: per-domain view and decisions" `Quick
      test_fault_decide;
    Alcotest.test_case "calibrate: spin-work burns real time" `Quick test_calibrate;
    Alcotest.test_case "workers: lifecycle and exception containment" `Quick
      test_workers;
    Alcotest.test_case "engine: config validation" `Quick test_engine_validation;
    Alcotest.test_case "virtual static = simulator on fig1 (bitwise)" `Quick
      test_virtual_static_fig1;
    Alcotest.test_case "virtual affinity: causal and fully accounted on fig1"
      `Quick test_virtual_affinity_fig1;
    Alcotest.test_case "static engine runs fig1 on 2 domains" `Quick
      test_real_static_fig1;
    Alcotest.test_case "steal engine runs fig1 on 4 domains" `Quick
      test_real_steal_four_domains;
    Alcotest.test_case "static engine recovers a killed domain's queue" `Quick
      test_real_static_kill_recovery;
    Alcotest.test_case "static engine reschedules around a killed domain"
      `Quick test_real_static_resched_recovery;
    Alcotest.test_case "steal engine drains a killed domain" `Quick
      test_real_steal_kill_recovery;
    Alcotest.test_case "affinity engine runs fig1 on 2 domains" `Quick
      test_real_affinity_fig1;
    Alcotest.test_case "affinity engine steals a killed domain's work" `Quick
      test_real_affinity_kill_recovery;
    Alcotest.test_case "slowdown and stall faults still complete" `Quick
      test_real_slowdown_and_stall;
    Alcotest.test_case "tracer tracks and rt_* metrics" `Quick test_observability;
    Alcotest.test_case "flight recorder dumps on a kill" `Quick
      test_real_flight_dump_on_kill;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [
        qtest ~count:40 "virtual static = simulator, every scheduler"
          arb_scheduling_case prop_virtual_static_equals_simulator;
        qtest ~count:100 "virtual steal, 1 domain = sequential sum" arb_dag_params
          prop_steal_one_domain_is_sequential;
        qtest ~count:100 "virtual steal: causal and exhaustive"
          arb_scheduling_case prop_virtual_steal_valid;
        qtest ~count:100 "virtual affinity, 1 domain = sequential sum"
          arb_dag_params prop_affinity_one_domain_is_sequential;
        qtest ~count:40 "virtual affinity: bit-identical replays, every scheduler"
          arb_scheduling_case prop_affinity_deterministic;
      ]
