(* Tests for the analysis & transformation toolkit: Transform, Coarsen,
   Lower_bounds, Chrome_trace. *)

open! Flb_taskgraph
open! Flb_platform
open Testutil
module Shapes = Flb_workloads.Shapes

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec loop i = i + n <= h && (String.sub hay i n = needle || loop (i + 1)) in
  loop 0

(* --- Transform --- *)

let test_transitive_reduction () =
  (* triangle a -> b -> c with shortcut a -> c: the shortcut must go *)
  let g =
    Taskgraph.of_arrays ~comp:[| 1.0; 1.0; 1.0 |]
      ~edges:[| (0, 1, 1.0); (1, 2, 1.0); (0, 2, 9.0) |]
  in
  let r = Transform.transitive_reduction g in
  check_int "one edge removed" 2 (Taskgraph.num_edges r);
  check_bool "shortcut gone" true (Taskgraph.comm r ~src:0 ~dst:2 = None);
  Alcotest.(check (option (float 0.))) "surviving weights kept" (Some 1.0)
    (Taskgraph.comm r ~src:0 ~dst:1)

let test_reduction_of_reduced_is_identity () =
  let g = Example.fig1 () in
  let r = Transform.transitive_reduction g in
  let r2 = Transform.transitive_reduction r in
  check_int "idempotent" (Taskgraph.num_edges r) (Taskgraph.num_edges r2)

let test_reverse () =
  let g = small_graph () in
  let r = Transform.reverse g in
  check_int "edges preserved" (Taskgraph.num_edges g) (Taskgraph.num_edges r);
  Alcotest.(check (list int)) "entries become exits" (Taskgraph.exit_tasks g)
    (Taskgraph.entry_tasks r);
  Alcotest.(check (option (float 0.))) "edge flipped" (Some 4.0)
    (Taskgraph.comm r ~src:2 ~dst:0)

let test_induced_subgraph () =
  let g = small_graph () in
  let sub, mapping = Transform.induced_subgraph g ~keep:(fun t -> t <> 2) in
  check_int "three tasks" 3 (Taskgraph.num_tasks sub);
  check_int "two edges" 2 (Taskgraph.num_edges sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 3 |] mapping

let test_stats () =
  let s = Transform.stats (Example.fig1 ()) in
  check_int "tasks" 8 s.Transform.tasks;
  check_int "edges" 10 s.Transform.edges;
  check_int "levels" 4 s.Transform.levels;
  check_int "max out" 3 s.Transform.max_out_degree;
  check_int "max in" 3 s.Transform.max_in_degree;
  check_float "comp cp" 10.0 s.Transform.comp_critical_path;
  check_floatish "parallelism" 1.9 s.Transform.parallelism;
  check_raises_invalid "empty graph" (fun () ->
      ignore (Transform.stats (Taskgraph.of_arrays ~comp:[||] ~edges:[||])))

(* --- Coarsen --- *)

let test_merge_chains_collapses_chains () =
  let g = Shapes.parallel_chains ~count:5 ~length:8 in
  let coarse, macro_of = Coarsen.merge_chains g in
  check_int "one macro per chain" 5 (Taskgraph.num_tasks coarse);
  check_int "no edges left" 0 (Taskgraph.num_edges coarse);
  check_float "comp accumulated" 8.0 (Taskgraph.comp coarse 0);
  check_int "mapping covers originals" 40 (Array.length macro_of)

let test_merge_chains_grain_cap () =
  let g = Shapes.chain ~length:8 in
  let coarse, _ = Coarsen.merge_chains ~max_grain:4.0 g in
  check_int "two macros of four" 2 (Taskgraph.num_tasks coarse);
  check_float "grain respected" 4.0 (Taskgraph.comp coarse 0)

let test_merge_chains_leaves_non_chains () =
  let g = Example.fig1 () in
  let coarse, _ = Coarsen.merge_chains g in
  (* fig1's only pure chain is t2 -> t6 (out-degree 1 into in-degree 1) *)
  check_int "one merge happens" 7 (Taskgraph.num_tasks coarse)

let test_contract_cycle_rejected () =
  (* merging the two endpoints of a path of length 2 creates a cycle *)
  let g =
    Taskgraph.of_arrays ~comp:[| 1.0; 1.0; 1.0 |]
      ~edges:[| (0, 1, 1.0); (1, 2, 1.0) |]
  in
  check_raises_invalid "cycle" (fun () ->
      ignore (Coarsen.contract g ~group_of:(fun t -> if t = 1 then 1 else 0)))

let test_contract_sums_parallel_edges () =
  (*  a -> c and b -> c; grouping {a,b} vs {c} must sum the two comms *)
  let g =
    Taskgraph.of_arrays ~comp:[| 1.0; 1.0; 1.0 |]
      ~edges:[| (0, 2, 2.0); (1, 2, 3.0) |]
  in
  let coarse, _ = Coarsen.contract g ~group_of:(fun t -> if t = 2 then 1 else 0) in
  Alcotest.(check (option (float 1e-9))) "summed" (Some 5.0)
    (Taskgraph.comm coarse ~src:0 ~dst:1)

(* --- Lower_bounds --- *)

let test_bounds_known () =
  let g = Shapes.independent ~tasks:8 in
  check_float "work bound" 2.0 (Lower_bounds.work_bound g ~procs:4);
  check_float "cp bound" 1.0 (Lower_bounds.computation_critical_path g);
  check_float "best picks work" 2.0 (Lower_bounds.best g ~procs:4);
  let c = Shapes.chain ~length:6 in
  check_float "chain cp" 6.0 (Lower_bounds.computation_critical_path c);
  check_float "chain best" 6.0 (Lower_bounds.best c ~procs:4)

let test_fernandez_at_least_cp () =
  let g = Example.fig1 () in
  let f = Lower_bounds.fernandez_bound g ~procs:2 in
  check_bool "at least comp cp" true
    (f >= Lower_bounds.computation_critical_path g -. 1e-9)

let test_fernandez_detects_window_pressure () =
  (* 4 equal tasks that must all run in the same unit window on 2 procs:
     fork of width 4 between two chain endpoints *)
  let g =
    Taskgraph.of_arrays
      ~comp:[| 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 |]
      ~edges:
        [| (0, 1, 0.0); (0, 2, 0.0); (0, 3, 0.0); (0, 4, 0.0);
           (1, 5, 0.0); (2, 5, 0.0); (3, 5, 0.0); (4, 5, 0.0) |]
  in
  (* comp CP = 3, but the 4 middle tasks need 4 units of work inside a
     1-wide window on 2 processors: bound = 3 + (4 - 2)/2 = 4 *)
  check_float "window bound" 4.0 (Lower_bounds.fernandez_bound g ~procs:2);
  check_float "work bound is weaker" 3.0 (Lower_bounds.work_bound g ~procs:2)

let qsuite_bounds =
  [
    qtest ~count:100 "every scheduler respects every lower bound"
      arb_scheduling_case (fun (p, procs) ->
        let g = build_dag p in
        let m = Machine.clique ~num_procs:procs in
        let bound = Lower_bounds.best g ~procs in
        List.for_all
          (fun (a : Flb_experiments.Registry.t) ->
            Schedule.makespan (a.run g m) >= bound -. 1e-6)
          Flb_experiments.Registry.extended_set);
    qtest ~count:100 "coarse schedules remain legal for the fine graph"
      arb_dag_params (fun p ->
        (* contract chains, schedule, validate the coarse schedule *)
        let g = build_dag p in
        let coarse, macro_of = Coarsen.merge_chains g in
        let m = Machine.clique ~num_procs:3 in
        let s = Flb_core.Flb.run coarse m in
        Array.length macro_of = Taskgraph.num_tasks g
        && Schedule.validate s = Ok ());
    qtest ~count:100 "transitive reduction preserves reachability" arb_dag_params
      (fun p ->
        let g = build_dag p in
        let r = Transform.transitive_reduction g in
        let cg = Topo.reachable g and cr = Topo.reachable r in
        let ok = ref (Taskgraph.num_edges r <= Taskgraph.num_edges g) in
        Array.iteri
          (fun t set -> if not (Flb_prelude.Bitset.equal set cr.(t)) then ok := false)
          cg;
        !ok);
  ]

(* --- Profile --- *)

let test_profile_chain () =
  let segments = Profile.compute (Shapes.chain ~length:4) in
  check_int "one merged segment" 1 (List.length segments);
  (match segments with
  | [ s ] ->
    check_int "height 1" 1 s.Profile.running;
    check_float "span 4" 4.0 s.Profile.until_time
  | _ -> Alcotest.fail "segments");
  check_int "peak" 1 (Profile.peak_parallelism (Shapes.chain ~length:4));
  check_float "average" 1.0 (Profile.average_parallelism (Shapes.chain ~length:4))

let test_profile_fork_join () =
  let g = Shapes.fork_join ~branches:5 ~stages:1 in
  (* fork(1) -> 5 parallel -> join(1): profile 1,5,1 over spans 1,1,1 *)
  let segments = Profile.compute g in
  Alcotest.(check (list int)) "heights" [ 1; 5; 1 ]
    (List.map (fun s -> s.Profile.running) segments);
  check_int "peak" 5 (Profile.peak_parallelism g);
  check_floatish "average" (7.0 /. 3.0) (Profile.average_parallelism g)

let test_profile_consistency_with_width () =
  let g = Example.fig1 () in
  check_int "peak = ready bound" (Width.max_ready_bound g) (Profile.peak_parallelism g)

let test_profile_render () =
  let art = Profile.render ~width:20 ~height:4 (Shapes.fork_join ~branches:3 ~stages:2) in
  check_bool "draws something" true (String.length art > 40);
  check_bool "empty graph handled" true
    (String.length (Profile.render (Taskgraph.of_arrays ~comp:[||] ~edges:[||])) > 0)

(* --- Chrome_trace --- *)

let test_chrome_trace () =
  let g = Example.fig1 () in
  let s = Flb_core.Flb.run g (Machine.clique ~num_procs:2) in
  let json = Chrome_trace.of_schedule s in
  check_bool "has traceEvents" true (contains "traceEvents" json);
  check_bool "names processors" true (contains "processor 1" json);
  check_bool "has t7" true (contains "\"name\":\"t7\"" json);
  check_bool "has flow events" true (contains "\"ph\":\"s\"" json);
  (* 5 cross-processor messages in the Table 1 schedule -> 5 flow pairs *)
  let count_occurrences needle hay =
    let n = String.length needle in
    let rec loop i acc =
      if i + n > String.length hay then acc
      else if String.sub hay i n = needle then loop (i + 1) (acc + 1)
      else loop (i + 1) acc
    in
    loop 0 0
  in
  check_int "five message starts" 5 (count_occurrences "\"ph\":\"s\"" json)

(* Golden test: the exact emission for the paper's Fig. 1 example on two
   processors. Chrome trace-event JSON is consumed by external tools
   (Perfetto, chrome://tracing), so the byte-level format is a contract;
   any change to field order, precision or metadata must be deliberate. *)
let chrome_trace_fig1_golden =
  "{\"traceEvents\": [\n\
   {\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"flb-schedule\"}},\n\
   {\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"processor 0\"}},\n\
   {\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"processor 1\"}},\n\
   {\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"t0\",\"ts\":0.000,\"dur\":2.000,\"args\":{\"comp\":2}},\n\
   {\"ph\":\"X\",\"pid\":0,\"tid\":1,\"name\":\"t1\",\"ts\":3.000,\"dur\":2.000,\"args\":{\"comp\":2}},\n\
   {\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"t2\",\"ts\":5.000,\"dur\":2.000,\"args\":{\"comp\":2}},\n\
   {\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"t3\",\"ts\":2.000,\"dur\":3.000,\"args\":{\"comp\":3}},\n\
   {\"ph\":\"X\",\"pid\":0,\"tid\":1,\"name\":\"t4\",\"ts\":5.000,\"dur\":3.000,\"args\":{\"comp\":3}},\n\
   {\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"t5\",\"ts\":7.000,\"dur\":3.000,\"args\":{\"comp\":3}},\n\
   {\"ph\":\"X\",\"pid\":0,\"tid\":1,\"name\":\"t6\",\"ts\":8.000,\"dur\":2.000,\"args\":{\"comp\":2}},\n\
   {\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"t7\",\"ts\":12.000,\"dur\":2.000,\"args\":{\"comp\":2}},\n\
   {\"ph\":\"s\",\"pid\":0,\"tid\":0,\"name\":\"msg\",\"id\":1,\"ts\":2.000},\n\
   {\"ph\":\"f\",\"pid\":0,\"tid\":1,\"name\":\"msg\",\"id\":1,\"ts\":3.000,\"bp\":\"e\",\"args\":{\"comm\":1}},\n\
   {\"ph\":\"s\",\"pid\":0,\"tid\":1,\"name\":\"msg\",\"id\":2,\"ts\":5.000},\n\
   {\"ph\":\"f\",\"pid\":0,\"tid\":0,\"name\":\"msg\",\"id\":2,\"ts\":6.000,\"bp\":\"e\",\"args\":{\"comm\":1}},\n\
   {\"ph\":\"s\",\"pid\":0,\"tid\":0,\"name\":\"msg\",\"id\":3,\"ts\":7.000},\n\
   {\"ph\":\"f\",\"pid\":0,\"tid\":1,\"name\":\"msg\",\"id\":3,\"ts\":8.000,\"bp\":\"e\",\"args\":{\"comm\":1}},\n\
   {\"ph\":\"s\",\"pid\":0,\"tid\":1,\"name\":\"msg\",\"id\":4,\"ts\":8.000},\n\
   {\"ph\":\"f\",\"pid\":0,\"tid\":0,\"name\":\"msg\",\"id\":4,\"ts\":9.000,\"bp\":\"e\",\"args\":{\"comm\":1}},\n\
   {\"ph\":\"s\",\"pid\":0,\"tid\":1,\"name\":\"msg\",\"id\":5,\"ts\":10.000},\n\
   {\"ph\":\"f\",\"pid\":0,\"tid\":0,\"name\":\"msg\",\"id\":5,\"ts\":12.000,\"bp\":\"e\",\"args\":{\"comm\":2}}\n\
   ]}\n"

let test_chrome_trace_golden () =
  let g = Example.fig1 () in
  let s = Flb_core.Flb.run g (Machine.clique ~num_procs:2) in
  Alcotest.(check string)
    "byte-identical emission" chrome_trace_fig1_golden
    (Chrome_trace.of_schedule s)

let test_svg () =
  let g = Example.fig1 () in
  let s = Flb_core.Flb.run g (Machine.clique ~num_procs:2) in
  let svg = Svg.of_schedule s in
  check_bool "is svg" true (contains "<svg" svg && contains "</svg>" svg);
  check_bool "lanes labelled" true (contains ">p1<" svg);
  check_bool "task boxes" true (contains "t7" svg);
  check_bool "message lines" true (contains "<line" svg);
  let no_arrows = Svg.of_schedule ~arrows:false s in
  check_bool "arrows suppressible" false (contains "<line" no_arrows)

let test_svg_incomplete_rejected () =
  let g = small_graph () in
  let s = Schedule.create g (Machine.clique ~num_procs:2) in
  check_raises_invalid "incomplete" (fun () -> ignore (Svg.of_schedule s))

let test_chrome_trace_incomplete_rejected () =
  let g = small_graph () in
  let s = Schedule.create g (Machine.clique ~num_procs:2) in
  check_raises_invalid "incomplete" (fun () -> ignore (Chrome_trace.of_schedule s))

let suite =
  [
    Alcotest.test_case "transitive reduction" `Quick test_transitive_reduction;
    Alcotest.test_case "reduction idempotent" `Quick test_reduction_of_reduced_is_identity;
    Alcotest.test_case "reverse" `Quick test_reverse;
    Alcotest.test_case "induced subgraph" `Quick test_induced_subgraph;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "chain merging" `Quick test_merge_chains_collapses_chains;
    Alcotest.test_case "grain cap" `Quick test_merge_chains_grain_cap;
    Alcotest.test_case "non-chains untouched" `Quick test_merge_chains_leaves_non_chains;
    Alcotest.test_case "contraction cycle rejected" `Quick test_contract_cycle_rejected;
    Alcotest.test_case "parallel edges summed" `Quick test_contract_sums_parallel_edges;
    Alcotest.test_case "known bounds" `Quick test_bounds_known;
    Alcotest.test_case "fernandez >= cp" `Quick test_fernandez_at_least_cp;
    Alcotest.test_case "fernandez window pressure" `Quick
      test_fernandez_detects_window_pressure;
    Alcotest.test_case "profile: chain" `Quick test_profile_chain;
    Alcotest.test_case "profile: fork-join" `Quick test_profile_fork_join;
    Alcotest.test_case "profile: peak = ready bound" `Quick
      test_profile_consistency_with_width;
    Alcotest.test_case "profile: render" `Quick test_profile_render;
    Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
    Alcotest.test_case "chrome trace golden (fig1, P=2)" `Quick
      test_chrome_trace_golden;
    Alcotest.test_case "svg export" `Quick test_svg;
    Alcotest.test_case "svg rejects incomplete" `Quick test_svg_incomplete_rejected;
    Alcotest.test_case "chrome trace rejects incomplete" `Quick
      test_chrome_trace_incomplete_rejected;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite_bounds
