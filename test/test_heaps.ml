open Testutil
module Int_heap = Flb_heap.Binary_heap.Make (Int)
module Int_pairing = Flb_heap.Pairing_heap.Make (Int)
module Indexed_heap = Flb_heap.Indexed_heap
module Flat_heap = Flb_heap.Flat_heap

(* --- Binary_heap --- *)

let test_binary_basic () =
  let h = Int_heap.create () in
  check_bool "empty" true (Int_heap.is_empty h);
  List.iter (Int_heap.add h) [ 5; 3; 8; 1; 9; 2 ];
  check_int "length" 6 (Int_heap.length h);
  Alcotest.(check (option int)) "min" (Some 1) (Int_heap.min_elt h);
  Alcotest.(check (list int)) "drain sorted" [ 1; 2; 3; 5; 8; 9 ] (Int_heap.drain h);
  check_bool "empty after drain" true (Int_heap.is_empty h)

let test_binary_pop_exn () =
  let h = Int_heap.create () in
  check_raises_invalid "pop_exn empty" (fun () -> ignore (Int_heap.pop_exn h));
  Int_heap.add h 4;
  check_int "pop_exn" 4 (Int_heap.pop_exn h)

let test_binary_of_array () =
  let h = Int_heap.of_array [| 4; 2; 7; 1 |] in
  Alcotest.(check (list int)) "heapified" [ 1; 2; 4; 7 ] (Int_heap.drain h)

(* --- Pairing_heap --- *)

let test_pairing_basic () =
  let h = Int_pairing.of_list [ 5; 1; 3 ] in
  Alcotest.(check (option int)) "min" (Some 1) (Int_pairing.min_elt h);
  check_int "length" 3 (Int_pairing.length h);
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5 ] (Int_pairing.to_sorted_list h);
  (* persistence: the original heap is unchanged by pop *)
  (match Int_pairing.pop h with
  | Some (x, rest) ->
    check_int "popped min" 1 x;
    check_int "rest length" 2 (Int_pairing.length rest)
  | None -> Alcotest.fail "pop on non-empty");
  check_int "original untouched" 3 (Int_pairing.length h)

let test_pairing_merge () =
  let a = Int_pairing.of_list [ 4; 6 ] and b = Int_pairing.of_list [ 1; 9 ] in
  Alcotest.(check (list int)) "merge" [ 1; 4; 6; 9 ]
    (Int_pairing.to_sorted_list (Int_pairing.merge a b))

(* --- Indexed_heap --- *)

let test_indexed_basic () =
  let h = Indexed_heap.create ~universe:10 ~compare:Float.compare in
  Indexed_heap.add h ~elt:3 ~key:5.0;
  Indexed_heap.add h ~elt:7 ~key:1.0;
  Indexed_heap.add h ~elt:2 ~key:3.0;
  check_int "length" 3 (Indexed_heap.length h);
  check_bool "mem" true (Indexed_heap.mem h 7);
  check_bool "not mem" false (Indexed_heap.mem h 0);
  (match Indexed_heap.min_elt h with
  | Some (e, k) ->
    check_int "min elt" 7 e;
    check_float "min key" 1.0 k
  | None -> Alcotest.fail "min on non-empty");
  Indexed_heap.remove h 7;
  (match Indexed_heap.min_elt h with
  | Some (e, _) -> check_int "min after remove" 2 e
  | None -> Alcotest.fail "min after remove");
  Indexed_heap.update h ~elt:3 ~key:0.5;
  (match Indexed_heap.min_elt h with
  | Some (e, _) -> check_int "min after decrease" 3 e
  | None -> Alcotest.fail "min after decrease")

let test_indexed_errors () =
  let h = Indexed_heap.create ~universe:4 ~compare:Float.compare in
  Indexed_heap.add h ~elt:1 ~key:1.0;
  check_raises_invalid "duplicate add" (fun () -> Indexed_heap.add h ~elt:1 ~key:2.0);
  check_raises_invalid "out of universe" (fun () -> Indexed_heap.add h ~elt:4 ~key:1.0);
  (match Indexed_heap.key h 0 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "key of absent element");
  Indexed_heap.remove h 3 (* no-op, absent *);
  check_int "length unchanged" 1 (Indexed_heap.length h)

let test_indexed_tie_break_by_id () =
  let h = Indexed_heap.create ~universe:5 ~compare:Float.compare in
  Indexed_heap.add h ~elt:4 ~key:1.0;
  Indexed_heap.add h ~elt:1 ~key:1.0;
  Indexed_heap.add h ~elt:2 ~key:1.0;
  match Indexed_heap.min_elt h with
  | Some (e, _) -> check_int "lowest id wins ties" 1 e
  | None -> Alcotest.fail "min"

(* --- Flat_heap --- *)

let test_flat_basic () =
  let h = Flat_heap.create ~universe:10 in
  Flat_heap.add h ~elt:3 ~primary:5.0 ~secondary:0.0;
  Flat_heap.add h ~elt:7 ~primary:1.0 ~secondary:0.0;
  Flat_heap.add h ~elt:2 ~primary:3.0 ~secondary:0.0;
  check_int "length" 3 (Flat_heap.length h);
  check_bool "mem" true (Flat_heap.mem h 7);
  check_bool "not mem" false (Flat_heap.mem h 0);
  check_int "min elt" 7 (Flat_heap.peek h);
  check_float "min key" 1.0 (Flat_heap.primary h 7);
  Flat_heap.remove h 7;
  check_int "min after remove" 2 (Flat_heap.peek h);
  Flat_heap.update h ~elt:3 ~primary:0.5 ~secondary:0.0;
  check_int "min after decrease" 3 (Flat_heap.peek h);
  check_int "pop" 3 (Flat_heap.pop h);
  check_int "pop" 2 (Flat_heap.pop h);
  check_int "pop empty-signal" (-1) (Flat_heap.pop h);
  check_int "peek empty" (-1) (Flat_heap.peek h)

let test_flat_errors () =
  let h = Flat_heap.create ~universe:4 in
  Flat_heap.add h ~elt:1 ~primary:1.0 ~secondary:0.0;
  check_raises_invalid "duplicate add" (fun () ->
      Flat_heap.add h ~elt:1 ~primary:2.0 ~secondary:0.0);
  check_raises_invalid "out of universe" (fun () ->
      Flat_heap.add h ~elt:4 ~primary:1.0 ~secondary:0.0);
  (match Flat_heap.primary h 0 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "primary of absent element");
  Flat_heap.remove h 3 (* no-op, absent *);
  check_int "length unchanged" 1 (Flat_heap.length h)

let test_flat_secondary_and_id_ties () =
  let h = Flat_heap.create ~universe:6 in
  Flat_heap.add h ~elt:4 ~primary:1.0 ~secondary:2.0;
  Flat_heap.add h ~elt:1 ~primary:1.0 ~secondary:3.0;
  Flat_heap.add h ~elt:5 ~primary:1.0 ~secondary:2.0;
  (* secondary breaks the primary tie; element id breaks the rest *)
  check_int "secondary then id" 4 (Flat_heap.peek h);
  Flat_heap.remove h 4;
  check_int "next by id" 5 (Flat_heap.peek h);
  Flat_heap.remove h 5;
  check_int "largest secondary last" 1 (Flat_heap.peek h)

(* Random operation sequences checked against a simple association-map
   model; this is the FLB workhorse so it gets the heaviest property. *)
let qsuite =
  let arb_ops =
    QCheck.(
      pair (int_range 1 60)
        (list (pair (int_range 0 2) (pair (int_range 0 300) (float_range 0.0 100.0)))))
  in
  [
    qtest ~count:300 "indexed heap agrees with map model" arb_ops
      (fun (universe, ops) ->
        let h = Indexed_heap.create ~universe ~compare:Float.compare in
        let model = Hashtbl.create 16 in
        List.iter
          (fun (op, (raw, key)) ->
            let e = raw mod universe in
            match op with
            | 0 ->
              if not (Indexed_heap.mem h e) then begin
                Indexed_heap.add h ~elt:e ~key;
                Hashtbl.replace model e key
              end
            | 1 ->
              Indexed_heap.update h ~elt:e ~key;
              Hashtbl.replace model e key
            | _ ->
              Indexed_heap.remove h e;
              Hashtbl.remove model e)
          ops;
        let model_min =
          Hashtbl.fold
            (fun e k best ->
              match best with
              | Some (be, bk) when (bk, be) <= (k, e) -> best
              | _ -> Some (e, k))
            model None
        in
        Indexed_heap.length h = Hashtbl.length model
        && Indexed_heap.min_elt h = model_min
        &&
        let sorted = Indexed_heap.to_sorted_list h in
        List.length sorted = Hashtbl.length model
        && List.for_all (fun (e, k) -> Hashtbl.find_opt model e = Some k) sorted
        && sorted = List.sort (fun (e1, k1) (e2, k2) -> compare (k1, e1) (k2, e2)) sorted);
    qtest ~count:300 "flat heap agrees with indexed heap on (float, float) keys"
      QCheck.(
        pair (int_range 1 60)
          (list
             (pair (int_range 0 2)
                (pair (int_range 0 300)
                   (pair (float_range 0.0 100.0) (float_range 0.0 10.0))))))
      (fun (universe, ops) ->
        let flat = Flat_heap.create ~universe in
        let indexed =
          Indexed_heap.create ~universe ~compare:(Stdlib.compare : float * float -> _ -> _)
        in
        List.iter
          (fun (op, (raw, (p, s))) ->
            let e = raw mod universe in
            match op with
            | 0 ->
              if not (Flat_heap.mem flat e) then begin
                Flat_heap.add flat ~elt:e ~primary:p ~secondary:s;
                Indexed_heap.add indexed ~elt:e ~key:(p, s)
              end
            | 1 ->
              Flat_heap.update flat ~elt:e ~primary:p ~secondary:s;
              Indexed_heap.update indexed ~elt:e ~key:(p, s)
            | _ ->
              Flat_heap.remove flat e;
              Indexed_heap.remove indexed e)
          ops;
        Flat_heap.length flat = Indexed_heap.length indexed
        && (match Indexed_heap.min_elt indexed with
           | None -> Flat_heap.peek flat = -1
           | Some (e, (p, s)) ->
             Flat_heap.peek flat = e
             && Flat_heap.primary flat e = p
             && Flat_heap.secondary flat e = s)
        && Flat_heap.to_sorted_list flat = Indexed_heap.to_sorted_list indexed);
    qtest "flat heap drains in key order" QCheck.(list (float_range 0.0 50.0))
      (fun keys ->
        let keys = Array.of_list keys in
        let n = Array.length keys in
        n = 0
        ||
        let h = Flat_heap.create ~universe:n in
        Array.iteri (fun e k -> Flat_heap.add h ~elt:e ~primary:k ~secondary:0.0) keys;
        let drained = ref [] in
        let rec drain () =
          match Flat_heap.pop h with
          | -1 -> ()
          | e ->
            drained := (keys.(e), e) :: !drained;
            drain ()
        in
        drain ();
        let drained = List.rev !drained in
        drained
        = List.sort
            (fun (k1, e1) (k2, e2) ->
              let c = Float.compare k1 k2 in
              if c <> 0 then c else Int.compare e1 e2)
            drained);
    qtest "binary heap drain equals sort" QCheck.(list int) (fun l ->
        let h = Int_heap.create () in
        List.iter (Int_heap.add h) l;
        Int_heap.drain h = List.sort compare l);
    qtest "pairing heap sorts" QCheck.(list int) (fun l ->
        Int_pairing.to_sorted_list (Int_pairing.of_list l) = List.sort compare l);
    qtest "binary and pairing heaps agree" QCheck.(list int) (fun l ->
        let b = Int_heap.create () in
        List.iter (Int_heap.add b) l;
        Int_heap.drain b = Int_pairing.to_sorted_list (Int_pairing.of_list l));
  ]

let suite =
  [
    Alcotest.test_case "binary: basic" `Quick test_binary_basic;
    Alcotest.test_case "binary: pop_exn" `Quick test_binary_pop_exn;
    Alcotest.test_case "binary: of_array" `Quick test_binary_of_array;
    Alcotest.test_case "pairing: basic/persistence" `Quick test_pairing_basic;
    Alcotest.test_case "pairing: merge" `Quick test_pairing_merge;
    Alcotest.test_case "indexed: basic" `Quick test_indexed_basic;
    Alcotest.test_case "indexed: errors" `Quick test_indexed_errors;
    Alcotest.test_case "indexed: id tie-break" `Quick test_indexed_tie_break_by_id;
    Alcotest.test_case "flat: basic" `Quick test_flat_basic;
    Alcotest.test_case "flat: errors" `Quick test_flat_errors;
    Alcotest.test_case "flat: secondary/id ties" `Quick test_flat_secondary_and_id_ties;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
