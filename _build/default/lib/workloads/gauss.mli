open! Flb_taskgraph

(** Gaussian elimination task graph (extension workload; the classic
    benchmark from the Kwok–Ahmad suite alongside LU and FFT).

    Stage [k] eliminates column [k]: one pivot-row task followed by one
    row-update task per remaining row, each update feeding the whole
    next stage. Denser join structure than {!Lu}. *)

val structure : matrix_size:int -> Taskgraph.t
(** @raise Invalid_argument if [matrix_size < 2]. *)

val num_tasks : matrix_size:int -> int
