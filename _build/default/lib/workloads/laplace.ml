open! Flb_taskgraph

let num_tasks ~grid ~sweeps = grid * grid * sweeps

let structure ~grid:n ~sweeps =
  if n < 1 then invalid_arg "Laplace.structure: grid must be positive";
  if sweeps < 1 then invalid_arg "Laplace.structure: sweeps must be positive";
  let b = Taskgraph.Builder.create ~expected_tasks:(num_tasks ~grid:n ~sweeps) () in
  let id = Array.init sweeps (fun _ -> Array.make_matrix n n (-1)) in
  for s = 0 to sweeps - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        id.(s).(i).(j) <- Taskgraph.Builder.add_task b ~comp:1.0;
        if s > 0 then begin
          let link di dj =
            let i' = i + di and j' = j + dj in
            if i' >= 0 && i' < n && j' >= 0 && j' < n then
              Taskgraph.Builder.add_edge b ~src:id.(s - 1).(i').(j')
                ~dst:id.(s).(i).(j) ~comm:1.0
          in
          link 0 0;
          link (-1) 0;
          link 1 0;
          link 0 (-1);
          link 0 1
        end
      done
    done
  done;
  Taskgraph.Builder.build b

let dims_for_tasks target =
  let rec search n =
    let sweeps = max 1 (n - 1) in
    if num_tasks ~grid:n ~sweeps >= target then (n, sweeps) else search (n + 1)
  in
  search 1
