open! Flb_taskgraph

(** Fast Fourier transform butterfly task graph ("FFT" in Fig. 3).

    [points] inputs (a power of two) through [log2 points] butterfly
    stages; the stage-[s] task for position [i] depends on the
    stage-[s-1] tasks at [i] and at [i lxor 2^(s-1)] (the butterfly
    partner). Regular and join-free in the middle, so it achieves
    near-linear speedup in the paper. *)

val structure : points:int -> Taskgraph.t
(** [points * (log2 points + 1)] unit-cost tasks.
    @raise Invalid_argument unless [points] is a power of two, at
    least 2. *)

val num_tasks : points:int -> int

val points_for_tasks : int -> int
(** Smallest power of two whose butterfly graph reaches the given task
    count (256 gives 2304 tasks at the paper's scale). *)
