open! Flb_taskgraph

(** LU decomposition task graph ("LU" in the paper's evaluation).

    Column-oriented dense LU without pivot search: stage [k] has one
    pivot task (preparing column [k]) and one update task per remaining
    column [j > k]. The pivot of stage [k] depends on the stage-[k-1]
    update of column [k]; each update [U(k, j)] depends on the stage's
    pivot and on [U(k-1, j)]. The long chains of forks and joins make
    this the paper's hardest graph to extract speedup from (Fig. 3). *)

val structure : matrix_size:int -> Taskgraph.t
(** Unit-cost structure for an [n x n] matrix:
    [(n-1)(n+2)/2] tasks.
    @raise Invalid_argument if [matrix_size < 2]. *)

val num_tasks : matrix_size:int -> int
(** Task count without building the graph. *)

val matrix_size_for_tasks : int -> int
(** Smallest matrix size whose structure has at least the given number
    of tasks. The paper's experiments use about 2000 tasks
    ([matrix_size = 63] gives 2015). *)
