open! Flb_taskgraph
open! Flb_prelude

(** Random DAG generators for tests and robustness studies.

    These are not part of the paper's evaluation suite; they exercise
    the schedulers on irregular structure (the paper's kernels are all
    regular) and drive the property-based tests. *)

val layered :
  rng:Rng.t ->
  layers:int ->
  min_width:int ->
  max_width:int ->
  edge_probability:float ->
  Taskgraph.t
(** Random layered DAG: each layer gets a uniform width in
    [\[min_width, max_width\]]; each (consecutive-layer) task pair is
    connected with the given probability; every non-first-layer task is
    guaranteed at least one predecessor from the previous layer so the
    depth really is [layers]. Unit weights.
    @raise Invalid_argument on an empty layer range, [layers < 1], or a
    probability outside [\[0, 1\]]. *)

val gnp : rng:Rng.t -> tasks:int -> edge_probability:float -> Taskgraph.t
(** Erdős–Rényi-style DAG: every pair [(i, j)] with [i < j] becomes an
    edge with the given probability. Dense and shallow for large [p];
    may contain isolated tasks. Unit weights. *)
