open! Flb_taskgraph

let chain ~length =
  if length < 1 then invalid_arg "Shapes.chain: length must be positive";
  let b = Taskgraph.Builder.create ~expected_tasks:length () in
  let ids = Array.init length (fun _ -> Taskgraph.Builder.add_task b ~comp:1.0) in
  for i = 0 to length - 2 do
    Taskgraph.Builder.add_edge b ~src:ids.(i) ~dst:ids.(i + 1) ~comm:1.0
  done;
  Taskgraph.Builder.build b

let independent ~tasks =
  if tasks < 1 then invalid_arg "Shapes.independent: tasks must be positive";
  let b = Taskgraph.Builder.create ~expected_tasks:tasks () in
  for _ = 1 to tasks do
    ignore (Taskgraph.Builder.add_task b ~comp:1.0)
  done;
  Taskgraph.Builder.build b

let fork_join ~branches ~stages =
  if branches < 1 then invalid_arg "Shapes.fork_join: branches must be positive";
  if stages < 1 then invalid_arg "Shapes.fork_join: stages must be positive";
  let b = Taskgraph.Builder.create () in
  let hub = ref (Taskgraph.Builder.add_task b ~comp:1.0) in
  for _ = 1 to stages do
    let mids =
      Array.init branches (fun _ -> Taskgraph.Builder.add_task b ~comp:1.0)
    in
    let join = Taskgraph.Builder.add_task b ~comp:1.0 in
    Array.iter
      (fun m ->
        Taskgraph.Builder.add_edge b ~src:!hub ~dst:m ~comm:1.0;
        Taskgraph.Builder.add_edge b ~src:m ~dst:join ~comm:1.0)
      mids;
    hub := join
  done;
  Taskgraph.Builder.build b

let tree ~branching ~depth ~out =
  if branching < 1 then invalid_arg "Shapes.tree: branching must be positive";
  if depth < 0 then invalid_arg "Shapes.tree: negative depth";
  let b = Taskgraph.Builder.create () in
  let rec grow parent level =
    if level < depth then
      for _ = 1 to branching do
        let child = Taskgraph.Builder.add_task b ~comp:1.0 in
        if out then Taskgraph.Builder.add_edge b ~src:parent ~dst:child ~comm:1.0
        else Taskgraph.Builder.add_edge b ~src:child ~dst:parent ~comm:1.0;
        grow child (level + 1)
      done
  in
  let root = Taskgraph.Builder.add_task b ~comp:1.0 in
  grow root 0;
  Taskgraph.Builder.build b

let out_tree ~branching ~depth = tree ~branching ~depth ~out:true

let in_tree ~branching ~depth = tree ~branching ~depth ~out:false

let parallel_chains ~count ~length =
  if count < 1 then invalid_arg "Shapes.parallel_chains: count must be positive";
  if length < 1 then invalid_arg "Shapes.parallel_chains: length must be positive";
  let b = Taskgraph.Builder.create ~expected_tasks:(count * length) () in
  for _ = 1 to count do
    let prev = ref (Taskgraph.Builder.add_task b ~comp:1.0) in
    for _ = 2 to length do
      let t = Taskgraph.Builder.add_task b ~comp:1.0 in
      Taskgraph.Builder.add_edge b ~src:!prev ~dst:t ~comm:1.0;
      prev := t
    done
  done;
  Taskgraph.Builder.build b

let diamond ~size:n =
  if n < 1 then invalid_arg "Shapes.diamond: size must be positive";
  let b = Taskgraph.Builder.create ~expected_tasks:(n * n) () in
  let id = Array.make_matrix n n (-1) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      id.(i).(j) <- Taskgraph.Builder.add_task b ~comp:1.0;
      if i > 0 then Taskgraph.Builder.add_edge b ~src:id.(i - 1).(j) ~dst:id.(i).(j) ~comm:1.0;
      if j > 0 then Taskgraph.Builder.add_edge b ~src:id.(i).(j - 1) ~dst:id.(i).(j) ~comm:1.0
    done
  done;
  Taskgraph.Builder.build b
