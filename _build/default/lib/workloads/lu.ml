open! Flb_taskgraph

let num_tasks ~matrix_size:n =
  if n < 2 then invalid_arg "Lu.num_tasks: matrix_size must be at least 2";
  (n - 1) * (n + 2) / 2

let structure ~matrix_size:n =
  if n < 2 then invalid_arg "Lu.structure: matrix_size must be at least 2";
  let b = Taskgraph.Builder.create ~expected_tasks:(num_tasks ~matrix_size:n) () in
  (* pivot.(k): task preparing column k at stage k.
     update.(k).(j): stage-k update of column j, j in [k+1, n-1]. *)
  let pivot = Array.make (n - 1) (-1) in
  let update = Array.make_matrix (n - 1) n (-1) in
  for k = 0 to n - 2 do
    pivot.(k) <- Taskgraph.Builder.add_task b ~comp:1.0;
    if k > 0 then
      (* The pivot column k was last touched by stage k-1's update. *)
      Taskgraph.Builder.add_edge b ~src:update.(k - 1).(k) ~dst:pivot.(k) ~comm:1.0;
    for j = k + 1 to n - 1 do
      update.(k).(j) <- Taskgraph.Builder.add_task b ~comp:1.0;
      Taskgraph.Builder.add_edge b ~src:pivot.(k) ~dst:update.(k).(j) ~comm:1.0;
      if k > 0 then
        Taskgraph.Builder.add_edge b ~src:update.(k - 1).(j) ~dst:update.(k).(j)
          ~comm:1.0
    done
  done;
  Taskgraph.Builder.build b

let matrix_size_for_tasks target =
  let rec search n = if num_tasks ~matrix_size:n >= target then n else search (n + 1) in
  search 2
