open! Flb_taskgraph
open! Flb_prelude

let layered ~rng ~layers ~min_width ~max_width ~edge_probability:p =
  if layers < 1 then invalid_arg "Random_dag.layered: layers must be positive";
  if min_width < 1 || max_width < min_width then
    invalid_arg "Random_dag.layered: bad width range";
  if p < 0.0 || p > 1.0 then
    invalid_arg "Random_dag.layered: probability outside [0, 1]";
  let b = Taskgraph.Builder.create () in
  let layer_tasks =
    Array.init layers (fun _ ->
        let width = Rng.int_in rng ~lo:min_width ~hi:max_width in
        Array.init width (fun _ -> Taskgraph.Builder.add_task b ~comp:1.0))
  in
  for s = 1 to layers - 1 do
    Array.iter
      (fun dst ->
        let connected = ref false in
        Array.iter
          (fun src ->
            if Rng.bernoulli rng ~p then begin
              Taskgraph.Builder.add_edge b ~src ~dst ~comm:1.0;
              connected := true
            end)
          layer_tasks.(s - 1);
        if not !connected then
          Taskgraph.Builder.add_edge b
            ~src:(Rng.choose rng layer_tasks.(s - 1))
            ~dst ~comm:1.0)
      layer_tasks.(s)
  done;
  Taskgraph.Builder.build b

let gnp ~rng ~tasks ~edge_probability:p =
  if tasks < 1 then invalid_arg "Random_dag.gnp: tasks must be positive";
  if p < 0.0 || p > 1.0 then invalid_arg "Random_dag.gnp: probability outside [0, 1]";
  let b = Taskgraph.Builder.create ~expected_tasks:tasks () in
  let ids = Array.init tasks (fun _ -> Taskgraph.Builder.add_task b ~comp:1.0) in
  for i = 0 to tasks - 1 do
    for j = i + 1 to tasks - 1 do
      if Rng.bernoulli rng ~p then
        Taskgraph.Builder.add_edge b ~src:ids.(i) ~dst:ids.(j) ~comm:1.0
    done
  done;
  Taskgraph.Builder.build b
