open! Flb_taskgraph

let num_tasks ~width ~layers = width * layers

let structure ~width:w ~layers =
  if w < 1 then invalid_arg "Stencil.structure: width must be positive";
  if layers < 1 then invalid_arg "Stencil.structure: layers must be positive";
  let b = Taskgraph.Builder.create ~expected_tasks:(w * layers) () in
  let id = Array.make_matrix layers w (-1) in
  for s = 0 to layers - 1 do
    for i = 0 to w - 1 do
      id.(s).(i) <- Taskgraph.Builder.add_task b ~comp:1.0;
      if s > 0 then
        for di = -1 to 1 do
          let i' = i + di in
          if i' >= 0 && i' < w then
            Taskgraph.Builder.add_edge b ~src:id.(s - 1).(i') ~dst:id.(s).(i)
              ~comm:1.0
        done
    done
  done;
  Taskgraph.Builder.build b

let dims_for_tasks target =
  let rec search w = if w * w >= target then (w, w) else search (w + 1) in
  search 1
