open! Flb_taskgraph

let num_tasks ~tiles:t =
  if t < 1 then invalid_arg "Cholesky.num_tasks: tiles must be positive";
  (* T potrf + T(T-1)/2 trsm + sum_m m(m+1)/2 updates *)
  t + (t * (t - 1) / 2) + ((t - 1) * t * (t + 1) / 6)

let structure ~tiles:t =
  ignore (num_tasks ~tiles:t);
  let b = Taskgraph.Builder.create ~expected_tasks:(num_tasks ~tiles:t) () in
  (* last task to write tile (i, j), i >= j; -1 while untouched *)
  let writer = Array.make_matrix t t (-1) in
  let depend ~on task =
    if on >= 0 then Taskgraph.Builder.add_edge b ~src:on ~dst:task ~comm:1.0
  in
  for k = 0 to t - 1 do
    let potrf = Taskgraph.Builder.add_task b ~comp:1.0 in
    depend ~on:writer.(k).(k) potrf;
    writer.(k).(k) <- potrf;
    let trsm = Array.make t (-1) in
    for i = k + 1 to t - 1 do
      trsm.(i) <- Taskgraph.Builder.add_task b ~comp:1.0;
      depend ~on:potrf trsm.(i);
      depend ~on:writer.(i).(k) trsm.(i);
      writer.(i).(k) <- trsm.(i)
    done;
    for i = k + 1 to t - 1 do
      for j = k + 1 to i do
        let update = Taskgraph.Builder.add_task b ~comp:1.0 in
        depend ~on:trsm.(i) update;
        if j <> i then depend ~on:trsm.(j) update;
        depend ~on:writer.(i).(j) update;
        writer.(i).(j) <- update
      done
    done
  done;
  Taskgraph.Builder.build b

let tiles_for_tasks target =
  let rec search t = if num_tasks ~tiles:t >= target then t else search (t + 1) in
  search 1
