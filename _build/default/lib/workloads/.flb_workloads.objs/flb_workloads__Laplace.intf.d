lib/workloads/laplace.mli: Flb_taskgraph Taskgraph
