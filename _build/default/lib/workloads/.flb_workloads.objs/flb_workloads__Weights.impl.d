lib/workloads/weights.ml: Array Flb_prelude Flb_taskgraph List Rng Taskgraph
