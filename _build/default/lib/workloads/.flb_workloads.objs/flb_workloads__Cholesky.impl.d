lib/workloads/cholesky.ml: Array Flb_taskgraph Taskgraph
