lib/workloads/stencil.mli: Flb_taskgraph Taskgraph
