lib/workloads/laplace.ml: Array Flb_taskgraph Taskgraph
