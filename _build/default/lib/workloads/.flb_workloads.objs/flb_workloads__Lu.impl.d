lib/workloads/lu.ml: Array Flb_taskgraph Taskgraph
