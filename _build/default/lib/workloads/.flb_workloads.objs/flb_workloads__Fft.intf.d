lib/workloads/fft.mli: Flb_taskgraph Taskgraph
