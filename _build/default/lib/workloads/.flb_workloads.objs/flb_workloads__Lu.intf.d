lib/workloads/lu.mli: Flb_taskgraph Taskgraph
