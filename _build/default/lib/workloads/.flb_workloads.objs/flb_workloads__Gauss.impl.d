lib/workloads/gauss.ml: Array Flb_taskgraph Taskgraph
