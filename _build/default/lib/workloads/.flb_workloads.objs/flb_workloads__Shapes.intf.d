lib/workloads/shapes.mli: Flb_taskgraph Taskgraph
