lib/workloads/cholesky.mli: Flb_taskgraph Taskgraph
