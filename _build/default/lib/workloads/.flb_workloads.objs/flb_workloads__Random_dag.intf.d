lib/workloads/random_dag.mli: Flb_prelude Flb_taskgraph Rng Taskgraph
