lib/workloads/random_dag.ml: Array Flb_prelude Flb_taskgraph Rng Taskgraph
