lib/workloads/stencil.ml: Array Flb_taskgraph Taskgraph
