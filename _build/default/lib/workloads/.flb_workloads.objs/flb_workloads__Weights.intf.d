lib/workloads/weights.mli: Flb_prelude Flb_taskgraph Rng Taskgraph
