lib/workloads/fft.ml: Array Flb_taskgraph Taskgraph
